// Multi-stage elastic training: grow the cluster and relax synchronization
// as training matures, carrying the model parameters across stages.
//
// Stage 1: small, tightly synchronized warmup (8 workers, BSP) — early
//          gradients are large and staleness is costly.
// Stage 2: scale out with bounded staleness (24 workers, SSP s=3).
// Stage 3: full fleet with PSSP + the significance filter — late-training
//          updates are small, so probabilistic pauses and filtered pushes
//          cost almost nothing.
//
// EPS re-places the carried parameters onto each stage's server set.
#include <cstdio>

#include "common/config.h"
#include "core/fluentps.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 150);

  core::ExperimentConfig base;
  base.backend = core::Backend::kSim;
  base.model.kind = "mlp";
  base.model.hidden = 32;
  base.data.num_train = 4096;
  base.data.num_test = 1024;
  base.opt.kind = "momentum";
  base.opt.momentum = 0.9;
  base.opt.lr.base = 0.2;
  base.batch_size = 16;
  base.eval_every = iters / 3;
  base.seed = 77;

  auto warmup = base;
  warmup.num_workers = 8;
  warmup.num_servers = 2;
  warmup.max_iters = iters;
  warmup.sync.kind = "bsp";

  auto scale_out = base;
  scale_out.num_workers = 24;
  scale_out.num_servers = 4;
  scale_out.max_iters = iters;
  scale_out.sync.kind = "ssp";
  scale_out.sync.staleness = 3;

  auto cruise = base;
  cruise.num_workers = 48;
  cruise.num_servers = 8;
  cruise.max_iters = iters;
  cruise.sync.kind = "pssp";
  cruise.sync.staleness = 3;
  cruise.sync.prob = 0.3;
  cruise.push_significance_threshold = 0.05;

  std::printf("three-stage elastic run (%lld iterations per stage):\n\n",
              static_cast<long long>(iters));
  const auto result = core::run_stages({warmup, scale_out, cruise});

  std::printf("%-8s %-28s %-10s %-10s %-10s %s\n", "stage", "config", "time(s)", "acc",
              "DPRs/100", "filtered");
  const char* names[] = {"warmup", "scale-out", "cruise"};
  for (std::size_t k = 0; k < result.stages.size(); ++k) {
    const auto& r = result.stages[k];
    std::printf("%-8s %-28s %-10.2f %-10.3f %-10.1f %lld\n", names[k],
                k == 0 ? "8w/2s bsp" : (k == 1 ? "24w/4s ssp(3)" : "48w/8s pssp(3,.3)+filter"),
                r.total_time, r.final_accuracy, r.dprs_per_100_iters,
                static_cast<long long>(r.pushes_filtered));
  }
  std::printf("\naccuracy trajectory across stages:\n");
  for (const auto& pt : result.curve) {
    std::printf("  t=%8.2fs  iter=%-5lld acc=%.3f\n", pt.time, static_cast<long long>(pt.iter),
                pt.accuracy);
  }
  std::printf("\ntotal: %.2fs, %lld iterations, final accuracy %.3f\n", result.total_time,
              static_cast<long long>(result.total_iterations), result.final_accuracy);
  return 0;
}
