// Full command-line experiment runner: every ExperimentConfig knob as a flag,
// CSV/trace/checkpoint outputs. The downstream user's workhorse.
//
// Examples:
//   run_experiment_cli --workers=64 --servers=8 --sync=pssp --staleness=3 \
//       --prob=0.3 --mode=lazy --iters=1000 --model=resmlp --eval_every=100 \
//       --curve_csv=curve.csv --trace_json=timeline.json --save=model.ckpt
//   run_experiment_cli --arch=pslite --sync=bsp --workers=32 --slicer=default
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "common/config.h"
#include "common/table.h"
#include "core/checkpoint.h"
#include "core/fluentps.h"
#include "core/trace_export.h"
#include "elastic/membership.h"
#include "embed/table_spec.h"
#include "embed/workload.h"

namespace {

void print_usage() {
  std::printf(
      "flags (all key=value, '--' optional):\n"
      "  cluster:  workers servers iters backend={sim,threads} arch={fluentps,pslite,ssptable}\n"
      "  sync:     sync={bsp,asp,ssp,dsps,drop,pssp,pssp_dynamic} staleness prob alpha\n"
      "            alpha_sf={0,1} drop_nt mode={lazy,soft}\n"
      "  task:     model={softmax,mlp,resmlp} hidden blocks classes dim train_n test_n\n"
      "            opt={sgd,momentum,lars} lr momentum lars_eta batch noise\n"
      "  placement: slicer={eps,default} chunk\n"
      "  timing:   compute={fixed,uniform,lognormal,transient,persistent,heterogeneous}\n"
      "            base_seconds sigma worker_sigma straggler_prob slowdown\n"
      "            latency bandwidth\n"
      "  ingest:   batch_pushes={0,1} apply_stripes lockfree_handoff={0,1}\n"
      "            ring_depth apply_threads pin_threads={0,1} (server apply\n"
      "            hot path: combiner handoff ring, NUMA-aware apply pool)\n"
      "  extras:   seed eval_every significance trace_iters\n"
      "  faults:   fault.drop fault.dup fault.delay_prob fault.delay_seconds\n"
      "            fault.reorder fault.reorder_max fault.partition='w0,w1@0.5:1.5'\n"
      "            fault.crash='s0@1.0:2.0' fault.checkpoint_every fault.seed\n"
      "  retries:  retry.initial_timeout retry.max_timeout retry.backoff\n"
      "            retry.jitter retry.budget force_reliability={0,1}\n"
      "  replication: replication.factor={1,2,3,...} replication.failover_detect\n"
      "            (legacy spellings replication= / failover_detect= still\n"
      "            resolve; crash a chain head with fault.crash='s0@0.3:inf'\n"
      "            — no restart — to exercise promotion)\n"
      "  read:     read.staleness read.prefer_replica={0,1} read.fleet\n"
      "            read.pulls read.think read.serve read.sparse={0,1} (staleness-bounded\n"
      "            replica read offloading; read.fleet pull-only clients each\n"
      "            issue read.pulls bounded whole-model pulls alongside\n"
      "            training, read.sparse routes sparse pulls via bound-0\n"
      "            replica reads)\n"
      "  telemetry: telemetry={0,1,on,off} telemetry_interval_ms telemetry_out\n"
      "            telemetry_spans={0,1} (wait-free metrics + JSONL time series\n"
      "            at <telemetry_out>.jsonl + Prometheus dump at <telemetry_out>.prom;\n"
      "            cross-hop spans render into trace_json on the threads backend)\n"
      "  elastic:  elastic.initial_servers elastic.schedule='add:3@40;drain:1@80'\n"
      "            elastic.lead_iters (servers= is the fixed slot count; ops\n"
      "            activate/drain slots mid-run via live shard migration at\n"
      "            epoch fences; append /ROUND to an op to pin the sparse\n"
      "            park round)\n"
      "  sparse:   tables='emb:dim=8,rows=512,opt=adagrad,qos=2;ads:dim=4'\n"
      "            sparse_workers sparse_rounds sparse_batch sparse_zipf\n"
      "            sparse_reduce={0,1} sparse_compute (a sparse embedding job\n"
      "            sharing the dense server set; crash schedules need\n"
      "            replication>1 because sparse state is not checkpointed)\n"
      "  outputs:  curve_csv= trace_json= save= load= checkpoint_dir=\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fluentps;
  auto args = Config::from_args(argc, argv);
  // Structured sections (DESIGN.md §13): the flat legacy spellings stay alive
  // as aliases of their sectioned names — scripts using either keep working.
  args.alias("replication.factor", "replication");
  args.alias("replication.failover_detect", "failover_detect");
  if (args.has("help")) {
    print_usage();
    return 0;
  }

  core::ExperimentConfig cfg;
  cfg.num_workers = static_cast<std::uint32_t>(args.get_int("workers", 8));
  cfg.num_servers = static_cast<std::uint32_t>(args.get_int("servers", 2));
  cfg.max_iters = args.get_int("iters", 400);
  cfg.backend = core::parse_backend(args.get_string("backend", "sim"));
  cfg.arch = core::parse_arch(args.get_string("arch", "fluentps"));

  cfg.sync.kind = args.get_string("sync", "ssp");
  cfg.sync.staleness = args.get_int("staleness", 3);
  cfg.sync.prob = args.get_double("prob", 0.5);
  cfg.sync.alpha = args.get_double("alpha", 0.8);
  cfg.sync.alpha_significance = args.get_bool("alpha_sf", false);
  cfg.sync.drop_nt = static_cast<std::uint32_t>(args.get_int("drop_nt", 0));
  cfg.dpr_mode = ps::parse_dpr_mode(args.get_string("mode", "lazy"));

  cfg.model.kind = args.get_string("model", "mlp");
  cfg.model.hidden = static_cast<std::size_t>(args.get_int("hidden", 32));
  cfg.model.blocks = static_cast<std::size_t>(args.get_int("blocks", 27));
  cfg.data.dim = static_cast<std::size_t>(args.get_int("dim", 32));
  cfg.data.num_classes = static_cast<std::size_t>(args.get_int("classes", 10));
  cfg.data.num_train = static_cast<std::size_t>(args.get_int("train_n", 4096));
  cfg.data.num_test = static_cast<std::size_t>(args.get_int("test_n", 1024));
  cfg.data.label_noise = args.get_double("noise", 0.05);

  cfg.opt.kind = args.get_string("opt", "momentum");
  cfg.opt.lr.base = args.get_double("lr", 0.2);
  cfg.opt.momentum = args.get_double("momentum", 0.9);
  cfg.opt.lars_eta = args.get_double("lars_eta", 0.1);
  cfg.batch_size = static_cast<std::size_t>(args.get_int("batch", 16));

  cfg.slicer = args.get_string("slicer", "eps");
  cfg.eps_chunk = static_cast<std::size_t>(args.get_int("chunk", 1024));

  cfg.compute.kind = args.get_string("compute", "heterogeneous");
  cfg.compute.base_seconds = args.get_double("base_seconds", 0.05);
  cfg.compute.sigma = args.get_double("sigma", 0.25);
  cfg.compute.worker_sigma = args.get_double("worker_sigma", 0.2);
  cfg.compute.straggler_prob = args.get_double("straggler_prob", 0.02);
  cfg.compute.slowdown = args.get_double("slowdown", 4.0);
  cfg.net.latency_seconds = args.get_double("latency", 200e-6);
  cfg.net.bandwidth_bytes_per_sec = args.get_double("bandwidth", 3e7);

  cfg.batch_pushes = args.get_bool("batch_pushes", cfg.batch_pushes);
  cfg.apply_stripes = static_cast<std::uint32_t>(
      args.get_int("apply_stripes", static_cast<std::int64_t>(cfg.apply_stripes)));
  cfg.lockfree_handoff = args.get_bool("lockfree_handoff", cfg.lockfree_handoff);
  cfg.ring_depth = static_cast<std::uint32_t>(
      args.get_int("ring_depth", static_cast<std::int64_t>(cfg.ring_depth)));
  cfg.apply_threads = static_cast<std::uint32_t>(args.get_int("apply_threads", 0));
  cfg.pin_threads = args.get_bool("pin_threads", false);

  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.eval_every = args.get_int("eval_every", 0);
  cfg.push_significance_threshold = args.get_double("significance", 0.0);
  cfg.trace_iters = args.get_int("trace_iters", 0);

  cfg.faults = fault::FaultSpec::from_config(args);
  cfg.retry = fault::RetryPolicy::from_config(args);
  cfg.force_reliability = args.get_bool("force_reliability", false);
  cfg.checkpoint_dir = args.get_string("checkpoint_dir", "");
  cfg.replication_factor = static_cast<std::uint32_t>(args.get_int("replication.factor", 1));
  cfg.failover_detect_seconds =
      args.get_double("replication.failover_detect", cfg.failover_detect_seconds);

  cfg.elastic.initial_servers =
      static_cast<std::uint32_t>(args.get_int("elastic.initial_servers", 0));
  cfg.elastic.lead_iters = args.get_int("elastic.lead_iters", cfg.elastic.lead_iters);
  if (const auto sched = args.get_string("elastic.schedule"); !sched.empty()) {
    if (!elastic::parse_schedule(sched, &cfg.elastic.schedule)) {
      std::fprintf(stderr, "bad elastic.schedule '%s' (want add:RANK@ITER,drain:RANK@ITER)\n",
                   sched.c_str());
      return 1;
    }
  }

  cfg.read.fleet = static_cast<std::uint32_t>(args.get_int("read.fleet", 0));
  cfg.read.pulls = args.get_int("read.pulls", 0);
  cfg.read.max_staleness_clocks = args.get_int("read.staleness", cfg.read.max_staleness_clocks);
  cfg.read.prefer_replica = args.get_bool("read.prefer_replica", cfg.read.prefer_replica);
  cfg.read.think_seconds = args.get_double("read.think", cfg.read.think_seconds);
  cfg.read.serve_seconds = args.get_double("read.serve", cfg.read.serve_seconds);
  cfg.read.sparse = args.get_bool("read.sparse", false);

  cfg.telemetry.enabled = args.get_bool("telemetry", false);
  cfg.telemetry.interval_ms = static_cast<std::uint32_t>(args.get_int(
      "telemetry_interval_ms", static_cast<std::int64_t>(cfg.telemetry.interval_ms)));
  cfg.telemetry.out_prefix = args.get_string("telemetry_out", cfg.telemetry.out_prefix);
  cfg.telemetry.trace_spans = args.get_bool("telemetry_spans", cfg.telemetry.trace_spans);

  cfg.sparse.tables = embed::parse_tables(args.get_string("tables", ""));
  cfg.sparse.num_workers = static_cast<std::uint32_t>(args.get_int("sparse_workers", 0));
  cfg.sparse.rounds = args.get_int("sparse_rounds", 0);
  cfg.sparse.batch_rows = static_cast<std::uint32_t>(args.get_int("sparse_batch", 8));
  cfg.sparse.zipf_s = args.get_double("sparse_zipf", cfg.sparse.zipf_s);
  cfg.sparse.reduce = args.get_bool("sparse_reduce", true);
  cfg.sparse.compute_seconds = args.get_double("sparse_compute", cfg.sparse.compute_seconds);

  if (const auto load = args.get_string("load"); !load.empty()) {
    if (!core::load_params(load, &cfg.initial_params)) {
      std::fprintf(stderr, "failed to load checkpoint %s\n", load.c_str());
      return 1;
    }
    std::printf("resumed %zu parameters from %s\n", cfg.initial_params.size(), load.c_str());
  }

  std::printf("running %s ...\n", cfg.label().c_str());
  const auto r = core::run_experiment(cfg);

  std::printf("\ntotal time      %.3f s (compute %.3f + comm/sync %.3f per worker)\n",
              r.total_time, r.compute_time, r.comm_time);
  std::printf("final accuracy  %.4f   loss %.4f\n", r.final_accuracy, r.final_loss);
  {
    // Bit-exact digest of the final dense parameters (FNV-1a over the raw
    // float encodings). Two runs print the same digest iff they produced the
    // same model to the last bit — scripts/chaos.sh compares this against a
    // serial single-worker oracle to prove elastic runs lose no updates.
    std::uint64_t h = 1469598103934665603ull;
    for (const float v : r.final_params) {
      std::uint32_t bits = 0;
      std::memcpy(&bits, &v, sizeof bits);
      for (int shift = 0; shift < 32; shift += 8) {
        h = (h ^ ((bits >> shift) & 0xffu)) * 1099511628211ull;
      }
    }
    std::printf("params digest   %016llx (%zu params)\n",
                static_cast<unsigned long long>(h), r.final_params.size());
  }
  std::printf("DPRs            %lld total, %.1f per 100 iterations\n",
              static_cast<long long>(r.dpr_total), r.dprs_per_100_iters);
  std::printf("staleness       mean %.2f  p95 %lld\n", r.staleness.mean(),
              static_cast<long long>(r.staleness.quantile(0.95)));
  std::printf("traffic         %.1f MB in %llu messages\n", r.bytes_total / 1e6,
              static_cast<unsigned long long>(r.messages));
  if (r.pushes_filtered > 0) {
    std::printf("filtered pushes %lld\n", static_cast<long long>(r.pushes_filtered));
  }
  if (cfg.reliability_enabled()) {
    std::printf("faults          dropped %lld  dup %lld  delayed %lld\n",
                static_cast<long long>(r.dropped), static_cast<long long>(r.duplicated),
                static_cast<long long>(r.delayed));
    std::printf("recovery        retries %lld  dedup hits %lld  crashes %lld  restores %lld\n",
                static_cast<long long>(r.worker_retries),
                static_cast<long long>(r.server_dedup_hits),
                static_cast<long long>(r.server_crashes),
                static_cast<long long>(r.server_recoveries));
  }
  {
    const auto extra = [&r](const char* k) {
      const auto it = r.extra.find(k);
      return it == r.extra.end() ? 0.0 : it->second;
    };
    std::printf(
        "ingest          sweeps %.0f (max batch %.0f)  ring stalls %.0f  "
        "depth hw %.0f  zero-copy frames %.0f  pinned threads %.0f\n",
        extra("apply_sweeps"), extra("max_apply_batch"), extra("ring_stalls"),
        extra("ring_depth_high_water"), extra("recv_zero_copy_frames"),
        extra("pinned_threads"));
  }
  if (cfg.telemetry.enabled) {
    const auto extra = [&r](const char* k) {
      const auto it = r.extra.find(k);
      return it == r.extra.end() ? 0.0 : it->second;
    };
    std::printf("telemetry       intervals %lld  spans %.0f  instrument allocs %.0f\n",
                static_cast<long long>(r.telemetry_intervals), extra("telemetry_spans"),
                extra("telemetry_instrument_allocs"));
  }
  if (cfg.replication_factor > 1) {
    std::printf("replication     forwards %lld  failovers %lld (worst %.3f s)  rolled back %lld\n",
                static_cast<long long>(r.replicated_updates),
                static_cast<long long>(r.failovers), r.failover_seconds,
                static_cast<long long>(r.rolled_back_updates));
  }
  if (cfg.elastic.enabled()) {
    std::printf("elastic         epoch %lld  %lld slices moved (%.2f MB)  "
                "fence stall %.3f s  pre-copy %.3f s\n",
                static_cast<long long>(r.elastic_epoch),
                static_cast<long long>(r.elastic_migrations), r.elastic_bytes_moved / 1e6,
                r.elastic_stall_seconds, r.elastic_migrate_seconds);
  }
  if (cfg.replication_factor > 1 || cfg.read.fleet_enabled()) {
    std::printf("reads           replica-served %lld  head-served %lld  fallbacks %lld  "
                "violations %lld%s\n",
                static_cast<long long>(r.replica_reads_served),
                static_cast<long long>(r.head_reads_served),
                static_cast<long long>(r.replica_read_fallbacks),
                static_cast<long long>(r.read_violations),
                r.read_violations == 0 ? " (bound OK)" : " (BOUND VIOLATED)");
    if (cfg.read.fleet_enabled()) {
      std::printf("fleet           %u clients x %lld pulls (%lld completed) -> "
                  "%.0f pulls/s over %.3f s\n",
                  cfg.read.fleet, static_cast<long long>(cfg.read.pulls),
                  static_cast<long long>(r.fleet_pulls), r.fleet_throughput,
                  r.fleet_pull_seconds);
    }
  }
  if (cfg.sparse.enabled()) {
    const auto extra = [&r](const char* k) {
      const auto it = r.extra.find(k);
      return it == r.extra.end() ? 0.0 : it->second;
    };
    const std::uint64_t state_digest =
        (static_cast<std::uint64_t>(extra("sparse_state_digest_hi")) << 32) |
        static_cast<std::uint64_t>(extra("sparse_state_digest_lo"));
    const std::uint64_t want = embed::reference_state_digest(cfg.sparse, cfg.seed);
    std::printf("sparse          %zu tables  %u workers x %lld rounds  pushes %.0f  rows %.0f  pulls %.0f\n",
                cfg.sparse.tables.size(), cfg.sparse.num_workers,
                static_cast<long long>(cfg.sparse.rounds), extra("sparse_pushes"),
                extra("sparse_rows_applied"), extra("sparse_pulls_answered"));
    std::printf("sparse recovery dedup %.0f  retries %.0f  repl repairs %.0f\n",
                extra("sparse_dedup_hits"), extra("sparse_retries"),
                extra("sparse_repl_repairs"));
    std::printf("sparse digest   %016llx  zero-lost=%s\n",
                static_cast<unsigned long long>(state_digest),
                state_digest == want ? "OK" : "VIOLATED");
  }

  if (const auto path = args.get_string("curve_csv"); !path.empty()) {
    Table curve;
    curve.add_row({"time_s", "iter", "accuracy", "loss"});
    for (const auto& pt : r.curve) {
      curve.add(pt.time, static_cast<int>(pt.iter), pt.accuracy, pt.loss);
    }
    std::printf("curve  -> %s (%s)\n", path.c_str(), curve.write_csv(path) ? "ok" : "FAILED");
  }
  if (const auto path = args.get_string("trace_json"); !path.empty()) {
    std::printf("trace  -> %s (%s)\n", path.c_str(),
                core::write_chrome_trace(path, r.trace, r.fault_events, r.spans) ? "ok"
                                                                                 : "FAILED");
  }
  if (cfg.telemetry.enabled && !r.prometheus.empty()) {
    const std::string prom_path = cfg.telemetry.out_prefix + ".prom";
    std::FILE* f = std::fopen(prom_path.c_str(), "w");
    bool ok = f != nullptr;
    if (f != nullptr) {
      ok = std::fwrite(r.prometheus.data(), 1, r.prometheus.size(), f) == r.prometheus.size();
      std::fclose(f);
    }
    std::printf("prom   -> %s (%s)\n", prom_path.c_str(), ok ? "ok" : "FAILED");
  }
  if (const auto path = args.get_string("save"); !path.empty()) {
    std::printf("params -> %s (%s)\n", path.c_str(),
                core::save_params(path, r.final_params) ? "ok" : "FAILED");
  }
  return 0;
}
