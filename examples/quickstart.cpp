// Quickstart: train a classifier with FluentPS in ~20 lines.
//
// Runs a 16-worker, 4-server cluster with the PSSP synchronization model and
// lazy pull execution on the discrete-event backend, prints the accuracy
// curve and the synchronization statistics.
//
// Usage:
//   quickstart [--workers=16] [--servers=4] [--iters=400]
//              [--sync=pssp] [--staleness=3] [--prob=0.5]
//              [--mode=lazy|soft] [--backend=sim|threads]
#include <cstdio>

#include "common/config.h"
#include "core/fluentps.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);

  core::ExperimentConfig cfg;
  cfg.num_workers = static_cast<std::uint32_t>(args.get_int("workers", 16));
  cfg.num_servers = static_cast<std::uint32_t>(args.get_int("servers", 4));
  cfg.max_iters = args.get_int("iters", 400);
  cfg.backend = core::parse_backend(args.get_string("backend", "sim"));

  // Synchronization model: a (pull condition, push condition) pair chosen by
  // name — bsp | asp | ssp | dsps | drop | pssp | pssp_dynamic (Table III).
  cfg.sync.kind = args.get_string("sync", "pssp");
  cfg.sync.staleness = args.get_int("staleness", 3);
  cfg.sync.prob = args.get_double("prob", 0.5);
  cfg.dpr_mode = ps::parse_dpr_mode(args.get_string("mode", "lazy"));

  // Learning task: a 10-class synthetic dataset and a small MLP.
  cfg.model.kind = "mlp";
  cfg.model.hidden = 32;
  cfg.data.num_train = 4096;
  cfg.data.num_test = 1024;
  cfg.opt.kind = "momentum";
  cfg.opt.momentum = 0.9;
  cfg.opt.lr.base = 0.2;
  cfg.batch_size = 16;
  cfg.eval_every = cfg.max_iters / 8;

  std::printf("FluentPS quickstart: %s\n", cfg.label().c_str());
  const auto result = core::run_experiment(cfg);

  std::printf("\n%-10s %-8s %s\n", "time(s)", "iter", "test accuracy");
  for (const auto& pt : result.curve) {
    std::printf("%-10.2f %-8lld %.3f\n", pt.time, static_cast<long long>(pt.iter), pt.accuracy);
  }
  std::printf("\nfinal accuracy: %.3f   loss: %.3f\n", result.final_accuracy, result.final_loss);
  std::printf("total time: %.2fs (compute %.2fs + comm/sync %.2fs per worker)\n",
              result.total_time, result.compute_time, result.comm_time);
  std::printf("delayed pull requests: %lld (%.1f per 100 iterations)\n",
              static_cast<long long>(result.dpr_total), result.dprs_per_100_iters);
  std::printf("served staleness: mean %.2f, p95 %lld\n", result.staleness.mean(),
              static_cast<long long>(result.staleness.quantile(0.95)));
  return 0;
}
