// Building a custom synchronization model with SetcondPull / SetcondPush.
//
// FluentPS's claim (Section III-B): any synchronization scheme is just a
// (pull condition, push condition) pair over the exposed synchronization
// state. This example builds a model that is NOT in the paper's Table III —
// "deadline SSP": behave like SSP(s), but if the progress spread across
// workers exceeds a hard deadline gap D, drop to BSP until the stragglers
// catch up (a simple congestion brake) — and runs it against plain SSP on a
// straggler-heavy cluster, directly on the Server/WorkerClient API.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/config.h"
#include "core/fluentps.h"
#include "net/inproc_transport.h"

namespace {

using namespace fluentps;

/// The custom pull condition. All state it needs comes from SyncView.
ps::PullCondition deadline_ssp(std::int64_t s, std::int64_t deadline_gap) {
  return [s, deadline_gap](const ps::PullCtx& ctx, const ps::SyncView& view, Rng&) {
    const bool spread_exceeded =
        view.fastest >= 0 && view.slowest >= 0 && view.fastest - view.slowest > deadline_gap;
    const std::int64_t effective_s = spread_exceeded ? 0 : s;
    return ctx.progress < view.v_train + effective_s;
  };
}

struct MiniCluster {
  ps::Sharding sharding;
  net::InprocTransport transport;
  std::vector<std::unique_ptr<ps::Server>> servers;
  std::vector<std::unique_ptr<ps::WorkerClient>> clients;

  MiniCluster(std::uint32_t n_workers, std::uint32_t n_servers, std::size_t num_params) {
    ps::EpsSlicer slicer(256);
    sharding = slicer.shard({num_params}, n_servers);
    for (std::uint32_t m = 0; m < n_servers; ++m) {
      ps::ServerSpec spec;
      spec.node_id = 1 + m;
      spec.server_rank = m;
      spec.num_workers = n_workers;
      spec.layout = sharding.shards[m];
      spec.initial_shard.assign(spec.layout.total, 0.0f);
      spec.engine.num_workers = n_workers;
      spec.engine.mode = ps::DprMode::kLazy;
      spec.engine.model = ps::make_sync_model({.kind = "ssp", .staleness = 4}, n_workers);
      spec.engine.seed = 7 + m;
      auto server = std::make_unique<ps::Server>(std::move(spec), transport);
      auto* raw = server.get();
      transport.register_node(raw->node_id(),
                              [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      servers.push_back(std::move(server));
    }
    for (std::uint32_t n = 0; n < n_workers; ++n) {
      ps::WorkerSpec spec;
      spec.node_id = 1 + n_servers + n;
      spec.worker_rank = n;
      for (std::uint32_t m = 0; m < n_servers; ++m) spec.server_nodes.push_back(1 + m);
      spec.sharding = &sharding;
      auto client = std::make_unique<ps::WorkerClient>(std::move(spec), transport);
      auto* raw = client.get();
      transport.register_node(raw->node_id(),
                              [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      clients.push_back(std::move(client));
    }
  }

  /// Run N worker threads for `iters` iterations; worker 0 sleeps extra to be
  /// a straggler. Returns max observed progress spread.
  std::int64_t run(std::int64_t iters) {
    std::atomic<std::int64_t> max_spread{0};
    std::vector<std::jthread> threads;
    for (std::uint32_t n = 0; n < clients.size(); ++n) {
      threads.emplace_back([&, n] {
        std::vector<float> update(sharding.num_params, 0.001f);
        std::vector<float> params(sharding.num_params);
        for (std::int64_t i = 0; i < iters; ++i) {
          if (n == 0 && i % 3 == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(3));  // straggler
          }
          clients[n]->push(update, i);
          const auto t = clients[n]->pull(ps::KeyRange::all(), ps::ReadOptions{.clock = i});
          clients[n]->wait_pull(t, params);
          const auto spread = servers[0]->engine().fastest() - servers[0]->engine().slowest();
          std::int64_t cur = max_spread.load();
          while (spread > cur && !max_spread.compare_exchange_weak(cur, spread)) {
          }
        }
      });
    }
    threads.clear();  // join
    return max_spread.load();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = Config::from_args(argc, argv);
  const auto iters = args.get_int("iters", 60);
  const std::uint32_t workers = 6, servers = 2;

  std::printf("== custom synchronization model: deadline-SSP via SetcondPull ==\n\n");

  // Run 1: plain SSP(s=4).
  MiniCluster plain(workers, servers, 2048);
  const auto spread_plain = plain.run(iters);
  std::int64_t dprs_plain = 0;
  for (const auto& s : plain.servers) dprs_plain += s->engine().dpr_total();

  // Run 2: same cluster, but every server gets the custom pull condition
  // installed at runtime (the SetcondPull API).
  MiniCluster custom(workers, servers, 2048);
  for (auto& s : custom.servers) {
    s->set_pull_condition(deadline_ssp(/*s=*/4, /*deadline_gap=*/2));
  }
  const auto spread_custom = custom.run(iters);
  std::int64_t dprs_custom = 0;
  for (const auto& s : custom.servers) dprs_custom += s->engine().dpr_total();

  std::printf("%-22s %-18s %s\n", "model", "max spread", "DPRs");
  std::printf("%-22s %-18lld %lld\n", "ssp(s=4)", static_cast<long long>(spread_plain),
              static_cast<long long>(dprs_plain));
  std::printf("%-22s %-18lld %lld\n", "deadline-ssp(4, D=2)",
              static_cast<long long>(spread_custom), static_cast<long long>(dprs_custom));
  std::printf("\nThe deadline condition clamps the progress spread near its deadline gap,\n"
              "trading extra DPRs for tighter staleness — all without touching server code.\n");
  return 0;
}
