// Large-scale what-if studies on the discrete-event backend.
//
// The DES executes real gradient math in virtual time, so a 128-worker
// cluster with a contended network "runs" on a laptop in seconds and the
// results are bit-reproducible. This example sweeps the synchronization
// model zoo at a user-chosen scale and prints a ranked comparison — the
// workflow a practitioner would use to pick a model before renting the real
// cluster.
//
// Usage: large_scale_sim [--workers=128] [--servers=8] [--iters=300]
//                        [--stragglers=transient|persistent|lognormal]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/config.h"
#include "core/fluentps.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto workers = static_cast<std::uint32_t>(args.get_int("workers", 128));
  const auto servers = static_cast<std::uint32_t>(args.get_int("servers", 8));
  const auto iters = args.get_int("iters", 300);
  const auto straggler = args.get_string("stragglers", "transient");

  std::printf("Simulating a %u-worker / %u-server cluster, %lld iterations, %s stragglers\n\n",
              workers, servers, static_cast<long long>(iters), straggler.c_str());

  const ps::SyncModelSpec zoo[] = {
      {.kind = "bsp"},
      {.kind = "ssp", .staleness = 3},
      {.kind = "asp"},
      {.kind = "dsps", .staleness = 3},
      {.kind = "drop", .drop_nt = workers - workers / 8},
      {.kind = "pssp", .staleness = 3, .prob = 0.3},
      {.kind = "pssp_dynamic", .staleness = 3, .alpha = 0.8, .alpha_significance = true},
  };

  struct Row {
    std::string name;
    double time, acc, dprs;
  };
  std::vector<Row> rows;
  for (const auto& sync : zoo) {
    core::ExperimentConfig cfg;
    cfg.backend = core::Backend::kSim;
    cfg.num_workers = workers;
    cfg.num_servers = servers;
    cfg.max_iters = iters;
    cfg.sync = sync;
    cfg.dpr_mode = ps::DprMode::kLazy;
    cfg.model.kind = "mlp";
    cfg.model.hidden = 32;
    cfg.data.num_train = 8192;
    cfg.data.num_test = 1024;
    cfg.opt.kind = "momentum";
    cfg.opt.momentum = 0.9;
    cfg.opt.lr.base = 0.2;
    cfg.batch_size = 16;
    cfg.compute.kind = straggler == "lognormal" ? "lognormal" : straggler;
    cfg.compute.base_seconds = 6.4 / workers;
    cfg.compute.slowdown = 4.0;
    cfg.net.bandwidth_bytes_per_sec = 3e7;
    cfg.seed = 1234;
    const auto r = core::run_experiment(cfg);
    rows.push_back({sync.label(), r.total_time, r.final_accuracy, r.dprs_per_100_iters});
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.acc > b.acc; });
  std::printf("%-28s %-12s %-10s %s\n", "model", "time(s)", "accuracy", "DPRs/100it");
  for (const auto& row : rows) {
    std::printf("%-28s %-12.2f %-10.3f %.1f\n", row.name.c_str(), row.time, row.acc, row.dprs);
  }
  std::printf("\n(ranked by accuracy; rerun with a different --stragglers profile to see the\n"
              " ranking shift — drop-stragglers wins under persistent slow nodes, PSSP under\n"
              " transient noise)\n");
  return 0;
}
