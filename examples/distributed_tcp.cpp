// Truly distributed FluentPS: separate OS processes connected over TCP.
//
// The parent process reserves a port, forks N worker processes, then runs a
// parameter server on that port. Each worker process builds the (identical,
// deterministic) dataset and model, connects over loopback TCP, and trains
// under SSP — the server learns each worker's return route from the
// transport's hello frames, so no manual wiring is needed.
//
// Usage: distributed_tcp [--workers=2] [--iters=60]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "common/config.h"
#include "ml/eval.h"
#include "net/tcp_transport.h"
#include "core/fluentps.h"

namespace {

using namespace fluentps;

constexpr net::NodeId kServerNode = 1;
net::NodeId worker_node(std::uint32_t rank) { return 2 + rank; }

/// Reserve an ephemeral port: bind, read it back, close. The tiny window
/// before the parent re-binds is covered by the workers' connect-retry loop.
std::uint16_t reserve_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const auto port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

/// Block until something is accepting connections on 127.0.0.1:port.
void wait_for_listener(std::uint16_t port) {
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    const bool up = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    ::close(fd);
    if (up) return;
    ::usleep(20000);
  }
}

struct Problem {
  ml::Dataset data;
  std::unique_ptr<ml::Model> model;
  ps::Sharding sharding;
  std::vector<float> w0;

  Problem() : data(ml::Dataset::synthesize(spec())) {
    model = ml::make_model({.kind = "softmax"}, data.dim(), data.num_classes());
    ps::EpsSlicer slicer(128);
    sharding = slicer.shard(model->layer_sizes(), 1);
    w0.resize(model->num_params());
    Rng rng(99, 0x1717);
    model->init_params(w0, rng);
  }

  static ml::DataSpec spec() {
    ml::DataSpec s;
    s.dim = 16;
    s.num_classes = 5;
    s.num_train = 1024;
    s.num_test = 512;
    s.seed = 7;
    return s;
  }
};

int run_worker(std::uint32_t rank, std::uint32_t num_workers, std::uint16_t server_port,
               std::int64_t iters) {
  const Problem p;
  wait_for_listener(server_port);

  net::TcpTransport transport;
  ps::WorkerSpec spec;
  spec.node_id = worker_node(rank);
  spec.worker_rank = rank;
  spec.server_nodes = {kServerNode};
  spec.sharding = &p.sharding;
  ps::WorkerClient client(std::move(spec), transport);
  transport.register_node(worker_node(rank),
                          [&client](net::Message&& m) { client.handle(std::move(m)); });
  (void)transport.listen();  // advertised to the server via hello frames
  transport.add_route(kServerNode, "127.0.0.1", server_port);

  std::vector<float> params = p.w0;
  std::vector<float> grad(p.model->num_params());
  std::vector<float> update(p.model->num_params());
  auto opt = ml::make_optimizer({.kind = "sgd", .lr = {.base = 0.4}}, *p.model);
  ml::BatchSampler sampler(p.data, rank, num_workers, 16, 5);
  ml::Workspace ws;
  double loss = 0.0;
  for (std::int64_t i = 0; i < iters; ++i) {
    loss = p.model->grad(params, sampler.next(), grad, ws);
    opt->compute_update(params, grad, i, update);
    client.push(update, i);
    const auto t = client.pull(ps::KeyRange::all(), ps::ReadOptions{.clock = i});
    client.wait_pull(t, params);
  }
  std::printf("[worker %u pid %d] done: %lld iterations, last minibatch loss %.3f\n", rank,
              getpid(), static_cast<long long>(iters), loss);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = Config::from_args(argc, argv);
  const auto num_workers = static_cast<std::uint32_t>(args.get_int("workers", 2));
  const auto iters = args.get_int("iters", 60);
  const std::uint16_t port = reserve_port();

  std::printf("spawning %u worker processes; server on 127.0.0.1:%u\n", num_workers, port);
  std::fflush(stdout);  // don't duplicate buffered output into the children
  std::vector<pid_t> children;
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    const pid_t pid = fork();
    if (pid == 0) {
      return run_worker(w, num_workers, port, iters);  // child
    }
    children.push_back(pid);
  }

  // Parent: the parameter server. (Created after fork so children never
  // inherit its threads or sockets.)
  const Problem p;
  net::TcpTransport transport;
  ps::ServerSpec spec;
  spec.node_id = kServerNode;
  spec.server_rank = 0;
  spec.num_workers = num_workers;
  spec.layout = p.sharding.shards[0];
  spec.initial_shard.resize(spec.layout.total);
  spec.layout.gather(p.w0, spec.initial_shard);
  spec.engine.num_workers = num_workers;
  spec.engine.mode = ps::DprMode::kLazy;
  spec.engine.model = ps::make_sync_model({.kind = "ssp", .staleness = 2}, num_workers);
  spec.engine.seed = 1;
  ps::Server server(std::move(spec), transport);
  transport.register_node(kServerNode,
                          [&server](net::Message&& m) { server.handle(std::move(m)); });
  (void)transport.listen(port);

  for (const pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
  }

  // Evaluate the final global model held by the server.
  std::vector<float> final_params(p.model->num_params());
  server.snapshot_into(final_params);
  ml::Workspace ws;
  const double acc = ml::test_accuracy(*p.model, final_params, p.data, ws);
  std::printf("[server pid %d] %lld pushes applied, %lld pulls answered, %lld DPRs\n", getpid(),
              static_cast<long long>(server.pushes_applied()),
              static_cast<long long>(server.pulls_answered()),
              static_cast<long long>(server.engine().dpr_total()));
  std::printf("final test accuracy across %u processes: %.3f (chance %.3f)\n", num_workers, acc,
              1.0 / static_cast<double>(p.data.num_classes()));
  return 0;
}
