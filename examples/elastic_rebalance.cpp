// Elastic Parameter Slicing in action: shard a real model's layers, lose a
// server, rebalance, and print the migration plan (Section III-A: "when the
// number of servers changes, EPS can also rebalance the workloads among the
// alive servers").
#include <cstdio>

#include "common/config.h"
#include "core/fluentps.h"
#include "ml/models/resmlp.h"

int main(int argc, char** argv) {
  using namespace fluentps;
  const auto args = Config::from_args(argc, argv);
  const auto servers = static_cast<std::uint32_t>(args.get_int("servers", 8));
  const auto chunk = static_cast<std::size_t>(args.get_int("chunk", 1024));

  const ml::ResMlp model(512, 32, 27, 10);
  const auto layers = model.layer_sizes();
  std::printf("model: ResMLP-56, %zu parameters in %zu layers (largest layer %zu)\n\n",
              model.num_params(), layers.size(),
              *std::max_element(layers.begin(), layers.end()));

  // PS-Lite default slicing vs EPS.
  ps::DefaultSlicer dflt;
  ps::EpsSlicer eps(chunk);
  const auto d = dflt.shard(layers, servers);
  auto e = eps.shard(layers, servers);

  std::printf("%-10s %-14s %-14s\n", "server", "default bytes", "eps bytes");
  for (std::uint32_t m = 0; m < servers; ++m) {
    std::printf("%-10u %-14zu %-14zu\n", m, d.shards[m].total * sizeof(float),
                e.shards[m].total * sizeof(float));
  }
  std::printf("imbalance (max/mean): default %.2f, eps %.2f\n\n", d.imbalance(), e.imbalance());

  // Server failure: rebalance onto M-1 servers and show what moves.
  std::vector<ps::EpsSlicer::Migration> plan;
  const auto shrunk = eps.rebalance(e, servers - 1, &plan);
  std::size_t moved = 0;
  for (const auto& m : plan) moved += m.slice.length;
  std::printf("server %u leaves -> rebalanced onto %u servers\n", servers - 1, servers - 1);
  std::printf("migrations: %zu slices, %zu bytes (%.1f%% of the model), new imbalance %.2f\n",
              plan.size(), moved * sizeof(float),
              100.0 * static_cast<double>(moved) / static_cast<double>(shrunk.num_params),
              shrunk.imbalance());
  for (std::size_t i = 0; i < std::min<std::size_t>(plan.size(), 5); ++i) {
    std::printf("  key %llu (%zu params): server %u -> %u\n",
                static_cast<unsigned long long>(plan[i].slice.key), plan[i].slice.length,
                plan[i].from_server, plan[i].to_server);
  }
  if (plan.size() > 5) std::printf("  ... %zu more\n", plan.size() - 5);

  // Scale out again.
  plan.clear();
  const auto grown = eps.rebalance(shrunk, servers + 4, &plan);
  moved = 0;
  for (const auto& m : plan) moved += m.slice.length;
  std::printf("\nscale-out to %u servers: %zu slices move (%.1f%% of the model), imbalance %.2f\n",
              servers + 4, plan.size(),
              100.0 * static_cast<double>(moved) / static_cast<double>(grown.num_params),
              grown.imbalance());
  return 0;
}
