// Staleness-bounded replica read offloading (DESIGN.md §13): wire encoding
// of the bound, replica serve-vs-redirect decisions exactly at the bound,
// the head's always-serve rule, the sparse replica's round-clock horizon,
// config section aliases, and end-to-end fleet runs — including bound
// enforcement across a mid-run head kill + promotion.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/config.h"
#include "core/fluentps.h"
#include "embed/sparse_codec.h"
#include "embed/sparse_replica.h"
#include "net/transport.h"
#include "ps/read_options.h"
#include "ps/server.h"
#include "ps/slicing.h"
#include "replica/replica_node.h"

namespace fluentps {
namespace {

// --- wire encoding ---------------------------------------------------------

TEST(ReadOptions, EncodeDecodeRoundTripsTheBound) {
  // Strong reads stay byte-identical to the legacy protocol: seq == 0.
  EXPECT_EQ(ps::encode_read_bound(ps::ReadOptions{}), 0u);
  EXPECT_FALSE(ps::is_bounded_read(0));

  for (const std::int64_t s : {0, 1, 3, 1000}) {
    ps::ReadOptions opts;
    opts.consistency = ps::Consistency::kBounded;
    opts.max_staleness_clocks = s;
    const std::uint64_t seq = ps::encode_read_bound(opts);
    EXPECT_TRUE(ps::is_bounded_read(seq));
    EXPECT_EQ(ps::decode_read_bound(seq), s);
  }
}

TEST(ReadOptions, KeyRangeIntersects) {
  EXPECT_TRUE(ps::KeyRange::all().is_all());
  const ps::KeyRange r{10, 20};
  EXPECT_FALSE(r.is_all());
  EXPECT_TRUE(r.intersects(0, 11));    // overlaps the left edge
  EXPECT_TRUE(r.intersects(19, 100));  // overlaps the right edge
  EXPECT_FALSE(r.intersects(0, 10));   // ends exactly at begin
  EXPECT_FALSE(r.intersects(20, 5));   // starts exactly at end
}

// --- replica serve / redirect rig ------------------------------------------

constexpr std::size_t kParams = 8;
constexpr net::NodeId kHead = 1;
constexpr net::NodeId kTail = 3;
constexpr net::NodeId kClient = 9;

struct CaptureTransport final : net::Transport {
  std::unordered_map<net::NodeId, Handler> handlers;
  std::deque<net::Message> queue;
  std::vector<net::Message> client_inbox;  ///< messages to unregistered nodes

  void register_node(net::NodeId n, Handler h) override { handlers[n] = std::move(h); }
  void send(net::Message msg) override {
    msg.values.ensure_owned();
    queue.push_back(std::move(msg));
  }
  void pump() {
    while (!queue.empty()) {
      net::Message m = std::move(queue.front());
      queue.pop_front();
      const auto it = handlers.find(m.dst);
      if (it != handlers.end()) {
        it->second(std::move(m));
      } else {
        client_inbox.push_back(std::move(m));
      }
    }
  }
};

struct ReadRig {
  CaptureTransport net;
  std::unique_ptr<ps::Server> head;
  std::unique_ptr<replica::ReplicaNode> tail;
  ps::Sharding sharding;

  ReadRig() {
    ps::EpsSlicer slicer(kParams);
    sharding = slicer.shard({kParams}, 1);
    ps::ServerSpec hspec;
    hspec.node_id = kHead;
    hspec.server_rank = 0;
    hspec.num_workers = 1;
    hspec.layout = sharding.shards[0];
    hspec.initial_shard.assign(kParams, 0.0f);
    hspec.engine.num_workers = 1;
    hspec.engine.model = ps::make_sync_model({.kind = "asp"}, 1);
    hspec.engine.seed = 5;
    hspec.reliable = true;
    hspec.worker_nodes = {kClient};
    hspec.replica_successor = kTail;
    head = std::make_unique<ps::Server>(std::move(hspec), net);
    net.register_node(kHead, [this](net::Message&& m) { head->handle(std::move(m)); });

    replica::ReplicaSpec rspec;
    rspec.node_id = kTail;
    rspec.server_rank = 0;
    rspec.chain_pos = 1;
    rspec.num_workers = 1;
    rspec.initial_shard.assign(kParams, 0.0f);
    rspec.successor = 0;
    rspec.apply_scale = 1.0f;
    tail = std::make_unique<replica::ReplicaNode>(std::move(rspec), net);
    net.register_node(kTail, [this](net::Message&& m) { tail->handle(std::move(m)); });
  }

  /// Worker 0 pushes its iteration-`progress` update through the head; the
  /// chain replicates it, advancing the tail's horizon to `progress`.
  void push(std::uint64_t seq, std::int64_t progress) {
    net::Message m;
    m.type = net::MsgType::kPush;
    m.src = kClient;
    m.dst = kHead;
    m.worker_rank = 0;
    m.request_id = 1000 + seq;
    m.seq = seq;
    m.progress = progress;
    m.values.assign(kParams, 0.5f);
    head->handle(std::move(m));
    net.pump();
  }

  /// Bounded read with reader clock `clock` and bound `s` aimed at `dst`.
  void bounded_read(net::NodeId dst, std::int64_t clock, std::int64_t s,
                    std::uint64_t ticket) {
    net::Message m;
    m.type = net::MsgType::kPull;
    m.src = kClient;
    m.dst = dst;
    m.worker_rank = 7;  // fleet-style rank outside the training set
    m.request_id = ticket;
    m.progress = clock;
    ps::ReadOptions opts;
    opts.consistency = ps::Consistency::kBounded;
    opts.max_staleness_clocks = s;
    m.seq = ps::encode_read_bound(opts);
    net.handlers.at(dst)(std::move(m));
    net.pump();
  }

  [[nodiscard]] const net::Message& last_response() const {
    EXPECT_FALSE(net.client_inbox.empty());
    return net.client_inbox.back();
  }
};

TEST(ReplicaRead, ServesExactlyAtTheBound) {
  ReadRig rig;
  rig.push(1, 0);  // tail horizon -> 0
  ASSERT_EQ(rig.tail->read_horizon(), 0);

  // horizon + s == clock: the bound is met with nothing to spare.
  rig.bounded_read(kTail, /*clock=*/3, /*s=*/3, /*ticket=*/1);
  const auto& resp = rig.last_response();
  EXPECT_EQ(resp.type, net::MsgType::kPullResp);
  EXPECT_EQ(resp.seq, ps::kReplicaServedSeq) << "replica-served marker";
  EXPECT_EQ(resp.progress, 0) << "serving horizon echoed for the client oracle";
  EXPECT_EQ(rig.tail->reads_served(), 1);
  EXPECT_EQ(rig.tail->read_fallbacks(), 0);
}

TEST(ReplicaRead, OneClockBehindRedirectsToHead) {
  ReadRig rig;
  rig.push(1, 0);
  rig.bounded_read(kTail, /*clock=*/4, /*s=*/3, /*ticket=*/1);  // 0 + 3 < 4
  const auto& resp = rig.last_response();
  EXPECT_EQ(resp.type, net::MsgType::kPullRedirect);
  EXPECT_EQ(resp.progress, 0) << "redirect reports how far behind the replica was";
  EXPECT_EQ(rig.tail->reads_served(), 0);
  EXPECT_EQ(rig.tail->read_fallbacks(), 1);

  // The push for clock 1 catches the replica up; the same ticket now serves.
  rig.push(2, 1);
  rig.bounded_read(kTail, /*clock=*/4, /*s=*/3, /*ticket=*/1);
  EXPECT_EQ(rig.last_response().type, net::MsgType::kPullResp);
  EXPECT_EQ(rig.tail->reads_served(), 1);
}

TEST(ReplicaRead, HeadAlwaysServesBoundedReads) {
  ReadRig rig;
  // No pushes at all: the head's horizon is -1, yet it must serve — it IS
  // the freshest state in the chain, so there is nowhere fresher to redirect.
  rig.bounded_read(kHead, /*clock=*/100, /*s=*/0, /*ticket=*/1);
  const auto& resp = rig.last_response();
  EXPECT_EQ(resp.type, net::MsgType::kPullResp);
  EXPECT_EQ(resp.seq, 0u) << "head-served responses carry no replica marker";
  EXPECT_EQ(resp.progress, -1);
  EXPECT_EQ(rig.head->bounded_reads(), 1);
}

TEST(ReplicaRead, DuplicateTicketReAnswersIdempotently) {
  ReadRig rig;
  rig.push(1, 0);
  rig.bounded_read(kTail, 0, 0, /*ticket=*/5);
  rig.bounded_read(kTail, 0, 0, /*ticket=*/5);  // lost-response retransmit
  EXPECT_EQ(rig.tail->reads_served(), 2) << "duplicates are re-answered";
  EXPECT_EQ(rig.tail->reads_deduped(), 1) << "...and accounted as duplicates";
}

// --- sparse replica --------------------------------------------------------

TEST(SparseReplicaRead, ServesWithinRoundClockAndRedirectsBeyond) {
  CaptureTransport net;
  embed::SparseReplicaSpec spec;
  spec.node_id = kTail;
  spec.chain_pos = 1;
  spec.core.server_rank = 0;
  spec.core.num_workers = 1;
  spec.core.tables.push_back(embed::TableSpec{.name = "emb", .table_id = 0, .dim = 4});
  spec.successor = 0;
  embed::SparseReplica rep(std::move(spec), net);

  embed::SparseBatch req;
  req.table_id = 0;
  req.dim = 4;
  req.rows = {1, 2, 3};
  const auto read = [&](std::int64_t round, std::int64_t s, std::uint64_t ticket) {
    net::Message m;
    m.type = net::MsgType::kSparsePull;
    m.src = kClient;
    m.dst = kTail;
    m.worker_rank = 0;
    m.request_id = ticket;
    m.progress = round;
    ps::ReadOptions opts;
    opts.consistency = ps::Consistency::kBounded;
    opts.max_staleness_clocks = s;
    m.seq = ps::encode_read_bound(opts);
    encode_sparse(req, m.values);
    rep.handle(std::move(m));
  };

  // Fresh table: completed round is -1. A round-0 bound-0 pull is one round
  // ahead of the horizon -> redirect to the head.
  read(/*round=*/0, /*s=*/0, /*ticket=*/1);
  ASSERT_EQ(net.queue.size(), 1u);
  EXPECT_EQ(net.queue.back().type, net::MsgType::kPullRedirect);
  EXPECT_EQ(rep.read_fallbacks(), 1);

  // Relaxing the bound by one round makes the same state servable.
  read(/*round=*/0, /*s=*/1, /*ticket=*/2);
  ASSERT_EQ(net.queue.size(), 2u);
  const net::Message& resp = net.queue.back();
  EXPECT_EQ(resp.type, net::MsgType::kSparsePullResp);
  EXPECT_EQ(resp.seq, ps::kReplicaServedSeq);
  embed::SparseBatch out;
  ASSERT_TRUE(embed::decode_sparse(resp.values.span(), &out));
  EXPECT_EQ(out.rows, req.rows);
  EXPECT_EQ(out.values.size(), req.rows.size() * 4u);
  EXPECT_EQ(rep.reads_served(), 1);
}

// --- config aliases --------------------------------------------------------

TEST(ConfigAlias, SectionKeysRoundTripWithLegacyNames) {
  // Legacy flat key set, canonical read.
  Config legacy;
  legacy.set("replication", "3");
  legacy.set("failover_detect", "0.25");
  legacy.alias("replication.factor", "replication");
  legacy.alias("replication.failover_detect", "failover_detect");
  EXPECT_TRUE(legacy.has("replication.factor"));
  EXPECT_EQ(legacy.get_int("replication.factor", 1), 3);
  EXPECT_DOUBLE_EQ(legacy.get_double("replication.failover_detect", 0.0), 0.25);

  // Canonical key set, legacy read (old scripts keep working).
  Config canonical;
  canonical.set("replication.factor", "2");
  canonical.alias("replication.factor", "replication");
  EXPECT_TRUE(canonical.has("replication"));
  EXPECT_EQ(canonical.get_int("replication", 1), 2);

  // An exact hit always beats the alias hop.
  Config both;
  both.set("replication", "4");
  both.set("replication.factor", "2");
  both.alias("replication.factor", "replication");
  EXPECT_EQ(both.get_int("replication.factor", 1), 2);
  EXPECT_EQ(both.get_int("replication", 1), 4);
}

// --- end-to-end fleet runs -------------------------------------------------

core::ExperimentConfig fleet_cfg() {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.num_workers = 4;
  cfg.num_servers = 2;
  cfg.max_iters = 20;
  cfg.model.kind = "softmax";
  cfg.data.dim = 16;
  cfg.data.num_classes = 10;
  cfg.data.num_train = 256;
  cfg.data.num_test = 64;
  cfg.opt.kind = "sgd";
  cfg.opt.lr.base = 0.4;
  cfg.batch_size = 16;
  cfg.sync = {.kind = "ssp", .staleness = 3};
  cfg.compute.kind = "lognormal";
  cfg.compute.base_seconds = 0.01;
  cfg.compute.sigma = 0.2;
  cfg.seed = 11;
  cfg.replication_factor = 2;
  cfg.read.fleet = 4;
  cfg.read.pulls = 50;
  cfg.read.max_staleness_clocks = 3;
  return cfg;
}

TEST(ReadOffloadE2E, FleetCompletesWithZeroViolationsAndReplicaShare) {
  auto cfg = fleet_cfg();
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.fleet_pulls, 4 * 50);
  EXPECT_EQ(r.read_violations, 0);
  EXPECT_GT(r.replica_reads_served, 0) << "offloading must actually hit replicas";
  EXPECT_GT(r.head_reads_served, 0) << "the head stays in the read rotation";
  EXPECT_GT(r.fleet_throughput, 0.0);
}

TEST(ReadOffloadE2E, HeadOnlyBaselineNeverTouchesReplicas) {
  auto cfg = fleet_cfg();
  cfg.read.prefer_replica = false;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.fleet_pulls, 4 * 50);
  EXPECT_EQ(r.read_violations, 0);
  EXPECT_EQ(r.replica_reads_served, 0);
}

TEST(ReadOffloadE2E, BoundHoldsAcrossMidRunPromotion) {
  // Kill shard 0's head mid-run with no restart: reads routed at the dead
  // node must retry to the (promoted) head, redirects must retarget, and not
  // one replica-served response may violate its staleness bound.
  auto cfg = fleet_cfg();
  cfg.read.pulls = 100;
  cfg.faults.crashes.push_back(
      {/*server_rank=*/0, /*crash_time=*/0.2, std::numeric_limits<double>::infinity()});
  const auto r = core::run_experiment(cfg);
  EXPECT_GE(r.failovers, 1) << "the head kill must promote a successor";
  EXPECT_EQ(r.fleet_pulls, 4 * 100) << "every fleet pull completes despite the kill";
  EXPECT_EQ(r.read_violations, 0);
  EXPECT_EQ(r.rolled_back_updates, 0);
}

TEST(ReadOffloadE2E, ThreadBackendFleetMatchesSemantics) {
  auto cfg = fleet_cfg();
  cfg.backend = core::Backend::kThreads;
  cfg.compute.kind = "fixed";
  cfg.compute.base_seconds = 0.0;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.fleet_pulls, 4 * 50);
  EXPECT_EQ(r.read_violations, 0);
  EXPECT_GT(r.replica_reads_served, 0);
}

}  // namespace
}  // namespace fluentps
