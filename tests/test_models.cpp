// Model zoo tests: layer maps, initialization statistics, numeric gradient
// checks (parameterized over all three architectures), and training sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "ml/model.h"
#include "ml/models/resmlp.h"
#include "ml/ops.h"

namespace fluentps::ml {
namespace {

struct ModelCase {
  const char* name;
  ModelSpec spec;
  std::size_t dim;
  std::size_t classes;
};

class ModelTest : public ::testing::TestWithParam<ModelCase> {
 protected:
  std::unique_ptr<Model> make() const {
    const auto& p = GetParam();
    return make_model(p.spec, p.dim, p.classes);
  }

  /// A tiny deterministic batch.
  struct Data {
    std::vector<float> X;
    std::vector<int> y;
    Batch batch;
  };
  Data make_batch(std::size_t n) const {
    Data d;
    const auto& p = GetParam();
    Rng rng(77);
    d.X.resize(n * p.dim);
    d.y.resize(n);
    for (auto& x : d.X) x = static_cast<float>(rng.normal());
    for (auto& y : d.y) y = static_cast<int>(rng.uniform_u64(p.classes));
    d.batch = Batch{d.X.data(), d.y.data(), n, p.dim};
    return d;
  }
};

TEST_P(ModelTest, LayerSizesSumToNumParams) {
  const auto model = make();
  const auto sizes = model->layer_sizes();
  EXPECT_FALSE(sizes.empty());
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), model->num_params());
}

TEST_P(ModelTest, InitIsDeterministic) {
  const auto model = make();
  std::vector<float> a(model->num_params()), b(model->num_params());
  Rng r1(5), r2(5);
  model->init_params(a, r1);
  model->init_params(b, r2);
  EXPECT_EQ(a, b);
}

TEST_P(ModelTest, InitHasFiniteBoundedValues) {
  const auto model = make();
  std::vector<float> w(model->num_params());
  Rng rng(6);
  model->init_params(w, rng);
  for (const float x : w) {
    ASSERT_TRUE(std::isfinite(x));
    ASSERT_LT(std::abs(x), 10.0f);
  }
}

TEST_P(ModelTest, LossMatchesGradReturn) {
  const auto model = make();
  std::vector<float> w(model->num_params()), g(model->num_params());
  Rng rng(7);
  model->init_params(w, rng);
  Workspace ws;
  const auto d = make_batch(5);
  const double l1 = model->grad(w, d.batch, g, ws);
  const double l2 = model->loss(w, d.batch, ws);
  EXPECT_NEAR(l1, l2, 1e-9);
}

TEST_P(ModelTest, NumericGradientCheck) {
  const auto model = make();
  std::vector<float> w(model->num_params()), g(model->num_params());
  Rng rng(8);
  model->init_params(w, rng);
  Workspace ws;
  const auto d = make_batch(4);
  model->grad(w, d.batch, g, ws);

  // Check a deterministic sample of coordinates (all for small models).
  Rng pick(9);
  const std::size_t n_checks = std::min<std::size_t>(60, w.size());
  const float eps = 1e-2f;
  double max_rel = 0.0;
  for (std::size_t t = 0; t < n_checks; ++t) {
    const auto i = static_cast<std::size_t>(pick.uniform_u64(w.size()));
    const float orig = w[i];
    w[i] = orig + eps;
    const double fp = model->loss(w, d.batch, ws);
    w[i] = orig - eps;
    const double fm = model->loss(w, d.batch, ws);
    w[i] = orig;
    const double numeric = (fp - fm) / (2.0 * eps);
    const double denom = std::max({std::abs(numeric), std::abs(static_cast<double>(g[i])), 1e-3});
    max_rel = std::max(max_rel, std::abs(numeric - g[i]) / denom);
  }
  EXPECT_LT(max_rel, 0.08) << "analytic vs numeric gradient mismatch";
}

TEST_P(ModelTest, GradientDescentReducesLoss) {
  const auto model = make();
  std::vector<float> w(model->num_params()), g(model->num_params());
  Rng rng(10);
  model->init_params(w, rng);
  Workspace ws;
  const auto d = make_batch(16);
  const double before = model->loss(w, d.batch, ws);
  // Step size small enough for the 27-block residual net to stay stable.
  for (int step = 0; step < 150; ++step) {
    model->grad(w, d.batch, g, ws);
    for (std::size_t i = 0; i < w.size(); ++i) w[i] -= 0.05f * g[i];
  }
  const double after = model->loss(w, d.batch, ws);
  EXPECT_TRUE(std::isfinite(after));
  EXPECT_LT(after, before * 0.7) << "full-batch GD should overfit a tiny batch";
}

TEST_P(ModelTest, PredictReturnsValidClasses) {
  const auto model = make();
  std::vector<float> w(model->num_params());
  Rng rng(11);
  model->init_params(w, rng);
  Workspace ws;
  const auto d = make_batch(9);
  std::vector<int> pred(9);
  model->predict(w, d.batch, pred, ws);
  for (const int p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, static_cast<int>(GetParam().classes));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelTest,
    ::testing::Values(ModelCase{"softmax", {.kind = "softmax"}, 12, 5},
                      ModelCase{"mlp", {.kind = "mlp", .hidden = 16}, 12, 5},
                      ModelCase{"resmlp_small", {.kind = "resmlp", .hidden = 8, .blocks = 3}, 12, 5},
                      ModelCase{"resmlp_deep", {.kind = "resmlp", .hidden = 8, .blocks = 27}, 12, 5}),
    [](const ::testing::TestParamInfo<ModelCase>& info) { return info.param.name; });

TEST(ResMlp, DepthIs56WithPaperBlocks) {
  ResMlp m(32, 16, 27, 10);
  EXPECT_EQ(m.depth(), 56u);
  // Layer map: stem (2) + 27 blocks * 4 segments + head (2).
  EXPECT_EQ(m.layer_sizes().size(), 2u + 27u * 4u + 2u);
}

TEST(ResMlp, ForwardStableAtDepth) {
  // The sqrt(blocks) residual scaling must keep activations bounded at init.
  ResMlp m(32, 16, 27, 10);
  std::vector<float> w(m.num_params());
  Rng rng(12);
  m.init_params(w, rng);
  std::vector<float> X(8 * 32);
  std::vector<int> y(8, 0);
  for (auto& x : X) x = static_cast<float>(rng.normal());
  Workspace ws;
  const Batch batch{X.data(), y.data(), 8, 32};
  const double loss = m.loss(w, batch, ws);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_LT(loss, 10.0);
}

TEST(ModelFactory, RejectsUnknownKind) {
  EXPECT_DEATH((void)make_model(ModelSpec{.kind = "transformer"}, 8, 2), "unknown model kind");
}

TEST(Workspace, ReusesStorage) {
  Workspace ws;
  auto a = ws.buf(0, 100);
  EXPECT_EQ(a.size(), 100u);
  auto b = ws.buf(0, 50);
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(ws.capacity_floats(), 100u) << "slot 0 keeps its high-water mark";
  (void)ws.buf(3, 10);
  EXPECT_EQ(ws.capacity_floats(), 110u);
}

}  // namespace
}  // namespace fluentps::ml
