// Unit tests for the byte writer/reader, plus wire round-trips of the
// Message struct (including the reliability layer's seq / request_id fields).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/serialization.h"
#include "net/message.h"

namespace fluentps::io {
namespace {

TEST(Serialization, PodRoundTrip) {
  Writer w;
  w.put<std::uint8_t>(7);
  w.put<std::uint32_t>(123456);
  w.put<std::int64_t>(-42);
  w.put<double>(3.5);
  w.put<float>(-1.25f);

  Reader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_EQ(r.get<std::uint32_t>(), 123456u);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.5);
  EXPECT_FLOAT_EQ(r.get<float>(), -1.25f);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialization, StringRoundTrip) {
  Writer w;
  w.put_string("hello fluentps");
  w.put_string("");
  Reader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello fluentps");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.ok());
}

TEST(Serialization, VectorRoundTrip) {
  Writer w;
  const std::vector<float> v{1.0f, -2.5f, 3.25f};
  const std::vector<std::int32_t> ints{-1, 0, 7};
  w.put_vector(v);
  w.put_vector(ints);
  Reader r(w.bytes());
  EXPECT_EQ(r.get_vector<float>(), v);
  EXPECT_EQ(r.get_vector<std::int32_t>(), ints);
  EXPECT_TRUE(r.ok());
}

TEST(Serialization, EmptyVectorRoundTrip) {
  Writer w;
  w.put_vector(std::vector<double>{});
  Reader r(w.bytes());
  EXPECT_TRUE(r.get_vector<double>().empty());
  EXPECT_TRUE(r.ok());
}

TEST(Serialization, UnderflowLatchesNotOk) {
  Writer w;
  w.put<std::uint32_t>(5);
  Reader r(w.bytes());
  (void)r.get<std::uint64_t>();  // asks for 8 bytes, only 4 present
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay failed and return defaults.
  EXPECT_EQ(r.get<std::uint8_t>(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Serialization, TruncatedVectorFails) {
  Writer w;
  w.put<std::uint64_t>(1000);  // claims 1000 elements, provides none
  Reader r(w.bytes());
  EXPECT_TRUE(r.get_vector<float>().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialization, TruncatedStringFails) {
  Writer w;
  w.put<std::uint64_t>(50);
  w.put_raw("abc", 3);
  Reader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Serialization, RawBytes) {
  Writer w;
  const char data[4] = {'a', 'b', 'c', 'd'};
  w.put_raw(data, 4);
  EXPECT_EQ(w.size(), 4u);
  Reader r(w.bytes());
  EXPECT_EQ(r.get<char>(), 'a');
}

TEST(Serialization, TakeMovesBuffer) {
  Writer w;
  w.put<std::uint32_t>(9);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(MessageWire, SeqAndRequestIdRoundTrip) {
  net::Message m;
  m.type = net::MsgType::kPush;
  m.src = 7;
  m.dst = 3;
  m.request_id = 0xDEADBEEFCAFEull;
  m.seq = std::numeric_limits<std::uint64_t>::max() - 1;
  m.progress = -5;
  m.worker_rank = 11;
  m.server_rank = 2;
  m.values = {1.0f, -2.5f, 0.0f};
  const auto frame = m.serialize();
  net::Message out;
  ASSERT_TRUE(net::Message::deserialize(frame, &out));
  EXPECT_EQ(out.type, m.type);
  EXPECT_EQ(out.src, m.src);
  EXPECT_EQ(out.dst, m.dst);
  EXPECT_EQ(out.request_id, m.request_id);
  EXPECT_EQ(out.seq, m.seq) << "reliability sequence number must survive the wire";
  EXPECT_EQ(out.progress, m.progress);
  EXPECT_EQ(out.worker_rank, m.worker_rank);
  EXPECT_EQ(out.server_rank, m.server_rank);
  EXPECT_EQ(out.values, m.values);
}

TEST(MessageWire, ControlMessagesRoundTripEveryType) {
  for (const auto t :
       {net::MsgType::kPushAck, net::MsgType::kPull, net::MsgType::kPullGrant,
        net::MsgType::kHeartbeat, net::MsgType::kShutdown, net::MsgType::kRecover,
        net::MsgType::kRecoverAck}) {
    net::Message m;
    m.type = t;
    m.seq = 42;
    m.request_id = 99;
    m.progress = 17;
    const auto frame = m.serialize();
    net::Message out;
    ASSERT_TRUE(net::Message::deserialize(frame, &out)) << to_string(t);
    EXPECT_EQ(out.type, t);
    EXPECT_EQ(out.seq, 42u) << to_string(t);
    EXPECT_EQ(out.request_id, 99u) << to_string(t);
    EXPECT_EQ(out.progress, 17) << to_string(t);
  }
}

TEST(MessageWire, TruncatedFrameRejected) {
  net::Message m;
  m.seq = 1;
  m.values.assign(16, 2.0f);
  auto frame = m.serialize();
  frame.resize(frame.size() - 5);
  net::Message out;
  EXPECT_FALSE(net::Message::deserialize(frame, &out));
}

TEST(Serialization, InterleavedMixedContent) {
  Writer w;
  for (int i = 0; i < 100; ++i) {
    w.put<std::int32_t>(i);
    w.put_string(std::string(static_cast<std::size_t>(i % 7), 'x'));
  }
  Reader r(w.bytes());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.get<std::int32_t>(), i);
    EXPECT_EQ(r.get_string().size(), static_cast<std::size_t>(i % 7));
  }
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

}  // namespace
}  // namespace fluentps::io
