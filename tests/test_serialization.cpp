// Unit tests for the byte writer/reader.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialization.h"

namespace fluentps::io {
namespace {

TEST(Serialization, PodRoundTrip) {
  Writer w;
  w.put<std::uint8_t>(7);
  w.put<std::uint32_t>(123456);
  w.put<std::int64_t>(-42);
  w.put<double>(3.5);
  w.put<float>(-1.25f);

  Reader r(w.bytes());
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_EQ(r.get<std::uint32_t>(), 123456u);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.5);
  EXPECT_FLOAT_EQ(r.get<float>(), -1.25f);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialization, StringRoundTrip) {
  Writer w;
  w.put_string("hello fluentps");
  w.put_string("");
  Reader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello fluentps");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.ok());
}

TEST(Serialization, VectorRoundTrip) {
  Writer w;
  const std::vector<float> v{1.0f, -2.5f, 3.25f};
  const std::vector<std::int32_t> ints{-1, 0, 7};
  w.put_vector(v);
  w.put_vector(ints);
  Reader r(w.bytes());
  EXPECT_EQ(r.get_vector<float>(), v);
  EXPECT_EQ(r.get_vector<std::int32_t>(), ints);
  EXPECT_TRUE(r.ok());
}

TEST(Serialization, EmptyVectorRoundTrip) {
  Writer w;
  w.put_vector(std::vector<double>{});
  Reader r(w.bytes());
  EXPECT_TRUE(r.get_vector<double>().empty());
  EXPECT_TRUE(r.ok());
}

TEST(Serialization, UnderflowLatchesNotOk) {
  Writer w;
  w.put<std::uint32_t>(5);
  Reader r(w.bytes());
  (void)r.get<std::uint64_t>();  // asks for 8 bytes, only 4 present
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay failed and return defaults.
  EXPECT_EQ(r.get<std::uint8_t>(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(Serialization, TruncatedVectorFails) {
  Writer w;
  w.put<std::uint64_t>(1000);  // claims 1000 elements, provides none
  Reader r(w.bytes());
  EXPECT_TRUE(r.get_vector<float>().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialization, TruncatedStringFails) {
  Writer w;
  w.put<std::uint64_t>(50);
  w.put_raw("abc", 3);
  Reader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Serialization, RawBytes) {
  Writer w;
  const char data[4] = {'a', 'b', 'c', 'd'};
  w.put_raw(data, 4);
  EXPECT_EQ(w.size(), 4u);
  Reader r(w.bytes());
  EXPECT_EQ(r.get<char>(), 'a');
}

TEST(Serialization, TakeMovesBuffer) {
  Writer w;
  w.put<std::uint32_t>(9);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(Serialization, InterleavedMixedContent) {
  Writer w;
  for (int i = 0; i < 100; ++i) {
    w.put<std::int32_t>(i);
    w.put_string(std::string(static_cast<std::size_t>(i % 7), 'x'));
  }
  Reader r(w.bytes());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.get<std::int32_t>(), i);
    EXPECT_EQ(r.get_string().size(), static_cast<std::size_t>(i % 7));
  }
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

}  // namespace
}  // namespace fluentps::io
