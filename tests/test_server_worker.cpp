// Integration tests: Server + WorkerClient over the in-process transport,
// and Server driven directly (single-context) to verify Algorithm 1's
// server-side arithmetic.
#include <gtest/gtest.h>

#include <numeric>

#include "net/inproc_transport.h"
#include "ps/server.h"
#include "ps/slicing.h"
#include "ps/worker.h"

namespace fluentps::ps {
namespace {

struct Rig {
  Sharding sharding;
  net::InprocTransport transport;
  std::vector<std::unique_ptr<Server>> servers;
  std::vector<std::unique_ptr<WorkerClient>> workers;

  Rig(std::uint32_t n_workers, std::uint32_t n_servers, std::size_t params,
      const SyncModelSpec& sync, DprMode mode, std::vector<float> w0 = {}) {
    EpsSlicer slicer(/*chunk=*/7);  // odd chunk: exercises slice math
    sharding = slicer.shard({params}, n_servers);
    if (w0.empty()) w0.assign(params, 0.0f);
    for (std::uint32_t m = 0; m < n_servers; ++m) {
      ServerSpec spec;
      spec.node_id = 1 + m;
      spec.server_rank = m;
      spec.num_workers = n_workers;
      spec.layout = sharding.shards[m];
      spec.initial_shard.resize(spec.layout.total);
      spec.layout.gather(w0, spec.initial_shard);
      spec.engine.num_workers = n_workers;
      spec.engine.mode = mode;
      spec.engine.model = make_sync_model(sync, n_workers);
      spec.engine.seed = 100 + m;
      auto server = std::make_unique<Server>(std::move(spec), transport);
      Server* raw = server.get();
      transport.register_node(raw->node_id(),
                              [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      servers.push_back(std::move(server));
    }
    for (std::uint32_t n = 0; n < n_workers; ++n) {
      WorkerSpec spec;
      spec.node_id = 1 + n_servers + n;
      spec.worker_rank = n;
      for (std::uint32_t m = 0; m < n_servers; ++m) spec.server_nodes.push_back(1 + m);
      spec.sharding = &sharding;
      auto w = std::make_unique<WorkerClient>(std::move(spec), transport);
      WorkerClient* raw = w.get();
      transport.register_node(raw->node_id(),
                              [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      workers.push_back(std::move(w));
    }
  }

  ~Rig() {
    // Join the dispatch threads before servers/workers are destroyed: member
    // destruction runs workers → servers → transport, so without an explicit
    // shutdown a late dispatch could invoke a handler on a dead node.
    transport.shutdown();
  }

  std::vector<float> global() const {
    std::vector<float> flat(sharding.num_params, 0.0f);
    for (const auto& s : servers) s->snapshot_into(flat);
    return flat;
  }
};

TEST(ServerWorker, SingleWorkerPushPullRoundTrip) {
  Rig rig(1, 2, 20, {.kind = "bsp"}, DprMode::kLazy);
  std::vector<float> update(20);
  std::iota(update.begin(), update.end(), 1.0f);  // 1..20
  std::vector<float> params(20, -1.0f);
  rig.workers[0]->push(update, 0);
  const auto t = rig.workers[0]->pull(KeyRange::all(), ReadOptions{.clock = 0});
  rig.workers[0]->wait_pull(t, params);
  // N = 1: server applies the full update.
  for (std::size_t i = 0; i < 20; ++i) EXPECT_FLOAT_EQ(params[i], update[i]) << i;
}

TEST(ServerWorker, DeprecatedPullShimMatchesReadOptionsApi) {
  // The legacy pull(progress) overload must stay byte-compatible with the
  // strong-consistency ReadOptions path (seq = 0 on the wire).
  Rig rig(1, 2, 20, {.kind = "bsp"}, DprMode::kLazy);
  std::vector<float> update(20);
  std::iota(update.begin(), update.end(), 1.0f);
  std::vector<float> via_shim(20, -1.0f), via_opts(20, -2.0f);
  rig.workers[0]->push(update, 0);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const auto t_shim = rig.workers[0]->pull(0);
#pragma GCC diagnostic pop
  rig.workers[0]->wait_pull(t_shim, via_shim);
  const auto t_opts = rig.workers[0]->pull(KeyRange::all(), ReadOptions{.clock = 0});
  rig.workers[0]->wait_pull(t_opts, via_opts);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_FLOAT_EQ(via_shim[i], via_opts[i]) << i;
}

TEST(ServerWorker, UpdatesAveragedOverWorkers) {
  Rig rig(2, 1, 4, {.kind = "bsp"}, DprMode::kLazy);
  const std::vector<float> u0{2.0f, 2.0f, 2.0f, 2.0f};
  const std::vector<float> u1{4.0f, 4.0f, 4.0f, 4.0f};
  std::vector<float> p0(4), p1(4);
  // Both workers push and pull concurrently from this test thread; BSP blocks
  // each pull until both pushes land, so spawn threads for the waits.
  rig.workers[0]->push(u0, 0);
  rig.workers[1]->push(u1, 0);
  const auto t0 = rig.workers[0]->pull(KeyRange::all(), ReadOptions{.clock = 0});
  const auto t1 = rig.workers[1]->pull(KeyRange::all(), ReadOptions{.clock = 0});
  rig.workers[0]->wait_pull(t0, p0);
  rig.workers[1]->wait_pull(t1, p1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(p0[i], 3.0f) << "(2 + 4) / 2";
    EXPECT_FLOAT_EQ(p0[i], p1[i]);
  }
}

TEST(ServerWorker, BspBlocksFastWorkerUntilSlowPushes) {
  Rig rig(2, 1, 4, {.kind = "bsp"}, DprMode::kLazy);
  const std::vector<float> u(4, 1.0f);
  std::vector<float> params(4);
  rig.workers[0]->push(u, 0);
  const auto t = rig.workers[0]->pull(KeyRange::all(), ReadOptions{.clock = 0});
  std::atomic<bool> served{false};
  std::jthread waiter([&] {
    rig.workers[0]->wait_pull(t, params);
    served = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(served) << "worker 1 has not pushed iteration 0 yet";
  rig.workers[1]->push(u, 0);
  waiter.join();
  EXPECT_TRUE(served);
  EXPECT_EQ(rig.servers[0]->engine().dpr_total(), 1);
}

TEST(ServerWorker, MultiIterationTraining) {
  // 2 workers, 3 servers, BSP for 10 iterations of "add ones": the global
  // model must end exactly at iterations * 1.0 in every coordinate.
  constexpr std::size_t kParams = 33;
  constexpr std::int64_t kIters = 10;
  Rig rig(2, 3, kParams, {.kind = "bsp"}, DprMode::kLazy);
  const std::vector<float> ones(kParams, 1.0f);
  auto loop = [&](std::uint32_t rank) {
    std::vector<float> params(kParams);
    for (std::int64_t i = 0; i < kIters; ++i) {
      rig.workers[rank]->push(ones, i);
      const auto t = rig.workers[rank]->pull(KeyRange::all(), ReadOptions{.clock = i});
      rig.workers[rank]->wait_pull(t, params);
      // A BSP pull at iteration i is answered only after every worker's
      // iteration-i push was applied, so each coordinate is at least i+1.
      // It is NOT exactly i+1: the other worker may already have pushed
      // iteration i+1 by the time the response is copied (parameters are
      // monotone-fresh — the pull condition bounds V_train, not the shard
      // contents), adding at most (N-1)/N = 0.5. EXPECT (not ASSERT): an
      // ASSERT here would exit this helper thread mid-protocol and deadlock
      // the peer worker, turning a value mismatch into a test timeout.
      for (std::size_t j = 0; j < kParams; ++j) {
        EXPECT_GE(params[j], static_cast<float>(i + 1)) << "iter " << i;
        EXPECT_LE(params[j], static_cast<float>(i + 1) + 0.5f) << "iter " << i;
      }
    }
  };
  {
    std::jthread a([&] { loop(0); });
    std::jthread b([&] { loop(1); });
  }
  const auto g = rig.global();
  for (const float v : g) EXPECT_FLOAT_EQ(v, static_cast<float>(kIters));
}

TEST(ServerWorker, SspFastWorkerRunsAhead) {
  // s = 4: worker 0 can complete several iterations while worker 1 is idle.
  Rig rig(2, 1, 4, {.kind = "ssp", .staleness = 4}, DprMode::kLazy);
  const std::vector<float> u(4, 1.0f);
  std::vector<float> params(4);
  for (std::int64_t i = 0; i < 3; ++i) {  // gaps 0,1,2 < 4: never blocks
    rig.workers[0]->push(u, i);
    const auto t = rig.workers[0]->pull(KeyRange::all(), ReadOptions{.clock = i});
    rig.workers[0]->wait_pull(t, params);
  }
  EXPECT_EQ(rig.servers[0]->engine().dpr_total(), 0);
  EXPECT_EQ(rig.servers[0]->engine().fastest(), 2);
}

TEST(ServerWorker, ServerCountsPushesAndPulls) {
  Rig rig(1, 1, 4, {.kind = "asp"}, DprMode::kLazy);
  const std::vector<float> u(4, 1.0f);
  std::vector<float> params(4);
  for (std::int64_t i = 0; i < 5; ++i) {
    rig.workers[0]->push(u, i);
    const auto t = rig.workers[0]->pull(KeyRange::all(), ReadOptions{.clock = i});
    rig.workers[0]->wait_pull(t, params);
  }
  EXPECT_EQ(rig.servers[0]->pushes_applied(), 5);
  EXPECT_EQ(rig.servers[0]->pulls_answered(), 5);
}

TEST(ServerWorker, RuntimeConditionSwapUnblocksCluster) {
  // Start BSP; worker 0 alone cannot proceed. Installing an ASP pull
  // condition on the server releases new pulls immediately.
  Rig rig(2, 1, 4, {.kind = "bsp"}, DprMode::kSoftBarrier);
  const std::vector<float> u(4, 1.0f);
  std::vector<float> params(4);
  rig.workers[0]->push(u, 0);
  rig.servers[0]->set_pull_condition([](const PullCtx&, const SyncView&, Rng&) { return true; });
  const auto t = rig.workers[0]->pull(KeyRange::all(), ReadOptions{.clock = 0});
  rig.workers[0]->wait_pull(t, params);  // must not hang
  EXPECT_FLOAT_EQ(params[0], 0.5f);
}

TEST(ServerWorker, SnapshotIsThreadSafeDuringTraffic) {
  Rig rig(1, 1, 64, {.kind = "asp"}, DprMode::kLazy);
  const std::vector<float> u(64, 0.01f);
  std::atomic<bool> stop{false};
  std::jthread reader([&] {
    while (!stop) {
      const auto snap = rig.servers[0]->snapshot();
      ASSERT_EQ(snap.size(), 64u);
    }
  });
  std::vector<float> params(64);
  for (std::int64_t i = 0; i < 200; ++i) {
    rig.workers[0]->push(u, i);
    const auto t = rig.workers[0]->pull(KeyRange::all(), ReadOptions{.clock = i});
    rig.workers[0]->wait_pull(t, params);
  }
  stop = true;
}

TEST(Server, PushSizeMismatchAborts) {
  net::InprocTransport transport;
  EpsSlicer slicer(8);
  auto sharding = slicer.shard({16}, 1);
  ServerSpec spec;
  spec.node_id = 1;
  spec.server_rank = 0;
  spec.num_workers = 1;
  spec.layout = sharding.shards[0];
  spec.initial_shard.assign(16, 0.0f);
  spec.engine.num_workers = 1;
  spec.engine.model = make_sync_model({.kind = "asp"}, 1);
  Server server(std::move(spec), transport);
  net::Message bad;
  bad.type = net::MsgType::kPush;
  bad.values.resize(3);  // wrong size
  EXPECT_DEATH(server.handle(std::move(bad)), "push size");
}

}  // namespace
}  // namespace fluentps::ps
