// Protocol edge cases: stale responses, unexpected message types, message
// routing errors — exercised directly against WorkerClient / Server / the
// transports.
#include <gtest/gtest.h>

#include "net/inproc_transport.h"
#include "ps/server.h"
#include "ps/slicing.h"
#include "ps/worker.h"

namespace fluentps::ps {
namespace {

struct Fixture {
  Sharding sharding;
  net::InprocTransport transport;
  std::unique_ptr<WorkerClient> worker;
  std::unique_ptr<Server> server;

  Fixture() {
    EpsSlicer slicer(4);
    sharding = slicer.shard({8}, 1);
    ServerSpec sspec;
    sspec.node_id = 1;
    sspec.server_rank = 0;
    sspec.num_workers = 1;
    sspec.layout = sharding.shards[0];
    sspec.initial_shard.assign(8, 0.0f);
    sspec.engine.num_workers = 1;
    sspec.engine.model = make_sync_model({.kind = "asp"}, 1);
    sspec.engine.seed = 1;
    server = std::make_unique<Server>(std::move(sspec), transport);
    transport.register_node(1, [this](net::Message&& m) { server->handle(std::move(m)); });

    WorkerSpec wspec;
    wspec.node_id = 2;
    wspec.worker_rank = 0;
    wspec.server_nodes = {1};
    wspec.sharding = &sharding;
    worker = std::make_unique<WorkerClient>(std::move(wspec), transport);
    transport.register_node(2, [this](net::Message&& m) { worker->handle(std::move(m)); });
  }
};

TEST(ProtocolEdge, StalePullResponseIsDropped) {
  Fixture fx;
  const std::vector<float> u(8, 1.0f);
  std::vector<float> params(8);
  fx.worker->push(u, 0);
  const auto t1 = fx.worker->pull(KeyRange::all(), ReadOptions{.clock = 0});
  fx.worker->wait_pull(t1, params);

  // Forge a response carrying the OLD ticket after a new pull superseded it.
  fx.worker->push(u, 1);
  const auto t2 = fx.worker->pull(KeyRange::all(), ReadOptions{.clock = 1});
  net::Message stale;
  stale.type = net::MsgType::kPullResp;
  stale.src = 1;
  stale.dst = 2;
  stale.request_id = t1;  // superseded
  stale.server_rank = 0;
  stale.values.assign(8, -999.0f);
  fx.worker->handle(std::move(stale));

  fx.worker->wait_pull(t2, params);
  for (const float v : params) EXPECT_NE(v, -999.0f) << "stale response must not be applied";
}

TEST(ProtocolEdge, WorkerIgnoresUnknownMessageTypes) {
  Fixture fx;
  net::Message odd;
  odd.type = net::MsgType::kHeartbeat;
  odd.dst = 2;
  fx.worker->handle(std::move(odd));  // must not crash or corrupt state
  const std::vector<float> u(8, 1.0f);
  std::vector<float> params(8);
  fx.worker->push(u, 0);
  const auto t = fx.worker->pull(KeyRange::all(), ReadOptions{.clock = 0});
  fx.worker->wait_pull(t, params);
  EXPECT_FLOAT_EQ(params[0], 1.0f);
}

TEST(ProtocolEdge, ServerIgnoresUnknownMessageTypes) {
  Fixture fx;
  net::Message odd;
  odd.type = net::MsgType::kPullGrant;
  odd.dst = 1;
  fx.transport.send(std::move(odd));
  // The server keeps functioning.
  const std::vector<float> u(8, 2.0f);
  std::vector<float> params(8);
  fx.worker->push(u, 0);
  const auto t = fx.worker->pull(KeyRange::all(), ReadOptions{.clock = 0});
  fx.worker->wait_pull(t, params);
  EXPECT_FLOAT_EQ(params[3], 2.0f);
}

TEST(ProtocolEdge, MetadataOnlyPushCountsProgressWithoutApplying) {
  Fixture fx;
  std::vector<float> params(8, -1.0f);
  fx.worker->push_metadata(0);
  const auto t = fx.worker->pull(KeyRange::all(), ReadOptions{.clock = 0});
  fx.worker->wait_pull(t, params);
  for (const float v : params) EXPECT_FLOAT_EQ(v, 0.0f) << "no values applied";
  EXPECT_EQ(fx.server->pushes_applied(), 0);
  EXPECT_EQ(fx.server->engine().fastest(), 0) << "progress was still recorded";
}

TEST(ProtocolEdge, ShutdownMessageIsBenign) {
  Fixture fx;
  net::Message bye;
  bye.type = net::MsgType::kShutdown;
  bye.dst = 1;
  fx.transport.send(std::move(bye));
  net::Message bye2;
  bye2.type = net::MsgType::kShutdown;
  bye2.dst = 2;
  fx.transport.send(std::move(bye2));
  const std::vector<float> u(8, 1.0f);
  std::vector<float> params(8);
  fx.worker->push(u, 0);
  const auto t = fx.worker->pull(KeyRange::all(), ReadOptions{.clock = 0});
  fx.worker->wait_pull(t, params);
  EXPECT_FLOAT_EQ(params[0], 1.0f);
}

}  // namespace
}  // namespace fluentps::ps
