// Assorted edge cases across modules: degenerate cluster shapes, zero-size
// layers, first-contact protocol states, and boundary configurations.
#include <gtest/gtest.h>

#include "core/fluentps.h"
#include "ml/ops.h"

namespace fluentps {
namespace {

TEST(EdgeCluster, OneWorkerOneServerEverySyncModel) {
  // N = 1 degenerates every model to serial SGD; all must produce the exact
  // same final parameters.
  std::vector<std::vector<float>> finals;
  for (const char* kind : {"bsp", "asp", "ssp", "pssp", "dsps", "drop"}) {
    core::ExperimentConfig cfg;
    cfg.num_workers = 1;
    cfg.num_servers = 1;
    cfg.max_iters = 30;
    cfg.sync.kind = kind;
    cfg.sync.staleness = 2;
    cfg.sync.prob = 0.5;
    cfg.model.kind = "softmax";
    cfg.data.num_train = 256;
    cfg.data.num_test = 64;
    cfg.batch_size = 8;
    cfg.seed = 17;
    finals.push_back(core::run_experiment(cfg).final_params);
  }
  for (std::size_t i = 1; i < finals.size(); ++i) {
    EXPECT_EQ(finals[i], finals[0]) << "model " << i << " diverged at N=1";
  }
}

TEST(EdgeCluster, MoreServersThanLayerChunks) {
  // 6 servers for a model whose EPS chunking yields fewer chunks than
  // servers: some servers own nothing, and training must still work.
  core::ExperimentConfig cfg;
  cfg.num_workers = 2;
  cfg.num_servers = 6;
  cfg.max_iters = 30;
  cfg.model.kind = "softmax";
  cfg.data.dim = 4;
  cfg.data.num_classes = 2;
  cfg.data.num_train = 128;
  cfg.data.num_test = 64;
  cfg.batch_size = 8;
  cfg.eps_chunk = 1 << 20;  // everything in 2 chunks (W and b)
  cfg.seed = 23;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, 30);
  EXPECT_GT(r.final_accuracy, 0.4);
}

TEST(EdgeCluster, SingleIteration) {
  core::ExperimentConfig cfg;
  cfg.num_workers = 3;
  cfg.num_servers = 2;
  cfg.max_iters = 1;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 64;
  cfg.data.num_test = 32;
  cfg.batch_size = 4;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_GT(r.total_time, 0.0);
}

TEST(EdgeCluster, ManyMoreWorkersThanSamplesPerShard) {
  // 32 workers on 64 training rows: 2-row shards, batch clamped.
  core::ExperimentConfig cfg;
  cfg.num_workers = 32;
  cfg.num_servers = 1;
  cfg.max_iters = 10;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 64;
  cfg.data.num_test = 32;
  cfg.batch_size = 16;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, 10);
}

TEST(EdgeSlicing, ZeroLengthLayerHandled) {
  ps::DefaultSlicer dflt;
  const auto sh = dflt.shard({10, 0, 6}, 2);
  sh.validate();
  EXPECT_EQ(sh.num_params, 16u);
  ps::EpsSlicer eps(4);
  const auto se = eps.shard({10, 0, 6}, 2);
  se.validate();
  EXPECT_EQ(se.num_params, 16u);
}

TEST(EdgeSlicing, SingleServerGetsEverything) {
  ps::EpsSlicer eps(8);
  const auto sh = eps.shard({100, 50}, 1);
  EXPECT_EQ(sh.shards[0].total, 150u);
  EXPECT_DOUBLE_EQ(sh.imbalance(), 1.0);
}

TEST(EdgeEngine, PullBeforeAnyPush) {
  ps::SyncEngine::Spec spec;
  spec.num_workers = 2;
  spec.mode = ps::DprMode::kLazy;
  spec.model = ps::make_sync_model({.kind = "ssp", .staleness = 2}, 2);
  spec.seed = 1;
  ps::SyncEngine e(std::move(spec));
  // First contact is a pull (e.g. a worker fetching initial weights).
  EXPECT_TRUE(e.on_pull(0, 0, 1)) << "gap 0 < s: served";
  EXPECT_EQ(e.fastest(), 0);
  EXPECT_EQ(e.slowest(), -1) << "worker 1 still unknown";
}

TEST(EdgeEngine, NegativeProgressForInitialFetch) {
  // Convention: a pull at progress -1 asks for w0 before any iteration.
  ps::SyncEngine::Spec spec;
  spec.num_workers = 2;
  spec.mode = ps::DprMode::kSoftBarrier;
  spec.model = ps::make_sync_model({.kind = "bsp"}, 2);
  spec.seed = 1;
  ps::SyncEngine e(std::move(spec));
  EXPECT_TRUE(e.on_pull(0, -1, 1)) << "-1 < V_train = 0: served immediately";
}

TEST(EdgeOps, GemmWithZeroDimensions) {
  std::vector<float> A{1.0f}, B{1.0f}, C{42.0f};
  ml::gemm_nn(0, 1, 1, 1.0f, A.data(), B.data(), 0.0f, C.data());
  EXPECT_FLOAT_EQ(C[0], 42.0f) << "M = 0 touches nothing";
  ml::gemm_nn(1, 1, 0, 1.0f, A.data(), B.data(), 0.0f, C.data());
  EXPECT_FLOAT_EQ(C[0], 0.0f) << "K = 0 writes beta * C";
}

TEST(EdgeOps, SoftmaxSingleClassIsDegenerate) {
  const std::vector<float> logits{3.0f};
  const std::vector<int> labels{0};
  std::vector<float> probs(1);
  const double loss = ml::softmax_xent_forward(1, 1, logits.data(), labels.data(), probs.data());
  EXPECT_NEAR(loss, 0.0, 1e-6);
  EXPECT_FLOAT_EQ(probs[0], 1.0f);
}

TEST(EdgeConfig, LrZeroFreezesModel) {
  core::ExperimentConfig cfg;
  cfg.num_workers = 2;
  cfg.num_servers = 1;
  cfg.max_iters = 20;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 128;
  cfg.data.num_test = 64;
  cfg.batch_size = 8;
  cfg.opt.lr.base = 0.0;
  cfg.opt.kind = "sgd";
  const auto r = core::run_experiment(cfg);
  // Params never move: the final model equals w0 exactly.
  const auto data = ml::Dataset::synthesize(cfg.data);
  const auto model = ml::make_model(cfg.model, data.dim(), data.num_classes());
  std::vector<float> w0(model->num_params());
  Rng rng(cfg.seed, 0x1717);
  model->init_params(w0, rng);
  EXPECT_EQ(r.final_params, w0);
}

TEST(EdgeStages, SingleStageEqualsPlainRun) {
  core::ExperimentConfig cfg;
  cfg.num_workers = 2;
  cfg.num_servers = 1;
  cfg.max_iters = 25;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 128;
  cfg.data.num_test = 64;
  cfg.batch_size = 8;
  const auto plain = core::run_experiment(cfg);
  const auto staged = core::run_stages({cfg});
  EXPECT_DOUBLE_EQ(staged.final_accuracy, plain.final_accuracy);
  EXPECT_DOUBLE_EQ(staged.total_time, plain.total_time);
}

TEST(EdgeDrop, StragglerUpdatesStillApplied) {
  // Drop-stragglers advances without the slow worker, but its late pushes
  // must still reach the parameters (the paper drops WAITING, not updates).
  core::ExperimentConfig cfg;
  cfg.num_workers = 4;
  cfg.num_servers = 1;
  cfg.max_iters = 40;
  cfg.sync.kind = "drop";
  cfg.sync.drop_nt = 3;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 256;
  cfg.data.num_test = 64;
  cfg.batch_size = 8;
  cfg.compute.kind = "persistent";
  cfg.compute.slowdown = 4.0;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, 40);
  // All 4 workers' pushes applied: messages include 4 * 40 pushes.
  EXPECT_GE(r.messages, 4u * 40u * 2u);
}

}  // namespace
}  // namespace fluentps
