// Unit tests for BlockingQueue and ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/blocking_queue.h"
#include "common/thread_pool.h"

namespace fluentps {
namespace {

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseDrainsThenStops) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3)) << "push after close must fail";
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value()) << "closed and drained";
}

TEST(BlockingQueue, CloseWakesBlockedPopper) {
  BlockingQueue<int> q;
  std::atomic<bool> woke{false};
  std::jthread t([&] {
    EXPECT_FALSE(q.pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  t.join();
  EXPECT_TRUE(woke);
}

TEST(BlockingQueue, BoundedTryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BlockingQueue, BoundedBlockingPushWaitsForSpace) {
  BlockingQueue<int> q(1);
  q.push(1);
  std::atomic<bool> pushed{false};
  std::jthread producer([&] {
    q.push(2);  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed);
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&q, p] {
        for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        while (auto v = q.pop()) {
          sum += *v;
          ++popped;
        }
      });
    }
    // Wait for all producers (first kProducers threads), then close.
    for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
    q.close();
  }
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, ExecutesAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.submit([&count] { ++count; }));
    }
  }  // destructor drains and joins
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitWithResult) {
  ThreadPool pool(2);
  auto fut = pool.submit_with_result([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, SizeReportsThreads) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, ShutdownIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // must not crash or hang
}

}  // namespace
}  // namespace fluentps
