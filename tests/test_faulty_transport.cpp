// FaultyTransport decorator unit tests against a scripted inner transport:
// passthrough, drop/dup/delay verdict plumbing, kShutdown immunity, down-node
// semantics on both the send and delivery paths, and metrics emission.
#include <gtest/gtest.h>

#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "fault/faulty_transport.h"
#include "net/transport.h"

namespace fluentps::fault {
namespace {

/// Inner transport that records sends and lets the test drive deliveries.
struct StubTransport final : net::Transport {
  std::vector<net::Message> sent;
  std::unordered_map<net::NodeId, Handler> handlers;

  void register_node(net::NodeId node, Handler handler) override {
    handlers[node] = std::move(handler);
  }
  void send(net::Message msg) override { sent.push_back(std::move(msg)); }

  /// Simulate the wire delivering `msg` to its destination's handler.
  void deliver(net::Message msg) { handlers.at(msg.dst)(std::move(msg)); }
};

/// Test rig: manual clock, manual deferral queue (never fires on its own).
struct ChaosRig {
  StubTransport inner;
  Metrics metrics;
  double now = 0.0;
  std::vector<std::pair<double, std::function<void()>>> deferred;
  FaultyTransport chaos;

  explicit ChaosRig(FaultSpec spec, std::uint32_t servers = 2, std::uint32_t workers = 2)
      : chaos(
            inner, FaultPlan(std::move(spec), servers, workers), /*seed=*/7,
            [this] { return now; },
            [this](double d, std::function<void()> fn) { deferred.emplace_back(d, std::move(fn)); },
            &metrics) {}
};

net::Message make_push(net::NodeId src, net::NodeId dst) {
  net::Message m;
  m.type = net::MsgType::kPush;
  m.src = src;
  m.dst = dst;
  m.values = {1.0f, 2.0f};
  return m;
}

TEST(FaultyTransport, InertPlanPassesThrough) {
  ChaosRig rig{FaultSpec{}};
  rig.chaos.send(make_push(3, 1));
  ASSERT_EQ(rig.inner.sent.size(), 1u);
  EXPECT_EQ(rig.inner.sent[0].dst, 1u);
  EXPECT_EQ(rig.chaos.dropped(), 0u);
  EXPECT_EQ(rig.chaos.duplicated(), 0u);
  EXPECT_EQ(rig.chaos.delayed(), 0u);
  EXPECT_TRUE(rig.deferred.empty());
}

TEST(FaultyTransport, DropProbOneLosesEveryMessage) {
  FaultSpec spec;
  spec.link.drop_prob = 1.0;
  ChaosRig rig{std::move(spec)};
  for (int i = 0; i < 5; ++i) rig.chaos.send(make_push(3, 1));
  EXPECT_TRUE(rig.inner.sent.empty());
  EXPECT_EQ(rig.chaos.dropped(), 5u);
  EXPECT_EQ(rig.metrics.counter("fault.dropped"), 5);
}

TEST(FaultyTransport, DuplicateDeliversTwice) {
  FaultSpec spec;
  spec.link.dup_prob = 1.0;
  ChaosRig rig{std::move(spec)};
  rig.chaos.send(make_push(3, 1));
  ASSERT_EQ(rig.inner.sent.size(), 2u);
  EXPECT_EQ(rig.inner.sent[0].values, rig.inner.sent[1].values);
  EXPECT_EQ(rig.chaos.duplicated(), 1u);
  EXPECT_EQ(rig.metrics.counter("fault.duplicated"), 1);
}

TEST(FaultyTransport, DelayDefersViaBackendTimer) {
  FaultSpec spec;
  spec.link.delay_prob = 1.0;
  spec.link.delay_seconds = 0.02;
  ChaosRig rig{std::move(spec)};
  rig.chaos.send(make_push(3, 1));
  EXPECT_TRUE(rig.inner.sent.empty()) << "delayed message must not go out immediately";
  ASSERT_EQ(rig.deferred.size(), 1u);
  EXPECT_DOUBLE_EQ(rig.deferred[0].first, 0.02);
  rig.deferred[0].second();  // fire the timer
  ASSERT_EQ(rig.inner.sent.size(), 1u);
  EXPECT_EQ(rig.chaos.delayed(), 1u);
  EXPECT_EQ(rig.metrics.counter("fault.delayed"), 1);
}

TEST(FaultyTransport, ShutdownIsNeverFaulted) {
  FaultSpec spec;
  spec.link.drop_prob = 1.0;
  ChaosRig rig{std::move(spec)};
  rig.chaos.set_down(1, true);  // even a down destination can't stop it
  net::Message m;
  m.type = net::MsgType::kShutdown;
  m.src = 0;
  m.dst = 1;
  rig.chaos.send(std::move(m));
  ASSERT_EQ(rig.inner.sent.size(), 1u);
  EXPECT_EQ(rig.chaos.dropped(), 0u);
  EXPECT_EQ(rig.chaos.dropped_down(), 0u);
}

TEST(FaultyTransport, DownNodeDropsAtSendTime) {
  ChaosRig rig{FaultSpec{}};
  rig.chaos.set_down(1, true);
  EXPECT_TRUE(rig.chaos.is_down(1));
  rig.chaos.send(make_push(3, 1));  // to a down node
  rig.chaos.send(make_push(1, 3));  // from a down node
  EXPECT_TRUE(rig.inner.sent.empty());
  EXPECT_EQ(rig.chaos.dropped_down(), 2u);
  rig.chaos.set_down(1, false);
  rig.chaos.send(make_push(3, 1));
  EXPECT_EQ(rig.inner.sent.size(), 1u);
}

TEST(FaultyTransport, DownNodeDropsInFlightAtDelivery) {
  // Messages already queued when the node crashes die in the receive wrapper.
  ChaosRig rig{FaultSpec{}};
  int delivered = 0;
  rig.chaos.register_node(1, [&](net::Message&&) { ++delivered; });
  rig.chaos.set_down(1, true);
  rig.inner.deliver(make_push(3, 1));  // was in flight before the crash
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(rig.chaos.dropped_down(), 1u);
  rig.chaos.set_down(1, false);
  rig.inner.deliver(make_push(3, 1));
  EXPECT_EQ(delivered, 1);
}

TEST(FaultyTransport, ShutdownReachesDownNode) {
  // kShutdown is runtime plumbing: it must reach the handler even mid-crash
  // so dispatch threads can always be joined.
  ChaosRig rig{FaultSpec{}};
  int shutdowns = 0;
  rig.chaos.register_node(1, [&](net::Message&& m) {
    if (m.type == net::MsgType::kShutdown) ++shutdowns;
  });
  rig.chaos.set_down(1, true);
  net::Message m;
  m.type = net::MsgType::kShutdown;
  m.dst = 1;
  rig.inner.deliver(std::move(m));
  EXPECT_EQ(shutdowns, 1);
}

TEST(FaultyTransport, PartitionWindowUsesBackendClock) {
  FaultSpec spec;
  spec.partitions.push_back(PartitionSpec{{"w0"}, 1.0, 2.0});
  ChaosRig rig{std::move(spec)};
  const net::NodeId w0 = 3, s0 = 1;
  rig.now = 0.5;
  rig.chaos.send(make_push(w0, s0));
  EXPECT_EQ(rig.inner.sent.size(), 1u) << "before the window";
  rig.now = 1.5;
  rig.chaos.send(make_push(w0, s0));
  EXPECT_EQ(rig.inner.sent.size(), 1u) << "inside the window: cut";
  EXPECT_EQ(rig.chaos.dropped(), 1u);
  rig.now = 2.5;
  rig.chaos.send(make_push(w0, s0));
  EXPECT_EQ(rig.inner.sent.size(), 2u) << "after the window: healed";
}

}  // namespace
}  // namespace fluentps::fault
