// Randomized robustness tests: the message parser on fuzzed bytes, the sync
// engine under adversarial schedules, and merge-consistency properties.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "net/message.h"
#include "ps/sync_engine.h"

namespace fluentps {
namespace {

TEST(Fuzz, MessageParserNeverCrashesOnRandomBytes) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_u64(128));
    std::vector<std::uint8_t> junk(n);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    net::Message out;
    (void)net::Message::deserialize(junk, &out);  // may fail, must not crash
  }
}

TEST(Fuzz, MessageParserRejectsBitFlippedFrames) {
  // Flip one byte of a valid frame; the parser must either reject it or
  // produce a structurally valid message (never crash / overflow).
  net::Message m;
  m.type = net::MsgType::kPush;
  m.values = {1.0f, 2.0f, 3.0f, 4.0f};
  const auto frame = m.serialize();
  Rng rng(405);
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = frame;
    const auto pos = static_cast<std::size_t>(rng.uniform_u64(mutated.size()));
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    net::Message out;
    if (net::Message::deserialize(mutated, &out)) {
      EXPECT_LE(static_cast<std::uint8_t>(out.type),
                static_cast<std::uint8_t>(net::MsgType::kShutdown));
    }
  }
}

TEST(Fuzz, EngineSurvivesAdversarialSchedules) {
  // Random models, random worker interleavings with repeats, duplicate
  // progress values, and out-of-order (monotone-per-worker not enforced):
  // the engine must never abort, and core invariants must hold.
  const ps::SyncModelSpec zoo[] = {
      {.kind = "bsp"},
      {.kind = "asp"},
      {.kind = "ssp", .staleness = 1},
      {.kind = "ssp", .staleness = 7},
      {.kind = "pssp", .staleness = 2, .prob = 0.5},
      {.kind = "drop", .drop_nt = 2},
      {.kind = "dsps", .staleness = 2},
  };
  Rng rng(406);
  for (int trial = 0; trial < 30; ++trial) {
    const auto& spec = zoo[rng.uniform_u64(std::size(zoo))];
    const auto n = static_cast<std::uint32_t>(2 + rng.uniform_u64(6));
    ps::SyncEngine::Spec es;
    es.num_workers = n;
    es.mode = rng.bernoulli(0.5) ? ps::DprMode::kLazy : ps::DprMode::kSoftBarrier;
    es.model = ps::make_sync_model(spec, n);
    es.seed = 1000 + static_cast<std::uint64_t>(trial);
    ps::SyncEngine e(std::move(es));
    std::uint64_t req = 1;
    std::int64_t released = 0;
    for (int step = 0; step < 500; ++step) {
      const auto w = static_cast<std::uint32_t>(rng.uniform_u64(n));
      const auto p = static_cast<std::int64_t>(rng.uniform_u64(20));
      if (rng.bernoulli(0.6)) {
        released += static_cast<std::int64_t>(e.on_push(w, p).size());
      } else {
        (void)e.on_pull(w, p, req++);
      }
      ASSERT_GE(e.v_train(), 0);
      ASSERT_LE(e.v_train(), 21);
      ASSERT_GE(e.fastest(), -1);
    }
    // Conservation: everything released was once buffered.
    ASSERT_LE(released, e.dpr_total());
    ASSERT_EQ(e.dpr_total() - released, static_cast<std::int64_t>(e.buffered()));
  }
}

TEST(Fuzz, HistogramMergeIsOrderIndependent) {
  Rng rng(407);
  IntHistogram a(32), b(32), ab(32), ba(32);
  for (int i = 0; i < 500; ++i) {
    const auto v = static_cast<std::int64_t>(rng.uniform_u64(48));
    if (rng.bernoulli(0.5)) {
      a.add(v);
    } else {
      b.add(v);
    }
  }
  ab.merge(a);
  ab.merge(b);
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  for (std::size_t v = 0; v <= 32; ++v) EXPECT_EQ(ab.bucket(v), ba.bucket(v)) << v;
  EXPECT_EQ(ab.overflow(), ba.overflow());
  EXPECT_DOUBLE_EQ(ab.mean(), ba.mean());
}

TEST(Fuzz, StreamingStatsMergeMatchesSequential) {
  Rng rng(408);
  for (int trial = 0; trial < 20; ++trial) {
    StreamingStats parts[4], all;
    for (int i = 0; i < 400; ++i) {
      const double x = rng.normal(3.0, 7.0);
      parts[rng.uniform_u64(4)].add(x);
      all.add(x);
    }
    StreamingStats merged;
    for (auto& p : parts) merged.merge(p);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), all.variance(), 1e-6);
  }
}

}  // namespace
}  // namespace fluentps
