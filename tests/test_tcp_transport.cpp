// TCP transport tests: framing, routing, FIFO, large payloads, and a full
// parameter-server training loop over real loopback sockets.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>

#include <functional>
#include <memory>
#include <thread>

#include "fault/retry_policy.h"
#include "net/tcp_transport.h"
#include "ps/server.h"
#include "ps/slicing.h"
#include "ps/worker.h"
#include "replica/replica_node.h"

namespace fluentps::net {
namespace {

/// Collects messages for assertions with a bounded wait.
struct Sink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Message> got;

  Transport::Handler handler() {
    return [this](Message&& m) {
      // TCP delivery lends the payload a view of the reader's frame buffer;
      // a handler that retains the Message past its own return must take
      // ownership first (see Transport::inline_delivery()).
      m.values.ensure_owned();
      std::scoped_lock lock(mu);
      got.push_back(std::move(m));
      cv.notify_all();
    };
  }

  bool wait_for(std::size_t count, int ms = 3000) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(ms),
                       [&] { return got.size() >= count; });
  }
};

TEST(TcpTransport, LocalFastPath) {
  TcpTransport t;
  Sink sink;
  t.register_node(1, sink.handler());
  Message m;
  m.dst = 1;
  m.progress = 5;
  t.send(std::move(m));
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(sink.got[0].progress, 5);
  EXPECT_EQ(t.frames_sent(), 0u) << "local delivery must not serialize";
}

TEST(TcpTransport, CrossInstanceRoundTrip) {
  TcpTransport a, b;
  Sink sink;
  b.register_node(2, sink.handler());
  const auto port = b.listen();
  a.add_route(2, "127.0.0.1", port);

  Message m;
  m.type = MsgType::kPush;
  m.src = 1;
  m.dst = 2;
  m.values = {1.0f, 2.0f, 3.0f};
  a.send(std::move(m));
  ASSERT_TRUE(sink.wait_for(1));
  EXPECT_EQ(sink.got[0].values, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(a.frames_sent(), 1u);
  EXPECT_EQ(b.frames_received(), 1u);
}

TEST(TcpTransport, FifoOverOneConnection) {
  TcpTransport a, b;
  Sink sink;
  b.register_node(2, sink.handler());
  a.add_route(2, "127.0.0.1", b.listen());
  for (int i = 0; i < 200; ++i) {
    Message m;
    m.dst = 2;
    m.progress = i;
    a.send(std::move(m));
  }
  ASSERT_TRUE(sink.wait_for(200));
  for (int i = 0; i < 200; ++i) EXPECT_EQ(sink.got[static_cast<std::size_t>(i)].progress, i);
}

TEST(TcpTransport, LargePayload) {
  TcpTransport a, b;
  Sink sink;
  b.register_node(2, sink.handler());
  a.add_route(2, "127.0.0.1", b.listen());
  Message m;
  m.dst = 2;
  m.values.resize(1 << 20);  // 4 MiB payload
  for (std::size_t i = 0; i < m.values.size(); ++i) m.values[i] = static_cast<float>(i % 97);
  a.send(std::move(m));
  ASSERT_TRUE(sink.wait_for(1, 10000));
  ASSERT_EQ(sink.got[0].values.size(), std::size_t{1} << 20);
  EXPECT_FLOAT_EQ(sink.got[0].values[96], 96.0f);
  EXPECT_FLOAT_EQ(sink.got[0].values[97], 0.0f);
}

TEST(TcpTransport, BidirectionalTraffic) {
  TcpTransport a, b;
  Sink sa, sb;
  a.register_node(1, sa.handler());
  b.register_node(2, sb.handler());
  a.add_route(2, "127.0.0.1", b.listen());
  b.add_route(1, "127.0.0.1", a.listen());
  Message to_b;
  to_b.dst = 2;
  to_b.progress = 10;
  a.send(std::move(to_b));
  Message to_a;
  to_a.dst = 1;
  to_a.progress = 20;
  b.send(std::move(to_a));
  ASSERT_TRUE(sa.wait_for(1));
  ASSERT_TRUE(sb.wait_for(1));
  EXPECT_EQ(sa.got[0].progress, 20);
  EXPECT_EQ(sb.got[0].progress, 10);
}

TEST(TcpTransport, AutoRegistrationEnablesReplies) {
  // B never calls add_route: it learns A's nodes from the hello frames A
  // sends when it first connects.
  TcpTransport a, b;
  Sink sa;
  a.register_node(1, sa.handler());
  (void)a.listen();  // A advertises this port in its hellos
  b.register_node(2, [&b](Message&& m) {
    // Reply to the sender without any manual route configuration.
    Message reply;
    reply.type = MsgType::kPullResp;
    reply.dst = m.src;
    reply.src = m.dst;
    reply.progress = m.progress + 1;
    b.send(std::move(reply));
  });
  a.add_route(2, "127.0.0.1", b.listen());

  Message m;
  m.type = MsgType::kPull;
  m.src = 1;
  m.dst = 2;
  m.progress = 41;
  a.send(std::move(m));
  ASSERT_TRUE(sa.wait_for(1));
  EXPECT_EQ(sa.got[0].progress, 42);
}

TEST(TcpTransport, UnroutableIsDropped) {
  TcpTransport a;
  Message m;
  m.dst = 99;
  a.send(std::move(m));  // no crash, no hang
  a.shutdown();
}

TEST(TcpTransport, DeadPeerConnectExhaustsRetryBudget) {
  // Route to a port nobody listens on: the dial ladder retries with backoff
  // and gives up after `budget` attempts instead of hanging or aborting.
  TcpTransport dead;
  const auto ghost_port = dead.listen();
  dead.shutdown();  // port is now closed; connects get refused

  TcpTransport a;
  fault::RetryPolicy p;
  p.initial_timeout = 0.02;
  p.max_timeout = 0.05;
  p.budget = 3;
  a.set_retry_policy(p);
  a.add_route(7, "127.0.0.1", ghost_port);
  Message m;
  m.dst = 7;
  const auto t0 = std::chrono::steady_clock::now();
  a.send(std::move(m));  // returns after the ladder, message dropped
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(a.connect_retries(), 2u) << "budget 3 = 1 try + 2 retries";
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "bounded, not hung";
  a.shutdown();
}

TEST(TcpTransport, ReconnectsAfterPeerRestart) {
  // A learns a route, talks to B, B's process "dies" and a new instance
  // binds the same port. A's first write to the dead connection fails,
  // invalidates the cache, and the next send re-dials to the new B.
  TcpTransport a;
  fault::RetryPolicy p;
  p.initial_timeout = 0.05;
  p.max_timeout = 0.1;
  p.budget = 2;
  a.set_retry_policy(p);

  std::uint16_t port = 0;
  {
    TcpTransport b1;
    Sink sink1;
    b1.register_node(2, sink1.handler());
    port = b1.listen();
    a.add_route(2, "127.0.0.1", port);
    Message m;
    m.dst = 2;
    a.send(std::move(m));
    ASSERT_TRUE(sink1.wait_for(1));
    b1.shutdown();
  }

  TcpTransport b2;  // the restarted peer, same address
  Sink sink2;
  b2.register_node(2, sink2.handler());
  ASSERT_EQ(b2.listen(port), port);

  // Writes into the dead connection may drain into the OS buffer before the
  // RST surfaces, so send until the new instance hears us.
  bool delivered = false;
  for (int i = 0; i < 100 && !delivered; ++i) {
    Message m;
    m.dst = 2;
    m.progress = i;
    a.send(std::move(m));
    delivered = sink2.wait_for(1, 50);
  }
  EXPECT_TRUE(delivered) << "cache invalidation must allow re-dialing a restarted peer";
  a.shutdown();
  b2.shutdown();
}

TEST(TcpTransport, BackgroundRedialHealsRouteWithoutNewSends) {
  // Mid-run reconnect: once a write fails, the endpoint moves to the
  // background re-dial loop, which keeps working the RetryPolicy ladder on
  // its own. When the peer restarts on the same address the connection (and
  // the hello-learned routes) come back with NO further application sends.
  TcpTransport a;
  fault::RetryPolicy p;
  p.initial_timeout = 0.02;
  p.max_timeout = 0.05;
  p.backoff = 2.0;
  p.jitter = 0.0;
  p.budget = 2;
  a.set_retry_policy(p);

  std::uint16_t port = 0;
  {
    TcpTransport b1;
    Sink sink1;
    b1.register_node(2, sink1.handler());
    port = b1.listen();
    a.add_route(2, "127.0.0.1", port);
    Message m;
    m.dst = 2;
    a.send(std::move(m));
    ASSERT_TRUE(sink1.wait_for(1));
    b1.shutdown();
  }

  // Poke the dead connection until the RST surfaces as a write failure and
  // the endpoint lands in the background loop (the first writes may drain
  // into the OS send buffer).
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.dst = 2;
    a.send(std::move(m));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Restart the peer on the same address. From here on, `a` sends nothing:
  // only the background loop may re-establish the connection.
  TcpTransport b2;
  Sink sink2;
  b2.register_node(2, sink2.handler());
  ASSERT_EQ(b2.listen(port), port);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (a.reconnects() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(a.reconnects(), 1u) << "background loop must re-dial the restarted peer";

  // The healed connection is immediately usable — first send, no re-dial.
  Message m;
  m.dst = 2;
  m.progress = 7;
  a.send(std::move(m));
  ASSERT_TRUE(sink2.wait_for(1));
  EXPECT_EQ(sink2.got[0].progress, 7);
  a.shutdown();
  b2.shutdown();
}

TEST(TcpTransport, SteadyStateReceiveIsZeroCopyAndAllocationFree) {
  // Zero-copy receive proof (DESIGN.md §11): after a warmup burst grows the
  // reader's RecvBuffer to its high-water size, further frames of the same
  // size must perform zero heap allocations and move zero bytes — reads land
  // in place and deserialize_view borrows the payload.
  TcpTransport a, b;
  Sink sink;
  b.register_node(2, sink.handler());
  a.add_route(2, "127.0.0.1", b.listen());

  const auto send_one = [&a](int i) {
    Message m;
    m.dst = 2;
    m.progress = i;
    m.values.resize(256);
    for (std::size_t k = 0; k < 256; ++k) m.values[k] = static_cast<float>(i + 1);
    a.send(std::move(m));
  };

  constexpr int kWarmup = 20;
  for (int i = 0; i < kWarmup; ++i) send_one(i);
  ASSERT_TRUE(sink.wait_for(kWarmup));
  const std::uint64_t allocs = b.recv_allocations();
  const std::uint64_t moved = b.recv_bytes_moved();

  // Request-response pacing (the PS steady state): the buffer drains fully
  // between records, so neither growth nor compaction can ever trigger.
  constexpr int kSteady = 200;
  for (int i = kWarmup; i < kWarmup + kSteady; ++i) {
    send_one(i);
    ASSERT_TRUE(sink.wait_for(static_cast<std::size_t>(i) + 1, 10000));
  }

  EXPECT_EQ(b.recv_allocations(), allocs)
      << "steady-state receive must not allocate";
  EXPECT_EQ(b.recv_bytes_moved(), moved)
      << "steady-state receive must not compact";
  EXPECT_EQ(b.recv_zero_copy_frames(), b.frames_received())
      << "every frame must be parsed in place";
  for (int i = 0; i < kWarmup + kSteady; ++i) {
    ASSERT_EQ(sink.got[static_cast<std::size_t>(i)].values[0],
              static_cast<float>(i + 1));
  }
}

TEST(TcpTransport, ShutdownIsIdempotentAndUnblocks) {
  TcpTransport a, b;
  Sink sink;
  b.register_node(2, sink.handler());
  a.add_route(2, "127.0.0.1", b.listen());
  Message m;
  m.dst = 2;
  a.send(std::move(m));
  ASSERT_TRUE(sink.wait_for(1));
  b.shutdown();
  b.shutdown();
  a.shutdown();
}

TEST(TcpTransport, EndToEndTrainingOverSockets) {
  // The real thing: a Server in transport A, a WorkerClient in transport B,
  // BSP "add ones" for 5 iterations over loopback TCP.
  ps::EpsSlicer slicer(8);
  const auto sharding = slicer.shard({24}, 1);

  TcpTransport server_side, worker_side;

  ps::ServerSpec sspec;
  sspec.node_id = 1;
  sspec.server_rank = 0;
  sspec.num_workers = 1;
  sspec.layout = sharding.shards[0];
  sspec.initial_shard.assign(24, 0.0f);
  sspec.engine.num_workers = 1;
  sspec.engine.model = ps::make_sync_model({.kind = "bsp"}, 1);
  sspec.engine.seed = 1;
  ps::Server server(std::move(sspec), server_side);
  server_side.register_node(1, [&server](Message&& m) { server.handle(std::move(m)); });

  ps::WorkerSpec wspec;
  wspec.node_id = 2;
  wspec.worker_rank = 0;
  wspec.server_nodes = {1};
  wspec.sharding = &sharding;
  ps::WorkerClient worker(std::move(wspec), worker_side);
  worker_side.register_node(2, [&worker](Message&& m) { worker.handle(std::move(m)); });

  const auto sport = server_side.listen();
  const auto wport = worker_side.listen();
  worker_side.add_route(1, "127.0.0.1", sport);
  server_side.add_route(2, "127.0.0.1", wport);

  const std::vector<float> ones(24, 1.0f);
  std::vector<float> params(24);
  for (std::int64_t i = 0; i < 5; ++i) {
    worker.push(ones, i);
    const auto t = worker.pull(ps::KeyRange::all(), ps::ReadOptions{.clock = i});
    worker.wait_pull(t, params);
    for (const float v : params) ASSERT_FLOAT_EQ(v, static_cast<float>(i + 1));
  }
  EXPECT_EQ(server.pushes_applied(), 5);
  EXPECT_GE(worker_side.frames_sent(), 10u);  // 5 pushes + 5 pulls
}

TEST(TcpChain, HeadKillPromoteAndRebindOverSockets) {
  // Chain replication over real loopback sockets: a reliable head in one
  // transport instance replicates to a ReplicaNode in another, a WorkerClient
  // trains from a third. The head "process" is killed mid-run (its transport
  // shut down, the object destroyed), the replica is promoted in place, a
  // kPromote frame rebinds the worker over its socket — and the unacked push
  // that died with the head is recovered by the worker's retry ladder with
  // exactly-once application.
  constexpr std::size_t kN = 24;
  constexpr NodeId kHead = 1, kWorker = 2, kTail = 10;
  ps::EpsSlicer slicer(8);
  const auto sharding = slicer.shard({kN}, 1);

  TcpTransport head_t, tail_t, worker_t;

  const auto make_head_spec = [&sharding](NodeId node, NodeId successor) {
    ps::ServerSpec spec;
    spec.node_id = node;
    spec.server_rank = 0;
    spec.num_workers = 1;
    spec.layout = sharding.shards[0];
    spec.initial_shard.assign(kN, 0.0f);
    spec.engine.num_workers = 1;
    spec.engine.model = ps::make_sync_model({.kind = "bsp"}, 1);
    spec.engine.seed = 1;
    spec.reliable = true;
    spec.worker_nodes = {kWorker};
    spec.replica_successor = successor;
    return spec;
  };
  auto head = std::make_unique<ps::Server>(make_head_spec(kHead, kTail), head_t);
  head_t.register_node(kHead, [&head](Message&& m) { head->handle(std::move(m)); });

  replica::ReplicaSpec rspec;
  rspec.node_id = kTail;
  rspec.server_rank = 0;
  rspec.chain_pos = 1;
  rspec.num_workers = 1;
  rspec.initial_shard.assign(kN, 0.0f);
  rspec.successor = 0;
  rspec.apply_scale = 1.0f;  // N = 1
  auto tail = std::make_unique<replica::ReplicaNode>(std::move(rspec), tail_t);
  // The promotion swaps who answers at node kTail; register_node is
  // once-only, so route through a swappable handler (what a real process
  // does implicitly by replacing its dispatch object).
  std::mutex tail_mu;
  std::function<void(Message &&)> tail_handler = [&tail](Message&& m) {
    tail->handle(std::move(m));
  };
  tail_t.register_node(kTail, [&tail_mu, &tail_handler](Message&& m) {
    std::function<void(Message &&)> h;
    {
      std::scoped_lock lock(tail_mu);
      h = tail_handler;
    }
    h(std::move(m));
  });

  ps::WorkerSpec wspec;
  wspec.node_id = kWorker;
  wspec.worker_rank = 0;
  wspec.server_nodes = {kHead};
  wspec.sharding = &sharding;
  wspec.reliable = true;
  wspec.retry.initial_timeout = 0.02;
  wspec.retry.max_timeout = 0.1;
  ps::WorkerClient worker(std::move(wspec), worker_t);
  worker_t.register_node(kWorker, [&worker](Message&& m) { worker.handle(std::move(m)); });

  const auto hport = head_t.listen();
  const auto tport = tail_t.listen();
  const auto wport = worker_t.listen();
  worker_t.add_route(kHead, "127.0.0.1", hport);
  worker_t.add_route(kTail, "127.0.0.1", tport);
  head_t.add_route(kWorker, "127.0.0.1", wport);
  head_t.add_route(kTail, "127.0.0.1", tport);
  tail_t.add_route(kHead, "127.0.0.1", hport);
  tail_t.add_route(kWorker, "127.0.0.1", wport);

  // Phase 1 — steady state: 3 BSP iterations. The deferred-ack protocol
  // means push() returning implies the tail already acked the entry.
  const std::vector<float> ones(kN, 1.0f);
  std::vector<float> params(kN);
  for (std::int64_t i = 0; i < 3; ++i) {
    worker.push(ones, i);
    const auto t = worker.pull(ps::KeyRange::all(), ps::ReadOptions{.clock = i});
    worker.wait_pull(t, params);
    for (const float v : params) ASSERT_FLOAT_EQ(v, static_cast<float>(i + 1));
  }
  // The 3rd round's chain ack may still be in flight; the next push blocks
  // until it lands, so poll the replica rather than sleeping.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (tail->applied() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(tail->applied(), 3);

  // Phase 2 — kill the head process: sockets die, the object goes away.
  head_t.shutdown();
  head.reset();

  // Phase 3 — the worker keeps training into the void: its push retransmits
  // on the retry ladder until a new head answers. Run it on its own thread
  // (push/wait_pull block by design).
  std::vector<float> after(kN);
  std::thread trainer([&worker, &ones, &after] {
    worker.push(ones, 3);
    const auto t = worker.pull(ps::KeyRange::all(), ps::ReadOptions{.clock = 3});
    worker.wait_pull(t, after);
  });

  // Phase 4 — failover: promote the replica in place (same node id, same
  // port), then rebind the worker with a kPromote frame over its socket.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ps::Server promoted(make_head_spec(kTail, /*successor=*/0), tail_t);
  promoted.adopt_replica_state(tail->release_state());
  promoted.replay_replication_log();
  EXPECT_TRUE(promoted.promoted());
  {
    std::scoped_lock lock(tail_mu);
    tail_handler = [&promoted](Message&& m) { promoted.handle(std::move(m)); };
  }
  Message promote;
  promote.type = MsgType::kPromote;
  promote.src = kTail;
  promote.dst = kWorker;
  promote.server_rank = 0;
  tail_t.send(std::move(promote));

  trainer.join();
  for (const float v : after) EXPECT_FLOAT_EQ(v, 4.0f) << "post-failover round applied once";
  EXPECT_EQ(promoted.pushes_applied(), 1) << "only the recovered round applies at the new head";
  EXPECT_EQ(promoted.synth_replayed(), 0) << "nothing was rolled back";
  worker_t.shutdown();
  tail_t.shutdown();
}

}  // namespace
}  // namespace fluentps::net
