// SyncEngine tests: Algorithm 1 semantics, lazy vs soft-barrier DPR
// execution (the Figure 3 trace), DPR accounting, and model equivalences.
#include <gtest/gtest.h>

#include "ps/sync_engine.h"

namespace fluentps::ps {
namespace {

SyncEngine make_engine(const SyncModelSpec& spec, std::uint32_t n, DprMode mode,
                       std::uint64_t seed = 1) {
  SyncEngine::Spec s;
  s.num_workers = n;
  s.mode = mode;
  s.model = make_sync_model(spec, n);
  s.seed = seed;
  return SyncEngine(s);
}

TEST(SyncEngine, VtrainAdvancesWhenAllPush) {
  auto e = make_engine({.kind = "bsp"}, 3, DprMode::kLazy);
  EXPECT_EQ(e.v_train(), 0);
  e.on_push(0, 0);
  e.on_push(1, 0);
  EXPECT_EQ(e.v_train(), 0);
  e.on_push(2, 0);
  EXPECT_EQ(e.v_train(), 1);
}

TEST(SyncEngine, VtrainAdvancesThroughMultipleIterations) {
  auto e = make_engine({.kind = "bsp"}, 2, DprMode::kLazy);
  // Worker 1 lags two iterations: its pushes for 0 and 1 arrive late and the
  // engine must then advance twice in one call.
  e.on_push(0, 0);
  e.on_push(0, 1);  // worker 0 raced ahead (ASP-style arrival)
  EXPECT_EQ(e.v_train(), 0);
  e.on_push(1, 0);
  EXPECT_EQ(e.v_train(), 1);
  e.on_push(1, 1);
  EXPECT_EQ(e.v_train(), 2);
}

TEST(SyncEngine, BspPullBlocksUntilIterationComplete) {
  auto e = make_engine({.kind = "bsp"}, 2, DprMode::kLazy);
  e.on_push(0, 0);
  EXPECT_FALSE(e.on_pull(0, 0, 100)) << "worker 1 has not pushed iteration 0";
  EXPECT_EQ(e.dpr_total(), 1);
  const auto released = e.on_push(1, 0);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 100u);
  EXPECT_EQ(e.buffered(), 0u);
}

TEST(SyncEngine, AspNeverBuffers) {
  auto e = make_engine({.kind = "asp"}, 4, DprMode::kLazy);
  for (int i = 0; i < 50; ++i) {
    e.on_push(0, i);
    EXPECT_TRUE(e.on_pull(0, i, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(e.dpr_total(), 0);
}

TEST(SyncEngine, SspAllowsGapBelowStaleness) {
  auto e = make_engine({.kind = "ssp", .staleness = 3}, 2, DprMode::kLazy);
  e.on_push(0, 0);
  EXPECT_TRUE(e.on_pull(0, 0, 1));  // gap 0 < 3
  e.on_push(0, 1);
  EXPECT_TRUE(e.on_pull(0, 1, 2));
  e.on_push(0, 2);
  EXPECT_TRUE(e.on_pull(0, 2, 3));
  e.on_push(0, 3);
  EXPECT_FALSE(e.on_pull(0, 3, 4)) << "gap 3 hits the staleness bound";
}

// The Figure 3 trace: s = 3, three workers; W0 runs ahead to progress 3 while
// W2 is still on iteration 1. Under the soft barrier W0's DPR is released as
// soon as the SSP condition holds (one V_train advance); under lazy execution
// it waits until V_train reaches W0's own progress (three advances) and then
// reads fully updated parameters.
class Figure3Trace : public ::testing::TestWithParam<DprMode> {};

TEST_P(Figure3Trace, ReleaseTiming) {
  const DprMode mode = GetParam();
  auto e = make_engine({.kind = "ssp", .staleness = 3}, 3, mode);
  // W0 and W1 complete iterations 0..3 and push (the protocol pushes g_i
  // before pulling w_{i+1}); W2 completes nothing yet.
  for (std::int64_t i = 0; i <= 3; ++i) {
    e.on_push(0, i);
    e.on_push(1, i);
  }
  EXPECT_EQ(e.v_train(), 0) << "W2 has pushed nothing";
  // W0 at progress 3 pulls w4: gap 3 >= s, buffered in both modes.
  EXPECT_FALSE(e.on_pull(0, 3, 777));
  EXPECT_EQ(e.dpr_total(), 1);
  EXPECT_EQ(e.buffered(), 1u);

  // W2 pushes iteration 0: everyone has iteration 0, V_train -> 1.
  auto released = e.on_push(2, 0);
  if (mode == DprMode::kSoftBarrier) {
    // Soft barrier: 3 < 1 + 3 holds, released after ONE advance (stale read:
    // g2^1, g2^2 still missing — Figure 3(a)).
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0], 777u);
    EXPECT_EQ(e.release_delay().bucket(1), 1u);
    return;
  }
  // Lazy: still waiting until V_train catches up to W0's progress.
  EXPECT_TRUE(released.empty());
  released = e.on_push(2, 1);
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(e.v_train(), 2);
  released = e.on_push(2, 2);
  EXPECT_TRUE(released.empty());
  EXPECT_EQ(e.v_train(), 3) << "Count[3] is 2 of 3: no flush of callbacks[3] yet";
  // W2's push of g3 completes iteration 3: callbacks[3] execute (Fig 3(b):
  // three iterations delayed, fully updated parameters).
  released = e.on_push(2, 3);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], 777u);
  EXPECT_EQ(e.release_delay().bucket(3), 1u) << "released after three V_train advances";
}

INSTANTIATE_TEST_SUITE_P(BothModes, Figure3Trace,
                         ::testing::Values(DprMode::kSoftBarrier, DprMode::kLazy),
                         [](const ::testing::TestParamInfo<DprMode>& info) {
                           return info.param == DprMode::kLazy ? "lazy" : "soft";
                         });

TEST(SyncEngine, BspIdenticalUnderBothModes) {
  // With s = 0 a buffered pull is released at the same instant in both modes,
  // so BSP traces must match exactly.
  auto lazy = make_engine({.kind = "bsp"}, 3, DprMode::kLazy);
  auto soft = make_engine({.kind = "bsp"}, 3, DprMode::kSoftBarrier);
  std::uint64_t req = 1;
  for (std::int64_t i = 0; i < 5; ++i) {
    for (std::uint32_t w = 0; w < 3; ++w) {
      const auto rl = lazy.on_push(w, i);
      const auto rs = soft.on_push(w, i);
      EXPECT_EQ(rl, rs);
      EXPECT_EQ(lazy.on_pull(w, i, req), soft.on_pull(w, i, req));
      ++req;
    }
  }
  EXPECT_EQ(lazy.dpr_total(), soft.dpr_total());
  EXPECT_EQ(lazy.v_train(), soft.v_train());
}

TEST(SyncEngine, SspStalenessServedNeverExceedsBound) {
  // Property: under SSP(s), a served pull's gap (progress - V_train at serve
  // time) is at most s in soft mode, and 0 at release in lazy mode.
  for (const DprMode mode : {DprMode::kSoftBarrier, DprMode::kLazy}) {
    const std::int64_t s = 2;
    auto e = make_engine({.kind = "ssp", .staleness = s}, 4, mode);
    Rng rng(99);
    std::vector<std::int64_t> progress(4, 0);
    std::uint64_t req = 1;
    // Random interleaving of worker steps for 400 events.
    for (int step = 0; step < 400; ++step) {
      const auto w = static_cast<std::uint32_t>(rng.uniform_u64(4));
      // A worker only advances if it would not exceed the SSP bound by more
      // than buffering allows (simulate the blocking worker loop: it pushes,
      // pulls, and only advances once the pull would be served).
      e.on_push(w, progress[w]);
      if (e.on_pull(w, progress[w], req++)) {
        ++progress[w];
      } else {
        // Blocked: in a real run the worker waits; here we simply let other
        // workers run (the released id will be its permission to advance).
        ++progress[w];  // optimistic: engine must still bound what it SERVES
      }
    }
    const auto& hist = e.staleness_served();
    for (std::size_t gap = static_cast<std::size_t>(s) + 1; gap <= hist.max_value(); ++gap) {
      EXPECT_EQ(hist.bucket(gap), 0u) << "mode=" << to_string(mode) << " gap=" << gap;
    }
    EXPECT_EQ(hist.overflow(), 0u);
  }
}

TEST(SyncEngine, LazyReleaseGivesFreshParameters) {
  // In lazy mode a released pull always sees gap 0: V_train has caught up to
  // the requester's progress.
  auto e = make_engine({.kind = "ssp", .staleness = 1}, 2, DprMode::kLazy);
  e.on_push(0, 0);
  e.on_push(0, 1);
  EXPECT_FALSE(e.on_pull(0, 1, 42));
  e.on_push(1, 0);
  auto released = e.on_push(1, 1);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_GE(e.staleness_served().bucket(0), 1u);
}

TEST(SyncEngine, DropStragglersAdvancesWithoutThem) {
  auto e = make_engine({.kind = "drop", .drop_nt = 2}, 3, DprMode::kLazy);
  e.on_push(0, 0);
  auto released = e.on_push(1, 0);
  EXPECT_EQ(e.v_train(), 1) << "N_t = 2 of 3 suffices";
  // The straggler's late push for iteration 0 must not advance V_train again.
  released = e.on_push(2, 0);
  EXPECT_EQ(e.v_train(), 1);
}

TEST(SyncEngine, PsspP1MatchesSspTrace) {
  auto pssp = make_engine({.kind = "pssp", .staleness = 2, .prob = 1.0}, 3, DprMode::kLazy, 5);
  auto ssp = make_engine({.kind = "ssp", .staleness = 2}, 3, DprMode::kLazy, 6);
  Rng rng(7);
  std::uint64_t req = 1;
  for (int step = 0; step < 300; ++step) {
    const auto w = static_cast<std::uint32_t>(rng.uniform_u64(3));
    const auto p = static_cast<std::int64_t>(rng.uniform_u64(10));
    EXPECT_EQ(pssp.on_push(w, p), ssp.on_push(w, p));
    EXPECT_EQ(pssp.on_pull(w, p, req), ssp.on_pull(w, p, req));
    ++req;
  }
  EXPECT_EQ(pssp.dpr_total(), ssp.dpr_total());
  EXPECT_EQ(pssp.v_train(), ssp.v_train());
}

TEST(SyncEngine, PsspReducesDprsVsSsp) {
  // Same workload, same effective bound: constant PSSP (s=3, c=0.5) must
  // buffer fewer pulls than SSP(s'=4) because blocked-at-the-bound pulls pass
  // with probability 1 - c (the Figure 9 effect).
  const auto run = [](const SyncModelSpec& spec) {
    auto e = make_engine(spec, 4, DprMode::kSoftBarrier, 11);
    Rng rng(12);
    std::vector<std::int64_t> progress(4, 0);
    std::uint64_t req = 1;
    for (int step = 0; step < 2000; ++step) {
      // Worker 0 is persistently slow: it moves only 1 in 4 steps.
      auto w = static_cast<std::uint32_t>(rng.uniform_u64(5));
      if (w >= 4) w = 0;
      e.on_push(w, progress[w]);
      e.on_pull(w, progress[w], req++);
      ++progress[w];
    }
    return e.dpr_total();
  };
  const auto dpr_pssp = run({.kind = "pssp", .staleness = 3, .prob = 0.5});
  const auto dpr_ssp = run({.kind = "ssp", .staleness = 4});
  EXPECT_LT(dpr_pssp, dpr_ssp);
}

TEST(SyncEngine, RuntimeConditionSwapTakesEffect) {
  // Start as BSP, then relax to ASP at runtime (the SetcondPull API).
  auto e = make_engine({.kind = "bsp"}, 2, DprMode::kSoftBarrier);
  e.on_push(0, 0);
  EXPECT_FALSE(e.on_pull(0, 0, 1));
  e.set_pull_condition([](const PullCtx&, const SyncView&, Rng&) { return true; });
  EXPECT_TRUE(e.on_pull(0, 1, 2)) << "new condition applies to new pulls";
}

TEST(SyncEngine, RuntimePushConditionSwap) {
  auto e = make_engine({.kind = "bsp"}, 3, DprMode::kLazy);
  e.on_push(0, 0);
  EXPECT_EQ(e.v_train(), 0);
  // Relax to drop-stragglers with N_t = 1: next push advances.
  e.set_push_condition([](const SyncView& v) { return v.count_at_vtrain >= 1; });
  e.on_push(1, 0);
  EXPECT_GE(e.v_train(), 1);
}

TEST(SyncEngine, ViewExposesSynchronizationState) {
  auto e = make_engine({.kind = "ssp", .staleness = 5}, 3, DprMode::kLazy);
  e.on_push(0, 4);
  e.on_push(1, 2);
  const auto v = e.view();
  EXPECT_EQ(v.fastest, 4);
  EXPECT_EQ(v.slowest, -1) << "worker 2 has not reported";
  EXPECT_EQ(v.num_workers, 3u);
  EXPECT_EQ(v.count_at(4), 1u);
  EXPECT_EQ(v.count_at(2), 1u);
  EXPECT_EQ(v.count_at(99), 0u);
  e.on_push(2, 1);
  EXPECT_EQ(e.slowest(), 1);
}

TEST(SyncEngine, SignificanceTracking) {
  auto e = make_engine({.kind = "ssp", .staleness = 2}, 2, DprMode::kLazy);
  e.on_push(0, 0, 0.5);
  e.on_push(1, 0, 0.1);
  const auto v = e.view();
  EXPECT_DOUBLE_EQ(v.significance_of(0), 0.5);
  EXPECT_DOUBLE_EQ(v.significance_of(1), 0.1);
  EXPECT_GT(v.mean_significance, 0.0);
}

TEST(SyncEngine, ReleasesAreFifoWithinIteration) {
  auto e = make_engine({.kind = "bsp"}, 3, DprMode::kLazy);
  e.on_push(0, 0);
  e.on_push(1, 0);
  EXPECT_FALSE(e.on_pull(0, 0, 10));
  EXPECT_FALSE(e.on_pull(1, 0, 11));
  const auto released = e.on_push(2, 0);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0], 10u);
  EXPECT_EQ(released[1], 11u);
}

TEST(SyncEngine, WorkerRankOutOfRangeAborts) {
  auto e = make_engine({.kind = "bsp"}, 2, DprMode::kLazy);
  EXPECT_DEATH(e.on_push(5, 0), "out of range");
}

// Property sweep: for every model and both modes, every buffered pull is
// eventually released once all workers complete all iterations, and V_train
// ends at max_iters (except drop-stragglers, which can overshoot count-wise
// but still ends >= what BSP would reach).
struct EngineCase {
  const char* name;
  SyncModelSpec spec;
  DprMode mode;
};

class EngineDrain : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineDrain, AllBufferedReleasedAtEnd) {
  const auto& p = GetParam();
  const std::uint32_t N = 5;
  const std::int64_t iters = 30;
  auto e = make_engine(p.spec, N, p.mode, 21);
  Rng rng(22);
  // Simulate workers with random speeds but full completion: a random
  // interleaving of each worker's sequence push(i), pull(i).
  struct Ev {
    std::uint32_t w;
    std::int64_t i;
  };
  std::vector<Ev> events;
  for (std::uint32_t w = 0; w < N; ++w) {
    for (std::int64_t i = 0; i < iters; ++i) events.push_back({w, i});
  }
  // Shuffle while keeping each worker's own order (random merge).
  std::vector<std::size_t> cursor(N, 0);
  std::vector<std::vector<Ev>> per_worker(N);
  for (const auto& ev : events) per_worker[ev.w].push_back(ev);
  std::uint64_t req = 1;
  std::size_t remaining = events.size();
  std::size_t released_count = 0;
  std::size_t buffered_count = 0;
  while (remaining > 0) {
    const auto w = static_cast<std::uint32_t>(rng.uniform_u64(N));
    if (cursor[w] >= per_worker[w].size()) continue;
    const Ev ev = per_worker[w][cursor[w]++];
    --remaining;
    released_count += e.on_push(ev.w, ev.i).size();
    if (!e.on_pull(ev.w, ev.i, req++)) ++buffered_count;
  }
  EXPECT_EQ(e.buffered(), 0u) << "nothing may remain buffered after full completion";
  EXPECT_EQ(released_count, buffered_count);
  EXPECT_EQ(e.dpr_total(), static_cast<std::int64_t>(buffered_count));
  if (p.spec.kind != "drop") {
    EXPECT_EQ(e.v_train(), iters);
  } else {
    EXPECT_GE(e.v_train(), iters);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, EngineDrain,
    ::testing::Values(
        EngineCase{"bsp_lazy", {.kind = "bsp"}, DprMode::kLazy},
        EngineCase{"bsp_soft", {.kind = "bsp"}, DprMode::kSoftBarrier},
        EngineCase{"ssp_lazy", {.kind = "ssp", .staleness = 2}, DprMode::kLazy},
        EngineCase{"ssp_soft", {.kind = "ssp", .staleness = 2}, DprMode::kSoftBarrier},
        EngineCase{"asp_lazy", {.kind = "asp"}, DprMode::kLazy},
        EngineCase{"pssp_lazy", {.kind = "pssp", .staleness = 2, .prob = 0.5}, DprMode::kLazy},
        EngineCase{"pssp_soft", {.kind = "pssp", .staleness = 2, .prob = 0.5},
                   DprMode::kSoftBarrier},
        EngineCase{"psspdyn_lazy",
                   {.kind = "pssp_dynamic", .staleness = 2, .alpha = 0.8}, DprMode::kLazy},
        EngineCase{"dsps_lazy", {.kind = "dsps", .staleness = 2}, DprMode::kLazy},
        EngineCase{"dsps_soft", {.kind = "dsps", .staleness = 2}, DprMode::kSoftBarrier}),
    [](const ::testing::TestParamInfo<EngineCase>& info) { return info.param.name; });

}  // namespace
}  // namespace fluentps::ps
