// Thread-backend runtime tests: every architecture and sync model completes
// and learns with real concurrency.
#include <gtest/gtest.h>

#include "core/fluentps.h"

namespace fluentps {
namespace {

core::ExperimentConfig tiny() {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kThreads;
  cfg.num_workers = 4;
  cfg.num_servers = 2;
  cfg.max_iters = 60;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 1024;
  cfg.data.num_test = 256;
  cfg.opt.kind = "sgd";
  cfg.opt.lr.base = 0.4;
  cfg.batch_size = 16;
  cfg.seed = 5;
  return cfg;
}

struct ThreadCase {
  const char* name;
  const char* sync;
  std::int64_t s;
  double prob;
  core::Arch arch;
  ps::DprMode mode;
};

class ThreadRuntimeModels : public ::testing::TestWithParam<ThreadCase> {};

TEST_P(ThreadRuntimeModels, CompletesAndLearns) {
  const auto& p = GetParam();
  auto cfg = tiny();
  cfg.sync.kind = p.sync;
  cfg.sync.staleness = p.s;
  cfg.sync.prob = p.prob;
  cfg.arch = p.arch;
  cfg.dpr_mode = p.mode;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  EXPECT_GT(r.final_accuracy, 0.25) << "should be well above 10% chance";
  EXPECT_GT(r.total_time, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ThreadRuntimeModels,
    ::testing::Values(
        ThreadCase{"bsp_lazy", "bsp", 0, 0, core::Arch::kFluentPS, ps::DprMode::kLazy},
        ThreadCase{"bsp_soft", "bsp", 0, 0, core::Arch::kFluentPS, ps::DprMode::kSoftBarrier},
        ThreadCase{"asp", "asp", 0, 0, core::Arch::kFluentPS, ps::DprMode::kLazy},
        ThreadCase{"ssp2_lazy", "ssp", 2, 0, core::Arch::kFluentPS, ps::DprMode::kLazy},
        ThreadCase{"ssp2_soft", "ssp", 2, 0, core::Arch::kFluentPS, ps::DprMode::kSoftBarrier},
        ThreadCase{"pssp", "pssp", 2, 0.5, core::Arch::kFluentPS, ps::DprMode::kLazy},
        ThreadCase{"dsps", "dsps", 2, 0, core::Arch::kFluentPS, ps::DprMode::kLazy},
        ThreadCase{"drop", "drop", 0, 0, core::Arch::kFluentPS, ps::DprMode::kLazy},
        ThreadCase{"pslite_bsp", "bsp", 0, 0, core::Arch::kPsLite, ps::DprMode::kLazy},
        ThreadCase{"pslite_ssp", "ssp", 2, 0, core::Arch::kPsLite, ps::DprMode::kLazy},
        ThreadCase{"ssptable", "ssp", 3, 0, core::Arch::kSspTable, ps::DprMode::kLazy}),
    [](const ::testing::TestParamInfo<ThreadCase>& info) { return info.param.name; });

TEST(ThreadRuntime, MlpAndResMlpTrain) {
  auto cfg = tiny();
  cfg.max_iters = 40;
  cfg.model.kind = "mlp";
  cfg.model.hidden = 24;
  cfg.opt.lr.base = 0.2;
  EXPECT_GT(core::run_experiment(cfg).final_accuracy, 0.2);
  cfg.model.kind = "resmlp";
  cfg.model.hidden = 8;
  cfg.model.blocks = 4;
  cfg.opt.lr.base = 0.1;
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.final_accuracy, 0.1);
}

TEST(ThreadRuntime, LarsAndMomentumComplete) {
  auto cfg = tiny();
  cfg.max_iters = 30;
  cfg.opt.kind = "momentum";
  cfg.opt.lr.base = 0.1;
  EXPECT_EQ(core::run_experiment(cfg).iterations, 30);
  cfg.opt.kind = "lars";
  cfg.opt.lars_eta = 0.1;
  cfg.opt.lr.base = 1.0;
  EXPECT_EQ(core::run_experiment(cfg).iterations, 30);
}

TEST(ThreadRuntime, EvalCurveCollected) {
  auto cfg = tiny();
  cfg.eval_every = 20;
  const auto r = core::run_experiment(cfg);
  EXPECT_GE(r.curve.size(), 3u);
}

TEST(ThreadRuntime, ManyWorkersOversubscribed) {
  // More workers than cores: exercises contention paths.
  auto cfg = tiny();
  cfg.num_workers = 12;
  cfg.num_servers = 3;
  cfg.max_iters = 25;
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 2;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, 25);
}

}  // namespace
}  // namespace fluentps
