// Scheduler tests: baseline grant protocol and liveness tracking.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>

#include "net/inproc_transport.h"
#include "ps/scheduler.h"

namespace fluentps::ps {
namespace {

struct Rig {
  net::InprocTransport transport;
  std::unique_ptr<Scheduler> scheduler;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint32_t> grants;  // worker ranks granted, in order

  explicit Rig(std::uint32_t n_workers, const SyncModelSpec& sync) {
    SchedulerSpec spec;
    spec.node_id = 0;
    spec.num_workers = n_workers;
    for (std::uint32_t n = 0; n < n_workers; ++n) spec.worker_nodes.push_back(10 + n);
    spec.engine.num_workers = n_workers;
    spec.engine.mode = DprMode::kSoftBarrier;
    spec.engine.model = make_sync_model(sync, n_workers);
    spec.engine.seed = 3;
    scheduler = std::make_unique<Scheduler>(std::move(spec), transport);
    transport.register_node(0, [this](net::Message&& m) { scheduler->handle(std::move(m)); });
    for (std::uint32_t n = 0; n < n_workers; ++n) {
      transport.register_node(10 + n, [this](net::Message&& m) {
        if (m.type == net::MsgType::kPullGrant) {
          std::scoped_lock lock(mu);
          grants.push_back(m.worker_rank);
          cv.notify_all();
        }
      });
    }
  }

  void report(std::uint32_t worker, std::int64_t progress) {
    net::Message m;
    m.type = net::MsgType::kProgress;
    m.src = 10 + worker;
    m.dst = 0;
    m.worker_rank = worker;
    m.progress = progress;
    transport.send(std::move(m));
  }

  std::size_t wait_grants(std::size_t count) {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(2), [&] { return grants.size() >= count; });
    return grants.size();
  }
};

TEST(Scheduler, BspGrantsOnlyWhenAllReported) {
  Rig rig(3, {.kind = "bsp"});
  rig.report(0, 0);
  rig.report(1, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::scoped_lock lock(rig.mu);
    EXPECT_TRUE(rig.grants.empty()) << "worker 2 has not reported";
  }
  rig.report(2, 0);
  EXPECT_EQ(rig.wait_grants(3), 3u);
}

TEST(Scheduler, BoundedDelayGrantsFastWorkerImmediately) {
  Rig rig(2, {.kind = "ssp", .staleness = 3});
  rig.report(0, 0);  // gap 0 < 3: immediate grant
  EXPECT_EQ(rig.wait_grants(1), 1u);
  EXPECT_EQ(rig.grants[0], 0u);
}

TEST(Scheduler, GrantsIssuedCounter) {
  Rig rig(2, {.kind = "asp"});
  rig.report(0, 0);
  rig.report(1, 0);
  rig.wait_grants(2);
  EXPECT_EQ(rig.scheduler->grants_issued(), 2);
}

TEST(Scheduler, MultiIterationBspSequence) {
  Rig rig(2, {.kind = "bsp"});
  for (std::int64_t i = 0; i < 5; ++i) {
    rig.report(0, i);
    rig.report(1, i);
  }
  EXPECT_EQ(rig.wait_grants(10), 10u);
}

TEST(Scheduler, LivenessTracksHeartbeats) {
  Rig rig(1, {.kind = "asp"});
  net::Message hb;
  hb.type = net::MsgType::kHeartbeat;
  hb.src = 77;
  hb.dst = 0;
  rig.transport.send(std::move(hb));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  rig.scheduler->tick(1.0);
  auto alive = rig.scheduler->alive_servers();
  ASSERT_EQ(alive.size(), 1u);
  EXPECT_EQ(alive[0], 77u);
  // Far in the future the server is considered dead.
  rig.scheduler->tick(100.0);
  EXPECT_TRUE(rig.scheduler->alive_servers().empty());
}

}  // namespace
}  // namespace fluentps::ps
