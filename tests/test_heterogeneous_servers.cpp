// Per-server synchronization models (Figure 2 capability).
#include <gtest/gtest.h>

#include "core/fluentps.h"

namespace fluentps {
namespace {

core::ExperimentConfig base() {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.num_workers = 6;
  cfg.num_servers = 3;
  cfg.max_iters = 120;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 1024;
  cfg.data.num_test = 256;
  cfg.opt.kind = "sgd";
  cfg.opt.lr.base = 0.4;
  cfg.batch_size = 16;
  cfg.compute.kind = "persistent";  // a straggler makes sync models matter
  cfg.compute.slowdown = 3.0;
  cfg.seed = 31;
  return cfg;
}

TEST(PerServerSync, MixedModelsCompleteAndLearn) {
  auto cfg = base();
  cfg.per_server_sync = {{.kind = "ssp", .staleness = 2},
                         {.kind = "pssp", .staleness = 2, .prob = 0.5},
                         {.kind = "asp"}};
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  EXPECT_GT(r.final_accuracy, 0.3);
}

TEST(PerServerSync, DprVolumeBetweenUniformExtremes) {
  auto asp = base();
  asp.sync.kind = "asp";
  const auto r_asp = core::run_experiment(asp);

  auto bsp = base();
  bsp.sync.kind = "bsp";
  const auto r_bsp = core::run_experiment(bsp);

  auto mixed = base();
  mixed.per_server_sync = {{.kind = "bsp"}, {.kind = "asp"}, {.kind = "asp"}};
  const auto r_mixed = core::run_experiment(mixed);

  EXPECT_EQ(r_asp.dpr_total, 0);
  EXPECT_GT(r_bsp.dpr_total, 0);
  EXPECT_GT(r_mixed.dpr_total, r_asp.dpr_total);
  EXPECT_LT(r_mixed.dpr_total, r_bsp.dpr_total)
      << "only one of three shards blocks in the mixed cluster";
}

TEST(PerServerSync, WrongSizeAborts) {
  auto cfg = base();
  cfg.per_server_sync = {{.kind = "asp"}};  // 1 entry, 3 servers
  EXPECT_DEATH((void)core::run_experiment(cfg), "one entry per server");
}

TEST(PerServerSync, RejectedOnBaselineArch) {
  auto cfg = base();
  cfg.arch = core::Arch::kPsLite;
  cfg.per_server_sync = {{.kind = "asp"}, {.kind = "asp"}, {.kind = "asp"}};
  EXPECT_DEATH((void)core::run_experiment(cfg), "FluentPS architecture");
}

TEST(PerServerSync, WorksOnThreadBackend) {
  auto cfg = base();
  cfg.backend = core::Backend::kThreads;
  cfg.compute.kind = "lognormal";
  cfg.per_server_sync = {{.kind = "ssp", .staleness = 2},
                         {.kind = "asp"},
                         {.kind = "pssp", .staleness = 2, .prob = 0.5}};
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
}

}  // namespace
}  // namespace fluentps
