// Unit tests for messages and both transports.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "embed/sparse_codec.h"
#include "net/inproc_transport.h"
#include "net/message.h"
#include "net/sim_transport.h"

namespace fluentps::net {
namespace {

Message sample_message() {
  Message m;
  m.type = MsgType::kPush;
  m.src = 3;
  m.dst = 7;
  m.request_id = 0xDEADBEEF12345678ULL;
  m.progress = -5;
  m.worker_rank = 11;
  m.server_rank = 2;
  m.values = {1.5f, -2.0f, 3.25f};
  return m;
}

TEST(Message, SerializeRoundTrip) {
  const Message m = sample_message();
  Message out;
  ASSERT_TRUE(Message::deserialize(m.serialize(), &out));
  EXPECT_EQ(out.type, m.type);
  EXPECT_EQ(out.src, m.src);
  EXPECT_EQ(out.dst, m.dst);
  EXPECT_EQ(out.request_id, m.request_id);
  EXPECT_EQ(out.progress, m.progress);
  EXPECT_EQ(out.worker_rank, m.worker_rank);
  EXPECT_EQ(out.server_rank, m.server_rank);
  EXPECT_EQ(out.values, m.values);
}

TEST(Message, RoundTripAllTypes) {
  for (std::uint8_t t = 0; t <= static_cast<std::uint8_t>(MsgType::kPullRedirect); ++t) {
    Message m = sample_message();
    m.type = static_cast<MsgType>(t);
    Message out;
    ASSERT_TRUE(Message::deserialize(m.serialize(), &out)) << static_cast<int>(t);
    EXPECT_EQ(out.type, m.type);
  }
}

TEST(Message, ReplicationTypesRoundTripWithLsn) {
  // kReplicate carries the chain lsn in request_id plus the original push's
  // (worker, seq, progress) and the values; kReplicateAck is the cumulative
  // horizon, control-sized.
  Message m = sample_message();
  m.type = MsgType::kReplicate;
  m.request_id = 42;  // lsn
  m.seq = 7;
  Message out;
  ASSERT_TRUE(Message::deserialize(m.serialize(), &out));
  EXPECT_EQ(out.type, MsgType::kReplicate);
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.seq, 7u);
  EXPECT_EQ(out.values, m.values);
  EXPECT_NE(to_string(MsgType::kReplicate), to_string(MsgType::kReplicateAck));
  EXPECT_STREQ(to_string(MsgType::kPromote), "Promote");
}

TEST(Message, TypePastLastSparseRejected) {
  auto frame = sample_message().serialize();
  frame[0] = static_cast<std::uint8_t>(MsgType::kMigrateAck) + 1;
  Message out;
  EXPECT_FALSE(Message::deserialize(frame, &out));
}

TEST(Message, MigrateTypesRoundTrip) {
  for (const MsgType t :
       {MsgType::kMigrateSnapshot, MsgType::kMigrateDelta, MsgType::kMigrateAck}) {
    Message msg = sample_message();
    msg.type = t;
    auto frame = msg.serialize();
    Message out;
    ASSERT_TRUE(Message::deserialize(frame, &out));
    EXPECT_EQ(out.type, t);
    EXPECT_EQ(out.seq, msg.seq);
    EXPECT_EQ(out.request_id, msg.request_id);
  }
}

TEST(Message, SparseTypesRoundTripWithCodecFrame) {
  // A sparse push's payload is an embed codec frame packed into the float
  // stream as raw bit patterns; the wire must preserve it exactly (the words
  // are not valid floats — NaNs, denormals — so any numeric handling of the
  // payload would corrupt them).
  embed::SparseBatch batch;
  batch.table_id = 1;
  batch.dim = 2;
  batch.rows = {3, 1ull << 40, ~0ull};
  batch.values = {0.5f, -1.0f, 2.5f, -3.0f, 4.5f, -5.0f};

  Message m = sample_message();
  m.type = MsgType::kSparsePush;
  m.seq = 9;        // reliability sequence
  m.progress = 4;   // sparse round
  m.values = Payload(embed::encode_sparse(batch));

  Message out;
  ASSERT_TRUE(Message::deserialize(m.serialize(), &out));
  EXPECT_EQ(out.type, MsgType::kSparsePush);
  EXPECT_EQ(out.seq, 9u);
  EXPECT_EQ(out.progress, 4);
  embed::SparseBatch decoded;
  ASSERT_TRUE(embed::decode_sparse(out.values.span(), &decoded));
  EXPECT_EQ(decoded.table_id, batch.table_id);
  EXPECT_EQ(decoded.rows, batch.rows);
  EXPECT_EQ(decoded.values, batch.values);
  EXPECT_STREQ(to_string(MsgType::kSparsePullResp), "SparsePullResp");
  EXPECT_STREQ(to_string(MsgType::kSparseReplicateAck), "SparseReplicateAck");
}

TEST(Message, EmptyValuesRoundTrip) {
  Message m = sample_message();
  m.values.clear();
  Message out;
  ASSERT_TRUE(Message::deserialize(m.serialize(), &out));
  EXPECT_TRUE(out.values.empty());
}

TEST(Message, TruncatedFrameRejected) {
  auto frame = sample_message().serialize();
  frame.resize(frame.size() - 5);
  Message out;
  EXPECT_FALSE(Message::deserialize(frame, &out));
}

TEST(Message, BadTypeRejected) {
  auto frame = sample_message().serialize();
  frame[0] = 250;  // invalid MsgType
  Message out;
  EXPECT_FALSE(Message::deserialize(frame, &out));
}

TEST(Message, WireBytesChargesHeaderPlusPayload) {
  Message m = sample_message();
  EXPECT_DOUBLE_EQ(m.wire_bytes(), kHeaderBytes + 3 * sizeof(float));
  m.values.clear();
  EXPECT_DOUBLE_EQ(m.wire_bytes(), kHeaderBytes);
}

TEST(Message, DebugStringMentionsType) {
  EXPECT_NE(sample_message().to_debug_string().find("Push"), std::string::npos);
  EXPECT_STREQ(to_string(MsgType::kPullResp), "PullResp");
}

TEST(InprocTransport, DeliversToHandler) {
  InprocTransport t;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::int64_t> got;
  t.register_node(1, [&](Message&& m) {
    std::scoped_lock lock(mu);
    got.push_back(m.progress);
    cv.notify_one();
  });
  Message m;
  m.dst = 1;
  m.progress = 42;
  t.send(std::move(m));
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return !got.empty(); });
  EXPECT_EQ(got[0], 42);
}

TEST(InprocTransport, FifoPerDestination) {
  InprocTransport t;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::int64_t> got;
  t.register_node(1, [&](Message&& m) {
    std::scoped_lock lock(mu);
    got.push_back(m.progress);
    cv.notify_one();
  });
  for (int i = 0; i < 100; ++i) {
    Message m;
    m.dst = 1;
    m.progress = i;
    t.send(std::move(m));
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return got.size() == 100; });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(InprocTransport, UnknownDestinationDropped) {
  InprocTransport t;
  Message m;
  m.dst = 99;
  t.send(std::move(m));  // must not crash
  t.shutdown();
  EXPECT_EQ(t.delivered(), 0u);
}

TEST(InprocTransport, ShutdownDrainsQueuedMessages) {
  InprocTransport t;
  std::atomic<int> count{0};
  t.register_node(1, [&](Message&&) { ++count; });
  for (int i = 0; i < 500; ++i) {
    Message m;
    m.dst = 1;
    t.send(std::move(m));
  }
  t.shutdown();  // must deliver everything already queued
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(t.delivered(), 500u);
}

TEST(InprocTransport, TwoNodesExchange) {
  InprocTransport t;
  std::atomic<int> pongs{0};
  t.register_node(1, [&t](Message&& m) {
    if (m.type == MsgType::kPull) {
      Message reply;
      reply.type = MsgType::kPullResp;
      reply.dst = m.src;
      reply.src = m.dst;
      t.send(std::move(reply));
    }
  });
  t.register_node(2, [&](Message&& m) {
    if (m.type == MsgType::kPullResp) ++pongs;
  });
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.type = MsgType::kPull;
    m.src = 2;
    m.dst = 1;
    t.send(std::move(m));
  }
  // Poll until delivered (bounded wait).
  for (int spin = 0; spin < 1000 && pongs.load() < 10; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pongs.load(), 10);
}

TEST(SimTransport, DeliveryAtNetworkTime) {
  sim::SimEnv env;
  sim::NetworkSpec spec;
  spec.latency_seconds = 0.001;
  spec.bandwidth_bytes_per_sec = 1e6;
  sim::NetworkModel net(spec, 2);
  SimTransport t(env, net);
  double delivered_at = -1.0;
  t.register_node(1, [&](Message&&) { delivered_at = env.now(); });
  Message m;
  m.src = 0;
  m.dst = 1;
  m.values.resize(239);  // 956 bytes payload + header
  const double bytes = kHeaderBytes + 239 * sizeof(float);
  t.send(std::move(m));
  env.run();
  EXPECT_NEAR(delivered_at, 0.001 + 2 * bytes / 1e6, 1e-9);
  EXPECT_EQ(t.delivered(), 1u);
}

TEST(SimTransport, PreservesSendOrderSameRoute) {
  sim::SimEnv env;
  sim::NetworkModel net(sim::NetworkSpec{}, 2);
  SimTransport t(env, net);
  std::vector<std::int64_t> got;
  t.register_node(1, [&](Message&& m) { got.push_back(m.progress); });
  for (int i = 0; i < 20; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.progress = i;
    t.send(std::move(m));
  }
  env.run();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(SimTransport, UnknownDestinationDropped) {
  sim::SimEnv env;
  sim::NetworkModel net(sim::NetworkSpec{}, 2);
  SimTransport t(env, net);
  Message m;
  m.dst = 55;
  t.send(std::move(m));
  env.run();
  EXPECT_EQ(t.delivered(), 0u);
}

}  // namespace
}  // namespace fluentps::net
