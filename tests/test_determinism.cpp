// Property sweep: the simulation backend is bit-deterministic for every
// architecture, synchronization model and DPR mode (DESIGN.md D6). Two runs
// of the same config must agree on every reported number.
#include <gtest/gtest.h>

#include "core/fluentps.h"

namespace fluentps {
namespace {

struct DetCase {
  const char* name;
  core::Arch arch;
  const char* sync;
  std::int64_t s;
  double prob;
  ps::DprMode mode;
  const char* compute;
  // Fault injection (zero-initialized for pristine cases): determinism must
  // hold with the reliability layer and chaos in the loop too.
  double drop = 0.0;
  bool crash = false;
};

class SimDeterminism : public ::testing::TestWithParam<DetCase> {};

TEST_P(SimDeterminism, TwoRunsBitIdentical) {
  const auto& p = GetParam();
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.arch = p.arch;
  cfg.num_workers = 6;
  cfg.num_servers = 2;
  cfg.max_iters = 60;
  cfg.sync.kind = p.sync;
  cfg.sync.staleness = p.s;
  cfg.sync.prob = p.prob;
  cfg.dpr_mode = p.mode;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 512;
  cfg.data.num_test = 128;
  cfg.opt.kind = "momentum";
  cfg.opt.lr.base = 0.2;
  cfg.batch_size = 8;
  cfg.compute.kind = p.compute;
  cfg.compute.base_seconds = 0.01;
  cfg.seed = 2718;
  if (p.drop > 0.0 || p.crash) {
    cfg.faults.link.drop_prob = p.drop;
    cfg.faults.link.dup_prob = 0.05;
    cfg.faults.link.delay_prob = 0.1;
    cfg.faults.link.delay_seconds = 0.004;
    cfg.faults.checkpoint_every = 0.05;
    cfg.retry.initial_timeout = 0.02;
    cfg.retry.max_timeout = 0.3;
    if (p.crash) cfg.faults.crashes.push_back({/*server_rank=*/0, 0.12, 0.3});
  }

  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.compute_time, b.compute_time);
  EXPECT_DOUBLE_EQ(a.comm_time, b.comm_time);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.dpr_total, b.dpr_total);
  EXPECT_DOUBLE_EQ(a.bytes_total, b.bytes_total);
  EXPECT_EQ(a.messages, b.messages);
  // Fault-side numbers must agree too (trivially 0 == 0 for pristine cases).
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.delayed, b.delayed);
  EXPECT_EQ(a.worker_retries, b.worker_retries);
  EXPECT_EQ(a.server_dedup_hits, b.server_dedup_hits);
  EXPECT_EQ(a.server_recoveries, b.server_recoveries);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SimDeterminism,
    ::testing::Values(
        DetCase{"fluent_bsp_lazy", core::Arch::kFluentPS, "bsp", 0, 0, ps::DprMode::kLazy,
                "lognormal"},
        DetCase{"fluent_ssp_soft", core::Arch::kFluentPS, "ssp", 2, 0, ps::DprMode::kSoftBarrier,
                "lognormal"},
        DetCase{"fluent_asp", core::Arch::kFluentPS, "asp", 0, 0, ps::DprMode::kLazy, "uniform"},
        DetCase{"fluent_pssp_lazy", core::Arch::kFluentPS, "pssp", 2, 0.5, ps::DprMode::kLazy,
                "heterogeneous"},
        DetCase{"fluent_pssp_soft", core::Arch::kFluentPS, "pssp", 2, 0.3,
                ps::DprMode::kSoftBarrier, "transient"},
        DetCase{"fluent_dsps", core::Arch::kFluentPS, "dsps", 2, 0, ps::DprMode::kLazy,
                "persistent"},
        DetCase{"fluent_drop", core::Arch::kFluentPS, "drop", 0, 0, ps::DprMode::kLazy,
                "persistent"},
        DetCase{"pslite_bsp", core::Arch::kPsLite, "bsp", 0, 0, ps::DprMode::kLazy, "lognormal"},
        DetCase{"pslite_ssp", core::Arch::kPsLite, "ssp", 3, 0, ps::DprMode::kLazy,
                "heterogeneous"},
        DetCase{"ssptable", core::Arch::kSspTable, "ssp", 3, 0, ps::DprMode::kLazy, "lognormal"},
        DetCase{"faulty_fluent_ssp", core::Arch::kFluentPS, "ssp", 2, 0, ps::DprMode::kLazy,
                "lognormal", 0.1, true},
        DetCase{"faulty_fluent_pssp_soft", core::Arch::kFluentPS, "pssp", 2, 0.4,
                ps::DprMode::kSoftBarrier, "heterogeneous", 0.1, true},
        DetCase{"faulty_pslite_bsp", core::Arch::kPsLite, "bsp", 0, 0, ps::DprMode::kLazy,
                "lognormal", 0.1, true},
        DetCase{"faulty_ssptable_lossy", core::Arch::kSspTable, "ssp", 3, 0, ps::DprMode::kLazy,
                "lognormal", 0.1, false}),
    [](const ::testing::TestParamInfo<DetCase>& info) { return info.param.name; });

TEST(SimDeterminismExtras, SignificanceFilterDeterministic) {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.num_workers = 4;
  cfg.num_servers = 2;
  cfg.max_iters = 80;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 512;
  cfg.data.num_test = 128;
  cfg.batch_size = 8;
  cfg.push_significance_threshold = 0.05;
  cfg.seed = 3;
  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  EXPECT_EQ(a.pushes_filtered, b.pushes_filtered);
  EXPECT_DOUBLE_EQ(a.bytes_total, b.bytes_total);
}

TEST(SimDeterminismExtras, StagedRunsDeterministic) {
  core::ExperimentConfig s1;
  s1.backend = core::Backend::kSim;
  s1.num_workers = 3;
  s1.num_servers = 1;
  s1.max_iters = 40;
  s1.model.kind = "softmax";
  s1.data.num_train = 512;
  s1.data.num_test = 128;
  s1.batch_size = 8;
  s1.seed = 4;
  auto s2 = s1;
  s2.num_workers = 6;
  const auto a = core::run_stages({s1, s2});
  const auto b = core::run_stages({s1, s2});
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

}  // namespace
}  // namespace fluentps
