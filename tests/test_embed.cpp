// Unit tests for the sparse embedding subsystem (src/embed): wire codec,
// hash-shard routing, table registry, QoS arbiter, round reducer, lazy
// materialization and the sharding-invariant digest contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "embed/embedding_table.h"
#include "embed/qos.h"
#include "embed/reducer.h"
#include "embed/routing.h"
#include "embed/sparse_codec.h"
#include "embed/sparse_core.h"
#include "embed/table_spec.h"
#include "embed/workload.h"
#include "net/payload.h"

namespace fluentps::embed {
namespace {

SparseBatch make_batch(std::uint32_t table_id, std::uint32_t dim,
                       std::vector<std::uint64_t> rows, bool with_values) {
  SparseBatch b;
  b.table_id = table_id;
  b.dim = dim;
  b.rows = std::move(rows);
  if (with_values) {
    b.values.resize(b.rows.size() * dim);
    for (std::size_t i = 0; i < b.values.size(); ++i) {
      b.values[i] = static_cast<float>(i) * 0.25f - 1.0f;
    }
  }
  return b;
}

// --- codec ----------------------------------------------------------------

TEST(SparseCodec, RoundTripWithValues) {
  const SparseBatch b = make_batch(3, 4, {0, 7, 1ull << 40, ~0ull}, true);
  const std::vector<float> frame = encode_sparse(b);
  EXPECT_EQ(frame.size(), encoded_size(b));
  SparseBatch out;
  ASSERT_TRUE(decode_sparse(frame, &out));
  EXPECT_EQ(out.table_id, b.table_id);
  EXPECT_EQ(out.dim, b.dim);
  EXPECT_EQ(out.rows, b.rows);
  EXPECT_EQ(out.values, b.values);
}

TEST(SparseCodec, RoundTripRowsOnly) {
  const SparseBatch b = make_batch(1, 8, {42, 43}, false);
  SparseBatch out;
  ASSERT_TRUE(decode_sparse(encode_sparse(b), &out));
  EXPECT_EQ(out.rows, b.rows);
  EXPECT_FALSE(out.has_values());
  EXPECT_EQ(out.dim, 8u);
}

TEST(SparseCodec, RoundTripEmptyBatchKeepsHeader) {
  // A round marker: no rows, but table_id/dim must survive the wire.
  const SparseBatch b = make_batch(5, 16, {}, false);
  SparseBatch out;
  ASSERT_TRUE(decode_sparse(encode_sparse(b), &out));
  EXPECT_EQ(out.table_id, 5u);
  EXPECT_EQ(out.dim, 16u);
  EXPECT_TRUE(out.rows.empty());
}

TEST(SparseCodec, PayloadEncodeMatchesVectorEncode) {
  const SparseBatch b = make_batch(2, 3, {9, 10, 11}, true);
  net::Payload p;
  encode_sparse(b, p);
  const std::vector<float> v = encode_sparse(b);
  ASSERT_EQ(p.span().size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(p.span()[i]), std::bit_cast<std::uint32_t>(v[i]))
        << "word " << i;
  }
}

TEST(SparseCodec, RejectsShortHeader) {
  const std::vector<float> frame(3, 0.0f);
  SparseBatch out;
  EXPECT_FALSE(decode_sparse(frame, &out));
}

TEST(SparseCodec, RejectsTruncatedFrame) {
  const SparseBatch b = make_batch(0, 4, {1, 2, 3}, true);
  std::vector<float> frame = encode_sparse(b);
  frame.pop_back();
  SparseBatch out;
  EXPECT_FALSE(decode_sparse(frame, &out));
}

TEST(SparseCodec, RejectsZeroDimWithValues) {
  // Hand-craft: dim = 0 but flags claim values present.
  std::vector<float> frame;
  const auto word = [&frame](std::uint32_t w) { frame.push_back(std::bit_cast<float>(w)); };
  word(0);  // table_id
  word(0);  // dim = 0
  word(1);  // n_rows
  word(1);  // flags: has_values
  word(7);  // row_id_lo
  word(0);  // row_id_hi
  SparseBatch out;
  EXPECT_FALSE(decode_sparse(frame, &out));
}

// --- routing --------------------------------------------------------------

TEST(Routing, StableAndInRange) {
  for (std::uint32_t t = 0; t < 3; ++t) {
    for (std::uint64_t r = 0; r < 200; ++r) {
      const std::uint32_t m = route(t, r, 5);
      EXPECT_LT(m, 5u);
      EXPECT_EQ(m, route(t, r, 5)) << "routing must be pure";
    }
  }
}

TEST(Routing, SameRowIdRoutesIndependentlyAcrossTables) {
  // Two tables sharing row ids must not pin those rows to the same shard:
  // the table id perturbs the key before the avalanche.
  int differing = 0;
  for (std::uint64_t r = 0; r < 1000; ++r) {
    if (route(0, r, 4) != route(1, r, 4)) ++differing;
    EXPECT_NE(mix_key(0, r), mix_key(1, r)) << "row " << r;
  }
  // With independent uniform routing, ~75% differ; require well above chance
  // of a broken (table-ignoring) mix.
  EXPECT_GT(differing, 500);
}

TEST(Routing, ShardsPartitionABatchExactly) {
  SparseJobSpec job;
  job.tables = parse_tables("emb:dim=4,rows=256");
  job.num_workers = 1;
  job.rounds = 1;
  job.batch_rows = 64;
  const SparseBatch full = sample_batch(job, job.tables[0], 77, 0, 0);
  ASSERT_FALSE(full.rows.empty());

  const std::uint32_t servers = 3;
  std::map<std::uint64_t, std::vector<float>> seen;
  for (std::uint32_t m = 0; m < servers; ++m) {
    const SparseBatch shard = shard_of(full, m, servers);
    EXPECT_EQ(shard.table_id, full.table_id);
    EXPECT_EQ(shard.dim, full.dim);
    for (std::size_t i = 0; i < shard.rows.size(); ++i) {
      EXPECT_EQ(route(shard.table_id, shard.rows[i], servers), m);
      const float* g = shard.values.data() + i * shard.dim;
      const bool inserted =
          seen.emplace(shard.rows[i], std::vector<float>(g, g + shard.dim)).second;
      EXPECT_TRUE(inserted) << "row " << shard.rows[i] << " on two shards";
    }
  }
  ASSERT_EQ(seen.size(), full.rows.size());
  for (std::size_t i = 0; i < full.rows.size(); ++i) {
    const auto it = seen.find(full.rows[i]);
    ASSERT_NE(it, seen.end());
    const float* g = full.values.data() + i * full.dim;
    EXPECT_EQ(it->second, std::vector<float>(g, g + full.dim));
  }
}

TEST(Routing, EmptyShardKeepsRoundMarkerHeader) {
  // A batch whose rows all route elsewhere still produces a shard frame with
  // the right table header — the empty push is the worker's round marker.
  const SparseBatch full = make_batch(2, 4, {}, false);
  const SparseBatch shard = shard_of(full, 0, 2);
  EXPECT_TRUE(shard.rows.empty());
  EXPECT_EQ(shard.table_id, 2u);
  EXPECT_EQ(shard.dim, 4u);
}

TEST(Routing, SingleRowTableAlwaysSamplesItsOnlyRow) {
  SparseJobSpec job;
  job.tables = parse_tables("one:dim=2,rows=1");
  job.num_workers = 1;
  job.rounds = 1;
  job.batch_rows = 8;
  const SparseBatch b = sample_batch(job, job.tables[0], 5, 0, 0);
  ASSERT_EQ(b.rows.size(), 1u);  // duplicates collapse to the single row
  EXPECT_EQ(b.rows[0], 0u);
  EXPECT_EQ(b.values.size(), 2u);
}

// --- registry -------------------------------------------------------------

TEST(TableRegistryTest, ParsesFullSyntax) {
  const auto specs =
      parse_tables("emb:dim=8,rows=512,opt=adagrad,lr=0.05,qos=2;ads:dim=4");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "emb");
  EXPECT_EQ(specs[0].table_id, 0u);
  EXPECT_EQ(specs[0].dim, 8u);
  EXPECT_EQ(specs[0].rows, 512u);
  EXPECT_EQ(specs[0].opt.kind, ml::RowOptKind::kAdaGrad);
  EXPECT_FLOAT_EQ(specs[0].opt.lr, 0.05f);
  EXPECT_DOUBLE_EQ(specs[0].qos_weight, 2.0);
  EXPECT_EQ(specs[1].name, "ads");
  EXPECT_EQ(specs[1].table_id, 1u);
  EXPECT_EQ(specs[1].dim, 4u);
  EXPECT_EQ(specs[1].rows, 1024u);  // default
  EXPECT_EQ(specs[1].opt.kind, ml::RowOptKind::kSgd);
}

TEST(TableRegistryTest, EmptyTextParsesToNoTables) {
  EXPECT_TRUE(parse_tables("").empty());
}

TEST(TableRegistryTest, LookupByIdAndUnknownId) {
  const TableRegistry reg(parse_tables("a:dim=2;b:dim=3"));
  ASSERT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.at(1).name, "b");
  ASSERT_NE(reg.find(0), nullptr);
  EXPECT_EQ(reg.find(0)->dim, 2u);
  EXPECT_EQ(reg.find(2), nullptr);  // malformed-frame path
}

// --- QoS ------------------------------------------------------------------

TEST(Qos, DeficitRoundRobinConvergesToWeightRatio) {
  QosArbiter arb;
  arb.add_tenant(0, 1.0);
  arb.add_tenant(1, 3.0);
  const std::vector<std::uint32_t> ready{0, 1};
  for (int i = 0; i < 400; ++i) arb.pick(ready);
  EXPECT_EQ(arb.served(0) + arb.served(1), 400);
  // 1:3 weights over a busy interval: tenant 1 gets ~300 of 400 units.
  EXPECT_NEAR(static_cast<double>(arb.served(1)), 300.0, 12.0);
}

TEST(Qos, ZeroWeightTenantIsNotStarved) {
  QosArbiter arb;
  arb.add_tenant(0, 0.0);  // clamped to a positive floor
  arb.add_tenant(1, 1.0);
  const std::vector<std::uint32_t> ready{0, 1};
  for (int i = 0; i < 2000; ++i) arb.pick(ready);
  EXPECT_GT(arb.served(0), 0);
}

TEST(Qos, LoneReadyTenantAlwaysWins) {
  QosArbiter arb;
  arb.add_tenant(0, 1.0);
  arb.add_tenant(1, 100.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(arb.pick({0}), 0u);
  EXPECT_EQ(arb.served(0), 10);
  EXPECT_EQ(arb.served(1), 0);
}

// --- reducer --------------------------------------------------------------

TEST(Reducer, TakeRoundSortsByWorkerRank) {
  RoundReducer r;
  r.add(0, Contribution{2, {5}, {1.0f}});
  r.add(0, Contribution{0, {5}, {2.0f}});
  r.add(0, Contribution{1, {5}, {3.0f}});
  const auto c = r.take_round(0);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].worker, 0u);
  EXPECT_EQ(c[1].worker, 1u);
  EXPECT_EQ(c[2].worker, 2u);
  EXPECT_EQ(r.pending_rounds(), 0u);
  EXPECT_TRUE(r.take_round(0).empty());  // drained round -> empty
}

TEST(Reducer, HotRowGradientsCoalesceIntoOneSum) {
  const std::vector<Contribution> contribs{
      {0, {3, 7}, {1.0f, 2.0f, 10.0f, 20.0f}},
      {1, {3}, {0.5f, 0.5f}},
  };
  const ReducedRound red = reduce_contributions(contribs, 2);
  ASSERT_EQ(red.rows.size(), 2u);
  EXPECT_EQ(red.rows[0], 3u);
  EXPECT_EQ(red.rows[1], 7u);
  EXPECT_FLOAT_EQ(red.sums[0], 1.5f);
  EXPECT_FLOAT_EQ(red.sums[1], 2.5f);
  EXPECT_FLOAT_EQ(red.sums[2], 10.0f);
  EXPECT_FLOAT_EQ(red.sums[3], 20.0f);
}

namespace {

/// Feed the same sampled contribution stream into a fresh core.
std::unique_ptr<SparseCore> run_core(const SparseJobSpec& job, std::uint64_t seed,
                                     bool reduce) {
  SparseCoreSpec spec;
  spec.server_rank = 0;
  spec.num_workers = job.num_workers;
  spec.tables = job.tables;
  spec.seed = seed;
  spec.reduce = reduce;
  auto core = std::make_unique<SparseCore>(spec);
  for (std::int64_t round = 0; round < job.rounds; ++round) {
    for (std::uint32_t w = 0; w < job.num_workers; ++w) {
      for (const TableSpec& t : job.tables) {
        core->ingest(round, sample_batch(job, t, seed, w, round), w);
      }
    }
    for (const std::uint32_t t : core->drainable()) core->drain_one(t);
  }
  return core;
}

}  // namespace

TEST(Reducer, SgdReduceOnOffAgreeUpToReassociation) {
  // SGD's apply is linear in g, so coalescing a hot row's gradients into
  // lr*(g1+g2) agrees with sequential lr*g1, lr*g2 applies numerically —
  // but only up to floating-point reassociation, not bitwise. Each mode
  // stays exactly reproducible against its own reference oracle; the
  // cross-mode comparison is a tolerance check.
  SparseJobSpec job;
  job.tables = parse_tables("emb:dim=4,rows=64,opt=sgd");
  job.num_workers = 3;
  job.rounds = 5;
  job.batch_rows = 16;
  job.zipf_s = 1.3;  // hot head: plenty of cross-worker row collisions
  const auto on = run_core(job, 9, true);
  const auto off = run_core(job, 9, false);
  std::vector<float> a(4), b(4);
  for (std::uint64_t r = 0; r < job.tables[0].rows; ++r) {
    on->table(0).copy_row(r, a);
    off->table(0).copy_row(r, b);
    for (std::uint32_t k = 0; k < 4; ++k) EXPECT_NEAR(a[k], b[k], 1e-5) << "row " << r;
  }
  // Coalescing does strictly less apply work on a skewed stream.
  EXPECT_LT(on->table(0).applies(), off->table(0).applies());
}

TEST(Reducer, EachModeMatchesItsOwnReferenceOracle) {
  SparseJobSpec job;
  job.tables = parse_tables("emb:dim=4,rows=64,opt=sgd;hot:dim=2,rows=16,opt=adagrad");
  job.num_workers = 3;
  job.rounds = 5;
  job.batch_rows = 16;
  job.zipf_s = 1.3;
  job.reduce = true;
  EXPECT_EQ(run_core(job, 9, true)->digest(), reference_state_digest(job, 9));
  job.reduce = false;
  EXPECT_EQ(run_core(job, 9, false)->digest(), reference_state_digest(job, 9));
}

TEST(Reducer, AdaGradReduceOnOffDiverge) {
  // AdaGrad's accumulator sees one summed step vs per-worker steps: the two
  // modes are deliberately different algorithms.
  SparseJobSpec job;
  job.tables = parse_tables("emb:dim=4,rows=32,opt=adagrad");
  job.num_workers = 3;
  job.rounds = 5;
  job.batch_rows = 16;
  job.zipf_s = 1.3;
  EXPECT_NE(run_core(job, 9, true)->digest(), run_core(job, 9, false)->digest());
}

// --- embedding table ------------------------------------------------------

TEST(EmbeddingTableTest, LazyInitIsTouchOrderIndependent) {
  const TableSpec spec = parse_tables("emb:dim=4,rows=128")[0];
  EmbeddingTable a(spec, 42), b(spec, 42);
  std::vector<float> buf(4);
  for (std::uint64_t r = 0; r < 20; ++r) a.copy_row(r, buf);
  for (std::uint64_t r = 20; r-- > 0;) b.copy_row(r, buf);  // reverse order
  EXPECT_EQ(a.materialized_rows(), 20u);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(EmbeddingTableTest, DistinctSeedsDrawDistinctRows) {
  const TableSpec spec = parse_tables("emb:dim=4,rows=128")[0];
  EmbeddingTable a(spec, 1), b(spec, 2);
  std::vector<float> va(4), vb(4);
  a.copy_row(0, va);
  b.copy_row(0, vb);
  EXPECT_NE(va, vb);
}

TEST(EmbeddingTableTest, ApplyCountsAndMutates) {
  const TableSpec spec = parse_tables("emb:dim=2,rows=8,opt=sgd,lr=1.0")[0];
  EmbeddingTable t(spec, 7);
  std::vector<float> before(2), after(2);
  t.copy_row(3, before);
  const std::vector<float> g{0.5f, -0.25f};
  t.apply(3, g);
  t.copy_row(3, after);
  EXPECT_EQ(t.applies(), 1);
  EXPECT_FLOAT_EQ(after[0], before[0] - 0.5f);
  EXPECT_FLOAT_EQ(after[1], before[1] + 0.25f);
}

TEST(SparseCoreTest, DedupWindowSwallowsRetransmits) {
  SparseCoreSpec spec;
  spec.num_workers = 2;
  spec.tables = parse_tables("emb:dim=2,rows=8");
  SparseCore core(spec);
  EXPECT_TRUE(core.accept_push(0, 1));
  EXPECT_FALSE(core.accept_push(0, 1));  // retransmit
  EXPECT_TRUE(core.accept_push(1, 1));   // per-worker windows are independent
  EXPECT_TRUE(core.accept_push(0, 2));
}

TEST(SparseCoreTest, RoundDrainsOnlyWhenAllWorkersContributed) {
  SparseJobSpec job;
  job.tables = parse_tables("emb:dim=2,rows=16");
  job.num_workers = 2;
  job.rounds = 1;
  SparseCoreSpec spec;
  spec.num_workers = 2;
  spec.tables = job.tables;
  spec.seed = 3;
  SparseCore core(spec);
  core.ingest(0, sample_batch(job, job.tables[0], 3, 0, 0), 0);
  EXPECT_TRUE(core.drainable().empty()) << "worker 1 has not reported round 0";
  core.ingest(0, sample_batch(job, job.tables[0], 3, 1, 0), 1);
  const auto ready = core.drainable();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_GT(core.drain_one(ready[0]), 0);
  EXPECT_EQ(core.completed_round(0), 0);
  EXPECT_TRUE(core.drainable().empty());
}

// --- digest contract ------------------------------------------------------

TEST(DigestContract, ShardedCoreDigestsSumToSerialReference) {
  // The zero-loss oracle: per-server digests from ANY partitioning add up to
  // the unsharded serial replay's digest.
  SparseJobSpec job;
  job.tables = parse_tables("emb:dim=8,rows=256,opt=adagrad,qos=2;ads:dim=4,rows=64");
  job.num_workers = 3;
  job.rounds = 6;
  job.batch_rows = 12;
  const std::uint64_t seed = 1234;
  const std::uint32_t servers = 3;

  std::vector<std::unique_ptr<SparseCore>> cores;
  for (std::uint32_t m = 0; m < servers; ++m) {
    SparseCoreSpec spec;
    spec.server_rank = m;
    spec.num_workers = job.num_workers;
    spec.tables = job.tables;
    spec.seed = seed;
    spec.reduce = job.reduce;
    cores.push_back(std::make_unique<SparseCore>(spec));
  }
  std::vector<std::uint64_t> next_seq(job.num_workers, 1);
  for (std::int64_t round = 0; round < job.rounds; ++round) {
    for (std::uint32_t w = 0; w < job.num_workers; ++w) {
      for (const TableSpec& t : job.tables) {
        const SparseBatch full = sample_batch(job, t, seed, w, round);
        for (std::uint32_t m = 0; m < servers; ++m) {
          const SparseBatch shard = shard_of(full, m, servers);
          ASSERT_TRUE(cores[m]->accept_push(w, next_seq[w]));
          cores[m]->ingest(round, shard, w);
          ++next_seq[w];
        }
      }
    }
    for (auto& core : cores) {
      for (const std::uint32_t t : core->drainable()) core->drain_one(t);
    }
  }
  std::uint64_t sum = 0;
  for (const auto& core : cores) sum += core->digest();
  EXPECT_EQ(sum, reference_state_digest(job, seed));
}

TEST(DigestContract, ReferenceDigestIsSeedSensitive) {
  SparseJobSpec job;
  job.tables = parse_tables("emb:dim=4,rows=64");
  job.num_workers = 2;
  job.rounds = 3;
  EXPECT_NE(reference_state_digest(job, 1), reference_state_digest(job, 2));
}

TEST(DigestContract, FoldPullDigestIsOrderSensitive) {
  const SparseBatch a = make_batch(0, 2, {1}, true);
  const SparseBatch b = make_batch(1, 2, {2}, true);
  const std::uint64_t ab = fold_pull_digest(fold_pull_digest(kFnvBasis, a), b);
  const std::uint64_t ba = fold_pull_digest(fold_pull_digest(kFnvBasis, b), a);
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace fluentps::embed
