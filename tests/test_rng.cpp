// Unit tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace fluentps {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(42), b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformU64CoversRange) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_u64(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all residues should appear in 1000 draws";
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(6);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, LognormalMedianNearOne) {
  Rng rng(9);
  std::vector<double> xs(10001);
  for (auto& x : xs) x = rng.lognormal(0.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + 5000, xs.end());
  EXPECT_NEAR(xs[5000], 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(13);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationEmptyAndSingle) {
  Rng rng(14);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto p = rng.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(DeriveSeed, DistinctLabelsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t label = 0; label < 1000; ++label) {
    seeds.insert(derive_seed(99, label));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 2), derive_seed(2, 1));
}

}  // namespace
}  // namespace fluentps
