// Chaos matrix (acceptance test for the fault subsystem): every architecture
// and sync mode must complete training under 10% message loss plus one
// mid-run server crash-restart, with bounded retransmits and the dedup layer
// visibly engaged. Also covers lossy-link-only and partition-heal scenarios,
// and the thread backend under chaos.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/fluentps.h"
#include "embed/table_spec.h"
#include "embed/workload.h"

namespace fluentps {
namespace {

struct ChaosCase {
  const char* name;
  core::Arch arch;
  const char* sync;
  std::int64_t s;
  double prob;
  ps::DprMode mode;
};

core::ExperimentConfig base_config(const ChaosCase& p) {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.arch = p.arch;
  cfg.num_workers = 4;
  cfg.num_servers = 2;
  cfg.max_iters = 40;
  cfg.sync.kind = p.sync;
  cfg.sync.staleness = p.s;
  cfg.sync.prob = p.prob;
  cfg.dpr_mode = p.mode;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 256;
  cfg.data.num_test = 64;
  cfg.batch_size = 8;
  cfg.compute.kind = "lognormal";
  cfg.compute.base_seconds = 0.01;
  cfg.seed = 1234;
  cfg.retry.initial_timeout = 0.02;
  cfg.retry.max_timeout = 0.3;
  return cfg;
}

void check_sane(const core::ExperimentResult& r, const core::ExperimentConfig& cfg) {
  EXPECT_EQ(r.iterations, cfg.max_iters);
  ASSERT_FALSE(r.final_params.empty());
  for (const float v : r.final_params) ASSERT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(r.final_loss));
  EXPECT_GT(r.total_time, 0.0);
}

class ChaosMatrix : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosMatrix, SurvivesLossAndCrashRestart) {
  auto cfg = base_config(GetParam());
  cfg.faults.link.drop_prob = 0.10;
  cfg.faults.checkpoint_every = 0.05;
  cfg.faults.crashes.push_back({/*server_rank=*/0, /*crash=*/0.12, /*restart=*/0.3});

  const auto r = core::run_experiment(cfg);
  check_sane(r, cfg);
  EXPECT_EQ(r.server_crashes, 1);
  EXPECT_EQ(r.server_recoveries, 1);
  EXPECT_GT(r.dropped, 0);
  EXPECT_GT(r.worker_retries, 0) << "lost messages must be retransmitted";
  EXPECT_GT(r.server_dedup_hits, 0) << "retransmits of applied pushes must dedup";
  // Bounded retries: far fewer than one full escalation ladder per request.
  const auto requests = cfg.max_iters * cfg.num_workers * cfg.num_servers;
  EXPECT_LT(r.worker_retries, requests * static_cast<std::int64_t>(cfg.retry.budget));
}

TEST_P(ChaosMatrix, LossyLinksAloneConvergeCleanly) {
  auto cfg = base_config(GetParam());
  cfg.faults.link.drop_prob = 0.10;
  cfg.faults.link.dup_prob = 0.05;
  cfg.faults.link.delay_prob = 0.10;
  cfg.faults.link.delay_seconds = 0.004;

  const auto r = core::run_experiment(cfg);
  check_sane(r, cfg);
  EXPECT_EQ(r.server_crashes, 0);
  EXPECT_GT(r.dropped, 0);
  EXPECT_GT(r.duplicated, 0);
  EXPECT_GT(r.delayed, 0);
  EXPECT_GT(r.worker_retries, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosMatrix,
    ::testing::Values(
        ChaosCase{"fluent_bsp_lazy", core::Arch::kFluentPS, "bsp", 0, 0, ps::DprMode::kLazy},
        ChaosCase{"fluent_ssp_soft", core::Arch::kFluentPS, "ssp", 2, 0,
                  ps::DprMode::kSoftBarrier},
        ChaosCase{"fluent_pssp_lazy", core::Arch::kFluentPS, "pssp", 2, 0.5, ps::DprMode::kLazy},
        ChaosCase{"fluent_pssp_soft", core::Arch::kFluentPS, "pssp", 2, 0.3,
                  ps::DprMode::kSoftBarrier},
        ChaosCase{"pslite_bsp", core::Arch::kPsLite, "bsp", 0, 0, ps::DprMode::kLazy},
        ChaosCase{"pslite_ssp", core::Arch::kPsLite, "ssp", 3, 0, ps::DprMode::kLazy},
        ChaosCase{"ssptable", core::Arch::kSspTable, "ssp", 3, 0, ps::DprMode::kLazy}),
    [](const ::testing::TestParamInfo<ChaosCase>& info) { return info.param.name; });

TEST(Chaos, PartitionHealsAndTrainingResumes) {
  // Workers 0-1 are cut off from the servers for a window; their pulls keep
  // retrying at the backoff ceiling and complete once the partition heals.
  auto cfg = base_config({"", core::Arch::kFluentPS, "ssp", 2, 0, ps::DprMode::kLazy});
  cfg.faults.partitions.push_back({{"w0", "w1"}, 0.1, 0.4});
  const auto r = core::run_experiment(cfg);
  check_sane(r, cfg);
  EXPECT_GT(r.dropped, 0) << "partition drops count as drops";
  EXPECT_GT(r.worker_retries, 0);
}

TEST(Chaos, ForcedReliabilityWithoutFaultsIsOverheadOnly) {
  // The at-least-once protocol on a pristine fabric: no drops, no retries,
  // no dedup hits — only the ack traffic differs from the baseline run.
  // Timeouts must comfortably exceed the longest legitimate DPR wait, or the
  // retry loop (correctly) retransmits pulls that are merely blocked.
  auto cfg = base_config({"", core::Arch::kFluentPS, "ssp", 2, 0, ps::DprMode::kLazy});
  cfg.force_reliability = true;
  cfg.retry.initial_timeout = 5.0;
  cfg.retry.max_timeout = 5.0;
  const auto r = core::run_experiment(cfg);
  check_sane(r, cfg);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_EQ(r.worker_retries, 0);
  EXPECT_EQ(r.server_dedup_hits, 0);
  EXPECT_EQ(r.server_crashes, 0);
}

TEST(Chaos, BatchedApplyChangesNothingUnderFaults) {
  // DESIGN.md §8: flat-combining happens AFTER SeqWindow dedup, so the
  // exactly-once story under duplication, loss and crash-restart must be
  // byte-for-byte the same whether pushes are batched or applied one at a
  // time — including every fault counter and the final parameters.
  auto cfg = base_config({"", core::Arch::kFluentPS, "ssp", 2, 0, ps::DprMode::kLazy});
  cfg.faults.link.drop_prob = 0.10;
  cfg.faults.link.dup_prob = 0.05;
  cfg.faults.checkpoint_every = 0.05;
  cfg.faults.crashes.push_back({/*server_rank=*/0, /*crash=*/0.12, /*restart=*/0.3});

  cfg.batch_pushes = true;
  const auto a = core::run_experiment(cfg);
  cfg.batch_pushes = false;
  const auto b = core::run_experiment(cfg);

  check_sane(a, cfg);
  EXPECT_EQ(a.server_crashes, b.server_crashes);
  EXPECT_EQ(a.server_recoveries, b.server_recoveries);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.worker_retries, b.worker_retries);
  EXPECT_EQ(a.server_dedup_hits, b.server_dedup_hits);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << i;
  }
}

TEST(Chaos, FaultEventsAndCountersAreReported) {
  auto cfg = base_config({"", core::Arch::kFluentPS, "ssp", 2, 0, ps::DprMode::kLazy});
  cfg.faults.link.drop_prob = 0.05;
  cfg.faults.checkpoint_every = 0.05;
  cfg.faults.crashes.push_back({0, 0.12, 0.3});
  const auto r = core::run_experiment(cfg);
  bool saw_crash = false, saw_restart = false, saw_checkpoint = false, saw_recovered = false;
  for (const auto& e : r.fault_events) {
    saw_crash |= e.kind == "crash";
    saw_restart |= e.kind == "restart";
    saw_checkpoint |= e.kind == "checkpoint";
    saw_recovered |= e.kind == "recovered";
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_restart);
  EXPECT_TRUE(saw_checkpoint);
  EXPECT_TRUE(saw_recovered);
  // r.dropped aggregates plan drops and down-endpoint drops, which Metrics
  // tracks under two separate keys.
  std::int64_t dropped_counter = 0, down_counter = 0;
  for (const auto& [k, v] : r.counters) {
    if (k == "fault.dropped") dropped_counter = v;
    if (k == "fault.dropped_down") down_counter = v;
  }
  EXPECT_GT(dropped_counter, 0);
  EXPECT_EQ(dropped_counter + down_counter, r.dropped)
      << "Metrics snapshot mirrors the result fields";
}

TEST(Chaos, ReplicatedChainSurvivesHeadKillMidBatch) {
  // DESIGN.md §9 acceptance: 10% loss + duplication + a head kill with no
  // restart. The successor is promoted, workers rebind, and nothing acked is
  // ever lost — the chain path reports zero rolled-back updates.
  auto cfg = base_config({"", core::Arch::kFluentPS, "ssp", 2, 0, ps::DprMode::kLazy});
  cfg.replication_factor = 2;
  cfg.faults.link.drop_prob = 0.10;
  cfg.faults.link.dup_prob = 0.05;
  cfg.faults.crashes.push_back(
      {/*server_rank=*/0, /*crash=*/0.12, std::numeric_limits<double>::infinity()});
  const auto r = core::run_experiment(cfg);
  check_sane(r, cfg);
  EXPECT_EQ(r.server_crashes, 1);
  EXPECT_EQ(r.failovers, 1);
  EXPECT_EQ(r.server_recoveries, 0) << "chain failover replaces checkpoint restore";
  EXPECT_EQ(r.rolled_back_updates, 0) << "zero lost updates across the head kill";
  EXPECT_GT(r.replicated_updates, 0);
  EXPECT_GT(r.dropped, 0);
  EXPECT_GT(r.server_dedup_hits, 0);
}

TEST(Chaos, ReplicatedHeadKillWithSparseTrafficInFlight) {
  // DESIGN.md §10 acceptance: the head kill from the test above, but with a
  // sparse embedding job sharing the server set. Sparse state is not
  // checkpointed — the chain is its only durability — so the promoted
  // successor must carry every acked sparse push, re-routing in-flight
  // traffic (kPromote rebinds sparse workers too) with zero lost updates:
  // the summed server digest still equals the serial reference oracle.
  auto cfg = base_config({"", core::Arch::kFluentPS, "ssp", 2, 0, ps::DprMode::kLazy});
  cfg.replication_factor = 2;
  cfg.faults.link.drop_prob = 0.10;
  cfg.faults.link.dup_prob = 0.05;
  cfg.faults.crashes.push_back(
      {/*server_rank=*/0, /*crash=*/0.12, std::numeric_limits<double>::infinity()});
  cfg.sparse.tables = embed::parse_tables("emb:dim=8,rows=256,opt=adagrad;ads:dim=4,rows=64");
  cfg.sparse.num_workers = 2;
  cfg.sparse.rounds = 20;
  cfg.sparse.batch_rows = 8;
  cfg.sparse.compute_seconds = 0.005;  // rounds straddle the 0.12 s crash

  const auto r = core::run_experiment(cfg);
  check_sane(r, cfg);
  EXPECT_EQ(r.server_crashes, 1);
  EXPECT_EQ(r.failovers, 1);
  EXPECT_EQ(r.rolled_back_updates, 0);

  const auto extra = [&r](const std::string& k) {
    const auto it = r.extra.find(k);
    return it == r.extra.end() ? 0.0 : it->second;
  };
  const std::uint64_t digest =
      (static_cast<std::uint64_t>(extra("sparse_state_digest_hi")) << 32) |
      static_cast<std::uint64_t>(extra("sparse_state_digest_lo"));
  EXPECT_EQ(digest, embed::reference_state_digest(cfg.sparse, cfg.seed))
      << "head kill lost or double-applied a sparse update";
  EXPECT_GT(extra("sparse_dedup_hits"), 0.0) << "sparse retransmits must dedup";
  EXPECT_GT(extra("sparse_retries"), 0.0);
  EXPECT_GT(extra("sparse_replica_forwards"), 0.0);
  EXPECT_EQ(extra("sparse_parked_pulls"), 0.0) << "every sparse pull must be answered";
}

TEST(Chaos, ThreadBackendSurvivesChaos) {
  // Wall-clock chaos on real threads: lossy links + one crash-restart.
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kThreads;
  cfg.arch = core::Arch::kFluentPS;
  cfg.num_workers = 3;
  cfg.num_servers = 2;
  cfg.max_iters = 30;
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 2;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 256;
  cfg.data.num_test = 64;
  cfg.batch_size = 8;
  cfg.seed = 9;
  cfg.retry.initial_timeout = 0.02;
  cfg.retry.max_timeout = 0.2;
  cfg.faults.link.drop_prob = 0.05;
  cfg.faults.checkpoint_every = 0.05;
  cfg.faults.crashes.push_back({0, 0.15, 0.4});
  const auto r = core::run_experiment(cfg);
  check_sane(r, cfg);
  EXPECT_EQ(r.server_crashes, 1);
  EXPECT_EQ(r.server_recoveries, 1);
}

}  // namespace
}  // namespace fluentps
