// Optimizer and learning-rate schedule tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ml/model.h"
#include "ml/models/softmax_net.h"
#include "ml/optimizer.h"

namespace fluentps::ml {
namespace {

TEST(LrSchedule, ConstantIsConstant) {
  ConstantLr lr(0.3);
  EXPECT_DOUBLE_EQ(lr.lr(0), 0.3);
  EXPECT_DOUBLE_EQ(lr.lr(100000), 0.3);
}

TEST(LrSchedule, StepDecaySteps) {
  StepDecayLr lr(1.0, 100, 0.1);
  EXPECT_DOUBLE_EQ(lr.lr(0), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr(99), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr(100), 0.1);
  EXPECT_NEAR(lr.lr(250), 0.01, 1e-12);
}

TEST(LrSchedule, WarmupRampsLinearly) {
  WarmupLr lr(std::make_unique<ConstantLr>(1.0), 10);
  EXPECT_DOUBLE_EQ(lr.lr(0), 0.1);
  EXPECT_DOUBLE_EQ(lr.lr(4), 0.5);
  EXPECT_DOUBLE_EQ(lr.lr(9), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr(100), 1.0);
}

TEST(LrSchedule, FactoryComposesWarmupAndStep) {
  LrSpec spec;
  spec.kind = "step";
  spec.base = 1.0;
  spec.decay_every = 100;
  spec.decay_factor = 0.5;
  spec.warmup_iters = 4;
  const auto lr = make_lr_schedule(spec);
  EXPECT_DOUBLE_EQ(lr->lr(0), 0.25);
  EXPECT_DOUBLE_EQ(lr->lr(50), 1.0);
  EXPECT_DOUBLE_EQ(lr->lr(150), 0.5);
}

TEST(LrSchedule, FactoryRejectsUnknown) {
  LrSpec spec;
  spec.kind = "cosine";
  EXPECT_DEATH((void)make_lr_schedule(spec), "unknown lr schedule");
}

TEST(Sgd, UpdateIsNegativeLrTimesGrad) {
  SgdOptimizer opt(std::make_unique<ConstantLr>(0.5));
  const std::vector<float> params{1.0f, 1.0f};
  const std::vector<float> grad{2.0f, -4.0f};
  std::vector<float> update(2);
  opt.compute_update(params, grad, 0, update);
  EXPECT_FLOAT_EQ(update[0], -1.0f);
  EXPECT_FLOAT_EQ(update[1], 2.0f);
}

TEST(Momentum, AccumulatesVelocity) {
  MomentumSgd opt(std::make_unique<ConstantLr>(1.0), 0.5);
  const std::vector<float> params{0.0f};
  const std::vector<float> grad{1.0f};
  std::vector<float> update(1);
  opt.compute_update(params, grad, 0, update);
  EXPECT_FLOAT_EQ(update[0], -1.0f);  // v = 1
  opt.compute_update(params, grad, 1, update);
  EXPECT_FLOAT_EQ(update[0], -1.5f);  // v = 0.5 + 1
  opt.compute_update(params, grad, 2, update);
  EXPECT_FLOAT_EQ(update[0], -1.75f);  // v = 0.75 + 1
}

TEST(Lars, ScalesPerLayerByTrustRatio) {
  // Two layers of 2 params each; eta = 0.1.
  LarsOptimizer opt(std::make_unique<ConstantLr>(1.0), {2, 2}, 0.1, 0.0);
  const std::vector<float> params{3.0f, 4.0f, 0.6f, 0.8f};  // norms 5 and 1
  const std::vector<float> grad{1.0f, 0.0f, 0.0f, 2.0f};    // norms 1 and 2
  std::vector<float> update(4);
  opt.compute_update(params, grad, 0, update);
  // Layer 0: trust = 0.1 * 5 / 1 = 0.5 -> update = -0.5 * g.
  EXPECT_NEAR(update[0], -0.5f, 1e-6f);
  EXPECT_NEAR(update[1], 0.0f, 1e-6f);
  // Layer 1: trust = 0.1 * 1 / 2 = 0.05.
  EXPECT_NEAR(update[2], 0.0f, 1e-6f);
  EXPECT_NEAR(update[3], -0.1f, 1e-6f);
}

TEST(Lars, ZeroWeightLayerFallsBackToSgd) {
  LarsOptimizer opt(std::make_unique<ConstantLr>(0.5), {2}, 0.1, 1e-9);
  const std::vector<float> params{0.0f, 0.0f};
  const std::vector<float> grad{1.0f, 1.0f};
  std::vector<float> update(2);
  opt.compute_update(params, grad, 0, update);
  EXPECT_NEAR(update[0], -0.5f, 1e-6f);
}

TEST(Lars, LayerMapMustCoverParams) {
  LarsOptimizer opt(std::make_unique<ConstantLr>(1.0), {2, 1}, 0.1, 0.0);
  const std::vector<float> params{1.0f, 1.0f, 1.0f, 1.0f};  // 4 params, map covers 3
  const std::vector<float> grad{1.0f, 1.0f, 1.0f, 1.0f};
  std::vector<float> update(4);
  EXPECT_DEATH(opt.compute_update(params, grad, 0, update), "layer map");
}

TEST(OptimizerFactory, BuildsEveryKind) {
  SoftmaxNet model(4, 3);
  for (const char* kind : {"sgd", "momentum", "lars"}) {
    OptimizerSpec spec;
    spec.kind = kind;
    const auto opt = make_optimizer(spec, model);
    ASSERT_NE(opt, nullptr) << kind;
    std::vector<float> params(model.num_params(), 1.0f);
    std::vector<float> grad(model.num_params(), 1.0f);
    std::vector<float> update(model.num_params());
    opt->compute_update(params, grad, 0, update);
    EXPECT_LT(update[0], 0.0f) << kind << " must move against the gradient";
  }
}

TEST(OptimizerFactory, RejectsUnknownKind) {
  SoftmaxNet model(4, 3);
  OptimizerSpec spec;
  spec.kind = "adamw";
  EXPECT_DEATH((void)make_optimizer(spec, model), "unknown optimizer");
}

TEST(Sgd, ScheduleAppliedAtEachIteration) {
  SgdOptimizer opt(std::make_unique<StepDecayLr>(1.0, 10, 0.1));
  const std::vector<float> params{0.0f};
  const std::vector<float> grad{1.0f};
  std::vector<float> update(1);
  opt.compute_update(params, grad, 0, update);
  EXPECT_FLOAT_EQ(update[0], -1.0f);
  opt.compute_update(params, grad, 10, update);
  EXPECT_FLOAT_EQ(update[0], -0.1f);
}

}  // namespace
}  // namespace fluentps::ml
