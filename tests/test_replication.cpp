// Chain-replication subsystem tests (DESIGN.md §9): ChainLayout geometry,
// ReplicationLog horizon bookkeeping, a scripted head+replica chain rig
// (deferred worker acks, chain repair on retransmit, out-of-order stash,
// promotion handoff with exactly-once dedup), and end-to-end failover runs on
// both backends — including the acceptance oracle that a head kill mid-run
// loses nothing (bit-identical final parameters vs the fault-free run).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/fluentps.h"
#include "net/transport.h"
#include "ps/server.h"
#include "ps/slicing.h"
#include "replica/replica_group.h"
#include "replica/replica_node.h"
#include "replica/replication_log.h"

namespace fluentps {
namespace {

using replica::ChainLayout;
using replica::ReplicaGroup;
using replica::ReplicationLog;

TEST(ChainLayout, NodeGeometryAppendsReplicasAfterWorkers) {
  const ChainLayout c{/*num_servers=*/2, /*num_workers=*/3, /*factor=*/3};
  EXPECT_TRUE(c.replicated());
  EXPECT_EQ(c.total_nodes(), 1u + 2u + 3u + 2u * 2u);
  // Heads keep the plain server ids; replicas are appended after the workers.
  EXPECT_EQ(c.node_of(0, 0), 1u);
  EXPECT_EQ(c.node_of(1, 0), 2u);
  EXPECT_EQ(c.node_of(0, 1), 6u);
  EXPECT_EQ(c.node_of(0, 2), 7u);
  EXPECT_EQ(c.node_of(1, 1), 8u);
  EXPECT_EQ(c.node_of(1, 2), 9u);
  // Successors walk the chain; the tail has none.
  EXPECT_EQ(c.successor_of(0, 0), 6u);
  EXPECT_EQ(c.successor_of(0, 1), 7u);
  EXPECT_EQ(c.successor_of(0, 2), 0u);
  const ChainLayout flat{2, 3, 1};
  EXPECT_FALSE(flat.replicated());
  EXPECT_EQ(flat.total_nodes(), 6u);
  EXPECT_EQ(flat.successor_of(0, 0), 0u);
}

TEST(ReplicationLog, AppendAssignsDenseLsnsAndTrimsCumulatively) {
  ReplicationLog log;
  const std::vector<float> g{1.0f, 2.0f};
  EXPECT_EQ(log.append(0, 1, 0, g).lsn, 1u);
  EXPECT_EQ(log.append(1, 1, 0, g).lsn, 2u);
  EXPECT_EQ(log.append(0, 2, 1, g).lsn, 3u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.high_water(), 3u);
  ASSERT_NE(log.find(1, 1), nullptr);
  EXPECT_EQ(log.find(1, 1)->lsn, 2u);
  EXPECT_EQ(log.find(1, 9), nullptr);
  ASSERT_NE(log.find_lsn(3), nullptr);
  std::vector<std::uint64_t> trimmed;
  log.trim_to(2, [&trimmed](const replica::LogEntry& e) { trimmed.push_back(e.lsn); });
  EXPECT_EQ(trimmed, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.horizon(), 2u);
  EXPECT_EQ(log.high_water(), 3u) << "high water survives trims";
  log.trim_to(1, [](const replica::LogEntry&) { FAIL() << "horizon is cumulative"; });
  EXPECT_EQ(log.horizon(), 2u);
  EXPECT_EQ(log.next_lsn(), 4u);
}

TEST(ReplicationLog, InsertKeepsUpstreamNumbering) {
  ReplicationLog log;
  log.set_next_lsn(5);
  replica::LogEntry e;
  e.lsn = 5;
  e.worker_rank = 2;
  e.seq = 7;
  log.insert(std::move(e));
  EXPECT_EQ(log.next_lsn(), 6u);
  ASSERT_NE(log.find(2, 7), nullptr);
}

TEST(ReplicaGroup, PromoteAdvancesHeadUntilExhausted) {
  ReplicaGroup g{ChainLayout{1, 2, 3}};
  EXPECT_EQ(g.head_pos(0), 0u);
  EXPECT_EQ(g.head_node(0), 1u);
  EXPECT_FALSE(g.exhausted(0));
  EXPECT_EQ(g.promote(0), 1u);
  EXPECT_EQ(g.head_node(0), g.layout().node_of(0, 1));
  EXPECT_FALSE(g.exhausted(0));
  EXPECT_EQ(g.promote(0), 2u);
  EXPECT_TRUE(g.exhausted(0)) << "no successor remains after the tail";
}

// ---------------------------------------------------------------------------
// Scripted chain rig: a reliable head Server plus 1-2 ReplicaNodes wired over
// a routing transport the test pumps message by message.
// ---------------------------------------------------------------------------

constexpr std::size_t kParams = 8;
constexpr net::NodeId kHead = 1;
constexpr net::NodeId kMid = 10;
constexpr net::NodeId kTail = 11;
constexpr net::NodeId kWorkerNode = 100;

struct RouterTransport final : net::Transport {
  std::unordered_map<net::NodeId, Handler> handlers;
  std::deque<net::Message> queue;
  std::vector<net::Message> worker_inbox;  ///< messages to unregistered nodes

  void register_node(net::NodeId n, Handler h) override { handlers[n] = std::move(h); }
  void send(net::Message msg) override {
    msg.values.ensure_owned();
    queue.push_back(std::move(msg));
  }

  /// Deliver the oldest queued message; unregistered destinations (the
  /// scripted worker) land in worker_inbox.
  bool step() {
    if (queue.empty()) return false;
    net::Message m = std::move(queue.front());
    queue.pop_front();
    const auto it = handlers.find(m.dst);
    if (it != handlers.end()) {
      it->second(std::move(m));
    } else {
      worker_inbox.push_back(std::move(m));
    }
    return true;
  }
  void pump() {
    while (step()) {
    }
  }

  /// Remove and discard the first queued message of the given type
  /// (scripting a lossy link for exactly that frame).
  bool drop_first(net::MsgType t) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->type == t) {
        queue.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t acks() const {
    return static_cast<std::size_t>(
        std::count_if(worker_inbox.begin(), worker_inbox.end(),
                      [](const net::Message& m) { return m.type == net::MsgType::kPushAck; }));
  }
};

struct ChainRig {
  RouterTransport net;
  std::unique_ptr<ps::Server> head;
  std::unique_ptr<replica::ReplicaNode> mid;   // factor 3 only
  std::unique_ptr<replica::ReplicaNode> tail;
  ps::Sharding sharding;

  explicit ChainRig(std::uint32_t factor) {
    ps::EpsSlicer slicer(kParams);
    sharding = slicer.shard({kParams}, 1);
    head = std::make_unique<ps::Server>(make_head_spec(factor == 2 ? kTail : kMid), net);
    net.register_node(kHead, [this](net::Message&& m) { head->handle(std::move(m)); });
    if (factor == 3) {
      mid = make_replica(1, kMid, kTail);
      net.register_node(kMid, [this](net::Message&& m) { mid->handle(std::move(m)); });
      tail = make_replica(2, kTail, 0);
    } else {
      tail = make_replica(1, kTail, 0);
    }
    net.register_node(kTail, [this](net::Message&& m) { tail->handle(std::move(m)); });
  }

  [[nodiscard]] ps::ServerSpec make_head_spec(net::NodeId successor) const {
    ps::ServerSpec spec;
    spec.node_id = kHead;
    spec.server_rank = 0;
    spec.num_workers = 1;
    spec.layout = sharding.shards[0];
    spec.initial_shard.assign(kParams, 0.0f);
    spec.engine.num_workers = 1;
    spec.engine.model = ps::make_sync_model({.kind = "asp"}, 1);
    spec.engine.seed = 5;
    spec.reliable = true;
    spec.worker_nodes = {kWorkerNode};
    spec.replica_successor = successor;
    return spec;
  }

  [[nodiscard]] std::unique_ptr<replica::ReplicaNode> make_replica(std::uint32_t pos,
                                                                   net::NodeId node,
                                                                   net::NodeId successor) {
    replica::ReplicaSpec spec;
    spec.node_id = node;
    spec.server_rank = 0;
    spec.chain_pos = pos;
    spec.num_workers = 1;
    spec.initial_shard.assign(kParams, 0.0f);
    spec.successor = successor;
    spec.apply_scale = 1.0f;  // N = 1
    return std::make_unique<replica::ReplicaNode>(std::move(spec), net);
  }

  void push(std::uint64_t seq, float value) {
    net::Message m;
    m.type = net::MsgType::kPush;
    m.src = kWorkerNode;
    m.dst = kHead;
    m.worker_rank = 0;
    m.request_id = 1000 + seq;
    m.seq = seq;
    m.progress = static_cast<std::int64_t>(seq) - 1;
    m.values.assign(kParams, value);
    head->handle(std::move(m));
  }

  [[nodiscard]] std::vector<float> head_snapshot() const {
    std::vector<float> flat(kParams, 0.0f);
    head->snapshot_into(flat);
    return flat;
  }
};

TEST(Chain, TailAckReleasesDeferredWorkerAck) {
  ChainRig rig(2);
  rig.push(1, 1.0f);
  // The head applied and forwarded, but the worker ack is withheld until the
  // tail's cumulative ack covers the entry.
  EXPECT_EQ(rig.head->replication_pending(), 1u);
  EXPECT_EQ(rig.net.acks(), 0u);
  ASSERT_TRUE(rig.net.step());  // kReplicate -> tail
  EXPECT_EQ(rig.tail->applied(), 1);
  ASSERT_TRUE(rig.net.step());  // kReplicateAck -> head
  rig.net.pump();
  EXPECT_EQ(rig.net.acks(), 1u);
  EXPECT_EQ(rig.head->replication_pending(), 0u);
  EXPECT_EQ(rig.head->replica_forwards(), 1);
  EXPECT_EQ(rig.head_snapshot(), rig.tail->snapshot()) << "replica mirrors the head bitwise";
}

TEST(Chain, ThreeNodeChainPropagatesInOrderAndTrims) {
  ChainRig rig(3);
  rig.push(1, 1.0f);
  rig.push(2, 0.5f);
  rig.push(3, 0.25f);
  rig.net.pump();
  EXPECT_EQ(rig.net.acks(), 3u);
  EXPECT_EQ(rig.mid->applied(), 3);
  EXPECT_EQ(rig.mid->forwarded(), 3);
  EXPECT_EQ(rig.tail->applied(), 3);
  EXPECT_EQ(rig.head->replication_pending(), 0u);
  EXPECT_GE(rig.head->replication_high_water(), 1u);
  const auto expect = std::vector<float>(kParams, 1.75f);
  EXPECT_EQ(rig.head_snapshot(), expect);
  EXPECT_EQ(rig.mid->snapshot(), expect);
  EXPECT_EQ(rig.tail->snapshot(), expect);
}

TEST(Chain, RetransmitOfPendingEntryRepairsTheChain) {
  ChainRig rig(2);
  rig.push(1, 1.0f);
  ASSERT_TRUE(rig.net.drop_first(net::MsgType::kReplicate)) << "script: lose the forward";
  rig.net.pump();
  EXPECT_EQ(rig.net.acks(), 0u) << "entry stranded mid-chain: ack stays deferred";
  // The worker's retry ladder re-offers the push; the head re-forwards the
  // still-pending entry instead of acking an unreplicated update.
  rig.push(1, 1.0f);
  EXPECT_EQ(rig.head->repl_repairs(), 1);
  rig.net.pump();
  EXPECT_EQ(rig.net.acks(), 1u) << "exactly one ack despite the duplicate";
  EXPECT_EQ(rig.tail->applied(), 1);
  EXPECT_EQ(rig.head_snapshot(), std::vector<float>(kParams, 1.0f)) << "applied exactly once";
  EXPECT_EQ(rig.head_snapshot(), rig.tail->snapshot());

  // Retransmit after the horizon advanced: plain dedup, immediate re-ack,
  // nothing new on the chain.
  rig.push(1, 1.0f);
  EXPECT_EQ(rig.net.queue.size(), 1u);
  rig.net.pump();
  EXPECT_EQ(rig.net.acks(), 2u);
  EXPECT_EQ(rig.tail->applied(), 1);
  EXPECT_GE(rig.head->dedup_hits(), 1);
}

TEST(Chain, OutOfOrderReplicatesStashUntilContiguous) {
  ChainRig rig(2);
  rig.push(1, 1.0f);
  rig.push(2, 0.5f);
  ASSERT_EQ(rig.net.queue.size(), 2u);
  std::swap(rig.net.queue[0], rig.net.queue[1]);  // script a reordering fabric
  ASSERT_TRUE(rig.net.step());                    // lsn 2 arrives first
  EXPECT_EQ(rig.tail->applied(), 0);
  EXPECT_EQ(rig.tail->stashed(), 1u);
  rig.net.pump();  // lsn 1 arrives; the stash drains in order
  EXPECT_EQ(rig.tail->applied(), 2);
  EXPECT_EQ(rig.tail->stashed(), 0u);
  EXPECT_EQ(rig.net.acks(), 2u);
  EXPECT_EQ(rig.head_snapshot(), rig.tail->snapshot());
}

TEST(Chain, PromoteAdoptsStateAndDedupsRetransmits) {
  ChainRig rig(2);
  // seq 1 fully replicated and acked.
  rig.push(1, 1.0f);
  rig.net.pump();
  // seq 2 reaches the tail but the tail's ack is lost: worker unacked.
  rig.push(2, 0.5f);
  ASSERT_TRUE(rig.net.step());
  ASSERT_TRUE(rig.net.drop_first(net::MsgType::kReplicateAck));
  // seq 3 never leaves the head: the forward is lost, then the head crashes.
  rig.push(3, 0.25f);
  ASSERT_TRUE(rig.net.drop_first(net::MsgType::kReplicate));
  EXPECT_EQ(rig.net.acks(), 1u);

  // Failover: promote the tail in place.
  ps::ServerSpec spec = rig.make_head_spec(/*successor=*/0);
  spec.node_id = kTail;
  ps::Server promoted(std::move(spec), rig.net);
  promoted.adopt_replica_state(rig.tail->release_state());
  promoted.replay_replication_log();  // tail: nothing pending, no successor
  EXPECT_TRUE(promoted.promoted());
  rig.net.register_node(kTail, [&promoted](net::Message&& m) { promoted.handle(std::move(m)); });

  // The worker retransmits everything unacked to the new head. seq 2 was
  // already replicated -> dedup hit, re-ack, no double apply; seq 3 was lost
  // with the crashed head -> fresh apply.
  auto retransmit = [&rig](std::uint64_t seq, float value) {
    net::Message m;
    m.type = net::MsgType::kPush;
    m.src = kWorkerNode;
    m.dst = kTail;
    m.worker_rank = 0;
    m.request_id = 1000 + seq;
    m.seq = seq;
    m.progress = static_cast<std::int64_t>(seq) - 1;
    m.values.assign(kParams, value);
    rig.net.queue.push_back(std::move(m));
  };
  retransmit(2, 0.5f);
  retransmit(3, 0.25f);
  rig.net.pump();
  EXPECT_EQ(rig.net.acks(), 3u);
  EXPECT_GE(promoted.dedup_hits(), 1) << "mirrored windows dedup across the failover";
  EXPECT_EQ(promoted.synth_replayed(), 0) << "nothing was rolled back";
  std::vector<float> flat(kParams, 0.0f);
  promoted.snapshot_into(flat);
  EXPECT_EQ(flat, std::vector<float>(kParams, 1.75f)) << "each update applied exactly once";

  // Late kReplicate from the dead predecessor is dropped, not applied.
  net::Message stale;
  stale.type = net::MsgType::kReplicate;
  stale.src = kHead;
  stale.dst = kTail;
  stale.request_id = 2;
  stale.seq = 2;
  stale.worker_rank = 0;
  stale.values.assign(kParams, 9.0f);
  promoted.handle(std::move(stale));
  EXPECT_EQ(promoted.stale_replicates(), 1);
  std::vector<float> after(kParams, 0.0f);
  promoted.snapshot_into(after);
  EXPECT_EQ(after, flat);
}

TEST(Chain, PromotedMiddleReplaysItsLogDownstream) {
  ChainRig rig(3);
  // The entry reaches the middle (which logs + forwards) but the forward to
  // the tail is lost; then the head dies.
  rig.push(1, 1.0f);
  ASSERT_TRUE(rig.net.step());  // kReplicate head -> mid
  ASSERT_TRUE(rig.net.drop_first(net::MsgType::kReplicate));
  EXPECT_EQ(rig.mid->applied(), 1);
  EXPECT_EQ(rig.tail->applied(), 0);

  ps::ServerSpec spec = rig.make_head_spec(/*successor=*/kTail);
  spec.node_id = kMid;
  ps::Server promoted(std::move(spec), rig.net);
  promoted.adopt_replica_state(rig.mid->release_state());
  rig.net.register_node(kMid, [&promoted](net::Message&& m) { promoted.handle(std::move(m)); });
  EXPECT_EQ(promoted.replication_pending(), 1u) << "adopted the stranded entry";
  promoted.replay_replication_log();
  rig.net.pump();
  EXPECT_EQ(rig.tail->applied(), 1);
  EXPECT_EQ(promoted.replication_pending(), 0u) << "tail ack trimmed the replayed entry";
  std::vector<float> flat(kParams, 0.0f);
  promoted.snapshot_into(flat);
  EXPECT_EQ(flat, rig.tail->snapshot());
  // The worker's retransmit (its ack died with the old head) dedups.
  net::Message m;
  m.type = net::MsgType::kPush;
  m.src = kWorkerNode;
  m.dst = kMid;
  m.worker_rank = 0;
  m.request_id = 1001;
  m.seq = 1;
  m.progress = 0;
  m.values.assign(kParams, 1.0f);
  promoted.handle(std::move(m));
  rig.net.pump();
  EXPECT_GE(rig.net.acks(), 1u);
  EXPECT_EQ(rig.tail->applied(), 1) << "dedup: no second apply anywhere on the chain";
}

// ---------------------------------------------------------------------------
// End-to-end failover through the runtimes.
// ---------------------------------------------------------------------------

core::ExperimentConfig replicated_config(std::uint32_t r) {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.arch = core::Arch::kFluentPS;
  cfg.num_workers = 1;  // single worker: total apply order is fixed, so final
                        // parameters are bit-comparable across runs
  cfg.num_servers = 1;
  cfg.max_iters = 40;
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 2;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 128;
  cfg.data.num_test = 32;
  cfg.batch_size = 8;
  cfg.compute.kind = "lognormal";
  cfg.compute.base_seconds = 0.01;
  cfg.seed = 77;
  cfg.retry.initial_timeout = 0.02;
  cfg.retry.max_timeout = 0.3;
  cfg.replication_factor = r;
  return cfg;
}

void expect_bit_identical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << "param " << i;
  }
}

TEST(ReplicationE2E, SteadyStateMatchesUnreplicatedBitwise) {
  // r=2 on a pristine fabric: the chain defers acks but applies the same
  // updates in the same order, so the learned parameters are bit-identical
  // to plain reliable mode.
  auto cfg1 = replicated_config(1);
  cfg1.force_reliability = true;
  const auto base = core::run_experiment(cfg1);
  auto cfg2 = replicated_config(2);
  const auto repl = core::run_experiment(cfg2);
  expect_bit_identical(base, repl);
  EXPECT_EQ(base.replicated_updates, 0);
  EXPECT_GT(repl.replicated_updates, 0);
  EXPECT_EQ(repl.failovers, 0);
  EXPECT_EQ(repl.rolled_back_updates, 0);
  // Ack-horizon bound: one outstanding push round per worker.
  const auto it = repl.extra.find("replication_log_high_water");
  ASSERT_NE(it, repl.extra.end());
  EXPECT_GT(it->second, 0.0);
  EXPECT_LE(it->second, static_cast<double>(cfg2.num_workers));
}

TEST(ReplicationE2E, HeadKillFailoverLosesNothing) {
  // Acceptance oracle: kill the chain head mid-run; after promotion the run
  // must finish with final parameters bit-identical to the fault-free
  // replicated run — zero lost updates.
  auto cfg = replicated_config(2);
  const auto clean = core::run_experiment(cfg);
  cfg.faults.crashes.push_back(
      {/*server_rank=*/0, /*crash=*/0.12, std::numeric_limits<double>::infinity()});
  const auto crashed = core::run_experiment(cfg);
  expect_bit_identical(clean, crashed);
  EXPECT_EQ(crashed.server_crashes, 1);
  EXPECT_EQ(crashed.failovers, 1);
  EXPECT_EQ(crashed.rolled_back_updates, 0);
  EXPECT_EQ(crashed.server_recoveries, 0) << "no checkpoint restore on the chain path";
  EXPECT_GT(crashed.failover_seconds, 0.0);
  bool saw_promoted = false;
  for (const auto& e : crashed.fault_events) saw_promoted |= e.kind == "promoted";
  EXPECT_TRUE(saw_promoted);
}

TEST(ReplicationE2E, FailoverRunsAreDeterministic) {
  auto cfg = replicated_config(2);
  cfg.faults.crashes.push_back({0, 0.12, std::numeric_limits<double>::infinity()});
  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  expect_bit_identical(a, b);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.failover_seconds, b.failover_seconds);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
}

TEST(ReplicationE2E, CheckpointRollbackLosesUpdatesChainFailoverDoesNot) {
  // The ablation claim as a test: a checkpoint restore rolls back every
  // update applied since the last interval (recovery re-synthesizes their
  // counts), while chain failover promotes a replica that already holds them.
  auto ckpt = replicated_config(1);
  ckpt.num_workers = 4;
  ckpt.faults.checkpoint_every = 0.05;
  ckpt.faults.crashes.push_back({0, 0.17, 0.3});
  const auto a = core::run_experiment(ckpt);
  EXPECT_EQ(a.server_recoveries, 1);
  EXPECT_GT(a.rolled_back_updates, 0) << "checkpoint path rolls back the tail interval";

  auto chain = replicated_config(2);
  chain.num_workers = 4;
  chain.faults.crashes.push_back({0, 0.17, std::numeric_limits<double>::infinity()});
  const auto b = core::run_experiment(chain);
  EXPECT_EQ(b.failovers, 1);
  EXPECT_EQ(b.rolled_back_updates, 0) << "chain failover loses nothing";
}

TEST(ReplicationE2E, RepeatedHeadKillsWalkTheChain) {
  // r=3 survives two crashes of the same shard: the second kill hits the
  // node promoted by the first.
  auto cfg = replicated_config(3);
  cfg.faults.crashes.push_back({0, 0.10, std::numeric_limits<double>::infinity()});
  cfg.faults.crashes.push_back({0, 0.25, std::numeric_limits<double>::infinity()});
  const auto clean = core::run_experiment(replicated_config(3));
  const auto r = core::run_experiment(cfg);
  expect_bit_identical(clean, r);
  EXPECT_EQ(r.server_crashes, 2);
  EXPECT_EQ(r.failovers, 2);
  EXPECT_EQ(r.rolled_back_updates, 0);
}

TEST(ReplicationE2E, ThreadBackendFailsOverUnderChaos) {
  // Wall-clock failover on real threads: lossy links + a head kill with no
  // restart; the promoted replica must carry the run to completion.
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kThreads;
  cfg.arch = core::Arch::kFluentPS;
  cfg.num_workers = 3;
  cfg.num_servers = 2;
  cfg.max_iters = 30;
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 2;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 256;
  cfg.data.num_test = 64;
  cfg.batch_size = 8;
  cfg.seed = 9;
  cfg.retry.initial_timeout = 0.02;
  cfg.retry.max_timeout = 0.2;
  cfg.replication_factor = 2;
  cfg.faults.link.drop_prob = 0.05;
  cfg.faults.crashes.push_back({0, 0.15, std::numeric_limits<double>::infinity()});
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  ASSERT_FALSE(r.final_params.empty());
  for (const float v : r.final_params) ASSERT_TRUE(std::isfinite(v));
  EXPECT_EQ(r.server_crashes, 1);
  EXPECT_EQ(r.failovers, 1);
  EXPECT_EQ(r.rolled_back_updates, 0);
  EXPECT_EQ(r.server_recoveries, 0);
  EXPECT_GT(r.replicated_updates, 0);
}

}  // namespace
}  // namespace fluentps
