// Fault subsystem unit tests: FaultSpec parsing (Config DSL), node token
// resolution, partition windows, per-message verdicts and their determinism,
// and the RetryPolicy backoff ladder.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/config.h"
#include "common/rng.h"
#include "fault/fault_plan.h"
#include "fault/retry_policy.h"

namespace fluentps::fault {
namespace {

// Layout under test: scheduler=0, servers 1..2 (M=2), workers 3..6 (N=4).
constexpr std::uint32_t kServers = 2;
constexpr std::uint32_t kWorkers = 4;

TEST(FaultSpec, DefaultIsInert) {
  FaultSpec spec;
  EXPECT_FALSE(spec.any());
  FaultPlan plan(spec, kServers, kWorkers);
  EXPECT_FALSE(plan.active());
  Rng rng(1);
  const auto v = plan.decide(3, 1, 0.0, rng);
  EXPECT_FALSE(v.drop);
  EXPECT_FALSE(v.duplicate);
  EXPECT_DOUBLE_EQ(v.extra_delay, 0.0);
}

TEST(FaultSpec, FromConfigParsesLinkFaults) {
  Config cfg;
  cfg.set("fault.drop", "0.1");
  cfg.set("fault.dup", "0.05");
  cfg.set("fault.delay_prob", "0.2");
  cfg.set("fault.delay_seconds", "0.01");
  cfg.set("fault.reorder", "0.3");
  cfg.set("fault.reorder_max", "0.02");
  cfg.set("fault.seed", "99");
  cfg.set("fault.checkpoint_every", "0.5");
  const auto spec = FaultSpec::from_config(cfg);
  EXPECT_DOUBLE_EQ(spec.link.drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(spec.link.dup_prob, 0.05);
  EXPECT_DOUBLE_EQ(spec.link.delay_prob, 0.2);
  EXPECT_DOUBLE_EQ(spec.link.delay_seconds, 0.01);
  EXPECT_DOUBLE_EQ(spec.link.reorder_prob, 0.3);
  EXPECT_DOUBLE_EQ(spec.link.reorder_max_seconds, 0.02);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_DOUBLE_EQ(spec.checkpoint_every, 0.5);
  EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, FromConfigParsesSchedules) {
  Config cfg;
  cfg.set("fault.partition", "w0,w1@0.5:1.5;s0@2:3");
  cfg.set("fault.crash", "s0@1.0:2.0;s1@4.0:inf");
  const auto spec = FaultSpec::from_config(cfg);
  ASSERT_EQ(spec.partitions.size(), 2u);
  EXPECT_EQ(spec.partitions[0].members, (std::vector<std::string>{"w0", "w1"}));
  EXPECT_DOUBLE_EQ(spec.partitions[0].start, 0.5);
  EXPECT_DOUBLE_EQ(spec.partitions[0].end, 1.5);
  EXPECT_EQ(spec.partitions[1].members, (std::vector<std::string>{"s0"}));
  ASSERT_EQ(spec.crashes.size(), 2u);
  EXPECT_EQ(spec.crashes[0].server_rank, 0u);
  EXPECT_DOUBLE_EQ(spec.crashes[0].crash_time, 1.0);
  EXPECT_DOUBLE_EQ(spec.crashes[0].restart_time, 2.0);
  EXPECT_EQ(spec.crashes[1].server_rank, 1u);
  EXPECT_TRUE(std::isinf(spec.crashes[1].restart_time));
}

TEST(FaultPlan, ResolvesNodeTokens) {
  EXPECT_EQ(FaultPlan::resolve("sched", kServers, kWorkers), 0u);
  EXPECT_EQ(FaultPlan::resolve("s0", kServers, kWorkers), 1u);
  EXPECT_EQ(FaultPlan::resolve("s1", kServers, kWorkers), 2u);
  EXPECT_EQ(FaultPlan::resolve("w0", kServers, kWorkers), 3u);
  EXPECT_EQ(FaultPlan::resolve("w3", kServers, kWorkers), 6u);
}

TEST(FaultPlanDeath, RejectsOutOfRangeTokens) {
  EXPECT_DEATH((void)FaultPlan::resolve("s2", kServers, kWorkers), "");
  EXPECT_DEATH((void)FaultPlan::resolve("w4", kServers, kWorkers), "");
  EXPECT_DEATH((void)FaultPlan::resolve("bogus", kServers, kWorkers), "");
}

TEST(FaultPlan, PartitionCutsCrossTrafficDuringWindow) {
  FaultSpec spec;
  spec.partitions.push_back(PartitionSpec{{"w0", "w1"}, 1.0, 2.0});
  FaultPlan plan(spec, kServers, kWorkers);
  const net::NodeId w0 = 3, w1 = 4, s0 = 1;
  // Before and after the window: connected.
  EXPECT_FALSE(plan.partitioned(w0, s0, 0.5));
  EXPECT_FALSE(plan.partitioned(w0, s0, 2.0));  // end-exclusive
  // Inside: traffic crossing the cut is severed, same-side traffic flows.
  EXPECT_TRUE(plan.partitioned(w0, s0, 1.5));
  EXPECT_TRUE(plan.partitioned(s0, w0, 1.5));  // symmetric
  EXPECT_FALSE(plan.partitioned(w0, w1, 1.5)); // both members
  EXPECT_FALSE(plan.partitioned(s0, 0, 1.5));  // both non-members
  // Partitioned traffic is dropped without consuming randomness.
  Rng a(7), b(7);
  const auto v = plan.decide(w0, s0, 1.5, a);
  EXPECT_TRUE(v.drop);
  EXPECT_EQ(a.next_u64(), b.next_u64()) << "partition drop must be rng-free";
}

TEST(FaultPlan, VerdictsAreDeterministicPerSeed) {
  FaultSpec spec;
  spec.link.drop_prob = 0.2;
  spec.link.dup_prob = 0.2;
  spec.link.reorder_prob = 0.3;
  spec.link.reorder_max_seconds = 0.05;
  FaultPlan plan(spec, kServers, kWorkers);
  Rng a(42), b(42);
  for (int i = 0; i < 500; ++i) {
    const auto va = plan.decide(3, 1, 0.0, a);
    const auto vb = plan.decide(3, 1, 0.0, b);
    EXPECT_EQ(va.drop, vb.drop);
    EXPECT_EQ(va.duplicate, vb.duplicate);
    EXPECT_DOUBLE_EQ(va.extra_delay, vb.extra_delay);
    if (va.drop) {
      // A dropped message cannot also be duplicated or delayed.
      EXPECT_FALSE(va.duplicate);
      EXPECT_DOUBLE_EQ(va.extra_delay, 0.0);
    }
  }
}

TEST(FaultPlan, DropRateApproximatesProbability) {
  FaultSpec spec;
  spec.link.drop_prob = 0.25;
  FaultPlan plan(spec, kServers, kWorkers);
  Rng rng(3);
  int drops = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (plan.decide(3, 1, 0.0, rng).drop) ++drops;
  }
  const double rate = static_cast<double>(drops) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(RetryPolicy, BackoffLadderIsBoundedAndJittered) {
  RetryPolicy p;
  p.initial_timeout = 0.1;
  p.max_timeout = 0.8;
  p.backoff = 2.0;
  p.jitter = 0.1;
  Rng rng(11);
  double prev = 0.0;
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    const double t = p.timeout_for(attempt, rng);
    const double nominal = std::min(0.1 * std::pow(2.0, attempt), 0.8);
    EXPECT_GE(t, nominal * 0.9 - 1e-12);
    EXPECT_LE(t, nominal * 1.1 + 1e-12);
    if (attempt >= 4) {
      EXPECT_LE(t, 0.8 * 1.1 + 1e-12) << "capped at max_timeout";
    }
    prev = t;
  }
  (void)prev;
  EXPECT_FALSE(p.exhausted(p.budget - 1));
  EXPECT_TRUE(p.exhausted(p.budget));
}

TEST(RetryPolicy, FromConfigReadsPrefixedKeys) {
  Config cfg;
  cfg.set("retry.initial_timeout", "0.02");
  cfg.set("retry.max_timeout", "0.4");
  cfg.set("retry.backoff", "3.0");
  cfg.set("retry.jitter", "0.05");
  cfg.set("retry.budget", "7");
  const auto p = RetryPolicy::from_config(cfg);
  EXPECT_DOUBLE_EQ(p.initial_timeout, 0.02);
  EXPECT_DOUBLE_EQ(p.max_timeout, 0.4);
  EXPECT_DOUBLE_EQ(p.backoff, 3.0);
  EXPECT_DOUBLE_EQ(p.jitter, 0.05);
  EXPECT_EQ(p.budget, 7u);
}

}  // namespace
}  // namespace fluentps::fault
