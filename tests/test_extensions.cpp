// Tests for the extension features: parameter carry-over + multi-stage
// elastic training, runtime sync-model switching, and the Gaia-style
// significance filter.
#include <gtest/gtest.h>

#include "core/fluentps.h"
#include "ml/eval.h"

namespace fluentps {
namespace {

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.num_workers = 4;
  cfg.num_servers = 2;
  cfg.max_iters = 100;
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 2;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 2048;
  cfg.data.num_test = 512;
  cfg.opt.kind = "sgd";
  cfg.opt.lr.base = 0.4;
  cfg.batch_size = 32;
  cfg.compute.base_seconds = 0.02;
  cfg.seed = 13;
  return cfg;
}

TEST(InitialParams, CarriedParamsAreUsedVerbatim) {
  auto cfg = small_config();
  const auto first = core::run_experiment(cfg);
  ASSERT_FALSE(first.final_params.empty());

  // A second run starting from the first's parameters must begin at the
  // first's accuracy (evaluate the carried parameters directly).
  const auto data = ml::Dataset::synthesize(cfg.data);
  const auto model = ml::make_model(cfg.model, data.dim(), data.num_classes());
  ml::Workspace ws;
  const double carried_acc = ml::test_accuracy(*model, first.final_params, data, ws);
  EXPECT_DOUBLE_EQ(carried_acc, first.final_accuracy);
}

TEST(InitialParams, WrongSizeAborts) {
  auto cfg = small_config();
  cfg.initial_params.assign(3, 0.0f);
  EXPECT_DEATH((void)core::run_experiment(cfg), "initial_params size");
}

TEST(StageRunner, AccuracyImprovesAcrossStages) {
  auto stage1 = small_config();
  stage1.max_iters = 60;
  auto stage2 = stage1;
  stage2.num_workers = 8;  // scale out
  stage2.num_servers = 3;  // EPS re-places the carried parameters
  stage2.sync.kind = "pssp";
  stage2.sync.prob = 0.5;
  stage2.max_iters = 60;

  auto single = stage1;  // same budget in one stage for comparison
  const auto lone = core::run_experiment(single);

  const auto staged = core::run_stages({stage1, stage2});
  ASSERT_EQ(staged.stages.size(), 2u);
  EXPECT_EQ(staged.total_iterations, 120);
  EXPECT_GT(staged.final_accuracy, lone.final_accuracy - 0.05)
      << "continuing training must not regress materially";
  EXPECT_GT(staged.stages[1].final_accuracy, 0.3);
  EXPECT_NEAR(staged.total_time, staged.stages[0].total_time + staged.stages[1].total_time,
              1e-9);
}

TEST(StageRunner, CurveTimesAreMonotonicAcrossStages) {
  auto s1 = small_config();
  s1.eval_every = 25;
  auto s2 = s1;
  s2.num_workers = 2;
  const auto staged = core::run_stages({s1, s2});
  for (std::size_t i = 1; i < staged.curve.size(); ++i) {
    EXPECT_GE(staged.curve[i].time, staged.curve[i - 1].time) << i;
  }
}

TEST(StageRunner, IncompatibleModelsAbort) {
  auto s1 = small_config();
  auto s2 = small_config();
  s2.model.kind = "mlp";
  EXPECT_DEATH((void)core::run_stages({s1, s2}), "same model");
}

TEST(SyncSchedule, SwitchToAspStopsBuffering) {
  auto cfg = small_config();
  cfg.num_workers = 8;
  cfg.num_servers = 1;
  cfg.max_iters = 200;
  cfg.sync.kind = "bsp";  // heavy blocking
  cfg.compute.kind = "persistent";
  cfg.compute.slowdown = 3.0;
  const auto strict = core::run_experiment(cfg);

  cfg.sync_schedule = {{20, ps::SyncModelSpec{.kind = "asp"}}};
  const auto relaxed = core::run_experiment(cfg);
  EXPECT_LT(relaxed.dpr_total, strict.dpr_total)
      << "after switching to ASP no further pulls may buffer";
  EXPECT_LT(relaxed.total_time, strict.total_time);
  EXPECT_EQ(relaxed.iterations, cfg.max_iters);
}

TEST(SyncSchedule, TightenFromAspToBspCompletes) {
  auto cfg = small_config();
  cfg.sync.kind = "asp";
  cfg.sync_schedule = {{30, ps::SyncModelSpec{.kind = "bsp"}}};
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  EXPECT_GT(r.dpr_total, 0) << "BSP phase must block";
}

TEST(SyncSchedule, MultipleSwitches) {
  auto cfg = small_config();
  cfg.sync.kind = "bsp";
  cfg.sync_schedule = {{25, ps::SyncModelSpec{.kind = "asp"}},
                       {50, ps::SyncModelSpec{.kind = "ssp", .staleness = 2}},
                       {75, ps::SyncModelSpec{.kind = "pssp", .staleness = 2, .prob = 0.5}}};
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  EXPECT_GT(r.final_accuracy, 0.3);
}

TEST(SyncSchedule, WorksOnThreadBackend) {
  auto cfg = small_config();
  cfg.backend = core::Backend::kThreads;
  cfg.sync.kind = "bsp";
  cfg.sync_schedule = {{20, ps::SyncModelSpec{.kind = "asp"}}};
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
}

TEST(SignificanceFilter, DisabledByDefault) {
  const auto r = core::run_experiment(small_config());
  EXPECT_EQ(r.pushes_filtered, 0);
}

TEST(SignificanceFilter, FiltersPushesAndSavesBytes) {
  auto cfg = small_config();
  cfg.max_iters = 150;
  const auto base = core::run_experiment(cfg);
  cfg.push_significance_threshold = 0.08;
  const auto filtered = core::run_experiment(cfg);
  EXPECT_GT(filtered.pushes_filtered, 0);
  EXPECT_LT(filtered.bytes_total, base.bytes_total)
      << "metadata-only pushes must cut traffic";
  EXPECT_GT(filtered.final_accuracy, base.final_accuracy - 0.08)
      << "a mild threshold must not wreck convergence";
}

TEST(SignificanceFilter, HigherThresholdFiltersMore) {
  auto cfg = small_config();
  cfg.push_significance_threshold = 0.005;
  const auto low = core::run_experiment(cfg);
  cfg.push_significance_threshold = 0.05;
  const auto high = core::run_experiment(cfg);
  EXPECT_GT(high.pushes_filtered, low.pushes_filtered);
}

TEST(SignificanceFilter, WorksOnThreadBackend) {
  auto cfg = small_config();
  cfg.backend = core::Backend::kThreads;
  cfg.push_significance_threshold = 0.08;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  EXPECT_GT(r.pushes_filtered, 0);
}

TEST(SignificanceFilter, FinalPendingAlwaysPushed) {
  // Even with an absurd threshold, the last iteration flushes, so the global
  // model is not frozen at w0.
  auto cfg = small_config();
  cfg.push_significance_threshold = 1e9;
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.pushes_filtered, 0);
  double drift = 0.0;
  for (const float v : r.final_params) drift += std::abs(static_cast<double>(v));
  EXPECT_GT(drift, 0.0);
}

}  // namespace
}  // namespace fluentps
