// SimRuntime behaviour tests: determinism, protocol equivalences against
// serial SGD, timing orderings between sync models, and baseline behaviours.
#include <gtest/gtest.h>

#include "core/fluentps.h"
#include "ml/ops.h"

namespace fluentps {
namespace {

core::ExperimentConfig base_config() {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.num_workers = 4;
  cfg.num_servers = 2;
  cfg.max_iters = 80;
  cfg.sync.kind = "bsp";
  cfg.dpr_mode = ps::DprMode::kLazy;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 1024;
  cfg.data.num_test = 256;
  cfg.opt.kind = "sgd";
  cfg.opt.lr.base = 0.3;
  cfg.batch_size = 16;
  cfg.compute.kind = "lognormal";
  cfg.compute.base_seconds = 0.05;
  cfg.compute.sigma = 0.3;
  cfg.seed = 11;
  return cfg;
}

TEST(SimRuntime, SingleWorkerMatchesSerialSgd) {
  // N = 1, M = 1, BSP: the distributed run must be numerically identical to a
  // plain sequential SGD loop over the same batches.
  auto cfg = base_config();
  cfg.num_workers = 1;
  cfg.num_servers = 1;
  cfg.max_iters = 40;
  const auto result = core::run_experiment(cfg);

  // Serial reference.
  const auto data = ml::Dataset::synthesize(cfg.data);
  const auto model = ml::make_model(cfg.model, data.dim(), data.num_classes());
  std::vector<float> w(model->num_params());
  Rng init(cfg.seed, 0x1717);
  model->init_params(w, init);
  auto opt = ml::make_optimizer(cfg.opt, *model);
  ml::BatchSampler sampler(data, 0, 1, cfg.batch_size, cfg.seed);
  ml::Workspace ws;
  std::vector<float> g(w.size()), u(w.size());
  for (std::int64_t i = 0; i < cfg.max_iters; ++i) {
    model->grad(w, sampler.next(), g, ws);
    opt->compute_update(w, g, i, u);
    ml::axpy(1.0f, u, w);
  }
  const double ref_acc = ml::test_accuracy(*model, w, data, ws);
  EXPECT_NEAR(result.final_accuracy, ref_acc, 1e-9)
      << "PS with one worker must equal serial SGD";
}

TEST(SimRuntime, BspWorkersStayInLockstep) {
  auto cfg = base_config();
  const auto result = core::run_experiment(cfg);
  // Under BSP every pull is gated by the full iteration: the staleness gap of
  // served parameters is always 0.
  EXPECT_EQ(result.staleness.overflow(), 0u);
  for (std::size_t gap = 1; gap <= result.staleness.max_value(); ++gap) {
    EXPECT_EQ(result.staleness.bucket(gap), 0u) << gap;
  }
}

TEST(SimRuntime, AspFinishesFasterThanBsp) {
  auto bsp = base_config();
  auto asp = base_config();
  asp.sync.kind = "asp";
  const auto rb = core::run_experiment(bsp);
  const auto ra = core::run_experiment(asp);
  EXPECT_LT(ra.total_time, rb.total_time) << "no waiting under ASP";
  EXPECT_EQ(ra.dpr_total, 0);
  EXPECT_GT(rb.dpr_total, 0);
}

TEST(SimRuntime, SspBetweenBspAndAsp) {
  auto cfg = base_config();
  const auto rb = core::run_experiment(cfg);
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 3;
  const auto rs = core::run_experiment(cfg);
  cfg.sync.kind = "asp";
  const auto ra = core::run_experiment(cfg);
  EXPECT_LE(rs.total_time, rb.total_time * 1.001);
  EXPECT_GE(rs.total_time, ra.total_time * 0.999);
}

TEST(SimRuntime, SspStalenessBounded) {
  auto cfg = base_config();
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 2;
  cfg.dpr_mode = ps::DprMode::kSoftBarrier;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.staleness.overflow(), 0u);
  for (std::size_t gap = 3; gap <= r.staleness.max_value(); ++gap) {
    EXPECT_EQ(r.staleness.bucket(gap), 0u) << gap;
  }
}

TEST(SimRuntime, LazyBuffersFewerDprsThanSoftUnderStragglers) {
  // With a persistent straggler, the soft barrier re-blocks the fast workers
  // repeatedly (paper: "the soft barrier will appear frequently") while lazy
  // execution holds one DPR until full catch-up.
  auto cfg = base_config();
  cfg.num_workers = 8;
  cfg.num_servers = 1;
  cfg.max_iters = 150;
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 2;
  cfg.compute.kind = "persistent";
  cfg.compute.slowdown = 3.0;
  cfg.dpr_mode = ps::DprMode::kSoftBarrier;
  const auto soft = core::run_experiment(cfg);
  cfg.dpr_mode = ps::DprMode::kLazy;
  const auto lazy = core::run_experiment(cfg);
  EXPECT_GT(soft.dpr_total, 0);
  EXPECT_GT(lazy.dpr_total, 0);
  EXPECT_LT(lazy.dpr_total, soft.dpr_total);
}

TEST(SimRuntime, PsLiteBaselineSlowerThanFluentPS) {
  auto cfg = base_config();
  cfg.num_workers = 8;
  cfg.num_servers = 4;
  cfg.model.kind = "mlp";
  cfg.model.hidden = 64;
  const auto fluent = core::run_experiment(cfg);
  cfg.arch = core::Arch::kPsLite;
  const auto pslite = core::run_experiment(cfg);
  EXPECT_GT(pslite.total_time, fluent.total_time)
      << "non-overlap synchronization adds scheduler round trips and phase serialization";
  EXPECT_GT(pslite.extra.at("scheduler_grants"), 0.0);
}

TEST(SimRuntime, PsLiteBaselineStillLearns) {
  auto cfg = base_config();
  cfg.arch = core::Arch::kPsLite;
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.final_accuracy, 0.3);
}

TEST(SimRuntime, SspTableCacheDegradesAtScaleButNotSmall) {
  // Fig 1/7 shape: the frozen-cache baseline matches FluentPS at 2 workers
  // and collapses at 16, under the paper's training regime (momentum SGD on
  // a non-convex model).
  auto small = base_config();
  small.sync.kind = "ssp";
  small.sync.staleness = 3;
  small.num_workers = 2;
  small.num_servers = 1;
  small.max_iters = 300;
  small.model.kind = "mlp";
  small.model.hidden = 32;
  small.data.num_train = 2048;
  small.opt.kind = "momentum";
  small.opt.momentum = 0.9;
  small.opt.lr.base = 0.2;
  auto small_fluent = small;
  small.arch = core::Arch::kSspTable;
  const auto r_small = core::run_experiment(small);
  const auto r_small_f = core::run_experiment(small_fluent);
  // With N=2 the cache refreshes (almost) every iteration.
  EXPECT_NEAR(r_small.final_accuracy, r_small_f.final_accuracy, 0.1);

  auto big = small;
  big.num_workers = 16;
  auto big_fluent = small_fluent;
  big_fluent.num_workers = 16;
  const auto r_big = core::run_experiment(big);
  const auto r_big_f = core::run_experiment(big_fluent);
  EXPECT_LT(r_big.final_accuracy, r_big_f.final_accuracy - 0.1)
      << "stale cache must hurt at 16 workers (Fig 1/7 shape)";
}

TEST(SimRuntime, EvalCurveIsSampled) {
  auto cfg = base_config();
  cfg.eval_every = 20;
  const auto r = core::run_experiment(cfg);
  EXPECT_GE(r.curve.size(), 4u);  // 80/20 points + final
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].time, r.curve[i - 1].time);
    EXPECT_GE(r.curve[i].iter, r.curve[i - 1].iter);
  }
}

TEST(SimRuntime, BytesScaleWithModelAndIterations) {
  auto cfg = base_config();
  const auto small = core::run_experiment(cfg);
  cfg.max_iters *= 2;
  const auto big = core::run_experiment(cfg);
  EXPECT_NEAR(big.bytes_total / small.bytes_total, 2.0, 0.1);
}

TEST(SimRuntime, ComputePlusCommApproximatesTotal) {
  auto cfg = base_config();
  const auto r = core::run_experiment(cfg);
  // Per-worker: total wall = compute + comm (within the last iteration tail).
  EXPECT_LE(r.compute_time + r.comm_time, r.total_time * 1.001);
  EXPECT_GT(r.compute_time, 0.0);
  EXPECT_GT(r.comm_time, 0.0);
}

TEST(SimRuntime, DropStragglersBeatsBspUnderPersistentStraggler) {
  auto cfg = base_config();
  cfg.num_workers = 8;
  cfg.num_servers = 1;
  cfg.compute.kind = "persistent";
  cfg.compute.slowdown = 5.0;
  const auto bsp = core::run_experiment(cfg);
  cfg.sync.kind = "drop";
  cfg.sync.drop_nt = 7;
  const auto drop = core::run_experiment(cfg);
  EXPECT_LT(drop.total_time, bsp.total_time);
}

TEST(SimRuntime, DspsRunsAndLearns) {
  auto cfg = base_config();
  cfg.sync.kind = "dsps";
  cfg.sync.staleness = 2;
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.final_accuracy, 0.3);
}

TEST(SimRuntime, DynamicPsspWithSignificanceRuns) {
  auto cfg = base_config();
  cfg.sync.kind = "pssp_dynamic";
  cfg.sync.staleness = 2;
  cfg.sync.alpha = 0.8;
  cfg.sync.alpha_significance = true;
  const auto r = core::run_experiment(cfg);
  EXPECT_GT(r.final_accuracy, 0.3);
}

TEST(SimRuntime, SeedChangesOutcome) {
  auto cfg = base_config();
  const auto a = core::run_experiment(cfg);
  cfg.seed = 12;
  const auto b = core::run_experiment(cfg);
  EXPECT_NE(a.total_time, b.total_time);
}

TEST(SimRuntime, ImbalanceReportedForDefaultSlicer) {
  auto cfg = base_config();
  cfg.model.kind = "mlp";
  cfg.model.hidden = 64;
  cfg.slicer = "default";
  const auto d = core::run_experiment(cfg);
  cfg.slicer = "eps";
  const auto e = core::run_experiment(cfg);
  EXPECT_GT(d.shard_imbalance, e.shard_imbalance);
}

}  // namespace
}  // namespace fluentps
