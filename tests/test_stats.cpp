// Unit tests for StreamingStats and IntHistogram.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace fluentps {
namespace {

TEST(StreamingStats, EmptyDefaults) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StreamingStats, MergeEqualsCombined) {
  StreamingStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(StreamingStats, Reset) {
  StreamingStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(IntHistogram, CountsBuckets) {
  IntHistogram h(10);
  h.add(0);
  h.add(3);
  h.add(3);
  h.add(10);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(IntHistogram, OverflowBucket) {
  IntHistogram h(4);
  h.add(5);
  h.add(100);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(IntHistogram, NegativeClampsToZero) {
  IntHistogram h(4);
  h.add(-3);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(IntHistogram, MeanIncludesTrueValues) {
  IntHistogram h(4);
  h.add(2);
  h.add(4);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(IntHistogram, Pmf) {
  IntHistogram h(8);
  for (int i = 0; i < 3; ++i) h.add(1);
  h.add(2);
  EXPECT_DOUBLE_EQ(h.pmf(1), 0.75);
  EXPECT_DOUBLE_EQ(h.pmf(2), 0.25);
  EXPECT_DOUBLE_EQ(h.pmf(5), 0.0);
}

TEST(IntHistogram, Quantile) {
  IntHistogram h(16);
  for (int v = 0; v < 10; ++v) h.add(v);  // uniform 0..9
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(0.5), 5);
  EXPECT_EQ(h.quantile(0.95), 9);
}

TEST(IntHistogram, QuantileEmpty) {
  IntHistogram h(4);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(IntHistogram, MergeGrowsBuckets) {
  IntHistogram a(4), b(16);
  a.add(2);
  b.add(12);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.bucket(2), 1u);
  EXPECT_EQ(a.bucket(12), 1u);
  EXPECT_EQ(a.max_value(), 16u);
}

TEST(IntHistogram, ResetClears) {
  IntHistogram h(4);
  h.add(1);
  h.add(99);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(IntHistogram, ToStringListsNonEmpty) {
  IntHistogram h(4);
  h.add(1);
  h.add(1);
  const auto s = h.to_string();
  EXPECT_NE(s.find("1: 2"), std::string::npos);
}

}  // namespace
}  // namespace fluentps
