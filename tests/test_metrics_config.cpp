// Unit tests for Metrics, Config, Table and logging.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "common/config.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/table.h"

namespace fluentps {
namespace {

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  m.incr("a");
  m.incr("a", 4);
  EXPECT_EQ(m.counter("a"), 5);
  EXPECT_EQ(m.counter("missing"), 0);
}

TEST(Metrics, Gauges) {
  Metrics m;
  m.set_gauge("x", 1.5);
  m.set_gauge("x", 2.5);
  EXPECT_DOUBLE_EQ(m.gauge("x"), 2.5);
  EXPECT_DOUBLE_EQ(m.gauge("missing"), 0.0);
}

TEST(Metrics, Distributions) {
  Metrics m;
  m.observe("lat", 1.0);
  m.observe("lat", 3.0);
  const auto d = m.distribution("lat");
  EXPECT_EQ(d.count(), 2u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Metrics, PrefixSum) {
  Metrics m;
  m.incr("server.0.dpr", 3);
  m.incr("server.1.dpr", 4);
  m.incr("worker.0.dpr", 100);
  EXPECT_EQ(m.counter_sum_prefix("server."), 7);
}

TEST(Metrics, SnapshotSorted) {
  Metrics m;
  m.incr("b");
  m.incr("a");
  const auto all = m.counters();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[1].first, "b");
}

TEST(Metrics, ConcurrentIncrements) {
  Metrics m;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&m] {
        for (int i = 0; i < 10000; ++i) m.incr("hot");
      });
    }
  }
  EXPECT_EQ(m.counter("hot"), 40000);
}

TEST(Metrics, Reset) {
  Metrics m;
  m.incr("a");
  m.reset();
  EXPECT_EQ(m.counter("a"), 0);
}

TEST(Config, FromArgsParsesFlags) {
  const char* argv[] = {"prog", "--workers=8", "servers=2", "--name=test", "positional"};
  const auto cfg = Config::from_args(5, argv);
  EXPECT_EQ(cfg.get_int("workers"), 8);
  EXPECT_EQ(cfg.get_int("servers"), 2);
  EXPECT_EQ(cfg.get_string("name"), "test");
  ASSERT_EQ(cfg.positional().size(), 1u);
  EXPECT_EQ(cfg.positional()[0], "positional");
}

TEST(Config, TypedGettersWithFallbacks) {
  Config cfg;
  cfg.set("f", "2.5");
  cfg.set("b", "true");
  cfg.set("i", "-7");
  EXPECT_DOUBLE_EQ(cfg.get_double("f"), 2.5);
  EXPECT_TRUE(cfg.get_bool("b"));
  EXPECT_EQ(cfg.get_int("i"), -7);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 9.5), 9.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_EQ(cfg.get_string("missing", "dft"), "dft");
}

TEST(Config, BoolVariants) {
  Config cfg;
  for (const char* v : {"1", "true", "yes", "on"}) {
    cfg.set("k", v);
    EXPECT_TRUE(cfg.get_bool("k")) << v;
  }
  cfg.set("k", "0");
  EXPECT_FALSE(cfg.get_bool("k"));
}

TEST(Config, FromTextWithComments) {
  const auto cfg = Config::from_text("a=1\n# comment line\n  b = skipped? no: b-has-space\nc=3 # trailing\n\n");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_string("c"), "3");
  EXPECT_TRUE(cfg.has("c"));
}

TEST(Config, OverwriteKeepsLast) {
  const char* argv[] = {"prog", "--k=1", "--k=2"};
  const auto cfg = Config::from_args(3, argv);
  EXPECT_EQ(cfg.get_int("k"), 2);
}

TEST(Table, AsciiRendering) {
  Table t("demo");
  t.add("col1", "col2");
  t.add(1, 2.5);
  const auto s = t.to_ascii();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("2.500"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t;
  t.add_row({"a,b", "plain", "with\"quote"});
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Logging, LevelFilter) {
  std::ostringstream sink;
  log::set_sink(&sink);
  log::set_level(log::Level::kWarn);
  FPS_LOG(Info) << "hidden";
  FPS_LOG(Warn) << "visible";
  log::set_sink(nullptr);
  log::set_level(log::Level::kInfo);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

TEST(Logging, ParseLevel) {
  EXPECT_EQ(log::parse_level("debug"), log::Level::kDebug);
  EXPECT_EQ(log::parse_level("WARN"), log::Level::kWarn);
  EXPECT_EQ(log::parse_level("Error"), log::Level::kError);
  EXPECT_EQ(log::parse_level("off"), log::Level::kOff);
  EXPECT_EQ(log::parse_level("bogus"), log::Level::kInfo);
}

TEST(Logging, CheckPassesSilently) {
  FPS_CHECK(1 + 1 == 2) << "never printed";
}

TEST(Logging, CheckAborts) {
  EXPECT_DEATH({ FPS_CHECK(false) << "boom"; }, "CHECK failed");
}

}  // namespace
}  // namespace fluentps
