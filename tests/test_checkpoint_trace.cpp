// Checkpoint and trace-export tests, including corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/checkpoint.h"
#include "core/trace_export.h"

namespace fluentps::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "fps_ckpt_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, RoundTrip) {
  std::vector<float> params{1.5f, -2.25f, 0.0f, 3.14159f};
  ASSERT_TRUE(save_params(path("a.ckpt"), params));
  std::vector<float> loaded;
  ASSERT_TRUE(load_params(path("a.ckpt"), &loaded));
  EXPECT_EQ(loaded, params);
}

TEST_F(CheckpointTest, EmptyParamsRoundTrip) {
  ASSERT_TRUE(save_params(path("empty.ckpt"), std::vector<float>{}));
  std::vector<float> loaded{1.0f};
  ASSERT_TRUE(load_params(path("empty.ckpt"), &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST_F(CheckpointTest, MissingFileFails) {
  std::vector<float> loaded;
  EXPECT_FALSE(load_params(path("nope.ckpt"), &loaded));
}

TEST_F(CheckpointTest, BadMagicRejected) {
  std::ofstream f(path("bad.ckpt"), std::ios::binary);
  const char junk[64] = {1, 2, 3};
  f.write(junk, sizeof(junk));
  f.close();
  std::vector<float> loaded;
  EXPECT_FALSE(load_params(path("bad.ckpt"), &loaded));
}

TEST_F(CheckpointTest, TruncationDetected) {
  std::vector<float> params(100, 2.0f);
  ASSERT_TRUE(save_params(path("t.ckpt"), params));
  std::filesystem::resize_file(path("t.ckpt"), 64);
  std::vector<float> loaded;
  EXPECT_FALSE(load_params(path("t.ckpt"), &loaded));
}

TEST_F(CheckpointTest, BitFlipDetected) {
  std::vector<float> params(64, 1.0f);
  ASSERT_TRUE(save_params(path("c.ckpt"), params));
  // Flip one payload byte.
  std::fstream f(path("c.ckpt"), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(32);
  const char flip = 0x7F;
  f.write(&flip, 1);
  f.close();
  std::vector<float> loaded;
  EXPECT_FALSE(load_params(path("c.ckpt"), &loaded));
}

TEST_F(CheckpointTest, ChecksumDistinguishesValues) {
  std::vector<float> a{1.0f, 2.0f};
  std::vector<float> b{1.0f, 2.00001f};
  EXPECT_NE(params_checksum(a), params_checksum(b));
  EXPECT_EQ(params_checksum(a), params_checksum(std::vector<float>{1.0f, 2.0f}));
}

TEST(TraceExport, ProducesValidEvents) {
  std::vector<IterationTrace> trace{
      {0, 0, 0.0, 0.5, 0.8},
      {1, 0, 0.0, 0.6, 1.0},
  };
  const auto json = to_chrome_trace_json(trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Two spans (compute + sync) per entry.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"ph\": \"X\"", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 4u);
  EXPECT_NE(json.find("\"name\": \"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sync\""), std::string::npos);
}

TEST(TraceExport, EmptyTraceIsValidJson) {
  const auto json = to_chrome_trace_json({});
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(TraceExport, WriteToFile) {
  const auto p = std::filesystem::temp_directory_path() / "fps_trace.json";
  EXPECT_TRUE(write_chrome_trace(p.string(), {{0, 0, 0.0, 1.0, 2.0}}));
  std::ifstream f(p);
  std::string content((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("compute"), std::string::npos);
  std::filesystem::remove(p);
}

}  // namespace
}  // namespace fluentps::core
