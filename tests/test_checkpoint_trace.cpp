// Checkpoint and trace-export tests, including corruption handling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/checkpoint.h"
#include "core/trace_export.h"

namespace fluentps::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "fps_ckpt_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, RoundTrip) {
  std::vector<float> params{1.5f, -2.25f, 0.0f, 3.14159f};
  ASSERT_TRUE(save_params(path("a.ckpt"), params));
  std::vector<float> loaded;
  ASSERT_TRUE(load_params(path("a.ckpt"), &loaded));
  EXPECT_EQ(loaded, params);
}

TEST_F(CheckpointTest, EmptyParamsRoundTrip) {
  ASSERT_TRUE(save_params(path("empty.ckpt"), std::vector<float>{}));
  std::vector<float> loaded{1.0f};
  ASSERT_TRUE(load_params(path("empty.ckpt"), &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST_F(CheckpointTest, MissingFileFails) {
  std::vector<float> loaded;
  EXPECT_FALSE(load_params(path("nope.ckpt"), &loaded));
}

TEST_F(CheckpointTest, BadMagicRejected) {
  std::ofstream f(path("bad.ckpt"), std::ios::binary);
  const char junk[64] = {1, 2, 3};
  f.write(junk, sizeof(junk));
  f.close();
  std::vector<float> loaded;
  EXPECT_FALSE(load_params(path("bad.ckpt"), &loaded));
}

TEST_F(CheckpointTest, TruncationDetected) {
  std::vector<float> params(100, 2.0f);
  ASSERT_TRUE(save_params(path("t.ckpt"), params));
  std::filesystem::resize_file(path("t.ckpt"), 64);
  std::vector<float> loaded;
  EXPECT_FALSE(load_params(path("t.ckpt"), &loaded));
}

TEST_F(CheckpointTest, BitFlipDetected) {
  std::vector<float> params(64, 1.0f);
  ASSERT_TRUE(save_params(path("c.ckpt"), params));
  // Flip one payload byte.
  std::fstream f(path("c.ckpt"), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(32);
  const char flip = 0x7F;
  f.write(&flip, 1);
  f.close();
  std::vector<float> loaded;
  EXPECT_FALSE(load_params(path("c.ckpt"), &loaded));
}

TEST_F(CheckpointTest, ChecksumDistinguishesValues) {
  std::vector<float> a{1.0f, 2.0f};
  std::vector<float> b{1.0f, 2.00001f};
  EXPECT_NE(params_checksum(a), params_checksum(b));
  EXPECT_EQ(params_checksum(a), params_checksum(std::vector<float>{1.0f, 2.0f}));
}

// --- opaque blob checkpoints (server crash-restart state) ------------------

TEST_F(CheckpointTest, BlobRoundTrip) {
  std::vector<std::uint8_t> blob(257);
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = static_cast<std::uint8_t>(i * 7);
  ASSERT_TRUE(save_blob(path("s.blob"), blob));
  std::vector<std::uint8_t> loaded;
  ASSERT_TRUE(load_blob(path("s.blob"), &loaded));
  EXPECT_EQ(loaded, blob);
}

TEST_F(CheckpointTest, EmptyBlobRoundTrip) {
  ASSERT_TRUE(save_blob(path("e.blob"), std::vector<std::uint8_t>{}));
  std::vector<std::uint8_t> loaded{9};
  ASSERT_TRUE(load_blob(path("e.blob"), &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST_F(CheckpointTest, ZeroLengthBlobFileRejected) {
  // A crash during the very first write can leave a zero-length file: the
  // loader must fail cleanly (header read fails), leaving *out untouched.
  { std::ofstream f(path("z.blob"), std::ios::binary); }
  std::vector<std::uint8_t> loaded{1, 2, 3};
  EXPECT_FALSE(load_blob(path("z.blob"), &loaded));
  EXPECT_EQ(loaded, (std::vector<std::uint8_t>{1, 2, 3})) << "output untouched on failure";
}

TEST_F(CheckpointTest, TornBlobWriteRejected) {
  std::vector<std::uint8_t> blob(512, 0xAB);
  ASSERT_TRUE(save_blob(path("torn.blob"), blob));
  const auto full = std::filesystem::file_size(path("torn.blob"));
  // Simulate a crash mid-write at every interesting cut point.
  for (const std::uintmax_t keep : {full / 2, full - 1, std::uintmax_t{8}}) {
    std::filesystem::resize_file(path("torn.blob"), keep);
    std::vector<std::uint8_t> loaded;
    EXPECT_FALSE(load_blob(path("torn.blob"), &loaded)) << "kept " << keep << " bytes";
  }
}

TEST_F(CheckpointTest, BlobBitFlipRejected) {
  std::vector<std::uint8_t> blob(256, 0x11);
  ASSERT_TRUE(save_blob(path("flip.blob"), blob));
  std::fstream f(path("flip.blob"), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(40);  // inside the payload
  const char corrupted = 0x42;
  f.write(&corrupted, 1);
  f.close();
  std::vector<std::uint8_t> loaded;
  EXPECT_FALSE(load_blob(path("flip.blob"), &loaded)) << "checksum must catch the flip";
}

TEST_F(CheckpointTest, BlobAndParamsFormatsAreNotInterchangeable) {
  ASSERT_TRUE(save_params(path("p.ckpt"), std::vector<float>{1.0f, 2.0f}));
  std::vector<std::uint8_t> blob;
  EXPECT_FALSE(load_blob(path("p.ckpt"), &blob)) << "magic must differ";
  ASSERT_TRUE(save_blob(path("b.blob"), std::vector<std::uint8_t>{1, 2, 3}));
  std::vector<float> params;
  EXPECT_FALSE(load_params(path("b.blob"), &params));
}

TEST(TraceExport, ProducesValidEvents) {
  std::vector<IterationTrace> trace{
      {0, 0, 0.0, 0.5, 0.8},
      {1, 0, 0.0, 0.6, 1.0},
  };
  const auto json = to_chrome_trace_json(trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Two spans (compute + sync) per entry.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("\"ph\": \"X\"", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 4u);
  EXPECT_NE(json.find("\"name\": \"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"sync\""), std::string::npos);
}

TEST(TraceExport, EmptyTraceIsValidJson) {
  const auto json = to_chrome_trace_json({});
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(TraceExport, FaultEventsRenderAsInstantEvents) {
  std::vector<IterationTrace> trace{{0, 0, 0.0, 0.5, 0.8}};
  std::vector<FaultEvent> faults{
      {0.30, "checkpoint", 1},
      {0.45, "crash", 1},
      {0.65, "restart", 1},
      {0.70, "recovered", 1},
  };
  const auto json = to_chrome_trace_json(trace, faults);
  // One "i" instant event per fault, alongside the two "X" spans.
  std::size_t instants = 0, pos = 0;
  while ((pos = json.find("\"ph\": \"i\"", pos)) != std::string::npos) {
    ++instants;
    pos += 1;
  }
  EXPECT_EQ(instants, 4u);
  for (const char* kind : {"checkpoint", "crash", "restart", "recovered"}) {
    EXPECT_NE(json.find(std::string("\"name\": \"") + kind + "\""), std::string::npos) << kind;
  }
  EXPECT_NE(json.find("\"cat\": \"fault\""), std::string::npos);
  // Crash timestamp is exported in microseconds on the crashed node's track.
  EXPECT_NE(json.find("\"ts\": 450000"), std::string::npos);
}

TEST(TraceExport, FaultEventsAloneStillValid) {
  const auto json = to_chrome_trace_json({}, {{0.1, "crash", 2}});
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(TraceExport, WriteToFile) {
  const auto p = std::filesystem::temp_directory_path() / "fps_trace.json";
  EXPECT_TRUE(write_chrome_trace(p.string(), {{0, 0, 0.0, 1.0, 2.0}}));
  std::ifstream f(p);
  std::string content((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("compute"), std::string::npos);
  std::filesystem::remove(p);
}

}  // namespace
}  // namespace fluentps::core
