// Dataset synthesis and batch sampling tests.
#include <gtest/gtest.h>

#include <set>

#include "ml/dataset.h"

namespace fluentps::ml {
namespace {

DataSpec small_spec() {
  DataSpec spec;
  spec.dim = 8;
  spec.num_classes = 4;
  spec.num_train = 400;
  spec.num_test = 100;
  spec.seed = 3;
  return spec;
}

TEST(Dataset, ShapesMatchSpec) {
  const auto d = Dataset::synthesize(small_spec());
  EXPECT_EQ(d.dim(), 8u);
  EXPECT_EQ(d.num_classes(), 4u);
  EXPECT_EQ(d.num_train(), 400u);
  EXPECT_EQ(d.num_test(), 100u);
  EXPECT_EQ(d.x_train().size(), 400u * 8u);
  EXPECT_EQ(d.x_test().size(), 100u * 8u);
}

TEST(Dataset, DeterministicForSeed) {
  const auto a = Dataset::synthesize(small_spec());
  const auto b = Dataset::synthesize(small_spec());
  EXPECT_EQ(a.x_train(), b.x_train());
  EXPECT_EQ(a.y_train(), b.y_train());
  EXPECT_EQ(a.y_test(), b.y_test());
}

TEST(Dataset, DifferentSeedsDiffer) {
  auto spec = small_spec();
  const auto a = Dataset::synthesize(spec);
  spec.seed = 4;
  const auto b = Dataset::synthesize(spec);
  EXPECT_NE(a.y_train(), b.y_train());
}

TEST(Dataset, LabelsInRange) {
  const auto d = Dataset::synthesize(small_spec());
  for (const int y : d.y_train()) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 4);
  }
}

TEST(Dataset, AllClassesRepresented) {
  const auto d = Dataset::synthesize(small_spec());
  std::set<int> classes(d.y_train().begin(), d.y_train().end());
  EXPECT_EQ(classes.size(), 4u) << "a random teacher should produce all classes";
}

TEST(Dataset, TrainTestAreIndependentDraws) {
  const auto d = Dataset::synthesize(small_spec());
  // The first test row should not equal the first train row.
  bool identical = true;
  for (std::size_t i = 0; i < d.dim(); ++i) {
    if (d.x_train()[i] != d.x_test()[i]) {
      identical = false;
      break;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(Dataset, TestBatchViews) {
  const auto d = Dataset::synthesize(small_spec());
  const Batch b = d.test_batch(10, 5);
  EXPECT_EQ(b.n, 5u);
  EXPECT_EQ(b.dim, 8u);
  EXPECT_EQ(b.X, d.x_test().data() + 10 * 8);
  EXPECT_EQ(b.y, d.y_test().data() + 10);
}

TEST(Dataset, HundredClassVariant) {
  DataSpec spec = small_spec();
  spec.num_classes = 100;
  spec.teacher_hidden = 64;
  spec.num_train = 2000;
  const auto d = Dataset::synthesize(spec);
  std::set<int> classes(d.y_train().begin(), d.y_train().end());
  EXPECT_GT(classes.size(), 60u) << "most of the 100 classes should appear";
}

TEST(BatchSampler, ShardsPartitionTrainingSet) {
  const auto d = Dataset::synthesize(small_spec());
  const std::uint32_t N = 7;  // does not divide 400
  std::size_t covered = 0;
  for (std::uint32_t w = 0; w < N; ++w) {
    BatchSampler s(d, w, N, 16, 1);
    covered += s.shard_size();
  }
  EXPECT_EQ(covered, d.num_train());
}

TEST(BatchSampler, BatchHasRequestedSize) {
  const auto d = Dataset::synthesize(small_spec());
  BatchSampler s(d, 0, 4, 16, 1);
  const Batch b = s.next();
  EXPECT_EQ(b.n, 16u);
  EXPECT_EQ(b.dim, 8u);
}

TEST(BatchSampler, BatchLargerThanShardClamps) {
  const auto d = Dataset::synthesize(small_spec());
  BatchSampler s(d, 0, 100, 64, 1);  // shard of 4 rows
  const Batch b = s.next();
  EXPECT_EQ(b.n, 4u);
}

TEST(BatchSampler, RowsComeFromOwnShard) {
  const auto d = Dataset::synthesize(small_spec());
  // Worker 1 of 4 owns rows [100, 200).
  BatchSampler s(d, 1, 4, 32, 1);
  for (int round = 0; round < 10; ++round) {
    const Batch b = s.next();
    for (std::size_t i = 0; i < b.n; ++i) {
      // Find the row by matching the label AND features in the shard range.
      bool found = false;
      for (std::size_t row = 100; row < 200 && !found; ++row) {
        if (d.y_train()[row] != b.y[i]) continue;
        found = std::equal(b.X + i * 8, b.X + (i + 1) * 8, d.x_train().data() + row * 8);
      }
      ASSERT_TRUE(found) << "batch row not from worker 1's shard";
    }
  }
}

TEST(BatchSampler, DeterministicForSeed) {
  const auto d = Dataset::synthesize(small_spec());
  BatchSampler a(d, 0, 4, 8, 5), b(d, 0, 4, 8, 5);
  for (int i = 0; i < 20; ++i) {
    const Batch ba = a.next();
    const Batch bb = b.next();
    for (std::size_t j = 0; j < ba.n; ++j) EXPECT_EQ(ba.y[j], bb.y[j]);
  }
}

TEST(BatchSampler, DifferentWorkersDifferentStreams) {
  const auto d = Dataset::synthesize(small_spec());
  BatchSampler a(d, 0, 4, 8, 5), b(d, 1, 4, 8, 5);
  const Batch ba = a.next();
  const Batch bb = b.next();
  bool same = true;
  for (std::size_t j = 0; j < ba.n; ++j) {
    if (ba.y[j] != bb.y[j]) same = false;
  }
  // Labels could coincide, features essentially cannot.
  if (same) {
    same = std::equal(ba.X, ba.X + ba.n * 8, bb.X);
  }
  EXPECT_FALSE(same);
}

TEST(BatchSampler, EpochWrapReshuffles) {
  const auto d = Dataset::synthesize(small_spec());
  BatchSampler s(d, 0, 4, 100, 9);  // shard = 100 rows, one batch per epoch
  const Batch e1 = s.next();
  std::vector<int> first(e1.y, e1.y + e1.n);
  const Batch e2 = s.next();
  std::vector<int> second(e2.y, e2.y + e2.n);
  auto sf = first, ss = second;
  std::sort(sf.begin(), sf.end());
  std::sort(ss.begin(), ss.end());
  EXPECT_EQ(sf, ss) << "same multiset of labels each epoch";
  EXPECT_NE(first, second) << "order should differ after reshuffle";
}

TEST(Dataset, LabelNoiseIncreasesDisagreement) {
  auto clean_spec = small_spec();
  clean_spec.label_noise = 0.0;
  auto noisy_spec = small_spec();
  noisy_spec.label_noise = 0.5;
  const auto clean = Dataset::synthesize(clean_spec);
  const auto noisy = Dataset::synthesize(noisy_spec);
  // Same teacher; noise both flips labels and shifts the RNG stream, so a
  // large fraction of labels should disagree.
  std::size_t diff = 0;
  for (std::size_t i = 0; i < clean.num_train(); ++i) {
    if (clean.y_train()[i] != noisy.y_train()[i]) ++diff;
  }
  // 50% noise resamples uniformly over 4 classes -> ~37.5% actual flips.
  EXPECT_GT(diff, clean.num_train() / 5);
}

}  // namespace
}  // namespace fluentps::ml
