// Reliability-layer unit tests, driving ps::Server directly (single context)
// through a scripted transport: SeqWindow dedup semantics, the exactly-once
// application oracle (duplicated pushes leave the shard bit-identical),
// idempotent pull re-answers, checkpoint save/restore, and the
// kRecover/kRecoverAck handshake that re-counts rolled-back pushes.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "ps/server.h"
#include "ps/slicing.h"

namespace fluentps::ps {
namespace {

constexpr std::size_t kParams = 8;

struct StubTransport final : net::Transport {
  std::vector<net::Message> sent;
  void register_node(net::NodeId, Handler) override {}
  void send(net::Message msg) override { sent.push_back(std::move(msg)); }

  [[nodiscard]] std::size_t count(net::MsgType t) const {
    return static_cast<std::size_t>(
        std::count_if(sent.begin(), sent.end(), [t](const auto& m) { return m.type == t; }));
  }
  [[nodiscard]] const net::Message& last() const { return sent.back(); }
};

/// One reliable server owning all kParams parameters, driven directly.
struct ServerRig {
  StubTransport transport;
  std::unique_ptr<Server> server;

  explicit ServerRig(std::uint32_t n_workers, const SyncModelSpec& sync = {.kind = "asp"}) {
    EpsSlicer slicer(kParams);
    auto sharding = slicer.shard({kParams}, 1);
    ServerSpec spec;
    spec.node_id = 1;
    spec.server_rank = 0;
    spec.num_workers = n_workers;
    spec.layout = sharding.shards[0];
    spec.initial_shard.assign(kParams, 0.0f);
    spec.engine.num_workers = n_workers;
    spec.engine.model = make_sync_model(sync, n_workers);
    spec.engine.seed = 5;
    spec.reliable = true;
    for (std::uint32_t n = 0; n < n_workers; ++n) spec.worker_nodes.push_back(2 + n);
    server = std::make_unique<Server>(std::move(spec), transport);
  }

  void push(std::uint32_t worker, std::uint64_t seq, std::int64_t progress, float value) {
    net::Message m;
    m.type = net::MsgType::kPush;
    m.src = 2 + worker;
    m.dst = 1;
    m.worker_rank = worker;
    m.seq = seq;
    m.progress = progress;
    m.values.assign(kParams, value);
    server->handle(std::move(m));
  }

  void pull(std::uint32_t worker, std::uint64_t request_id, std::int64_t progress) {
    net::Message m;
    m.type = net::MsgType::kPull;
    m.src = 2 + worker;
    m.dst = 1;
    m.worker_rank = worker;
    m.request_id = request_id;
    m.progress = progress;
    server->handle(std::move(m));
  }

  void recover_ack(std::uint32_t worker, std::int64_t last_acked) {
    net::Message m;
    m.type = net::MsgType::kRecoverAck;
    m.src = 2 + worker;
    m.dst = 1;
    m.worker_rank = worker;
    m.progress = last_acked;
    server->handle(std::move(m));
  }
};

TEST(SeqWindow, AcceptsInOrderRejectsDuplicates) {
  SeqWindow w;
  EXPECT_TRUE(w.accept(1));
  EXPECT_TRUE(w.accept(2));
  EXPECT_FALSE(w.accept(1)) << "below the floor";
  EXPECT_FALSE(w.accept(2));
  EXPECT_EQ(w.floor, 2u);
  EXPECT_TRUE(w.seen.empty()) << "contiguous prefix collapses into the floor";
}

TEST(SeqWindow, GapsStaySparseUntilFilled) {
  SeqWindow w;
  EXPECT_TRUE(w.accept(1));
  EXPECT_TRUE(w.accept(3));
  EXPECT_TRUE(w.accept(5));
  EXPECT_EQ(w.floor, 1u);
  EXPECT_EQ(w.seen.size(), 2u);
  EXPECT_FALSE(w.accept(3)) << "in-set duplicate";
  EXPECT_TRUE(w.accept(2));  // fills the gap: floor jumps over 3
  EXPECT_EQ(w.floor, 3u);
  EXPECT_TRUE(w.accept(4));
  EXPECT_EQ(w.floor, 5u);
  EXPECT_TRUE(w.seen.empty());
}

TEST(SeqWindow, SeqZeroBypassesDedup) {
  SeqWindow w;
  EXPECT_TRUE(w.accept(0));
  EXPECT_TRUE(w.accept(0)) << "unsequenced senders are never deduplicated";
  EXPECT_EQ(w.floor, 0u);
}

TEST(ReliableServer, DuplicatePushAppliedExactlyOnce) {
  // Oracle: a run where every push is delivered twice must produce a shard
  // bit-identical to the run where each is delivered once.
  ServerRig once(1), twice(1);
  for (std::int64_t i = 0; i < 4; ++i) {
    const auto seq = static_cast<std::uint64_t>(i + 1);
    const float g = 0.125f * static_cast<float>(i + 1);
    once.push(0, seq, i, g);
    twice.push(0, seq, i, g);
    twice.push(0, seq, i, g);  // network duplicate
  }
  EXPECT_EQ(once.server->pushes_applied(), 4);
  EXPECT_EQ(twice.server->pushes_applied(), 4);
  EXPECT_EQ(twice.server->dedup_hits(), 4);
  const auto a = once.server->snapshot();
  const auto b = twice.server->snapshot();
  for (std::size_t i = 0; i < kParams; ++i) EXPECT_EQ(a[i], b[i]) << "bitwise at " << i;
  // Every duplicate still gets an ack (the first ack was presumed lost).
  EXPECT_EQ(twice.transport.count(net::MsgType::kPushAck), 8u);
}

TEST(ReliableServer, OutOfOrderRetransmitsDedupAcrossGaps) {
  ServerRig rig(1);
  rig.push(0, 1, 0, 1.0f);
  rig.push(0, 3, 2, 1.0f);  // seq 2 still in flight
  rig.push(0, 3, 2, 1.0f);  // dup of the sparse entry
  rig.push(0, 2, 1, 1.0f);  // the straggler arrives
  rig.push(0, 1, 0, 1.0f);  // ancient retransmit, below the floor
  EXPECT_EQ(rig.server->pushes_applied(), 3);
  EXPECT_EQ(rig.server->dedup_hits(), 2);
}

TEST(ReliableServer, AnsweredPullIsReAnsweredWithoutEngineReentry) {
  ServerRig rig(1);
  rig.push(0, 1, 0, 1.0f);
  rig.pull(0, /*request_id=*/77, 0);
  ASSERT_EQ(rig.transport.count(net::MsgType::kPullResp), 1u);
  rig.pull(0, 77, 0);  // response was lost; worker retries
  EXPECT_EQ(rig.transport.count(net::MsgType::kPullResp), 2u);
  EXPECT_EQ(rig.server->dedup_hits(), 1);
  EXPECT_EQ(rig.transport.last().request_id, 77u);
}

TEST(ReliableServer, BufferedPullRetransmitIsSwallowed) {
  // BSP, 2 workers: worker 0's pull parks as a DPR. A retransmit of the same
  // request id must not be parked twice or answered early.
  ServerRig rig(2, {.kind = "bsp"});
  rig.push(0, 1, 0, 1.0f);
  rig.pull(0, 9, 0);
  rig.pull(0, 9, 0);  // timeout-driven retransmit while still buffered
  EXPECT_EQ(rig.transport.count(net::MsgType::kPullResp), 0u);
  EXPECT_EQ(rig.server->dedup_hits(), 1);
  rig.push(1, 1, 0, 1.0f);  // completes the barrier
  EXPECT_EQ(rig.transport.count(net::MsgType::kPullResp), 1u);
}

TEST(ReliableServer, SaveRestoreRoundTripsShardEngineAndWindows) {
  ServerRig rig(1);
  rig.push(0, 1, 0, 1.0f);
  rig.push(0, 2, 1, 1.0f);
  const auto blob = rig.server->save_state();
  const auto saved = rig.server->snapshot();
  rig.push(0, 3, 2, 1.0f);  // applied after the checkpoint: will be rolled back
  ASSERT_TRUE(rig.server->restore_state(blob));
  EXPECT_EQ(rig.server->recoveries(), 1);
  const auto restored = rig.server->snapshot();
  for (std::size_t i = 0; i < kParams; ++i) EXPECT_EQ(restored[i], saved[i]);
  // The dedup window was restored too: seqs 1..2 are dups, 3 is fresh again.
  rig.push(0, 1, 0, 9.0f);
  rig.push(0, 2, 1, 9.0f);
  EXPECT_EQ(rig.server->dedup_hits(), 2);
  rig.push(0, 3, 2, 1.0f);
  EXPECT_EQ(rig.server->snapshot()[0], saved[0] + 1.0f);
}

TEST(ReliableServer, RestoreRejectsCorruptBlobs) {
  ServerRig rig(1);
  auto blob = rig.server->save_state();
  EXPECT_FALSE(rig.server->restore_state({})) << "zero-length";
  auto truncated = blob;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(rig.server->restore_state(truncated)) << "torn write";
  auto flipped = blob;
  flipped[0] ^= 0xFF;  // corrupt the magic
  EXPECT_FALSE(rig.server->restore_state(flipped)) << "bad magic";
  EXPECT_EQ(rig.server->recoveries(), 0);
  ASSERT_TRUE(rig.server->restore_state(blob)) << "pristine blob still loads";
}

TEST(ReliableServer, RecoveryHandshakeReplaysRolledBackCounts) {
  // BSP, 2 workers. Checkpoint after iteration 0; worker 0 then completes
  // iteration 1 (applied + acked) before the crash. After restore, worker 0
  // holds the ack and will never retransmit — only the kRecoverAck synthesis
  // can repair Count[1], or worker 1's barrier would hang forever.
  ServerRig rig(2, {.kind = "bsp"});
  rig.push(0, 1, 0, 1.0f);
  rig.push(1, 1, 0, 1.0f);
  const auto blob = rig.server->save_state();
  rig.push(0, 2, 1, 1.0f);  // acked, then the server dies
  ASSERT_TRUE(rig.server->restore_state(blob));
  rig.server->begin_recovery();
  EXPECT_TRUE(rig.server->recovering());
  EXPECT_EQ(rig.transport.count(net::MsgType::kRecover), 2u);

  // While recovering, traffic from an un-acked worker is quiesced (no ack,
  // no application) and the handshake is nagged. pushes_applied is a lifetime
  // counter (not rolled back by restore): it must simply not advance.
  const auto recovers_before = rig.transport.count(net::MsgType::kRecover);
  const auto applied_before = rig.server->pushes_applied();
  rig.push(1, 2, 1, 1.0f);
  EXPECT_EQ(rig.server->pushes_applied(), applied_before) << "quiesced during recovery";
  EXPECT_GT(rig.transport.count(net::MsgType::kRecover), recovers_before) << "nag broadcast";

  rig.recover_ack(0, /*last_acked=*/1);  // worker 0: "I saw iteration 1 acked"
  rig.recover_ack(1, /*last_acked=*/0);
  EXPECT_FALSE(rig.server->recovering());

  // Worker 1 retransmits its lost push and pulls: the barrier for iteration 1
  // completes because worker 0's count was synthesized.
  rig.push(1, 2, 1, 1.0f);
  rig.pull(1, 55, 1);
  EXPECT_EQ(rig.transport.count(net::MsgType::kPullResp), 1u) << "Count[1] complete";

  // A stale pre-crash duplicate of worker 0's push 1 (synth_floor) is acked
  // but not applied: the synthesis already counted it.
  const auto applied = rig.server->pushes_applied();
  rig.push(0, 2, 1, 1.0f);
  EXPECT_EQ(rig.server->pushes_applied(), applied);
  EXPECT_EQ(rig.transport.last().type, net::MsgType::kPushAck);
}

TEST(ReliableServer, DuplicateRecoverAckIsIgnored) {
  ServerRig rig(1, {.kind = "bsp"});
  rig.push(0, 1, 0, 1.0f);
  const auto blob = rig.server->save_state();
  rig.push(0, 2, 1, 1.0f);
  ASSERT_TRUE(rig.server->restore_state(blob));
  rig.server->begin_recovery();
  rig.recover_ack(0, 1);
  const auto applied = rig.server->pushes_applied();
  rig.recover_ack(0, 1);  // duplicated by the network
  EXPECT_EQ(rig.server->pushes_applied(), applied) << "no double synthesis";
  EXPECT_FALSE(rig.server->recovering());
}

}  // namespace
}  // namespace fluentps::ps
