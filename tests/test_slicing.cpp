// Slicing tests: PS-Lite default vs EPS balance, chunking, rebalancing.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "ml/models/resmlp.h"
#include "ml/models/softmax_net.h"
#include "ps/slicing.h"

namespace fluentps::ps {
namespace {

TEST(DefaultSlicer, LayerGranularContiguous) {
  DefaultSlicer slicer;
  const auto sh = slicer.shard({100, 10, 50, 40}, 2);
  ASSERT_EQ(sh.shards.size(), 2u);
  // Keys 0,1 on server 0; keys 2,3 on server 1.
  EXPECT_EQ(sh.shards[0].slices.size(), 2u);
  EXPECT_EQ(sh.shards[0].total, 110u);
  EXPECT_EQ(sh.shards[1].total, 90u);
  EXPECT_EQ(sh.num_params, 200u);
}

TEST(DefaultSlicer, BigLayerCreatesImbalance) {
  // One dominating tensor is indivisible under layer-granular slicing: the
  // hot-spot the paper attributes to PS-Lite's default slicing.
  DefaultSlicer slicer;
  const auto sh = slicer.shard({1000, 10, 10, 10}, 4);
  EXPECT_GT(sh.imbalance(), 3.5);
}

TEST(DefaultSlicer, MoreServersThanLayersLeavesSomeEmpty) {
  DefaultSlicer slicer;
  const auto sh = slicer.shard({8, 8}, 4);
  std::size_t nonempty = 0;
  for (const auto& s : sh.shards) nonempty += s.slices.empty() ? 0 : 1;
  EXPECT_EQ(nonempty, 2u);
  sh.validate();
}

TEST(EpsSlicer, SplitsLargeLayersIntoChunks) {
  EpsSlicer slicer(/*chunk=*/16);
  const auto sh = slicer.shard({100}, 1);
  ASSERT_EQ(sh.shards.size(), 1u);
  EXPECT_EQ(sh.shards[0].slices.size(), 7u);  // 6x16 + 1x4
  for (const auto& s : sh.shards[0].slices) EXPECT_LE(s.length, 16u);
  sh.validate();
}

TEST(EpsSlicer, BalancesDominatingLayer) {
  EpsSlicer slicer(/*chunk=*/16);
  const auto sh = slicer.shard({1000, 10, 10, 10}, 4);
  EXPECT_LT(sh.imbalance(), 1.1) << "EPS must spread the big tensor";
}

TEST(EpsSlicer, ChunkKeysAreRemapped) {
  EpsSlicer slicer(/*chunk=*/8);
  const auto sh = slicer.shard({20, 20}, 2);
  // 3 + 3 chunks, new key space 0..5.
  std::set<Key> keys;
  for (const auto& shard : sh.shards) {
    for (const auto& s : shard.slices) keys.insert(s.key);
  }
  EXPECT_EQ(keys.size(), 6u);
  EXPECT_EQ(*keys.begin(), 0u);
  EXPECT_EQ(*keys.rbegin(), 5u);
}

TEST(EpsSlicer, DeterministicPlacement) {
  EpsSlicer slicer(32);
  const std::vector<std::size_t> layers{100, 7, 999, 32, 61};
  const auto a = slicer.shard(layers, 3);
  const auto b = slicer.shard(layers, 3);
  for (std::size_t m = 0; m < 3; ++m) {
    EXPECT_EQ(a.shards[m].slices.size(), b.shards[m].slices.size());
    EXPECT_EQ(a.shards[m].total, b.shards[m].total);
  }
}

TEST(EpsSlicer, RebalanceOnServerGrowth) {
  EpsSlicer slicer(16);
  const auto old = slicer.shard({400, 30}, 2);
  std::vector<EpsSlicer::Migration> plan;
  const auto fresh = slicer.rebalance(old, 4, &plan);
  fresh.validate();
  EXPECT_EQ(fresh.num_servers(), 4u);
  EXPECT_LT(fresh.imbalance(), 1.25);
  EXPECT_FALSE(plan.empty()) << "growing the cluster must move slices";
  for (const auto& m : plan) EXPECT_NE(m.from_server, m.to_server);
}

TEST(EpsSlicer, RebalanceOnServerLoss) {
  EpsSlicer slicer(16);
  const auto old = slicer.shard({400, 30}, 4);
  std::vector<EpsSlicer::Migration> plan;
  const auto fresh = slicer.rebalance(old, 3, &plan);
  fresh.validate();
  EXPECT_EQ(fresh.num_servers(), 3u);
  // Every slice previously on server 3 must have moved.
  std::size_t moved_bytes = 0;
  for (const auto& m : plan) moved_bytes += m.slice.length;
  EXPECT_GE(moved_bytes, old.shards[3].total);
}

TEST(EpsSlicer, RebalanceGrowByManyKeepsBalance) {
  // Grow M -> M+k for several k: the fresh plan stays balanced and the
  // migration plan only ever moves slices onto the new ranks or between
  // survivors — never onto a rank that does not exist in the new plan.
  EpsSlicer slicer(16);
  const auto old = slicer.shard({640, 96, 48}, 2);
  for (const std::uint32_t grown : {3u, 4u, 8u}) {
    std::vector<EpsSlicer::Migration> plan;
    const auto fresh = slicer.rebalance(old, grown, &plan);
    fresh.validate();
    ASSERT_EQ(fresh.num_servers(), grown);
    EXPECT_LT(fresh.imbalance(), 1.6) << "M=" << grown;
    for (const auto& m : plan) EXPECT_LT(m.to_server, grown);
  }
}

TEST(EpsSlicer, RebalanceShrinkToOneAbsorbsEverything) {
  EpsSlicer slicer(16);
  const auto old = slicer.shard({400, 30}, 4);
  std::vector<EpsSlicer::Migration> plan;
  const auto fresh = slicer.rebalance(old, 1, &plan);
  fresh.validate();
  ASSERT_EQ(fresh.num_servers(), 1u);
  EXPECT_EQ(fresh.shards[0].total, old.num_params);
  // Every slice not already on server 0 moves there, exactly once.
  std::size_t expect_moves = 0;
  for (std::size_t m = 1; m < old.shards.size(); ++m) {
    expect_moves += old.shards[m].slices.size();
  }
  EXPECT_EQ(plan.size(), expect_moves);
  for (const auto& m : plan) EXPECT_EQ(m.to_server, 0u);
}

TEST(EpsSlicer, RebalanceKeepsChunkBoundarySlicesIntact) {
  // Layer sizes that are exact chunk multiples: every slice is a full chunk,
  // and rebalancing must move whole chunks without splitting or merging.
  EpsSlicer slicer(32);
  const auto old = slicer.shard({128, 64}, 2);
  for (const auto& shard : old.shards) {
    for (const auto& s : shard.slices) ASSERT_EQ(s.length, 32u);
  }
  std::vector<EpsSlicer::Migration> plan;
  const auto fresh = slicer.rebalance(old, 3, &plan);
  fresh.validate();
  for (const auto& shard : fresh.shards) {
    for (const auto& s : shard.slices) {
      EXPECT_EQ(s.length, 32u);
      EXPECT_EQ(s.offset % 32u, 0u) << "slices stay chunk-aligned";
    }
  }
  for (const auto& m : plan) EXPECT_EQ(m.slice.length, 32u);
}

TEST(EpsSlicer, RebalancePlanConservation) {
  // The invariant the migration executor depends on: applying the plan's
  // moves to the old placement yields exactly the fresh placement — every
  // moved slice appears exactly once, nothing is created or destroyed, and
  // total bytes are preserved.
  EpsSlicer slicer(16);
  const auto old = slicer.shard({400, 96, 30}, 3);
  std::vector<EpsSlicer::Migration> plan;
  const auto fresh = slicer.rebalance(old, 5, &plan);
  fresh.validate();
  EXPECT_EQ(fresh.num_params, old.num_params);

  // Simulate the plan: multiset of (offset, length, server) assignments.
  std::map<std::pair<std::size_t, std::size_t>, std::uint32_t> place;
  for (std::uint32_t m = 0; m < old.num_servers(); ++m) {
    for (const auto& s : old.shards[m].slices) {
      ASSERT_EQ(place.count(std::make_pair(s.offset, s.length)), 0u) << "old plan has duplicates";
      place[std::make_pair(s.offset, s.length)] = m;
    }
  }
  std::set<std::pair<std::size_t, std::size_t>> moved;
  for (const auto& mv : plan) {
    const auto key = std::make_pair(mv.slice.offset, mv.slice.length);
    EXPECT_TRUE(moved.insert(key).second) << "slice moved twice";
    ASSERT_EQ(place.count(key), 1u);
    EXPECT_EQ(place[key], mv.from_server);
    place[key] = mv.to_server;
  }
  for (std::uint32_t m = 0; m < fresh.num_servers(); ++m) {
    for (const auto& s : fresh.shards[m].slices) {
      ASSERT_EQ(place.count(std::make_pair(s.offset, s.length)), 1u);
      EXPECT_EQ(place[std::make_pair(s.offset, s.length)], m) << "plan does not realize the fresh layout";
    }
  }
}

TEST(EpsSlicer, RebalancePreservesChunking) {
  EpsSlicer slicer(16);
  const auto old = slicer.shard({100, 100}, 2);
  const auto fresh = slicer.rebalance(old, 5, nullptr);
  std::size_t old_slices = 0, new_slices = 0;
  for (const auto& s : old.shards) old_slices += s.slices.size();
  for (const auto& s : fresh.shards) new_slices += s.slices.size();
  EXPECT_EQ(old_slices, new_slices);
}

TEST(ShardLayout, GatherScatterRoundTrip) {
  EpsSlicer slicer(8);
  const auto sh = slicer.shard({10, 20, 5}, 2);
  std::vector<float> flat(35);
  std::iota(flat.begin(), flat.end(), 0.0f);
  std::vector<float> reconstructed(35, -1.0f);
  for (const auto& shard : sh.shards) {
    std::vector<float> buf(shard.total);
    shard.gather(flat, buf);
    shard.scatter(buf, reconstructed);
  }
  EXPECT_EQ(flat, reconstructed);
}

TEST(ShardLayout, AccumulateScales) {
  DefaultSlicer slicer;
  const auto sh = slicer.shard({4}, 1);
  std::vector<float> flat{1.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<float> inc{2.0f, 4.0f, 6.0f, 8.0f};
  sh.shards[0].accumulate(inc, 0.5f, flat);
  EXPECT_FLOAT_EQ(flat[0], 2.0f);
  EXPECT_FLOAT_EQ(flat[3], 5.0f);
}

TEST(Sharding, ValidateCatchesGap) {
  Sharding sh;
  sh.num_params = 10;
  ShardLayout s0;
  s0.slices.push_back(ParamSlice{0, 0, 4});
  s0.slices.push_back(ParamSlice{1, 6, 4});  // gap at [4,6)
  s0.total = 8;
  sh.shards.push_back(s0);
  EXPECT_DEATH(sh.validate(), "gap or overlap");
}

TEST(SlicerFactory, BuildsBoth) {
  EXPECT_EQ(make_slicer("default")->name(), "default");
  EXPECT_EQ(make_slicer("eps", 64)->name(), "eps");
  EXPECT_DEATH((void)make_slicer("hash"), "unknown slicer");
}

// Property sweep: both slicers fully cover every model's parameters for any
// server count, and EPS is always at least as balanced as default.
struct SliceCase {
  std::string model;
  std::uint32_t servers;
};

class SlicerProperty : public ::testing::TestWithParam<SliceCase> {};

TEST_P(SlicerProperty, CoverageAndBalance) {
  const auto& p = GetParam();
  std::vector<std::size_t> layers;
  if (p.model == "softmax") {
    layers = ml::SoftmaxNet(512, 10).layer_sizes();
  } else if (p.model == "resmlp") {
    layers = ml::ResMlp(64, 16, 27, 10).layer_sizes();
  } else {
    layers = {1, 7, 100000, 3, 50, 2048};  // adversarial: one huge tensor
  }
  DefaultSlicer dflt;
  EpsSlicer eps(1024);
  const auto a = dflt.shard(layers, p.servers);
  const auto b = eps.shard(layers, p.servers);
  a.validate();
  b.validate();
  EXPECT_LE(b.imbalance(), a.imbalance() + 1e-9);
  if (p.servers > 1) {
    EXPECT_LT(b.imbalance(), 1.6) << "EPS with 1k chunks should be well balanced";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlicerProperty,
    ::testing::Values(SliceCase{"softmax", 1}, SliceCase{"softmax", 2}, SliceCase{"softmax", 8},
                      SliceCase{"resmlp", 1}, SliceCase{"resmlp", 4}, SliceCase{"resmlp", 8},
                      SliceCase{"resmlp", 16}, SliceCase{"adversarial", 2},
                      SliceCase{"adversarial", 8}, SliceCase{"adversarial", 32}),
    [](const ::testing::TestParamInfo<SliceCase>& info) {
      return info.param.model + "_M" + std::to_string(info.param.servers);
    });

}  // namespace
}  // namespace fluentps::ps
