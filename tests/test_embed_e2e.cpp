// End-to-end acceptance for the sparse embedding subsystem: a sparse job and
// the dense training job share one server set, the sparse state digest is
// bit-identical across backends and equal to the serial reference oracle
// (zero lost updates), and chaos (drop/dup) cannot break that equality.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/fluentps.h"
#include "embed/table_spec.h"
#include "embed/workload.h"

namespace fluentps {
namespace {

core::ExperimentConfig base_cfg(core::Backend backend) {
  core::ExperimentConfig cfg;
  cfg.backend = backend;
  cfg.arch = core::Arch::kFluentPS;
  cfg.num_workers = 3;
  cfg.num_servers = 2;
  cfg.max_iters = 20;
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 2;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 256;
  cfg.data.num_test = 64;
  cfg.batch_size = 8;
  cfg.compute.kind = "lognormal";
  cfg.compute.base_seconds = 0.005;
  cfg.seed = 4242;
  cfg.retry.initial_timeout = 0.02;
  cfg.retry.max_timeout = 0.3;

  // Two tenants with different dims, optimizers and QoS weights on the same
  // two servers the dense job uses.
  cfg.sparse.tables =
      embed::parse_tables("emb:dim=8,rows=256,opt=adagrad,qos=2;ads:dim=4,rows=64");
  cfg.sparse.num_workers = 2;
  cfg.sparse.rounds = 8;
  cfg.sparse.batch_rows = 8;
  cfg.sparse.compute_seconds = 0.001;
  return cfg;
}

std::uint64_t u64_extra(const core::ExperimentResult& r, const std::string& key) {
  const auto lo = r.extra.find(key + "_lo");
  const auto hi = r.extra.find(key + "_hi");
  EXPECT_NE(lo, r.extra.end()) << key;
  EXPECT_NE(hi, r.extra.end()) << key;
  if (lo == r.extra.end() || hi == r.extra.end()) return 0;
  return (static_cast<std::uint64_t>(hi->second) << 32) |
         static_cast<std::uint64_t>(lo->second);
}

double extra(const core::ExperimentResult& r, const std::string& key) {
  const auto it = r.extra.find(key);
  return it == r.extra.end() ? 0.0 : it->second;
}

void check_dense_sane(const core::ExperimentResult& r, const core::ExperimentConfig& cfg) {
  EXPECT_EQ(r.iterations, cfg.max_iters);
  ASSERT_FALSE(r.final_params.empty());
  for (const float v : r.final_params) ASSERT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(r.final_loss));
}

TEST(EmbedE2E, DenseAndSparseJobsShareOneServerSet) {
  // The multi-table acceptance: dense training and a 2-table sparse job run
  // concurrently on the same servers, and both finish with their invariants
  // intact.
  const auto cfg = base_cfg(core::Backend::kSim);
  const auto r = core::run_experiment(cfg);
  check_dense_sane(r, cfg);

  EXPECT_EQ(u64_extra(r, "sparse_state_digest"),
            embed::reference_state_digest(cfg.sparse, cfg.seed))
      << "zero-lost invariant violated on a pristine fabric";
  // Every (worker, round, server, table) shard is one push; pulls skip empty
  // shards, so bound them instead of pinning.
  const double expected_pushes = static_cast<double>(cfg.sparse.rounds) *
                                 cfg.sparse.num_workers * cfg.num_servers *
                                 static_cast<double>(cfg.sparse.tables.size());
  EXPECT_EQ(extra(r, "sparse_pushes"), expected_pushes);
  EXPECT_GT(extra(r, "sparse_rows_applied"), 0.0);
  EXPECT_GT(extra(r, "sparse_pulls_answered"), 0.0);
  EXPECT_LE(extra(r, "sparse_pulls_answered"), expected_pushes);
  EXPECT_EQ(extra(r, "sparse_dedup_hits"), 0.0) << "no faults -> no retransmits";
  EXPECT_EQ(extra(r, "sparse_parked_pulls"), 0.0) << "all pulls must be answered";
}

TEST(EmbedE2E, SimAndThreadBackendsAreBitIdentical) {
  // The same config on the discrete-event simulator and on real jthreads must
  // produce the same sparse table state AND the same pulled values, bit for
  // bit — the protocol (seq/ticket issue order, round clock, digest folding)
  // is deterministic per seed on both.
  const auto cfg_sim = base_cfg(core::Backend::kSim);
  auto cfg_thr = cfg_sim;
  cfg_thr.backend = core::Backend::kThreads;

  const auto a = core::run_experiment(cfg_sim);
  const auto b = core::run_experiment(cfg_thr);

  const std::uint64_t want = embed::reference_state_digest(cfg_sim.sparse, cfg_sim.seed);
  EXPECT_EQ(u64_extra(a, "sparse_state_digest"), want);
  EXPECT_EQ(u64_extra(b, "sparse_state_digest"), want);
  EXPECT_EQ(u64_extra(a, "sparse_pull_digest"), u64_extra(b, "sparse_pull_digest"))
      << "pulled values must match across backends";
  EXPECT_EQ(extra(a, "sparse_pushes"), extra(b, "sparse_pushes"));
  EXPECT_EQ(extra(a, "sparse_rows_applied"), extra(b, "sparse_rows_applied"));
}

TEST(EmbedE2E, SparseSurvivesDropAndDupWithZeroLostUpdates) {
  // 10% loss + 5% duplication on every link (sparse worker links included):
  // the retry ladder re-offers, SeqWindow dedup swallows the copies, and the
  // final state still equals the serial oracle exactly.
  auto cfg = base_cfg(core::Backend::kSim);
  cfg.faults.link.drop_prob = 0.10;
  cfg.faults.link.dup_prob = 0.05;
  const auto r = core::run_experiment(cfg);
  check_dense_sane(r, cfg);

  EXPECT_EQ(u64_extra(r, "sparse_state_digest"),
            embed::reference_state_digest(cfg.sparse, cfg.seed))
      << "drop/dup chaos lost or double-applied a sparse update";
  EXPECT_GT(r.dropped, 0);
  EXPECT_GT(extra(r, "sparse_retries"), 0.0);
  EXPECT_GT(extra(r, "sparse_dedup_hits"), 0.0);
  EXPECT_EQ(extra(r, "sparse_parked_pulls"), 0.0);
}

TEST(EmbedE2E, ThreadBackendSurvivesDropAndDup) {
  auto cfg = base_cfg(core::Backend::kThreads);
  cfg.faults.link.drop_prob = 0.05;
  cfg.faults.link.dup_prob = 0.05;
  const auto r = core::run_experiment(cfg);
  check_dense_sane(r, cfg);
  EXPECT_EQ(u64_extra(r, "sparse_state_digest"),
            embed::reference_state_digest(cfg.sparse, cfg.seed));
  EXPECT_EQ(extra(r, "sparse_parked_pulls"), 0.0);
}

TEST(EmbedE2E, ReducerOnAndOffEachMatchTheirReferenceOracle) {
  // The reducer changes how many row_apply calls a hot round costs, never
  // what a run reproduces: with either setting the distributed run equals
  // the serial oracle replayed with the same flag, and coalescing strictly
  // cuts the apply count on a skewed stream.
  auto cfg = base_cfg(core::Backend::kSim);
  cfg.sparse.tables = embed::parse_tables("emb:dim=8,rows=128,opt=sgd;ads:dim=4,opt=sgd");
  cfg.sparse.zipf_s = 1.3;
  cfg.sparse.reduce = true;
  const auto a = core::run_experiment(cfg);
  EXPECT_EQ(u64_extra(a, "sparse_state_digest"),
            embed::reference_state_digest(cfg.sparse, cfg.seed));
  cfg.sparse.reduce = false;
  const auto b = core::run_experiment(cfg);
  EXPECT_EQ(u64_extra(b, "sparse_state_digest"),
            embed::reference_state_digest(cfg.sparse, cfg.seed));
  EXPECT_LT(extra(a, "sparse_rows_applied"), extra(b, "sparse_rows_applied"))
      << "coalescing must reduce apply work under zipfian skew";
}

TEST(EmbedE2E, PerTenantMetricsNamespacesAreReported) {
  const auto cfg = base_cfg(core::Backend::kSim);
  const auto r = core::run_experiment(cfg);
  std::int64_t emb_pushes = 0, ads_pushes = 0, emb_served = 0, ads_served = 0;
  for (const auto& [k, v] : r.counters) {
    if (k == "tenant.emb.pushes") emb_pushes = v;
    if (k == "tenant.ads.pushes") ads_pushes = v;
    if (k == "tenant.emb.service_units") emb_served = v;
    if (k == "tenant.ads.service_units") ads_served = v;
  }
  EXPECT_GT(emb_pushes, 0) << "tenant 'emb' metrics namespace missing";
  EXPECT_GT(ads_pushes, 0) << "tenant 'ads' metrics namespace missing";
  EXPECT_GT(emb_served, 0);
  EXPECT_GT(ads_served, 0);
}

}  // namespace
}  // namespace fluentps
