// Condition framework tests (Table III semantics + PSSP probability laws +
// regret bounds).
#include <gtest/gtest.h>

#include <cmath>

#include "ps/conditions.h"

namespace fluentps::ps {
namespace {

SyncView view_at(std::int64_t v_train, std::uint32_t n, std::uint32_t count_at_v) {
  SyncView v;
  v.v_train = v_train;
  v.num_workers = n;
  v.count_at_vtrain = count_at_v;
  v.fastest = v_train + 2;
  v.slowest = v_train - 1;
  return v;
}

TEST(Conditions, BspPullRequiresVtrainAhead) {
  const auto m = make_sync_model({.kind = "bsp"}, 4);
  Rng rng(1);
  EXPECT_FALSE(m.pull(PullCtx{0, 5, true}, view_at(5, 4, 0), rng));
  EXPECT_TRUE(m.pull(PullCtx{0, 5, true}, view_at(6, 4, 0), rng));
}

TEST(Conditions, AspPullAlwaysTrue) {
  const auto m = make_sync_model({.kind = "asp"}, 4);
  Rng rng(1);
  EXPECT_TRUE(m.pull(PullCtx{0, 1000000, true}, view_at(0, 4, 0), rng));
}

TEST(Conditions, SspPullBoundedByStaleness) {
  const auto m = make_sync_model({.kind = "ssp", .staleness = 3}, 4);
  Rng rng(1);
  EXPECT_TRUE(m.pull(PullCtx{0, 2, true}, view_at(0, 4, 0), rng));   // gap 2 < 3
  EXPECT_FALSE(m.pull(PullCtx{0, 3, true}, view_at(0, 4, 0), rng));  // gap 3 >= 3
  EXPECT_TRUE(m.pull(PullCtx{0, 3, true}, view_at(1, 4, 0), rng));   // gap 2 again
}

TEST(Conditions, SspWithZeroStalenessIsBsp) {
  const auto ssp0 = make_sync_model({.kind = "ssp", .staleness = 0}, 4);
  const auto bsp = make_sync_model({.kind = "bsp"}, 4);
  Rng r1(1), r2(1);
  for (std::int64_t p = 0; p < 5; ++p) {
    for (std::int64_t v = 0; v < 5; ++v) {
      EXPECT_EQ(ssp0.pull(PullCtx{0, p, true}, view_at(v, 4, 0), r1),
                bsp.pull(PullCtx{0, p, true}, view_at(v, 4, 0), r2));
    }
  }
}

TEST(Conditions, PushConditionCountsWorkers) {
  const auto m = make_sync_model({.kind = "ssp", .staleness = 2}, 4);
  EXPECT_FALSE(m.push(view_at(0, 4, 3)));
  EXPECT_TRUE(m.push(view_at(0, 4, 4)));
}

TEST(Conditions, DropStragglersPushNeedsOnlyNt) {
  const auto m = make_sync_model({.kind = "drop", .drop_nt = 3}, 4);
  EXPECT_FALSE(m.push(view_at(0, 4, 2)));
  EXPECT_TRUE(m.push(view_at(0, 4, 3)));
}

TEST(Conditions, DropStragglersDefaultNtIsTwoThirds) {
  const auto m = make_sync_model({.kind = "drop"}, 9);  // ceil(2*9/3) ~ 6
  EXPECT_FALSE(m.push(view_at(0, 9, 5)));
  EXPECT_TRUE(m.push(view_at(0, 9, 6)));
}

TEST(Conditions, PsspP1BehavesLikeSsp) {
  // P = 1: the coin always blocks; identical decisions to SSP.
  const auto pssp = make_sync_model({.kind = "pssp", .staleness = 3, .prob = 1.0}, 4);
  const auto ssp = make_sync_model({.kind = "ssp", .staleness = 3}, 4);
  Rng r1(2), r2(2);
  for (std::int64_t p = 0; p < 10; ++p) {
    for (std::int64_t v = 0; v <= p; ++v) {
      EXPECT_EQ(pssp.pull(PullCtx{0, p, true}, view_at(v, 4, 0), r1),
                ssp.pull(PullCtx{0, p, true}, view_at(v, 4, 0), r2))
          << "p=" << p << " v=" << v;
    }
  }
}

TEST(Conditions, PsspP0BehavesLikeAsp) {
  const auto pssp = make_sync_model({.kind = "pssp", .staleness = 3, .prob = 0.0}, 4);
  Rng rng(3);
  for (std::int64_t gap = 0; gap < 50; ++gap) {
    EXPECT_TRUE(pssp.pull(PullCtx{0, gap, true}, view_at(0, 4, 0), rng));
  }
}

TEST(Conditions, PsspBlocksAtRateC) {
  const auto pssp = make_sync_model({.kind = "pssp", .staleness = 3, .prob = 0.3}, 4);
  Rng rng(4);
  int blocked = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (!pssp.pull(PullCtx{0, 5, true}, view_at(0, 4, 0), rng)) ++blocked;
  }
  EXPECT_NEAR(static_cast<double>(blocked) / n, 0.3, 0.02);
}

TEST(Conditions, PsspRecheckNeverRerollsCoin) {
  // A buffered (non-initial) request passes only via the deterministic part.
  const auto pssp = make_sync_model({.kind = "pssp", .staleness = 3, .prob = 0.5}, 4);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(pssp.pull(PullCtx{0, 5, false}, view_at(0, 4, 0), rng));
  }
  EXPECT_TRUE(pssp.pull(PullCtx{0, 5, false}, view_at(3, 4, 0), rng));
}

TEST(Conditions, PsspConstantProbabilityLaw) {
  EXPECT_DOUBLE_EQ(pssp_constant_probability(3, 2, 0.7), 0.0);
  EXPECT_DOUBLE_EQ(pssp_constant_probability(3, 3, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(pssp_constant_probability(3, 30, 0.7), 0.7);
  EXPECT_DOUBLE_EQ(pssp_constant_probability(3, 5, 2.0), 1.0);  // clamped
}

TEST(Conditions, PsspDynamicProbabilityIsSigmoid) {
  // P(s,k) = alpha / (1 + e^(s-k)) for k >= s; P(s,s) = alpha/2.
  EXPECT_DOUBLE_EQ(pssp_dynamic_probability(3, 2, 1.0), 0.0);
  EXPECT_NEAR(pssp_dynamic_probability(3, 3, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(pssp_dynamic_probability(3, 4, 1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
  // Monotonically increasing in the gap.
  double prev = 0.0;
  for (std::int64_t k = 3; k < 20; ++k) {
    const double p = pssp_dynamic_probability(3, k, 0.8);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_LE(prev, 0.8);
}

TEST(Conditions, DynamicPsspBlocksFasterWorkersMore) {
  const auto m = make_sync_model({.kind = "pssp_dynamic", .staleness = 2, .alpha = 1.0}, 8);
  Rng rng(6);
  const int n = 20000;
  int blocked_near = 0, blocked_far = 0;
  for (int i = 0; i < n; ++i) {
    if (!m.pull(PullCtx{0, 2, true}, view_at(0, 8, 0), rng)) ++blocked_near;
    if (!m.pull(PullCtx{0, 8, true}, view_at(0, 8, 0), rng)) ++blocked_far;
  }
  EXPECT_NEAR(static_cast<double>(blocked_near) / n, 0.5, 0.02);
  EXPECT_GT(blocked_far, blocked_near * 1.5);
}

TEST(Conditions, DspsAdaptsStalenessToObservedGap) {
  SyncModelSpec spec;
  spec.kind = "dsps";
  spec.staleness = 2;
  spec.dsps_min_s = 1;
  spec.dsps_max_s = 10;
  spec.dsps_ema = 0.5;
  const auto m = make_sync_model(spec, 4);
  ASSERT_NE(m.adaptive_s, nullptr);
  Rng rng(7);
  // Feed views with a persistent gap of 6: s should climb toward 7.
  SyncView v = view_at(0, 4, 0);
  v.fastest = 6;
  v.slowest = 0;
  for (int i = 0; i < 50; ++i) (void)m.pull(PullCtx{0, 3, true}, v, rng);
  EXPECT_GE(*m.adaptive_s, 6);
  // Now a tight cluster: s should shrink.
  v.fastest = 1;
  for (int i = 0; i < 50; ++i) (void)m.pull(PullCtx{0, 0, true}, v, rng);
  EXPECT_LE(*m.adaptive_s, 3);
}

TEST(Conditions, LabelsAreDescriptive) {
  EXPECT_EQ(SyncModelSpec{.kind = "bsp"}.label(), "bsp");
  EXPECT_EQ((SyncModelSpec{.kind = "ssp", .staleness = 3}).label(), "ssp(s=3)");
  EXPECT_NE((SyncModelSpec{.kind = "pssp", .staleness = 3, .prob = 0.5}).label().find("pssp"),
            std::string::npos);
}

TEST(Conditions, UnknownKindAborts) {
  EXPECT_DEATH((void)make_sync_model({.kind = "quantum"}, 4), "unknown sync model");
}

TEST(RegretBounds, SspFormula) {
  // Eq 1: 4FL sqrt(2(s+1)N/T).
  EXPECT_NEAR(ssp_regret_bound(1.0, 1.0, 3, 8, 1000), 4.0 * std::sqrt(2.0 * 4 * 8 / 1000.0),
              1e-12);
}

TEST(RegretBounds, PsspEqualsSspAtEffectiveStaleness) {
  // Section III-E: constant PSSP(s, c) and SSP(s' = s + 1/c - 1) share the
  // bound 4FL sqrt(2(s + 1/c)N / T).
  const double F = 1.3, L = 0.7;
  const std::uint32_t N = 64;
  const std::int64_t T = 256000;
  struct Pair {
    std::int64_t s;
    double c;
    std::int64_t s_prime;
  };
  // The paper's experiment groups A..H: (3, 1/2)->4, (3, 1/3)->5, (3, 1/5)->7,
  // (3, 1/10)->12.
  for (const auto& [s, c, sp] : {Pair{3, 0.5, 4}, Pair{3, 1.0 / 3, 5}, Pair{3, 0.2, 7},
                                 Pair{3, 0.1, 12}}) {
    EXPECT_NEAR(pssp_regret_bound(F, L, s, c, N, T), ssp_regret_bound(F, L, sp, N, T), 1e-9)
        << "s=" << s << " c=" << c;
  }
}

TEST(RegretBounds, PsspTightensAsCGrows) {
  double prev = 1e9;
  for (const double c : {0.1, 0.3, 0.5, 0.9}) {
    const double b = pssp_regret_bound(1.0, 1.0, 3, c, 8, 10000);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

}  // namespace
}  // namespace fluentps::ps
