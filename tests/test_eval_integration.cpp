// Evaluation helpers and cross-backend integration checks.
#include <gtest/gtest.h>

#include "core/fluentps.h"
#include "ml/eval.h"

namespace fluentps {
namespace {

TEST(Eval, PerfectClassifierScoresOne) {
  // Construct a dataset and a softmax whose weights literally encode the
  // teacher's labels via a one-hot trick on a tiny, separable dataset.
  ml::DataSpec spec;
  spec.dim = 4;
  spec.num_classes = 2;
  spec.num_train = 64;
  spec.num_test = 64;
  spec.label_noise = 0.0;
  spec.seed = 21;
  const auto data = ml::Dataset::synthesize(spec);
  const auto model = ml::make_model({.kind = "mlp", .hidden = 32}, 4, 2);
  std::vector<float> w(model->num_params());
  Rng rng(3);
  model->init_params(w, rng);
  ml::Workspace ws;
  // Overfit the test split directly (legitimate here: we only check that
  // accuracy -> high and loss -> low when the model fits the data).
  std::vector<float> g(w.size());
  const ml::Batch all = data.test_batch(0, data.num_test());
  for (int i = 0; i < 300; ++i) {
    model->grad(w, all, g, ws);
    for (std::size_t j = 0; j < w.size(); ++j) w[j] -= 0.5f * g[j];
  }
  EXPECT_GT(ml::test_accuracy(*model, w, data, ws), 0.95);
  EXPECT_LT(ml::test_loss(*model, w, data, ws), 0.2);
}

TEST(Eval, BatchedEqualsUnbatched) {
  ml::DataSpec spec;
  spec.dim = 6;
  spec.num_classes = 3;
  spec.num_train = 32;
  spec.num_test = 100;  // not a multiple of the eval batch
  const auto data = ml::Dataset::synthesize(spec);
  const auto model = ml::make_model({.kind = "softmax"}, 6, 3);
  std::vector<float> w(model->num_params());
  Rng rng(4);
  model->init_params(w, rng);
  ml::Workspace ws;
  const double a7 = ml::test_accuracy(*model, w, data, ws, 7);
  const double a100 = ml::test_accuracy(*model, w, data, ws, 100);
  const double a256 = ml::test_accuracy(*model, w, data, ws, 256);
  EXPECT_DOUBLE_EQ(a7, a100);
  EXPECT_DOUBLE_EQ(a100, a256);
  EXPECT_NEAR(ml::test_loss(*model, w, data, ws, 7), ml::test_loss(*model, w, data, ws, 256),
              1e-9);
}

core::ExperimentConfig n1_config() {
  core::ExperimentConfig cfg;
  cfg.num_workers = 1;
  cfg.num_servers = 1;
  cfg.max_iters = 50;
  cfg.sync.kind = "bsp";
  cfg.model.kind = "softmax";
  cfg.data.num_train = 512;
  cfg.data.num_test = 256;
  cfg.opt.kind = "sgd";
  cfg.opt.lr.base = 0.3;
  cfg.batch_size = 16;
  cfg.seed = 9;
  return cfg;
}

TEST(CrossBackend, SingleWorkerBspBitIdentical) {
  // With N = M = 1 under BSP, both backends execute the same arithmetic in
  // the same order: final parameters must match exactly.
  auto cfg = n1_config();
  cfg.backend = core::Backend::kSim;
  const auto sim = core::run_experiment(cfg);
  cfg.backend = core::Backend::kThreads;
  const auto thr = core::run_experiment(cfg);
  ASSERT_EQ(sim.final_params.size(), thr.final_params.size());
  for (std::size_t i = 0; i < sim.final_params.size(); ++i) {
    ASSERT_EQ(sim.final_params[i], thr.final_params[i]) << "param " << i;
  }
  EXPECT_DOUBLE_EQ(sim.final_accuracy, thr.final_accuracy);
}

TEST(CrossBackend, BspMultiWorkerSameAccuracyBallpark) {
  // Multi-worker BSP applies the same per-iteration mean update in both
  // backends, but float summation order differs with arrival order; accuracy
  // must agree closely though bits may not.
  auto cfg = n1_config();
  cfg.num_workers = 4;
  cfg.num_servers = 2;
  cfg.max_iters = 80;
  cfg.backend = core::Backend::kSim;
  const auto sim = core::run_experiment(cfg);
  cfg.backend = core::Backend::kThreads;
  const auto thr = core::run_experiment(cfg);
  EXPECT_NEAR(sim.final_accuracy, thr.final_accuracy, 0.06);
}

TEST(Trace, RecordsRequestedIterations) {
  auto cfg = n1_config();
  cfg.num_workers = 3;
  cfg.max_iters = 20;
  cfg.trace_iters = 5;
  cfg.backend = core::Backend::kSim;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.trace.size(), 3u * 5u);
  for (const auto& t : r.trace) {
    EXPECT_LT(t.iter, 5);
    EXPECT_LE(t.compute_start, t.compute_end);
    EXPECT_LE(t.compute_end, t.sync_end);
  }
}

TEST(Trace, OffByDefault) {
  auto cfg = n1_config();
  cfg.backend = core::Backend::kSim;
  EXPECT_TRUE(core::run_experiment(cfg).trace.empty());
}

TEST(Trace, IterationsChainInTime) {
  auto cfg = n1_config();
  cfg.max_iters = 10;
  cfg.trace_iters = 10;
  cfg.backend = core::Backend::kSim;
  const auto r = core::run_experiment(cfg);
  // Single worker: iteration k+1's compute starts exactly at iteration k's
  // sync_end.
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.trace[i].compute_start, r.trace[i - 1].sync_end);
  }
}

TEST(Histogram, QuantileOneReturnsMax) {
  IntHistogram h(16);
  h.add(3);
  h.add(7);
  EXPECT_EQ(h.quantile(1.0), 7);
}

}  // namespace
}  // namespace fluentps
