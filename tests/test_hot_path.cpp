// Hot-path acceptance tests (DESIGN.md §8): zero-copy payload semantics,
// fixed-layout frame invariants, striped-shard bit-identity, and the
// batched-vs-per-message apply A/B across every synchronization model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/fluentps.h"
#include "net/frame_buffer.h"
#include "net/message.h"
#include "ps/striped_shard.h"

namespace fluentps {
namespace {

// ---------------------------------------------------------------- Payload --

TEST(Payload, OwnedLifecycle) {
  net::Payload p;
  EXPECT_TRUE(p.empty());
  p = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(p.size(), 3u);
  EXPECT_FALSE(p.borrowed());
  EXPECT_EQ(p, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  p[1] = 5.0f;
  EXPECT_FLOAT_EQ(p[1], 5.0f);
  p.resize(5, 9.0f);
  EXPECT_EQ(p.size(), 5u);
  EXPECT_FLOAT_EQ(p[4], 9.0f);
  auto v = p.take();  // moves owned storage out
  EXPECT_EQ(v.size(), 5u);
}

TEST(Payload, BorrowViewsCallerMemoryWithoutCopy) {
  std::vector<float> storage{1.0f, 2.0f, 3.0f, 4.0f};
  auto p = net::Payload::borrow(storage);
  EXPECT_TRUE(p.borrowed());
  EXPECT_EQ(p.data(), storage.data()) << "borrow must not copy";
  EXPECT_EQ(p.size(), 4u);
  // A borrowed take() copies (cannot steal caller memory).
  auto v = p.take();
  EXPECT_NE(v.data(), storage.data());
  EXPECT_EQ(v, storage);
}

TEST(Payload, EnsureOwnedMaterializesBorrowedViews) {
  std::vector<float> storage{7.0f, 8.0f};
  auto p = net::Payload::borrow(storage);
  p.ensure_owned();
  EXPECT_FALSE(p.borrowed());
  EXPECT_NE(p.data(), storage.data());
  storage.assign({0.0f, 0.0f});  // clobber the original; p must be unaffected
  EXPECT_EQ(p, (std::vector<float>{7.0f, 8.0f}));
}

TEST(Payload, MutableSpanResizedDropsBorrowAndOldContents) {
  std::vector<float> storage{1.0f, 2.0f};
  auto p = net::Payload::borrow(storage);
  auto span = p.mutable_span_resized(3);
  ASSERT_EQ(span.size(), 3u);
  EXPECT_FALSE(p.borrowed());
  span[0] = 4.0f;
  span[1] = 5.0f;
  span[2] = 6.0f;
  EXPECT_EQ(p, (std::vector<float>{4.0f, 5.0f, 6.0f}));
  EXPECT_EQ(storage[0], 1.0f) << "original storage untouched";
}

// ----------------------------------------------------------------- Frames --

net::Message sample_message(std::size_t n) {
  net::Message m;
  m.type = net::MsgType::kPush;
  m.src = 3;
  m.dst = 9;
  m.request_id = 0xABCDEF0123456789ull;
  m.seq = 42;
  m.progress = -7;
  m.worker_rank = 11;
  m.server_rank = 2;
  std::vector<float> vals(n);
  std::iota(vals.begin(), vals.end(), 0.5f);
  m.values = net::Payload(std::move(vals));
  return m;
}

TEST(Frame, SerializedSizeMatchesPredictionExactly) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{1024}}) {
    const auto m = sample_message(n);
    const auto frame = m.serialize();
    EXPECT_EQ(frame.size(), m.frame_bytes());
    EXPECT_EQ(static_cast<double>(frame.size()), m.wire_bytes())
        << "sim network cost model must charge the true frame size";
    EXPECT_EQ(frame.size(), net::kFrameHeaderBytes + 4 * n);
  }
}

TEST(Frame, SerializeIntoProducesIdenticalBytes) {
  const auto m = sample_message(257);
  const auto heap = m.serialize();
  net::FrameBuffer buf;
  const auto reused = m.serialize_into(buf);
  ASSERT_EQ(reused.size(), heap.size());
  EXPECT_EQ(std::memcmp(reused.data(), heap.data(), heap.size()), 0);
  // Second serialize reuses the same buffer (no growth needed).
  const auto* before = buf.data();
  (void)m.serialize_into(buf);
  EXPECT_EQ(buf.data(), before) << "FrameBuffer must not reallocate at steady state";
}

TEST(Frame, RoundTripPreservesEveryField) {
  const auto m = sample_message(33);
  const auto frame = m.serialize();
  net::Message out;
  ASSERT_TRUE(net::Message::deserialize(frame, &out));
  EXPECT_EQ(out.type, m.type);
  EXPECT_EQ(out.src, m.src);
  EXPECT_EQ(out.dst, m.dst);
  EXPECT_EQ(out.request_id, m.request_id);
  EXPECT_EQ(out.seq, m.seq);
  EXPECT_EQ(out.progress, m.progress);
  EXPECT_EQ(out.worker_rank, m.worker_rank);
  EXPECT_EQ(out.server_rank, m.server_rank);
  EXPECT_EQ(out.values, m.values);
  EXPECT_FALSE(out.values.borrowed()) << "deserialize() must own its payload";
}

TEST(Frame, DeserializeViewBorrowsAlignedPayloads) {
  const auto m = sample_message(64);
  const auto frame = m.serialize();  // 64-byte header: floats aligned whenever the frame is
  net::Message out;
  ASSERT_TRUE(net::Message::deserialize_view(frame, &out));
  EXPECT_EQ(out.values, m.values);
  ASSERT_EQ(reinterpret_cast<std::uintptr_t>(frame.data() + net::kFrameHeaderBytes) %
                alignof(float),
            0u);
  EXPECT_TRUE(out.values.borrowed());
  EXPECT_EQ(reinterpret_cast<const std::uint8_t*>(out.values.data()),
            frame.data() + net::kFrameHeaderBytes)
      << "aligned view deserialization must not copy the payload";
}

TEST(Frame, DeserializeViewCopiesWhenMisaligned) {
  const auto m = sample_message(8);
  const auto frame = m.serialize();
  std::vector<std::uint8_t> shifted(frame.size() + 1);
  std::memcpy(shifted.data() + 1, frame.data(), frame.size());
  const std::span<const std::uint8_t> view(shifted.data() + 1, frame.size());
  if (reinterpret_cast<std::uintptr_t>(view.data() + net::kFrameHeaderBytes) % alignof(float) ==
      0) {
    GTEST_SKIP() << "allocator produced an aligned offset; nothing to test";
  }
  net::Message out;
  ASSERT_TRUE(net::Message::deserialize_view(view, &out));
  EXPECT_FALSE(out.values.borrowed()) << "misaligned payloads must be copied, not viewed";
  EXPECT_EQ(out.values, m.values);
}

TEST(Frame, RejectsMalformedFrames) {
  const auto m = sample_message(4);
  auto frame = m.serialize();
  net::Message out;
  EXPECT_FALSE(net::Message::deserialize(frame.data(), net::kFrameHeaderBytes - 1, &out));
  EXPECT_FALSE(net::Message::deserialize(frame.data(), frame.size() - 1, &out))
      << "size must equal header + 4*count exactly";
  auto bad_type = frame;
  bad_type[0] = 0xEE;
  EXPECT_FALSE(net::Message::deserialize(bad_type, &out));
  auto bad_count = frame;
  const std::uint64_t huge = ~std::uint64_t{0} / 2;
  std::memcpy(bad_count.data() + 48, &huge, sizeof(huge));
  EXPECT_FALSE(net::Message::deserialize(bad_count, &out)) << "count overflow must be rejected";
}

// ----------------------------------------------------------- StripedShard --

std::vector<std::vector<float>> random_grads(std::size_t count, std::size_t n,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> grads(count, std::vector<float>(n));
  for (auto& g : grads) {
    for (auto& x : g) x = static_cast<float>(rng.normal());
  }
  return grads;
}

TEST(StripedShard, BatchedApplyBitIdenticalToSequential) {
  constexpr std::size_t kN = 1537;  // not a multiple of anything convenient
  const std::vector<std::size_t> slices{512, 512, 257, 256};
  Rng rng(11);
  std::vector<float> init(kN);
  for (auto& x : init) x = static_cast<float>(rng.normal());
  const auto grads = random_grads(9, kN, 13);

  // Reference: plain sequential per-message loop over a flat vector.
  std::vector<float> ref = init;
  for (const auto& g : grads) {
    for (std::size_t i = 0; i < kN; ++i) ref[i] += 0.125f * g[i];
  }

  for (const std::uint32_t stripes : {1u, 2u, 8u, 64u}) {
    ps::StripedShard shard(init, stripes, slices);
    std::vector<std::span<const float>> spans(grads.begin(), grads.end());
    shard.apply_batch(spans, 0.125f);
    const auto got = shard.snapshot();
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(got[i], ref[i]) << "stripes=" << stripes << " i=" << i;
    }
  }
}

TEST(StripedShard, SignificancePathMatchesLegacyFormula) {
  std::vector<float> init{3.0f, 4.0f};  // |w| = 5
  ps::StripedShard shard(init, 4);
  std::vector<float> g{0.0f, 10.0f};  // |g| = 10
  const double sf = shard.apply_exclusive_with_significance(g, 0.5f);
  EXPECT_DOUBLE_EQ(sf, 2.0);  // |g|/|w| against PRE-apply values
  const auto got = shard.snapshot();
  EXPECT_FLOAT_EQ(got[0], 3.0f);
  EXPECT_FLOAT_EQ(got[1], 9.0f);
}

TEST(StripedShard, CopyOutAndExclusiveAgree) {
  Rng rng(5);
  std::vector<float> init(777);
  for (auto& x : init) x = static_cast<float>(rng.normal());
  const ps::StripedShard shard(std::vector<float>(init), 8, {259, 259, 259});
  std::vector<float> out(init.size());
  shard.copy_out(out);
  EXPECT_EQ(out, init);
  shard.with_exclusive([&](std::span<const float> values) {
    ASSERT_EQ(values.size(), init.size());
    for (std::size_t i = 0; i < init.size(); ++i) ASSERT_EQ(values[i], init[i]);
  });
  EXPECT_LE(shard.num_stripes(), 3u) << "stripes never outnumber slices";
}

// ------------------------------------------------ batched == per-message --

core::ExperimentConfig ab_config(const char* sync, std::int64_t s, double prob) {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.num_workers = 6;
  cfg.num_servers = 2;
  cfg.max_iters = 50;
  cfg.sync.kind = sync;
  cfg.sync.staleness = s;
  cfg.sync.prob = prob;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 384;
  cfg.data.num_test = 96;
  cfg.batch_size = 8;
  cfg.compute.kind = "lognormal";
  cfg.compute.base_seconds = 0.01;
  cfg.seed = 4242;
  return cfg;
}

struct AbCase {
  const char* name;
  const char* sync;
  std::int64_t s;
  double prob;
};

class BatchedApplyAb : public ::testing::TestWithParam<AbCase> {};

/// The ISSUE's acceptance criterion: with a fixed seed, batched and
/// per-message applies produce bit-identical training for every sync model.
TEST_P(BatchedApplyAb, BitIdenticalAcrossSyncModes) {
  const auto& p = GetParam();
  auto cfg = ab_config(p.sync, p.s, p.prob);
  cfg.batch_pushes = true;
  cfg.apply_stripes = 8;
  const auto a = core::run_experiment(cfg);
  cfg.batch_pushes = false;
  cfg.apply_stripes = 1;
  const auto b = core::run_experiment(cfg);

  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.dpr_total, b.dpr_total);
  EXPECT_DOUBLE_EQ(a.bytes_total, b.bytes_total);
  EXPECT_EQ(a.messages, b.messages);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << p.name << " param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SyncModes, BatchedApplyAb,
    ::testing::Values(AbCase{"bsp", "bsp", 0, 0}, AbCase{"asp", "asp", 0, 0},
                      AbCase{"ssp", "ssp", 2, 0}, AbCase{"dsps", "dsps", 2, 0},
                      AbCase{"drop", "drop", 2, 0.25}, AbCase{"pssp", "pssp", 2, 0.5},
                      AbCase{"pssp_dynamic", "pssp_dynamic", 2, 0.5}),
    [](const ::testing::TestParamInfo<AbCase>& info) { return info.param.name; });

/// Thread backend (real concurrency, real flat combining): batching must not
/// change protocol outcomes — every push applied, training completes, and the
/// combiner's observability counters are coherent.
TEST(BatchedApply, ThreadBackendCompletesWithBatchingOnAndOff) {
  for (const bool batch : {true, false}) {
    auto cfg = ab_config("ssp", 2, 0);
    cfg.backend = core::Backend::kThreads;
    cfg.max_iters = 20;
    cfg.batch_pushes = batch;
    const auto r = core::run_experiment(cfg);
    EXPECT_EQ(r.iterations, cfg.max_iters);
    EXPECT_TRUE(std::isfinite(r.final_loss));
    ASSERT_FALSE(r.final_params.empty());
  }
}

// --------------------------------------------- lock-free ring == mutex --

/// Tentpole oracle (DESIGN.md §11): the lock-free ring handoff drains
/// bit-identically to the legacy mutex flat combiner under every
/// synchronization model — same accuracy, loss, traffic, and every final
/// parameter bit.
class CombinerHandoffAb : public ::testing::TestWithParam<AbCase> {};

TEST_P(CombinerHandoffAb, RingDrainBitIdenticalToMutexCombiner) {
  const auto& p = GetParam();
  auto cfg = ab_config(p.sync, p.s, p.prob);
  cfg.batch_pushes = true;
  cfg.lockfree_handoff = true;
  const auto a = core::run_experiment(cfg);
  cfg.lockfree_handoff = false;
  const auto b = core::run_experiment(cfg);

  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_DOUBLE_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.dpr_total, b.dpr_total);
  EXPECT_DOUBLE_EQ(a.bytes_total, b.bytes_total);
  EXPECT_EQ(a.messages, b.messages);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << p.name << " param " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SyncModes, CombinerHandoffAb,
    ::testing::Values(AbCase{"bsp", "bsp", 0, 0}, AbCase{"asp", "asp", 0, 0},
                      AbCase{"ssp", "ssp", 2, 0}, AbCase{"dsps", "dsps", 2, 0},
                      AbCase{"drop", "drop", 2, 0.25}, AbCase{"pssp", "pssp", 2, 0.5},
                      AbCase{"pssp_dynamic", "pssp_dynamic", 2, 0.5}),
    [](const ::testing::TestParamInfo<AbCase>& info) { return info.param.name; });

/// Thread backend with the full raw-speed configuration: lock-free handoff,
/// a dedicated pinned apply pool, first-touched stripes. Training must
/// complete with finite results in every pool shape.
TEST(CombinerHandoff, ThreadBackendPinnedApplyPoolCompletes) {
  for (const std::uint32_t threads : {0u, 1u, 3u}) {
    auto cfg = ab_config("ssp", 2, 0);
    cfg.backend = core::Backend::kThreads;
    cfg.max_iters = 20;
    cfg.lockfree_handoff = true;
    cfg.apply_threads = threads;
    cfg.pin_threads = true;
    const auto r = core::run_experiment(cfg);
    EXPECT_EQ(r.iterations, cfg.max_iters) << "apply_threads=" << threads;
    EXPECT_TRUE(std::isfinite(r.final_loss));
    ASSERT_FALSE(r.final_params.empty());
  }
}

}  // namespace
}  // namespace fluentps
