// Telemetry-subsystem tests (DESIGN.md §12): wait-free instrument semantics
// (bucket boundaries, per-thread cell aggregation under concurrent writers),
// span recording + cross-hop propagation through a replicated push, and the
// snapshotter's interval math. The concurrent cases double as the TSan CI
// workload for the obs layer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/fluentps.h"
#include "obs/snapshot.h"
#include "obs/span.h"
#include "obs/telemetry.h"

namespace fluentps {
namespace {

// --- histogram bucket layout ---------------------------------------------

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket 0 holds exactly {0}; bucket b in [1, 47] covers [2^(b-1), 2^b-1].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  for (std::uint32_t b = 0; b < obs::kHistBuckets; ++b) {
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_lo(b)), b);
    EXPECT_EQ(obs::Histogram::bucket_of(obs::Histogram::bucket_hi(b)), b);
  }
  // Every boundary pair is adjacent: hi(b) + 1 == lo(b + 1).
  for (std::uint32_t b = 0; b + 1 < obs::kHistBuckets; ++b) {
    EXPECT_EQ(obs::Histogram::bucket_hi(b) + 1, obs::Histogram::bucket_lo(b + 1));
  }
  // The last bucket absorbs everything up to u64 max.
  EXPECT_EQ(obs::Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            obs::kHistBuckets - 1);
  EXPECT_EQ(obs::Histogram::bucket_hi(obs::kHistBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ObsHistogram, RecordAndSnapshotMerge) {
  obs::Histogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  const obs::HistogramSnapshot a = h.snapshot();
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.sum, 11u);
  EXPECT_EQ(a.counts[0], 1u);
  EXPECT_EQ(a.counts[obs::Histogram::bucket_of(5)], 2u);

  obs::HistogramSnapshot b;
  b.counts[0] = 7;
  b.sum = 100;
  obs::HistogramSnapshot m = a;
  m.merge(b);
  EXPECT_EQ(m.total(), a.total() + 7u);
  EXPECT_EQ(m.sum, a.sum + 100u);
  EXPECT_EQ(m.counts[0], a.counts[0] + 7u);

  h.reset();
  EXPECT_EQ(h.snapshot().total(), 0u);
}

// --- per-thread cell aggregation under concurrent writers ----------------

TEST(ObsCounter, ConcurrentWritersAggregate) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("obs.test.concurrent");
  EXPECT_FALSE(c.touched());
  constexpr int kThreads = 8;
  constexpr std::int64_t kPerThread = 20000;
  std::vector<std::jthread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (std::int64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  ts.clear();  // join
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_TRUE(c.touched());
  c.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_FALSE(c.touched());
}

TEST(ObsHistogram, ConcurrentWritersAggregate) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::jthread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) + 1);
      }
    });
  }
  ts.clear();
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total(), kThreads * kPerThread);
  std::uint64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t) want_sum += (t + 1) * kPerThread;
  EXPECT_EQ(s.sum, want_sum);
}

TEST(ObsGauge, SetAndSetMax) {
  obs::Gauge g;
  EXPECT_FALSE(g.seen());
  g.set_max(3.0);  // first set_max installs v (initial is -inf)
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set(-5.0);  // plain set is last-writer-wins, may go down
  EXPECT_DOUBLE_EQ(g.value(), -5.0);
  EXPECT_TRUE(g.seen());
  g.reset();
  EXPECT_FALSE(g.seen());
}

// --- registry ------------------------------------------------------------

TEST(ObsRegistry, StableHandlesAndAllocationProof) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x.a");
  obs::Counter& a2 = reg.counter("x.a");
  EXPECT_EQ(&a, &a2) << "registration is find-or-create";
  const std::uint64_t allocs = reg.instrument_allocations();
  // Steady-state recording (and re-lookup) must not register anything new.
  for (int i = 0; i < 1000; ++i) {
    a.add(1);
    reg.counter("x.a").add(1);
  }
  reg.histogram("x.h").record(7);
  reg.gauge("x.g").set(1.0);
  const std::uint64_t after_new = reg.instrument_allocations();
  EXPECT_EQ(after_new, allocs + 2) << "one per new instrument, none per record";
  for (int i = 0; i < 1000; ++i) reg.histogram("x.h").record(7);
  EXPECT_EQ(reg.instrument_allocations(), after_new);
  // reset_values keeps the handles valid and the registrations counted.
  reg.reset_values();
  EXPECT_EQ(&reg.counter("x.a"), &a);
  EXPECT_EQ(reg.instrument_allocations(), after_new);
  EXPECT_EQ(a.value(), 0);
}

TEST(ObsRegistry, SnapshotsFilterUntouched) {
  obs::Registry reg;
  reg.counter("seen").add(0);  // touched even with delta 0
  reg.counter("unseen");       // registered, never recorded
  reg.gauge("g.seen").set(2.5);
  reg.gauge("g.unseen");
  reg.histogram("h.seen").record(1);
  reg.histogram("h.unseen");
  const auto cs = reg.counters();
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].first, "seen");
  const auto gs = reg.gauges();
  ASSERT_EQ(gs.size(), 1u);
  EXPECT_EQ(gs[0].first, "g.seen");
  const auto hs = reg.histograms();
  ASSERT_EQ(hs.size(), 1u);
  EXPECT_EQ(hs[0].first, "h.seen");
  EXPECT_EQ(reg.find_counter("unseen") != nullptr, true);
  EXPECT_EQ(reg.find_counter("never"), nullptr);
}

TEST(ObsRegistry, CounterSumPrefix) {
  obs::Registry reg;
  reg.counter("fault.drop").add(3);
  reg.counter("fault.dup").add(4);
  reg.counter("faults").add(100);  // shares the character prefix "fault"
  reg.counter("net.sent").add(9);
  EXPECT_EQ(reg.counter_sum_prefix("fault."), 7);
  EXPECT_EQ(reg.counter_sum_prefix("fault"), 107);
  EXPECT_EQ(reg.counter_sum_prefix("zzz"), 0);
  EXPECT_EQ(reg.counter_sum_prefix(""), 116);
}

// --- span recorder -------------------------------------------------------

TEST(ObsSpans, ConcurrentEmitDrainSorted) {
  obs::SpanRecorder rec;
  EXPECT_EQ(rec.next_span_id(), 1u) << "ids start at 1; 0 means none";
  EXPECT_EQ(rec.next_trace_id(), 1u);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::jthread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t now = obs::now_ns();
        rec.emit(rec.next_trace_id(), rec.next_span_id(), 0, "t", t, now, now + 5);
      }
    });
  }
  ts.clear();
  EXPECT_EQ(rec.allocations(), static_cast<std::uint64_t>(kThreads))
      << "one buffer registration per emitting thread, none per emit";
  EXPECT_EQ(rec.dropped(), 0u);
  const std::vector<obs::SpanRecord> all = rec.drain();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::uint32_t> span_ids;
  for (std::size_t i = 0; i < all.size(); ++i) {
    span_ids.insert(all[i].span_id);
    if (i > 0) {
      EXPECT_GE(all[i].start_ns, all[i - 1].start_ns) << "drain sorts";
    }
  }
  EXPECT_EQ(span_ids.size(), all.size()) << "span ids unique within a run";
}

TEST(ObsSpans, OverflowCountsDrops) {
  obs::SpanRecorder rec(/*capacity_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t now = obs::now_ns();
    rec.emit(1, rec.next_span_id(), 0, "x", 0, now, now);
  }
  EXPECT_EQ(rec.drain().size(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);
}

TEST(ObsSpans, PreEpochStampsClampToZero) {
  obs::SpanRecorder rec;
  rec.emit(1, 1, 0, "pre", 0, /*start_abs=*/0, /*end_abs=*/0);
  const auto all = rec.drain();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].start_ns, 0u);
  EXPECT_EQ(all[0].end_ns, 0u);
}

// --- snapshotter ---------------------------------------------------------

TEST(ObsSnapshotter, ExpectedIntervalsMath) {
  // Full intervals in the run plus the final stop() flush.
  EXPECT_EQ(obs::Snapshotter::expected_intervals(0, 250), 1u);
  EXPECT_EQ(obs::Snapshotter::expected_intervals(249, 250), 1u);
  EXPECT_EQ(obs::Snapshotter::expected_intervals(250, 250), 2u);
  EXPECT_EQ(obs::Snapshotter::expected_intervals(1000, 250), 5u);
  EXPECT_EQ(obs::Snapshotter::expected_intervals(1000, 0), 1001u)
      << "interval 0 clamps to 1 ms";
}

TEST(ObsSnapshotter, WritesIntervalDeltas) {
  const std::string path = ::testing::TempDir() + "/obs_snap_test.jsonl";
  std::remove(path.c_str());
  obs::Registry reg;
  {
    obs::Snapshotter snap(reg, /*interval_ms=*/20, path);
    snap.start();
    reg.counter("tick").add(5);
    std::this_thread::sleep_for(std::chrono::milliseconds(70));
    reg.counter("tick").add(2);
    snap.stop();
    EXPECT_GE(snap.intervals_written(), 2u) << "at least one tick + final flush";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::uint64_t lines = 0;
  std::int64_t tick_total = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    // Sum the "tick" deltas across intervals — they must add to the total.
    const auto pos = line.find("\"tick\":");
    if (pos != std::string::npos) {
      tick_total += std::stoll(line.substr(pos + 7));
    }
  }
  EXPECT_GE(lines, 2u);
  EXPECT_EQ(tick_total, 7);
  std::remove(path.c_str());
}

TEST(ObsSnapshotter, RenderJsonlOmitsZeroDeltas) {
  obs::HistogramSnapshot h;
  h.counts[3] = 2;
  h.sum = 10;
  const std::string line = obs::render_jsonl_interval(
      0, 0.5, 0.5, {{"a", 3}, {"z", 0}}, {{"g", 1.5}}, {{"h", h}});
  EXPECT_NE(line.find("\"a\":3"), std::string::npos);
  EXPECT_EQ(line.find("\"z\""), std::string::npos) << "zero deltas omitted";
  EXPECT_NE(line.find("\"g\":1.5"), std::string::npos);
  EXPECT_NE(line.find("\"h\""), std::string::npos);
}

TEST(ObsSnapshotter, RenderPrometheusSchema) {
  obs::Registry reg;
  reg.counter("net.sent").add(12);
  reg.counter("tenant.clicks.pushes").add(5);
  reg.gauge("worker.progress").set(40);
  reg.histogram("server.apply_ns").record(100);
  reg.histogram("server.apply_ns").record(100000);
  const std::string out =
      obs::render_prometheus(reg, {{"sync", "bsp"}, {"seed", "1"}});
  EXPECT_NE(out.find("fluentps_net_sent{sync=\"bsp\",seed=\"1\"} 12"),
            std::string::npos);
  EXPECT_NE(out.find("fluentps_tenant_pushes{tenant=\"clicks\",sync=\"bsp\","
                     "seed=\"1\"} 5"),
            std::string::npos)
      << "tenant.<name>.* splits the tenant into a label";
  EXPECT_NE(out.find("fluentps_worker_progress"), std::string::npos);
  EXPECT_NE(out.find("fluentps_server_apply_ns_bucket"), std::string::npos);
  EXPECT_NE(out.find("le=\"+Inf\"} 2"), std::string::npos)
      << "+Inf bucket is cumulative over all records";
  EXPECT_NE(out.find("fluentps_server_apply_ns_sum{sync=\"bsp\",seed=\"1\"} 100100"),
            std::string::npos);
  EXPECT_NE(out.find("fluentps_server_apply_ns_count{sync=\"bsp\",seed=\"1\"} 2"),
            std::string::npos);
}

// --- cross-hop span propagation (3-hop replicated push, thread backend) ---

TEST(ObsSpansE2E, ReplicatedPushTracesHopByHop) {
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kThreads;
  cfg.num_workers = 2;
  cfg.num_servers = 2;
  cfg.max_iters = 10;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 256;
  cfg.data.num_test = 64;
  cfg.batch_size = 16;
  cfg.seed = 3;
  cfg.sync.kind = "bsp";
  cfg.replication_factor = 3;  // head + 2 replicas: a 3-hop chain
  cfg.telemetry.enabled = true;
  cfg.telemetry.interval_ms = 0;  // spans only; no snapshotter thread
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  ASSERT_FALSE(r.spans.empty());

  // Index every span; group by trace.
  std::map<std::uint32_t, const obs::SpanRecord*> by_span;
  std::map<std::uint64_t, std::vector<const obs::SpanRecord*>> by_trace;
  for (const obs::SpanRecord& s : r.spans) {
    EXPECT_NE(s.trace_id, 0u);
    EXPECT_NE(s.span_id, 0u);
    EXPECT_TRUE(by_span.emplace(s.span_id, &s).second)
        << "span ids unique across the run";
    by_trace[s.trace_id].push_back(&s);
  }

  // Every non-root span's parent must exist in the same trace, and the
  // chain from any hop must walk back to the worker.push root.
  std::uint64_t full_chains = 0;
  for (const auto& [trace, spans] : by_trace) {
    std::set<std::string> names;
    for (const obs::SpanRecord* s : spans) {
      names.insert(s->name);
      if (s->parent_id == 0) {
        EXPECT_STREQ(s->name, "worker.push") << "only the worker roots a trace";
        continue;
      }
      const auto it = by_span.find(s->parent_id);
      ASSERT_NE(it, by_span.end()) << s->name << ": dangling parent";
      EXPECT_EQ(it->second->trace_id, trace) << "parents never cross traces";
    }
    if (names.contains("replica.apply") && names.contains("tail.ack")) {
      // A fully replicated round trip: all hops present.
      for (const char* hop :
           {"worker.push", "server.enqueue", "combiner.drain", "stripe.apply",
            "replicate", "replica.apply", "tail.ack", "worker.ack"}) {
        EXPECT_TRUE(names.contains(hop)) << "missing hop " << hop;
      }
      // r=3 chain: the push is applied on the head + 2 replicas.
      std::uint64_t applies = 0;
      std::set<std::uint32_t> nodes;
      for (const obs::SpanRecord* s : spans) {
        if (std::string(s->name) == "replica.apply") {
          ++applies;
          nodes.insert(s->node);
        }
      }
      EXPECT_EQ(applies, 2u) << "one replica.apply per non-head chain node";
      EXPECT_EQ(nodes.size(), 2u) << "each on a distinct replica node";
      ++full_chains;
    }
  }
  EXPECT_GT(full_chains, 0u) << "at least one fully traced replicated push";
  // Debug-build proof that hot-path recording never allocates: the only
  // allocations are per-thread buffer registrations + instrument creation,
  // both bounded and counted.
  ASSERT_TRUE(r.extra.contains("telemetry_span_allocs"));
  ASSERT_TRUE(r.extra.contains("telemetry_instrument_allocs"));
  EXPECT_GT(r.extra.at("telemetry_span_allocs"), 0.0);
  EXPECT_LT(r.extra.at("telemetry_span_allocs"), 64.0)
      << "bounded by thread count, not by span count";
}

}  // namespace
}  // namespace fluentps
