// Unit tests for the DES kernel, compute-time models and network model.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/compute_model.h"
#include "sim/network_model.h"
#include "sim/sim_env.h"

namespace fluentps::sim {
namespace {

TEST(SimEnv, EventsRunInTimeOrder) {
  SimEnv env;
  std::vector<int> order;
  env.schedule(3.0, [&] { order.push_back(3); });
  env.schedule(1.0, [&] { order.push_back(1); });
  env.schedule(2.0, [&] { order.push_back(2); });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(env.now(), 3.0);
}

TEST(SimEnv, EqualTimesRunInInsertionOrder) {
  SimEnv env;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    env.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  env.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimEnv, NestedScheduling) {
  SimEnv env;
  double inner_time = -1.0;
  env.schedule(1.0, [&] {
    env.schedule(0.5, [&] { inner_time = env.now(); });
  });
  env.run();
  EXPECT_DOUBLE_EQ(inner_time, 1.5);
}

TEST(SimEnv, NegativeDelayClampsToNow) {
  SimEnv env;
  double t = -1.0;
  env.schedule(1.0, [&] {
    env.schedule(-5.0, [&] { t = env.now(); });
  });
  env.run();
  EXPECT_DOUBLE_EQ(t, 1.0);
}

TEST(SimEnv, RunUntilStopsAtBoundary) {
  SimEnv env;
  int ran = 0;
  env.schedule(1.0, [&] { ++ran; });
  env.schedule(2.0, [&] { ++ran; });
  env.schedule(5.0, [&] { ++ran; });
  const auto n = env.run_until(2.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_DOUBLE_EQ(env.now(), 2.0);
  EXPECT_EQ(env.pending(), 1u);
}

TEST(SimEnv, StepReturnsFalseWhenEmpty) {
  SimEnv env;
  EXPECT_FALSE(env.step());
  env.schedule(0.0, [] {});
  EXPECT_TRUE(env.step());
  EXPECT_FALSE(env.step());
  EXPECT_EQ(env.events_executed(), 1u);
}

TEST(ComputeModel, FixedIsConstant) {
  FixedCompute m(0.25);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(m.sample(0, i, rng), 0.25);
}

TEST(ComputeModel, UniformWithinBounds) {
  UniformCompute m(1.0, 0.2);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double t = m.sample(0, i, rng);
    EXPECT_GE(t, 0.8);
    EXPECT_LE(t, 1.2);
  }
}

TEST(ComputeModel, LogNormalMedianNearBase) {
  LogNormalCompute m(0.5, 0.3);
  Rng rng(3);
  std::vector<double> xs(10001);
  for (auto& x : xs) x = m.sample(0, 0, rng);
  std::nth_element(xs.begin(), xs.begin() + 5000, xs.end());
  EXPECT_NEAR(xs[5000], 0.5, 0.03);
}

TEST(ComputeModel, TransientStragglerFrequency) {
  TransientStraggler m(std::make_unique<FixedCompute>(1.0), 0.1, 10.0);
  Rng rng(4);
  int slow = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (m.sample(0, i, rng) > 5.0) ++slow;
  }
  EXPECT_NEAR(static_cast<double>(slow) / n, 0.1, 0.01);
}

TEST(ComputeModel, PersistentStragglerOnlySlowsListed) {
  PersistentStraggler m(std::make_unique<FixedCompute>(1.0), {2, 5}, 4.0);
  Rng rng(5);
  EXPECT_DOUBLE_EQ(m.sample(0, 0, rng), 1.0);
  EXPECT_DOUBLE_EQ(m.sample(2, 0, rng), 4.0);
  EXPECT_DOUBLE_EQ(m.sample(5, 0, rng), 4.0);
  EXPECT_DOUBLE_EQ(m.sample(6, 0, rng), 1.0);
}

TEST(ComputeModel, HeterogeneousFactorsArePersistent) {
  HeterogeneousCompute m(1.0, 0.0, 0.3, 0.0, 1.0, 8, /*seed=*/5);
  Rng rng(1);
  // sigma = 0 and no spikes: time = base * factor exactly, every iteration.
  for (std::uint32_t w = 0; w < 8; ++w) {
    const double t0 = m.sample(w, 0, rng);
    EXPECT_DOUBLE_EQ(t0, m.factor(w));
    EXPECT_DOUBLE_EQ(m.sample(w, 100, rng), t0) << "factor must persist across iterations";
  }
}

TEST(ComputeModel, HeterogeneousFactorsDifferAcrossWorkers) {
  HeterogeneousCompute m(1.0, 0.0, 0.3, 0.0, 1.0, 16, 7);
  double lo = 1e9, hi = 0.0;
  for (std::uint32_t w = 0; w < 16; ++w) {
    lo = std::min(lo, m.factor(w));
    hi = std::max(hi, m.factor(w));
  }
  EXPECT_GT(hi / lo, 1.2) << "persistent pace spread expected";
}

TEST(ComputeModel, HeterogeneousDeterministicInSeed) {
  HeterogeneousCompute a(1.0, 0.1, 0.3, 0.0, 1.0, 4, 11);
  HeterogeneousCompute b(1.0, 0.1, 0.3, 0.0, 1.0, 4, 11);
  for (std::uint32_t w = 0; w < 4; ++w) EXPECT_DOUBLE_EQ(a.factor(w), b.factor(w));
}

TEST(ComputeModel, FactoryBuildsEveryKind) {
  for (const char* kind :
       {"fixed", "uniform", "lognormal", "transient", "persistent", "heterogeneous"}) {
    ComputeModelSpec spec;
    spec.kind = kind;
    auto m = make_compute_model(spec, 8);
    ASSERT_NE(m, nullptr) << kind;
    Rng rng(6);
    EXPECT_GT(m->sample(0, 0, rng), 0.0) << kind;
  }
}

TEST(NetworkModel, SingleMessageDelay) {
  NetworkSpec spec;
  spec.latency_seconds = 0.001;
  spec.bandwidth_bytes_per_sec = 1e6;
  NetworkModel net(spec, 2);
  // 1000 bytes: tx = 1ms egress + 1ms ingress + 1ms latency = 3ms.
  const SimTime t = net.deliver(0, 1, 1000.0, 0.0);
  EXPECT_NEAR(t, 0.003, 1e-12);
  EXPECT_DOUBLE_EQ(net.total_bytes(), 1000.0);
}

TEST(NetworkModel, EgressSerializesBackToBackSends) {
  NetworkSpec spec;
  spec.latency_seconds = 0.0;
  spec.bandwidth_bytes_per_sec = 1e6;
  NetworkModel net(spec, 3);
  const SimTime t1 = net.deliver(0, 1, 1000.0, 0.0);
  const SimTime t2 = net.deliver(0, 2, 1000.0, 0.0);  // waits for egress of first
  EXPECT_NEAR(t1, 0.002, 1e-12);
  EXPECT_NEAR(t2, 0.003, 1e-12);
}

TEST(NetworkModel, IngressContentionCreatesHotspot) {
  NetworkSpec spec;
  spec.latency_seconds = 0.0;
  spec.bandwidth_bytes_per_sec = 1e6;
  NetworkModel net(spec, 9);
  // 8 distinct senders hit node 8 simultaneously: deliveries serialize on the
  // receiver's ingress link.
  SimTime last = 0.0;
  for (std::uint32_t src = 0; src < 8; ++src) {
    last = std::max(last, net.deliver(src, 8, 1000.0, 0.0));
  }
  EXPECT_NEAR(last, 0.001 + 8 * 0.001, 1e-9);
  EXPECT_NEAR(net.ingress_busy_seconds(8), 0.008, 1e-12);
}

TEST(NetworkModel, PerNodeBandwidthOverride) {
  NetworkSpec spec;
  spec.latency_seconds = 0.0;
  spec.bandwidth_bytes_per_sec = 1e6;
  NetworkModel net(spec, 2);
  net.set_node_bandwidth(1, 2e6);  // receiver twice as fast
  const SimTime t = net.deliver(0, 1, 1000.0, 0.0);
  EXPECT_NEAR(t, 0.001 + 0.0005, 1e-12);
}

TEST(NetworkModel, LaterSendUsesFreeLink) {
  NetworkSpec spec;
  spec.latency_seconds = 0.0;
  spec.bandwidth_bytes_per_sec = 1e6;
  NetworkModel net(spec, 2);
  (void)net.deliver(0, 1, 1000.0, 0.0);
  // Sent long after the first completed: no queueing.
  const SimTime t = net.deliver(0, 1, 1000.0, 1.0);
  EXPECT_NEAR(t, 1.002, 1e-9);
}

}  // namespace
}  // namespace fluentps::sim
