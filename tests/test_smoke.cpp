// End-to-end smoke: a tiny experiment runs on both backends and learns
// something (accuracy well above chance on a 10-class task).
#include <gtest/gtest.h>

#include "core/fluentps.h"

namespace fluentps {
namespace {

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig cfg;
  cfg.num_workers = 4;
  cfg.num_servers = 2;
  cfg.max_iters = 120;
  cfg.sync.kind = "ssp";
  cfg.sync.staleness = 2;
  cfg.dpr_mode = ps::DprMode::kLazy;
  cfg.model.kind = "softmax";
  cfg.data.num_train = 2048;
  cfg.data.num_test = 512;
  cfg.opt.kind = "sgd";
  cfg.opt.lr.base = 0.5;
  cfg.batch_size = 32;
  cfg.compute.kind = "lognormal";
  cfg.compute.base_seconds = 0.01;
  cfg.seed = 7;
  return cfg;
}

TEST(Smoke, SimBackendLearns) {
  auto cfg = tiny_config();
  cfg.backend = core::Backend::kSim;
  const auto result = core::run_experiment(cfg);
  EXPECT_EQ(result.iterations, cfg.max_iters);
  EXPECT_GT(result.total_time, 0.0);
  EXPECT_GT(result.final_accuracy, 0.3) << "10-class chance is 0.1";
}

TEST(Smoke, ThreadBackendLearns) {
  auto cfg = tiny_config();
  cfg.backend = core::Backend::kThreads;
  const auto result = core::run_experiment(cfg);
  EXPECT_EQ(result.iterations, cfg.max_iters);
  EXPECT_GT(result.final_accuracy, 0.3);
}

TEST(Smoke, SimIsDeterministic) {
  auto cfg = tiny_config();
  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.dpr_total, b.dpr_total);
}

}  // namespace
}  // namespace fluentps
