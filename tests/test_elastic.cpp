// Elastic membership subsystem tests (DESIGN.md §14): schedule parsing and
// validation, the Membership epoch state machine, active-set replanning, and
// end-to-end mid-run scale-out/in on both backends — including the acceptance
// oracle that an add + drain under a faulty transport loses nothing (final
// parameters bit-identical to the fault-free static-membership run) and that
// the sim stays bit-deterministic across epoch changes.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "core/fluentps.h"
#include "elastic/membership.h"
#include "elastic/planner.h"
#include "embed/table_spec.h"

namespace fluentps {
namespace {

// ---------------------------------------------------------------------------
// Schedule parsing + derived park rounds.
// ---------------------------------------------------------------------------

TEST(ElasticParse, AcceptsOpsAndRoundPins) {
  std::vector<elastic::ElasticOp> ops;
  ASSERT_TRUE(elastic::parse_schedule("add:3@40,drain:1@80/7;add:1@90", &ops));
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_TRUE(ops[0].add);
  EXPECT_EQ(ops[0].rank, 3u);
  EXPECT_EQ(ops[0].at_iter, 40);
  EXPECT_EQ(ops[0].at_round, -1) << "unpinned round stays derived";
  EXPECT_FALSE(ops[1].add);
  EXPECT_EQ(ops[1].rank, 1u);
  EXPECT_EQ(ops[1].at_iter, 80);
  EXPECT_EQ(ops[1].at_round, 7);
  EXPECT_TRUE(ops[2].add);
}

TEST(ElasticParse, EmptyScheduleIsValid) {
  std::vector<elastic::ElasticOp> ops{elastic::ElasticOp{}};
  ASSERT_TRUE(elastic::parse_schedule("", &ops));
  EXPECT_TRUE(ops.empty()) << "parse clears the output vector";
}

TEST(ElasticParse, RejectsMalformedTokens) {
  std::vector<elastic::ElasticOp> ops;
  for (const char* bad : {"add3@40", "grow:3@40", "add:3", "add:x@40", "add:3@",
                          "add:3@4x", "add:3@40/", "add:3@40/x", ":3@40"}) {
    EXPECT_FALSE(elastic::parse_schedule(bad, &ops)) << bad;
  }
}

TEST(ElasticParse, ParkRoundDerivesProportionally) {
  elastic::ElasticOp op;
  op.at_iter = 40;
  EXPECT_EQ(elastic::park_round_of(op, /*max_iters=*/80, /*rounds=*/10), 5);
  op.at_iter = 1;
  EXPECT_EQ(elastic::park_round_of(op, 80, 10), 1) << "never round 0";
  op.at_round = 7;
  EXPECT_EQ(elastic::park_round_of(op, 80, 10), 7) << "explicit pin wins";
}

// ---------------------------------------------------------------------------
// Membership state machine.
// ---------------------------------------------------------------------------

TEST(Membership, InitialViewActivatesPrefix) {
  const elastic::Membership all(4, 0);
  EXPECT_EQ(all.view().num_active(), 4u);
  const elastic::Membership some(4, 3);
  EXPECT_EQ(some.epoch(), 0u);
  EXPECT_EQ(some.view().num_active(), 3u);
  EXPECT_TRUE(some.is_active(2));
  EXPECT_FALSE(some.is_active(3));
}

TEST(Membership, CommitAppliesOpsAndNumbersEpochs) {
  elastic::Membership m(4, 3);
  elastic::ElasticOp add;
  add.add = true;
  add.rank = 3;
  const auto after_add = m.active_after(add);
  EXPECT_EQ(after_add, (std::vector<char>{1, 1, 1, 1}));
  m.commit(add, {});
  EXPECT_EQ(m.epoch(), 1u);
  EXPECT_TRUE(m.is_active(3));

  elastic::ElasticOp drain;
  drain.add = false;
  drain.rank = 1;
  m.commit(drain, {});
  EXPECT_EQ(m.epoch(), 2u);
  EXPECT_FALSE(m.is_active(1));
  EXPECT_EQ(m.view().num_active(), 3u);
}

TEST(Membership, RejectsInvalidOps) {
  elastic::Membership m(2, 1);
  elastic::ElasticOp bad_add;
  bad_add.add = true;
  bad_add.rank = 0;  // already active
  EXPECT_DEATH((void)m.active_after(bad_add), "already active");
  elastic::ElasticOp bad_drain;
  bad_drain.add = false;
  bad_drain.rank = 1;  // not active
  EXPECT_DEATH((void)m.active_after(bad_drain), "not active");
  elastic::ElasticOp last;
  last.add = false;
  last.rank = 0;  // would leave zero active
  EXPECT_DEATH((void)m.active_after(last), "zero active");
}

TEST(ElasticValidate, RejectsIncompatibleConfigs) {
  elastic::ElasticSpec spec;
  spec.initial_servers = 1;
  EXPECT_DEATH(
      elastic::validate_spec(spec, /*fluentps_arch=*/false, true, false, 1, 100, 0),
      "FluentPS architecture");
  EXPECT_DEATH(elastic::validate_spec(spec, true, /*crash_free=*/false, false, 1, 100, 0),
               "crash schedules");
  spec.lead_iters = -1;
  EXPECT_DEATH(elastic::validate_spec(spec, true, true, false, 1, 100, 0), "lead_iters");
  spec.lead_iters = 5;
  elastic::ElasticOp op;
  op.at_iter = 100;  // outside [1, max_iters)
  spec.schedule.push_back(op);
  EXPECT_DEATH(elastic::validate_spec(spec, true, true, false, 1, 100, 0), "outside");
}

// ---------------------------------------------------------------------------
// Active-set replanning.
// ---------------------------------------------------------------------------

/// Multiset of (offset, length) across every shard: replanning must permute
/// placement, never the slice geometry itself.
std::map<std::pair<std::size_t, std::size_t>, int> slice_multiset(const ps::Sharding& sh) {
  std::map<std::pair<std::size_t, std::size_t>, int> out;
  for (const auto& shard : sh.shards) {
    for (const auto& s : shard.slices) ++out[{s.offset, s.length}];
  }
  return out;
}

TEST(ElasticPlanner, DrainReplanEmptiesSlotAndConserves) {
  ps::EpsSlicer slicer(64);
  const auto old = slicer.shard({400, 120, 30}, 4);
  const auto plan = elastic::replan(old, {1, 0, 1, 1});  // drain slot 1
  ASSERT_EQ(plan.sharding.shards.size(), 4u);
  plan.sharding.validate();
  EXPECT_TRUE(plan.sharding.shards[1].slices.empty()) << "drained slot owns nothing";
  EXPECT_EQ(slice_multiset(plan.sharding), slice_multiset(old)) << "slices conserved";
  // Every slice the drained slot owned appears exactly once in the plan.
  std::size_t moved_from_1 = 0;
  for (const auto& mv : plan.moves) {
    EXPECT_NE(mv.from_server, mv.to_server);
    EXPECT_NE(mv.to_server, 1u) << "nothing may move onto the drained slot";
    if (mv.from_server == 1) ++moved_from_1;
  }
  EXPECT_EQ(moved_from_1, old.shards[1].slices.size());
}

TEST(ElasticPlanner, AddReplanPopulatesJoiningSlot) {
  ps::EpsSlicer slicer(32);
  const auto seed = slicer.shard({400, 120}, 3);
  const auto old = elastic::expand_to_slots(seed, 4);
  ASSERT_EQ(old.shards.size(), 4u);
  ASSERT_TRUE(old.shards[3].slices.empty());
  const auto plan = elastic::replan(old, {1, 1, 1, 1});  // add slot 3
  plan.sharding.validate();
  EXPECT_FALSE(plan.sharding.shards[3].slices.empty()) << "joining slot takes load";
  EXPECT_EQ(slice_multiset(plan.sharding), slice_multiset(old));
  for (const auto& mv : plan.moves) EXPECT_EQ(mv.to_server, 3u);
  EXPECT_EQ(plan.moves.size(), plan.sharding.shards[3].slices.size());
}

TEST(ElasticPlanner, MovesReferenceSlicesPresentAtTheirSource) {
  ps::EpsSlicer slicer(16);
  const auto old = slicer.shard({300, 50, 20}, 3);
  const auto plan = elastic::replan(old, {1, 1, 0});
  for (const auto& mv : plan.moves) {
    bool found = false;
    for (const auto& s : old.shards[mv.from_server].slices) {
      if (s.offset == mv.slice.offset && s.length == mv.slice.length) found = true;
    }
    EXPECT_TRUE(found) << "move references a slice its source never owned";
  }
}

// ---------------------------------------------------------------------------
// End-to-end scale-out/in through the runtimes.
// ---------------------------------------------------------------------------

core::ExperimentConfig elastic_config(core::Backend backend, std::uint32_t workers) {
  core::ExperimentConfig cfg;
  cfg.backend = backend;
  cfg.arch = core::Arch::kFluentPS;
  cfg.num_workers = workers;
  cfg.num_servers = 4;
  cfg.max_iters = 40;
  cfg.sync.kind = "bsp";
  cfg.model.kind = "softmax";
  cfg.data.num_train = 128;
  cfg.data.num_test = 32;
  cfg.batch_size = 8;
  cfg.eps_chunk = 64;  // enough chunks that add AND drain both move slices
  cfg.compute.kind = "lognormal";
  cfg.compute.base_seconds = 0.01;
  cfg.seed = 77;
  cfg.retry.initial_timeout = 0.02;
  cfg.retry.max_timeout = 0.3;
  cfg.elastic.initial_servers = 3;
  elastic::ElasticOp add;
  add.at_iter = 15;
  add.add = true;
  add.rank = 3;
  elastic::ElasticOp drain;
  drain.at_iter = 30;
  drain.add = false;
  drain.rank = 1;
  cfg.elastic.schedule = {add, drain};
  return cfg;
}

void add_link_faults(core::ExperimentConfig& cfg) {
  cfg.faults.link.drop_prob = 0.05;
  cfg.faults.link.dup_prob = 0.05;
  cfg.faults.link.delay_prob = 0.1;
  cfg.faults.link.delay_seconds = 0.004;
}

void expect_bit_identical(const core::ExperimentResult& a, const core::ExperimentResult& b) {
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i) {
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << "param " << i;
  }
}

class ElasticE2E : public ::testing::TestWithParam<core::Backend> {};

TEST_P(ElasticE2E, SerialOracleSurvivesAddAndDrainUnderFaults) {
  // Acceptance oracle: N = 1 fixes the total apply order, so zero lost
  // updates means final parameters bit-identical to the static-membership
  // fault-free run — even though two epochs of migrations and a lossy,
  // duplicating link sit in between. Element-wise SGD makes the update
  // arithmetic placement-invariant.
  auto oracle_cfg = elastic_config(GetParam(), /*workers=*/1);
  oracle_cfg.elastic = {};
  oracle_cfg.force_reliability = true;
  const auto oracle = core::run_experiment(oracle_cfg);
  EXPECT_EQ(oracle.elastic_epoch, 0);

  auto cfg = elastic_config(GetParam(), /*workers=*/1);
  add_link_faults(cfg);
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  EXPECT_EQ(r.elastic_epoch, 2);
  EXPECT_GE(r.elastic_migrations, 1);
  EXPECT_GT(r.elastic_bytes_moved, 0);
  expect_bit_identical(oracle, r);
}

TEST_P(ElasticE2E, MidRunAddDrainCompletesWithFaultyFabric) {
  auto cfg = elastic_config(GetParam(), /*workers=*/4);
  add_link_faults(cfg);
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  EXPECT_EQ(r.elastic_epoch, 2);
  EXPECT_GE(r.elastic_migrations, 1);
  EXPECT_GT(r.dropped + r.duplicated + r.delayed, 0) << "fault plan must actually fire";
  for (const float v : r.final_params) ASSERT_TRUE(std::isfinite(v));
  const auto it = r.extra.find("elastic_active_servers");
  ASSERT_NE(it, r.extra.end());
  EXPECT_DOUBLE_EQ(it->second, 3.0) << "add then drain lands on 3 active slots";
}

TEST_P(ElasticE2E, SparseTablesFollowTheEpoch) {
  auto cfg = elastic_config(GetParam(), /*workers=*/2);
  cfg.max_iters = 48;
  cfg.elastic.schedule[0].at_iter = 16;
  cfg.elastic.schedule[1].at_iter = 32;
  cfg.sparse.tables = embed::parse_tables("emb:dim=8,rows=64;ads:dim=4,rows=32");
  cfg.sparse.num_workers = 2;
  cfg.sparse.rounds = 12;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, cfg.max_iters);
  EXPECT_EQ(r.elastic_epoch, 2);
  const auto rows = r.extra.find("elastic_rows_moved");
  ASSERT_NE(rows, r.extra.end());
  EXPECT_GT(rows->second, 0.0) << "the drained slot's rows must migrate";
  const auto pushes = r.extra.find("sparse_pushes");
  ASSERT_NE(pushes, r.extra.end());
  EXPECT_GT(pushes->second, 0.0);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, ElasticE2E,
                         ::testing::Values(core::Backend::kSim, core::Backend::kThreads),
                         [](const ::testing::TestParamInfo<core::Backend>& info) {
                           return info.param == core::Backend::kSim ? "sim" : "threads";
                         });

TEST(ElasticDeterminism, SimBitIdenticalAcrossEpochChanges) {
  // Two runs of the same faulty elastic schedule must agree on every number:
  // the controller keys on virtual time and the global op index only.
  auto cfg = elastic_config(core::Backend::kSim, /*workers=*/4);
  add_link_faults(cfg);
  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.worker_retries, b.worker_retries);
  EXPECT_EQ(a.server_dedup_hits, b.server_dedup_hits);
  EXPECT_EQ(a.elastic_migrations, b.elastic_migrations);
  EXPECT_EQ(a.elastic_bytes_moved, b.elastic_bytes_moved);
  EXPECT_DOUBLE_EQ(a.elastic_stall_seconds, b.elastic_stall_seconds);
  EXPECT_DOUBLE_EQ(a.elastic_migrate_seconds, b.elastic_migrate_seconds);
  expect_bit_identical(a, b);
}

TEST(ElasticDeterminism, ReplicatedChainsSurviveTheEpochChange) {
  // Chain replication + elastic: the changed slots' replicas adopt the
  // post-epoch state, and the run still matches its own re-execution.
  auto cfg = elastic_config(core::Backend::kSim, /*workers=*/2);
  cfg.replication_factor = 2;
  const auto a = core::run_experiment(cfg);
  EXPECT_EQ(a.elastic_epoch, 2);
  EXPECT_GT(a.replicated_updates, 0);
  EXPECT_EQ(a.rolled_back_updates, 0);
  const auto b = core::run_experiment(cfg);
  expect_bit_identical(a, b);
}

TEST(ElasticE2E, TinyModelDrainOntoColdSlot) {
  // Regression: with a model so small that LPT leaves active slots with
  // empty shards, draining onto such a cold slot must seed its engine
  // progress or the post-epoch pulls deadlock.
  core::ExperimentConfig cfg;
  cfg.backend = core::Backend::kSim;
  cfg.num_workers = 2;
  cfg.num_servers = 4;
  cfg.max_iters = 20;
  cfg.model.kind = "softmax";
  cfg.data.dim = 8;
  cfg.data.num_classes = 4;
  cfg.data.num_train = 64;
  cfg.data.num_test = 32;
  cfg.batch_size = 8;
  cfg.seed = 5;
  elastic::ElasticOp drain;
  drain.at_iter = 10;
  drain.add = false;
  drain.rank = 1;
  cfg.elastic.schedule = {drain};
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.iterations, 20);
  EXPECT_EQ(r.elastic_epoch, 1);
  for (const float v : r.final_params) ASSERT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace fluentps
