// Ingest-path unit tests (DESIGN.md §11): the bounded MPSC ring, the push
// combiner's three handoff modes, reducer ring backpressure, the affinity
// shim, and the zero-copy streaming receive buffer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "common/affinity.h"
#include "common/mpsc_ring.h"
#include "embed/reducer.h"
#include "net/frame_buffer.h"
#include "ps/push_combiner.h"
#include "ps/striped_shard.h"

namespace fluentps {
namespace {

// ---------------------------------------------------------------------------
// MpscRing
// ---------------------------------------------------------------------------

TEST(MpscRing, CapacityRoundsUpToPowerOfTwoMinimumTwo) {
  EXPECT_EQ(MpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
}

TEST(MpscRing, FifoSingleThreaded) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(MpscRing, PopOnEmptyReturnsFalse) {
  MpscRing<int> ring(4);
  int v = 0;
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(MpscRing, FullRingRejectsPushAndPreservesValue) {
  MpscRing<std::vector<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::vector<int>{1}));
  EXPECT_TRUE(ring.try_push(std::vector<int>{2}));
  std::vector<int> keep{3, 4, 5};
  EXPECT_FALSE(ring.try_push(std::move(keep)));
  // try_push must not consume the value on failure (flush-and-retry callers
  // depend on this).
  EXPECT_EQ(keep.size(), 3u);
  EXPECT_EQ(keep[2], 5);
  std::vector<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, std::vector<int>{1});
  EXPECT_TRUE(ring.try_push(std::move(keep)));
}

TEST(MpscRing, WrapsAcrossManyLaps) {
  MpscRing<int> ring(4);
  int v = -1;
  for (int lap = 0; lap < 100; ++lap) {
    EXPECT_TRUE(ring.try_push(lap));
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, lap);
  }
}

TEST(MpscRing, ConcurrentProducersDeliverExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscRing<int> ring(64);
  std::atomic<bool> done{false};
  std::vector<int> seen(kProducers * kPerProducer, 0);

  std::thread consumer([&] {
    int v = -1;
    while (!done.load(std::memory_order_acquire) || ring.size_approx() > 0) {
      while (ring.try_pop(v)) ++seen[static_cast<std::size_t>(v)];
      std::this_thread::yield();
    }
    while (ring.try_pop(v)) ++seen[static_cast<std::size_t>(v)];
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        while (!ring.try_push(item)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i], 1) << "item " << i << " delivered " << seen[i] << " times";
  }
}

// ---------------------------------------------------------------------------
// PushCombiner — all three handoff modes against a sequential oracle
// ---------------------------------------------------------------------------

// Integer-valued floats make the sum exactly associative, so concurrent
// interleavings of w += scale*g land bit-identically regardless of order.
std::vector<std::vector<float>> integer_grads(std::size_t n, std::size_t dim,
                                              std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-8, 8);
  std::vector<std::vector<float>> out(n);
  for (auto& g : out) {
    g.resize(dim);
    for (auto& x : g) x = static_cast<float>(dist(rng));
  }
  return out;
}

std::vector<float> sequential_oracle(const std::vector<std::vector<float>>& grads,
                                     std::size_t dim, float scale) {
  std::vector<float> w(dim, 0.0f);
  for (const auto& g : grads) {
    for (std::size_t i = 0; i < dim; ++i) w[i] += scale * g[i];
  }
  return w;
}

struct CombinerMode {
  const char* name;
  bool lockfree;
  std::uint32_t apply_threads;
  bool pin;
};

class PushCombinerModes : public ::testing::TestWithParam<CombinerMode> {};

TEST_P(PushCombinerModes, SingleThreadedMatchesSequentialApply) {
  const CombinerMode mode = GetParam();
  constexpr std::size_t kDim = 257;  // odd size: exercises stripe remainders
  const auto grads = integer_grads(40, kDim, 7);
  const float scale = 0.25f;

  ps::StripedShard shard(std::vector<float>(kDim, 0.0f), 4, {},
                         /*defer_first_touch=*/mode.apply_threads >= 1);
  ps::PushCombiner combiner(shard, ps::PushCombinerSpec{
                                       .batch = true,
                                       .lockfree = mode.lockfree,
                                       .ring_depth = 16,
                                       .apply_threads = mode.apply_threads,
                                       .pin_threads = mode.pin,
                                   });
  for (const auto& g : grads) combiner.apply(std::span<const float>(g), scale);

  const std::vector<float> want = sequential_oracle(grads, kDim, scale);
  const std::vector<float> got = shard.snapshot();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < kDim; ++i) {
    ASSERT_EQ(got[i], want[i]) << "element " << i << " mode " << mode.name;
  }
}

TEST_P(PushCombinerModes, ConcurrentProducersSumExactly) {
  const CombinerMode mode = GetParam();
  constexpr std::size_t kDim = 512;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  const float scale = 0.5f;

  ps::StripedShard shard(std::vector<float>(kDim, 0.0f), 8, {},
                         /*defer_first_touch=*/mode.apply_threads >= 1);
  ps::PushCombiner combiner(shard, ps::PushCombinerSpec{
                                       .batch = true,
                                       .lockfree = mode.lockfree,
                                       .ring_depth = 8,  // small: forces stalls
                                       .apply_threads = mode.apply_threads,
                                       .pin_threads = mode.pin,
                                   });

  std::vector<std::vector<std::vector<float>>> per_producer;
  for (int p = 0; p < kProducers; ++p) {
    per_producer.push_back(
        integer_grads(kPerProducer, kDim, 100 + static_cast<std::uint32_t>(p)));
  }

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (const auto& g : per_producer[static_cast<std::size_t>(p)]) {
        combiner.apply(std::span<const float>(g), scale);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<float> want(kDim, 0.0f);
  for (const auto& grads : per_producer) {
    for (const auto& g : grads) {
      for (std::size_t i = 0; i < kDim; ++i) want[i] += scale * g[i];
    }
  }
  const std::vector<float> got = shard.snapshot();
  for (std::size_t i = 0; i < kDim; ++i) {
    ASSERT_EQ(got[i], want[i]) << "element " << i << " mode " << mode.name;
  }

  EXPECT_GE(combiner.sweeps(), 1);
  EXPECT_GE(combiner.max_batch(), 1u);
  EXPECT_LE(combiner.ring_depth_high_water(), 8u);
  EXPECT_LE(combiner.pinned_threads(), std::max(mode.apply_threads, 1u));
}

INSTANTIATE_TEST_SUITE_P(
    Handoffs, PushCombinerModes,
    ::testing::Values(CombinerMode{"mutex", false, 0, false},
                      CombinerMode{"lockfree", true, 0, false},
                      CombinerMode{"drain1", true, 1, false},
                      CombinerMode{"drain2_pinned", true, 2, true}),
    [](const ::testing::TestParamInfo<CombinerMode>& info) {
      return info.param.name;
    });

TEST(PushCombiner, UnbatchedModeStillApplies) {
  constexpr std::size_t kDim = 64;
  const auto grads = integer_grads(10, kDim, 3);
  ps::StripedShard shard(std::vector<float>(kDim, 0.0f), 4);
  ps::PushCombiner combiner(shard,
                            ps::PushCombinerSpec{.batch = false, .lockfree = true});
  for (const auto& g : grads) combiner.apply(std::span<const float>(g), 1.0f);
  const auto want = sequential_oracle(grads, kDim, 1.0f);
  const auto got = shard.snapshot();
  for (std::size_t i = 0; i < kDim; ++i) ASSERT_EQ(got[i], want[i]);
}

TEST(PushCombiner, DeferredFirstTouchInitializesValues) {
  // With an apply pool the shard starts untouched; the constructor must not
  // return before every partition was first-touched with the seed values.
  constexpr std::size_t kDim = 1000;
  std::vector<float> init(kDim);
  std::iota(init.begin(), init.end(), 1.0f);
  ps::StripedShard shard(init, 8, {}, /*defer_first_touch=*/true);
  ps::PushCombiner combiner(
      shard, ps::PushCombinerSpec{.batch = true, .lockfree = true, .apply_threads = 3});
  EXPECT_TRUE(shard.initialized());
  const auto got = shard.snapshot();
  for (std::size_t i = 0; i < kDim; ++i) ASSERT_EQ(got[i], init[i]);
}

// ---------------------------------------------------------------------------
// RoundReducer ring backpressure
// ---------------------------------------------------------------------------

TEST(RoundReducer, FullRingFlushesInsteadOfDroppingData) {
  embed::RoundReducer reducer(/*ring_depth=*/2);  // capacity 2
  for (std::uint32_t w = 0; w < 7; ++w) {
    embed::Contribution c;
    c.worker = w;
    c.rows = {w};
    c.grads = {static_cast<float>(w)};
    reducer.add(0, std::move(c));
  }
  EXPECT_GE(reducer.ring_stalls(), 1u);
  EXPECT_LE(reducer.ring_depth_high_water(), 2u);
  const auto round = reducer.take_round(0);
  ASSERT_EQ(round.size(), 7u);
  for (std::uint32_t w = 0; w < 7; ++w) {
    EXPECT_EQ(round[w].worker, w);  // sorted by worker despite staging
    ASSERT_EQ(round[w].rows.size(), 1u);
    EXPECT_EQ(round[w].rows[0], w);
  }
  EXPECT_EQ(reducer.pending_rounds(), 0u);
}

TEST(RoundReducer, StagedRoundsVisibleThroughPendingRounds) {
  embed::RoundReducer reducer(/*ring_depth=*/64);
  embed::Contribution c;
  c.worker = 0;
  reducer.add(5, std::move(c));
  EXPECT_EQ(reducer.pending_rounds(), 1u);  // flushes the staging ring
  EXPECT_TRUE(reducer.take_round(5).size() == 1u);
  EXPECT_EQ(reducer.pending_rounds(), 0u);
}

// ---------------------------------------------------------------------------
// Affinity shim
// ---------------------------------------------------------------------------

TEST(Affinity, AllowedCpusIsPositive) { EXPECT_GE(affinity::allowed_cpus(), 1u); }

TEST(Affinity, PinInSpawnedThreadDegradesGracefully) {
  // Pin a throwaway thread (never the gtest main thread). Whatever the
  // sandbox permits, the call must not crash and must report honestly.
  std::atomic<bool> pinned{false};
  std::thread t([&] { pinned.store(affinity::pin_current_thread(1)); });
  t.join();
  if (affinity::supported()) {
    EXPECT_TRUE(pinned.load());
  } else {
    EXPECT_FALSE(pinned.load());
  }
}

// ---------------------------------------------------------------------------
// RecvBuffer (zero-copy streaming receive)
// ---------------------------------------------------------------------------

// Append a [u32 len | payload] record through the writable/commit API,
// `chunk` bytes at a time (simulating fragmented TCP reads).
void feed_record(net::RecvBuffer& rb, const std::vector<std::uint8_t>& frame,
                 std::size_t chunk) {
  std::vector<std::uint8_t> record(sizeof(std::uint32_t) + frame.size());
  const auto len = static_cast<std::uint32_t>(frame.size());
  std::memcpy(record.data(), &len, sizeof(len));
  std::memcpy(record.data() + sizeof(len), frame.data(), frame.size());
  std::size_t off = 0;
  while (off < record.size()) {
    const std::size_t n = std::min(chunk, record.size() - off);
    auto dst = rb.writable(n);
    ASSERT_GE(dst.size(), n);
    std::memcpy(dst.data(), record.data() + off, n);
    rb.commit(n);
    off += n;
  }
}

std::vector<std::uint8_t> pattern_frame(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> f(n);
  for (std::size_t i = 0; i < n; ++i) {
    f[i] = static_cast<std::uint8_t>(seed + i);
  }
  return f;
}

TEST(RecvBuffer, ReassemblesFragmentedRecords) {
  net::RecvBuffer rb;
  for (const std::size_t chunk : {1u, 3u, 7u, 4096u}) {
    const auto frame = pattern_frame(200, static_cast<std::uint8_t>(chunk));
    feed_record(rb, frame, chunk);
    std::uint32_t len = 0;
    ASSERT_TRUE(rb.peek_length(&len));
    ASSERT_EQ(len, frame.size());
    ASSERT_TRUE(rb.frame_complete(len));
    const auto got = rb.take_frame(len);
    ASSERT_EQ(got.size(), frame.size());
    EXPECT_EQ(std::memcmp(got.data(), frame.data(), frame.size()), 0);
  }
  EXPECT_EQ(rb.buffered(), 0u);
}

TEST(RecvBuffer, FirstPayloadIsCacheLineAlignedAfterDrain) {
  net::RecvBuffer rb;
  // Frame sized like a real message: 64-byte header + 4·count payload.
  const auto frame = pattern_frame(64 + 4 * 32, 1);
  for (int i = 0; i < 3; ++i) {
    feed_record(rb, frame, 4096);
    std::uint32_t len = 0;
    ASSERT_TRUE(rb.peek_length(&len));
    const auto got = rb.take_frame(len);
    // Payload starts after the 64-byte frame header; drained-state resets put
    // it back on a cache line every time.
    const auto payload = reinterpret_cast<std::uintptr_t>(got.data() + 64);
    EXPECT_EQ(payload % 64, 0u) << "iteration " << i;
  }
}

TEST(RecvBuffer, SteadyStateDoesZeroAllocationsAndZeroMoves) {
  net::RecvBuffer rb;
  const auto frame = pattern_frame(64 + 4 * 256, 9);
  // Warmup: reach the high-water capacity.
  for (int i = 0; i < 4; ++i) {
    feed_record(rb, frame, 4096);
    std::uint32_t len = 0;
    ASSERT_TRUE(rb.peek_length(&len));
    (void)rb.take_frame(len);
  }
  const std::uint64_t allocs = rb.allocations();
  const std::uint64_t moved = rb.bytes_moved();
  EXPECT_GE(allocs, 1u);
  // Steady state: request-response traffic drains fully between records, so
  // no growth and no compaction ever happens again.
  for (int i = 0; i < 1000; ++i) {
    feed_record(rb, frame, 4096);
    std::uint32_t len = 0;
    ASSERT_TRUE(rb.peek_length(&len));
    (void)rb.take_frame(len);
  }
  EXPECT_EQ(rb.allocations(), allocs);
  EXPECT_EQ(rb.bytes_moved(), moved);
}

TEST(RecvBuffer, CompactionPreservesPartialRecordUnderPipelining) {
  net::RecvBuffer rb;
  const auto a = pattern_frame(500, 5);
  const auto b = pattern_frame(500, 6);
  // Record A complete + the first half of record B in one burst.
  feed_record(rb, a, 4096);
  std::vector<std::uint8_t> b_record(sizeof(std::uint32_t) + b.size());
  const auto b_len = static_cast<std::uint32_t>(b.size());
  std::memcpy(b_record.data(), &b_len, sizeof(b_len));
  std::memcpy(b_record.data() + sizeof(b_len), b.data(), b.size());
  const std::size_t half = b_record.size() / 2;
  {
    auto dst = rb.writable(half);
    std::memcpy(dst.data(), b_record.data(), half);
    rb.commit(half);
  }
  // Consume A; B's partial bytes stay buffered.
  std::uint32_t len = 0;
  ASSERT_TRUE(rb.peek_length(&len));
  (void)rb.take_frame(len);
  EXPECT_EQ(rb.buffered(), half);
  // Demand more room than the tail has: forces a compaction (or growth),
  // which must keep B's partial bytes intact.
  auto dst = rb.writable(rb.capacity());
  std::memcpy(dst.data(), b_record.data() + half, b_record.size() - half);
  rb.commit(b_record.size() - half);
  EXPECT_GE(rb.allocations() + rb.bytes_moved(), 1u);
  ASSERT_TRUE(rb.peek_length(&len));
  ASSERT_EQ(len, b.size());
  const auto got = rb.take_frame(len);
  EXPECT_EQ(std::memcmp(got.data(), b.data(), b.size()), 0);
  EXPECT_EQ(rb.buffered(), 0u);
}

}  // namespace
}  // namespace fluentps
