// Unit tests for the dense kernels, including reference comparisons.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "ml/ops.h"

namespace fluentps::ml {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Reference triple-loop GEMM C = A(MxK) * B(KxN).
std::vector<float> ref_gemm(std::size_t M, std::size_t N, std::size_t K, const float* A,
                            const float* B) {
  std::vector<float> C(M * N, 0.0f);
  for (std::size_t i = 0; i < M; ++i) {
    for (std::size_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < K; ++k) acc += static_cast<double>(A[i * K + k]) * B[k * N + j];
      C[i * N + j] = static_cast<float>(acc);
    }
  }
  return C;
}

TEST(Ops, GemmNnMatchesReference) {
  Rng rng(1);
  const std::size_t M = 7, N = 5, K = 9;
  const auto A = random_vec(M * K, rng);
  const auto B = random_vec(K * N, rng);
  std::vector<float> C(M * N, 99.0f);
  gemm_nn(M, N, K, 1.0f, A.data(), B.data(), 0.0f, C.data());
  const auto ref = ref_gemm(M, N, K, A.data(), B.data());
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], ref[i], 1e-4f) << i;
}

TEST(Ops, GemmNnAlphaBeta) {
  Rng rng(2);
  const std::size_t M = 3, N = 4, K = 2;
  const auto A = random_vec(M * K, rng);
  const auto B = random_vec(K * N, rng);
  std::vector<float> C(M * N, 1.0f);
  gemm_nn(M, N, K, 2.0f, A.data(), B.data(), 0.5f, C.data());
  const auto ref = ref_gemm(M, N, K, A.data(), B.data());
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], 2.0f * ref[i] + 0.5f, 1e-4f);
}

TEST(Ops, GemmTnMatchesTransposedReference) {
  Rng rng(3);
  const std::size_t M = 6, N = 4, K = 8;  // A stored KxM
  const auto A = random_vec(K * M, rng);
  const auto B = random_vec(K * N, rng);
  std::vector<float> C(M * N);
  gemm_tn(M, N, K, 1.0f, A.data(), B.data(), 0.0f, C.data());
  // Reference: At(MxK) with At[i,k] = A[k,i].
  std::vector<float> At(M * K);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t i = 0; i < M; ++i) At[i * K + k] = A[k * M + i];
  }
  const auto ref = ref_gemm(M, N, K, At.data(), B.data());
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], ref[i], 1e-4f);
}

TEST(Ops, GemmNtMatchesTransposedReference) {
  Rng rng(4);
  const std::size_t M = 5, N = 7, K = 3;  // B stored NxK
  const auto A = random_vec(M * K, rng);
  const auto B = random_vec(N * K, rng);
  std::vector<float> C(M * N);
  gemm_nt(M, N, K, 1.0f, A.data(), B.data(), 0.0f, C.data());
  std::vector<float> Bt(K * N);
  for (std::size_t j = 0; j < N; ++j) {
    for (std::size_t k = 0; k < K; ++k) Bt[k * N + j] = B[j * K + k];
  }
  const auto ref = ref_gemm(M, N, K, A.data(), Bt.data());
  for (std::size_t i = 0; i < C.size(); ++i) EXPECT_NEAR(C[i], ref[i], 1e-4f);
}

TEST(Ops, AddBiasBroadcastsPerRow) {
  std::vector<float> y{0, 0, 0, 1, 1, 1};
  const std::vector<float> b{10, 20, 30};
  add_bias(2, 3, b.data(), y.data());
  EXPECT_FLOAT_EQ(y[0], 10);
  EXPECT_FLOAT_EQ(y[4], 21);
  EXPECT_FLOAT_EQ(y[5], 31);
}

TEST(Ops, BiasGradSumsRows) {
  const std::vector<float> dy{1, 2, 3, 4, 5, 6};
  std::vector<float> db(3, 99.0f);
  bias_grad(2, 3, dy.data(), db.data());
  EXPECT_FLOAT_EQ(db[0], 5);
  EXPECT_FLOAT_EQ(db[1], 7);
  EXPECT_FLOAT_EQ(db[2], 9);
}

TEST(Ops, ReluForwardBackward) {
  std::vector<float> x{-1.0f, 0.0f, 2.0f};
  relu_forward(x.data(), x.size());
  EXPECT_FLOAT_EQ(x[0], 0.0f);
  EXPECT_FLOAT_EQ(x[1], 0.0f);
  EXPECT_FLOAT_EQ(x[2], 2.0f);
  const std::vector<float> dy{5.0f, 5.0f, 5.0f};
  std::vector<float> dx(3);
  relu_backward(dy.data(), x.data(), dx.data(), 3);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 5.0f);
}

TEST(Ops, SoftmaxProbsSumToOne) {
  const std::vector<float> logits{1.0f, 2.0f, 3.0f, -1.0f, 0.0f, 1.0f};
  const std::vector<int> labels{2, 0};
  std::vector<float> probs(6);
  softmax_xent_forward(2, 3, logits.data(), labels.data(), probs.data());
  for (std::size_t b = 0; b < 2; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += probs[b * 3 + c];
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Ops, SoftmaxLossForUniformLogits) {
  const std::vector<float> logits{0.0f, 0.0f, 0.0f, 0.0f};
  const std::vector<int> labels{1};
  std::vector<float> probs(4);
  const double loss = softmax_xent_forward(1, 4, logits.data(), labels.data(), probs.data());
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(Ops, SoftmaxStableForLargeLogits) {
  const std::vector<float> logits{1000.0f, 999.0f};
  const std::vector<int> labels{0};
  std::vector<float> probs(2);
  const double loss = softmax_xent_forward(1, 2, logits.data(), labels.data(), probs.data());
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(probs[0], probs[1]);
}

TEST(Ops, SoftmaxGradientNumericCheck) {
  Rng rng(5);
  const std::size_t B = 3, C = 4;
  auto logits = random_vec(B * C, rng);
  const std::vector<int> labels{1, 3, 0};
  std::vector<float> probs(B * C), dlogits(B * C);
  softmax_xent_forward(B, C, logits.data(), labels.data(), probs.data());
  softmax_xent_backward(B, C, probs.data(), labels.data(), dlogits.data());
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    auto lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    std::vector<float> scratch(B * C);
    const double fp = softmax_xent_forward(B, C, lp.data(), labels.data(), scratch.data());
    const double fm = softmax_xent_forward(B, C, lm.data(), labels.data(), scratch.data());
    const double numeric = (fp - fm) / (2.0 * eps);
    EXPECT_NEAR(dlogits[i], numeric, 2e-3) << "logit " << i;
  }
}

TEST(Ops, ArgmaxRows) {
  const std::vector<float> s{0.1f, 0.9f, 0.0f, 7.0f, -1.0f, 2.0f};
  std::vector<int> out(2);
  argmax_rows(2, 3, s.data(), out.data());
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
}

TEST(Ops, ArgmaxTiePicksFirst) {
  const std::vector<float> s{2.0f, 2.0f, 1.0f};
  std::vector<int> out(1);
  argmax_rows(1, 3, s.data(), out.data());
  EXPECT_EQ(out[0], 0);
}

TEST(Ops, L2Norm) {
  const std::vector<float> v{3.0f, 4.0f};
  EXPECT_NEAR(l2_norm(v), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(l2_norm(std::vector<float>{}), 0.0);
}

TEST(Ops, Axpy) {
  std::vector<float> x{1.0f, 2.0f};
  const std::vector<float> y{10.0f, 20.0f};
  axpy(0.5f, y, x);
  EXPECT_FLOAT_EQ(x[0], 6.0f);
  EXPECT_FLOAT_EQ(x[1], 12.0f);
}

}  // namespace
}  // namespace fluentps::ml
