#!/usr/bin/env bash
# Perf-trajectory snapshot: run the hot-path microbenchmarks and emit
# BENCH_micro.json at the repo root so ns/op numbers are tracked across PRs.
#
#   scripts/bench_snapshot.sh                 # default: 0.5s/bench, 3 reps
#   MIN_TIME=0.05 REPS=1 scripts/bench_snapshot.sh   # CI smoke settings
#   FILTER='BM_MessageSerialize' scripts/bench_snapshot.sh
#
# The snapshot keeps only the per-benchmark mean ns/op (plus context) so the
# checked-in file stays small and diffs stay readable. Raw google-benchmark
# JSON is left in bench_out/micro_raw.json for deeper digging.
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_TIME="${MIN_TIME:-0.5}"
REPS="${REPS:-3}"
FILTER="${FILTER:-BM_MessageSerialize|BM_MessageSerializeZeroCopy|BM_ServerBatchedApply|BM_CombinerHandoff|BM_StripedApplyPinned|BM_RecvZeroCopy|BM_Axpy|BM_BiasGrad|BM_GemmNn|BM_GatherScatter|BM_SyncEnginePushPull|BM_ReplicationLogAppendTrim|BM_ReplicationLogRetransmitLookup|BM_ReplicaRead|BM_EmbeddingRowApply|BM_SparseSerialize|BM_MetricsRecord}"
BENCH=build/bench/micro_kernels
OUT="${OUT:-BENCH_micro.json}"

if [ ! -x "$BENCH" ]; then
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j --target micro_kernels
fi
if [ ! -x "$BENCH" ]; then
  echo "error: bench binary '$BENCH' is missing after the build — check that" >&2
  echo "FPS_BUILD_BENCH is ON and the micro_kernels target compiled." >&2
  exit 1
fi

mkdir -p bench_out
"$BENCH" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out=bench_out/micro_raw.json \
  --benchmark_out_format=json

python3 - "$OUT" <<'PY'
import json, sys

raw = json.load(open("bench_out/micro_raw.json"))
ctx = raw.get("context", {})

# Preserve the checked-in baseline block (the pre-optimization numbers this
# PR's speedups are measured against) across reruns.
baseline = None
try:
    baseline = json.load(open(sys.argv[1])).get("baseline")
except (OSError, ValueError):
    pass
rows = {}
for b in raw.get("benchmarks", []):
    name = b.get("name", "")
    # With repetitions + aggregates-only we keep the mean; a plain run
    # (REPS=1) reports each benchmark once with aggregate_name absent.
    if b.get("aggregate_name", "") not in ("", "mean"):
        continue
    rows[name.removesuffix("_mean")] = {
        "real_ns": round(b["real_time"], 1),
        "cpu_ns": round(b["cpu_time"], 1),
    }

snapshot = {
    "schema": 1,
    "date": ctx.get("date", ""),
    "host": {
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "build_type": ctx.get("library_build_type"),
    },
    "benchmarks": rows,
}
if baseline is not None:
    snapshot["baseline"] = baseline
with open(sys.argv[1], "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {sys.argv[1]} ({len(rows)} benchmarks)")
PY
