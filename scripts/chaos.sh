#!/usr/bin/env bash
# Chaos harness: run the experiment CLI across every sync mode under lossy
# links plus one mid-run server crash-restart, and fail if any run diverges.
#
# This is the shell-level counterpart of tests/test_chaos.cpp — useful for
# soak-testing with bigger clusters / longer runs than the unit suite wants:
#
#   scripts/chaos.sh                       # default: 8 workers, 120 iters
#   WORKERS=32 ITERS=1000 scripts/chaos.sh # bigger soak
#   DROP=0.2 scripts/chaos.sh              # crank the loss rate
set -euo pipefail
cd "$(dirname "$0")/.."

WORKERS="${WORKERS:-8}"
SERVERS="${SERVERS:-2}"
ITERS="${ITERS:-120}"
DROP="${DROP:-0.10}"
SEED="${SEED:-1234}"
CLI=build/examples/run_experiment_cli

if [ ! -x "$CLI" ]; then
  cmake -B build -S .
  cmake --build build -j --target run_experiment_cli
fi

# sync-kind[:extra flags]
CASES=(
  "bsp"
  "ssp staleness=3"
  "ssp staleness=3 mode=soft"
  "pssp staleness=3 prob=0.3"
  "pssp staleness=3 prob=0.3 mode=soft"
  "bsp arch=pslite"
  "ssp staleness=3 arch=ssptable"
  # Pinned apply pool (DESIGN.md §11): the lock-free ring handoff draining
  # into 2 dedicated, affinity-pinned apply threads per server must survive
  # the same loss + crash-restart schedule bit-for-bit.
  "ssp staleness=3 apply_threads=2 pin_threads=1"
)

fail=0
for case_spec in "${CASES[@]}"; do
  read -r sync extra <<<"$case_spec"
  label="$sync ${extra:-}"
  echo "== chaos: sync=$label drop=$DROP + crash s0 =="
  out=$("$CLI" \
    workers="$WORKERS" servers="$SERVERS" iters="$ITERS" seed="$SEED" \
    sync="$sync" ${extra:-} \
    model=softmax dim=64 classes=10 train_n=1024 test_n=256 \
    compute=lognormal base_seconds=0.01 sigma=0.3 \
    fault.drop="$DROP" fault.checkpoint_every=0.05 "fault.crash=s0@0.3:0.5" \
    retry.initial_timeout=0.02 retry.max_timeout=0.3 2>&1) || {
    echo "$out"
    echo "!! run failed: $label"
    fail=1
    continue
  }
  echo "$out" | grep -E "final accuracy|faults|recovery"
  acc=$(echo "$out" | sed -n 's/^final accuracy *\([0-9.]*\).*/\1/p')
  restores=$(echo "$out" | sed -n 's/.*restores \([0-9]*\).*/\1/p')
  if [ -z "$acc" ] || [ "$acc" = "nan" ]; then
    echo "!! non-finite accuracy: $label"
    fail=1
  fi
  if [ "${restores:-0}" -lt 1 ]; then
    echo "!! server never recovered from the injected crash: $label"
    fail=1
  fi
  echo
done

# Replicated chain cases: kill heads of shard 0 with NO restart — recovery
# must come from chain promotion, not from a checkpoint restore. The kill
# schedule and the expected failover count are both derived from the chain
# geometry (r - 1 surviving successors), never hard-coded to one node id:
# each crash targets the shard's *current* head, so r = 3 survives killing
# the original head AND the node promoted in its place.
for R in 2 3; do
  KILLS=$((R - 1))
  CRASH="s0@0.3:inf"
  for ((k = 1; k < KILLS; k++)); do
    CRASH="$CRASH;s0@0.$((3 + 2 * k)):inf"
  done
  echo "== chaos: sync=ssp(3) replication.factor=$R drop=$DROP + $KILLS head kill(s) =="
  if out=$("$CLI" \
    workers="$WORKERS" servers="$SERVERS" iters="$ITERS" seed="$SEED" \
    sync=ssp staleness=3 replication.factor="$R" \
    model=softmax dim=64 classes=10 train_n=1024 test_n=256 \
    compute=lognormal base_seconds=0.01 sigma=0.3 \
    fault.drop="$DROP" "fault.crash=$CRASH" \
    retry.initial_timeout=0.02 retry.max_timeout=0.3 2>&1); then
    echo "$out" | grep -E "final accuracy|faults|recovery|replication"
    acc=$(echo "$out" | sed -n 's/^final accuracy *\([0-9.]*\).*/\1/p')
    failovers=$(echo "$out" | sed -n 's/.*failovers \([0-9]*\).*/\1/p')
    rolled=$(echo "$out" | sed -n 's/.*rolled back \([0-9]*\).*/\1/p')
    if [ -z "$acc" ] || [ "$acc" = "nan" ]; then
      echo "!! non-finite accuracy: replicated chain r=$R"
      fail=1
    fi
    if [ "${failovers:-0}" -lt "$KILLS" ]; then
      echo "!! $KILLS head kill(s) promoted only ${failovers:-0} successor(s): r=$R"
      fail=1
    fi
    if [ "${rolled:-1}" -ne 0 ]; then
      echo "!! chain failover rolled back updates (must be zero-loss): r=$R"
      fail=1
    fi
  else
    echo "$out"
    echo "!! run failed: replicated chain r=$R"
    fail=1
  fi
  echo
done

# Read-offload case (DESIGN.md §13): a pull-only inference fleet round-robins
# staleness-bounded reads over the r=2 chain while the head of shard 0 is
# killed mid-run. Every fleet pull must complete (retry -> head, promote
# rebind), replicas must actually serve a share of them, and the CLI's
# "(bound OK)" verdict — the fleet's per-response staleness oracle — must
# hold: zero replica-served responses older than the bound.
echo "== chaos: read-offload fleet r=2 drop=$DROP + head kill under pull-heavy traffic =="
if out=$("$CLI" \
  workers="$WORKERS" servers="$SERVERS" iters="$ITERS" seed="$SEED" \
  sync=ssp staleness=3 replication.factor=2 \
  model=softmax dim=64 classes=10 train_n=1024 test_n=256 \
  compute=lognormal base_seconds=0.01 sigma=0.3 \
  read.fleet=8 read.pulls=200 read.staleness=3 \
  fault.drop="$DROP" "fault.crash=s0@0.3:inf" \
  retry.initial_timeout=0.02 retry.max_timeout=0.3 2>&1); then
  echo "$out" | grep -E "final accuracy|reads|fleet|replication"
  failovers=$(echo "$out" | sed -n 's/.*failovers \([0-9]*\).*/\1/p')
  replica_served=$(echo "$out" | sed -n 's/^reads.*replica-served \([0-9]*\).*/\1/p')
  if ! echo "$out" | grep -q "(bound OK)"; then
    echo "!! staleness bound violated under head kill"
    fail=1
  fi
  if [ "${failovers:-0}" -lt 1 ]; then
    echo "!! head kill never promoted a successor: read-offload"
    fail=1
  fi
  if [ "${replica_served:-0}" -lt 1 ]; then
    echo "!! fleet never offloaded a read to a replica"
    fail=1
  fi
  if ! echo "$out" | grep -qE "fleet +8 clients x 200 pulls \(1600 completed\)"; then
    echo "!! fleet did not complete all pulls"
    fail=1
  fi
else
  echo "$out"
  echo "!! run failed: read-offload fleet"
  fail=1
fi
echo

# Telemetry case (DESIGN.md §12): the replicated head-kill again with the
# wait-free telemetry layer on end to end — on the threads backend, since
# spans and the interval snapshotter need real wall-clock time. The
# Perfetto/Chrome trace must parse and contain the span tracks for every hop
# of a replicated push plus the failover-lifecycle instants; the JSONL time
# series and the Prometheus dump must both parse. Failover semantics must be
# unchanged by telemetry.
echo "== chaos: telemetry=on ssp(3) replication=2 drop=$DROP + head kill =="
TDIR=$(mktemp -d)
if out=$("$CLI" \
  workers="$WORKERS" servers="$SERVERS" iters="$ITERS" seed="$SEED" \
  backend=threads sync=ssp staleness=3 replication=2 \
  model=softmax dim=64 classes=10 train_n=1024 test_n=256 \
  compute=lognormal base_seconds=0.01 sigma=0.3 \
  fault.drop="$DROP" "fault.crash=s0@0.3:inf" \
  retry.initial_timeout=0.02 retry.max_timeout=0.3 \
  telemetry=on telemetry_interval_ms=100 telemetry_out="$TDIR/chaos" \
  trace_json="$TDIR/chaos_trace.json" 2>&1); then
  echo "$out" | grep -E "final accuracy|telemetry|replication"
  failovers=$(echo "$out" | sed -n 's/.*failovers \([0-9]*\).*/\1/p')
  if [ "${failovers:-0}" -lt 1 ]; then
    echo "!! head kill never promoted a successor under telemetry"
    fail=1
  fi
  if ! python3 - "$TDIR/chaos_trace.json" <<'PY'
import json, sys
ev = json.load(open(sys.argv[1]))["traceEvents"]
names = {e.get("name") for e in ev}
names |= {(e.get("args") or {}).get("name") for e in ev}
need = ["telemetry spans", "worker.push", "server.enqueue", "combiner.drain",
        "stripe.apply", "replicate", "replica.apply", "tail.ack", "worker.ack",
        "kPromote", "failover_start", "failover_end"]
missing = [n for n in need if n not in names]
if missing:
    sys.exit(f"missing trace tracks/events: {missing}")
spans = [e for e in ev if e.get("pid") == 1 and e.get("ph") in ("X", "i")]
ids = {e["args"]["span"] for e in spans}
dangling = [e["name"] for e in spans
            if e["args"]["parent"] != 0 and e["args"]["parent"] not in ids]
if dangling:
    sys.exit(f"spans with dangling parents: {sorted(set(dangling))}")
print(f"trace ok: {len(ev)} events, {len(spans)} spans, parents consistent")
PY
  then
    echo "!! Perfetto trace check failed"
    fail=1
  fi
  if ! python3 - "$TDIR/chaos.jsonl" "$TDIR/chaos.prom" <<'PY'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
if not lines:
    sys.exit("telemetry JSONL is empty")
samples = 0
for line in open(sys.argv[2]):
    line = line.strip()
    if not line or line.startswith("#"):
        continue
    name, value = line.rsplit(" ", 1)
    float(value)  # must parse
    if not name.startswith("fluentps_"):
        sys.exit(f"unprefixed metric: {name}")
    samples += 1
if samples == 0:
    sys.exit("Prometheus dump has no samples")
print(f"timeseries ok: {len(lines)} intervals, {samples} prom samples")
PY
  then
    echo "!! telemetry time-series check failed"
    fail=1
  fi
  rm -rf "$TDIR"
else
  echo "$out"
  echo "!! run failed: telemetry chaos case"
  fail=1
fi
echo

# Sparse embedding cases (DESIGN.md §10). The CLI prints a zero-lost verdict
# by comparing the summed server digest to the serial reference oracle, so
# "zero-lost=OK" IS the acceptance check — any lost or double-applied sparse
# update flips it to VIOLATED. Two cases:
#  (1) zipfian sparse traffic under drop+dup (dedup + retry ladder), and
#  (2) the same plus replication=2 and a head kill with no restart — sparse
#      state is not checkpointed, so the chain is its only durability.
SPARSE_FLAGS=(
  "tables=emb:dim=16,rows=512,opt=adagrad,qos=2;ads:dim=4,rows=128"
  sparse_workers=4 sparse_rounds=40 sparse_batch=16 sparse_zipf=2.0
)
SPARSE_CASES=(
  "sparse-zipf-dropdup fault.dup=0.05"
  "sparse-replicated-headkill replication=2 fault.crash=s0@0.3:inf"
)
for case_spec in "${SPARSE_CASES[@]}"; do
  read -r label extra <<<"$case_spec"
  echo "== chaos: $label drop=$DROP sparse 2 tables x 4 workers =="
  if out=$("$CLI" \
    workers="$WORKERS" servers="$SERVERS" iters="$ITERS" seed="$SEED" \
    sync=ssp staleness=3 ${extra:-} \
    model=softmax dim=64 classes=10 train_n=1024 test_n=256 \
    compute=lognormal base_seconds=0.01 sigma=0.3 \
    "${SPARSE_FLAGS[@]}" \
    fault.drop="$DROP" \
    retry.initial_timeout=0.02 retry.max_timeout=0.3 2>&1); then
    echo "$out" | grep -E "final accuracy|sparse"
    if ! echo "$out" | grep -q "zero-lost=OK"; then
      echo "!! sparse digest diverged from the serial oracle: $label"
      fail=1
    fi
    if [ "$label" = "sparse-replicated-headkill" ]; then
      failovers=$(echo "$out" | sed -n 's/.*failovers \([0-9]*\).*/\1/p')
      if [ "${failovers:-0}" -lt 1 ]; then
        echo "!! head kill never promoted a successor: $label"
        fail=1
      fi
    fi
  else
    echo "$out"
    echo "!! run failed: $label"
    fail=1
  fi
  echo
done

# Elastic membership cases (DESIGN.md §14): scale-out then drain mid-run on
# the faulty fabric. Three checks:
#  (1) soak + determinism — both epochs must commit under loss with a
#      replicated chain riding along (zero rolled-back updates), and a
#      re-run with the same seed must print a bit-identical params digest
#      (the whole fence/pre-copy/commit protocol is inside the sim's
#      deterministic event loop).
#  (2) serial oracle — with one worker the total apply order is fixed, so
#      the elastic run under loss must produce the exact same params digest
#      as a static fault-free run on the final server set: zero updates
#      lost or double-applied across both epochs.
#  (3) sparse tables follow the epoch — embedding rows re-home with their
#      shard and the summed digest must still equal the serial sparse
#      oracle ("zero-lost=OK").
ELASTIC_FLAGS=(
  servers=4 elastic.initial_servers=3
  "elastic.schedule=add:3@$((ITERS / 3));drain:1@$((2 * ITERS / 3))" chunk=64
)
echo "== chaos: elastic add+drain drop=$DROP replication=2 (soak + determinism) =="
digests=()
for rerun in 1 2; do
  if out=$("$CLI" \
    workers="$WORKERS" iters="$ITERS" seed="$SEED" \
    sync=ssp staleness=3 replication.factor=2 "${ELASTIC_FLAGS[@]}" \
    model=softmax dim=64 classes=10 train_n=1024 test_n=256 \
    compute=lognormal base_seconds=0.01 sigma=0.3 \
    fault.drop="$DROP" \
    retry.initial_timeout=0.02 retry.max_timeout=0.3 2>&1); then
    [ "$rerun" = 1 ] && echo "$out" | grep -E "final accuracy|elastic|replication"
    digests+=("$(echo "$out" | sed -n 's/^params digest *\([0-9a-f]*\).*/\1/p')")
    epoch=$(echo "$out" | sed -n 's/^elastic *epoch \([0-9]*\).*/\1/p')
    moved=$(echo "$out" | sed -n 's/^elastic.*epoch [0-9]* *\([0-9]*\) slices moved.*/\1/p')
    rolled=$(echo "$out" | sed -n 's/.*rolled back \([0-9]*\).*/\1/p')
    acc=$(echo "$out" | sed -n 's/^final accuracy *\([0-9.]*\).*/\1/p')
    if [ -z "$acc" ] || [ "$acc" = "nan" ]; then
      echo "!! non-finite accuracy: elastic soak (run $rerun)"
      fail=1
    fi
    if [ "${epoch:-0}" -ne 2 ]; then
      echo "!! expected both elastic ops committed (epoch 2), got epoch ${epoch:-0}"
      fail=1
    fi
    if [ "${moved:-0}" -lt 1 ]; then
      echo "!! elastic epochs committed but no slices migrated"
      fail=1
    fi
    if [ "${rolled:-1}" -ne 0 ]; then
      echo "!! elastic + chain run rolled back updates (must be zero-loss)"
      fail=1
    fi
  else
    echo "$out"
    echo "!! run failed: elastic soak (run $rerun)"
    fail=1
  fi
done
if [ "${digests[0]:-a}" != "${digests[1]:-b}" ]; then
  echo "!! elastic runs with the same seed diverged: ${digests[0]:-?} vs ${digests[1]:-?}"
  fail=1
else
  echo "determinism: re-run digest matches (${digests[0]:-?})"
fi
echo

echo "== chaos: elastic serial-oracle digest (1 worker, faulty vs static clean) =="
elastic_digest=$("$CLI" \
  workers=1 iters="$ITERS" seed="$SEED" \
  sync=bsp "${ELASTIC_FLAGS[@]}" \
  model=softmax dim=64 classes=10 train_n=1024 test_n=256 \
  compute=lognormal base_seconds=0.01 sigma=0.3 \
  fault.drop="$DROP" fault.dup=0.05 \
  retry.initial_timeout=0.02 retry.max_timeout=0.3 2>&1 |
  sed -n 's/^params digest *\([0-9a-f]*\).*/\1/p')
oracle_digest=$("$CLI" \
  workers=1 iters="$ITERS" seed="$SEED" \
  sync=bsp servers=4 chunk=64 force_reliability=1 \
  model=softmax dim=64 classes=10 train_n=1024 test_n=256 \
  compute=lognormal base_seconds=0.01 sigma=0.3 2>&1 |
  sed -n 's/^params digest *\([0-9a-f]*\).*/\1/p')
if [ -z "$elastic_digest" ] || [ "$elastic_digest" != "$oracle_digest" ]; then
  echo "!! elastic run lost updates: digest ${elastic_digest:-?} != oracle ${oracle_digest:-?}"
  fail=1
else
  echo "zero-lost: elastic digest matches the serial oracle ($elastic_digest)"
fi
echo

echo "== chaos: elastic + sparse tables drop=$DROP (rows follow the epoch) =="
if out=$("$CLI" \
  workers="$WORKERS" iters="$ITERS" seed="$SEED" \
  sync=ssp staleness=3 "${ELASTIC_FLAGS[@]}" \
  model=softmax dim=64 classes=10 train_n=1024 test_n=256 \
  compute=lognormal base_seconds=0.01 sigma=0.3 \
  "${SPARSE_FLAGS[@]}" \
  fault.drop="$DROP" \
  retry.initial_timeout=0.02 retry.max_timeout=0.3 2>&1); then
  echo "$out" | grep -E "final accuracy|elastic|sparse"
  if ! echo "$out" | grep -q "zero-lost=OK"; then
    echo "!! sparse digest diverged from the serial oracle after elastic epochs"
    fail=1
  fi
  epoch=$(echo "$out" | sed -n 's/^elastic *epoch \([0-9]*\).*/\1/p')
  if [ "${epoch:-0}" -ne 2 ]; then
    echo "!! expected epoch 2 in the sparse elastic case, got ${epoch:-0}"
    fail=1
  fi
else
  echo "$out"
  echo "!! run failed: elastic + sparse"
  fail=1
fi
echo

if [ "$fail" -ne 0 ]; then
  echo "CHAOS: FAILURES (see above)"
  exit 1
fi
echo "CHAOS: all ${#CASES[@]} crash-restart cases + 2 replicated head-kill cases + the read-offload fleet case + ${#SPARSE_CASES[@]} sparse cases + 3 elastic cases survived ${DROP} loss"
