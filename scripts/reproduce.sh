#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every table and figure.
# Outputs land in test_output.txt, bench_output.txt and bench_out/*.csv.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $b ====="
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

echo
echo "== shape summary =="
grep "PAPER-VS-MEASURED" bench_output.txt
