#include "baselines/ssptable_cache.h"

#include <algorithm>
#include <cmath>

namespace fluentps::baselines {

SspTableCachePolicy::SspTableCachePolicy(std::uint32_t num_workers, double divisor) noexcept {
  const double d = divisor > 0.0 ? divisor : 1.0;
  period_ = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::floor(static_cast<double>(num_workers) / d)));
}

bool SspTableCachePolicy::apply_fresh(std::int64_t iter) const noexcept {
  return period_ <= 1 || iter % period_ == 0;
}

}  // namespace fluentps::baselines
