// SSPtable-style client cache model (the PMLS-Caffe / Bösen comparator of
// Figures 1 and 7).
//
// Bösen's SSPtable keeps parameters in a worker-side shared-memory cache and
// relies on invalidation of outdated entries to bound staleness. The paper
// observes that with many workers "the overhead to maintain a consistent
// parameter view in SSPtable becomes significant", and accuracy collapses
// beyond 8 workers (Fig 1) while FluentPS stays robust (Fig 7).
//
// We model the *behavioural* consequence of that maintenance lag: a worker's
// cache is refreshed from the servers only every `refresh_period(N)`
// iterations (the consistent view falls further behind as N grows); between
// refreshes the worker trains on its cached copy updated only with its own
// local gradients. With N <= refresh_threshold the cache refreshes every
// iteration and the baseline matches plain SSP, which is exactly the regime
// where PMLS-Caffe matched FluentPS in the paper. DESIGN.md §1 records this
// substitution.
#pragma once

#include <cstdint>

namespace fluentps::baselines {

class SspTableCachePolicy {
 public:
  /// `divisor` controls how fast the maintenance lag grows with the worker
  /// count: refresh_period = max(1, N / divisor). The default (1.0 — lag
  /// proportional to the cluster size) reproduces the Fig 1 collapse shape:
  /// indistinguishable from SSP at 2-4 workers, severe accuracy loss with
  /// momentum SGD beyond 8-16 workers.
  explicit SspTableCachePolicy(std::uint32_t num_workers, double divisor = 1.0) noexcept;

  /// Iterations between real cache refreshes for this cluster size.
  [[nodiscard]] std::int64_t refresh_period() const noexcept { return period_; }

  /// True if the worker should apply the freshly pulled parameters at
  /// iteration `iter`; false means it keeps its stale cache.
  [[nodiscard]] bool apply_fresh(std::int64_t iter) const noexcept;

 private:
  std::int64_t period_;
};

}  // namespace fluentps::baselines
