#include "ml/optimizer.h"

#include <cmath>

#include "common/logging.h"
#include "ml/ops.h"

namespace fluentps::ml {

void SgdOptimizer::compute_update(std::span<const float> /*params*/, std::span<const float> grad,
                                  std::int64_t iter, std::span<float> update) {
  FPS_CHECK(update.size() == grad.size()) << "update/grad size mismatch";
  const auto step = static_cast<float>(-lr_->lr(iter));
  for (std::size_t i = 0; i < grad.size(); ++i) update[i] = step * grad[i];
}

void MomentumSgd::compute_update(std::span<const float> /*params*/, std::span<const float> grad,
                                 std::int64_t iter, std::span<float> update) {
  FPS_CHECK(update.size() == grad.size()) << "update/grad size mismatch";
  if (velocity_.size() != grad.size()) velocity_.assign(grad.size(), 0.0f);
  const auto mu = static_cast<float>(mu_);
  const auto step = static_cast<float>(-lr_->lr(iter));
  for (std::size_t i = 0; i < grad.size(); ++i) {
    velocity_[i] = mu * velocity_[i] + grad[i];
    update[i] = step * velocity_[i];
  }
}

LarsOptimizer::LarsOptimizer(std::unique_ptr<LrSchedule> lr, std::vector<std::size_t> layer_sizes,
                             double eta, double epsilon)
    : lr_(std::move(lr)), layer_sizes_(std::move(layer_sizes)), eta_(eta), epsilon_(epsilon) {}

void LarsOptimizer::compute_update(std::span<const float> params, std::span<const float> grad,
                                   std::int64_t iter, std::span<float> update) {
  FPS_CHECK(update.size() == grad.size() && params.size() == grad.size())
      << "LARS span size mismatch";
  const double lr = lr_->lr(iter);
  std::size_t off = 0;
  for (const std::size_t len : layer_sizes_) {
    FPS_CHECK(off + len <= grad.size()) << "layer map exceeds parameter count";
    const auto w = params.subspan(off, len);
    const auto g = grad.subspan(off, len);
    const double wn = l2_norm(w);
    const double gn = l2_norm(g);
    // When the weight norm is ~0 (e.g. zero-initialized biases) fall back to
    // plain SGD scaling so those entries still move.
    const double trust = wn > 0.0 ? eta_ * wn / (gn + epsilon_) : 1.0;
    const auto step = static_cast<float>(-lr * trust);
    for (std::size_t i = 0; i < len; ++i) update[off + i] = step * g[i];
    off += len;
  }
  FPS_CHECK(off == grad.size()) << "layer map does not cover all parameters";
}

std::unique_ptr<Optimizer> make_optimizer(const OptimizerSpec& spec, const Model& model) {
  auto lr = make_lr_schedule(spec.lr);
  if (spec.kind == "sgd") {
    return std::make_unique<SgdOptimizer>(std::move(lr));
  }
  if (spec.kind == "momentum") {
    return std::make_unique<MomentumSgd>(std::move(lr), spec.momentum);
  }
  if (spec.kind == "lars") {
    return std::make_unique<LarsOptimizer>(std::move(lr), model.layer_sizes(), spec.lars_eta,
                                           spec.lars_epsilon);
  }
  FPS_CHECK(false) << "unknown optimizer kind: " << spec.kind;
  return nullptr;
}

}  // namespace fluentps::ml
