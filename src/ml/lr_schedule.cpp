#include "ml/lr_schedule.h"

#include <cmath>

#include "common/logging.h"

namespace fluentps::ml {

double StepDecayLr::lr(std::int64_t iter) const noexcept {
  const auto steps = iter / every_;
  return base_ * std::pow(factor_, static_cast<double>(steps));
}

double WarmupLr::lr(std::int64_t iter) const noexcept {
  const double target = inner_->lr(iter);
  if (iter >= warmup_) return target;
  return target * static_cast<double>(iter + 1) / static_cast<double>(warmup_);
}

std::unique_ptr<LrSchedule> make_lr_schedule(const LrSpec& spec) {
  std::unique_ptr<LrSchedule> inner;
  if (spec.kind == "constant") {
    inner = std::make_unique<ConstantLr>(spec.base);
  } else if (spec.kind == "step") {
    FPS_CHECK(spec.decay_every > 0) << "step schedule needs decay_every > 0";
    inner = std::make_unique<StepDecayLr>(spec.base, spec.decay_every, spec.decay_factor);
  } else {
    FPS_CHECK(false) << "unknown lr schedule kind: " << spec.kind;
  }
  if (spec.warmup_iters > 0) {
    inner = std::make_unique<WarmupLr>(std::move(inner), spec.warmup_iters);
  }
  return inner;
}

}  // namespace fluentps::ml
