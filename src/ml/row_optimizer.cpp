#include "ml/row_optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace fluentps::ml {

RowOptKind parse_row_opt(const std::string& s) {
  if (s == "sgd") return RowOptKind::kSgd;
  if (s == "adagrad") return RowOptKind::kAdaGrad;
  FPS_CHECK(false) << "unknown row optimizer '" << s << "' (sgd | adagrad)";
  return RowOptKind::kSgd;
}

const char* to_string(RowOptKind k) noexcept {
  switch (k) {
    case RowOptKind::kSgd: return "sgd";
    case RowOptKind::kAdaGrad: return "adagrad";
  }
  return "?";
}

std::size_t row_state_size(RowOptKind kind, std::size_t dim) noexcept {
  return kind == RowOptKind::kAdaGrad ? dim : 0;
}

void row_apply(const RowOptimizerSpec& spec, std::span<float> row, std::span<float> state,
               std::span<const float> grad) noexcept {
  const std::size_t d = row.size();
  switch (spec.kind) {
    case RowOptKind::kSgd:
      for (std::size_t k = 0; k < d; ++k) row[k] -= spec.lr * grad[k];
      return;
    case RowOptKind::kAdaGrad:
      for (std::size_t k = 0; k < d; ++k) {
        state[k] += grad[k] * grad[k];
        row[k] -= spec.lr * grad[k] / (std::sqrt(state[k]) + spec.adagrad_eps);
      }
      return;
  }
}

}  // namespace fluentps::ml
