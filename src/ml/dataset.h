// Synthetic classification datasets standing in for CIFAR-10 / CIFAR-100.
//
// A frozen random "teacher" MLP labels Gaussian inputs; optional label noise
// controls the Bayes error. The resulting task is nonlinear (so depth helps,
// like the paper's ResNet-56 vs AlexNet contrast), deterministic given the
// seed, and sized to train in seconds on a CPU. DESIGN.md §1 records this
// substitution.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fluentps::ml {

/// A minibatch view into a dataset partition (non-owning).
struct Batch {
  const float* X = nullptr;  ///< row-major (n x dim)
  const int* y = nullptr;
  std::size_t n = 0;
  std::size_t dim = 0;
};

struct DataSpec {
  std::size_t dim = 32;           ///< input dimensionality
  std::size_t num_classes = 10;   ///< 10 = "CIFAR-10 stand-in", 100 = "CIFAR-100"
  std::size_t teacher_hidden = 48;///< teacher MLP width (task difficulty)
  std::size_t num_train = 8192;
  std::size_t num_test = 2048;
  double label_noise = 0.05;      ///< probability a label is resampled uniformly
  std::uint64_t seed = 42;
};

class Dataset {
 public:
  /// Generate a dataset from the spec (deterministic).
  static Dataset synthesize(const DataSpec& spec);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t num_train() const noexcept { return y_train_.size(); }
  [[nodiscard]] std::size_t num_test() const noexcept { return y_test_.size(); }

  /// Row-major training features (num_train x dim).
  [[nodiscard]] const std::vector<float>& x_train() const noexcept { return x_train_; }
  [[nodiscard]] const std::vector<int>& y_train() const noexcept { return y_train_; }
  [[nodiscard]] const std::vector<float>& x_test() const noexcept { return x_test_; }
  [[nodiscard]] const std::vector<int>& y_test() const noexcept { return y_test_; }

  /// A batch view over test data rows [begin, begin+n).
  [[nodiscard]] Batch test_batch(std::size_t begin, std::size_t n) const;

 private:
  std::size_t dim_ = 0;
  std::size_t num_classes_ = 0;
  std::vector<float> x_train_;
  std::vector<int> y_train_;
  std::vector<float> x_test_;
  std::vector<int> y_test_;
};

/// Deterministic per-worker sampler over a contiguous shard of the training
/// set (data parallelism: worker n owns rows [n*S, (n+1)*S)). Produces
/// shuffled minibatches, reshuffling each epoch.
class BatchSampler {
 public:
  BatchSampler(const Dataset& data, std::uint32_t worker, std::uint32_t num_workers,
               std::size_t batch_size, std::uint64_t seed);

  /// Next minibatch (wraps around epochs). Views remain valid until the next
  /// call (rows are gathered into an internal buffer).
  Batch next();

  [[nodiscard]] std::size_t shard_size() const noexcept { return indices_.size(); }
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_size_; }

 private:
  const Dataset& data_;
  std::vector<std::size_t> indices_;  // rows of this worker's shard
  std::size_t cursor_ = 0;
  std::size_t batch_size_;
  Rng rng_;
  std::vector<float> xbuf_;
  std::vector<int> ybuf_;
};

}  // namespace fluentps::ml
