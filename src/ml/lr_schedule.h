// Learning-rate schedules. The paper trains with large batches using LARS
// plus warmup + step decay; these schedules compose (warmup wraps any inner
// schedule).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace fluentps::ml {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate to use at iteration `iter` (0-based).
  [[nodiscard]] virtual double lr(std::int64_t iter) const noexcept = 0;
};

/// Always `base`.
class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(double base) noexcept : base_(base) {}
  [[nodiscard]] double lr(std::int64_t) const noexcept override { return base_; }

 private:
  double base_;
};

/// base * factor^(iter / every).
class StepDecayLr final : public LrSchedule {
 public:
  StepDecayLr(double base, std::int64_t every, double factor) noexcept
      : base_(base), every_(every > 0 ? every : 1), factor_(factor) {}
  [[nodiscard]] double lr(std::int64_t iter) const noexcept override;

 private:
  double base_;
  std::int64_t every_;
  double factor_;
};

/// Linear warmup from base/warmup_iters to the inner schedule's value.
class WarmupLr final : public LrSchedule {
 public:
  WarmupLr(std::unique_ptr<LrSchedule> inner, std::int64_t warmup_iters)
      : inner_(std::move(inner)), warmup_(warmup_iters > 0 ? warmup_iters : 1) {}
  [[nodiscard]] double lr(std::int64_t iter) const noexcept override;

 private:
  std::unique_ptr<LrSchedule> inner_;
  std::int64_t warmup_;
};

struct LrSpec {
  std::string kind = "constant";  ///< "constant" | "step"
  double base = 0.1;
  std::int64_t decay_every = 0;   ///< step: iterations per decay
  double decay_factor = 0.1;
  std::int64_t warmup_iters = 0;  ///< >0 wraps the schedule in warmup
};

std::unique_ptr<LrSchedule> make_lr_schedule(const LrSpec& spec);

}  // namespace fluentps::ml
