// Test-set evaluation helpers.
#pragma once

#include <span>

#include "ml/dataset.h"
#include "ml/model.h"

namespace fluentps::ml {

/// Top-1 accuracy of `model(params)` on the dataset's test split.
double test_accuracy(const Model& model, std::span<const float> params, const Dataset& data,
                     Workspace& ws, std::size_t eval_batch = 256);

/// Mean loss on the test split.
double test_loss(const Model& model, std::span<const float> params, const Dataset& data,
                 Workspace& ws, std::size_t eval_batch = 256);

}  // namespace fluentps::ml
