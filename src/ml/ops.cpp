#include "ml/ops.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fluentps::ml {

void gemm_nn(std::size_t M, std::size_t N, std::size_t K, float alpha, const float* A,
             const float* B, float beta, float* C) {
  // ikj loop order: streams B and C rows, decent cache behaviour without
  // bringing in a BLAS dependency; model sizes here are small.
  for (std::size_t i = 0; i < M; ++i) {
    float* Ci = C + i * N;
    if (beta == 0.0f) {
      std::fill(Ci, Ci + N, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < N; ++j) Ci[j] *= beta;
    }
    const float* Ai = A + i * K;
    for (std::size_t k = 0; k < K; ++k) {
      const float a = alpha * Ai[k];
      if (a == 0.0f) continue;
      const float* Bk = B + k * N;
      for (std::size_t j = 0; j < N; ++j) Ci[j] += a * Bk[j];
    }
  }
}

void gemm_tn(std::size_t M, std::size_t N, std::size_t K, float alpha, const float* A,
             const float* B, float beta, float* C) {
  // C(MxN) = A^T * B with A stored (KxM): C[i,j] = sum_k A[k,i] * B[k,j].
  for (std::size_t i = 0; i < M; ++i) {
    float* Ci = C + i * N;
    if (beta == 0.0f) {
      std::fill(Ci, Ci + N, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < N; ++j) Ci[j] *= beta;
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    const float* Ak = A + k * M;
    const float* Bk = B + k * N;
    for (std::size_t i = 0; i < M; ++i) {
      const float a = alpha * Ak[i];
      if (a == 0.0f) continue;
      float* Ci = C + i * N;
      for (std::size_t j = 0; j < N; ++j) Ci[j] += a * Bk[j];
    }
  }
}

void gemm_nt(std::size_t M, std::size_t N, std::size_t K, float alpha, const float* A,
             const float* B, float beta, float* C) {
  // C(MxN) = A(MxK) * B^T with B stored (NxK): C[i,j] = sum_k A[i,k] * B[j,k].
  for (std::size_t i = 0; i < M; ++i) {
    const float* Ai = A + i * K;
    float* Ci = C + i * N;
    for (std::size_t j = 0; j < N; ++j) {
      const float* Bj = B + j * K;
      float acc = 0.0f;
      for (std::size_t k = 0; k < K; ++k) acc += Ai[k] * Bj[k];
      Ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * Ci[j]);
    }
  }
}

void add_bias(std::size_t B, std::size_t N, const float* bias, float* y) {
  for (std::size_t b = 0; b < B; ++b) {
    float* yb = y + b * N;
    for (std::size_t j = 0; j < N; ++j) yb[j] += bias[j];
  }
}

void bias_grad(std::size_t B, std::size_t N, const float* dy, float* dbias) {
  std::fill(dbias, dbias + N, 0.0f);
  for (std::size_t b = 0; b < B; ++b) {
    const float* dyb = dy + b * N;
    for (std::size_t j = 0; j < N; ++j) dbias[j] += dyb[j];
  }
}

void relu_forward(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::max(x[i], 0.0f);
}

void relu_backward(const float* dy, const float* x_post, float* dx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dx[i] = x_post[i] > 0.0f ? dy[i] : 0.0f;
}

double softmax_xent_forward(std::size_t B, std::size_t C, const float* logits, const int* labels,
                            float* probs) {
  double loss = 0.0;
  for (std::size_t b = 0; b < B; ++b) {
    const float* lb = logits + b * C;
    float* pb = probs + b * C;
    float maxv = lb[0];
    for (std::size_t c = 1; c < C; ++c) maxv = std::max(maxv, lb[c]);
    double sum = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      pb[c] = std::exp(lb[c] - maxv);
      sum += pb[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::size_t c = 0; c < C; ++c) pb[c] *= inv;
    const int y = labels[b];
    FPS_CHECK(y >= 0 && static_cast<std::size_t>(y) < C) << "label out of range: " << y;
    loss += -std::log(std::max(static_cast<double>(pb[y]), 1e-12));
  }
  return loss / static_cast<double>(B);
}

void softmax_xent_backward(std::size_t B, std::size_t C, const float* probs, const int* labels,
                           float* dlogits) {
  const float inv_b = 1.0f / static_cast<float>(B);
  for (std::size_t b = 0; b < B; ++b) {
    const float* pb = probs + b * C;
    float* db = dlogits + b * C;
    for (std::size_t c = 0; c < C; ++c) db[c] = pb[c] * inv_b;
    db[labels[b]] -= inv_b;
  }
}

void argmax_rows(std::size_t B, std::size_t C, const float* scores, int* out) {
  for (std::size_t b = 0; b < B; ++b) {
    const float* sb = scores + b * C;
    std::size_t best = 0;
    for (std::size_t c = 1; c < C; ++c) {
      if (sb[c] > sb[best]) best = c;
    }
    out[b] = static_cast<int>(best);
  }
}

double l2_norm(std::span<const float> v) noexcept {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

void axpy(float alpha, std::span<const float> y, std::span<float> x) noexcept {
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) x[i] += alpha * y[i];
}

}  // namespace fluentps::ml
