#include "ml/ops.h"

#include <algorithm>
#include <cstring>
#include <cmath>

#include "common/logging.h"

namespace fluentps::ml {

namespace {

/// Scale one C row by beta (0 means overwrite-with-zero, skipping the read).
inline void scale_row(float* Ci, std::size_t N, float beta) {
  if (beta == 0.0f) {
    std::fill(Ci, Ci + N, 0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t j = 0; j < N; ++j) Ci[j] *= beta;
  }
}

}  // namespace

void gemm_nn(std::size_t M, std::size_t N, std::size_t K, float alpha, const float* A,
             const float* B, float beta, float* C) {
  // Row-blocked ikj: four C rows advance together so each B row streamed from
  // memory is reused 4x (the old one-row-at-a-time loop re-read B for every
  // row of C). Per-element accumulation stays in k order, so results match
  // the scalar tail bit-for-bit. The all-zero skip keeps the sparsity win on
  // ReLU-sparse activations without a per-row branch in the inner loop.
  std::size_t i = 0;
  for (; i + 4 <= M; i += 4) {
    float* C0 = C + (i + 0) * N;
    float* C1 = C + (i + 1) * N;
    float* C2 = C + (i + 2) * N;
    float* C3 = C + (i + 3) * N;
    scale_row(C0, N, beta);
    scale_row(C1, N, beta);
    scale_row(C2, N, beta);
    scale_row(C3, N, beta);
    const float* A0 = A + (i + 0) * K;
    const float* A1 = A + (i + 1) * K;
    const float* A2 = A + (i + 2) * K;
    const float* A3 = A + (i + 3) * K;
    for (std::size_t k = 0; k < K; ++k) {
      const float a0 = alpha * A0[k];
      const float a1 = alpha * A1[k];
      const float a2 = alpha * A2[k];
      const float a3 = alpha * A3[k];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* __restrict Bk = B + k * N;
      for (std::size_t j = 0; j < N; ++j) {
        const float b = Bk[j];
        C0[j] += a0 * b;
        C1[j] += a1 * b;
        C2[j] += a2 * b;
        C3[j] += a3 * b;
      }
    }
  }
  for (; i < M; ++i) {
    float* Ci = C + i * N;
    scale_row(Ci, N, beta);
    const float* Ai = A + i * K;
    for (std::size_t k = 0; k < K; ++k) {
      const float a = alpha * Ai[k];
      if (a == 0.0f) continue;
      const float* Bk = B + k * N;
      for (std::size_t j = 0; j < N; ++j) Ci[j] += a * Bk[j];
    }
  }
}

void gemm_tn(std::size_t M, std::size_t N, std::size_t K, float alpha, const float* A,
             const float* B, float beta, float* C) {
  // C(MxN) = A^T * B with A stored (KxM): C[i,j] = sum_k A[k,i] * B[k,j].
  // Same 4-row blocking as gemm_nn; the four a-multipliers are consecutive
  // loads A[k*M + i .. i+3], and each streamed B row feeds four C rows.
  std::size_t i = 0;
  for (; i + 4 <= M; i += 4) {
    float* C0 = C + (i + 0) * N;
    float* C1 = C + (i + 1) * N;
    float* C2 = C + (i + 2) * N;
    float* C3 = C + (i + 3) * N;
    scale_row(C0, N, beta);
    scale_row(C1, N, beta);
    scale_row(C2, N, beta);
    scale_row(C3, N, beta);
    for (std::size_t k = 0; k < K; ++k) {
      const float* Ak = A + k * M + i;
      const float a0 = alpha * Ak[0];
      const float a1 = alpha * Ak[1];
      const float a2 = alpha * Ak[2];
      const float a3 = alpha * Ak[3];
      if (a0 == 0.0f && a1 == 0.0f && a2 == 0.0f && a3 == 0.0f) continue;
      const float* __restrict Bk = B + k * N;
      for (std::size_t j = 0; j < N; ++j) {
        const float b = Bk[j];
        C0[j] += a0 * b;
        C1[j] += a1 * b;
        C2[j] += a2 * b;
        C3[j] += a3 * b;
      }
    }
  }
  for (; i < M; ++i) {
    float* Ci = C + i * N;
    scale_row(Ci, N, beta);
    for (std::size_t k = 0; k < K; ++k) {
      const float a = alpha * A[k * M + i];
      if (a == 0.0f) continue;
      const float* Bk = B + k * N;
      for (std::size_t j = 0; j < N; ++j) Ci[j] += a * Bk[j];
    }
  }
}

void gemm_nt(std::size_t M, std::size_t N, std::size_t K, float alpha, const float* A,
             const float* B, float beta, float* C) {
  // C(MxN) = A(MxK) * B^T with B stored (NxK): C[i,j] = sum_k A[i,k] * B[j,k].
  // Four output columns share each A element (loaded once per k instead of
  // once per (j,k)) and carry independent accumulators for ILP; each
  // element's k-order sum is unchanged vs the scalar tail.
  for (std::size_t i = 0; i < M; ++i) {
    const float* Ai = A + i * K;
    float* Ci = C + i * N;
    std::size_t j = 0;
    for (; j + 4 <= N; j += 4) {
      const float* __restrict B0 = B + (j + 0) * K;
      const float* __restrict B1 = B + (j + 1) * K;
      const float* __restrict B2 = B + (j + 2) * K;
      const float* __restrict B3 = B + (j + 3) * K;
      float acc0 = 0.0f;
      float acc1 = 0.0f;
      float acc2 = 0.0f;
      float acc3 = 0.0f;
      for (std::size_t k = 0; k < K; ++k) {
        const float a = Ai[k];
        acc0 += a * B0[k];
        acc1 += a * B1[k];
        acc2 += a * B2[k];
        acc3 += a * B3[k];
      }
      if (beta == 0.0f) {
        Ci[j + 0] = alpha * acc0;
        Ci[j + 1] = alpha * acc1;
        Ci[j + 2] = alpha * acc2;
        Ci[j + 3] = alpha * acc3;
      } else {
        Ci[j + 0] = alpha * acc0 + beta * Ci[j + 0];
        Ci[j + 1] = alpha * acc1 + beta * Ci[j + 1];
        Ci[j + 2] = alpha * acc2 + beta * Ci[j + 2];
        Ci[j + 3] = alpha * acc3 + beta * Ci[j + 3];
      }
    }
    for (; j < N; ++j) {
      const float* Bj = B + j * K;
      float acc = 0.0f;
      for (std::size_t k = 0; k < K; ++k) acc += Ai[k] * Bj[k];
      Ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * Ci[j]);
    }
  }
}

void add_bias(std::size_t B, std::size_t N, const float* bias, float* y) {
  for (std::size_t b = 0; b < B; ++b) {
    float* yb = y + b * N;
    for (std::size_t j = 0; j < N; ++j) yb[j] += bias[j];
  }
}

void bias_grad(std::size_t B, std::size_t N, const float* dy, float* dbias) {
  // Four dy rows per sweep: dbias is read/written once per group of four rows
  // instead of once per row. Within each element the four adds stay in row
  // order (b, b+1, b+2, b+3), matching the scalar accumulation order.
  std::fill(dbias, dbias + N, 0.0f);
  std::size_t b = 0;
  for (; b + 4 <= B; b += 4) {
    const float* __restrict d0 = dy + (b + 0) * N;
    const float* __restrict d1 = dy + (b + 1) * N;
    const float* __restrict d2 = dy + (b + 2) * N;
    const float* __restrict d3 = dy + (b + 3) * N;
    for (std::size_t j = 0; j < N; ++j) {
      dbias[j] = (((dbias[j] + d0[j]) + d1[j]) + d2[j]) + d3[j];
    }
  }
  for (; b < B; ++b) {
    const float* dyb = dy + b * N;
    for (std::size_t j = 0; j < N; ++j) dbias[j] += dyb[j];
  }
}

void relu_forward(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::max(x[i], 0.0f);
}

void relu_backward(const float* dy, const float* x_post, float* dx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dx[i] = x_post[i] > 0.0f ? dy[i] : 0.0f;
}

double softmax_xent_forward(std::size_t B, std::size_t C, const float* logits, const int* labels,
                            float* probs) {
  double loss = 0.0;
  for (std::size_t b = 0; b < B; ++b) {
    const float* lb = logits + b * C;
    float* pb = probs + b * C;
    float maxv = lb[0];
    for (std::size_t c = 1; c < C; ++c) maxv = std::max(maxv, lb[c]);
    double sum = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      pb[c] = std::exp(lb[c] - maxv);
      sum += pb[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::size_t c = 0; c < C; ++c) pb[c] *= inv;
    const int y = labels[b];
    FPS_CHECK(y >= 0 && static_cast<std::size_t>(y) < C) << "label out of range: " << y;
    loss += -std::log(std::max(static_cast<double>(pb[y]), 1e-12));
  }
  return loss / static_cast<double>(B);
}

void softmax_xent_backward(std::size_t B, std::size_t C, const float* probs, const int* labels,
                           float* dlogits) {
  const float inv_b = 1.0f / static_cast<float>(B);
  for (std::size_t b = 0; b < B; ++b) {
    const float* pb = probs + b * C;
    float* db = dlogits + b * C;
    for (std::size_t c = 0; c < C; ++c) db[c] = pb[c] * inv_b;
    db[labels[b]] -= inv_b;
  }
}

void argmax_rows(std::size_t B, std::size_t C, const float* scores, int* out) {
  for (std::size_t b = 0; b < B; ++b) {
    const float* sb = scores + b * C;
    std::size_t best = 0;
    for (std::size_t c = 1; c < C; ++c) {
      if (sb[c] > sb[best]) best = c;
    }
    out[b] = static_cast<int>(best);
  }
}

double l2_norm(std::span<const float> v) noexcept {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

void axpy(float alpha, std::span<const float> y, std::span<float> x) noexcept {
  // 8-wide unroll with restrict-qualified pointers: the spans may not alias
  // (callers pass distinct gradient/weight buffers), and telling the compiler
  // so lets it keep eight independent fma chains in flight. Each element is
  // still exactly one `x[i] += alpha * y[i]`, so results are bit-identical to
  // the scalar loop regardless of unrolling.
  const std::size_t n = std::min(x.size(), y.size());
  float* __restrict xp = x.data();
  const float* __restrict yp = y.data();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    xp[i + 0] += alpha * yp[i + 0];
    xp[i + 1] += alpha * yp[i + 1];
    xp[i + 2] += alpha * yp[i + 2];
    xp[i + 3] += alpha * yp[i + 3];
    xp[i + 4] += alpha * yp[i + 4];
    xp[i + 5] += alpha * yp[i + 5];
    xp[i + 6] += alpha * yp[i + 6];
    xp[i + 7] += alpha * yp[i + 7];
  }
  for (; i < n; ++i) xp[i] += alpha * yp[i];
}

void copy(std::span<const float> src, std::span<float> dst) noexcept {
  // Tiny slices: an open-coded loop skips the libc dispatch overhead.
  // Everything else: memmove, whose runtime-dispatched kernel copies at the
  // widest vector width the machine has — an open-coded loop compiled
  // without -march only reaches baseline vector width and loses ~2x on the
  // ~1k-float slices gather/scatter move per pull.
  const std::size_t n = std::min(src.size(), dst.size());
  float* __restrict dp = dst.data();
  const float* __restrict sp = src.data();
  if (n >= 32) {
    std::memmove(dp, sp, n * sizeof(float));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) dp[i] = sp[i];
}

}  // namespace fluentps::ml
