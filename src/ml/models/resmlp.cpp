#include "ml/models/resmlp.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ml/ops.h"

namespace fluentps::ml {

std::size_t ResMlp::num_params() const noexcept {
  return dim_ * hidden_ + hidden_ + blocks_ * block_params() + hidden_ * classes_ + classes_;
}

std::vector<std::size_t> ResMlp::layer_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(2 + 4 * blocks_ + 2);
  sizes.push_back(dim_ * hidden_);
  sizes.push_back(hidden_);
  for (std::size_t k = 0; k < blocks_; ++k) {
    sizes.push_back(hidden_ * hidden_);
    sizes.push_back(hidden_);
    sizes.push_back(hidden_ * hidden_);
    sizes.push_back(hidden_);
  }
  sizes.push_back(hidden_ * classes_);
  sizes.push_back(classes_);
  return sizes;
}

void ResMlp::init_params(std::span<float> params, Rng& rng) const {
  FPS_CHECK(params.size() == num_params()) << "param buffer size mismatch";
  std::fill(params.begin(), params.end(), 0.0f);
  const double s_in = std::sqrt(2.0 / static_cast<double>(dim_));
  const double s1 = std::sqrt(2.0 / static_cast<double>(hidden_));
  // Scale the residual-branch output layer down by sqrt(blocks) so the sum of
  // B residual branches keeps unit variance at init (standard deep-resnet
  // trick; without it 27 blocks blow up the forward pass).
  const double s2 = 1.0 / (std::sqrt(static_cast<double>(hidden_)) *
                           std::sqrt(static_cast<double>(std::max<std::size_t>(blocks_, 1))));
  const double s_out = 1.0 / std::sqrt(static_cast<double>(hidden_));

  for (std::size_t i = 0; i < dim_ * hidden_; ++i)
    params[off_win() + i] = static_cast<float>(rng.normal(0.0, s_in));
  for (std::size_t k = 0; k < blocks_; ++k) {
    const std::size_t base = block_base(k);
    float* w1 = params.data() + base;
    float* w2 = params.data() + base + hidden_ * hidden_ + hidden_;
    for (std::size_t i = 0; i < hidden_ * hidden_; ++i)
      w1[i] = static_cast<float>(rng.normal(0.0, s1));
    for (std::size_t i = 0; i < hidden_ * hidden_; ++i)
      w2[i] = static_cast<float>(rng.normal(0.0, s2));
  }
  for (std::size_t i = 0; i < hidden_ * classes_; ++i)
    params[off_wout() + i] = static_cast<float>(rng.normal(0.0, s_out));
}

std::span<float> ResMlp::forward(std::span<const float> params, const Batch& batch,
                                 Workspace& ws) const {
  FPS_CHECK(batch.dim == dim_) << "batch dim " << batch.dim << " != model dim " << dim_;
  const std::size_t n = batch.n;
  const std::size_t hs_stride = n * hidden_;
  auto hs = ws.buf(0, (blocks_ + 1) * hs_stride);  // h after stem and after each block
  auto us = ws.buf(1, std::max<std::size_t>(blocks_, 1) * hs_stride);  // inner activations
  auto logits = ws.buf(2, n * classes_);

  // Stem.
  float* h0 = hs.data();
  gemm_nn(n, hidden_, dim_, 1.0f, batch.X, params.data() + off_win(), 0.0f, h0);
  add_bias(n, hidden_, params.data() + off_bin(), h0);
  relu_forward(h0, hs_stride);

  // Residual blocks: h_{k+1} = h_k + W2 * ReLU(W1 * h_k + b1) + b2.
  for (std::size_t k = 0; k < blocks_; ++k) {
    const std::size_t base = block_base(k);
    const float* w1 = params.data() + base;
    const float* b1 = params.data() + base + hidden_ * hidden_;
    const float* w2 = params.data() + base + hidden_ * hidden_ + hidden_;
    const float* b2 = params.data() + base + 2 * hidden_ * hidden_ + hidden_;
    const float* h_in = hs.data() + k * hs_stride;
    float* u = us.data() + k * hs_stride;
    float* h_out = hs.data() + (k + 1) * hs_stride;

    gemm_nn(n, hidden_, hidden_, 1.0f, h_in, w1, 0.0f, u);
    add_bias(n, hidden_, b1, u);
    relu_forward(u, hs_stride);

    std::copy(h_in, h_in + hs_stride, h_out);  // identity skip
    gemm_nn(n, hidden_, hidden_, 1.0f, u, w2, 1.0f, h_out);
    add_bias(n, hidden_, b2, h_out);
  }

  const float* h_last = hs.data() + blocks_ * hs_stride;
  gemm_nn(n, classes_, hidden_, 1.0f, h_last, params.data() + off_wout(), 0.0f, logits.data());
  add_bias(n, classes_, params.data() + off_bout(), logits.data());
  return logits;
}

double ResMlp::grad(std::span<const float> params, const Batch& batch, std::span<float> grad,
                    Workspace& ws) const {
  FPS_CHECK(grad.size() == num_params()) << "grad buffer size mismatch";
  const std::size_t n = batch.n;
  const std::size_t hs_stride = n * hidden_;

  auto logits = forward(params, batch, ws);
  auto hs = ws.buf(0, (blocks_ + 1) * hs_stride);
  auto us = ws.buf(1, std::max<std::size_t>(blocks_, 1) * hs_stride);
  auto probs = ws.buf(3, n * classes_);
  const double loss_value =
      softmax_xent_forward(n, classes_, logits.data(), batch.y, probs.data());
  auto dlogits = ws.buf(4, n * classes_);
  softmax_xent_backward(n, classes_, probs.data(), batch.y, dlogits.data());

  // Head.
  const float* h_last = hs.data() + blocks_ * hs_stride;
  gemm_tn(hidden_, classes_, n, 1.0f, h_last, dlogits.data(), 0.0f, grad.data() + off_wout());
  bias_grad(n, classes_, dlogits.data(), grad.data() + off_bout());
  auto dh = ws.buf(5, hs_stride);
  gemm_nt(n, hidden_, classes_, 1.0f, dlogits.data(), params.data() + off_wout(), 0.0f, dh.data());

  auto du = ws.buf(6, hs_stride);
  // Blocks in reverse: dh flows through both the skip and the branch.
  for (std::size_t k = blocks_; k-- > 0;) {
    const std::size_t base = block_base(k);
    const float* w1 = params.data() + base;
    const float* w2 = params.data() + base + hidden_ * hidden_ + hidden_;
    float* gw1 = grad.data() + base;
    float* gb1 = grad.data() + base + hidden_ * hidden_;
    float* gw2 = grad.data() + base + hidden_ * hidden_ + hidden_;
    float* gb2 = grad.data() + base + 2 * hidden_ * hidden_ + hidden_;
    const float* h_in = hs.data() + k * hs_stride;
    const float* u = us.data() + k * hs_stride;

    // Branch output: y = W2 * u + b2, added to skip. dy == dh.
    gemm_tn(hidden_, hidden_, n, 1.0f, u, dh.data(), 0.0f, gw2);
    bias_grad(n, hidden_, dh.data(), gb2);
    gemm_nt(n, hidden_, hidden_, 1.0f, dh.data(), w2, 0.0f, du.data());
    relu_backward(du.data(), u, du.data(), hs_stride);

    // Inner layer: u_pre = W1 * h_in + b1.
    gemm_tn(hidden_, hidden_, n, 1.0f, h_in, du.data(), 0.0f, gw1);
    bias_grad(n, hidden_, du.data(), gb1);
    // dh_in = dh (skip) + du * W1^T (branch); accumulate in place.
    gemm_nt(n, hidden_, hidden_, 1.0f, du.data(), w1, 1.0f, dh.data());
  }

  // Stem: h0 = ReLU(Win * x + bin).
  relu_backward(dh.data(), hs.data(), dh.data(), hs_stride);
  gemm_tn(dim_, hidden_, n, 1.0f, batch.X, dh.data(), 0.0f, grad.data() + off_win());
  bias_grad(n, hidden_, dh.data(), grad.data() + off_bin());
  return loss_value;
}

double ResMlp::loss(std::span<const float> params, const Batch& batch, Workspace& ws) const {
  auto logits = forward(params, batch, ws);
  auto probs = ws.buf(3, batch.n * classes_);
  return softmax_xent_forward(batch.n, classes_, logits.data(), batch.y, probs.data());
}

void ResMlp::predict(std::span<const float> params, const Batch& batch, std::span<int> out,
                     Workspace& ws) const {
  FPS_CHECK(out.size() >= batch.n) << "prediction buffer too small";
  auto logits = forward(params, batch, ws);
  argmax_rows(batch.n, classes_, logits.data(), out.data());
}

}  // namespace fluentps::ml
