// Deep residual MLP — the "ResNet-56" stand-in (DESIGN.md §1).
//
// Architecture (all dense):
//   h0 = ReLU(Win * x + bin)
//   for k in 1..B:  u = ReLU(W1k * h + b1k);  h = h + (W2k * u + b2k)
//   logits = Wout * h + bout
//
// With B = 27 blocks (2 weight layers each) plus stem and head, the network
// has 2*27 + 2 = 56 weight layers — matching ResNet-56's depth and its
// identity-skip structure, at a width that trains on a CPU in seconds.
// Layout: [Win|bin| {W1k|b1k|W2k|b2k} x B |Wout|bout].
#pragma once

#include "ml/model.h"

namespace fluentps::ml {

class ResMlp final : public Model {
 public:
  ResMlp(std::size_t dim, std::size_t hidden, std::size_t blocks, std::size_t classes) noexcept
      : dim_(dim), hidden_(hidden), blocks_(blocks), classes_(classes) {}

  [[nodiscard]] std::size_t num_params() const noexcept override;
  [[nodiscard]] std::vector<std::size_t> layer_sizes() const override;
  void init_params(std::span<float> params, Rng& rng) const override;
  double grad(std::span<const float> params, const Batch& batch, std::span<float> grad,
              Workspace& ws) const override;
  double loss(std::span<const float> params, const Batch& batch, Workspace& ws) const override;
  void predict(std::span<const float> params, const Batch& batch, std::span<int> out,
               Workspace& ws) const override;
  [[nodiscard]] std::string name() const override { return "resmlp"; }

  [[nodiscard]] std::size_t blocks() const noexcept { return blocks_; }
  /// Number of weight layers (paper's depth figure): 2*blocks + 2.
  [[nodiscard]] std::size_t depth() const noexcept { return 2 * blocks_ + 2; }

 private:
  // Parameter offsets.
  [[nodiscard]] std::size_t off_win() const noexcept { return 0; }
  [[nodiscard]] std::size_t off_bin() const noexcept { return dim_ * hidden_; }
  [[nodiscard]] std::size_t block_base(std::size_t k) const noexcept {
    return dim_ * hidden_ + hidden_ + k * block_params();
  }
  [[nodiscard]] std::size_t block_params() const noexcept {
    return 2 * hidden_ * hidden_ + 2 * hidden_;
  }
  [[nodiscard]] std::size_t off_wout() const noexcept { return block_base(blocks_); }
  [[nodiscard]] std::size_t off_bout() const noexcept {
    return off_wout() + hidden_ * classes_;
  }

  /// Forward pass. Saves all block-boundary activations (ws slot 0) and
  /// post-ReLU inner activations (slot 1); logits returned from slot 2.
  std::span<float> forward(std::span<const float> params, const Batch& batch, Workspace& ws) const;

  std::size_t dim_;
  std::size_t hidden_;
  std::size_t blocks_;
  std::size_t classes_;
};

}  // namespace fluentps::ml
