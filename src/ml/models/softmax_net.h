// Linear softmax classifier — the "AlexNet" stand-in (see DESIGN.md §1):
// the shallow model whose accuracy the staleness experiments stress.
// Layout: [ W (dim x C) | b (C) ].
#pragma once

#include "ml/model.h"

namespace fluentps::ml {

class SoftmaxNet final : public Model {
 public:
  SoftmaxNet(std::size_t dim, std::size_t classes) noexcept : dim_(dim), classes_(classes) {}

  [[nodiscard]] std::size_t num_params() const noexcept override {
    return dim_ * classes_ + classes_;
  }
  [[nodiscard]] std::vector<std::size_t> layer_sizes() const override {
    return {dim_ * classes_, classes_};
  }
  void init_params(std::span<float> params, Rng& rng) const override;
  double grad(std::span<const float> params, const Batch& batch, std::span<float> grad,
              Workspace& ws) const override;
  double loss(std::span<const float> params, const Batch& batch, Workspace& ws) const override;
  void predict(std::span<const float> params, const Batch& batch, std::span<int> out,
               Workspace& ws) const override;
  [[nodiscard]] std::string name() const override { return "softmax"; }

 private:
  /// logits(BxC) = X(Bxdim) * W + b, written into ws slot 0.
  std::span<float> forward(std::span<const float> params, const Batch& batch, Workspace& ws) const;

  std::size_t dim_;
  std::size_t classes_;
};

}  // namespace fluentps::ml
