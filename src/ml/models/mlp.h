// Two-layer perceptron with ReLU. Layout:
//   [ W1 (dim x H) | b1 (H) | W2 (H x C) | b2 (C) ].
#pragma once

#include "ml/model.h"

namespace fluentps::ml {

class Mlp final : public Model {
 public:
  Mlp(std::size_t dim, std::size_t hidden, std::size_t classes) noexcept
      : dim_(dim), hidden_(hidden), classes_(classes) {}

  [[nodiscard]] std::size_t num_params() const noexcept override {
    return dim_ * hidden_ + hidden_ + hidden_ * classes_ + classes_;
  }
  [[nodiscard]] std::vector<std::size_t> layer_sizes() const override {
    return {dim_ * hidden_, hidden_, hidden_ * classes_, classes_};
  }
  void init_params(std::span<float> params, Rng& rng) const override;
  double grad(std::span<const float> params, const Batch& batch, std::span<float> grad,
              Workspace& ws) const override;
  double loss(std::span<const float> params, const Batch& batch, Workspace& ws) const override;
  void predict(std::span<const float> params, const Batch& batch, std::span<int> out,
               Workspace& ws) const override;
  [[nodiscard]] std::string name() const override { return "mlp"; }

 private:
  struct Offsets {
    std::size_t w1, b1, w2, b2;
  };
  [[nodiscard]] Offsets offsets() const noexcept {
    return {0, dim_ * hidden_, dim_ * hidden_ + hidden_,
            dim_ * hidden_ + hidden_ + hidden_ * classes_};
  }

  /// Forward pass; hidden activations in ws slot 0, logits in slot 1.
  std::span<float> forward(std::span<const float> params, const Batch& batch, Workspace& ws) const;

  std::size_t dim_;
  std::size_t hidden_;
  std::size_t classes_;
};

}  // namespace fluentps::ml
