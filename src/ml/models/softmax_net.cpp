#include "ml/models/softmax_net.h"

#include <cmath>

#include "common/logging.h"
#include "ml/ops.h"

namespace fluentps::ml {

void SoftmaxNet::init_params(std::span<float> params, Rng& rng) const {
  FPS_CHECK(params.size() == num_params()) << "param buffer size mismatch";
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
  for (std::size_t i = 0; i < dim_ * classes_; ++i) {
    params[i] = static_cast<float>(rng.normal(0.0, scale));
  }
  for (std::size_t c = 0; c < classes_; ++c) params[dim_ * classes_ + c] = 0.0f;
}

std::span<float> SoftmaxNet::forward(std::span<const float> params, const Batch& batch,
                                     Workspace& ws) const {
  FPS_CHECK(batch.dim == dim_) << "batch dim " << batch.dim << " != model dim " << dim_;
  auto logits = ws.buf(0, batch.n * classes_);
  const float* W = params.data();
  const float* b = params.data() + dim_ * classes_;
  gemm_nn(batch.n, classes_, dim_, 1.0f, batch.X, W, 0.0f, logits.data());
  add_bias(batch.n, classes_, b, logits.data());
  return logits;
}

double SoftmaxNet::grad(std::span<const float> params, const Batch& batch, std::span<float> grad,
                        Workspace& ws) const {
  FPS_CHECK(grad.size() == num_params()) << "grad buffer size mismatch";
  auto logits = forward(params, batch, ws);
  auto probs = ws.buf(1, batch.n * classes_);
  const double loss_value =
      softmax_xent_forward(batch.n, classes_, logits.data(), batch.y, probs.data());
  auto dlogits = ws.buf(2, batch.n * classes_);
  softmax_xent_backward(batch.n, classes_, probs.data(), batch.y, dlogits.data());
  // dW(dim x C) = X^T(dim x B) * dlogits(B x C); db = column sums of dlogits.
  gemm_tn(dim_, classes_, batch.n, 1.0f, batch.X, dlogits.data(), 0.0f, grad.data());
  bias_grad(batch.n, classes_, dlogits.data(), grad.data() + dim_ * classes_);
  return loss_value;
}

double SoftmaxNet::loss(std::span<const float> params, const Batch& batch, Workspace& ws) const {
  auto logits = forward(params, batch, ws);
  auto probs = ws.buf(1, batch.n * classes_);
  return softmax_xent_forward(batch.n, classes_, logits.data(), batch.y, probs.data());
}

void SoftmaxNet::predict(std::span<const float> params, const Batch& batch, std::span<int> out,
                         Workspace& ws) const {
  FPS_CHECK(out.size() >= batch.n) << "prediction buffer too small";
  auto logits = forward(params, batch, ws);
  argmax_rows(batch.n, classes_, logits.data(), out.data());
}

}  // namespace fluentps::ml
