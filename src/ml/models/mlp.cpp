#include "ml/models/mlp.h"

#include <cmath>

#include "common/logging.h"
#include "ml/ops.h"

namespace fluentps::ml {

void Mlp::init_params(std::span<float> params, Rng& rng) const {
  FPS_CHECK(params.size() == num_params()) << "param buffer size mismatch";
  const auto off = offsets();
  // He initialization for the ReLU layer, Xavier-ish for the head.
  const double s1 = std::sqrt(2.0 / static_cast<double>(dim_));
  const double s2 = 1.0 / std::sqrt(static_cast<double>(hidden_));
  for (std::size_t i = 0; i < dim_ * hidden_; ++i)
    params[off.w1 + i] = static_cast<float>(rng.normal(0.0, s1));
  for (std::size_t i = 0; i < hidden_; ++i) params[off.b1 + i] = 0.0f;
  for (std::size_t i = 0; i < hidden_ * classes_; ++i)
    params[off.w2 + i] = static_cast<float>(rng.normal(0.0, s2));
  for (std::size_t i = 0; i < classes_; ++i) params[off.b2 + i] = 0.0f;
}

std::span<float> Mlp::forward(std::span<const float> params, const Batch& batch,
                              Workspace& ws) const {
  FPS_CHECK(batch.dim == dim_) << "batch dim " << batch.dim << " != model dim " << dim_;
  const auto off = offsets();
  auto h = ws.buf(0, batch.n * hidden_);
  auto logits = ws.buf(1, batch.n * classes_);
  gemm_nn(batch.n, hidden_, dim_, 1.0f, batch.X, params.data() + off.w1, 0.0f, h.data());
  add_bias(batch.n, hidden_, params.data() + off.b1, h.data());
  relu_forward(h.data(), h.size());
  gemm_nn(batch.n, classes_, hidden_, 1.0f, h.data(), params.data() + off.w2, 0.0f, logits.data());
  add_bias(batch.n, classes_, params.data() + off.b2, logits.data());
  return logits;
}

double Mlp::grad(std::span<const float> params, const Batch& batch, std::span<float> grad,
                 Workspace& ws) const {
  FPS_CHECK(grad.size() == num_params()) << "grad buffer size mismatch";
  const auto off = offsets();
  auto logits = forward(params, batch, ws);
  auto h = ws.buf(0, batch.n * hidden_);  // post-ReLU activations from forward
  auto probs = ws.buf(2, batch.n * classes_);
  const double loss_value =
      softmax_xent_forward(batch.n, classes_, logits.data(), batch.y, probs.data());
  auto dlogits = ws.buf(3, batch.n * classes_);
  softmax_xent_backward(batch.n, classes_, probs.data(), batch.y, dlogits.data());

  // Head: dW2 = h^T * dlogits; db2 = colsum(dlogits); dh = dlogits * W2^T.
  gemm_tn(hidden_, classes_, batch.n, 1.0f, h.data(), dlogits.data(), 0.0f, grad.data() + off.w2);
  bias_grad(batch.n, classes_, dlogits.data(), grad.data() + off.b2);
  auto dh = ws.buf(4, batch.n * hidden_);
  gemm_nt(batch.n, hidden_, classes_, 1.0f, dlogits.data(), params.data() + off.w2, 0.0f,
          dh.data());
  relu_backward(dh.data(), h.data(), dh.data(), dh.size());

  // First layer: dW1 = X^T * dh; db1 = colsum(dh).
  gemm_tn(dim_, hidden_, batch.n, 1.0f, batch.X, dh.data(), 0.0f, grad.data() + off.w1);
  bias_grad(batch.n, hidden_, dh.data(), grad.data() + off.b1);
  return loss_value;
}

double Mlp::loss(std::span<const float> params, const Batch& batch, Workspace& ws) const {
  auto logits = forward(params, batch, ws);
  auto probs = ws.buf(2, batch.n * classes_);
  return softmax_xent_forward(batch.n, classes_, logits.data(), batch.y, probs.data());
}

void Mlp::predict(std::span<const float> params, const Batch& batch, std::span<int> out,
                  Workspace& ws) const {
  FPS_CHECK(out.size() >= batch.n) << "prediction buffer too small";
  auto logits = forward(params, batch, ws);
  argmax_rows(batch.n, classes_, logits.data(), out.data());
}

}  // namespace fluentps::ml
