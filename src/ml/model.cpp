#include "ml/model.h"

#include "common/logging.h"
#include "ml/models/mlp.h"
#include "ml/models/resmlp.h"
#include "ml/models/softmax_net.h"

namespace fluentps::ml {

std::unique_ptr<Model> make_model(const ModelSpec& spec, std::size_t dim, std::size_t classes) {
  if (spec.kind == "softmax") {
    return std::make_unique<SoftmaxNet>(dim, classes);
  }
  if (spec.kind == "mlp") {
    return std::make_unique<Mlp>(dim, spec.hidden, classes);
  }
  if (spec.kind == "resmlp") {
    return std::make_unique<ResMlp>(dim, spec.hidden, spec.blocks, classes);
  }
  FPS_CHECK(false) << "unknown model kind: " << spec.kind;
  return nullptr;
}

}  // namespace fluentps::ml
