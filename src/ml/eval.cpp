#include "ml/eval.h"

#include <algorithm>
#include <vector>

namespace fluentps::ml {

double test_accuracy(const Model& model, std::span<const float> params, const Dataset& data,
                     Workspace& ws, std::size_t eval_batch) {
  const std::size_t n = data.num_test();
  if (n == 0) return 0.0;
  std::vector<int> pred(eval_batch);
  std::size_t correct = 0;
  for (std::size_t begin = 0; begin < n; begin += eval_batch) {
    const std::size_t b = std::min(eval_batch, n - begin);
    const Batch batch = data.test_batch(begin, b);
    model.predict(params, batch, {pred.data(), b}, ws);
    for (std::size_t i = 0; i < b; ++i) {
      if (pred[i] == batch.y[i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double test_loss(const Model& model, std::span<const float> params, const Dataset& data,
                 Workspace& ws, std::size_t eval_batch) {
  const std::size_t n = data.num_test();
  if (n == 0) return 0.0;
  double weighted = 0.0;
  for (std::size_t begin = 0; begin < n; begin += eval_batch) {
    const std::size_t b = std::min(eval_batch, n - begin);
    weighted += model.loss(params, data.test_batch(begin, b), ws) * static_cast<double>(b);
  }
  return weighted / static_cast<double>(n);
}

}  // namespace fluentps::ml
