// Server-side per-row optimizers for the sparse embedding path (src/embed).
//
// Dense training keeps optimizer state worker-side (ml::Optimizer computes an
// update, the server applies `w += g / N`). Embedding rows invert that: a row
// is touched by whichever workers happened to sample it, so momentum-style
// state kept on any one worker would be wrong. Following OpenEmbedding, the
// *server* owns the optimizer state, co-located with the row it belongs to,
// and applies raw gradients as they drain from the round reducer.
//
// Kept deliberately tiny and branch-predictable: row_apply() is the innermost
// loop of the sparse apply path (BM_EmbeddingRowApply measures it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace fluentps::ml {

enum class RowOptKind : std::uint8_t {
  kSgd = 0,      ///< w -= lr * g; stateless
  kAdaGrad = 1,  ///< h += g*g; w -= lr * g / (sqrt(h) + eps); state = h (dim floats)
};

/// Parse "sgd" | "adagrad" (FPS_CHECK on anything else).
RowOptKind parse_row_opt(const std::string& s);
const char* to_string(RowOptKind k) noexcept;

struct RowOptimizerSpec {
  RowOptKind kind = RowOptKind::kSgd;
  float lr = 0.1f;
  float adagrad_eps = 1e-8f;
};

/// Floats of per-row optimizer state the table must co-allocate with each
/// row's values (0 for SGD, dim for AdaGrad's accumulator).
[[nodiscard]] std::size_t row_state_size(RowOptKind kind, std::size_t dim) noexcept;

/// Apply one gradient to one row in place. `state` must be
/// row_state_size(spec.kind, row.size()) long and live next to the row
/// (the table allocates them contiguously). grad.size() == row.size().
void row_apply(const RowOptimizerSpec& spec, std::span<float> row, std::span<float> state,
               std::span<const float> grad) noexcept;

}  // namespace fluentps::ml
