#include "ml/dataset.h"

#include <cmath>

#include "common/logging.h"
#include "ml/ops.h"

namespace fluentps::ml {
namespace {

/// Frozen random two-layer teacher: logits = W2 * tanh(W1 * x).
struct Teacher {
  std::size_t dim, hidden, classes;
  std::vector<float> w1;  // hidden x dim
  std::vector<float> w2;  // classes x hidden

  Teacher(const DataSpec& spec, Rng& rng)
      : dim(spec.dim), hidden(spec.teacher_hidden), classes(spec.num_classes) {
    w1.resize(hidden * dim);
    w2.resize(classes * hidden);
    const double s1 = 1.0 / std::sqrt(static_cast<double>(dim));
    const double s2 = 1.0 / std::sqrt(static_cast<double>(hidden));
    for (auto& w : w1) w = static_cast<float>(rng.normal(0.0, s1));
    for (auto& w : w2) w = static_cast<float>(rng.normal(0.0, s2));
  }

  int label(const float* x, Rng& rng, double noise) const {
    std::vector<float> h(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
      float acc = 0.0f;
      const float* wj = w1.data() + j * dim;
      for (std::size_t d = 0; d < dim; ++d) acc += wj[d] * x[d];
      h[j] = std::tanh(acc);
    }
    std::size_t best = 0;
    float best_score = -1e30f;
    for (std::size_t c = 0; c < classes; ++c) {
      float acc = 0.0f;
      const float* wc = w2.data() + c * hidden;
      for (std::size_t j = 0; j < hidden; ++j) acc += wc[j] * h[j];
      if (acc > best_score) {
        best_score = acc;
        best = c;
      }
    }
    if (noise > 0.0 && rng.bernoulli(noise)) {
      return static_cast<int>(rng.uniform_u64(classes));
    }
    return static_cast<int>(best);
  }
};

void fill_split(const Teacher& teacher, const DataSpec& spec, std::size_t n, Rng& rng,
                std::vector<float>& X, std::vector<int>& y) {
  X.resize(n * spec.dim);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    float* xi = X.data() + i * spec.dim;
    for (std::size_t d = 0; d < spec.dim; ++d) xi[d] = static_cast<float>(rng.normal());
    y[i] = teacher.label(xi, rng, spec.label_noise);
  }
}

}  // namespace

Dataset Dataset::synthesize(const DataSpec& spec) {
  FPS_CHECK(spec.num_classes >= 2) << "need at least 2 classes";
  FPS_CHECK(spec.dim >= 1) << "need at least 1 feature";
  Dataset d;
  d.dim_ = spec.dim;
  d.num_classes_ = spec.num_classes;
  Rng teacher_rng(spec.seed, /*stream=*/0x7EAC);
  Teacher teacher(spec, teacher_rng);
  Rng train_rng(spec.seed, /*stream=*/1);
  Rng test_rng(spec.seed, /*stream=*/2);
  fill_split(teacher, spec, spec.num_train, train_rng, d.x_train_, d.y_train_);
  fill_split(teacher, spec, spec.num_test, test_rng, d.x_test_, d.y_test_);
  return d;
}

Batch Dataset::test_batch(std::size_t begin, std::size_t n) const {
  FPS_CHECK(begin + n <= num_test()) << "test batch out of range";
  return Batch{x_test_.data() + begin * dim_, y_test_.data() + begin, n, dim_};
}

BatchSampler::BatchSampler(const Dataset& data, std::uint32_t worker, std::uint32_t num_workers,
                           std::size_t batch_size, std::uint64_t seed)
    : data_(data), batch_size_(batch_size), rng_(seed, 0x5A17 + worker) {
  FPS_CHECK(num_workers > 0) << "num_workers must be positive";
  FPS_CHECK(batch_size > 0) << "batch_size must be positive";
  const std::size_t n = data.num_train();
  // Contiguous shard with remainder spread over the first workers.
  const std::size_t base = n / num_workers;
  const std::size_t extra = n % num_workers;
  const std::size_t begin = static_cast<std::size_t>(worker) * base + std::min<std::size_t>(worker, extra);
  const std::size_t len = base + (worker < extra ? 1 : 0);
  FPS_CHECK(len > 0) << "worker " << worker << " got an empty data shard (n=" << n << ")";
  indices_.resize(len);
  for (std::size_t i = 0; i < len; ++i) indices_[i] = begin + i;
  rng_.shuffle(indices_);
}

Batch BatchSampler::next() {
  const std::size_t dim = data_.dim();
  const std::size_t b = std::min(batch_size_, indices_.size());
  xbuf_.resize(b * dim);
  ybuf_.resize(b);
  for (std::size_t i = 0; i < b; ++i) {
    if (cursor_ >= indices_.size()) {
      cursor_ = 0;
      rng_.shuffle(indices_);
    }
    const std::size_t row = indices_[cursor_++];
    const float* src = data_.x_train().data() + row * dim;
    std::copy(src, src + dim, xbuf_.data() + i * dim);
    ybuf_[i] = data_.y_train()[row];
  }
  return Batch{xbuf_.data(), ybuf_.data(), b, dim};
}

}  // namespace fluentps::ml
