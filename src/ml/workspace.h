// Reusable scratch buffers for forward/backward passes. A Workspace belongs
// to exactly one caller (one worker thread or one simulated worker), so it is
// not synchronized; models index slots by small integers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fluentps::ml {

class Workspace {
 public:
  /// Return a span of `n` floats for `slot`, reusing previous storage when it
  /// is large enough. Contents are unspecified (callers overwrite).
  std::span<float> buf(std::size_t slot, std::size_t n);

  /// Total floats currently held (for tests / accounting).
  [[nodiscard]] std::size_t capacity_floats() const noexcept;

 private:
  std::vector<std::vector<float>> slots_;
};

}  // namespace fluentps::ml
