#include "ml/workspace.h"

namespace fluentps::ml {

std::span<float> Workspace::buf(std::size_t slot, std::size_t n) {
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  auto& v = slots_[slot];
  if (v.size() < n) v.resize(n);
  return {v.data(), n};
}

std::size_t Workspace::capacity_floats() const noexcept {
  std::size_t total = 0;
  for (const auto& v : slots_) total += v.size();
  return total;
}

}  // namespace fluentps::ml
