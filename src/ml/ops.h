// Dense kernels used by the model zoo: GEMM variants, bias, ReLU, softmax
// cross-entropy. All operate on caller-owned row-major buffers; no hidden
// allocation, so the hot training loop is allocation-free once warmed up.
#pragma once

#include <cstddef>
#include <span>

namespace fluentps::ml {

/// C = alpha * A(MxK) * B(KxN) + beta * C(MxN), row-major.
void gemm_nn(std::size_t M, std::size_t N, std::size_t K, float alpha, const float* A,
             const float* B, float beta, float* C);

/// C(MxN) = alpha * A^T * B + beta * C, where A is stored row-major with
/// shape (KxM) — i.e. A[k*M + i] holds A[k,i], and the product contracts the
/// leading (row) dimension of both inputs: C[i,j] = sum_k A[k,i] * B[k,j]
/// with B row-major (KxN). No data is transposed in memory; "T" refers only
/// to the indexing. Used for weight gradients: dW(in x out) = X^T * dY with
/// X(batch x in), dY(batch x out).
void gemm_tn(std::size_t M, std::size_t N, std::size_t K, float alpha, const float* A,
             const float* B, float beta, float* C);

/// C(MxN) = alpha * A(MxK) * B^T (B is NxK row-major) + beta * C. Used for
/// input gradients: dX = dY * W^T.
void gemm_nt(std::size_t M, std::size_t N, std::size_t K, float alpha, const float* A,
             const float* B, float beta, float* C);

/// y[b, j] += bias[j] for each row b of y(BxN).
void add_bias(std::size_t B, std::size_t N, const float* bias, float* y);

/// dbias[j] = sum_b dy[b, j].
void bias_grad(std::size_t B, std::size_t N, const float* dy, float* dbias);

/// In-place ReLU.
void relu_forward(float* x, std::size_t n);

/// dx[i] = dy[i] * (x_post[i] > 0), where x_post is the *post-activation*
/// value (valid because ReLU output is positive exactly where input was).
void relu_backward(const float* dy, const float* x_post, float* dx, std::size_t n);

/// Softmax + cross-entropy over logits(BxC) with integer labels.
/// Writes softmax probabilities into probs(BxC); returns mean loss.
double softmax_xent_forward(std::size_t B, std::size_t C, const float* logits,
                            const int* labels, float* probs);

/// dlogits = (probs - onehot(labels)) / B, written into dlogits(BxC).
void softmax_xent_backward(std::size_t B, std::size_t C, const float* probs, const int* labels,
                           float* dlogits);

/// argmax of each row of scores(BxC) into out[B].
void argmax_rows(std::size_t B, std::size_t C, const float* scores, int* out);

/// Euclidean norm of a span.
double l2_norm(std::span<const float> v) noexcept;

/// x += alpha * y (same length).
void axpy(float alpha, std::span<const float> y, std::span<float> x) noexcept;

/// dst = src (same length). Small slices use an open-coded loop that skips
/// the libc dispatch overhead; everything else goes through memmove's
/// runtime-dispatched wide-vector kernel. The slicing gather/scatter hot
/// loops route through this.
void copy(std::span<const float> src, std::span<float> dst) noexcept;

}  // namespace fluentps::ml
