// Worker-side optimizers. In the FluentPS protocol (Algorithm 1) the server
// is a dumb accumulator: it applies `w += update / N`. All optimizer state
// (momentum velocity, LARS trust ratios) therefore lives on the worker, which
// turns its raw gradient into the update it pushes. This matches how MXNet
// runs SGD over PS-Lite and keeps server shards stateless.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "ml/lr_schedule.h"
#include "ml/model.h"

namespace fluentps::ml {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Transform the raw gradient into the pushed update (usually -lr * g, with
  /// optimizer-specific modifications). `params` is the worker's current
  /// parameter view (needed by LARS). All spans have num_params() length.
  virtual void compute_update(std::span<const float> params, std::span<const float> grad,
                              std::int64_t iter, std::span<float> update) = 0;
};

/// Plain SGD: update = -lr(iter) * grad.
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(std::unique_ptr<LrSchedule> lr) : lr_(std::move(lr)) {}
  void compute_update(std::span<const float> params, std::span<const float> grad,
                      std::int64_t iter, std::span<float> update) override;

 private:
  std::unique_ptr<LrSchedule> lr_;
};

/// Heavy-ball momentum: v = mu * v + grad; update = -lr(iter) * v.
class MomentumSgd final : public Optimizer {
 public:
  MomentumSgd(std::unique_ptr<LrSchedule> lr, double mu) : lr_(std::move(lr)), mu_(mu) {}
  void compute_update(std::span<const float> params, std::span<const float> grad,
                      std::int64_t iter, std::span<float> update) override;

 private:
  std::unique_ptr<LrSchedule> lr_;
  double mu_;
  std::vector<float> velocity_;
};

/// Layer-wise Adaptive Rate Scaling (You et al. 2017), the paper's choice for
/// large-batch training: per layer, trust = eta * ||w|| / (||g|| + eps);
/// update_layer = -lr * trust * g_layer. Requires the model's layer map.
class LarsOptimizer final : public Optimizer {
 public:
  LarsOptimizer(std::unique_ptr<LrSchedule> lr, std::vector<std::size_t> layer_sizes, double eta,
                double epsilon);
  void compute_update(std::span<const float> params, std::span<const float> grad,
                      std::int64_t iter, std::span<float> update) override;

 private:
  std::unique_ptr<LrSchedule> lr_;
  std::vector<std::size_t> layer_sizes_;
  double eta_;
  double epsilon_;
};

struct OptimizerSpec {
  std::string kind = "sgd";  ///< "sgd" | "momentum" | "lars"
  double momentum = 0.9;
  double lars_eta = 0.001;
  double lars_epsilon = 1e-9;
  LrSpec lr;
};

/// Factory; `model` supplies the layer map for LARS.
std::unique_ptr<Optimizer> make_optimizer(const OptimizerSpec& spec, const Model& model);

}  // namespace fluentps::ml
