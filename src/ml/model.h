// Flat-parameter model interface.
//
// Parameters live in one contiguous float vector (the "global model" a
// parameter server shards by key range); models expose their per-layer
// segmentation so slicers (src/ps/slicing.h) can map layers to keys exactly
// the way MXNet maps NDArrays to PS-Lite keys, and so LARS can compute
// layer-wise trust ratios.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/workspace.h"

namespace fluentps::ml {

class Model {
 public:
  virtual ~Model() = default;

  /// Total number of parameters.
  [[nodiscard]] virtual std::size_t num_params() const noexcept = 0;

  /// Sizes of the per-layer segments, in order; sums to num_params().
  [[nodiscard]] virtual std::vector<std::size_t> layer_sizes() const = 0;

  /// Initialize `params` (size num_params()) in place; deterministic in rng.
  virtual void init_params(std::span<float> params, Rng& rng) const = 0;

  /// Mean loss on `batch`; writes d(loss)/d(params) into `grad`
  /// (size num_params()). `ws` supplies scratch buffers.
  virtual double grad(std::span<const float> params, const Batch& batch, std::span<float> grad,
                      Workspace& ws) const = 0;

  /// Mean loss only (no gradient); used by evaluation.
  virtual double loss(std::span<const float> params, const Batch& batch, Workspace& ws) const = 0;

  /// Predicted class per row of batch.X into `out` (size batch.n).
  virtual void predict(std::span<const float> params, const Batch& batch, std::span<int> out,
                       Workspace& ws) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Model selection for ExperimentConfig.
struct ModelSpec {
  std::string kind = "softmax";  ///< "softmax" | "mlp" | "resmlp"
  std::size_t hidden = 32;       ///< mlp/resmlp width
  std::size_t blocks = 27;       ///< resmlp residual blocks (27 -> 56 weight layers)
};

/// Factory: builds a model for `dim` inputs and `classes` outputs.
std::unique_ptr<Model> make_model(const ModelSpec& spec, std::size_t dim, std::size_t classes);

}  // namespace fluentps::ml
