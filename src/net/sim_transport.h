// DES-backed transport: send() asks the NetworkModel for the delivery time
// (accounting for latency, bandwidth and per-endpoint contention) and
// schedules the receiver's handler at that virtual time.
#pragma once

#include <unordered_map>

#include "net/transport.h"
#include "sim/network_model.h"
#include "sim/sim_env.h"

namespace fluentps::net {

class SimTransport final : public Transport {
 public:
  /// Both `env` and `network` must outlive the transport.
  SimTransport(sim::SimEnv& env, sim::NetworkModel& network) : env_(env), network_(network) {}

  void register_node(NodeId node, Handler handler) override;
  void send(Message msg) override;

  /// Messages delivered so far.
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }

 private:
  sim::SimEnv& env_;
  sim::NetworkModel& network_;
  std::unordered_map<NodeId, Handler> handlers_;
  std::uint64_t delivered_ = 0;
};

}  // namespace fluentps::net
