// TCP transport: real sockets, so workers and servers can run in separate
// processes/machines (the deployment model of PS-Lite's van). Wire format:
// 4-byte little-endian length prefix + Message::serialize() frame.
//
// Each TcpTransport instance hosts the nodes registered locally and holds a
// routing table for remote nodes. send() takes the in-memory fast path for
// local destinations and a (lazily connected, cached) TCP stream otherwise.
// One acceptor thread plus one reader thread per inbound connection; all are
// jthreads joined at shutdown (CP.25/26).
//
// Timeouts & reconnect (fault subsystem): dialing a peer uses a RetryPolicy
// ladder — each attempt is a non-blocking connect bounded by the attempt's
// timeout, retried with backoff until the budget is spent. Established
// connections carry SO_SNDTIMEO = max_timeout so a wedged peer can never
// park a sender forever; a failed write invalidates the cached connection,
// and the next send() to that route re-dials (so a restarted peer on the
// same address is picked up transparently).
//
// Mid-run reconnect: a failed write (or an exhausted dial ladder) also hands
// the endpoint to a background re-dial thread that keeps working the same
// RetryPolicy ladder, pausing one max_timeout between rounds, until the peer
// answers or shutdown(). A restarted peer is therefore re-established (and
// re-sent hello frames, so its routes heal too) even if the application
// never retries a send on that route.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/retry_policy.h"
#include "net/transport.h"
#include "obs/telemetry.h"

namespace fluentps::net {

class TcpTransport final : public Transport {
 public:
  /// `bind_host` is the interface the acceptor binds to.
  explicit TcpTransport(std::string bind_host = "127.0.0.1");
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Start accepting connections; `port` 0 picks an ephemeral port. Returns
  /// the bound port. Call once, before any remote traffic is expected.
  std::uint16_t listen(std::uint16_t port = 0);

  /// Declare that `node` is reachable at host:port (some other transport
  /// instance's listen() address). Local nodes need no route.
  ///
  /// Routes are also learned automatically: whenever this transport opens a
  /// connection it sends one hello frame per local node advertising its own
  /// listen port, so the remote side can respond without manual
  /// configuration (PS-Lite's node registration, minus the scheduler).
  void add_route(NodeId node, const std::string& host, std::uint16_t port);

  /// Register a locally hosted node.
  void register_node(NodeId node, Handler handler) override;

  /// Deliver to a local handler directly, or frame it over TCP. The frame is
  /// gather-written (sendmsg): length prefix + header from the stack, payload
  /// straight from msg.values.data() — no intermediate frame allocation.
  void send(Message msg) override;

  /// TCP consumes the payload bytes inside send() (gather-write), so callers
  /// may hand it messages with borrowed payloads (zero-copy send path).
  [[nodiscard]] bool inline_delivery() const noexcept override { return true; }

  /// Close the acceptor, all connections, and join all threads. Idempotent.
  void shutdown();

  /// Replace the dial/write timeout policy (defaults to 3 escalating connect
  /// attempts, 0.25 s → 1 s). max_timeout doubles as SO_SNDTIMEO on
  /// established connections. Set before the first remote send.
  void set_retry_policy(const fault::RetryPolicy& policy);

  /// Attach a telemetry registry: dial-ladder retries and background re-dial
  /// successes are additionally recorded as net.redial_attempts /
  /// net.reconnects counters (connection-lifecycle events on the fault
  /// timeline). Call before the first remote send; the registry must outlive
  /// the transport. nullptr detaches.
  void set_telemetry(obs::Registry* registry);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept;
  [[nodiscard]] std::uint64_t frames_received() const noexcept;
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept;
  /// Frames parsed in place out of the streaming receive buffer, payload
  /// borrowed end-to-end (equals frames_received() — the invariant the
  /// zero-copy receive tests pin down).
  [[nodiscard]] std::uint64_t recv_zero_copy_frames() const noexcept override;
  /// Receive-buffer heap allocations across all connections. Plateaus once
  /// every connection reached its high-water burst size: steady-state
  /// receive allocates nothing.
  [[nodiscard]] std::uint64_t recv_allocations() const noexcept;
  /// Bytes shifted by receive-buffer compaction/growth (0 in request-response
  /// steady state — frames are consumed in place, never copied out).
  [[nodiscard]] std::uint64_t recv_bytes_moved() const noexcept;
  /// Re-dial attempts after a failed connect (observability + tests).
  [[nodiscard]] std::uint64_t connect_retries() const noexcept;
  /// Connections re-established by the background re-dial loop.
  [[nodiscard]] std::uint64_t reconnects() const noexcept;

 private:
  struct Peer {
    int fd = -1;
    std::mutex write_mu;  // frames must not interleave
  };

  void accept_loop();
  void reader_loop(int fd);
  /// Send one hello frame per locally registered node over `peer`.
  void send_hellos(Peer& peer);
  /// Register the route a hello frame advertises (peer IP + advertised port).
  void handle_hello(int fd, const Message& msg);
  /// Get (or establish) the connection to a remote endpoint, dialing through
  /// the retry ladder. nullptr once the budget is exhausted.
  std::shared_ptr<Peer> peer_for(const std::string& host, std::uint16_t port);
  /// Evict a cached connection whose write failed, so the next send re-dials.
  void drop_peer(const std::string& key, const std::shared_ptr<Peer>& peer);
  /// Queue `host:port` for the background re-dial loop (started lazily).
  void request_redial(const std::string& host, std::uint16_t port);
  /// Background thread: re-dials every pending endpoint through the retry
  /// ladder, pausing one max_timeout between rounds, until success/shutdown.
  void redial_loop();
  /// Gather-write one message: [u32 length | 56-byte header | payload floats]
  /// via sendmsg, the payload iovec pointing at msg.values.data().
  bool write_message(Peer& peer, const Message& msg);

  std::string bind_host_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::mutex mu_;  // guards maps below
  std::map<NodeId, Handler> local_;
  std::map<NodeId, std::pair<std::string, std::uint16_t>> routes_;
  std::map<std::string, std::shared_ptr<Peer>> peers_;  // "host:port" -> conn
  std::vector<int> inbound_fds_;  // accepted connections (closed at shutdown)
  std::vector<std::jthread> readers_;
  std::jthread acceptor_;
  bool stopping_ = false;

  // Endpoints awaiting a background re-dial: "host:port" -> (host, port).
  std::map<std::string, std::pair<std::string, std::uint16_t>> redial_pending_;
  std::condition_variable redial_cv_;
  std::jthread redialer_;

  // Dial policy + jitter stream (guarded by mu_: peer_for races are real).
  fault::RetryPolicy retry_{
      .initial_timeout = 0.25, .max_timeout = 1.0, .backoff = 2.0, .jitter = 0.1, .budget = 3};
  Rng dial_rng_{0x7C9D, 0xD1A1};

  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> recv_zero_copy_frames_{0};
  std::atomic<std::uint64_t> recv_allocations_{0};
  std::atomic<std::uint64_t> recv_bytes_moved_{0};
  std::atomic<std::uint64_t> connect_retries_{0};
  std::atomic<std::uint64_t> reconnects_{0};

  // Optional telemetry handles (set_telemetry before traffic; Counter::add is
  // wait-free, so the dial ladder and redialer can bump them from any thread).
  obs::Counter* retry_counter_ = nullptr;      // net.redial_attempts
  obs::Counter* reconnect_counter_ = nullptr;  // net.reconnects
};

}  // namespace fluentps::net
