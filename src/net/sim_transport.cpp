#include "net/sim_transport.h"

#include <utility>

#include "common/logging.h"

namespace fluentps::net {

void SimTransport::register_node(NodeId node, Handler handler) {
  FPS_CHECK(!handlers_.contains(node)) << "node " << node << " registered twice";
  handlers_.emplace(node, std::move(handler));
}

void SimTransport::send(Message msg) {
  // The DES keeps the message queued until its delivery event fires, so a
  // borrowed payload (legal only for inline_delivery transports) is
  // materialized defensively.
  msg.values.ensure_owned();
  const auto it = handlers_.find(msg.dst);
  if (it == handlers_.end()) {
    FPS_LOG(Warn) << "dropping message to unregistered node " << msg.dst << ": "
                  << msg.to_debug_string();
    return;
  }
  const sim::SimTime arrive =
      network_.deliver(msg.src, msg.dst, msg.wire_bytes(), env_.now());
  Handler& handler = it->second;
  env_.schedule_at(arrive, [this, &handler, m = std::move(msg)]() mutable {
    ++delivered_;
    handler(std::move(m));
  });
}

}  // namespace fluentps::net
