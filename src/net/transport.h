// Transport abstraction: delivers Messages between logical nodes.
//
// Two implementations:
//  * InprocTransport — real threads; each node gets a dispatch thread that
//    drains a queue and invokes the node's handler, so a node's handler runs
//    single-threaded (actor-style) and node state needs no further locking
//    for transport-driven events.
//  * SimTransport — discrete-event backend: send() consults the network
//    model for a delivery time and schedules handler invocation on the DES.
#pragma once

#include <functional>

#include "net/message.h"

namespace fluentps::net {

class Transport {
 public:
  /// Invoked with each delivered message, on the receiving node's execution
  /// context (dispatch thread for inproc, DES event for sim).
  using Handler = std::function<void(Message&&)>;

  virtual ~Transport() = default;

  /// Register the handler for `node`. Must be called for every node before
  /// any send() targeting it.
  virtual void register_node(NodeId node, Handler handler) = 0;

  /// Asynchronously deliver `msg` to msg.dst. Never blocks the sender on the
  /// receiver's processing.
  virtual void send(Message msg) = 0;

  /// True when send() consumes the message's payload bytes *inside* the
  /// send() call (e.g. writes them to a socket) and retains no reference
  /// afterwards. Only such transports may be handed messages with *borrowed*
  /// payloads (Payload::borrow over caller-owned staging buffers) — the
  /// zero-copy send path. Queueing transports keep messages alive beyond
  /// send() and therefore require owned payloads; they call
  /// Payload::ensure_owned() defensively (see payload.h ownership rules).
  [[nodiscard]] virtual bool inline_delivery() const noexcept { return false; }

  /// Frames whose payload was delivered without any allocation or copy on
  /// the receive side (TCP's streaming receive buffer — DESIGN.md §11).
  /// Transports with no wire format report 0.
  [[nodiscard]] virtual std::uint64_t recv_zero_copy_frames() const noexcept { return 0; }
};

}  // namespace fluentps::net
