#include "net/inproc_transport.h"

#include "common/logging.h"

namespace fluentps::net {

InprocTransport::~InprocTransport() { shutdown(); }

void InprocTransport::register_node(NodeId node, Handler handler) {
  auto n = std::make_unique<Node>();
  n->handler = std::move(handler);
  Node* raw = n.get();
  n->dispatcher = std::jthread([this, raw] {
    while (auto msg = raw->queue.pop()) {
      raw->handler(std::move(*msg));
      delivered_.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::scoped_lock lock(mu_);
  FPS_CHECK(!nodes_.contains(node)) << "node " << node << " registered twice";
  nodes_.emplace(node, std::move(n));
}

void InprocTransport::send(Message msg) {
  // Queueing transport: the message outlives send(), so a borrowed payload
  // (legal only for inline_delivery transports) is materialized defensively.
  msg.values.ensure_owned();
  Node* target = nullptr;
  {
    std::scoped_lock lock(mu_);
    const auto it = nodes_.find(msg.dst);
    if (it == nodes_.end()) {
      FPS_LOG(Warn) << "dropping message to unregistered node " << msg.dst << ": "
                    << msg.to_debug_string();
      return;
    }
    target = it->second.get();
  }
  // Queue push outside the map lock: the queue has its own synchronization
  // and nodes are never erased before shutdown().
  target->queue.push(std::move(msg));
}

void InprocTransport::shutdown() {
  std::unordered_map<NodeId, std::unique_ptr<Node>> nodes;
  {
    std::scoped_lock lock(mu_);
    nodes.swap(nodes_);
  }
  for (auto& [id, node] : nodes) {
    node->queue.close();  // dispatcher drains then exits
  }
  // Join every dispatcher before destroying any node: node A's dispatcher may
  // still be inside send() -> push() on node B's queue (it resolved the raw
  // Node* before close()), so no queue may die until all dispatchers exit.
  for (auto& [id, node] : nodes) {
    if (node->dispatcher.joinable()) node->dispatcher.join();
  }
  nodes.clear();
}

std::uint64_t InprocTransport::delivered() const noexcept {
  return delivered_.load(std::memory_order_relaxed);
}

}  // namespace fluentps::net
