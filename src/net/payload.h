// Message payload with explicit ownership: either *owned* float storage or a
// borrowed *view* (std::span) over caller-owned memory.
//
// The view form is the zero-copy path: a sender can point a Message at an
// arena/staging buffer it already owns, and a transport that consumes the
// message inline (Transport::inline_delivery()) writes those floats straight
// to the wire — no intermediate vector, no copy. Likewise the TCP receive
// path hands handlers Messages whose payload borrows the connection's
// reusable frame buffer.
//
// Ownership rules (DESIGN.md §8):
//  * Attach a borrowed payload to an *outgoing* message only when the
//    transport consumes messages inline (see Transport::inline_delivery());
//    queueing transports own messages beyond send(), so they require owned
//    payloads (they call ensure_owned() defensively).
//  * A *received* message's payload may borrow the transport's frame buffer,
//    which is valid only for the duration of the handler invocation. A
//    handler that keeps values past its own return must take()/ensure_owned()
//    them first. (The server's batched-apply queue is safe without copying
//    because the enqueuing thread blocks inside the handler until its entry
//    is applied.)
//  * Copying a borrowed Payload copies the view (it aliases the same
//    memory); copying an owned Payload deep-copies.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

namespace fluentps::net {

class Payload {
 public:
  Payload() = default;
  Payload(std::vector<float> v) noexcept : owned_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Payload(std::initializer_list<float> init) : owned_(init) {}

  Payload& operator=(std::vector<float> v) noexcept {
    owned_ = std::move(v);
    borrowed_ = false;
    return *this;
  }
  Payload& operator=(std::initializer_list<float> init) {
    owned_.assign(init);
    borrowed_ = false;
    return *this;
  }

  /// A non-owning view over caller-owned storage. The caller must keep the
  /// memory alive until the message is consumed (see ownership rules above).
  [[nodiscard]] static Payload borrow(std::span<const float> s) noexcept {
    Payload p;
    p.view_ = s;
    p.borrowed_ = true;
    return p;
  }

  [[nodiscard]] bool borrowed() const noexcept { return borrowed_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return borrowed_ ? view_.size() : owned_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] const float* data() const noexcept {
    return borrowed_ ? view_.data() : owned_.data();
  }
  [[nodiscard]] std::span<const float> span() const noexcept { return {data(), size()}; }
  operator std::span<const float>() const noexcept { return span(); }  // NOLINT

  [[nodiscard]] float operator[](std::size_t i) const noexcept { return data()[i]; }
  [[nodiscard]] float& operator[](std::size_t i) {
    ensure_owned();
    return owned_[i];
  }

  [[nodiscard]] const float* begin() const noexcept { return data(); }
  [[nodiscard]] const float* end() const noexcept { return data() + size(); }

  // --- mutation (materializes ownership) -------------------------------

  void resize(std::size_t n) {
    ensure_owned();
    owned_.resize(n);
  }
  void resize(std::size_t n, float v) {
    ensure_owned();
    owned_.resize(n, v);
  }
  void assign(std::size_t n, float v) {
    owned_.assign(n, v);
    borrowed_ = false;
  }
  template <typename It>
  void assign(It first, It last) {
    owned_.assign(first, last);
    borrowed_ = false;
  }
  void clear() noexcept {
    owned_.clear();
    view_ = {};
    borrowed_ = false;
  }

  /// Writable span over owned storage (materializes a borrowed view first).
  [[nodiscard]] std::span<float> mutable_span() {
    ensure_owned();
    return {owned_.data(), owned_.size()};
  }

  /// Discard current contents and expose `n` writable owned floats (the
  /// caller overwrites them; prior values are not preserved).
  [[nodiscard]] std::span<float> mutable_span_resized(std::size_t n) {
    view_ = {};
    borrowed_ = false;
    owned_.resize(n);
    return {owned_.data(), owned_.size()};
  }

  /// Copy a borrowed view into owned storage; no-op when already owned.
  void ensure_owned() {
    if (!borrowed_) return;
    owned_.assign(view_.begin(), view_.end());
    view_ = {};
    borrowed_ = false;
  }

  /// Extract the values as an owning vector (moves when owned, copies when
  /// borrowed). Leaves this payload empty.
  [[nodiscard]] std::vector<float> take() {
    std::vector<float> out;
    if (borrowed_) {
      out.assign(view_.begin(), view_.end());
    } else {
      out = std::move(owned_);
    }
    clear();
    return out;
  }

  friend bool operator==(const Payload& a, const Payload& b) noexcept {
    const auto sa = a.span();
    const auto sb = b.span();
    return sa.size() == sb.size() && std::equal(sa.begin(), sa.end(), sb.begin());
  }
  friend bool operator==(const Payload& a, const std::vector<float>& b) noexcept {
    const auto sa = a.span();
    return sa.size() == b.size() && std::equal(sa.begin(), sa.end(), b.begin());
  }

 private:
  std::vector<float> owned_;
  std::span<const float> view_;  ///< meaningful only when borrowed_
  bool borrowed_ = false;
};

}  // namespace fluentps::net
