#include "net/message.h"

#include <sstream>

namespace fluentps::net {

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kPush: return "Push";
    case MsgType::kPushAck: return "PushAck";
    case MsgType::kPull: return "Pull";
    case MsgType::kPullResp: return "PullResp";
    case MsgType::kProgress: return "Progress";
    case MsgType::kPullGrant: return "PullGrant";
    case MsgType::kHeartbeat: return "Heartbeat";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kRecover: return "Recover";
    case MsgType::kRecoverAck: return "RecoverAck";
  }
  return "Unknown";
}

double Message::wire_bytes() const noexcept {
  return kHeaderBytes + static_cast<double>(values.size()) * sizeof(float);
}

std::vector<std::uint8_t> Message::serialize() const {
  io::Writer w;
  w.reserve(64 + values.size() * sizeof(float));
  w.put<std::uint8_t>(static_cast<std::uint8_t>(type));
  w.put<std::uint32_t>(src);
  w.put<std::uint32_t>(dst);
  w.put<std::uint64_t>(request_id);
  w.put<std::uint64_t>(seq);
  w.put<std::int64_t>(progress);
  w.put<std::uint32_t>(worker_rank);
  w.put<std::uint32_t>(server_rank);
  w.put_vector(values);
  return w.take();
}

bool Message::deserialize(const std::vector<std::uint8_t>& frame, Message* out) {
  io::Reader r(frame);
  Message m;
  m.type = static_cast<MsgType>(r.get<std::uint8_t>());
  m.src = r.get<std::uint32_t>();
  m.dst = r.get<std::uint32_t>();
  m.request_id = r.get<std::uint64_t>();
  m.seq = r.get<std::uint64_t>();
  m.progress = r.get<std::int64_t>();
  m.worker_rank = r.get<std::uint32_t>();
  m.server_rank = r.get<std::uint32_t>();
  m.values = r.get_vector<float>();
  if (!r.ok() ||
      static_cast<std::uint8_t>(m.type) > static_cast<std::uint8_t>(MsgType::kRecoverAck)) {
    return false;
  }
  *out = std::move(m);
  return true;
}

std::string Message::to_debug_string() const {
  std::ostringstream os;
  os << to_string(type) << " src=" << src << " dst=" << dst << " req=" << request_id
     << " seq=" << seq << " progress=" << progress << " w=" << worker_rank << " s=" << server_rank
     << " nvalues=" << values.size();
  return os.str();
}

}  // namespace fluentps::net
