#include "net/message.h"

#include <cstring>
#include <sstream>

#include "common/logging.h"

namespace fluentps::net {

const char* to_string(MsgType t) noexcept {
  switch (t) {
    case MsgType::kPush: return "Push";
    case MsgType::kPushAck: return "PushAck";
    case MsgType::kPull: return "Pull";
    case MsgType::kPullResp: return "PullResp";
    case MsgType::kProgress: return "Progress";
    case MsgType::kPullGrant: return "PullGrant";
    case MsgType::kHeartbeat: return "Heartbeat";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kRecover: return "Recover";
    case MsgType::kRecoverAck: return "RecoverAck";
    case MsgType::kReplicate: return "Replicate";
    case MsgType::kReplicateAck: return "ReplicateAck";
    case MsgType::kPromote: return "Promote";
    case MsgType::kSparsePush: return "SparsePush";
    case MsgType::kSparsePull: return "SparsePull";
    case MsgType::kSparsePullResp: return "SparsePullResp";
    case MsgType::kSparseReplicate: return "SparseReplicate";
    case MsgType::kSparseReplicateAck: return "SparseReplicateAck";
    case MsgType::kPullRedirect: return "PullRedirect";
    case MsgType::kMigrateSnapshot: return "MigrateSnapshot";
    case MsgType::kMigrateDelta: return "MigrateDelta";
    case MsgType::kMigrateAck: return "MigrateAck";
  }
  return "Unknown";
}

double Message::wire_bytes() const noexcept {
  return kHeaderBytes + static_cast<double>(values.size()) * sizeof(float);
}

namespace {

inline void store_bytes(std::uint8_t* dst, const void* src, std::size_t n) noexcept {
  std::memcpy(dst, src, n);
}

template <typename T>
inline T load(const std::uint8_t* src) noexcept {
  T v;
  std::memcpy(&v, src, sizeof(T));
  return v;
}

}  // namespace

void Message::serialize_header(std::uint8_t* dst) const noexcept {
  const std::uint8_t t = static_cast<std::uint8_t>(type);
  const std::uint64_t count = values.size();
  dst[0] = t;
  dst[1] = dst[2] = dst[3] = 0;  // padding — keep frames byte-deterministic
  store_bytes(dst + 4, &src, 4);
  store_bytes(dst + 8, &this->dst, 4);
  store_bytes(dst + 12, &request_id, 8);
  store_bytes(dst + 20, &seq, 8);
  store_bytes(dst + 28, &progress, 8);
  store_bytes(dst + 36, &worker_rank, 4);
  store_bytes(dst + 40, &server_rank, 4);
  store_bytes(dst + 44, &span_id, 4);
  store_bytes(dst + 48, &count, 8);
  store_bytes(dst + 56, &trace_id, 8);  // header stays one 64-byte cache line
}

std::vector<std::uint8_t> Message::serialize() const {
  const std::size_t total = frame_bytes();
  // Header on the stack, then exactly one allocation and two appends — no
  // zero-initialization pass over the payload bytes and no growth reallocs.
  std::uint8_t hdr[kFrameHeaderBytes];
  serialize_header(hdr);
  std::vector<std::uint8_t> out;
  out.reserve(total);
  out.insert(out.end(), hdr, hdr + kFrameHeaderBytes);
  if (!values.empty()) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
    out.insert(out.end(), p, p + values.size() * sizeof(float));
  }
  // The frame is the cost model: serialize() must produce exactly the bytes
  // wire_bytes()/frame_bytes() predict (ISSUE 2 satellite; DESIGN.md §8).
  FPS_CHECK(out.size() == total);
  return out;
}

std::span<const std::uint8_t> Message::serialize_into(FrameBuffer& buf) const {
  const std::size_t total = frame_bytes();
  std::uint8_t* dst = buf.ensure(total);
  serialize_header(dst);
  if (!values.empty()) {
    std::memcpy(dst + kFrameHeaderBytes, values.data(), values.size() * sizeof(float));
  }
  return {dst, total};
}

namespace {

/// Shared header parse + frame validation. Returns the value count on
/// success, or false. Strict: the frame must be exactly header + payload.
bool parse_header(const std::uint8_t* data, std::size_t size, Message* m,
                  std::size_t* value_count) noexcept {
  if (data == nullptr || size < kFrameHeaderBytes) return false;
  const std::uint8_t t = data[0];
  if (t > static_cast<std::uint8_t>(MsgType::kMigrateAck)) return false;
  const std::uint64_t count = load<std::uint64_t>(data + 48);
  // Reject count values whose payload cannot possibly fit (also guards the
  // multiplication below against overflow) and frames with trailing slack.
  if (count > (size - kFrameHeaderBytes) / sizeof(float)) return false;
  if (size != kFrameHeaderBytes + count * sizeof(float)) return false;
  m->type = static_cast<MsgType>(t);
  m->src = load<std::uint32_t>(data + 4);
  m->dst = load<std::uint32_t>(data + 8);
  m->request_id = load<std::uint64_t>(data + 12);
  m->seq = load<std::uint64_t>(data + 20);
  m->progress = load<std::int64_t>(data + 28);
  m->worker_rank = load<std::uint32_t>(data + 36);
  m->server_rank = load<std::uint32_t>(data + 40);
  m->span_id = load<std::uint32_t>(data + 44);
  m->trace_id = load<std::uint64_t>(data + 56);
  *value_count = static_cast<std::size_t>(count);
  return true;
}

}  // namespace

bool Message::deserialize(const std::uint8_t* data, std::size_t size, Message* out) {
  Message m;
  std::size_t count = 0;
  if (!parse_header(data, size, &m, &count)) return false;
  if (count > 0) {
    const std::uint8_t* raw = data + kFrameHeaderBytes;
    if (reinterpret_cast<std::uintptr_t>(raw) % alignof(float) == 0) {
      const auto* first = reinterpret_cast<const float*>(raw);
      m.values.assign(first, first + count);
    } else {
      auto span = m.values.mutable_span_resized(count);
      std::memcpy(span.data(), raw, count * sizeof(float));
    }
  } else {
    m.values.clear();
  }
  *out = std::move(m);
  return true;
}

bool Message::deserialize_view(std::span<const std::uint8_t> frame, Message* out) {
  Message m;
  std::size_t count = 0;
  if (!parse_header(frame.data(), frame.size(), &m, &count)) return false;
  const std::uint8_t* raw = frame.data() + kFrameHeaderBytes;
  if (count == 0) {
    m.values.clear();
  } else if (reinterpret_cast<std::uintptr_t>(raw) % alignof(float) == 0) {
    // Zero-copy: the payload borrows the frame's bytes. Valid only while the
    // frame buffer lives (handler invocation — see payload.h ownership rules).
    m.values = Payload::borrow({reinterpret_cast<const float*>(raw), count});
  } else {  // misaligned frame (shouldn't happen with our buffers): copy
    auto span = m.values.mutable_span_resized(count);
    std::memcpy(span.data(), raw, count * sizeof(float));
  }
  *out = std::move(m);
  return true;
}

std::string Message::to_debug_string() const {
  std::ostringstream os;
  os << to_string(type) << " src=" << src << " dst=" << dst << " req=" << request_id
     << " seq=" << seq << " progress=" << progress << " w=" << worker_rank << " s=" << server_rank
     << " nvalues=" << values.size();
  return os.str();
}

}  // namespace fluentps::net
