#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace fluentps::net {
namespace {

/// Gather-write every byte described by `iov` (sendmsg with MSG_NOSIGNAL so a
/// dead peer surfaces as an error, not SIGPIPE). Advances the iovec array in
/// place across partial sends; false on error.
bool write_iov_exact(int fd, iovec* iov, std::size_t iovcnt) {
  msghdr mh{};
  mh.msg_iov = iov;
  mh.msg_iovlen = iovcnt;
  std::size_t total = 0;
  for (std::size_t i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
  while (total > 0) {
    ssize_t sent = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (sent <= 0) return false;
    total -= static_cast<std::size_t>(sent);
    while (sent > 0 && mh.msg_iovlen > 0) {
      auto& front = mh.msg_iov[0];
      if (static_cast<std::size_t>(sent) >= front.iov_len) {
        sent -= static_cast<ssize_t>(front.iov_len);
        ++mh.msg_iov;
        --mh.msg_iovlen;
      } else {
        front.iov_base = static_cast<std::uint8_t*>(front.iov_base) + sent;
        front.iov_len -= static_cast<std::size_t>(sent);
        sent = 0;
      }
    }
  }
  return true;
}

constexpr std::uint32_t kMaxFrame = 256u << 20;  // 256 MiB sanity bound

/// Minimum recv() window for the streaming receive buffer: large enough to
/// pull a whole burst of small frames in one syscall.
constexpr std::size_t kRecvChunk = 16u << 10;

/// Frames addressed here are transport-internal hellos: src = advertised
/// node, progress = advertised listen port.
constexpr NodeId kControlDst = 0xFFFFFFFFu;

/// Non-blocking connect bounded by `seconds`. Leaves the socket blocking on
/// success; false on refusal, timeout, or any socket error.
bool connect_with_timeout(int fd, const sockaddr_in& addr, double seconds) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return false;
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = std::max(1, static_cast<int>(std::lround(seconds * 1000.0)));
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;  // timeout or poll error
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) return false;
  }
  return ::fcntl(fd, F_SETFL, flags) >= 0;  // back to blocking for the writers
}

/// Bound every later send() on this socket: a wedged peer must surface as a
/// write failure (-> cache invalidation + re-dial), never as a hung sender.
void set_send_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

TcpTransport::TcpTransport(std::string bind_host) : bind_host_(std::move(bind_host)) {}

TcpTransport::~TcpTransport() { shutdown(); }

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  FPS_CHECK(listen_fd_ < 0) << "listen() called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  FPS_CHECK(listen_fd_ >= 0) << "socket() failed: " << std::strerror(errno);
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  FPS_CHECK(::inet_pton(AF_INET, bind_host_.c_str(), &addr.sin_addr) == 1)
      << "bad bind host: " << bind_host_;
  FPS_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      << "bind(" << bind_host_ << ":" << port << ") failed: " << std::strerror(errno);
  FPS_CHECK(::listen(listen_fd_, 64) == 0) << "listen failed: " << std::strerror(errno);

  socklen_t len = sizeof(addr);
  FPS_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
      << "getsockname failed";
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::jthread([this] { accept_loop(); });
  return port_;
}

void TcpTransport::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listen_fd_ closed during shutdown
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::scoped_lock lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    inbound_fds_.push_back(fd);
    readers_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void TcpTransport::reader_loop(int fd) {
  // Zero-copy streaming receive (DESIGN.md §11): one bulk recv() lands bytes
  // directly in a reusable 64-byte-aligned per-connection buffer, complete
  // [u32 length | frame] records are parsed *in place*, and
  // deserialize_view() borrows the payload floats straight out of that
  // buffer. Steady state does zero allocations and zero byte moves per frame
  // (recv_allocations()/recv_bytes_moved() prove it), and a single recv can
  // deliver many pipelined frames — fewer syscalls than the old
  // read-length-then-read-body pair per frame.
  RecvBuffer rb;
  std::uint64_t seen_allocs = 0;
  std::uint64_t seen_moved = 0;
  const auto flush_counters = [&] {
    recv_allocations_.fetch_add(rb.allocations() - seen_allocs, std::memory_order_relaxed);
    recv_bytes_moved_.fetch_add(rb.bytes_moved() - seen_moved, std::memory_order_relaxed);
    seen_allocs = rb.allocations();
    seen_moved = rb.bytes_moved();
  };
  bool closing = false;
  while (!closing) {
    // Drain every complete record currently buffered.
    std::uint32_t frame_len = 0;
    std::size_t need = sizeof(frame_len);  // bytes required to make progress
    while (rb.peek_length(&frame_len)) {
      if (frame_len > kMaxFrame) {
        FPS_LOG(Warn) << "tcp: oversized frame (" << frame_len << " bytes), closing";
        closing = true;
        break;
      }
      if (!rb.frame_complete(frame_len)) {
        need = sizeof(frame_len) + frame_len - rb.buffered();
        break;
      }
      const std::span<const std::uint8_t> frame = rb.take_frame(frame_len);
      // The borrow is valid until the next writable() reuses the buffer,
      // i.e. exactly for the handler invocation below (payload.h ownership
      // rules) — handlers that retain values call take()/ensure_owned().
      Message msg;
      if (!Message::deserialize_view(frame, &msg)) {
        FPS_LOG(Warn) << "tcp: dropping malformed frame of " << frame_len << " bytes";
        continue;
      }
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      recv_zero_copy_frames_.fetch_add(1, std::memory_order_relaxed);
      if (msg.dst == kControlDst) {
        handle_hello(fd, msg);
        continue;
      }
      Handler* handler = nullptr;
      {
        std::scoped_lock lock(mu_);
        const auto it = local_.find(msg.dst);
        if (it != local_.end()) handler = &it->second;
      }
      if (handler == nullptr) {
        FPS_LOG(Warn) << "tcp: no local handler for node " << msg.dst;
        continue;
      }
      (*handler)(std::move(msg));
    }
    if (closing) break;
    const std::span<std::uint8_t> dst = rb.writable(std::max(need, kRecvChunk));
    // Publish any growth/compaction the writable() call just did *before*
    // blocking in recv, so the counters are exact whenever the reader idles.
    flush_counters();
    const ssize_t got = ::recv(fd, dst.data(), dst.size(), 0);
    if (got <= 0) break;
    rb.commit(static_cast<std::size_t>(got));
    flush_counters();
  }
  flush_counters();
  ::close(fd);
}

void TcpTransport::register_node(NodeId node, Handler handler) {
  std::scoped_lock lock(mu_);
  FPS_CHECK(!local_.contains(node)) << "node " << node << " registered twice";
  local_.emplace(node, std::move(handler));
}

void TcpTransport::add_route(NodeId node, const std::string& host, std::uint16_t port) {
  std::scoped_lock lock(mu_);
  routes_[node] = {host, port};
}

std::shared_ptr<TcpTransport::Peer> TcpTransport::peer_for(const std::string& host,
                                                           std::uint16_t port) {
  const std::string key = host + ":" + std::to_string(port);
  {
    std::scoped_lock lock(mu_);
    const auto it = peers_.find(key);
    if (it != peers_.end()) return it->second;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    FPS_LOG(Warn) << "tcp: bad peer host " << host;
    return nullptr;
  }

  // Dial through the retry ladder: each attempt gets a bounded non-blocking
  // connect; failures back off before re-dialing (an instant ECONNREFUSED
  // must not hot-loop) until the escalation budget is spent.
  int fd = -1;
  double send_timeout = 1.0;
  for (std::uint32_t attempt = 0;; ++attempt) {
    double timeout = 0.0;
    {
      std::scoped_lock lock(mu_);
      timeout = retry_.timeout_for(attempt, dial_rng_);
      send_timeout = retry_.max_timeout;
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return nullptr;
    if (connect_with_timeout(fd, addr, timeout)) break;
    ::close(fd);
    fd = -1;
    bool give_up = false;
    {
      std::scoped_lock lock(mu_);
      give_up = retry_.exhausted(attempt + 1) || stopping_;
    }
    if (give_up) {
      FPS_LOG(Warn) << "tcp: connect to " << key << " failed after " << (attempt + 1)
                    << " attempts: " << std::strerror(errno);
      return nullptr;
    }
    connect_retries_.fetch_add(1, std::memory_order_relaxed);
    if (retry_counter_ != nullptr) retry_counter_->add(1);
    std::this_thread::sleep_for(std::chrono::duration<double>(timeout));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  set_send_timeout(fd, send_timeout);
  auto peer = std::make_shared<Peer>();
  peer->fd = fd;
  {
    std::scoped_lock lock(mu_);
    // Another thread may have raced us; keep the first connection.
    const auto [it, inserted] = peers_.emplace(key, peer);
    if (!inserted) {
      ::close(fd);
      return it->second;
    }
  }
  send_hellos(*peer);
  return peer;
}

void TcpTransport::drop_peer(const std::string& key, const std::shared_ptr<Peer>& peer) {
  bool owned = false;
  {
    std::scoped_lock lock(mu_);
    const auto it = peers_.find(key);
    if (it != peers_.end() && it->second == peer) {
      peers_.erase(it);
      owned = true;
    }
  }
  // Only the thread that evicted the entry closes the fd; shutdown() (or a
  // racing drop) owns it otherwise.
  if (owned) {
    ::shutdown(peer->fd, SHUT_RDWR);
    ::close(peer->fd);
  }
}

void TcpTransport::request_redial(const std::string& host, std::uint16_t port) {
  std::scoped_lock lock(mu_);
  if (stopping_) return;
  redial_pending_.emplace(host + ":" + std::to_string(port), std::make_pair(host, port));
  if (!redialer_.joinable()) redialer_ = std::jthread([this] { redial_loop(); });
  redial_cv_.notify_all();
}

void TcpTransport::redial_loop() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    if (redial_pending_.empty()) {
      redial_cv_.wait(lock, [this] { return stopping_ || !redial_pending_.empty(); });
      continue;
    }
    const auto batch = std::move(redial_pending_);
    redial_pending_.clear();
    const double pause = retry_.max_timeout;
    lock.unlock();
    std::map<std::string, std::pair<std::string, std::uint16_t>> still_down;
    for (const auto& [key, endpoint] : batch) {
      if (peer_for(endpoint.first, endpoint.second) != nullptr) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        if (reconnect_counter_ != nullptr) reconnect_counter_->add(1);
        FPS_LOG(Info) << "tcp: background re-dial to " << key << " succeeded";
      } else {
        still_down.emplace(key, endpoint);
      }
    }
    lock.lock();
    if (still_down.empty() || stopping_) continue;
    // The peer may still be restarting: park one ladder ceiling, then work
    // the whole pending set again (shutdown interrupts the wait).
    for (const auto& [key, endpoint] : still_down) redial_pending_.emplace(key, endpoint);
    redial_cv_.wait_for(lock, std::chrono::duration<double>(pause),
                        [this] { return stopping_; });
  }
}

void TcpTransport::set_retry_policy(const fault::RetryPolicy& policy) {
  std::scoped_lock lock(mu_);
  retry_ = policy;
}

void TcpTransport::set_telemetry(obs::Registry* registry) {
  if (registry == nullptr) {
    retry_counter_ = nullptr;
    reconnect_counter_ = nullptr;
    return;
  }
  retry_counter_ = &registry->counter("net.redial_attempts");
  reconnect_counter_ = &registry->counter("net.reconnects");
}

void TcpTransport::send_hellos(Peer& peer) {
  if (port_ == 0) return;  // nothing to advertise: we are not listening
  std::vector<NodeId> nodes;
  {
    std::scoped_lock lock(mu_);
    nodes.reserve(local_.size());
    for (const auto& [node, handler] : local_) nodes.push_back(node);
  }
  for (const NodeId node : nodes) {
    Message hello;
    hello.type = MsgType::kHeartbeat;
    hello.src = node;
    hello.dst = kControlDst;
    hello.progress = port_;
    if (!write_message(peer, hello)) return;
  }
}

void TcpTransport::handle_hello(int fd, const Message& msg) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return;
  char ip[INET_ADDRSTRLEN] = {0};
  if (::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip)) == nullptr) return;
  const auto advertised = static_cast<std::uint16_t>(msg.progress);
  add_route(msg.src, ip, advertised);
}

bool TcpTransport::write_message(Peer& peer, const Message& msg) {
  // Scatter-gather send: [u32 length | 64-byte header] assembled on the
  // stack, payload streamed directly from msg.values.data(). No frame
  // allocation, no payload copy — this is what makes Payload::borrow a true
  // zero-copy path end to end.
  const std::size_t frame_len = msg.frame_bytes();
  const auto len = static_cast<std::uint32_t>(frame_len);
  std::uint8_t prefix[sizeof(len) + kFrameHeaderBytes];
  std::memcpy(prefix, &len, sizeof(len));
  msg.serialize_header(prefix + sizeof(len));
  iovec iov[2];
  iov[0] = {prefix, sizeof(prefix)};
  iov[1] = {const_cast<float*>(msg.values.data()), msg.values.size() * sizeof(float)};
  const std::size_t iovcnt = msg.values.empty() ? 1 : 2;
  std::scoped_lock lock(peer.write_mu);
  if (!write_iov_exact(peer.fd, iov, iovcnt)) return false;
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(sizeof(len) + frame_len, std::memory_order_relaxed);
  return true;
}

void TcpTransport::send(Message msg) {
  // Local fast path: no serialization.
  Handler* handler = nullptr;
  std::pair<std::string, std::uint16_t> route;
  {
    std::scoped_lock lock(mu_);
    const auto lit = local_.find(msg.dst);
    if (lit != local_.end()) {
      handler = &lit->second;
    } else {
      const auto rit = routes_.find(msg.dst);
      if (rit == routes_.end()) {
        FPS_LOG(Warn) << "tcp: no route to node " << msg.dst << ", dropping "
                      << msg.to_debug_string();
        return;
      }
      route = rit->second;
    }
  }
  if (handler != nullptr) {
    (*handler)(std::move(msg));
    return;
  }
  const auto peer = peer_for(route.first, route.second);
  if (peer == nullptr) {
    // Dial budget exhausted; hand the endpoint to the background loop so the
    // route heals even if no further send targets it.
    request_redial(route.first, route.second);
    return;
  }
  if (!write_message(*peer, msg)) {
    FPS_LOG(Warn) << "tcp: write to node " << msg.dst
                  << " failed; dropping cached connection and re-dialing in background";
    drop_peer(route.first + ":" + std::to_string(route.second), peer);
    request_redial(route.first, route.second);
  }
}

void TcpTransport::shutdown() {
  std::vector<std::jthread> readers;
  std::map<std::string, std::shared_ptr<Peer>> peers;
  std::vector<int> inbound;
  std::jthread redialer;
  {
    std::scoped_lock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    readers.swap(readers_);
    peers.swap(peers_);
    inbound.swap(inbound_fds_);
    redialer.swap(redialer_);
    redial_pending_.clear();
  }
  redial_cv_.notify_all();
  // Unblock reader threads parked in recv() on inbound connections.
  for (const int fd : inbound) ::shutdown(fd, SHUT_RDWR);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [key, peer] : peers) {
    ::shutdown(peer->fd, SHUT_RDWR);
    ::close(peer->fd);
  }
  // acceptor_ returns once accept() fails; readers return on EOF. jthread
  // destructors join.
  acceptor_ = std::jthread{};
  readers.clear();
}

std::uint64_t TcpTransport::frames_sent() const noexcept {
  return frames_sent_.load(std::memory_order_relaxed);
}
std::uint64_t TcpTransport::frames_received() const noexcept {
  return frames_received_.load(std::memory_order_relaxed);
}
std::uint64_t TcpTransport::bytes_sent() const noexcept {
  return bytes_sent_.load(std::memory_order_relaxed);
}
std::uint64_t TcpTransport::recv_zero_copy_frames() const noexcept {
  return recv_zero_copy_frames_.load(std::memory_order_relaxed);
}
std::uint64_t TcpTransport::recv_allocations() const noexcept {
  return recv_allocations_.load(std::memory_order_relaxed);
}
std::uint64_t TcpTransport::recv_bytes_moved() const noexcept {
  return recv_bytes_moved_.load(std::memory_order_relaxed);
}
std::uint64_t TcpTransport::connect_retries() const noexcept {
  return connect_retries_.load(std::memory_order_relaxed);
}
std::uint64_t TcpTransport::reconnects() const noexcept {
  return reconnects_.load(std::memory_order_relaxed);
}

}  // namespace fluentps::net
