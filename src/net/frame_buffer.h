// Grow-only, reusable byte buffers for frame (de)serialization.
//
// FrameBuffer: scratch buffer for one frame at a time. Unlike
// std::vector<uint8_t>, ensure() never zero-fills: fresh capacity is
// allocated uninitialized and the caller overwrites it. A per-connection
// FrameBuffer amortizes allocation across messages — after the first few
// frames the hot path does no heap work at all (DESIGN.md §8).
//
// RecvBuffer: streaming receive buffer for the zero-copy TCP ingest path
// (DESIGN.md §11). Bulk socket reads land directly in it via
// writable()/commit(), and complete [u32 length | frame] records are parsed
// *in place* — deserialize_view() borrows the payload floats straight out of
// this buffer, so steady-state receive does zero allocations and zero
// copies. allocations()/bytes_moved() are the test hooks that prove it.
//
// Storage is 64-byte aligned: with the 64-byte frame header the payload then
// starts on a cache-line boundary, so a deserialize_view() borrow hands the
// server a cache-line-aligned float span to run axpy over, and the bulk
// memcpy in serialize_into() stays on glibc's mutually-aligned fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <span>

namespace fluentps::net {

class FrameBuffer {
 public:
  FrameBuffer() = default;

  static constexpr std::size_t kAlignment = 64;  ///< one cache line

  /// Make at least `n` bytes addressable; existing contents are NOT preserved
  /// (this is a scratch buffer, not a stream). Never shrinks.
  std::uint8_t* ensure(std::size_t n) {
    if (n > cap_) {
      std::size_t want = cap_ == 0 ? kAlignment : cap_;
      while (want < n) want *= 2;  // power of two ≥ 64: a valid aligned_alloc size
      auto* p = static_cast<std::uint8_t*>(std::aligned_alloc(kAlignment, want));
      if (p == nullptr) throw std::bad_alloc();
      buf_.reset(p);
      cap_ = want;
      ++allocations_;
    }
    size_ = n;
    return buf_.get();
  }

  [[nodiscard]] std::uint8_t* data() noexcept { return buf_.get(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return buf_.get(); }
  /// Bytes of the most recent frame written via ensure().
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return {buf_.get(), size_};
  }
  /// Heap allocations performed so far (test hook: must plateau in steady
  /// state once the buffer reached its high-water size).
  [[nodiscard]] std::uint64_t allocations() const noexcept { return allocations_; }

 private:
  struct FreeDeleter {
    void operator()(std::uint8_t* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<std::uint8_t[], FreeDeleter> buf_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
  std::uint64_t allocations_ = 0;
};

/// Streaming receive buffer: socket reads append at the tail, the frame
/// parser consumes at the head. Single-threaded (one per reader thread).
///
/// Spans returned by take_frame() stay valid until the next writable() call
/// — exactly the handler-invocation window the payload ownership rules give
/// a borrowed payload (payload.h).
///
/// Alignment invariant: the head starts at kAlignOffset (60), so after the
/// 4-byte length prefix and the 64-byte frame header the first payload float
/// sits at offset 128 — cache-line aligned. Every frame is 64 + 4·count
/// bytes, so each [length | frame] record advances the head by a multiple of
/// 4 and *every* in-place payload stays at least float-aligned; the
/// deserialize_view() borrow therefore never falls back to a copy.
class RecvBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;
  /// Head offset that cache-line-aligns the first frame's payload:
  /// 60 + 4 (length prefix) + 64 (frame header) = 128.
  static constexpr std::size_t kAlignOffset = kAlignment - sizeof(std::uint32_t);

  RecvBuffer() = default;

  /// Bytes buffered but not yet consumed.
  [[nodiscard]] std::size_t buffered() const noexcept { return tail_ - head_; }

  /// Contiguous writable region of at least `min_bytes` (growing or
  /// compacting as needed — both are counted). Receive into it, then
  /// commit() the bytes that actually arrived.
  std::span<std::uint8_t> writable(std::size_t min_bytes) {
    if (head_ == tail_) {
      // Fully drained: snap back so the next frame's payload is cache-line
      // aligned again. Free — no bytes move. This is why request-response
      // steady state never compacts.
      head_ = tail_ = kAlignOffset;
    }
    const std::size_t live = tail_ - head_;
    if (free_tail() < min_bytes) {
      if (head_ > kAlignOffset && cap_ >= kAlignOffset + live + min_bytes) {
        // A frame straddles the write edge while earlier frames of the same
        // burst were already consumed (pipelining): slide the partial bytes
        // back to the alignment offset.
        std::memmove(buf_.get() + kAlignOffset, buf_.get() + head_, live);
        bytes_moved_ += live;
        head_ = kAlignOffset;
        tail_ = head_ + live;
      } else {
        grow_to(kAlignOffset + live + min_bytes);
      }
    }
    return {buf_.get() + tail_, free_tail()};
  }

  /// Account `n` bytes received into the writable() region.
  void commit(std::size_t n) noexcept { tail_ += n; }

  /// Next record's frame length, if the 4-byte prefix is buffered.
  bool peek_length(std::uint32_t* len) const noexcept {
    if (buffered() < sizeof(std::uint32_t)) return false;
    std::memcpy(len, buf_.get() + head_, sizeof(std::uint32_t));
    return true;
  }

  /// Whether the full [length | frame] record for `len` is buffered.
  [[nodiscard]] bool frame_complete(std::uint32_t len) const noexcept {
    return buffered() >= sizeof(std::uint32_t) + len;
  }

  /// Consume the next record and return its frame bytes (sans length
  /// prefix), in place. Precondition: frame_complete(len).
  std::span<const std::uint8_t> take_frame(std::uint32_t len) noexcept {
    const std::uint8_t* frame = buf_.get() + head_ + sizeof(std::uint32_t);
    head_ += sizeof(std::uint32_t) + len;
    return {frame, len};
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  /// Heap allocations so far (plateaus at the high-water frame burst).
  [[nodiscard]] std::uint64_t allocations() const noexcept { return allocations_; }
  /// Bytes shifted by compaction/growth (0 in request-response steady state).
  [[nodiscard]] std::uint64_t bytes_moved() const noexcept { return bytes_moved_; }

 private:
  [[nodiscard]] std::size_t free_tail() const noexcept {
    return cap_ > tail_ ? cap_ - tail_ : 0;
  }

  void grow_to(std::size_t want) {
    std::size_t cap = cap_ == 0 ? 4096 : cap_;
    while (cap < want) cap *= 2;
    auto* p = static_cast<std::uint8_t*>(std::aligned_alloc(kAlignment, cap));
    if (p == nullptr) throw std::bad_alloc();
    ++allocations_;
    const std::size_t live = tail_ - head_;
    if (live > 0) {
      std::memcpy(p + kAlignOffset, buf_.get() + head_, live);
      bytes_moved_ += live;
    }
    buf_.reset(p);
    cap_ = cap;
    head_ = kAlignOffset;
    tail_ = kAlignOffset + live;
  }

  struct FreeDeleter {
    void operator()(std::uint8_t* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<std::uint8_t[], FreeDeleter> buf_;
  std::size_t cap_ = 0;
  std::size_t head_ = kAlignOffset;
  std::size_t tail_ = kAlignOffset;
  std::uint64_t allocations_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace fluentps::net
