// Grow-only, reusable byte buffer for frame (de)serialization.
//
// Unlike std::vector<uint8_t>, ensure() never zero-fills: fresh capacity is
// allocated uninitialized and the caller overwrites it. A per-connection
// FrameBuffer amortizes allocation across messages — after the first few
// frames the hot path does no heap work at all (DESIGN.md §8).
//
// Storage is 64-byte aligned: with the 64-byte frame header the payload then
// starts on a cache-line boundary, so a deserialize_view() borrow hands the
// server a cache-line-aligned float span to run axpy over, and the bulk
// memcpy in serialize_into() stays on glibc's mutually-aligned fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>

namespace fluentps::net {

class FrameBuffer {
 public:
  FrameBuffer() = default;

  static constexpr std::size_t kAlignment = 64;  ///< one cache line

  /// Make at least `n` bytes addressable; existing contents are NOT preserved
  /// (this is a scratch buffer, not a stream). Never shrinks.
  std::uint8_t* ensure(std::size_t n) {
    if (n > cap_) {
      std::size_t want = cap_ == 0 ? kAlignment : cap_;
      while (want < n) want *= 2;  // power of two ≥ 64: a valid aligned_alloc size
      auto* p = static_cast<std::uint8_t*>(std::aligned_alloc(kAlignment, want));
      if (p == nullptr) throw std::bad_alloc();
      buf_.reset(p);
      cap_ = want;
    }
    size_ = n;
    return buf_.get();
  }

  [[nodiscard]] std::uint8_t* data() noexcept { return buf_.get(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return buf_.get(); }
  /// Bytes of the most recent frame written via ensure().
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return {buf_.get(), size_};
  }

 private:
  struct FreeDeleter {
    void operator()(std::uint8_t* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<std::uint8_t[], FreeDeleter> buf_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

}  // namespace fluentps::net
