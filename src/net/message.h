// Wire messages exchanged between workers, servers and the scheduler.
//
// One message type covers the whole protocol; `type` selects which fields
// are meaningful. Messages serialize to a flat byte frame with a fixed-layout
// 64-byte header followed by the raw float payload, so the same structs flow
// through the in-process transport (moved, zero copy), can be scatter-gathered
// onto a real socket (header from the stack, payload straight from the
// caller's buffer — see TcpTransport::send), and are charged exactly
// `wire_bytes()` by the simulated network model. The payload is a `Payload`
// (src/net/payload.h): either owned float storage or a zero-copy borrowed view
// over caller-owned memory.
//
// Fixed frame layout (little-endian, offsets in bytes):
//   [ 0] type        u8      (+3 bytes zero padding)
//   [ 4] src         u32
//   [ 8] dst         u32
//   [12] request_id  u64
//   [20] seq         u64
//   [28] progress    i64
//   [36] worker_rank u32
//   [40] server_rank u32
//   [44] span_id     u32     telemetry: parent span for the next hop (0 = none)
//   [48] value_count u64
//   [56] trace_id    u64     telemetry: groups one push round trip (0 = none)
//   [64] values      f32 × value_count
//
// The two telemetry fields live in what used to be reserved zero padding, so
// the header stays exactly one cache line and frames without tracing are
// byte-identical to the pre-telemetry layout (both fields default to 0).
//
// The header is exactly 64 bytes on purpose: the payload then starts on a
// cache-line boundary whenever the frame buffer is cache-line aligned, and —
// more importantly — the payload's *relative* alignment against any 16-byte
// aligned source or destination buffer is 0, which keeps the bulk memcpy in
// serialize()/deserialize() on glibc's mutually-aligned fast path (a 56-byte
// header forces an 8-byte relative misalignment that costs ~9% per copy on
// 32 KiB payloads; see DESIGN.md §8).
//
// The frame size is exactly kFrameHeaderBytes + 4·value_count — identical to
// wire_bytes(), which serialize() asserts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/frame_buffer.h"
#include "net/payload.h"

namespace fluentps::net {

/// Logical node identifier; workers, servers and the scheduler share one id
/// space assigned by the runtime (scheduler=0, servers next, workers last).
using NodeId = std::uint32_t;

enum class MsgType : std::uint8_t {
  kPush = 0,        ///< worker -> server: gradient/update values for a shard
  kPushAck = 1,     ///< server -> worker: push applied (control-sized)
  kPull = 2,        ///< worker -> server: request shard parameters (control-sized)
  kPullResp = 3,    ///< server -> worker: shard parameter values
  kProgress = 4,    ///< worker -> scheduler: progress report (baseline mode)
  kPullGrant = 5,   ///< scheduler -> worker: pull phase permitted (baseline mode)
  kHeartbeat = 6,   ///< server -> scheduler: liveness
  kShutdown = 7,    ///< runtime -> node: stop dispatching
  kRecover = 8,     ///< server -> worker: I restarted from a checkpoint; ack me
  kRecoverAck = 9,  ///< worker -> server: progress = my last fully-acked push
  // Chain replication (src/replica). kReplicate reuses the existing fields:
  // request_id carries the chain log sequence number (lsn), seq/progress/
  // worker_rank describe the original push, server_rank the shard.
  kReplicate = 10,     ///< chain node -> successor: replicate an applied push
  kReplicateAck = 11,  ///< chain node -> predecessor: lsn replicated to tail
  kPromote = 12,       ///< new head -> worker: shard server_rank now lives at src
  // Sparse embedding-table traffic (src/embed). The payload is a sparse
  // codec frame (embed/sparse_codec.h) — table id, row ids and row values
  // packed into the float payload — so sparse messages ride the exact same
  // zero-copy Payload/FrameBuffer path as dense traffic. `progress` carries
  // the sparse round, `seq` the per-(worker,server) reliability sequence.
  kSparsePush = 13,          ///< sparse worker -> server: per-row gradients
  kSparsePull = 14,          ///< sparse worker -> server: request row values
  kSparsePullResp = 15,      ///< server -> sparse worker: row values
  kSparseReplicate = 16,     ///< chain node -> successor: replicate a sparse push
  kSparseReplicateAck = 17,  ///< chain node -> predecessor: sparse lsn at tail
  // Staleness-bounded read offloading (ps/read_options.h, DESIGN.md §13).
  // kPull/kSparsePull never used `seq` (pulls dedup by ticket, and seq 0
  // bypasses the SeqWindow), so bounded reads encode the staleness bound
  // there: seq == 0 is a strong/legacy pull, seq == s + 1 allows the serving
  // node's applied horizon to trail the reader's clock (`progress`) by up to
  // s clocks. A replica whose horizon cannot satisfy the bound answers with
  // kPullRedirect (control-sized; `progress` = its horizon) and the client
  // retries the same ticket at the head, which always serves.
  kPullRedirect = 18,  ///< replica -> client: bound unsatisfiable, retry at head
  // Elastic live shard migration (src/elastic, DESIGN.md §14). All three ride
  // the existing fields: `seq` carries the migration id, `request_id` the
  // per-migration catch-up lsn (0 = the snapshot itself), `server_rank` the
  // *source* slot. kMigrateSnapshot's payload is the slice values on the
  // zero-copy Payload path; kMigrateDelta's is the slice-range gradient of
  // one tapped push; kMigrateAck is control-sized with a cumulative horizon.
  kMigrateSnapshot = 19,  ///< source -> target: slice snapshot at lsn 0
  kMigrateDelta = 20,     ///< source -> target: catch-up gradient for one lsn
  kMigrateAck = 21,       ///< target -> source: snapshot/deltas staged through lsn
};

/// Returns a printable name for logs.
const char* to_string(MsgType t) noexcept;

/// Fixed header size in bytes — the exact number of bytes every frame spends
/// before the payload, and what wire_bytes() charges for control messages.
inline constexpr std::size_t kFrameHeaderBytes = 64;

struct Message {
  MsgType type = MsgType::kPush;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t request_id = 0;  ///< correlates kPull with kPullResp
  std::uint64_t seq = 0;         ///< per-sender sequence number (reliability layer);
                                 ///< echoed by acks so retransmits dedup server-side
  std::int64_t progress = 0;     ///< sender worker's iteration (Algorithm 1)
  std::uint32_t worker_rank = 0; ///< logical worker index [0, N)
  std::uint32_t server_rank = 0; ///< logical server index [0, M)
  std::uint64_t trace_id = 0;    ///< telemetry: one id per traced push round trip
  std::uint32_t span_id = 0;     ///< telemetry: span the receiving hop parents on
  Payload values;                ///< gradients (kPush) or parameters (kPullResp)

  /// Size this message would occupy on the wire: header + payload. Control
  /// messages (no values) cost the fixed header only. Equals frame_bytes().
  [[nodiscard]] double wire_bytes() const noexcept;

  /// Exact serialized frame size: kFrameHeaderBytes + 4·values.size().
  [[nodiscard]] std::size_t frame_bytes() const noexcept {
    return kFrameHeaderBytes + values.size() * sizeof(float);
  }

  /// Write the fixed 64-byte header into `dst` (which must have room for
  /// kFrameHeaderBytes). Used by the gather-write socket path, which sends the
  /// payload directly from values.data() without assembling a full frame.
  void serialize_header(std::uint8_t* dst) const noexcept;

  /// Serialize to a freshly allocated byte frame (exact-size reserve; asserts
  /// the result is frame_bytes() long).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Serialize into a reusable buffer (no allocation once the buffer has
  /// grown to the connection's high-water frame size). Returns the frame.
  std::span<const std::uint8_t> serialize_into(FrameBuffer& buf) const;

  /// Parse a frame into an *owning* message (payload copied out of `frame`).
  /// Returns false on malformed input: short header, bad type byte, or a
  /// frame whose size disagrees with its value_count.
  static bool deserialize(const std::uint8_t* data, std::size_t size, Message* out);
  static bool deserialize(const std::vector<std::uint8_t>& frame, Message* out) {
    return deserialize(frame.data(), frame.size(), out);
  }
  static bool deserialize(std::span<const std::uint8_t> frame, Message* out) {
    return deserialize(frame.data(), frame.size(), out);
  }

  /// Parse a frame into a message whose payload *borrows* the frame's bytes
  /// (zero copy) when they are suitably aligned for float access, falling
  /// back to an owned copy otherwise. The caller must keep `frame` alive for
  /// the message's useful lifetime (handler invocation — see payload.h).
  static bool deserialize_view(std::span<const std::uint8_t> frame, Message* out);

  /// Human-readable one-liner for debugging.
  [[nodiscard]] std::string to_debug_string() const;
};

/// Fixed header size charged by wire_bytes() for every message (grew from 48
/// when the reliability layer added the 8-byte `seq` field). Kept as a double
/// for the simulated network cost model; equals kFrameHeaderBytes.
inline constexpr double kHeaderBytes = static_cast<double>(kFrameHeaderBytes);

}  // namespace fluentps::net
