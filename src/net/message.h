// Wire messages exchanged between workers, servers and the scheduler.
//
// One message type covers the whole protocol; `type` selects which fields
// are meaningful. Messages serialize to a flat byte frame (see message.cpp)
// so the same structs flow through the in-process transport (moved, zero
// copy) and can be framed for a real socket transport; `wire_bytes()` is what
// the simulated network model charges for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialization.h"

namespace fluentps::net {

/// Logical node identifier; workers, servers and the scheduler share one id
/// space assigned by the runtime (scheduler=0, servers next, workers last).
using NodeId = std::uint32_t;

enum class MsgType : std::uint8_t {
  kPush = 0,        ///< worker -> server: gradient/update values for a shard
  kPushAck = 1,     ///< server -> worker: push applied (control-sized)
  kPull = 2,        ///< worker -> server: request shard parameters (control-sized)
  kPullResp = 3,    ///< server -> worker: shard parameter values
  kProgress = 4,    ///< worker -> scheduler: progress report (baseline mode)
  kPullGrant = 5,   ///< scheduler -> worker: pull phase permitted (baseline mode)
  kHeartbeat = 6,   ///< server -> scheduler: liveness
  kShutdown = 7,    ///< runtime -> node: stop dispatching
  kRecover = 8,     ///< server -> worker: I restarted from a checkpoint; ack me
  kRecoverAck = 9,  ///< worker -> server: progress = my last fully-acked push
};

/// Returns a printable name for logs.
const char* to_string(MsgType t) noexcept;

struct Message {
  MsgType type = MsgType::kPush;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint64_t request_id = 0;  ///< correlates kPull with kPullResp
  std::uint64_t seq = 0;         ///< per-sender sequence number (reliability layer);
                                 ///< echoed by acks so retransmits dedup server-side
  std::int64_t progress = 0;     ///< sender worker's iteration (Algorithm 1)
  std::uint32_t worker_rank = 0; ///< logical worker index [0, N)
  std::uint32_t server_rank = 0; ///< logical server index [0, M)
  std::vector<float> values;     ///< gradients (kPush) or parameters (kPullResp)

  /// Size this message would occupy on the wire: header + payload. Control
  /// messages (no values) cost the fixed header only.
  [[nodiscard]] double wire_bytes() const noexcept;

  /// Serialize to a byte frame.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse a frame; returns false (and leaves *out untouched on header
  /// failure) if the frame is malformed.
  static bool deserialize(const std::vector<std::uint8_t>& frame, Message* out);

  /// Human-readable one-liner for debugging.
  [[nodiscard]] std::string to_debug_string() const;
};

/// Fixed header size charged by wire_bytes() for every message (grew from 48
/// when the reliability layer added the 8-byte `seq` field).
inline constexpr double kHeaderBytes = 56.0;

}  // namespace fluentps::net
