// In-process transport: one dispatch thread + queue per registered node.
//
// Messages are moved, never serialized. A node's handler is invoked only from
// that node's dispatch thread, so per-node state touched exclusively from the
// handler requires no locking (CP.3: sharing is confined to the queues).
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/blocking_queue.h"
#include "net/transport.h"

namespace fluentps::net {

class InprocTransport final : public Transport {
 public:
  InprocTransport() = default;
  ~InprocTransport() override;

  InprocTransport(const InprocTransport&) = delete;
  InprocTransport& operator=(const InprocTransport&) = delete;

  void register_node(NodeId node, Handler handler) override;
  void send(Message msg) override;

  /// Stop all dispatch threads after draining queued messages. Idempotent;
  /// also called by the destructor.
  void shutdown();

  /// Number of messages delivered so far (across all nodes).
  [[nodiscard]] std::uint64_t delivered() const noexcept;

 private:
  struct Node {
    BlockingQueue<Message> queue;
    Handler handler;
    std::jthread dispatcher;  // constructed last, joined first
  };

  mutable std::mutex mu_;  // guards nodes_ map shape (not node internals)
  std::unordered_map<NodeId, std::unique_ptr<Node>> nodes_;
  std::atomic<std::uint64_t> delivered_{0};
};

}  // namespace fluentps::net
