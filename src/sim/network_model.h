// Latency/bandwidth network model with per-endpoint FIFO serialization.
//
// Each node has an egress link and an ingress link with finite bandwidth.
// A message of B bytes from src to dst:
//   departure  = max(now, egress_free[src]); egress_free[src] = departure + B/bw_out(src)
//   land       = departure + B/bw + latency
//   arrival    = max(land, ingress_free[dst]); ingress_free[dst] = arrival + B/bw_in(dst)
//   delivered  = arrival + B/bw_in(dst)
//
// The ingress queue is what reproduces Fig 6: with PS-Lite's imbalanced
// slicing, one server receives most parameter bytes from all N workers, its
// ingress serializes the pushes, and communication time grows with N until it
// dominates the iteration (the paper's "communication time costs increased
// dynamically to dominate the total training time").
#pragma once

#include <cstdint>
#include <vector>

#include "sim/sim_env.h"

namespace fluentps::sim {

/// Node id in the simulated cluster.
using NodeId = std::uint32_t;

struct NetworkSpec {
  double latency_seconds = 200e-6;          ///< one-way propagation latency
  double bandwidth_bytes_per_sec = 1.25e9;  ///< default per-link bandwidth (10 Gbps)
  double control_message_bytes = 64;        ///< size of progress/ack frames
};

/// Tracks link occupancy and computes delivery times. Owned by SimTransport;
/// single-threaded (driven by the DES).
class NetworkModel {
 public:
  NetworkModel(NetworkSpec spec, std::size_t num_nodes);

  /// Compute the delivery (fully-received) time of a message sent at `now`
  /// and advance the link state. Deterministic given the call sequence.
  SimTime deliver(NodeId src, NodeId dst, double bytes, SimTime now);

  /// Override a single node's link bandwidth (both directions).
  void set_node_bandwidth(NodeId node, double bytes_per_sec);

  /// Total bytes ever sent through the fabric.
  [[nodiscard]] double total_bytes() const noexcept { return total_bytes_; }

  /// Time the given node's ingress link spent busy so far.
  [[nodiscard]] double ingress_busy_seconds(NodeId node) const;

  [[nodiscard]] const NetworkSpec& spec() const noexcept { return spec_; }

 private:
  [[nodiscard]] double bw(NodeId node) const noexcept {
    const double b = node < node_bw_.size() ? node_bw_[node] : 0.0;
    return b > 0.0 ? b : spec_.bandwidth_bytes_per_sec;
  }

  NetworkSpec spec_;
  std::vector<SimTime> egress_free_;
  std::vector<SimTime> ingress_free_;
  std::vector<double> ingress_busy_;
  std::vector<double> node_bw_;  // 0 = default
  double total_bytes_ = 0.0;
};

}  // namespace fluentps::sim
