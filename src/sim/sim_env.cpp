#include "sim/sim_env.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace fluentps::sim {

void SimEnv::schedule(SimTime delay, std::function<void()> fn) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(fn));
}

void SimEnv::schedule_at(SimTime t, std::function<void()> fn) {
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(fn)});
}

bool SimEnv::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the small members and move the closure through a local pop.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  FPS_CHECK(ev.time >= now_) << "event time went backwards: " << ev.time << " < " << now_;
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void SimEnv::run() {
  while (step()) {
  }
}

std::size_t SimEnv::run_until(SimTime t_end) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    step();
    ++n;
  }
  now_ = std::max(now_, t_end);
  return n;
}

}  // namespace fluentps::sim
