#include "sim/compute_model.h"

#include <algorithm>

#include "common/logging.h"

namespace fluentps::sim {

PersistentStraggler::PersistentStraggler(std::unique_ptr<ComputeModel> inner,
                                         std::vector<std::uint32_t> slow_workers, double slowdown)
    : inner_(std::move(inner)), slow_workers_(std::move(slow_workers)), slowdown_(slowdown) {
  std::sort(slow_workers_.begin(), slow_workers_.end());
}

double PersistentStraggler::sample(std::uint32_t worker, std::int64_t iter, Rng& rng) {
  const double t = inner_->sample(worker, iter, rng);
  const bool slow = std::binary_search(slow_workers_.begin(), slow_workers_.end(), worker);
  return slow ? t * slowdown_ : t;
}

HeterogeneousCompute::HeterogeneousCompute(double base, double sigma, double worker_sigma,
                                           double spike_prob, double spike_slowdown,
                                           std::uint32_t num_workers, std::uint64_t seed)
    : base_(base), sigma_(sigma), spike_prob_(spike_prob), spike_slowdown_(spike_slowdown) {
  Rng factor_rng(seed, /*stream=*/0xFAC7);
  factors_.reserve(num_workers);
  for (std::uint32_t w = 0; w < num_workers; ++w) {
    factors_.push_back(factor_rng.lognormal(0.0, worker_sigma));
  }
}

double HeterogeneousCompute::sample(std::uint32_t worker, std::int64_t /*iter*/, Rng& rng) {
  FPS_CHECK(worker < factors_.size()) << "worker rank out of range: " << worker;
  double t = base_ * factors_[worker] * rng.lognormal(0.0, sigma_);
  if (spike_prob_ > 0.0 && rng.bernoulli(spike_prob_)) t *= spike_slowdown_;
  return t;
}

double HeterogeneousCompute::factor(std::uint32_t worker) const {
  FPS_CHECK(worker < factors_.size()) << "worker rank out of range: " << worker;
  return factors_[worker];
}

std::unique_ptr<ComputeModel> make_compute_model(const ComputeModelSpec& spec,
                                                 std::uint32_t num_workers, std::uint64_t seed) {
  if (spec.kind == "fixed") {
    return std::make_unique<FixedCompute>(spec.base_seconds);
  }
  if (spec.kind == "uniform") {
    return std::make_unique<UniformCompute>(spec.base_seconds, spec.jitter);
  }
  if (spec.kind == "lognormal") {
    return std::make_unique<LogNormalCompute>(spec.base_seconds, spec.sigma);
  }
  if (spec.kind == "transient") {
    return std::make_unique<TransientStraggler>(
        std::make_unique<LogNormalCompute>(spec.base_seconds, spec.sigma), spec.straggler_prob,
        spec.slowdown);
  }
  if (spec.kind == "heterogeneous") {
    return std::make_unique<HeterogeneousCompute>(spec.base_seconds, spec.sigma,
                                                  spec.worker_sigma, spec.straggler_prob,
                                                  spec.slowdown, num_workers, seed);
  }
  if (spec.kind == "persistent") {
    std::vector<std::uint32_t> slow;
    const std::uint32_t n = std::min(spec.num_persistent, num_workers);
    slow.reserve(n);
    for (std::uint32_t w = 0; w < n; ++w) slow.push_back(w);
    return std::make_unique<PersistentStraggler>(
        std::make_unique<LogNormalCompute>(spec.base_seconds, spec.sigma), std::move(slow),
        spec.slowdown);
  }
  FPS_CHECK(false) << "unknown compute model kind: " << spec.kind;
  return nullptr;
}

}  // namespace fluentps::sim
