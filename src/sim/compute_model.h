// Per-worker, per-iteration compute-time models for the cluster simulator.
//
// The paper's timing experiments hinge on *randomly slow* workers ("even in a
// load-balanced cluster, some worker nodes are randomly slower than other
// nodes" — Section I). These models generate the compute-phase duration of
// worker n at iteration i; the sync models under test determine how much of
// that heterogeneity turns into waiting.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace fluentps::sim {

/// Interface: duration (virtual seconds) of one gradient-computation phase.
class ComputeModel {
 public:
  virtual ~ComputeModel() = default;

  /// Sample the compute time of worker `worker` at iteration `iter`.
  virtual double sample(std::uint32_t worker, std::int64_t iter, Rng& rng) = 0;
};

/// Every worker, every iteration takes exactly `base` seconds.
class FixedCompute final : public ComputeModel {
 public:
  explicit FixedCompute(double base) noexcept : base_(base) {}
  double sample(std::uint32_t, std::int64_t, Rng&) override { return base_; }

 private:
  double base_;
};

/// Uniform jitter: base * U[1 - jitter, 1 + jitter].
class UniformCompute final : public ComputeModel {
 public:
  UniformCompute(double base, double jitter) noexcept : base_(base), jitter_(jitter) {}
  double sample(std::uint32_t, std::int64_t, Rng& rng) override {
    return base_ * rng.uniform(1.0 - jitter_, 1.0 + jitter_);
  }

 private:
  double base_;
  double jitter_;
};

/// Heavy-tailed per-iteration times: base * LogNormal(0, sigma). The
/// lognormal's occasional large draws are the "randomly slower" workers.
class LogNormalCompute final : public ComputeModel {
 public:
  LogNormalCompute(double base, double sigma) noexcept : base_(base), sigma_(sigma) {}
  double sample(std::uint32_t, std::int64_t, Rng& rng) override {
    return base_ * rng.lognormal(0.0, sigma_);
  }

 private:
  double base_;
  double sigma_;
};

/// Transient straggler injection: wraps another model; with probability
/// `prob` per (worker, iteration), the sampled time is multiplied by
/// `slowdown`. Models GC pauses, noisy neighbours, network hiccups.
class TransientStraggler final : public ComputeModel {
 public:
  TransientStraggler(std::unique_ptr<ComputeModel> inner, double prob, double slowdown)
      : inner_(std::move(inner)), prob_(prob), slowdown_(slowdown) {}
  double sample(std::uint32_t worker, std::int64_t iter, Rng& rng) override {
    const double t = inner_->sample(worker, iter, rng);
    return rng.bernoulli(prob_) ? t * slowdown_ : t;
  }

 private:
  std::unique_ptr<ComputeModel> inner_;
  double prob_;
  double slowdown_;
};

/// Fully heterogeneous cluster: every worker has a persistent speed factor
/// drawn LogNormal(0, worker_sigma) at construction, multiplied by iid
/// per-iteration LogNormal(0, sigma) jitter and optional transient spikes.
/// This is the regime of the paper's evaluation clusters: persistent pace
/// differences saturate any staleness window, so fast workers keep hitting
/// the SSP bound ("the soft barrier appeared frequently").
class HeterogeneousCompute final : public ComputeModel {
 public:
  HeterogeneousCompute(double base, double sigma, double worker_sigma, double spike_prob,
                       double spike_slowdown, std::uint32_t num_workers, std::uint64_t seed);
  double sample(std::uint32_t worker, std::int64_t iter, Rng& rng) override;

  /// The persistent factor of `worker` (tests / diagnostics).
  [[nodiscard]] double factor(std::uint32_t worker) const;

 private:
  double base_;
  double sigma_;
  double spike_prob_;
  double spike_slowdown_;
  std::vector<double> factors_;
};

/// Persistent stragglers: a fixed subset of workers is permanently slower by
/// `slowdown`. Models heterogeneous hardware; this is the regime where
/// drop-stragglers and DSPS shine.
class PersistentStraggler final : public ComputeModel {
 public:
  PersistentStraggler(std::unique_ptr<ComputeModel> inner, std::vector<std::uint32_t> slow_workers,
                      double slowdown);
  double sample(std::uint32_t worker, std::int64_t iter, Rng& rng) override;

 private:
  std::unique_ptr<ComputeModel> inner_;
  std::vector<std::uint32_t> slow_workers_;  // sorted
  double slowdown_;
};

/// Named factory used by ExperimentConfig: "fixed", "uniform", "lognormal",
/// "transient", "persistent", "heterogeneous". Parameters not used by a kind
/// are ignored.
struct ComputeModelSpec {
  std::string kind = "lognormal";
  double base_seconds = 0.1;   ///< mean/typical compute time per iteration
  double jitter = 0.2;         ///< uniform: half-width fraction
  double sigma = 0.25;         ///< lognormal: log-space stddev (per iteration)
  double worker_sigma = 0.2;   ///< heterogeneous: persistent per-worker factor spread
  double straggler_prob = 0.02;///< transient/heterogeneous: spike probability
  double slowdown = 5.0;       ///< straggler/spike multiplier
  std::uint32_t num_persistent = 1;  ///< persistent: how many slow workers
};

/// Build a model from a spec; `num_workers` selects persistent stragglers
/// (workers 0..num_persistent-1 by convention) and sizes the heterogeneous
/// factor table; `seed` makes the factor draw deterministic.
std::unique_ptr<ComputeModel> make_compute_model(const ComputeModelSpec& spec,
                                                 std::uint32_t num_workers,
                                                 std::uint64_t seed = 1);

}  // namespace fluentps::sim
