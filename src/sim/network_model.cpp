#include "sim/network_model.h"

#include <algorithm>

#include "common/logging.h"

namespace fluentps::sim {

NetworkModel::NetworkModel(NetworkSpec spec, std::size_t num_nodes)
    : spec_(spec),
      egress_free_(num_nodes, 0.0),
      ingress_free_(num_nodes, 0.0),
      ingress_busy_(num_nodes, 0.0),
      node_bw_(num_nodes, 0.0) {}

SimTime NetworkModel::deliver(NodeId src, NodeId dst, double bytes, SimTime now) {
  FPS_CHECK(src < egress_free_.size() && dst < ingress_free_.size())
      << "node id out of range: src=" << src << " dst=" << dst;
  total_bytes_ += bytes;

  const double tx_out = bytes / bw(src);
  const double tx_in = bytes / bw(dst);

  const SimTime departure = std::max(now, egress_free_[src]);
  egress_free_[src] = departure + tx_out;

  const SimTime land = departure + tx_out + spec_.latency_seconds;
  const SimTime arrival_start = std::max(land, ingress_free_[dst]);
  const SimTime delivered = arrival_start + tx_in;
  ingress_free_[dst] = delivered;
  ingress_busy_[dst] += tx_in;
  return delivered;
}

void NetworkModel::set_node_bandwidth(NodeId node, double bytes_per_sec) {
  FPS_CHECK(node < node_bw_.size()) << "node id out of range: " << node;
  node_bw_[node] = bytes_per_sec;
}

double NetworkModel::ingress_busy_seconds(NodeId node) const {
  FPS_CHECK(node < ingress_busy_.size()) << "node id out of range: " << node;
  return ingress_busy_[node];
}

}  // namespace fluentps::sim
