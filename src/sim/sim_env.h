// Discrete-event simulation kernel.
//
// The DES backend of FluentPS runs N workers and M servers as event-driven
// state machines over a single virtual clock. Events with equal timestamps
// fire in insertion order, so a run is a pure function of (config, seed) —
// this is design decision D6 in DESIGN.md: real gradient math executes inside
// a deterministic timing envelope, giving accuracy AND timing in one run.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace fluentps::sim {

/// Virtual time in seconds.
using SimTime = double;

/// Single-threaded discrete-event scheduler.
class SimEnv {
 public:
  SimEnv() = default;
  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0; negative
  /// delays are clamped to 0).
  void schedule(SimTime delay, std::function<void()> fn);

  /// Schedule `fn` at absolute virtual time `t` (clamped to >= now()).
  void schedule_at(SimTime t, std::function<void()> fn);

  /// Run one event; returns false if the queue is empty.
  bool step();

  /// Run until the event queue is empty.
  void run();

  /// Run until virtual time would exceed `t_end` (events at exactly t_end
  /// still run). Returns the number of events executed.
  std::size_t run_until(SimTime t_end);

  /// Events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Pending events.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // insertion order: deterministic tiebreak
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace fluentps::sim
