// Minimal key=value configuration store with typed getters; parses
// command-line style "--key=value" arguments and plain "key=value" lines so
// examples and benches share one flag mechanism.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fluentps {

class Config {
 public:
  Config() = default;

  /// Parse argv-style arguments: "--key=value" or "key=value". Unrecognized
  /// tokens are collected into positional().
  static Config from_args(int argc, const char* const* argv);

  /// Parse newline-separated "key=value" text; '#' begins a comment.
  static Config from_text(std::string_view text);

  void set(std::string key, std::string value);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key, std::string fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback = 0) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// All key/value pairs, sorted.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> entries() const;

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace fluentps
