// Minimal key=value configuration store with typed getters; parses
// command-line style "--key=value" arguments and plain "key=value" lines so
// examples and benches share one flag mechanism.
//
// Structured sections + aliases (DESIGN.md §13): as flat keys grew into
// sections (`read.*`, `replication.*`, `fault.*`, `retry.*`), older spellings
// were kept alive via alias(canonical, legacy). An alias makes the two keys
// one logical setting for every lookup — has()/get_*() on either name
// resolve to whichever was actually set, canonical spelling first.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace fluentps {

class Config {
 public:
  Config() = default;

  /// Parse argv-style arguments: "--key=value" or "key=value". Unrecognized
  /// tokens are collected into positional().
  static Config from_args(int argc, const char* const* argv);

  /// Parse newline-separated "key=value" text; '#' begins a comment.
  static Config from_text(std::string_view text);

  void set(std::string key, std::string value);

  /// Declare `legacy` a backward-compat spelling of `canonical`: lookups on
  /// either key resolve to whichever is set, preferring the exact key asked
  /// for, then its counterpart. Aliases apply to has() and every get_*().
  void alias(std::string canonical, std::string legacy);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key, std::string fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t fallback = 0) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// All key/value pairs, sorted.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> entries() const;

 private:
  /// The stored value for `key`, following one alias hop if the exact key is
  /// absent. nullptr when neither spelling is set.
  [[nodiscard]] const std::string* resolve(const std::string& key) const;

  std::map<std::string, std::string> kv_;
  std::map<std::string, std::string> aliases_;  ///< both directions
  std::vector<std::string> positional_;
};

}  // namespace fluentps
