#include "common/config.h"

#include <algorithm>
#include <cstdlib>

namespace fluentps {
namespace {

void parse_pair(Config& cfg, std::string_view token, std::vector<std::string>* positional) {
  std::string_view body = token;
  while (body.starts_with('-')) body.remove_prefix(1);
  const auto eq = body.find('=');
  if (eq == std::string_view::npos) {
    if (positional != nullptr) positional->emplace_back(token);
    return;
  }
  cfg.set(std::string(body.substr(0, eq)), std::string(body.substr(eq + 1)));
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    parse_pair(cfg, argv[i], &cfg.positional_);
  }
  return cfg;
}

Config Config::from_text(std::string_view text) {
  Config cfg;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    const auto hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    // Trim whitespace.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) line.remove_prefix(1);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' || line.back() == '\r'))
      line.remove_suffix(1);
    if (line.empty()) continue;
    parse_pair(cfg, line, nullptr);
  }
  return cfg;
}

void Config::set(std::string key, std::string value) { kv_[std::move(key)] = std::move(value); }

void Config::alias(std::string canonical, std::string legacy) {
  // Bidirectional: resolve() follows one hop from either spelling, so reads
  // through the canonical key see a value set under the legacy key and vice
  // versa. (Exact-key hits always win — a run that sets both gets the
  // spelling it asked about.)
  aliases_[legacy] = canonical;
  aliases_[std::move(canonical)] = std::move(legacy);
}

const std::string* Config::resolve(const std::string& key) const {
  const auto it = kv_.find(key);
  if (it != kv_.end()) return &it->second;
  const auto alias_it = aliases_.find(key);
  if (alias_it == aliases_.end()) return nullptr;
  const auto other = kv_.find(alias_it->second);
  return other != kv_.end() ? &other->second : nullptr;
}

bool Config::has(const std::string& key) const { return resolve(key) != nullptr; }

std::string Config::get_string(const std::string& key, std::string fallback) const {
  const std::string* v = resolve(key);
  return v != nullptr ? *v : std::move(fallback);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  const std::string* v = resolve(key);
  if (v == nullptr) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Config::get_double(const std::string& key, double fallback) const {
  const std::string* v = resolve(key);
  if (v == nullptr) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const std::string* v = resolve(key);
  if (v == nullptr) return fallback;
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

std::vector<std::pair<std::string, std::string>> Config::entries() const {
  return {kv_.begin(), kv_.end()};
}

}  // namespace fluentps
