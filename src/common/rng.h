// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in FluentPS (dataset synthesis, weight init,
// straggler injection, PSSP coin flips) draws from its own `Rng` stream,
// seeded from an experiment-level root seed plus a stream id. Two runs with
// the same root seed produce bit-identical traces regardless of thread
// scheduling, because streams are never shared across components (CP.3).
#pragma once

#include <cstdint>
#include <vector>

namespace fluentps {

/// SplitMix64-based generator: tiny state, excellent statistical quality for
/// simulation purposes, trivially seedable into independent streams.
class Rng {
 public:
  /// Seed from a root seed and a stream id; distinct (seed, stream) pairs
  /// yield decorrelated sequences.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_u64(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached spare).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Fisher-Yates shuffle in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Trivially copyable snapshot of the generator, so components that
  /// checkpoint themselves (sync engine under crash-restart recovery) can
  /// resume their stream exactly where the crash left it.
  struct State {
    std::uint64_t state = 0;
    double spare = 0.0;
    std::uint8_t has_spare = 0;
  };

  [[nodiscard]] State save_state() const noexcept { return {state_, spare_, has_spare_}; }
  void restore_state(const State& s) noexcept {
    state_ = s.state;
    spare_ = s.spare;
    has_spare_ = s.has_spare != 0;
  }

 private:
  std::uint64_t state_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Derive a child seed from a parent seed and a label; used to give each
/// component (worker i, server m, dataset, ...) its own stream.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t label) noexcept;

}  // namespace fluentps
