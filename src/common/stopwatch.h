// Wall-clock stopwatch for the thread backend; the DES backend uses the
// virtual clock in src/sim instead.
#pragma once

#include <chrono>

namespace fluentps {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart from now.
  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fluentps
