#include "common/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace fluentps {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::to_ascii() const {
  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (rows_.empty()) return os.str();

  std::size_t ncols = 0;
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
  }

  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < ncols; ++c) os << std::string(width[c] + 2, '-') << '+';
    os << '\n';
  };

  rule();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < rows_[i].size() ? rows_[i][c] : std::string{};
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
    if (i == 0) rule();  // separate header
  }
  rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& cell = r[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace fluentps
