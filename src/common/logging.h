// Thread-safe leveled logging for FluentPS.
//
// Usage:
//   FPS_LOG(INFO) << "server " << id << " started";
//   fluentps::log::set_level(fluentps::log::Level::kWarn);
//
// The logger writes a single formatted line per statement under an internal
// mutex, so concurrent log statements never interleave mid-line (CP.2: the
// only shared mutable state is the sink, and it is guarded).
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace fluentps::log {

/// Severity levels, ordered. Messages below the configured level are dropped
/// before formatting cost is paid (the macro checks first).
enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global minimum level. Thread-safe (relaxed atomic).
void set_level(Level level) noexcept;

/// Current global minimum level.
Level level() noexcept;

/// True if a message at `l` would be emitted.
bool enabled(Level l) noexcept;

/// Redirect log output (default: std::cerr). Pass nullptr to restore stderr.
/// The stream must outlive all logging; intended for tests.
void set_sink(std::ostream* sink);

/// Parse "debug"/"info"/"warn"/"error"/"off" (case-insensitive). Unknown
/// strings map to kInfo.
Level parse_level(std::string_view s) noexcept;

namespace detail {

/// One log statement: accumulates into a local stream, flushes on destruction.
class LineLogger {
 public:
  LineLogger(Level level, const char* file, int line);
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;
  ~LineLogger();

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace fluentps::log

#define FPS_LOG(severity)                                               \
  if (!::fluentps::log::enabled(::fluentps::log::Level::k##severity)) { \
  } else                                                                \
    ::fluentps::log::detail::LineLogger(::fluentps::log::Level::k##severity, __FILE__, __LINE__)

/// Fatal check: always evaluated, aborts with message on failure.
#define FPS_CHECK(cond)                                                       \
  if (cond) {                                                                 \
  } else                                                                      \
    ::fluentps::log::detail::FatalLogger(#cond, __FILE__, __LINE__)

namespace fluentps::log::detail {

/// Helper for FPS_CHECK: streams a diagnostic then aborts in the destructor.
class FatalLogger {
 public:
  FatalLogger(const char* cond, const char* file, int line);
  [[noreturn]] ~FatalLogger();

  template <typename T>
  FatalLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace fluentps::log::detail
