// Thread-affinity shim (DESIGN.md §11): pin apply/drain threads to cores so
// stripe first-touch placement survives the scheduler, without taking a hard
// dependency on libnuma or a multi-socket machine.
//
// Everything degrades gracefully: on non-Linux platforms, in restricted
// sandboxes (pthread_setaffinity_np returning EPERM/EINVAL), or on
// single-core CI boxes, pin_current_thread() just returns false and callers
// carry on unpinned. The knobs stay safe-by-default (`pin_threads=0`).
#pragma once

namespace fluentps::affinity {

/// True when this build/platform can pin threads at all (Linux with a
/// readable affinity mask). A true here does not guarantee a later pin
/// succeeds — the mask may shrink (cgroups) between calls.
[[nodiscard]] bool supported() noexcept;

/// Number of CPUs the calling thread may run on (its affinity mask), falling
/// back to hardware_concurrency; never returns 0.
[[nodiscard]] unsigned allowed_cpus() noexcept;

/// Pin the calling thread to one CPU. `slot` is a logical index that is
/// mapped onto the thread's *allowed* CPU set modulo its size, so callers
/// can hand out slot = rank * threads + t without knowing the mask. Returns
/// true when the kernel accepted the mask, false on any failure (no-op).
bool pin_current_thread(unsigned slot) noexcept;

/// CPU the calling thread last ran on, or -1 when unknown.
[[nodiscard]] int current_cpu() noexcept;

}  // namespace fluentps::affinity
