// serialization.h is header-only; this TU exists so the target has a home for
// future non-template helpers and to verify the header is self-contained.
#include "common/serialization.h"
