// Fixed-size task pool over std::jthread (CP.25/CP.26: joining threads, never
// detach). Tasks are type-erased std::move_only_function-like closures.
#pragma once

#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"

namespace fluentps {

/// A simple fixed-size thread pool. Destruction closes the queue and joins
/// all workers (jthread joins automatically), so every submitted task either
/// runs or is dropped-before-start deterministically at shutdown.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns false if the pool is already shut down.
  bool submit(std::function<void()> task);

  /// Enqueue and obtain a future for the callable's result.
  template <typename F>
  auto submit_with_result(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Stop accepting tasks, drain the queue, and join. Idempotent.
  void shutdown();

 private:
  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::jthread> workers_;
};

}  // namespace fluentps
