#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace fluentps::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::kInfo)};
std::mutex g_sink_mu;
std::ostream* g_sink = nullptr;  // nullptr means std::cerr

const char* level_name(Level l) {
  switch (l) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void set_level(Level level) noexcept { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

Level level() noexcept { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

bool enabled(Level l) noexcept { return static_cast<int>(l) >= g_level.load(std::memory_order_relaxed); }

void set_sink(std::ostream* sink) {
  std::scoped_lock lock(g_sink_mu);
  g_sink = sink;
}

Level parse_level(std::string_view s) noexcept {
  auto eq = [&s](std::string_view t) {
    if (s.size() != t.size()) return false;
    for (size_t i = 0; i < s.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(s[i])) != t[i]) return false;
    }
    return true;
  };
  if (eq("debug")) return Level::kDebug;
  if (eq("warn")) return Level::kWarn;
  if (eq("error")) return Level::kError;
  if (eq("off")) return Level::kOff;
  return Level::kInfo;
}

namespace detail {

LineLogger::LineLogger(Level level, const char* file, int line) : level_(level) {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  stream_ << '[' << level_name(level_) << ' ' << ms % 100000000 << ' ' << basename_of(file) << ':' << line
          << "] ";
}

LineLogger::~LineLogger() {
  stream_ << '\n';
  std::scoped_lock lock(g_sink_mu);
  std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
  out << stream_.str();
  out.flush();
}

FatalLogger::FatalLogger(const char* cond, const char* file, int line) {
  stream_ << "CHECK failed: " << cond << " at " << basename_of(file) << ':' << line << ' ';
}

FatalLogger::~FatalLogger() {
  {
    std::scoped_lock lock(g_sink_mu);
    std::ostream& out = g_sink != nullptr ? *g_sink : std::cerr;
    out << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace detail
}  // namespace fluentps::log
