#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fluentps {

void StreamingStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StreamingStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

IntHistogram::IntHistogram(std::size_t max_value) : buckets_(max_value + 1, 0) {}

void IntHistogram::add(std::int64_t value) noexcept {
  ++total_;
  sum_ += static_cast<double>(value);
  if (value < 0) value = 0;
  const auto v = static_cast<std::size_t>(value);
  if (v < buckets_.size()) {
    ++buckets_[v];
  } else {
    ++overflow_;
  }
}

std::size_t IntHistogram::bucket(std::size_t v) const noexcept {
  return v < buckets_.size() ? buckets_[v] : 0;
}

double IntHistogram::mean() const noexcept {
  return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
}

double IntHistogram::pmf(std::size_t v) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bucket(v)) / static_cast<double>(total_);
}

std::int64_t IntHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  // Clamp so q = 1.0 returns the maximum observed value, not the overflow
  // sentinel.
  const auto target = std::min(static_cast<std::size_t>(q * static_cast<double>(total_)),
                               total_ - 1);
  std::size_t acc = 0;
  for (std::size_t v = 0; v < buckets_.size(); ++v) {
    acc += buckets_[v];
    if (acc > target) return static_cast<std::int64_t>(v);
  }
  return static_cast<std::int64_t>(buckets_.size());
}

std::string IntHistogram::to_string() const {
  std::ostringstream os;
  for (std::size_t v = 0; v < buckets_.size(); ++v) {
    if (buckets_[v] > 0) os << v << ": " << buckets_[v] << '\n';
  }
  if (overflow_ > 0) os << ">" << max_value() << ": " << overflow_ << '\n';
  return os.str();
}

void IntHistogram::merge(const IntHistogram& other) {
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t v = 0; v < other.buckets_.size(); ++v) buckets_[v] += other.buckets_[v];
  overflow_ += other.overflow_;
  total_ += other.total_;
  sum_ += other.sum_;
}

void IntHistogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  total_ = 0;
  sum_ = 0.0;
}

}  // namespace fluentps
