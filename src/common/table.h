// ASCII table printer used by the bench harness to emit paper-style rows
// (Fig/Table reproductions print aligned columns to stdout and CSV files).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fluentps {

/// Collects rows of string cells and renders them as an aligned ASCII table
/// or as CSV. The first added row is treated as the header.
class Table {
 public:
  explicit Table(std::string title = "");

  /// Add a row. The first row becomes the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: build a row from heterogenous printable values.
  template <typename... Ts>
  void add(const Ts&... values) {
    add_row({to_cell(values)...});
  }

  /// Render with box-drawing separators.
  [[nodiscard]] std::string to_ascii() const;

  /// Render as CSV (RFC-ish: cells containing commas are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Write CSV to a file path; returns false on I/O error.
  bool write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Format a double with `prec` significant decimals.
  static std::string num(double v, int prec = 3);

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      return num(static_cast<double>(v));
    } else {
      return std::to_string(v);
    }
  }

  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fluentps
