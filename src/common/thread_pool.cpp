#include "common/thread_pool.h"

namespace fluentps {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] {
      while (auto task = queue_.pop()) {
        (*task)();
      }
    });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) { return queue_.push(std::move(task)); }

void ThreadPool::shutdown() {
  queue_.close();
  workers_.clear();  // jthread dtor joins
}

}  // namespace fluentps
