// Named-metric registry: counters, gauges, and timing accumulators keyed by
// string. One registry per experiment run; thread-safe so server and worker
// threads can record concurrently in the thread backend.
//
// Since the telemetry rebuild (DESIGN.md §12) this class is a facade over
// obs::Registry: counters and gauges live in wait-free sharded cells
// (obs/telemetry.h) instead of a mutex-guarded map, so hot paths that only
// have a Metrics* still record without contention, and components that want
// the cheapest possible path cache obs::Counter&/Histogram& handles from
// registry() directly. The API and its observable semantics are unchanged —
// a metric appears in counters()/gauges() only once recorded, reset() empties
// the snapshots, counter_sum_prefix keeps its lower_bound + early-exit scan.
// Streaming distributions (observe/distribution) stay here under a small
// mutex: they are not touched from hot paths.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/telemetry.h"

namespace fluentps {

/// Thread-safe metrics registry. Keys are dotted names, e.g.
/// "server.0.dpr_total", "worker.comm_seconds".
class Metrics {
 public:
  /// Add `delta` to a monotonically increasing counter.
  void incr(const std::string& name, std::int64_t delta = 1);

  /// Set a gauge to an absolute value.
  void set_gauge(const std::string& name, double value);

  /// Raise a gauge to `value` if it is higher than the current reading (or
  /// the gauge is unset) — high-water marks like replication lag or the
  /// slowest failover, recorded from per-shard observations.
  void set_gauge_max(const std::string& name, double value);

  /// Record one observation into the named streaming distribution.
  void observe(const std::string& name, double value);

  [[nodiscard]] std::int64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  [[nodiscard]] StreamingStats distribution(const std::string& name) const;

  /// Sum of all counters whose name starts with `prefix` (e.g. aggregate DPRs
  /// across servers with prefix "server." and suffix filter in caller).
  [[nodiscard]] std::int64_t counter_sum_prefix(const std::string& prefix) const;

  /// Snapshot all counters (sorted by key) for reporting.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> counters() const;

  /// Snapshot all gauges (sorted by key).
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;

  void reset();

  /// The wait-free registry behind the facade. Components cache instrument
  /// handles (obs::Counter&, obs::Histogram&) from here at construction and
  /// record without any name lookup; the snapshotter exports from it.
  [[nodiscard]] obs::Registry& registry() { return registry_; }
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }

 private:
  obs::Registry registry_;
  mutable std::mutex mu_;  // guards dists_ only
  std::map<std::string, StreamingStats> dists_;
};

}  // namespace fluentps
