// Bounded lock-free MPSC ring (DESIGN.md §11): the combiner handoff queue.
//
// Layout and protocol follow the classic sequence-numbered bounded queue
// (Vyukov): each slot carries an atomic sequence counter that encodes whose
// turn it is. A producer claims a slot by CAS on the enqueue cursor, writes
// its item, then *releases* the slot by storing seq = pos + 1; the consumer
// *acquires* that store before reading the item, so the item write
// happens-before the read without any lock. Slots are cache-line padded so
// neighbouring producers never false-share.
//
// try_push never blocks: a full ring returns false (backpressure — callers
// decide whether to spin, yield, or fall back). Per-slot FIFO holds: items
// are dequeued in successful-push (cursor-claim) order, which is what makes
// the ring drain bit-identical to the old mutex queue drain.
//
// Single consumer: try_pop must only ever be called from one thread at a
// time (the drain side enforces this with its combiner/drain-thread role).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace fluentps {

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  ~MpscRing() {
    T scratch;
    while (try_pop(scratch)) {
    }
  }

  /// Multi-producer enqueue; false when the ring is full (backpressure).
  /// On failure `v` is left untouched (not moved from), so callers with
  /// expensive-to-rebuild items can flush/retry with the same value.
  template <typename U>
  bool try_push(U&& v) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[pos & mask_];
      const std::size_t seq = slot.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          ::new (static_cast<void*>(slot.storage)) T(std::forward<U>(v));
          slot.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS updated pos to the current cursor; retry with it.
      } else if (dif < 0) {
        return false;  // the slot still holds an unconsumed lap: ring full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer dequeue; false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1) != 0) {
      return false;
    }
    T* item = std::launder(reinterpret_cast<T*>(slot.storage));
    out = std::move(*item);
    item->~T();
    // Hand the slot to the producers' next lap.
    slot.seq.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Racy occupancy estimate (for depth high-water marks, not control flow).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t tail = dequeue_pos_.load(std::memory_order_relaxed);
    const std::size_t head = enqueue_pos_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

 private:
  // 64 = x86/arm64 destructive interference size; fixed rather than
  // std::hardware_destructive_interference_size so the slot layout is ABI-
  // stable across TUs compiled with different tuning flags.
  static constexpr std::size_t kCacheLine = 64;

  struct alignas(kCacheLine) Slot {
    std::atomic<std::size_t> seq{0};
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace fluentps
