#include "common/metrics.h"

namespace fluentps {

void Metrics::incr(const std::string& name, std::int64_t delta) {
  std::scoped_lock lock(mu_);
  counters_[name] += delta;
}

void Metrics::set_gauge(const std::string& name, double value) {
  std::scoped_lock lock(mu_);
  gauges_[name] = value;
}

void Metrics::set_gauge_max(const std::string& name, double value) {
  std::scoped_lock lock(mu_);
  const auto [it, inserted] = gauges_.try_emplace(name, value);
  if (!inserted && value > it->second) it->second = value;
}

void Metrics::observe(const std::string& name, double value) {
  std::scoped_lock lock(mu_);
  dists_[name].add(value);
}

std::int64_t Metrics::counter(const std::string& name) const {
  std::scoped_lock lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double Metrics::gauge(const std::string& name) const {
  std::scoped_lock lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

StreamingStats Metrics::distribution(const std::string& name) const {
  std::scoped_lock lock(mu_);
  const auto it = dists_.find(name);
  return it != dists_.end() ? it->second : StreamingStats{};
}

std::int64_t Metrics::counter_sum_prefix(const std::string& prefix) const {
  std::scoped_lock lock(mu_);
  std::int64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum += it->second;
  }
  return sum;
}

std::vector<std::pair<std::string, std::int64_t>> Metrics::counters() const {
  std::scoped_lock lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> Metrics::gauges() const {
  std::scoped_lock lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

void Metrics::reset() {
  std::scoped_lock lock(mu_);
  counters_.clear();
  gauges_.clear();
  dists_.clear();
}

}  // namespace fluentps
