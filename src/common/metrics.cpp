#include "common/metrics.h"

namespace fluentps {

void Metrics::incr(const std::string& name, std::int64_t delta) {
  registry_.counter(name).add(delta);
}

void Metrics::set_gauge(const std::string& name, double value) {
  registry_.gauge(name).set(value);
}

void Metrics::set_gauge_max(const std::string& name, double value) {
  registry_.gauge(name).set_max(value);
}

void Metrics::observe(const std::string& name, double value) {
  std::scoped_lock lock(mu_);
  dists_[name].add(value);
}

std::int64_t Metrics::counter(const std::string& name) const {
  const obs::Counter* c = registry_.find_counter(name);
  return c != nullptr ? c->value() : 0;
}

double Metrics::gauge(const std::string& name) const {
  const obs::Gauge* g = registry_.find_gauge(name);
  return (g != nullptr && g->seen()) ? g->value() : 0.0;
}

StreamingStats Metrics::distribution(const std::string& name) const {
  std::scoped_lock lock(mu_);
  const auto it = dists_.find(name);
  return it != dists_.end() ? it->second : StreamingStats{};
}

std::int64_t Metrics::counter_sum_prefix(const std::string& prefix) const {
  return registry_.counter_sum_prefix(prefix);
}

std::vector<std::pair<std::string, std::int64_t>> Metrics::counters() const {
  return registry_.counters();
}

std::vector<std::pair<std::string, double>> Metrics::gauges() const {
  return registry_.gauges();
}

void Metrics::reset() {
  registry_.reset_values();
  std::scoped_lock lock(mu_);
  dists_.clear();
}

}  // namespace fluentps
