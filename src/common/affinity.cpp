#include "common/affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace fluentps::affinity {

#if defined(__linux__)

namespace {

/// CPUs in the calling thread's current affinity mask, in id order. Empty on
/// failure (restricted sandbox), which callers treat as "cannot pin".
std::size_t allowed_list(int* cpus, std::size_t max) noexcept {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) != 0) return 0;
  std::size_t n = 0;
  for (int c = 0; c < CPU_SETSIZE && n < max; ++c) {
    if (CPU_ISSET(c, &set)) cpus[n++] = c;
  }
  return n;
}

}  // namespace

bool supported() noexcept {
  int cpus[1];
  return allowed_list(cpus, 1) > 0;
}

unsigned allowed_cpus() noexcept {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool pin_current_thread(unsigned slot) noexcept {
  int cpus[CPU_SETSIZE];
  const std::size_t n = allowed_list(cpus, CPU_SETSIZE);
  if (n == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpus[slot % n], &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

int current_cpu() noexcept {
  return sched_getcpu();
}

#else  // !__linux__: every call is a graceful no-op.

bool supported() noexcept { return false; }

unsigned allowed_cpus() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

bool pin_current_thread(unsigned) noexcept { return false; }

int current_cpu() noexcept { return -1; }

#endif

}  // namespace fluentps::affinity
