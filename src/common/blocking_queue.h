// Bounded/unbounded MPMC blocking queue built on mutex + condition_variable.
//
// Follows CP.42 (never wait without a predicate) and CP.20 (RAII locks).
// close() wakes all waiters; pop() then drains remaining items before
// reporting closed, so no message is ever lost at shutdown.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace fluentps {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Blocking push; returns false if the queue was closed.
  bool push(T item) {
    {
      std::unique_lock lock(mu_);
      not_full_.wait(lock, [this] { return closed_ || capacity_ == 0 || q_.size() < capacity_; });
      if (closed_) return false;
      q_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool try_push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_ || (capacity_ != 0 && q_.size() >= capacity_)) return false;
      q_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: pushes fail from now on, poppers drain then stop.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace fluentps
