#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace fluentps {
namespace {

constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

std::uint64_t splitmix_step(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += kGamma);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept : state_(derive_seed(seed, stream)) {}

std::uint64_t Rng::next_u64() noexcept { return splitmix_step(state_); }

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t n) noexcept {
  // Rejection-free Lemire-style reduction is overkill here; modulo bias is
  // negligible for simulation ranges << 2^64, but reject the tail anyway.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t label) noexcept {
  std::uint64_t s = parent ^ (label * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  // One extra mix so adjacent labels land far apart.
  splitmix_step(s);
  return s;
}

}  // namespace fluentps
