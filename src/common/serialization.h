// Byte-level serialization used by the message layer.
//
// Wire format: little-endian fixed-width integers, IEEE-754 doubles/floats,
// length-prefixed containers. The writer/reader pair round-trips all message
// types in src/net; malformed input is reported via Reader::ok() rather than
// exceptions so transport code can drop bad frames.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fluentps::io {

/// Append-only byte buffer writer.
class Writer {
 public:
  Writer() = default;

  /// Reserve capacity up front when the payload size is known.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(T value) {
    const std::size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &value, sizeof(T));
  }

  /// Length-prefixed (u64) string.
  void put_string(std::string_view s) {
    put<std::uint64_t>(s.size());
    const std::size_t off = buf_.size();
    buf_.resize(off + s.size());
    std::memcpy(buf_.data() + off, s.data(), s.size());
  }

  /// Length-prefixed (u64) vector of trivially copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    const std::size_t off = buf_.size();
    buf_.resize(off + v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(buf_.data() + off, v.data(), v.size() * sizeof(T));
  }

  /// Raw bytes without a length prefix.
  void put_raw(const void* data, std::size_t n) {
    const std::size_t off = buf_.size();
    buf_.resize(off + n);
    if (n > 0) std::memcpy(buf_.data() + off, data, n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a byte span. All getters return a default value and
/// latch ok() == false on underflow; callers check ok() once at the end.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) noexcept : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf) noexcept : Reader(buf.data(), buf.size()) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() noexcept {
    T value{};
    if (!take(sizeof(T))) return value;
    std::memcpy(&value, data_ + pos_ - sizeof(T), sizeof(T));
    return value;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(data_ + pos_ - n), n);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    std::vector<T> v;
    if (!take(n * sizeof(T))) return v;
    v.resize(n);
    if (n > 0) std::memcpy(v.data(), data_ + pos_ - n * sizeof(T), n * sizeof(T));
    return v;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  bool take(std::size_t n) noexcept {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fluentps::io
