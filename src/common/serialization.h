// Byte-level serialization used by the message layer.
//
// Wire format: little-endian fixed-width integers, IEEE-754 doubles/floats,
// length-prefixed containers. The writer/reader pair round-trips all message
// types in src/net; malformed input is reported via Reader::ok() rather than
// exceptions so transport code can drop bad frames.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fluentps::io {

/// Append-only byte buffer writer.
class Writer {
 public:
  Writer() = default;

  /// Reserve capacity up front when the payload size is known.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  // All appends use insert(end, first, last) rather than resize() + memcpy:
  // vector::resize value-initializes (zero-fills) the new tail, which the
  // memcpy then overwrites — a measurable double-touch on payload-sized
  // appends. insert copies each byte exactly once.

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(T value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  /// Length-prefixed (u64) string.
  void put_string(std::string_view s) {
    put<std::uint64_t>(s.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  /// Length-prefixed (u64) vector of trivially copyable elements.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    if (!v.empty()) buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  /// Raw bytes without a length prefix.
  void put_raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    if (n > 0) buf_.insert(buf_.end(), p, p + n);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a byte span. All getters return a default value and
/// latch ok() == false on underflow; callers check ok() once at the end.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) noexcept : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf) noexcept : Reader(buf.data(), buf.size()) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() noexcept {
    T value{};
    if (!take(sizeof(T))) return value;
    std::memcpy(&value, data_ + pos_ - sizeof(T), sizeof(T));
    return value;
  }

  std::string get_string() {
    const auto n = get<std::uint64_t>();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(data_ + pos_ - n), n);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    const auto n = get<std::uint64_t>();
    std::vector<T> v;
    if (!take(n * sizeof(T))) return v;
    if (n == 0) return v;
    const std::uint8_t* raw = data_ + pos_ - n * sizeof(T);
    if (reinterpret_cast<std::uintptr_t>(raw) % alignof(T) == 0) {
      // assign() copies each element exactly once (vs resize() zero-fill + memcpy).
      const auto* first = reinterpret_cast<const T*>(raw);
      v.assign(first, first + n);
    } else {  // misaligned source: byte-wise copy (resize zero-fill is the price)
      v.resize(n);
      std::memcpy(v.data(), raw, n * sizeof(T));
    }
    return v;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  bool take(std::size_t n) noexcept {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fluentps::io
