// Streaming statistics and fixed-bucket histograms used by the experiment
// harness (staleness distributions, DPR counts, per-iteration times).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace fluentps {

/// Welford streaming mean/variance plus min/max; O(1) memory.
class StreamingStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merge another stream into this one (parallel reduction).
  void merge(const StreamingStats& other) noexcept;

  void reset() noexcept { *this = StreamingStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Integer-valued histogram with dense buckets [0, max_value]; values above
/// max_value land in an overflow bucket. Used for staleness-gap distributions.
class IntHistogram {
 public:
  explicit IntHistogram(std::size_t max_value = 64);

  void add(std::int64_t value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  [[nodiscard]] std::size_t bucket(std::size_t v) const noexcept;
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t max_value() const noexcept { return buckets_.size() - 1; }
  [[nodiscard]] double mean() const noexcept;

  /// Empirical probability mass at value v (overflow excluded).
  [[nodiscard]] double pmf(std::size_t v) const noexcept;

  /// Smallest value with CDF >= q (q in [0,1]); overflow maps to max+1.
  [[nodiscard]] std::int64_t quantile(double q) const noexcept;

  /// Multi-line "value: count" dump for logs.
  [[nodiscard]] std::string to_string() const;

  void merge(const IntHistogram& other);
  void reset() noexcept;

 private:
  std::vector<std::size_t> buckets_;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace fluentps
