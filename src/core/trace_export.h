// Export IterationTrace timelines to the Chrome tracing format
// (chrome://tracing / https://ui.perfetto.dev): each worker is a track with
// alternating "compute" and "sync" spans, giving the paper's Fig 5 timeline
// as an interactive visualization. Fault-lifecycle events (crash, restart,
// checkpoint, recovered, failover, promote, redial) overlay the timeline as
// instant events, and cross-hop telemetry spans (DESIGN.md §12) render as a
// second process ("spans", pid 1) with one track per runtime node — the
// worker→server→replica round trip nests via parent/child span ids carried
// in each event's args.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/span.h"

namespace fluentps::core {

/// Render the trace as a Chrome tracing JSON document ("X" complete events
/// for compute/sync spans, "i" instant events for faults; timestamps in
/// microseconds).
std::string to_chrome_trace_json(const std::vector<IterationTrace>& trace,
                                 const std::vector<FaultEvent>& fault_events = {},
                                 const std::vector<obs::SpanRecord>& spans = {});

/// Write the JSON to a file; returns false on I/O error.
bool write_chrome_trace(const std::string& path, const std::vector<IterationTrace>& trace,
                        const std::vector<FaultEvent>& fault_events = {},
                        const std::vector<obs::SpanRecord>& spans = {});

}  // namespace fluentps::core
