// Export IterationTrace timelines to the Chrome tracing format
// (chrome://tracing / https://ui.perfetto.dev): each worker is a track with
// alternating "compute" and "sync" spans, giving the paper's Fig 5 timeline
// as an interactive visualization. Fault-lifecycle events (crash, restart,
// checkpoint, recovered) overlay the timeline as global instant events.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"

namespace fluentps::core {

/// Render the trace as a Chrome tracing JSON document ("X" complete events
/// for compute/sync spans, "i" instant events for faults; timestamps in
/// microseconds).
std::string to_chrome_trace_json(const std::vector<IterationTrace>& trace,
                                 const std::vector<FaultEvent>& fault_events = {});

/// Write the JSON to a file; returns false on I/O error.
bool write_chrome_trace(const std::string& path, const std::vector<IterationTrace>& trace,
                        const std::vector<FaultEvent>& fault_events = {});

}  // namespace fluentps::core
