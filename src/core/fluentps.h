// FluentPS — public umbrella header.
//
// A parameter-server library with condition-aware synchronization control
// (BSP/ASP/SSP/DSPS/drop-stragglers/PSSP via pluggable pull/push conditions),
// lazy pull execution, overlap synchronization and elastic parameter slicing,
// reproducing Yao, Wu & Wang, "FluentPS" (IEEE CLUSTER 2019).
//
// Typical use (see examples/quickstart.cpp):
//
//   fluentps::core::ExperimentConfig cfg;
//   cfg.num_workers = 16;  cfg.num_servers = 4;
//   cfg.sync.kind = "pssp"; cfg.sync.staleness = 3; cfg.sync.prob = 0.5;
//   cfg.dpr_mode = fluentps::ps::DprMode::kLazy;
//   auto result = fluentps::core::run_experiment(cfg);
//
// Lower layers are exposed for building custom systems: ps::Server,
// ps::WorkerClient and ps::SyncEngine with user-supplied conditions
// (SetcondPull/SetcondPush), net::Transport implementations, the sim::
// discrete-event kernel, and the ml:: training substrate.
#pragma once

#include "core/experiment.h"      // IWYU pragma: export
#include "core/stage_runner.h"    // IWYU pragma: export
#include "ml/dataset.h"           // IWYU pragma: export
#include "ml/eval.h"              // IWYU pragma: export
#include "ml/model.h"             // IWYU pragma: export
#include "ml/optimizer.h"         // IWYU pragma: export
#include "ps/conditions.h"        // IWYU pragma: export
#include "ps/scheduler.h"         // IWYU pragma: export
#include "ps/server.h"            // IWYU pragma: export
#include "ps/slicing.h"           // IWYU pragma: export
#include "ps/sync_engine.h"       // IWYU pragma: export
#include "ps/worker.h"            // IWYU pragma: export
