// Discrete-event backend: N worker state machines + M Server nodes (and, for
// the PS-Lite baseline, a Scheduler) over SimTransport/NetworkModel, with
// real gradient computation executed inside virtual-time events (DESIGN.md
// D6). Deterministic: a run is a pure function of the config.
#pragma once

#include "core/experiment.h"

namespace fluentps::core {

/// Run `config` on the simulation backend. Aborts if config.backend != kSim
/// is requested with thread-only features (none currently).
ExperimentResult run_sim(const ExperimentConfig& config);

}  // namespace fluentps::core
