#include "core/stage_runner.h"

#include "common/logging.h"

namespace fluentps::core {
namespace {

void check_compatible(const ExperimentConfig& a, const ExperimentConfig& b) {
  FPS_CHECK(a.model.kind == b.model.kind && a.model.hidden == b.model.hidden &&
            a.model.blocks == b.model.blocks)
      << "stages must train the same model";
  FPS_CHECK(a.data.dim == b.data.dim && a.data.num_classes == b.data.num_classes &&
            a.data.seed == b.data.seed && a.data.num_train == b.data.num_train)
      << "stages must share the dataset";
}

}  // namespace

StagedResult run_stages(std::vector<ExperimentConfig> stages) {
  FPS_CHECK(!stages.empty()) << "need at least one stage";
  StagedResult out;
  std::vector<float> carried;
  double time_offset = 0.0;
  for (std::size_t k = 0; k < stages.size(); ++k) {
    if (k > 0) check_compatible(stages[k - 1], stages[k]);
    ExperimentConfig& cfg = stages[k];
    if (!carried.empty()) cfg.initial_params = carried;
    FPS_LOG(Info) << "stage " << k << ": " << cfg.label() << " for " << cfg.max_iters
                  << " iterations";
    ExperimentResult r = run_experiment(cfg);
    carried = r.final_params;
    for (AccuracyPoint pt : r.curve) {
      pt.time += time_offset;
      out.curve.push_back(pt);
    }
    time_offset += r.total_time;
    out.total_time += r.total_time;
    out.total_iterations += r.iterations;
    out.final_accuracy = r.final_accuracy;
    out.stages.push_back(std::move(r));
  }
  return out;
}

}  // namespace fluentps::core
