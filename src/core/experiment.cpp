#include "core/experiment.h"

#include <sstream>

#include "common/logging.h"
#include "core/sim_runtime.h"
#include "core/thread_runtime.h"

namespace fluentps::core {

Arch parse_arch(const std::string& s) {
  if (s == "fluentps") return Arch::kFluentPS;
  if (s == "pslite") return Arch::kPsLite;
  if (s == "ssptable") return Arch::kSspTable;
  FPS_CHECK(false) << "unknown arch: " << s;
  return Arch::kFluentPS;
}

Backend parse_backend(const std::string& s) {
  if (s == "sim") return Backend::kSim;
  if (s == "threads") return Backend::kThreads;
  FPS_CHECK(false) << "unknown backend: " << s;
  return Backend::kSim;
}

const char* to_string(Arch a) noexcept {
  switch (a) {
    case Arch::kFluentPS: return "fluentps";
    case Arch::kPsLite: return "pslite";
    case Arch::kSspTable: return "ssptable";
  }
  return "?";
}

const char* to_string(Backend b) noexcept {
  return b == Backend::kSim ? "sim" : "threads";
}

std::string ExperimentConfig::label() const {
  std::ostringstream os;
  os << to_string(arch) << '/' << sync.label() << '/' << ps::to_string(dpr_mode) << "/N="
     << num_workers << ",M=" << num_servers;
  if (replication_factor > 1) os << ",r=" << replication_factor;
  return os.str();
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  return config.backend == Backend::kSim ? run_sim(config) : run_threads(config);
}

}  // namespace fluentps::core
