#include "core/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/logging.h"

namespace fluentps::core {
namespace {

constexpr std::uint64_t kMagic = 0x464C50533031ULL;      // "FLPS01"
constexpr std::uint64_t kBlobMagic = 0x464C50533032ULL;  // "FLPS02"

std::uint64_t fnv1a(const std::uint8_t* bytes, std::size_t n) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t params_checksum(std::span<const float> params) noexcept {
  return fnv1a(reinterpret_cast<const std::uint8_t*>(params.data()),
               params.size() * sizeof(float));
}

bool save_params(const std::string& path, std::span<const float> params) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    FPS_LOG(Warn) << "checkpoint: cannot open " << path << " for writing";
    return false;
  }
  const std::uint64_t count = params.size();
  const std::uint64_t checksum = params_checksum(params);
  f.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  f.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  f.write(reinterpret_cast<const char*>(params.data()),
          static_cast<std::streamsize>(params.size() * sizeof(float)));
  return static_cast<bool>(f);
}

bool load_params(const std::string& path, std::vector<float>* out) {
  FPS_CHECK(out != nullptr) << "null output vector";
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint64_t magic = 0, count = 0, checksum = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  f.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!f || magic != kMagic) {
    FPS_LOG(Warn) << "checkpoint: bad header in " << path;
    return false;
  }
  // Refuse absurd sizes rather than allocating blindly.
  if (count > (1ULL << 32)) {
    FPS_LOG(Warn) << "checkpoint: implausible parameter count " << count;
    return false;
  }
  std::vector<float> params(count);
  f.read(reinterpret_cast<char*>(params.data()),
         static_cast<std::streamsize>(count * sizeof(float)));
  if (!f || params_checksum(params) != checksum) {
    FPS_LOG(Warn) << "checkpoint: truncated or corrupt payload in " << path;
    return false;
  }
  *out = std::move(params);
  return true;
}

bool save_blob(const std::string& path, std::span<const std::uint8_t> blob) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    FPS_LOG(Warn) << "checkpoint: cannot open " << path << " for writing";
    return false;
  }
  const std::uint64_t count = blob.size();
  const std::uint64_t checksum = fnv1a(blob.data(), blob.size());
  f.write(reinterpret_cast<const char*>(&kBlobMagic), sizeof(kBlobMagic));
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  f.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  f.write(reinterpret_cast<const char*>(blob.data()), static_cast<std::streamsize>(blob.size()));
  return static_cast<bool>(f);
}

bool load_blob(const std::string& path, std::vector<std::uint8_t>* out) {
  FPS_CHECK(out != nullptr) << "null output vector";
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint64_t magic = 0, count = 0, checksum = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  f.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!f || magic != kBlobMagic) {
    FPS_LOG(Warn) << "checkpoint: bad blob header in " << path;
    return false;
  }
  if (count > (1ULL << 34)) {
    FPS_LOG(Warn) << "checkpoint: implausible blob size " << count;
    return false;
  }
  std::vector<std::uint8_t> blob(count);
  f.read(reinterpret_cast<char*>(blob.data()), static_cast<std::streamsize>(count));
  if (!f || fnv1a(blob.data(), blob.size()) != checksum) {
    FPS_LOG(Warn) << "checkpoint: truncated or corrupt blob payload in " << path;
    return false;
  }
  *out = std::move(blob);
  return true;
}

}  // namespace fluentps::core
