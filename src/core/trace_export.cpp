#include "core/trace_export.h"

#include <fstream>
#include <sstream>

namespace fluentps::core {
namespace {

void append_event(std::ostringstream& os, bool& first, const char* name, std::uint32_t worker,
                  double start_s, double end_s, std::int64_t iter) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": ")" << name << R"(", "cat": "fluentps", "ph": "X", "pid": 0, "tid": )"
     << worker << R"(, "ts": )" << start_s * 1e6 << R"(, "dur": )" << (end_s - start_s) * 1e6
     << R"(, "args": {"iter": )" << iter << "}}";
}

// Fault-lifecycle markers render as process-scoped instant events ("ph": "i",
// "s": "p") so a crash draws a vertical tick across the affected node's
// timeline in the viewer.
void append_instant(std::ostringstream& os, bool& first, const FaultEvent& e) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": ")" << e.kind << R"(", "cat": "fault", "ph": "i", "s": "p", "pid": 0, )"
     << R"("tid": )" << e.node << R"(, "ts": )" << e.time * 1e6 << R"(, "args": {"node": )"
     << e.node << "}}";
}

}  // namespace

std::string to_chrome_trace_json(const std::vector<IterationTrace>& trace,
                                 const std::vector<FaultEvent>& fault_events) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& t : trace) {
    append_event(os, first, "compute", t.worker, t.compute_start, t.compute_end, t.iter);
    append_event(os, first, "sync", t.worker, t.compute_end, t.sync_end, t.iter);
  }
  for (const auto& e : fault_events) append_instant(os, first, e);
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

bool write_chrome_trace(const std::string& path, const std::vector<IterationTrace>& trace,
                        const std::vector<FaultEvent>& fault_events) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_chrome_trace_json(trace, fault_events);
  return static_cast<bool>(f);
}

}  // namespace fluentps::core
