#include "core/trace_export.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace fluentps::core {
namespace {

void append_event(std::ostringstream& os, bool& first, const char* name, std::uint32_t worker,
                  double start_s, double end_s, std::int64_t iter) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": ")" << name << R"(", "cat": "fluentps", "ph": "X", "pid": 0, "tid": )"
     << worker << R"(, "ts": )" << start_s * 1e6 << R"(, "dur": )" << (end_s - start_s) * 1e6
     << R"(, "args": {"iter": )" << iter << "}}";
}

// Fault-lifecycle markers render as process-scoped instant events ("ph": "i",
// "s": "p") so a crash draws a vertical tick across the affected node's
// timeline in the viewer.
void append_instant(std::ostringstream& os, bool& first, const FaultEvent& e) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": ")" << e.kind << R"(", "cat": "fault", "ph": "i", "s": "p", "pid": 0, )"
     << R"("tid": )" << e.node << R"(, "ts": )" << e.time * 1e6 << R"(, "args": {"node": )"
     << e.node << "}}";
}

// Telemetry spans live in their own process (pid 1) so the viewer groups
// them apart from the per-worker iteration timeline. One track per runtime
// node; parent/child span ids ride in args so the worker→server→replica
// chain can be followed (and asserted by the CI smoke) hop by hop.
void append_span(std::ostringstream& os, bool& first, const obs::SpanRecord& s) {
  if (!first) os << ",\n";
  first = false;
  const double ts_us = static_cast<double>(s.start_ns) / 1e3;
  if (s.end_ns == s.start_ns) {
    os << R"(  {"name": ")" << s.name << R"(", "cat": "span", "ph": "i", "s": "t", "pid": 1, )"
       << R"("tid": )" << s.node << R"(, "ts": )" << ts_us << R"(, "args": {"trace": )"
       << s.trace_id << R"(, "span": )" << s.span_id << R"(, "parent": )" << s.parent_id
       << "}}";
    return;
  }
  const double dur_us = static_cast<double>(s.end_ns - s.start_ns) / 1e3;
  os << R"(  {"name": ")" << s.name << R"(", "cat": "span", "ph": "X", "pid": 1, "tid": )"
     << s.node << R"(, "ts": )" << ts_us << R"(, "dur": )" << dur_us
     << R"(, "args": {"trace": )" << s.trace_id << R"(, "span": )" << s.span_id
     << R"(, "parent": )" << s.parent_id << "}}";
}

void append_span_metadata(std::ostringstream& os, bool& first,
                          const std::vector<obs::SpanRecord>& spans) {
  if (spans.empty()) return;
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name": "process_name", "ph": "M", "pid": 1, )"
     << R"("args": {"name": "telemetry spans"}})";
  std::vector<std::uint32_t> nodes;
  for (const auto& s : spans) nodes.push_back(s.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const std::uint32_t n : nodes) {
    os << ",\n"
       << R"(  {"name": "thread_name", "ph": "M", "pid": 1, "tid": )" << n
       << R"(, "args": {"name": "node )" << n << R"("}})";
  }
}

}  // namespace

std::string to_chrome_trace_json(const std::vector<IterationTrace>& trace,
                                 const std::vector<FaultEvent>& fault_events,
                                 const std::vector<obs::SpanRecord>& spans) {
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& t : trace) {
    append_event(os, first, "compute", t.worker, t.compute_start, t.compute_end, t.iter);
    append_event(os, first, "sync", t.worker, t.compute_end, t.sync_end, t.iter);
  }
  for (const auto& e : fault_events) append_instant(os, first, e);
  append_span_metadata(os, first, spans);
  for (const auto& s : spans) append_span(os, first, s);
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

bool write_chrome_trace(const std::string& path, const std::vector<IterationTrace>& trace,
                        const std::vector<FaultEvent>& fault_events,
                        const std::vector<obs::SpanRecord>& spans) {
  std::ofstream f(path);
  if (!f) return false;
  f << to_chrome_trace_json(trace, fault_events, spans);
  return static_cast<bool>(f);
}

}  // namespace fluentps::core
