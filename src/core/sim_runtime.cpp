#include "core/sim_runtime.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>

#include "baselines/ssptable_cache.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "core/checkpoint.h"
#include "elastic/membership.h"
#include "elastic/planner.h"
#include "embed/embedding_table.h"
#include "embed/routing.h"
#include "embed/sparse_host.h"
#include "embed/sparse_replica.h"
#include "embed/workload.h"
#include "fault/faulty_transport.h"
#include "ml/eval.h"
#include "ml/ops.h"
#include "net/sim_transport.h"
#include "obs/snapshot.h"
#include "ps/read_options.h"
#include "ps/scheduler.h"
#include "ps/server.h"
#include "ps/slicing.h"
#include "replica/replica_group.h"
#include "replica/replica_node.h"
#include "sim/sim_env.h"

namespace fluentps::core {
namespace {

/// Node id layout: scheduler = 0, servers = 1..M, workers = M+1..M+N, and —
/// with replication — replicas of shard m at M+N+1 + m*(r-1) .. (appended so
/// existing ids are untouched; see replica::ChainLayout).
constexpr net::NodeId kSchedulerNode = 0;
net::NodeId server_node(std::uint32_t m) { return 1 + m; }
net::NodeId worker_node(std::uint32_t m_servers, std::uint32_t n) { return 1 + m_servers + n; }

/// Sparse traffic shares the server nodes with the dense shard; the node
/// handler routes by message type.
bool is_sparse_type(net::MsgType t) noexcept {
  switch (t) {
    case net::MsgType::kSparsePush:
    case net::MsgType::kSparsePull:
    case net::MsgType::kSparseReplicate:
    case net::MsgType::kSparseReplicateAck:
      return true;
    default:
      return false;
  }
}

/// 64-bit digests don't fit a double losslessly; export as two 32-bit halves.
void put_u64_extra(ExperimentResult& r, const std::string& key, std::uint64_t v) {
  r.extra[key + "_lo"] = static_cast<double>(v & 0xFFFFFFFFull);
  r.extra[key + "_hi"] = static_cast<double>(v >> 32);
}

/// Poll cadence for detecting the end of a crash-recovery handshake (the
/// completion is driven by message arrivals, so this only affects when the
/// "recovered" trace event is stamped, not the protocol itself).
constexpr double kRecoveryWatchSeconds = 0.05;

/// Poll cadence for the elastic fence's quiesce check (migration acks and
/// replication drains are message-driven; the poll just samples completion,
/// in virtual time, so runs stay bit-deterministic).
constexpr double kElasticWatchSeconds = 0.002;

class SimRun {
 public:
  explicit SimRun(const ExperimentConfig& cfg)
      : cfg_(cfg),
        env_(),
        chain_{cfg.num_servers, cfg.num_workers, std::max<std::uint32_t>(cfg.replication_factor, 1)},
        network_(cfg.net, chain_.total_nodes() +
                              (cfg.sparse.enabled() ? cfg.sparse.num_workers : 0) +
                              (cfg.read.fleet_enabled() ? cfg.read.fleet : 0)),
        transport_(env_, network_),
        data_(ml::Dataset::synthesize(cfg.data)),
        model_(ml::make_model(cfg.model, data_.dim(), data_.num_classes())),
        compute_(sim::make_compute_model(cfg.compute, cfg.num_workers, cfg.seed)) {
    FPS_CHECK(cfg.num_workers > 0 && cfg.num_servers > 0) << "empty cluster";
    FPS_CHECK(cfg.max_iters > 0) << "max_iters must be positive";
    FPS_CHECK(chain_.factor == 1 || cfg.arch == Arch::kFluentPS)
        << "chain replication requires the FluentPS architecture";
    reliable_ = cfg.reliability_enabled();
    // With a chain behind every shard, a head crash is handled by promotion —
    // periodic checkpoints would be dead weight unless explicitly requested.
    checkpointing_ = (!cfg.faults.crashes.empty() && !chain_.replicated()) ||
                     !cfg.checkpoint_dir.empty();
    if (chain_.replicated()) group_ = std::make_unique<replica::ReplicaGroup>(chain_);
    if (cfg.sparse.enabled()) {
      // Sparse tables are not checkpointed: a crashed shard's sparse state
      // can only survive through chain replication.
      FPS_CHECK(cfg.faults.crashes.empty() || chain_.replicated())
          << "crash schedules with a sparse job require replication_factor > 1";
    }
    server_epoch_.assign(cfg.num_servers, 0);
    crash_time_.assign(cfg.num_servers, 0.0);
    ckpt_store_.resize(cfg.num_servers);
    if (cfg.faults.any()) {
      fault::FaultPlan plan(cfg.faults, cfg.num_servers, cfg.num_workers);
      chaos_ = std::make_unique<fault::FaultyTransport>(
          transport_, std::move(plan), derive_seed(cfg.seed, cfg.faults.seed),
          /*clock=*/[this] { return env_.now(); },
          /*defer=*/
          [this](double delay, std::function<void()> fn) { env_.schedule(delay, std::move(fn)); },
          &metrics_);
      bus_ = chaos_.get();
    } else {
      bus_ = &transport_;
    }
    build_parameters();
    build_servers();
    build_replicas();
    build_scheduler();
    build_workers();
    build_sparse_workers();
    build_fleet();
  }

  ExperimentResult run() {
    if (checkpointing_) {
      take_checkpoints();  // t = 0: a crash before the first interval must
                           // still find something to restore
      schedule_next_checkpoint();
    }
    schedule_crashes();
    for (auto& w : workers_) schedule_compute(*w);
    for (auto& s : sparse_workers_) schedule_sparse_compute(*s);
    for (auto& c : fleet_) start_fleet_pull(*c);
    env_.run();
    return collect();
  }

 private:
  struct WorkerState {
    std::uint32_t rank = 0;
    net::NodeId node = 0;
    /// Where shard m currently lives — rebound by kPromote at failover.
    std::vector<net::NodeId> server_nodes;
    std::vector<float> params;
    std::vector<float> grad;
    std::vector<float> update;
    std::vector<float> pending;  ///< significance filter: locally aggregated update
    std::int64_t pushes_filtered = 0;
    std::unique_ptr<ml::Optimizer> opt;
    std::unique_ptr<ml::BatchSampler> sampler;
    ml::Workspace ws;
    baselines::SspTableCachePolicy cache{1};
    Rng rng{0};

    std::int64_t iter = 0;
    std::uint32_t pending_shards = 0;
    std::uint32_t pending_acks = 0;
    std::uint64_t ticket = 0;
    std::uint64_t next_ticket = 1;

    // --- reliability (at-least-once over a faulty fabric) ---------------
    // One outstanding push round at a time (mirrors ps::WorkerClient): a new
    // round starts only after the previous one is fully acked, so each
    // server's SeqWindow floor always catches up and memory stays bounded.
    std::int64_t round_progress = -1;
    bool round_metadata = false;
    std::vector<float> round_values;        ///< flat copy kept for retransmits
    std::vector<std::uint64_t> push_seqs;   ///< per server: live round's seq
    std::vector<char> push_acked;           ///< per server
    std::uint32_t push_unacked = 0;
    bool round_blocked = false;  ///< compute finished, waiting for old round's acks
    std::vector<std::uint64_t> next_seq;            ///< per server, starts at 1
    std::vector<std::int64_t> last_acked_progress;  ///< per server, -1 = none
    std::vector<char> pull_received;                ///< per server (dedup mask)
    bool report_outstanding = false;  ///< kProgress sent, grant not yet seen
    bool grant_seen = false;
    std::uint32_t attempt = 0;  ///< retry backoff ladder position (per round)
    bool retry_armed = false;   ///< one timeout event in flight per worker
    Rng retry_rng{0};
    std::int64_t retries = 0;

    double compute_seconds = 0.0;
    double comm_seconds = 0.0;
    double wait_started = 0.0;
    double compute_started = 0.0;
    double finish_time = 0.0;
    double last_loss = 0.0;
    bool done = false;
    bool parked = false;  ///< held at an elastic op's pre-declared boundary
  };

  void build_parameters() {
    if (!cfg_.initial_params.empty()) {
      FPS_CHECK(cfg_.initial_params.size() == model_->num_params())
          << "initial_params size " << cfg_.initial_params.size() << " != model "
          << model_->num_params();
      w0_ = cfg_.initial_params;
    } else {
      w0_.resize(model_->num_params());
      Rng init_rng(cfg_.seed, /*stream=*/0x1717);
      model_->init_params(w0_, init_rng);
    }
    const auto slicer = ps::make_slicer(cfg_.slicer, cfg_.eps_chunk);
    if (cfg_.elastic.enabled()) {
      elastic::validate_spec(cfg_.elastic, cfg_.arch == Arch::kFluentPS,
                             cfg_.faults.crashes.empty() && cfg_.checkpoint_dir.empty(),
                             cfg_.sparse.enabled(), cfg_.replication_factor, cfg_.max_iters,
                             cfg_.sparse.rounds);
      membership_ =
          std::make_unique<elastic::Membership>(cfg_.num_servers, cfg_.elastic.initial_servers);
      // Shard over the active set only; inactive slots start with empty
      // (ranked) shards so workers naturally skip them.
      const std::uint32_t n_active = membership_->view().num_active();
      sharding_ = n_active < cfg_.num_servers
                      ? elastic::expand_to_slots(
                            slicer->shard(model_->layer_sizes(), n_active), cfg_.num_servers)
                      : slicer->shard(model_->layer_sizes(), cfg_.num_servers);
      sparse_active_ = membership_->active();
    } else {
      sharding_ = slicer->shard(model_->layer_sizes(), cfg_.num_servers);
      sparse_active_.assign(cfg_.num_servers, 1);
    }
  }

  /// Shard m carries traffic iff its layout is non-empty — inactive elastic
  /// slots own no slices. Mirrors ps::WorkerClient's skip logic so the two
  /// backends issue identical seq streams through epoch changes.
  [[nodiscard]] bool shard_active(std::uint32_t m) const {
    return !sharding_.shards[m].slices.empty();
  }

  [[nodiscard]] std::uint32_t active_shards() const {
    std::uint32_t n = 0;
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) n += shard_active(m) ? 1 : 0;
    return n;
  }

  /// Server spec for shard m — shared between the initial heads and servers
  /// promoted from replicas at failover (which override node_id/successor).
  [[nodiscard]] ps::ServerSpec make_server_spec(std::uint32_t m) const {
    const bool baseline = cfg_.arch == Arch::kPsLite;
    ps::ServerSpec spec;
    spec.node_id = server_node(m);
    spec.server_rank = m;
    spec.num_workers = cfg_.num_workers;
    spec.layout = sharding_.shards[m];
    spec.initial_shard.resize(spec.layout.total);
    spec.layout.gather(w0_, spec.initial_shard);
    spec.engine.num_workers = cfg_.num_workers;
    spec.engine.mode = cfg_.dpr_mode;
    const ps::SyncModelSpec& sync_spec =
        cfg_.per_server_sync.empty() ? cfg_.sync : cfg_.per_server_sync[m];
    spec.engine.model = ps::make_sync_model(sync_spec, cfg_.num_workers);
    spec.engine.seed = derive_seed(cfg_.seed, 0x5E57E8 + m);
    spec.ack_pushes = baseline;
    spec.respond_unconditionally = baseline;
    spec.reliable = reliable_;
    spec.batch_pushes = cfg_.batch_pushes;
    spec.apply_stripes = cfg_.apply_stripes;
    spec.lockfree_handoff = cfg_.lockfree_handoff;
    spec.ring_depth = cfg_.ring_depth;
    // The sim backend is single-threaded by construction: a dedicated apply
    // pool would add real threads to a virtual-time run, so the handoff runs
    // in combiner-role mode there regardless of cfg_.apply_threads.
    spec.apply_threads = 0;
    spec.pin_threads = false;
    spec.replica_successor = chain_.replicated() ? chain_.successor_of(m, 0) : 0;
    if (reliable_) {
      for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
        spec.worker_nodes.push_back(worker_node(cfg_.num_servers, n));
      }
    }
    return spec;
  }

  /// Run one message through a server under the serial busy model, charging
  /// DPR machinery events (newly buffered pulls plus, for a push, the
  /// buffered pulls it released) beyond the flat per-message cost.
  void run_server_msg(ps::Server& srv, double& busy, net::Message&& msg) {
    const bool is_push = msg.type == net::MsgType::kPush;
    const std::int64_t dpr0 = srv.engine().dpr_total();
    const std::int64_t resp0 = srv.pulls_answered();
    srv.handle(std::move(msg));
    // A pull answered directly is plain request handling, already covered by
    // server_proc_seconds.
    std::int64_t dpr_events = srv.engine().dpr_total() - dpr0;
    if (is_push) dpr_events += srv.pulls_answered() - resp0;
    busy = std::max(busy, env_.now()) +
           static_cast<double>(dpr_events) * cfg_.dpr_overhead_seconds;
  }

  /// Sparse core spec for shard m — shared between heads, replicas and the
  /// hosts promoted at failover (identical cores keep digests bit-identical).
  [[nodiscard]] embed::SparseCoreSpec make_sparse_core_spec(std::uint32_t m) const {
    embed::SparseCoreSpec core;
    core.server_rank = m;
    core.num_workers = cfg_.sparse.num_workers;
    core.tables = cfg_.sparse.tables;
    core.seed = cfg_.seed;
    core.reduce = cfg_.sparse.reduce;
    core.stripes = cfg_.apply_stripes;
    return core;
  }

  [[nodiscard]] embed::SparseHostSpec make_sparse_host_spec(std::uint32_t m,
                                                            std::uint32_t chain_pos) {
    embed::SparseHostSpec spec;
    spec.node_id = chain_.node_of(m, chain_pos);
    spec.core = make_sparse_core_spec(m);
    spec.replica_successor = chain_.replicated() ? chain_.successor_of(m, chain_pos) : 0;
    spec.metrics = &metrics_;
    return spec;
  }

  void build_servers() {
    if (!cfg_.per_server_sync.empty()) {
      FPS_CHECK(cfg_.per_server_sync.size() == cfg_.num_servers)
          << "per_server_sync needs one entry per server";
      FPS_CHECK(cfg_.arch == Arch::kFluentPS)
          << "per-server sync models require the FluentPS architecture";
    }
    servers_.reserve(cfg_.num_servers);
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      auto server = std::make_unique<ps::Server>(make_server_spec(m), *bus_);
      ps::Server* raw = server.get();
      embed::SparseHost* hraw = nullptr;
      if (cfg_.sparse.enabled()) {
        auto host = std::make_unique<embed::SparseHost>(make_sparse_host_spec(m, 0), *bus_);
        hraw = host.get();
        head_sparse_.push_back(hraw);
        sparse_hosts_.push_back(std::move(host));
      }
      // Serial request processing: arrivals queue behind the server's single
      // handler; synchronization machinery (buffering/releasing DPRs) costs
      // extra, so high synchronization frequency translates into time.
      server_busy_until_.push_back(0.0);
      double* busy = &server_busy_until_.back();
      bus_->register_node(raw->node_id(), [this, raw, hraw, busy, m](net::Message&& msg) {
        const double start = std::max(env_.now(), *busy);
        *busy = start + cfg_.server_proc_seconds;
        // A message accepted into the processing queue before a crash dies
        // with the process: the deferred execution checks the node's epoch.
        const std::uint64_t epoch = server_epoch_[m];
        env_.schedule_at(start, [this, raw, hraw, busy, m, epoch,
                                 msg = std::move(msg)]() mutable {
          if (server_epoch_[m] != epoch) return;  // queued pre-crash; lost
          if (hraw != nullptr && is_sparse_type(msg.type)) {
            // Sparse handling shares the node's serial busy model but has no
            // DPR machinery to charge for.
            hraw->handle(std::move(msg));
          } else {
            run_server_msg(*raw, *busy, std::move(msg));
          }
        });
      });
      head_server_.push_back(raw);
      servers_.push_back(std::move(server));
    }
  }

  /// Chain slot: one non-head replica node, its serial busy model, and — after
  /// a promotion — the server that took its place on the same node id.
  struct ReplicaSlot {
    std::uint32_t m = 0;
    std::uint32_t pos = 0;
    net::NodeId node = 0;
    std::unique_ptr<replica::ReplicaNode> replica;
    std::unique_ptr<ps::Server> promoted;
    double busy = 0.0;
    std::uint64_t epoch = 0;  ///< bumped if this node itself crashes
    // Sparse twins on the same chain node (set iff cfg.sparse.enabled()).
    std::unique_ptr<embed::SparseReplica> sparse_replica;
    std::unique_ptr<embed::SparseHost> sparse_promoted;
  };

  void build_replicas() {
    if (!chain_.replicated()) return;
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      for (std::uint32_t pos = 1; pos < chain_.factor; ++pos) {
        replica::ReplicaSpec spec;
        spec.node_id = chain_.node_of(m, pos);
        spec.server_rank = m;
        spec.chain_pos = pos;
        spec.num_workers = cfg_.num_workers;
        spec.initial_shard.resize(sharding_.shards[m].total);
        sharding_.shards[m].gather(w0_, spec.initial_shard);
        spec.successor = chain_.successor_of(m, pos);
        spec.apply_scale = 1.0f / static_cast<float>(cfg_.num_workers);
        replicas_.push_back(ReplicaSlot{m, pos, spec.node_id,
                                        std::make_unique<replica::ReplicaNode>(std::move(spec), *bus_),
                                        nullptr});
        ReplicaSlot& slot = replicas_.back();  // deque: stable address
        if (cfg_.sparse.enabled()) {
          embed::SparseReplicaSpec sspec;
          sspec.node_id = slot.node;
          sspec.chain_pos = pos;
          sspec.core = make_sparse_core_spec(m);
          sspec.successor = chain_.successor_of(m, pos);
          slot.sparse_replica = std::make_unique<embed::SparseReplica>(std::move(sspec), *bus_);
        }
        bus_->register_node(slot.node, [this, &slot](net::Message&& msg) {
          const double start = std::max(env_.now(), slot.busy);
          slot.busy = start + cfg_.server_proc_seconds;
          const std::uint64_t epoch = slot.epoch;
          env_.schedule_at(start, [this, &slot, epoch, msg = std::move(msg)]() mutable {
            if (slot.epoch != epoch) return;  // queued pre-crash; lost
            if (is_sparse_type(msg.type)) {
              if (slot.sparse_promoted) {
                slot.sparse_promoted->handle(std::move(msg));
              } else if (slot.sparse_replica) {
                slot.sparse_replica->handle(std::move(msg));
              }
            } else if (slot.promoted) {
              run_server_msg(*slot.promoted, slot.busy, std::move(msg));
            } else {
              slot.replica->handle(std::move(msg));
            }
          });
        });
      }
    }
  }

  void build_scheduler() {
    if (cfg_.arch != Arch::kPsLite) return;
    ps::SchedulerSpec spec;
    spec.node_id = kSchedulerNode;
    spec.num_workers = cfg_.num_workers;
    for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
      spec.worker_nodes.push_back(worker_node(cfg_.num_servers, n));
    }
    spec.engine.num_workers = cfg_.num_workers;
    // The scheduler grants pulls as soon as the global condition holds —
    // soft-barrier semantics, matching PS-Lite's bounded-delay tracker.
    spec.engine.mode = ps::DprMode::kSoftBarrier;
    spec.engine.model = ps::make_sync_model(cfg_.sync, cfg_.num_workers);
    spec.engine.seed = derive_seed(cfg_.seed, 0x5C7ED);
    scheduler_ = std::make_unique<ps::Scheduler>(std::move(spec), *bus_);
    // The centralized scheduler processes one message at a time: arrivals
    // queue behind its serial handler (the PS-Lite bottleneck the paper's
    // overlap synchronization removes).
    bus_->register_node(kSchedulerNode, [this](net::Message&& msg) {
      const double start = std::max(env_.now(), scheduler_busy_until_);
      scheduler_busy_until_ = start + cfg_.pslite_scheduler_proc_seconds;
      env_.schedule_at(scheduler_busy_until_,
                       [this, m = std::move(msg)]() mutable { scheduler_->handle(std::move(m)); });
    });
  }

  void build_workers() {
    workers_.reserve(cfg_.num_workers);
    for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
      auto w = std::make_unique<WorkerState>();
      w->rank = n;
      w->node = worker_node(cfg_.num_servers, n);
      w->server_nodes.resize(cfg_.num_servers);
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) w->server_nodes[m] = server_node(m);
      w->params = w0_;
      w->grad.resize(model_->num_params());
      w->update.resize(model_->num_params());
      w->opt = ml::make_optimizer(cfg_.opt, *model_);
      w->sampler = std::make_unique<ml::BatchSampler>(data_, n, cfg_.num_workers,
                                                      cfg_.batch_size, cfg_.seed);
      w->cache = baselines::SspTableCachePolicy(cfg_.num_workers, cfg_.ssptable_divisor);
      w->rng = Rng(cfg_.seed, 0xF00D + n);
      // Cluster-unique tickets: servers key pending pulls by request id.
      w->next_ticket = (static_cast<std::uint64_t>(n) << 40) + 1;
      if (reliable_) {
        w->push_seqs.assign(cfg_.num_servers, 0);
        w->push_acked.assign(cfg_.num_servers, 1);
        w->next_seq.assign(cfg_.num_servers, 1);
        w->last_acked_progress.assign(cfg_.num_servers, -1);
        w->pull_received.assign(cfg_.num_servers, 0);
        // Same stream labels as ps::WorkerClient's jitter rng: the two
        // backends draw identical backoff ladders for the same seed.
        w->retry_rng = Rng(derive_seed(cfg_.seed, 0x9E7981 + n), /*stream=*/0x4E7);
      }
      WorkerState* raw = w.get();
      bus_->register_node(raw->node, [this, raw](net::Message&& msg) {
        on_worker_msg(*raw, std::move(msg));
      });
      workers_.push_back(std::move(w));
    }
  }

  // --- sparse embedding job: event-driven BSP workers --------------------
  // Mirrors embed::SparseWorkerClient exactly (same seq/ticket issue order,
  // same retry-rng stream labels, same digest fold order), so a sim run and a
  // thread run of the same config produce bit-identical sparse digests.

  struct SparsePush {
    std::uint32_t server = 0;
    std::uint64_t seq = 0;
    std::vector<float> frame;  ///< encoded kSparsePush payload, kept for resends
    bool acked = false;
  };
  struct SparsePull {
    std::uint64_t ticket = 0;
    std::uint32_t server = 0;
    net::NodeId dst = 0;       ///< current target: RR pick, re-aimed at the head
    std::vector<float> frame;  ///< encoded rows-only request
    embed::SparseBatch resp;
    bool received = false;
  };

  struct SparseWorkerState {
    std::uint32_t rank = 0;
    net::NodeId node = 0;
    std::vector<net::NodeId> server_nodes;  ///< rebound by kPromote
    /// Non-head chain members per shard (read.sparse offloading only).
    std::vector<std::vector<net::NodeId>> read_replicas;
    std::size_t read_rr = 0;  ///< round-robin cursor over {head} ∪ replicas
    std::int64_t replica_reads = 0;
    std::int64_t read_redirects = 0;
    std::int64_t round = 0;
    std::vector<SparsePush> pushes;
    std::vector<SparsePull> pulls;
    std::uint32_t unacked = 0;
    std::uint32_t unanswered = 0;
    std::vector<std::uint64_t> next_seq;  ///< per server, starts at 1
    std::uint64_t next_ticket = 0;
    std::uint64_t pull_digest = embed::kFnvBasis;
    std::uint32_t attempt = 0;
    bool retry_armed = false;
    Rng retry_rng{0};
    std::int64_t retries = 0;
    double finish_time = 0.0;
    bool done = false;
    bool parked = false;  ///< held at an elastic op's pre-declared round
  };

  void build_sparse_workers() {
    if (!cfg_.sparse.enabled()) return;
    sparse_workers_.reserve(cfg_.sparse.num_workers);
    for (std::uint32_t s = 0; s < cfg_.sparse.num_workers; ++s) {
      auto w = std::make_unique<SparseWorkerState>();
      w->rank = s;
      // Sparse workers live past the dense layout (scheduler, servers,
      // replicas, dense workers) — their rank space is their own.
      w->node = chain_.total_nodes() + s;
      w->server_nodes.resize(cfg_.num_servers);
      w->read_replicas.resize(cfg_.num_servers);
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        w->server_nodes[m] = server_node(m);
        if (cfg_.read.sparse && chain_.replicated()) {
          for (std::uint32_t pos = 1; pos < chain_.factor; ++pos) {
            w->read_replicas[m].push_back(chain_.node_of(m, pos));
          }
        }
      }
      w->next_seq.assign(cfg_.num_servers, 1);
      w->read_rr = s;  // stagger: in-phase cursors converge on one node
      w->next_ticket = (static_cast<std::uint64_t>(s) << 40) + 1;
      // Same stream labels as embed::SparseWorkerClient's jitter rng.
      w->retry_rng = Rng(derive_seed(cfg_.seed, 0x5B9E81 + s), /*stream=*/0x4E7);
      SparseWorkerState* raw = w.get();
      bus_->register_node(raw->node, [this, raw](net::Message&& msg) {
        on_sparse_worker_msg(*raw, std::move(msg));
      });
      sparse_workers_.push_back(std::move(w));
    }
  }

  void schedule_sparse_compute(SparseWorkerState& w) {
    env_.schedule(cfg_.sparse.compute_seconds, [this, &w] { on_sparse_compute_done(w); });
  }

  void on_sparse_compute_done(SparseWorkerState& w) {
    const auto num_servers = cfg_.num_servers;
    // Shard every table's batch once; pushes take the shards, pulls the rows.
    std::vector<std::vector<embed::SparseBatch>> shards(cfg_.sparse.tables.size());
    for (std::size_t t = 0; t < cfg_.sparse.tables.size(); ++t) {
      const embed::SparseBatch full =
          embed::sample_batch(cfg_.sparse, cfg_.sparse.tables[t], cfg_.seed, w.rank, w.round);
      shards[t].reserve(num_servers);
      for (std::uint32_t m = 0; m < num_servers; ++m) {
        // shard_of_active == shard_of when every slot is active, so the
        // non-elastic path is unchanged bit for bit.
        shards[t].push_back(embed::shard_of_active(full, m, sparse_active_));
      }
    }
    // Phase 1: push every active shard — empty ones included, they are the
    // round markers; inactive elastic slots get no marker and no seq (their
    // round clock is reseeded at the epoch fence when they rejoin). Seq issue
    // order (m outer, t inner) matches the thread client.
    w.pushes.clear();
    w.pulls.clear();
    w.attempt = 0;
    for (std::uint32_t m = 0; m < num_servers; ++m) {
      if (sparse_active_[m] == 0) continue;
      for (std::size_t t = 0; t < shards.size(); ++t) {
        SparsePush p;
        p.server = m;
        p.seq = w.next_seq[m]++;
        p.frame = embed::encode_sparse(shards[t][m]);
        w.pushes.push_back(std::move(p));
      }
    }
    // Phase 2's requests are prepared now (ticket issue order matches the
    // thread client) but sent only once every push is acked.
    for (std::uint32_t m = 0; m < num_servers; ++m) {
      for (std::size_t t = 0; t < shards.size(); ++t) {
        if (shards[t][m].rows.empty()) continue;
        SparsePull p;
        p.ticket = w.next_ticket++;
        p.server = m;
        p.dst = w.server_nodes[m];
        if (cfg_.read.sparse && !w.read_replicas[m].empty()) {
          const std::size_t n = w.read_replicas[m].size() + 1;
          const std::size_t pick = w.read_rr++ % n;
          if (pick > 0) p.dst = w.read_replicas[m][pick - 1];
        }
        embed::SparseBatch req;
        req.table_id = shards[t][m].table_id;
        req.dim = shards[t][m].dim;
        req.rows = shards[t][m].rows;
        p.frame = embed::encode_sparse(req);
        w.pulls.push_back(std::move(p));
      }
    }
    w.unacked = static_cast<std::uint32_t>(w.pushes.size());
    w.unanswered = 0;
    for (const SparsePush& p : w.pushes) send_sparse_push(w, p);
    arm_sparse_retry(w);
  }

  void send_sparse_push(SparseWorkerState& w, const SparsePush& p) {
    net::Message msg;
    msg.type = net::MsgType::kSparsePush;
    msg.src = w.node;
    msg.dst = w.server_nodes[p.server];
    msg.request_id = p.seq;
    msg.seq = p.seq;
    msg.progress = w.round;
    msg.worker_rank = w.rank;
    msg.server_rank = p.server;
    msg.values.assign(p.frame.begin(), p.frame.end());
    bus_->send(std::move(msg));
  }

  void send_sparse_pull(SparseWorkerState& w, const SparsePull& p) {
    net::Message msg;
    msg.type = net::MsgType::kSparsePull;
    msg.src = w.node;
    msg.dst = p.dst;
    msg.request_id = p.ticket;
    // Strong pulls ride seq 0 (the ticket dedups them). With read.sparse the
    // pull is a bound-0 bounded read — the BSP round clock makes a replica's
    // answer bit-identical to the head's, so the digest oracle still holds.
    msg.seq = cfg_.read.sparse ? ps::encode_read_bound(ps::ReadOptions{
                                     .clock = w.round,
                                     .max_staleness_clocks = 0,
                                     .consistency = ps::Consistency::kBounded})
                               : 0;
    msg.progress = w.round;
    msg.worker_rank = w.rank;
    msg.server_rank = p.server;
    msg.values.assign(p.frame.begin(), p.frame.end());
    bus_->send(std::move(msg));
  }

  [[nodiscard]] static bool sparse_outstanding(const SparseWorkerState& w) {
    return w.unacked > 0 || w.unanswered > 0;
  }

  void arm_sparse_retry(SparseWorkerState& w) {
    if (w.retry_armed) return;
    w.retry_armed = true;
    const double timeout = cfg_.retry.timeout_for(w.attempt, w.retry_rng);
    env_.schedule(timeout, [this, &w] {
      w.retry_armed = false;
      if (!sparse_outstanding(w)) return;  // phase completed while armed
      ++w.retries;
      if (!cfg_.retry.exhausted(w.attempt)) ++w.attempt;
      if (w.unacked > 0) {
        for (const SparsePush& p : w.pushes) {
          if (!p.acked) send_sparse_push(w, p);
        }
      } else {
        // Timed-out bounded pulls re-aim at the head: the chosen replica may
        // be dead, and the head always serves.
        for (SparsePull& p : w.pulls) {
          if (!p.received) {
            p.dst = w.server_nodes[p.server];
            send_sparse_pull(w, p);
          }
        }
      }
      arm_sparse_retry(w);
    });
  }

  void on_sparse_worker_msg(SparseWorkerState& w, net::Message&& msg) {
    switch (msg.type) {
      case net::MsgType::kPushAck: {
        const std::uint32_t m = msg.server_rank;
        for (SparsePush& p : w.pushes) {
          if (p.server == m && p.seq == msg.seq && !p.acked) {
            p.acked = true;
            FPS_CHECK(w.unacked > 0) << "unexpected sparse push ack";
            if (--w.unacked == 0) start_sparse_pull_phase(w);
            return;
          }
        }
        return;  // duplicate ack (retransmit raced the original)
      }
      case net::MsgType::kSparsePullResp: {
        for (SparsePull& p : w.pulls) {
          if (p.ticket == msg.request_id && !p.received) {
            FPS_CHECK(embed::decode_sparse(msg.values.span(), &p.resp))
                << "sparse worker " << w.rank << ": malformed pull response";
            if (msg.seq == ps::kReplicaServedSeq) ++w.replica_reads;
            p.received = true;
            FPS_CHECK(w.unanswered > 0) << "unexpected sparse pull response";
            if (--w.unanswered == 0) finish_sparse_round(w);
            return;
          }
        }
        return;  // stale or duplicate response
      }
      case net::MsgType::kPullRedirect: {
        // The chosen replica's round clock could not cover the bound: retry
        // the same ticket at the shard's head, which always serves.
        for (SparsePull& p : w.pulls) {
          if (p.ticket == msg.request_id && !p.received) {
            ++w.read_redirects;
            p.dst = w.server_nodes[p.server];
            send_sparse_pull(w, p);
            return;
          }
        }
        return;  // stale redirect
      }
      case net::MsgType::kPromote: {
        const std::uint32_t m = msg.server_rank;
        FPS_CHECK(m < w.server_nodes.size()) << "bad server rank in sparse promote";
        if (w.server_nodes[m] == msg.src) return;  // duplicate promote
        w.server_nodes[m] = msg.src;
        // The promoted node left the read set; outstanding pulls re-aim at
        // the new head.
        auto& replicas = w.read_replicas[m];
        replicas.erase(std::remove(replicas.begin(), replicas.end(), msg.src), replicas.end());
        // Re-offer what the dead head may have swallowed.
        if (w.unacked > 0) {
          for (const SparsePush& p : w.pushes) {
            if (p.server == m && !p.acked) send_sparse_push(w, p);
          }
        }
        if (w.unanswered > 0) {
          for (SparsePull& p : w.pulls) {
            if (p.server == m && !p.received) {
              p.dst = msg.src;
              send_sparse_pull(w, p);
            }
          }
        }
        return;
      }
      default:
        FPS_LOG(Warn) << "sparse sim worker " << w.rank << " ignoring "
                      << msg.to_debug_string();
    }
  }

  void start_sparse_pull_phase(SparseWorkerState& w) {
    w.attempt = 0;
    if (w.pulls.empty()) {  // every shard routed empty this round
      finish_sparse_round(w);
      return;
    }
    w.unanswered = static_cast<std::uint32_t>(w.pulls.size());
    for (const SparsePull& p : w.pulls) send_sparse_pull(w, p);
    arm_sparse_retry(w);
  }

  void finish_sparse_round(SparseWorkerState& w) {
    // Fold in ticket-issue order — same as the thread client.
    for (const SparsePull& p : w.pulls) {
      w.pull_digest = embed::fold_pull_digest(w.pull_digest, p.resp);
    }
    w.pushes.clear();
    w.pulls.clear();
    ++w.round;
    if (parks_sparse(w.round)) {
      // BSP round complete (all pushes acked, all pulls answered): the
      // sparse side of the elastic fence is quiescent by construction.
      w.parked = true;
      maybe_commit_elastic();
      return;
    }
    if (w.round < cfg_.sparse.rounds) {
      schedule_sparse_compute(w);
    } else {
      w.done = true;
      w.finish_time = env_.now();
    }
  }

  // --- inference fleet: pull-only clients on the bounded-read path --------
  // The read-mostly scenario from DESIGN.md §13: cfg.read.fleet clients share
  // the cluster with the training job, each issuing cfg.read.pulls whole-model
  // bounded pulls in a closed loop. Every pull round-robins across
  // {head} ∪ replicas per shard; a replica that cannot cover the bound
  // answers kPullRedirect and the shard retries at the head. A client's clock
  // is the highest horizon any response has echoed, so the staleness oracle
  // (`progress + bound >= clock` on every replica-served response) tightens
  // as training advances.

  struct FleetState {
    std::uint32_t idx = 0;
    std::uint32_t rank = 0;  ///< num_workers + idx: unique across read windows
    net::NodeId node = 0;
    std::vector<net::NodeId> server_nodes;  ///< rebound by kPromote
    std::vector<std::vector<net::NodeId>> read_replicas;  ///< per shard
    std::vector<net::NodeId> dst;  ///< current target per shard
    std::vector<char> received;    ///< per shard (dedup mask)
    std::uint32_t pending = 0;
    std::uint64_t ticket = 0;
    std::uint64_t next_ticket = 1;
    std::size_t rr = 0;  ///< round-robin cursor over {head} ∪ replicas
    std::int64_t clock = 0;  ///< highest horizon observed so far
    std::int64_t completed = 0;
    std::int64_t replica_reads = 0;
    std::int64_t head_reads = 0;
    std::int64_t redirects = 0;
    std::int64_t violations = 0;
    std::uint32_t attempt = 0;
    bool retry_armed = false;
    Rng retry_rng{0};
    std::int64_t retries = 0;
    double start_time = 0.0;
    double finish_time = 0.0;
    bool done = false;
  };

  void build_fleet() {
    if (!cfg_.read.fleet_enabled()) return;
    const std::uint32_t sparse_n = cfg_.sparse.enabled() ? cfg_.sparse.num_workers : 0;
    fleet_.reserve(cfg_.read.fleet);
    for (std::uint32_t i = 0; i < cfg_.read.fleet; ++i) {
      auto c = std::make_unique<FleetState>();
      c->idx = i;
      c->rank = cfg_.num_workers + i;
      // Fleet nodes live past every other rank space (dense layout, then
      // sparse workers).
      c->node = chain_.total_nodes() + sparse_n + i;
      c->server_nodes.resize(cfg_.num_servers);
      c->read_replicas.resize(cfg_.num_servers);
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        c->server_nodes[m] = server_node(m);
        if (chain_.replicated() && cfg_.read.prefer_replica) {
          for (std::uint32_t pos = 1; pos < chain_.factor; ++pos) {
            c->read_replicas[m].push_back(chain_.node_of(m, pos));
          }
        }
      }
      c->dst.assign(cfg_.num_servers, 0);
      c->received.assign(cfg_.num_servers, 0);
      c->next_ticket = (static_cast<std::uint64_t>(c->rank) << 40) + 1;
      c->rr = i;  // stagger so clients don't hit the same chain node in lockstep
      c->retry_rng = Rng(derive_seed(cfg_.seed, 0xF1EE7 + i), /*stream=*/0x4E7);
      FleetState* raw = c.get();
      bus_->register_node(raw->node, [this, raw](net::Message&& msg) {
        on_fleet_msg(*raw, std::move(msg));
      });
      fleet_.push_back(std::move(c));
    }
  }

  void start_fleet_pull(FleetState& c) {
    if (c.completed == 0) c.start_time = env_.now();
    c.ticket = c.next_ticket++;
    c.attempt = 0;
    std::fill(c.received.begin(), c.received.end(), 0);
    c.pending = cfg_.num_servers;
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      c.dst[m] = c.server_nodes[m];
      const auto& replicas = c.read_replicas[m];
      if (!replicas.empty()) {
        const std::size_t pick = c.rr++ % (replicas.size() + 1);
        if (pick > 0) c.dst[m] = replicas[pick - 1];
      }
      send_fleet_pull(c, m);
    }
    arm_fleet_retry(c);
  }

  void send_fleet_pull(FleetState& c, std::uint32_t m) {
    net::Message msg;
    msg.type = net::MsgType::kPull;
    msg.src = c.node;
    msg.dst = c.dst[m];
    msg.request_id = c.ticket;
    msg.seq = ps::encode_read_bound(
        ps::ReadOptions{.clock = c.clock,
                        .max_staleness_clocks = cfg_.read.max_staleness_clocks,
                        .consistency = ps::Consistency::kBounded});
    msg.progress = c.clock;
    msg.worker_rank = c.rank;
    msg.server_rank = m;
    bus_->send(std::move(msg));
  }

  void on_fleet_msg(FleetState& c, net::Message&& msg) {
    switch (msg.type) {
      case net::MsgType::kPullResp: {
        if (msg.request_id != c.ticket) return;  // response to a superseded pull
        const std::uint32_t m = msg.server_rank;
        FPS_CHECK(m < c.received.size()) << "bad server rank in fleet pull response";
        if (c.received[m]) return;  // duplicate (retransmit raced the original)
        c.received[m] = 1;
        if (msg.seq == ps::kReplicaServedSeq) {
          ++c.replica_reads;
          // The staleness oracle: a replica may only answer when its horizon
          // covers the requested bound.
          if (msg.progress + cfg_.read.max_staleness_clocks < c.clock) ++c.violations;
        } else {
          ++c.head_reads;
        }
        ++reads_by_node_[msg.src];
        c.clock = std::max(c.clock, msg.progress);
        FPS_CHECK(c.pending > 0) << "unexpected fleet pull response";
        if (--c.pending == 0) finish_fleet_pull(c);
        return;
      }
      case net::MsgType::kPullRedirect: {
        if (msg.request_id != c.ticket) return;  // stale redirect
        const std::uint32_t m = msg.server_rank;
        if (m >= c.received.size() || c.received[m]) return;
        ++c.redirects;
        c.dst[m] = c.server_nodes[m];
        send_fleet_pull(c, m);
        return;
      }
      case net::MsgType::kPromote: {
        const std::uint32_t m = msg.server_rank;
        FPS_CHECK(m < c.server_nodes.size()) << "bad server rank in fleet promote";
        if (c.server_nodes[m] == msg.src) return;  // duplicate promote
        c.server_nodes[m] = msg.src;
        auto& replicas = c.read_replicas[m];
        replicas.erase(std::remove(replicas.begin(), replicas.end(), msg.src),
                       replicas.end());
        if (c.pending > 0 && !c.received[m]) {
          c.dst[m] = msg.src;
          send_fleet_pull(c, m);
        }
        return;
      }
      default:
        FPS_LOG(Warn) << "fleet client " << c.idx << " ignoring " << msg.to_debug_string();
    }
  }

  void finish_fleet_pull(FleetState& c) {
    ++c.completed;
    if (c.completed >= cfg_.read.pulls) {
      c.done = true;
      c.finish_time = env_.now();
      return;
    }
    if (cfg_.read.think_seconds > 0.0) {
      env_.schedule(cfg_.read.think_seconds, [this, &c] { start_fleet_pull(c); });
    } else {
      start_fleet_pull(c);
    }
  }

  void arm_fleet_retry(FleetState& c) {
    // Loss only exists under a fault plan; a clean fabric needs no timers.
    if (chaos_ == nullptr || c.retry_armed) return;
    c.retry_armed = true;
    const double timeout = cfg_.retry.timeout_for(c.attempt, c.retry_rng);
    env_.schedule(timeout, [this, &c] {
      c.retry_armed = false;
      if (c.pending == 0) return;  // pull completed while the timer was armed
      ++c.retries;
      if (!cfg_.retry.exhausted(c.attempt)) ++c.attempt;
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        if (!c.received[m]) {
          // The chosen replica may be dead; the head always serves.
          c.dst[m] = c.server_nodes[m];
          send_fleet_pull(c, m);
        }
      }
      arm_fleet_retry(c);
    });
  }

  void schedule_compute(WorkerState& w) {
    const double dt = compute_->sample(w.rank, w.iter, w.rng);
    w.compute_seconds += dt;
    w.compute_started = env_.now();
    env_.schedule(dt, [this, &w] { on_compute_done(w); });
  }

  void on_compute_done(WorkerState& w) {
    // Real gradient math happens here, at the event's virtual timestamp, so
    // the parameter values a worker trains on reflect exactly the responses
    // it had received by now.
    const ml::Batch batch = w.sampler->next();
    w.last_loss = model_->grad(w.params, batch, w.grad, w.ws);
    w.opt->compute_update(w.params, w.grad, w.iter, w.update);
    w.wait_started = env_.now();

    if (reliable_ && w.push_unacked > 0) {
      // One outstanding push round at a time: the previous round still has
      // unacked shards (the retry timer keeps retransmitting them), so this
      // iteration's sync phase starts when the last ack lands. The stall is
      // charged to comm time via wait_started, exactly like the thread
      // backend's await_round_acked().
      w.round_blocked = true;
      return;
    }
    start_sync_phase(w);
  }

  void start_sync_phase(WorkerState& w) {
    w.attempt = 0;
    w.report_outstanding = false;
    w.grant_seen = false;
    if (cfg_.push_significance_threshold > 0.0) {
      // Gaia-style filter: aggregate locally; push only significant updates.
      if (w.pending.empty()) w.pending.assign(model_->num_params(), 0.0f);
      ml::axpy(1.0f, w.update, w.pending);
      const double wn = ml::l2_norm(w.params);
      const double sf = wn > 0.0 ? ml::l2_norm(w.pending) / wn : 1.0;
      const bool last_iter = w.iter + 1 >= cfg_.max_iters;
      if (sf >= cfg_.push_significance_threshold || last_iter) {
        send_pushes(w, w.pending, /*metadata_only=*/false);
        std::fill(w.pending.begin(), w.pending.end(), 0.0f);
      } else {
        ++w.pushes_filtered;
        send_pushes(w, w.pending, /*metadata_only=*/true);
      }
    } else {
      send_pushes(w, w.update, /*metadata_only=*/false);
    }
    if (cfg_.arch == Arch::kPsLite) {
      // Non-overlap protocol: wait for all push acks, then report progress
      // to the scheduler and wait for the pull grant.
      w.pending_acks = active_shards();
    } else {
      send_pulls(w);
    }
  }

  void send_pushes(WorkerState& w, std::span<const float> values, bool metadata_only) {
    if (reliable_) {
      w.round_progress = w.iter;
      w.round_metadata = metadata_only;
      w.round_values.assign(values.begin(), values.end());
      w.push_unacked = 0;
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        if (!shard_active(m)) {
          w.push_acked[m] = 1;  // no traffic and no seq for empty shards
          continue;
        }
        w.push_seqs[m] = w.next_seq[m]++;
        w.push_acked[m] = 0;
        ++w.push_unacked;
      }
    } else {
      w.round_progress = w.iter;
    }
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      if (shard_active(m)) send_push_one(w, m, metadata_only);
    }
    if (reliable_) arm_retry(w);
  }

  /// (Re)send the live round's push for server m, regathering from the
  /// retained flat copy so retransmits are bit-identical to the original.
  void send_push_one(WorkerState& w, std::uint32_t m, bool metadata_only) {
    const ps::ShardLayout& layout = sharding_.shards[m];
    net::Message msg;
    msg.type = net::MsgType::kPush;
    msg.src = w.node;
    msg.dst = w.server_nodes[m];
    msg.seq = reliable_ ? w.push_seqs[m] : 0;
    msg.progress = w.round_progress;
    msg.worker_rank = w.rank;
    msg.server_rank = m;
    if (!metadata_only) {
      const std::span<const float> flat =
          reliable_ ? std::span<const float>(w.round_values) : std::span<const float>(w.update);
      layout.gather(flat, msg.values.mutable_span_resized(layout.total));
    }
    bus_->send(std::move(msg));
  }

  void send_pulls(WorkerState& w) {
    w.ticket = w.next_ticket++;
    w.pending_shards = active_shards();
    if (reliable_) {
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        w.pull_received[m] = shard_active(m) ? 0 : 1;
      }
    }
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      if (shard_active(m)) send_pull_one(w, m);
    }
    if (reliable_) arm_retry(w);
  }

  void send_pull_one(WorkerState& w, std::uint32_t m) {
    net::Message msg;
    msg.type = net::MsgType::kPull;
    msg.src = w.node;
    msg.dst = w.server_nodes[m];
    msg.request_id = w.ticket;
    msg.progress = w.iter;
    msg.worker_rank = w.rank;
    msg.server_rank = m;
    bus_->send(std::move(msg));
  }

  void send_report(WorkerState& w) {
    net::Message report;
    report.type = net::MsgType::kProgress;
    report.src = w.node;
    report.dst = kSchedulerNode;
    report.progress = w.iter;
    report.worker_rank = w.rank;
    bus_->send(std::move(report));
  }

  // --- reliability: timeout-driven retransmission -----------------------

  [[nodiscard]] bool outstanding(const WorkerState& w) const {
    return w.push_unacked > 0 || w.pending_shards > 0 ||
           (w.report_outstanding && !w.grant_seen);
  }

  void arm_retry(WorkerState& w) {
    if (!reliable_ || w.retry_armed) return;
    w.retry_armed = true;
    const double timeout = cfg_.retry.timeout_for(w.attempt, w.retry_rng);
    env_.schedule(timeout, [this, &w] {
      w.retry_armed = false;
      if (!outstanding(w)) return;  // round completed while the timer was armed
      ++w.retries;
      if (!cfg_.retry.exhausted(w.attempt)) ++w.attempt;
      resend_outstanding(w);
      arm_retry(w);
    });
  }

  void resend_outstanding(WorkerState& w) {
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      if (w.push_unacked > 0 && !w.push_acked[m]) send_push_one(w, m, w.round_metadata);
    }
    if (w.pending_shards > 0) {
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        if (!w.pull_received[m]) send_pull_one(w, m);
      }
    }
    if (w.report_outstanding && !w.grant_seen) send_report(w);
  }

  void on_worker_msg(WorkerState& w, net::Message&& msg) {
    switch (msg.type) {
      case net::MsgType::kPullResp: {
        if (msg.request_id != w.ticket) return;  // response to a superseded pull
        const std::uint32_t m = msg.server_rank;
        if (reliable_) {
          FPS_CHECK(m < w.pull_received.size()) << "bad server rank in pull response";
          if (w.pull_received[m]) return;  // duplicate (retransmit raced the original)
          w.pull_received[m] = 1;
        }
        const bool apply = cfg_.arch != Arch::kSspTable || w.cache.apply_fresh(w.iter);
        if (apply) {
          sharding_.shards[m].scatter(msg.values, w.params);
        }
        FPS_CHECK(w.pending_shards > 0) << "unexpected pull response";
        if (--w.pending_shards == 0) finish_iteration(w);
        break;
      }
      case net::MsgType::kPushAck: {
        if (reliable_) {
          const std::uint32_t m = msg.server_rank;
          FPS_CHECK(m < w.push_acked.size()) << "bad server rank in push ack";
          // Only the live round's sequence counts; acks from superseded
          // retransmits of earlier rounds are stale and ignored.
          if (w.push_unacked == 0 || w.push_acked[m] || msg.seq != w.push_seqs[m]) return;
          w.push_acked[m] = 1;
          w.last_acked_progress[m] = std::max(w.last_acked_progress[m], msg.progress);
          if (--w.push_unacked == 0) {
            if (w.round_blocked) {
              // The next iteration's gradient was already computed; start its
              // sync phase now that the old round is fully acked.
              w.round_blocked = false;
              start_sync_phase(w);
            } else if (cfg_.arch == Arch::kPsLite && !w.done && w.pending_shards == 0 &&
                       !w.grant_seen) {
              w.report_outstanding = true;
              send_report(w);
              arm_retry(w);
            } else if (w.parked) {
              // Last ack of the round the worker parked behind: the elastic
              // fence may now hold.
              maybe_commit_elastic();
            }
          }
          break;
        }
        FPS_CHECK(w.pending_acks > 0) << "unexpected push ack";
        if (--w.pending_acks == 0) send_report(w);
        break;
      }
      case net::MsgType::kPullGrant:
        if (reliable_) {
          // The scheduler re-grants on duplicate reports; gate on the grant
          // matching the iteration we are actually waiting on.
          if (!w.report_outstanding || w.grant_seen || msg.progress != w.iter) return;
          w.grant_seen = true;
          w.report_outstanding = false;
        }
        send_pulls(w);
        break;
      case net::MsgType::kRecover: {
        // A server restarted from a checkpoint and asks what it acked to us.
        net::Message ack;
        ack.type = net::MsgType::kRecoverAck;
        ack.src = w.node;
        ack.dst = msg.src;
        ack.worker_rank = w.rank;
        ack.server_rank = msg.server_rank;
        ack.progress = (reliable_ && msg.server_rank < w.last_acked_progress.size())
                           ? w.last_acked_progress[msg.server_rank]
                           : -1;
        bus_->send(std::move(ack));
        break;
      }
      case net::MsgType::kPromote: {
        // Chain failover: shard server_rank now lives at msg.src. Rebind and
        // immediately re-offer whatever is still outstanding toward that
        // shard — the crashed head may have swallowed the original push/pull,
        // and waiting out the retry timeout would just stall the round.
        const std::uint32_t m = msg.server_rank;
        FPS_CHECK(m < w.server_nodes.size()) << "bad server rank in promote";
        if (w.server_nodes[m] == msg.src) return;  // duplicate promote
        w.server_nodes[m] = msg.src;
        if (reliable_) {
          if (w.push_unacked > 0 && !w.push_acked[m]) {
            send_push_one(w, m, w.round_metadata);
          }
          if (w.pending_shards > 0 && !w.pull_received[m]) send_pull_one(w, m);
        }
        break;
      }
      default:
        FPS_LOG(Warn) << "sim worker " << w.rank << " ignoring " << msg.to_debug_string();
    }
  }

  void finish_iteration(WorkerState& w) {
    // SSPtable baseline: on non-refresh iterations the worker trains against
    // its frozen, outdated cache (the pull responses were discarded above) —
    // the behavioural consequence of Bösen's consistency-view maintenance
    // falling behind at scale (Fig 1/7). No local update is applied: the
    // invalidation that would patch the cache is exactly what lags.
    if (cfg_.push_significance_threshold > 0.0 && !w.pending.empty()) {
      // The worker's unsynchronized contribution stays applied to its local
      // replica (Gaia keeps local updates visible inside the group).
      ml::axpy(1.0f, w.pending, w.params);
    }
    w.comm_seconds += env_.now() - w.wait_started;
    if (w.iter < cfg_.trace_iters) {
      trace_.push_back(IterationTrace{w.rank, w.iter, w.compute_started, w.wait_started,
                                      env_.now()});
    }
    ++w.iter;
    if (w.rank == 0) {
      maybe_switch_sync(w.iter);
      maybe_eval(w);
      // Worker 0's progress is the elastic pre-copy trigger (checked before
      // the park below, so a lead of 0 still migrates before the fence).
      maybe_start_precopy(w.iter);
    }
    if (parks_dense(w.iter)) {
      // Pre-declared elastic park point: every dense worker pauses before
      // starting iteration at_iter (an arbitrary per-worker boundary would
      // deadlock the DPR conditions on a straggler). The fence additionally
      // waits for this worker's round acks via the kPushAck hook.
      w.parked = true;
      maybe_commit_elastic();
      return;
    }
    if (w.iter < cfg_.max_iters) {
      schedule_compute(w);
    } else {
      w.done = true;
      w.finish_time = env_.now();
      // The retry timer stays armed while the final round's pushes are
      // unacked: a done worker still owes its last update to every server.
    }
  }

  void maybe_switch_sync(std::int64_t iter) {
    while (next_switch_ < cfg_.sync_schedule.size() &&
           iter >= cfg_.sync_schedule[next_switch_].first) {
      const auto& spec = cfg_.sync_schedule[next_switch_].second;
      FPS_CHECK(cfg_.arch == Arch::kFluentPS)
          << "runtime sync switching requires per-server conditions (FluentPS arch)";
      for (auto& server : servers_) {
        // Each server gets its own compiled model (conditions may be stateful,
        // e.g. DSPS) — exactly the paper's per-shard adaptivity.
        auto model = ps::make_sync_model(spec, cfg_.num_workers);
        server->set_pull_condition(std::move(model.pull));
        server->set_push_condition(std::move(model.push));
      }
      FPS_LOG(Info) << "switched sync model to " << spec.label() << " at iteration " << iter;
      ++next_switch_;
    }
  }

  void maybe_eval(const WorkerState& w) {
    if (cfg_.eval_every <= 0 || w.iter % cfg_.eval_every != 0) return;
    const auto params = global_params();
    AccuracyPoint pt;
    pt.time = env_.now();
    pt.iter = w.iter;
    pt.accuracy = ml::test_accuracy(*model_, params, data_, eval_ws_);
    pt.loss = ml::test_loss(*model_, params, data_, eval_ws_);
    curve_.push_back(pt);
  }

  // --- elastic membership (src/elastic, DESIGN.md §14) -------------------
  // Event-driven twin of the thread backend's controller. Ops execute in
  // schedule order: worker 0's iteration boundary triggers the live pre-copy
  // (lead_iters early), every client parks at the op's pre-declared boundary,
  // and once migrations and replication drain, the commit installs the new
  // view and reschedules the parked workers — all in virtual time, so runs
  // stay bit-deterministic per seed.

  /// Dense workers park before starting iteration `iter` when the next
  /// uncommitted op fences there. Ops commit globally in order, so the next
  /// op's boundary is the only one any worker can be at.
  [[nodiscard]] bool parks_dense(std::int64_t iter) const {
    return membership_ && completed_ops_ < cfg_.elastic.schedule.size() &&
           cfg_.elastic.schedule[completed_ops_].at_iter == iter;
  }

  [[nodiscard]] bool parks_sparse(std::int64_t round) const {
    return membership_ && completed_ops_ < cfg_.elastic.schedule.size() &&
           elastic::park_round_of(cfg_.elastic.schedule[completed_ops_], cfg_.max_iters,
                                  cfg_.sparse.rounds) == round;
  }

  /// Phase 1 — live pre-copy: snapshot every moving slice at its source and
  /// tap subsequently accepted pushes as catch-up deltas (kMigrateSnapshot /
  /// kMigrateDelta; control-plane frames, never faulted). Training continues.
  void maybe_start_precopy(std::int64_t w0_iter) {
    if (!membership_ || precopy_started_ ||
        completed_ops_ >= cfg_.elastic.schedule.size()) {
      return;
    }
    const elastic::ElasticOp& op = cfg_.elastic.schedule[completed_ops_];
    if (w0_iter < std::max<std::int64_t>(op.at_iter - cfg_.elastic.lead_iters, 0)) return;
    precopy_started_ = true;
    precopy_start_ = env_.now();
    plan_ = elastic::replan(sharding_, membership_->active_after(op));
    for (const auto& mv : plan_.moves) {
      const ps::ShardLayout& lay = sharding_.shards[mv.from_server];
      std::size_t idx = lay.slices.size();
      for (std::size_t j = 0; j < lay.slices.size(); ++j) {
        if (lay.slices[j].offset == mv.slice.offset) {
          idx = j;
          break;
        }
      }
      FPS_CHECK(idx < lay.slices.size())
          << "migration source slice not found (offset " << mv.slice.offset << ")";
      head_server_[mv.from_server]->migrate_out_begin(
          next_migration_id_++, idx, head_server_[mv.to_server]->node_id(), mv.to_server);
    }
    fault_events_.push_back(FaultEvent{env_.now(), "elastic_precopy", server_node(op.rank)});
  }

  /// Phases 2+3 — fence and quiesce: commit once every dense worker is parked
  /// with its round fully acked, every sparse worker is parked (their BSP
  /// round completion implies quiescence), every tapped delta is staged and
  /// acked by its target, and every chain entry is acked downstream. Called
  /// from every event that can flip one of those conditions; the watch timer
  /// covers the ack horizons, which have no runtime hook.
  void maybe_commit_elastic() {
    if (!membership_ || !precopy_started_ ||
        completed_ops_ >= cfg_.elastic.schedule.size()) {
      return;
    }
    for (const auto& w : workers_) {
      if (!w->parked || w->push_unacked > 0) return;
    }
    for (const auto& sw : sparse_workers_) {
      if (!sw->parked) return;
    }
    if (fence_start_ < 0.0) fence_start_ = env_.now();
    bool quiet = true;
    for (const auto& mv : plan_.moves) {
      if (!head_server_[mv.from_server]->migrations_drained()) quiet = false;
    }
    if (chain_.replicated()) {
      for (const ps::Server* s : head_server_) {
        if (s->replication_pending() != 0) quiet = false;
      }
    }
    if (!quiet) {
      if (!elastic_watch_armed_) {
        elastic_watch_armed_ = true;
        env_.schedule(kElasticWatchSeconds, [this] {
          elastic_watch_armed_ = false;
          maybe_commit_elastic();
        });
      }
      return;
    }
    commit_elastic_op();
  }

  /// Phase 4 — epoch-fenced commit: install the post-epoch layouts, seed the
  /// joining slot's engine and round clock, reseed changed chains, move
  /// sparse rows, publish the new sharding, then resume the parked workers
  /// into the new epoch. Runs inside one event, so no traffic interleaves.
  void commit_elastic_op() {
    const elastic::ElasticOp& op = cfg_.elastic.schedule[completed_ops_];
    std::vector<char> changed(cfg_.num_servers, 0);
    for (const auto& mv : plan_.moves) {
      changed[mv.from_server] = 1;
      changed[mv.to_server] = 1;
    }
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      const bool was_empty = sharding_.shards[m].slices.empty();
      if (changed[m]) head_server_[m]->commit_layout(plan_.sharding.shards[m]);
      if (changed[m] && was_empty && !plan_.sharding.shards[m].slices.empty()) {
        // The slot never saw a push while its shard was empty (joining slots,
        // but also small models where LPT left an active slot bare): seed its
        // engine with the progress every parked worker actually reached, or
        // BSP/SSP pull conditions would wait forever on pushes that predate
        // the epoch.
        head_server_[m]->seed_engine_progress(
            std::vector<std::int64_t>(cfg_.num_workers, op.at_iter - 1));
      }
    }
    if (chain_.replicated()) {
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        if (!changed[m]) continue;
        const replica::ReplicaState seed = head_server_[m]->export_replica_seed();
        for (std::uint32_t pos = 1; pos < chain_.factor; ++pos) {
          slot_of(m, pos).replica->adopt_seed(seed);
        }
      }
    }
    if (cfg_.sparse.enabled()) move_sparse_rows(op);
    elastic_stats_.migrations += static_cast<std::int64_t>(plan_.moves.size());
    metrics_.incr("elastic.migrations", static_cast<std::int64_t>(plan_.moves.size()));
    sharding_ = plan_.sharding;
    membership_->commit(op, std::move(plan_.sharding));
    elastic_stats_.epoch = membership_->epoch();
    metrics_.set_gauge_max("elastic.epoch", static_cast<double>(membership_->epoch()));
    elastic_stats_.rebind_stall_seconds += env_.now() - fence_start_;
    elastic_stats_.migrate_seconds += fence_start_ - precopy_start_;
    fault_events_.push_back(
        FaultEvent{env_.now(), op.add ? "elastic_add" : "elastic_drain", server_node(op.rank)});
    FPS_LOG(Info) << "elastic epoch " << membership_->epoch() << ": "
                  << (op.add ? "added" : "drained") << " server " << op.rank << " ("
                  << plan_.moves.size() << " slices moved) at t=" << env_.now();
    ++completed_ops_;
    precopy_started_ = false;
    fence_start_ = -1.0;
    // Back-to-back ops at the same boundary: start the next pre-copy before
    // deciding who stays parked.
    maybe_start_precopy(workers_[0]->iter);
    for (auto& w : workers_) {
      if (!w->parked) continue;
      if (parks_dense(w->iter)) continue;  // next op fences at this boundary too
      w->parked = false;
      if (w->iter < cfg_.max_iters) {
        schedule_compute(*w);
      } else {
        w->done = true;
        w->finish_time = env_.now();
      }
    }
    for (auto& sw : sparse_workers_) {
      if (!sw->parked) continue;
      if (parks_sparse(sw->round)) continue;
      sw->parked = false;
      if (sw->round < cfg_.sparse.rounds) {
        schedule_sparse_compute(*sw);
      } else {
        sw->done = true;
        sw->finish_time = env_.now();
      }
    }
    maybe_commit_elastic();  // everyone may already satisfy the next op's fence
  }

  /// Fence-time sparse rebalance: rows move verbatim (values + optimizer
  /// state) to their post-epoch route_active() owner, so the state digest is
  /// placement-invariant and the serial oracle holds across epochs. Every
  /// sparse worker is parked, so no host dispatch is touching the cores.
  void move_sparse_rows(const elastic::ElasticOp& op) {
    const std::vector<char> next = membership_->active_after(op);
    std::vector<std::vector<embed::SparseCore::MovedRow>> inbound(cfg_.num_servers);
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      if (!membership_->is_active(m)) continue;  // inactive slots hold no rows
      auto rows = head_sparse_[m]->core_for_fence().extract_moved_rows(next, m);
      for (auto& r : rows) {
        elastic_stats_.bytes_moved +=
            static_cast<std::int64_t>(r.data.size() * sizeof(float));
        const std::uint32_t owner = embed::route_active(r.table_id, r.row_id, next);
        inbound[owner].push_back(std::move(r));
        ++elastic_rows_;
      }
    }
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      if (!inbound[m].empty()) {
        head_sparse_[m]->core_for_fence().install_rows(std::move(inbound[m]));
      }
    }
    if (op.add) {
      // The joining host first sees pushes for the fence round: seed its
      // round clock so drainable() doesn't wait for rounds that predate it.
      const std::int64_t park =
          elastic::park_round_of(op, cfg_.max_iters, cfg_.sparse.rounds);
      head_sparse_[op.rank]->core_for_fence().seed_round_clock(park - 1);
    }
    sparse_active_ = next;
  }

  // --- crash-restart lifecycle ------------------------------------------

  [[nodiscard]] bool all_done() const {
    return std::all_of(workers_.begin(), workers_.end(),
                       [](const auto& w) { return w->done; });
  }

  void take_checkpoints() {
    if (!cfg_.checkpoint_dir.empty() && !ckpt_dir_ready_) {
      std::error_code ec;
      std::filesystem::create_directories(cfg_.checkpoint_dir, ec);
      ckpt_dir_ready_ = true;
    }
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      if (chaos_ && chaos_->is_down(server_node(m))) continue;  // crashed: nothing to save
      ckpt_store_[m] = servers_[m]->save_state();
      if (!cfg_.checkpoint_dir.empty()) {
        const std::string path =
            cfg_.checkpoint_dir + "/server_" + std::to_string(m) + ".ckpt";
        if (!save_blob(path, ckpt_store_[m])) {
          FPS_LOG(Warn) << "failed to write checkpoint blob " << path;
        }
      }
      metrics_.incr("server.checkpoints");
      fault_events_.push_back(FaultEvent{env_.now(), "checkpoint", server_node(m)});
    }
  }

  void schedule_next_checkpoint() {
    const double every = cfg_.faults.checkpoint_every;
    if (every <= 0.0) return;
    env_.schedule(every, [this] {
      if (all_done()) return;  // let the event queue drain (DES termination)
      take_checkpoints();
      schedule_next_checkpoint();
    });
  }

  void schedule_crashes() {
    for (const auto& c : cfg_.faults.crashes) {
      FPS_CHECK(c.server_rank < cfg_.num_servers)
          << "crash schedule names server " << c.server_rank << " of " << cfg_.num_servers;
      FPS_CHECK(chaos_ != nullptr) << "crash schedule without a fault plan";
      env_.schedule_at(c.crash_time, [this, m = c.server_rank] { do_crash(m); });
      // With replication the chain absorbs the crash: the successor is
      // promoted instead of the dead process restarting from a checkpoint.
      if (std::isfinite(c.restart_time) && !chain_.replicated()) {
        env_.schedule_at(c.restart_time, [this, m = c.server_rank] { do_restart(m); });
      }
    }
  }

  /// Crash shard m's *current* head (the chain's surviving prefix shrinks on
  /// repeated crashes, so a second crash of the same rank kills the node
  /// promoted by the first).
  void do_crash(std::uint32_t m) {
    const net::NodeId victim = group_ ? group_->head_node(m) : server_node(m);
    chaos_->set_down(victim, true);
    // Messages queued behind the victim's busy model die too.
    if (group_ && group_->head_pos(m) > 0) {
      ++slot_of(m, group_->head_pos(m)).epoch;
    } else {
      ++server_epoch_[m];
    }
    ++server_crashes_;
    crash_time_[m] = env_.now();
    metrics_.incr("server.crashes");
    fault_events_.push_back(FaultEvent{env_.now(), "crash", victim});
    FPS_LOG(Info) << "server " << m << " (node " << victim << ") crashed at t=" << env_.now();
    if (group_ != nullptr) {
      if (!group_->exhausted(m)) {
        // Failure detector + election latency, then the successor takes over.
        // The failover bracket (start here, end in do_promote) renders as
        // instant events on the Chrome trace timeline.
        fault_events_.push_back(FaultEvent{env_.now(), "failover_start", victim});
        env_.schedule(cfg_.failover_detect_seconds, [this, m] { do_promote(m); });
      } else {
        FPS_LOG(Warn) << "shard " << m << ": replication chain exhausted, no successor "
                      << "left to promote — shard stays down";
      }
    }
  }

  [[nodiscard]] ReplicaSlot& slot_of(std::uint32_t m, std::uint32_t pos) {
    for (ReplicaSlot& s : replicas_) {
      if (s.m == m && s.pos == pos) return s;
    }
    FPS_CHECK(false) << "no replica slot for shard " << m << " pos " << pos;
    return replicas_.front();
  }

  /// Promote shard m's next chain position: build a Server on the replica's
  /// node id, install the replicated state, replay its pending log downstream,
  /// and rebind every worker via kPromote.
  void do_promote(std::uint32_t m) {
    const std::uint32_t new_pos = group_->promote(m);
    ReplicaSlot& slot = slot_of(m, new_pos);
    ps::ServerSpec spec = make_server_spec(m);
    spec.node_id = slot.node;
    spec.replica_successor = chain_.successor_of(m, new_pos);
    auto srv = std::make_unique<ps::Server>(std::move(spec), *bus_);
    srv->adopt_replica_state(slot.replica->release_state());
    ps::Server* raw = srv.get();
    slot.promoted = std::move(srv);  // the slot's dispatcher now routes here
    head_server_[m] = raw;
    embed::SparseHost* sparse_raw = nullptr;
    if (slot.sparse_replica) {
      // Promote the sparse twin in the same step: both shards of the node
      // change heads together.
      auto host =
          std::make_unique<embed::SparseHost>(make_sparse_host_spec(m, new_pos), *bus_);
      host->adopt(slot.sparse_replica->release_state());
      sparse_raw = host.get();
      slot.sparse_promoted = std::move(host);
      head_sparse_[m] = sparse_raw;
    }
    ++failovers_;
    const double fo = env_.now() - crash_time_[m];
    failover_seconds_ = std::max(failover_seconds_, fo);
    metrics_.incr("replica.failovers");
    metrics_.set_gauge_max("replica.failover_seconds", fo);
    fault_events_.push_back(FaultEvent{env_.now(), "promoted", slot.node});
    FPS_LOG(Info) << "shard " << m << ": promoted chain pos " << new_pos << " (node "
                  << slot.node << ") at t=" << env_.now();
    // Restart the ack flow for entries stranded mid-chain by the crash.
    raw->replay_replication_log();
    if (sparse_raw != nullptr) sparse_raw->replay_replication_log();
    // View change: rebind the workers. Control-plane traffic — FaultyTransport
    // never faults kPromote (membership comes from a consensus service, not
    // the lossy data path).
    for (const auto& w : workers_) {
      net::Message p;
      p.type = net::MsgType::kPromote;
      p.src = slot.node;
      p.dst = w->node;
      p.server_rank = m;
      bus_->send(std::move(p));
    }
    for (const auto& sw : sparse_workers_) {
      net::Message p;
      p.type = net::MsgType::kPromote;
      p.src = slot.node;
      p.dst = sw->node;
      p.server_rank = m;
      bus_->send(std::move(p));
    }
    for (const auto& c : fleet_) {
      net::Message p;
      p.type = net::MsgType::kPromote;
      p.src = slot.node;
      p.dst = c->node;
      p.server_rank = m;
      bus_->send(std::move(p));
    }
    fault_events_.push_back(FaultEvent{env_.now(), "kPromote", slot.node});
    fault_events_.push_back(FaultEvent{env_.now(), "failover_end", slot.node});
    metrics_.incr("fault.failover_events");
  }

  void do_restart(std::uint32_t m) {
    FPS_CHECK(!ckpt_store_[m].empty()) << "server " << m << " restarting without a checkpoint";
    FPS_CHECK(servers_[m]->restore_state(ckpt_store_[m]))
        << "server " << m << " checkpoint blob failed to restore";
    server_busy_until_[m] = env_.now();  // fresh process: empty request queue
    chaos_->set_down(server_node(m), false);
    metrics_.incr("server.recoveries");
    fault_events_.push_back(FaultEvent{env_.now(), "restart", server_node(m)});
    FPS_LOG(Info) << "server " << m << " restarted from checkpoint at t=" << env_.now();
    servers_[m]->begin_recovery();
    watch_recovery(m);
  }

  /// Stamp a "recovered" event once the kRecover/kRecoverAck handshake
  /// completes (polling only affects the trace timestamp, not the protocol).
  void watch_recovery(std::uint32_t m) {
    env_.schedule(kRecoveryWatchSeconds, [this, m] {
      if (!servers_[m]->recovering()) {
        fault_events_.push_back(FaultEvent{env_.now(), "recovered", server_node(m)});
        return;
      }
      if (!all_done()) watch_recovery(m);
    });
  }

  [[nodiscard]] std::vector<float> global_params() const {
    std::vector<float> flat(model_->num_params(), 0.0f);
    for (const ps::Server* s : head_server_) s->snapshot_into(flat);
    return flat;
  }

  /// Every ps::Server alive in this run: the initial heads plus any servers
  /// promoted from replicas (their counters all contribute to totals).
  template <typename F>
  void for_each_server(F&& f) const {
    for (const auto& s : servers_) f(*s);
    for (const ReplicaSlot& slot : replicas_) {
      if (slot.promoted) f(*slot.promoted);
    }
  }

  /// Same sweep over sparse hosts (initial + promoted).
  template <typename F>
  void for_each_sparse_host(F&& f) const {
    for (const auto& h : sparse_hosts_) f(*h);
    for (const ReplicaSlot& slot : replicas_) {
      if (slot.sparse_promoted) f(*slot.sparse_promoted);
    }
  }

  ExperimentResult collect() {
    ExperimentResult r;
    double compute_sum = 0.0;
    double comm_sum = 0.0;
    for (const auto& w : workers_) {
      FPS_CHECK(w->done) << "worker " << w->rank << " did not finish (deadlock?) at iter "
                         << w->iter << "/" << cfg_.max_iters;
      r.total_time = std::max(r.total_time, w->finish_time);
      compute_sum += w->compute_seconds;
      comm_sum += w->comm_seconds;
    }
    const auto nw = static_cast<double>(cfg_.num_workers);
    r.compute_time = compute_sum / nw;
    r.comm_time = comm_sum / nw;
    // Engine-derived sync stats come from the shard's *current* head (a
    // promoted server's fresh engine replayed the replicated progress; the
    // crashed head's engine is stale history).
    for (const ps::Server* s : head_server_) {
      r.dpr_total += s->engine().dpr_total();
      r.staleness.merge(s->engine().staleness_served());
      r.release_delay.merge(s->engine().release_delay());
    }
    r.dprs_per_100_iters =
        static_cast<double>(r.dpr_total) * 100.0 / static_cast<double>(cfg_.max_iters);
    r.bytes_total = network_.total_bytes();
    r.messages = transport_.delivered();
    r.iterations = cfg_.max_iters;
    r.shard_imbalance = sharding_.imbalance();
    if (scheduler_) {
      r.extra["scheduler_dprs"] = static_cast<double>(scheduler_->engine().dpr_total());
      r.extra["scheduler_grants"] = static_cast<double>(scheduler_->grants_issued());
      r.extra["scheduler_dedup_hits"] = static_cast<double>(scheduler_->dedup_hits());
    }
    double max_ingress = 0.0;
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      max_ingress = std::max(max_ingress, network_.ingress_busy_seconds(server_node(m)));
    }
    r.extra["max_server_ingress_busy"] = max_ingress;
    r.extra["events"] = static_cast<double>(env_.events_executed());

    for (const auto& w : workers_) r.pushes_filtered += w->pushes_filtered;

    // --- fault & reliability outcomes -----------------------------------
    if (chaos_) {
      r.dropped = static_cast<std::int64_t>(chaos_->dropped() + chaos_->dropped_down());
      r.duplicated = static_cast<std::int64_t>(chaos_->duplicated());
      r.delayed = static_cast<std::int64_t>(chaos_->delayed());
    }
    for (const auto& w : workers_) r.worker_retries += w->retries;
    for_each_server([&r](const ps::Server& s) {
      r.server_dedup_hits += s.dedup_hits();
      r.server_recoveries += s.recoveries();
      r.replicated_updates += s.replica_forwards();
      r.rolled_back_updates += s.synth_replayed();
    });
    r.server_crashes = server_crashes_;
    // --- replication outcomes -------------------------------------------
    r.failovers = failovers_;
    r.failover_seconds = failover_seconds_;
    if (chain_.replicated()) {
      std::size_t log_hw = 0;
      for_each_server([&log_hw](const ps::Server& s) {
        log_hw = std::max(log_hw, s.replication_high_water());
      });
      std::int64_t applied = 0;
      std::int64_t repairs = 0;
      for (const ReplicaSlot& slot : replicas_) {
        applied += slot.replica->applied();
        repairs += slot.replica->reforwards();
      }
      for_each_server([&repairs](const ps::Server& s) { repairs += s.repl_repairs(); });
      if (r.replicated_updates > 0) metrics_.incr("replica.forwards", r.replicated_updates);
      metrics_.set_gauge_max("replica.log_high_water", static_cast<double>(log_hw));
      r.extra["replication_log_high_water"] = static_cast<double>(log_hw);
      r.extra["replica_applied"] = static_cast<double>(applied);
      r.extra["repl_repairs"] = static_cast<double>(repairs);
    }
    if (r.worker_retries > 0) metrics_.incr("worker.retries", r.worker_retries);
    if (r.server_dedup_hits > 0) metrics_.incr("server.dedup_hits", r.server_dedup_hits);
    // --- ingest-path stats (DESIGN.md §11) --------------------------------
    {
      std::int64_t ring_stalls = 0;
      std::size_t ring_depth_hw = 0;
      std::int64_t sweeps = 0;
      std::size_t max_batch = 0;
      std::uint32_t pinned = 0;
      for_each_server([&](const ps::Server& s) {
        ring_stalls += s.ring_stalls();
        ring_depth_hw = std::max(ring_depth_hw, s.ring_depth_high_water());
        sweeps += s.apply_sweeps();
        max_batch = std::max(max_batch, s.max_batch());
        pinned += s.pinned_threads();
      });
      for_each_sparse_host([&](const embed::SparseHost& h) {
        ring_stalls += static_cast<std::int64_t>(h.reducer_ring_stalls());
        ring_depth_hw = std::max(ring_depth_hw, h.reducer_ring_depth_high_water());
      });
      if (ring_stalls > 0) metrics_.incr("server.ring_stalls", ring_stalls);
      metrics_.set_gauge_max("server.ring_depth", static_cast<double>(ring_depth_hw));
      const std::uint64_t zc = transport_.recv_zero_copy_frames();
      if (zc > 0) metrics_.incr("net.recv_zero_copy_frames", static_cast<std::int64_t>(zc));
      r.extra["apply_sweeps"] = static_cast<double>(sweeps);
      r.extra["max_apply_batch"] = static_cast<double>(max_batch);
      r.extra["ring_stalls"] = static_cast<double>(ring_stalls);
      r.extra["ring_depth_high_water"] = static_cast<double>(ring_depth_hw);
      r.extra["recv_zero_copy_frames"] = static_cast<double>(zc);
      r.extra["pinned_threads"] = static_cast<double>(pinned);
    }
    // --- sparse embedding outcomes ---------------------------------------
    if (cfg_.sparse.enabled()) {
      std::uint64_t state_digest = 0;
      std::size_t parked = 0;
      for (const embed::SparseHost* h : head_sparse_) {
        state_digest += h->state_digest();
        parked += h->parked_pulls();
      }
      std::uint64_t pull_digest = 0;
      std::int64_t sparse_retries = 0;
      std::int64_t sparse_replica_reads = 0;
      std::int64_t sparse_redirects = 0;
      for (const auto& sw : sparse_workers_) {
        FPS_CHECK(sw->done) << "sparse worker " << sw->rank
                            << " did not finish (deadlock?) at round " << sw->round << "/"
                            << cfg_.sparse.rounds;
        r.total_time = std::max(r.total_time, sw->finish_time);
        pull_digest += sw->pull_digest;
        sparse_retries += sw->retries;
        sparse_replica_reads += sw->replica_reads;
        sparse_redirects += sw->read_redirects;
      }
      r.extra["sparse_replica_reads"] = static_cast<double>(sparse_replica_reads);
      r.extra["sparse_read_redirects"] = static_cast<double>(sparse_redirects);
      put_u64_extra(r, "sparse_state_digest", state_digest);
      put_u64_extra(r, "sparse_pull_digest", pull_digest);
      double dedup = 0, pushes = 0, rows = 0, pulls = 0, fwds = 0, repairs = 0;
      for_each_sparse_host([&](const embed::SparseHost& h) {
        dedup += static_cast<double>(h.dedup_hits());
        pushes += static_cast<double>(h.pushes_ingested());
        rows += static_cast<double>(h.rows_applied());
        pulls += static_cast<double>(h.pulls_answered());
        fwds += static_cast<double>(h.replica_forwards());
        repairs += static_cast<double>(h.repl_repairs());
      });
      r.extra["sparse_dedup_hits"] = dedup;
      r.extra["sparse_pushes"] = pushes;
      r.extra["sparse_rows_applied"] = rows;
      r.extra["sparse_pulls_answered"] = pulls;
      r.extra["sparse_replica_forwards"] = fwds;
      r.extra["sparse_repl_repairs"] = repairs;
      r.extra["sparse_retries"] = static_cast<double>(sparse_retries);
      r.extra["sparse_parked_pulls"] = static_cast<double>(parked);
    }
    // --- elastic membership outcomes (DESIGN.md §14) ----------------------
    if (membership_) {
      FPS_CHECK(completed_ops_ == cfg_.elastic.schedule.size())
          << "elastic: only " << completed_ops_ << "/" << cfg_.elastic.schedule.size()
          << " ops committed (fence deadlock?)";
      std::int64_t bytes = elastic_stats_.bytes_moved;  // sparse row moves
      std::int64_t deltas = 0;
      for_each_server([&](const ps::Server& s) {
        bytes += s.migrate_bytes();
        deltas += s.migrate_deltas();
      });
      r.elastic_migrations = elastic_stats_.migrations;
      r.elastic_bytes_moved = bytes;
      r.elastic_epoch = static_cast<std::int64_t>(membership_->epoch());
      r.elastic_stall_seconds = elastic_stats_.rebind_stall_seconds;
      r.elastic_migrate_seconds = elastic_stats_.migrate_seconds;
      if (bytes > 0) metrics_.incr("elastic.bytes_moved", bytes);
      metrics_.set_gauge_max("elastic.rebind_stall_seconds",
                             elastic_stats_.rebind_stall_seconds);
      r.extra["elastic_deltas"] = static_cast<double>(deltas);
      r.extra["elastic_rows_moved"] = static_cast<double>(elastic_rows_);
      r.extra["elastic_active_servers"] =
          static_cast<double>(membership_->view().num_active());
    }
    // --- read-path outcomes (DESIGN.md §13) -------------------------------
    for (const ReplicaSlot& slot : replicas_) {
      r.replica_reads_served += slot.replica->reads_served();
      r.replica_read_fallbacks += slot.replica->read_fallbacks();
      if (slot.sparse_replica) {
        r.replica_reads_served += slot.sparse_replica->reads_served();
        r.replica_read_fallbacks += slot.sparse_replica->read_fallbacks();
      }
    }
    for_each_server([&r](const ps::Server& s) { r.head_reads_served += s.bounded_reads(); });
    if (!fleet_.empty()) {
      double first = std::numeric_limits<double>::max();
      double last = 0.0;
      std::int64_t redirects = 0;
      for (const auto& c : fleet_) {
        FPS_CHECK(c->done) << "fleet client " << c->idx
                           << " did not finish (deadlock?) at pull " << c->completed << "/"
                           << cfg_.read.pulls;
        r.total_time = std::max(r.total_time, c->finish_time);
        r.fleet_pulls += c->completed;
        r.read_violations += c->violations;
        redirects += c->redirects;
        r.worker_retries += c->retries;
        first = std::min(first, c->start_time);
        last = std::max(last, c->finish_time);
      }
      r.fleet_pull_seconds = last - first;
      r.fleet_throughput = r.fleet_pull_seconds > 0.0
                               ? static_cast<double>(r.fleet_pulls) / r.fleet_pull_seconds
                               : 0.0;
      r.extra["fleet_redirects"] = static_cast<double>(redirects);
      // Per-node read share: how evenly the fleet's shard requests spread
      // over each shard's chain.
      std::int64_t total_reads = 0;
      for (const auto& [node, n] : reads_by_node_) total_reads += n;
      for (const auto& [node, n] : reads_by_node_) {
        r.extra["read_share_node_" + std::to_string(node)] =
            static_cast<double>(n) / static_cast<double>(std::max<std::int64_t>(total_reads, 1));
      }
    }
    if (r.replica_reads_served > 0) metrics_.incr("replica.reads_served", r.replica_reads_served);
    if (r.replica_read_fallbacks > 0) {
      metrics_.incr("replica.read_fallbacks", r.replica_read_fallbacks);
    }
    // --- telemetry (src/obs, DESIGN.md §12) -------------------------------
    // The sim backend runs in virtual time, so the wall-clock snapshotter and
    // span capture stay off; the cumulative Prometheus dump still renders
    // (the Metrics facade records through the same wait-free registry).
    if (cfg_.telemetry.enabled) {
      r.extra["telemetry_instrument_allocs"] =
          static_cast<double>(metrics_.registry().instrument_allocations());
      r.prometheus = obs::render_prometheus(
          metrics_.registry(), {{"arch", to_string(cfg_.arch)},
                                {"backend", to_string(cfg_.backend)},
                                {"sync", cfg_.sync.kind},
                                {"seed", std::to_string(cfg_.seed)}});
    }
    r.counters = metrics_.counters();
    r.fault_events = std::move(fault_events_);

    auto params = global_params();
    r.final_accuracy = ml::test_accuracy(*model_, params, data_, eval_ws_);
    r.final_loss = ml::test_loss(*model_, params, data_, eval_ws_);
    r.final_params = std::move(params);
    r.trace = std::move(trace_);
    r.curve = std::move(curve_);
    AccuracyPoint final_pt{r.total_time, cfg_.max_iters, r.final_accuracy, r.final_loss};
    r.curve.push_back(final_pt);
    return r;
  }

  const ExperimentConfig& cfg_;
  sim::SimEnv env_;
  replica::ChainLayout chain_;
  sim::NetworkModel network_;
  net::SimTransport transport_;
  Metrics metrics_;
  std::unique_ptr<fault::FaultyTransport> chaos_;  ///< set iff cfg.faults.any()
  net::Transport* bus_ = nullptr;  ///< the transport everyone actually talks to
  bool reliable_ = false;
  bool checkpointing_ = false;
  bool ckpt_dir_ready_ = false;
  ml::Dataset data_;
  std::unique_ptr<ml::Model> model_;
  std::unique_ptr<sim::ComputeModel> compute_;
  std::vector<float> w0_;
  ps::Sharding sharding_;
  std::vector<std::unique_ptr<ps::Server>> servers_;
  std::deque<double> server_busy_until_;  // deque: stable addresses for handlers
  std::vector<std::uint64_t> server_epoch_;  // bumped on crash: kills queued work
  std::vector<std::vector<std::uint8_t>> ckpt_store_;  // latest blob per server
  // --- chain replication (src/replica) ---------------------------------
  std::unique_ptr<replica::ReplicaGroup> group_;  ///< set iff replication_factor > 1
  std::deque<ReplicaSlot> replicas_;  // deque: stable addresses for handlers
  std::vector<ps::Server*> head_server_;  ///< current head of each shard's chain
  std::vector<double> crash_time_;        ///< per shard: latest head-crash time
  std::int64_t failovers_ = 0;
  double failover_seconds_ = 0.0;
  std::unique_ptr<ps::Scheduler> scheduler_;
  double scheduler_busy_until_ = 0.0;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  // --- sparse embedding job (src/embed) ---------------------------------
  std::vector<std::unique_ptr<embed::SparseHost>> sparse_hosts_;
  std::vector<embed::SparseHost*> head_sparse_;  ///< current head per shard
  std::vector<std::unique_ptr<SparseWorkerState>> sparse_workers_;
  // --- elastic membership (src/elastic, DESIGN.md §14) -------------------
  std::unique_ptr<elastic::Membership> membership_;  ///< set iff cfg.elastic.enabled()
  std::size_t completed_ops_ = 0;    ///< ops committed so far (schedule prefix)
  bool precopy_started_ = false;     ///< next op's migrations are in flight
  bool elastic_watch_armed_ = false;
  double precopy_start_ = 0.0;
  double fence_start_ = -1.0;        ///< <0 = fence not yet reached
  elastic::Plan plan_;               ///< live op's replan (moves + new sharding)
  std::uint64_t next_migration_id_ = 1;
  elastic::ElasticStats elastic_stats_;
  std::int64_t elastic_rows_ = 0;
  std::vector<char> sparse_active_;  ///< sparse routing mask (all-1 when static)
  // --- inference fleet (DESIGN.md §13) -----------------------------------
  std::vector<std::unique_ptr<FleetState>> fleet_;
  std::map<net::NodeId, std::int64_t> reads_by_node_;  ///< fleet read share
  std::vector<AccuracyPoint> curve_;
  std::vector<IterationTrace> trace_;
  std::vector<FaultEvent> fault_events_;
  std::int64_t server_crashes_ = 0;
  std::size_t next_switch_ = 0;
  ml::Workspace eval_ws_;
};

}  // namespace

ExperimentResult run_sim(const ExperimentConfig& config) {
  SimRun run(config);
  return run.run();
}

}  // namespace fluentps::core
