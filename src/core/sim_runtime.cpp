#include "core/sim_runtime.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "baselines/ssptable_cache.h"
#include "common/logging.h"
#include "ml/eval.h"
#include "ml/ops.h"
#include "net/sim_transport.h"
#include "ps/scheduler.h"
#include "ps/server.h"
#include "ps/slicing.h"
#include "sim/sim_env.h"

namespace fluentps::core {
namespace {

/// Node id layout: scheduler = 0, servers = 1..M, workers = M+1..M+N.
constexpr net::NodeId kSchedulerNode = 0;
net::NodeId server_node(std::uint32_t m) { return 1 + m; }
net::NodeId worker_node(std::uint32_t m_servers, std::uint32_t n) { return 1 + m_servers + n; }

class SimRun {
 public:
  explicit SimRun(const ExperimentConfig& cfg)
      : cfg_(cfg),
        env_(),
        network_(cfg.net, 1 + cfg.num_servers + cfg.num_workers),
        transport_(env_, network_),
        data_(ml::Dataset::synthesize(cfg.data)),
        model_(ml::make_model(cfg.model, data_.dim(), data_.num_classes())),
        compute_(sim::make_compute_model(cfg.compute, cfg.num_workers, cfg.seed)) {
    FPS_CHECK(cfg.num_workers > 0 && cfg.num_servers > 0) << "empty cluster";
    FPS_CHECK(cfg.max_iters > 0) << "max_iters must be positive";
    build_parameters();
    build_servers();
    build_scheduler();
    build_workers();
  }

  ExperimentResult run() {
    for (auto& w : workers_) schedule_compute(*w);
    env_.run();
    return collect();
  }

 private:
  struct WorkerState {
    std::uint32_t rank = 0;
    net::NodeId node = 0;
    std::vector<float> params;
    std::vector<float> grad;
    std::vector<float> update;
    std::vector<float> pending;  ///< significance filter: locally aggregated update
    std::int64_t pushes_filtered = 0;
    std::unique_ptr<ml::Optimizer> opt;
    std::unique_ptr<ml::BatchSampler> sampler;
    ml::Workspace ws;
    baselines::SspTableCachePolicy cache{1};
    Rng rng{0};

    std::int64_t iter = 0;
    std::uint32_t pending_shards = 0;
    std::uint32_t pending_acks = 0;
    std::uint64_t ticket = 0;
    std::uint64_t next_ticket = 1;

    double compute_seconds = 0.0;
    double comm_seconds = 0.0;
    double wait_started = 0.0;
    double compute_started = 0.0;
    double finish_time = 0.0;
    double last_loss = 0.0;
    bool done = false;
  };

  void build_parameters() {
    if (!cfg_.initial_params.empty()) {
      FPS_CHECK(cfg_.initial_params.size() == model_->num_params())
          << "initial_params size " << cfg_.initial_params.size() << " != model "
          << model_->num_params();
      w0_ = cfg_.initial_params;
    } else {
      w0_.resize(model_->num_params());
      Rng init_rng(cfg_.seed, /*stream=*/0x1717);
      model_->init_params(w0_, init_rng);
    }
    const auto slicer = ps::make_slicer(cfg_.slicer, cfg_.eps_chunk);
    sharding_ = slicer->shard(model_->layer_sizes(), cfg_.num_servers);
  }

  void build_servers() {
    const bool baseline = cfg_.arch == Arch::kPsLite;
    if (!cfg_.per_server_sync.empty()) {
      FPS_CHECK(cfg_.per_server_sync.size() == cfg_.num_servers)
          << "per_server_sync needs one entry per server";
      FPS_CHECK(cfg_.arch == Arch::kFluentPS)
          << "per-server sync models require the FluentPS architecture";
    }
    servers_.reserve(cfg_.num_servers);
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      ps::ServerSpec spec;
      spec.node_id = server_node(m);
      spec.server_rank = m;
      spec.num_workers = cfg_.num_workers;
      spec.layout = sharding_.shards[m];
      spec.initial_shard.resize(spec.layout.total);
      spec.layout.gather(w0_, spec.initial_shard);
      spec.engine.num_workers = cfg_.num_workers;
      spec.engine.mode = cfg_.dpr_mode;
      const ps::SyncModelSpec& sync_spec =
          cfg_.per_server_sync.empty() ? cfg_.sync : cfg_.per_server_sync[m];
      spec.engine.model = ps::make_sync_model(sync_spec, cfg_.num_workers);
      spec.engine.seed = derive_seed(cfg_.seed, 0x5E57E8 + m);
      spec.ack_pushes = baseline;
      spec.respond_unconditionally = baseline;
      auto server = std::make_unique<ps::Server>(std::move(spec), transport_);
      ps::Server* raw = server.get();
      // Serial request processing: arrivals queue behind the server's single
      // handler; synchronization machinery (buffering/releasing DPRs) costs
      // extra, so high synchronization frequency translates into time.
      server_busy_until_.push_back(0.0);
      double* busy = &server_busy_until_.back();
      transport_.register_node(raw->node_id(), [this, raw, busy](net::Message&& msg) {
        const double start = std::max(env_.now(), *busy);
        *busy = start + cfg_.server_proc_seconds;
        env_.schedule_at(start, [this, raw, busy, m = std::move(msg)]() mutable {
          const bool is_push = m.type == net::MsgType::kPush;
          const std::int64_t dpr0 = raw->engine().dpr_total();
          const std::int64_t resp0 = raw->pulls_answered();
          raw->handle(std::move(m));
          // DPR machinery events: newly buffered pulls, plus (for a push) the
          // buffered pulls it released. A pull answered directly is plain
          // request handling, already covered by server_proc_seconds.
          std::int64_t dpr_events = raw->engine().dpr_total() - dpr0;
          if (is_push) dpr_events += raw->pulls_answered() - resp0;
          *busy = std::max(*busy, env_.now()) +
                  static_cast<double>(dpr_events) * cfg_.dpr_overhead_seconds;
        });
      });
      servers_.push_back(std::move(server));
    }
  }

  void build_scheduler() {
    if (cfg_.arch != Arch::kPsLite) return;
    ps::SchedulerSpec spec;
    spec.node_id = kSchedulerNode;
    spec.num_workers = cfg_.num_workers;
    for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
      spec.worker_nodes.push_back(worker_node(cfg_.num_servers, n));
    }
    spec.engine.num_workers = cfg_.num_workers;
    // The scheduler grants pulls as soon as the global condition holds —
    // soft-barrier semantics, matching PS-Lite's bounded-delay tracker.
    spec.engine.mode = ps::DprMode::kSoftBarrier;
    spec.engine.model = ps::make_sync_model(cfg_.sync, cfg_.num_workers);
    spec.engine.seed = derive_seed(cfg_.seed, 0x5C7ED);
    scheduler_ = std::make_unique<ps::Scheduler>(std::move(spec), transport_);
    // The centralized scheduler processes one message at a time: arrivals
    // queue behind its serial handler (the PS-Lite bottleneck the paper's
    // overlap synchronization removes).
    transport_.register_node(kSchedulerNode, [this](net::Message&& msg) {
      const double start = std::max(env_.now(), scheduler_busy_until_);
      scheduler_busy_until_ = start + cfg_.pslite_scheduler_proc_seconds;
      env_.schedule_at(scheduler_busy_until_,
                       [this, m = std::move(msg)]() mutable { scheduler_->handle(std::move(m)); });
    });
  }

  void build_workers() {
    workers_.reserve(cfg_.num_workers);
    for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
      auto w = std::make_unique<WorkerState>();
      w->rank = n;
      w->node = worker_node(cfg_.num_servers, n);
      w->params = w0_;
      w->grad.resize(model_->num_params());
      w->update.resize(model_->num_params());
      w->opt = ml::make_optimizer(cfg_.opt, *model_);
      w->sampler = std::make_unique<ml::BatchSampler>(data_, n, cfg_.num_workers,
                                                      cfg_.batch_size, cfg_.seed);
      w->cache = baselines::SspTableCachePolicy(cfg_.num_workers, cfg_.ssptable_divisor);
      w->rng = Rng(cfg_.seed, 0xF00D + n);
      // Cluster-unique tickets: servers key pending pulls by request id.
      w->next_ticket = (static_cast<std::uint64_t>(n) << 40) + 1;
      WorkerState* raw = w.get();
      transport_.register_node(raw->node, [this, raw](net::Message&& msg) {
        on_worker_msg(*raw, std::move(msg));
      });
      workers_.push_back(std::move(w));
    }
  }

  void schedule_compute(WorkerState& w) {
    const double dt = compute_->sample(w.rank, w.iter, w.rng);
    w.compute_seconds += dt;
    w.compute_started = env_.now();
    env_.schedule(dt, [this, &w] { on_compute_done(w); });
  }

  void on_compute_done(WorkerState& w) {
    // Real gradient math happens here, at the event's virtual timestamp, so
    // the parameter values a worker trains on reflect exactly the responses
    // it had received by now.
    const ml::Batch batch = w.sampler->next();
    w.last_loss = model_->grad(w.params, batch, w.grad, w.ws);
    w.opt->compute_update(w.params, w.grad, w.iter, w.update);
    w.wait_started = env_.now();

    if (cfg_.push_significance_threshold > 0.0) {
      // Gaia-style filter: aggregate locally; push only significant updates.
      if (w.pending.empty()) w.pending.assign(model_->num_params(), 0.0f);
      ml::axpy(1.0f, w.update, w.pending);
      const double wn = ml::l2_norm(w.params);
      const double sf = wn > 0.0 ? ml::l2_norm(w.pending) / wn : 1.0;
      const bool last_iter = w.iter + 1 >= cfg_.max_iters;
      if (sf >= cfg_.push_significance_threshold || last_iter) {
        send_pushes(w, w.pending, /*metadata_only=*/false);
        std::fill(w.pending.begin(), w.pending.end(), 0.0f);
      } else {
        ++w.pushes_filtered;
        send_pushes(w, w.pending, /*metadata_only=*/true);
      }
    } else {
      send_pushes(w, w.update, /*metadata_only=*/false);
    }
    if (cfg_.arch == Arch::kPsLite) {
      // Non-overlap protocol: wait for all push acks, then report progress
      // to the scheduler and wait for the pull grant.
      w.pending_acks = cfg_.num_servers;
    } else {
      send_pulls(w);
    }
  }

  void send_pushes(WorkerState& w, std::span<const float> values, bool metadata_only) {
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      const ps::ShardLayout& layout = sharding_.shards[m];
      net::Message msg;
      msg.type = net::MsgType::kPush;
      msg.src = w.node;
      msg.dst = server_node(m);
      msg.progress = w.iter;
      msg.worker_rank = w.rank;
      msg.server_rank = m;
      if (!metadata_only) {
        msg.values.resize(layout.total);
        layout.gather(values, msg.values);
      }
      transport_.send(std::move(msg));
    }
  }

  void send_pulls(WorkerState& w) {
    w.ticket = w.next_ticket++;
    w.pending_shards = cfg_.num_servers;
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      net::Message msg;
      msg.type = net::MsgType::kPull;
      msg.src = w.node;
      msg.dst = server_node(m);
      msg.request_id = w.ticket;
      msg.progress = w.iter;
      msg.worker_rank = w.rank;
      msg.server_rank = m;
      transport_.send(std::move(msg));
    }
  }

  void on_worker_msg(WorkerState& w, net::Message&& msg) {
    switch (msg.type) {
      case net::MsgType::kPullResp: {
        if (msg.request_id != w.ticket) return;  // response to a superseded pull
        const bool apply = cfg_.arch != Arch::kSspTable || w.cache.apply_fresh(w.iter);
        if (apply) {
          sharding_.shards[msg.server_rank].scatter(msg.values, w.params);
        }
        FPS_CHECK(w.pending_shards > 0) << "unexpected pull response";
        if (--w.pending_shards == 0) finish_iteration(w);
        break;
      }
      case net::MsgType::kPushAck: {
        FPS_CHECK(w.pending_acks > 0) << "unexpected push ack";
        if (--w.pending_acks == 0) {
          net::Message report;
          report.type = net::MsgType::kProgress;
          report.src = w.node;
          report.dst = kSchedulerNode;
          report.progress = w.iter;
          report.worker_rank = w.rank;
          transport_.send(std::move(report));
        }
        break;
      }
      case net::MsgType::kPullGrant:
        send_pulls(w);
        break;
      default:
        FPS_LOG(Warn) << "sim worker " << w.rank << " ignoring " << msg.to_debug_string();
    }
  }

  void finish_iteration(WorkerState& w) {
    // SSPtable baseline: on non-refresh iterations the worker trains against
    // its frozen, outdated cache (the pull responses were discarded above) —
    // the behavioural consequence of Bösen's consistency-view maintenance
    // falling behind at scale (Fig 1/7). No local update is applied: the
    // invalidation that would patch the cache is exactly what lags.
    if (cfg_.push_significance_threshold > 0.0 && !w.pending.empty()) {
      // The worker's unsynchronized contribution stays applied to its local
      // replica (Gaia keeps local updates visible inside the group).
      ml::axpy(1.0f, w.pending, w.params);
    }
    w.comm_seconds += env_.now() - w.wait_started;
    if (w.iter < cfg_.trace_iters) {
      trace_.push_back(IterationTrace{w.rank, w.iter, w.compute_started, w.wait_started,
                                      env_.now()});
    }
    ++w.iter;
    if (w.rank == 0) {
      maybe_switch_sync(w.iter);
      maybe_eval(w);
    }
    if (w.iter < cfg_.max_iters) {
      schedule_compute(w);
    } else {
      w.done = true;
      w.finish_time = env_.now();
    }
  }

  void maybe_switch_sync(std::int64_t iter) {
    while (next_switch_ < cfg_.sync_schedule.size() &&
           iter >= cfg_.sync_schedule[next_switch_].first) {
      const auto& spec = cfg_.sync_schedule[next_switch_].second;
      FPS_CHECK(cfg_.arch == Arch::kFluentPS)
          << "runtime sync switching requires per-server conditions (FluentPS arch)";
      for (auto& server : servers_) {
        // Each server gets its own compiled model (conditions may be stateful,
        // e.g. DSPS) — exactly the paper's per-shard adaptivity.
        auto model = ps::make_sync_model(spec, cfg_.num_workers);
        server->set_pull_condition(std::move(model.pull));
        server->set_push_condition(std::move(model.push));
      }
      FPS_LOG(Info) << "switched sync model to " << spec.label() << " at iteration " << iter;
      ++next_switch_;
    }
  }

  void maybe_eval(const WorkerState& w) {
    if (cfg_.eval_every <= 0 || w.iter % cfg_.eval_every != 0) return;
    const auto params = global_params();
    AccuracyPoint pt;
    pt.time = env_.now();
    pt.iter = w.iter;
    pt.accuracy = ml::test_accuracy(*model_, params, data_, eval_ws_);
    pt.loss = ml::test_loss(*model_, params, data_, eval_ws_);
    curve_.push_back(pt);
  }

  [[nodiscard]] std::vector<float> global_params() const {
    std::vector<float> flat(model_->num_params(), 0.0f);
    for (const auto& s : servers_) s->snapshot_into(flat);
    return flat;
  }

  ExperimentResult collect() {
    ExperimentResult r;
    double compute_sum = 0.0;
    double comm_sum = 0.0;
    for (const auto& w : workers_) {
      FPS_CHECK(w->done) << "worker " << w->rank << " did not finish (deadlock?) at iter "
                         << w->iter << "/" << cfg_.max_iters;
      r.total_time = std::max(r.total_time, w->finish_time);
      compute_sum += w->compute_seconds;
      comm_sum += w->comm_seconds;
    }
    const auto nw = static_cast<double>(cfg_.num_workers);
    r.compute_time = compute_sum / nw;
    r.comm_time = comm_sum / nw;
    for (const auto& s : servers_) {
      r.dpr_total += s->engine().dpr_total();
      r.staleness.merge(s->engine().staleness_served());
      r.release_delay.merge(s->engine().release_delay());
    }
    r.dprs_per_100_iters =
        static_cast<double>(r.dpr_total) * 100.0 / static_cast<double>(cfg_.max_iters);
    r.bytes_total = network_.total_bytes();
    r.messages = transport_.delivered();
    r.iterations = cfg_.max_iters;
    r.shard_imbalance = sharding_.imbalance();
    if (scheduler_) {
      r.extra["scheduler_dprs"] = static_cast<double>(scheduler_->engine().dpr_total());
      r.extra["scheduler_grants"] = static_cast<double>(scheduler_->grants_issued());
    }
    double max_ingress = 0.0;
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      max_ingress = std::max(max_ingress, network_.ingress_busy_seconds(server_node(m)));
    }
    r.extra["max_server_ingress_busy"] = max_ingress;
    r.extra["events"] = static_cast<double>(env_.events_executed());

    for (const auto& w : workers_) r.pushes_filtered += w->pushes_filtered;

    auto params = global_params();
    r.final_accuracy = ml::test_accuracy(*model_, params, data_, eval_ws_);
    r.final_loss = ml::test_loss(*model_, params, data_, eval_ws_);
    r.final_params = std::move(params);
    r.trace = std::move(trace_);
    r.curve = std::move(curve_);
    AccuracyPoint final_pt{r.total_time, cfg_.max_iters, r.final_accuracy, r.final_loss};
    r.curve.push_back(final_pt);
    return r;
  }

  const ExperimentConfig& cfg_;
  sim::SimEnv env_;
  sim::NetworkModel network_;
  net::SimTransport transport_;
  ml::Dataset data_;
  std::unique_ptr<ml::Model> model_;
  std::unique_ptr<sim::ComputeModel> compute_;
  std::vector<float> w0_;
  ps::Sharding sharding_;
  std::vector<std::unique_ptr<ps::Server>> servers_;
  std::deque<double> server_busy_until_;  // deque: stable addresses for handlers
  std::unique_ptr<ps::Scheduler> scheduler_;
  double scheduler_busy_until_ = 0.0;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::vector<AccuracyPoint> curve_;
  std::vector<IterationTrace> trace_;
  std::size_t next_switch_ = 0;
  ml::Workspace eval_ws_;
};

}  // namespace

ExperimentResult run_sim(const ExperimentConfig& config) {
  SimRun run(config);
  return run.run();
}

}  // namespace fluentps::core
