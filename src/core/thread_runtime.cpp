#include "core/thread_runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "baselines/ssptable_cache.h"
#include "common/logging.h"
#include "elastic/membership.h"
#include "elastic/planner.h"
#include "embed/routing.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "embed/sparse_host.h"
#include "embed/sparse_replica.h"
#include "embed/sparse_worker.h"
#include "embed/workload.h"
#include "fault/faulty_transport.h"
#include "fault/timer_queue.h"
#include "ml/eval.h"
#include "ml/ops.h"
#include "net/inproc_transport.h"
#include "obs/snapshot.h"
#include "obs/span.h"
#include "ps/scheduler.h"
#include "ps/server.h"
#include "ps/slicing.h"
#include "ps/worker.h"
#include "replica/replica_group.h"
#include "replica/replica_node.h"

namespace fluentps::core {
namespace {

constexpr net::NodeId kSchedulerNode = 0;
net::NodeId server_node(std::uint32_t m) { return 1 + m; }
net::NodeId worker_node(std::uint32_t m_servers, std::uint32_t n) { return 1 + m_servers + n; }

/// Sparse traffic shares the server nodes with the dense shard; the node
/// handler routes by message type.
bool is_sparse_type(net::MsgType t) noexcept {
  switch (t) {
    case net::MsgType::kSparsePush:
    case net::MsgType::kSparsePull:
    case net::MsgType::kSparseReplicate:
    case net::MsgType::kSparseReplicateAck:
      return true;
    default:
      return false;
  }
}

/// 64-bit digests don't fit a double losslessly; export as two 32-bit halves.
void put_u64_extra(ExperimentResult& r, const std::string& key, std::uint64_t v) {
  r.extra[key + "_lo"] = static_cast<double>(v & 0xFFFFFFFFull);
  r.extra[key + "_hi"] = static_cast<double>(v >> 32);
}

class ThreadRun {
 public:
  explicit ThreadRun(const ExperimentConfig& cfg)
      : cfg_(cfg),
        data_(ml::Dataset::synthesize(cfg.data)),
        model_(ml::make_model(cfg.model, data_.dim(), data_.num_classes())) {
    FPS_CHECK(cfg.num_workers > 0 && cfg.num_servers > 0) << "empty cluster";
    if (!cfg.initial_params.empty()) {
      FPS_CHECK(cfg.initial_params.size() == model_->num_params())
          << "initial_params size mismatch";
      w0_ = cfg.initial_params;
    } else {
      w0_.resize(model_->num_params());
      Rng init_rng(cfg.seed, /*stream=*/0x1717);
      model_->init_params(w0_, init_rng);
    }
    const auto slicer = ps::make_slicer(cfg.slicer, cfg.eps_chunk);
    if (cfg.elastic.enabled()) {
      validate_elastic();
      membership_ =
          std::make_unique<elastic::Membership>(cfg.num_servers, cfg.elastic.initial_servers);
      dense_parked_at_.assign(cfg.elastic.schedule.size(), 0);
      sparse_parked_at_.assign(cfg.elastic.schedule.size(), 0);
      // Shard over the active set only; inactive slots start with empty
      // (ranked) shards so clients naturally skip them.
      const std::uint32_t n_active = membership_->view().num_active();
      sharding_ = n_active < cfg.num_servers
                      ? elastic::expand_to_slots(
                            slicer->shard(model_->layer_sizes(), n_active), cfg.num_servers)
                      : slicer->shard(model_->layer_sizes(), cfg.num_servers);
    } else {
      sharding_ = slicer->shard(model_->layer_sizes(), cfg.num_servers);
    }
    reliable_ = cfg.reliability_enabled();
    chain_ = replica::ChainLayout{cfg.num_servers, cfg.num_workers,
                                  std::max<std::uint32_t>(cfg.replication_factor, 1)};
    FPS_CHECK(chain_.factor == 1 || cfg.arch == Arch::kFluentPS)
        << "chain replication requires the FluentPS architecture";
    if (chain_.replicated()) group_ = std::make_unique<replica::ReplicaGroup>(chain_);
    if (cfg.sparse.enabled()) {
      // Sparse tables are not checkpointed: a crashed shard's sparse state
      // can only survive through chain replication.
      FPS_CHECK(cfg.faults.crashes.empty() || chain_.replicated())
          << "crash schedules with a sparse job require replication_factor > 1";
    }
    // With replication, head crashes are absorbed by chain failover; periodic
    // checkpoints only run when explicitly requested via checkpoint_dir.
    checkpointing_ = (!cfg.faults.crashes.empty() && !chain_.replicated()) ||
                     !cfg.checkpoint_dir.empty();
    ckpt_store_.resize(cfg.num_servers);
    crash_time_.resize(cfg.num_servers, 0.0);
    if (cfg.faults.any()) {
      fault::FaultPlan plan(cfg.faults, cfg.num_servers, cfg.num_workers);
      chaos_ = std::make_unique<fault::FaultyTransport>(
          transport_, std::move(plan), derive_seed(cfg.seed, cfg.faults.seed),
          /*clock=*/[this] { return since_start_.seconds(); },
          /*defer=*/
          [this](double delay, std::function<void()> fn) { timers_.after(delay, std::move(fn)); },
          &metrics_);
      bus_ = chaos_.get();
    } else {
      bus_ = &transport_;
    }
    if (cfg.telemetry.enabled) {
      telemetry_handle_.registry = &metrics_.registry();
      telemetry_handle_.spans = cfg.telemetry.trace_spans ? &span_recorder_ : nullptr;
      telemetry_ = &telemetry_handle_;
    }
    build_servers();
    build_replicas();
    build_scheduler();
    build_clients();
    build_sparse_clients();
    build_fleet();
  }

  ExperimentResult run() {
    Stopwatch total;
    if (telemetry_ != nullptr && cfg_.telemetry.interval_ms > 0) {
      snapshotter_ = std::make_unique<obs::Snapshotter>(
          metrics_.registry(), cfg_.telemetry.interval_ms, cfg_.telemetry.out_prefix + ".jsonl");
      snapshotter_->start();
    }
    if (checkpointing_) take_checkpoints();  // a crash before the first interval
                                             // must find something to restore
    std::jthread chaos_thread;
    if (checkpointing_ || !cfg_.faults.crashes.empty()) {
      chaos_thread = std::jthread([this](const std::stop_token& st) { chaos_loop(st); });
    }
    std::jthread elastic_thread;
    if (membership_ && !cfg_.elastic.schedule.empty()) {
      elastic_thread = std::jthread([this](const std::stop_token& st) { elastic_loop(st); });
    }
    {
      std::vector<std::jthread> threads;
      threads.reserve(cfg_.num_workers + sparse_clients_.size() + fleet_.size());
      for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
        threads.emplace_back([this, n] { worker_loop(n); });
      }
      for (std::uint32_t s = 0; s < sparse_clients_.size(); ++s) {
        threads.emplace_back([this, s] { sparse_worker_loop(s); });
      }
      for (std::uint32_t i = 0; i < fleet_.size(); ++i) {
        threads.emplace_back([this, i] { fleet_loop(i); });
      }
    }  // join all workers
    if (elastic_thread.joinable()) elastic_thread.join();  // all ops committed by now
    const double makespan = total.seconds();
    if (chaos_thread.joinable()) {
      chaos_thread.request_stop();
      chaos_thread.join();
    }
    timers_.shutdown();  // drop deferred (delayed/reordered) deliveries
    transport_.shutdown();
    return collect(makespan);
  }

 private:
  struct PerWorker {
    std::unique_ptr<ps::WorkerClient> client;
    double compute_seconds = 0.0;
    double comm_seconds = 0.0;
    double last_loss = 0.0;
    std::int64_t pushes_filtered = 0;
  };

  /// Server spec for shard m — shared between the initial heads and servers
  /// promoted from replicas at failover (which override node_id/successor).
  [[nodiscard]] ps::ServerSpec make_server_spec(std::uint32_t m) const {
    const bool baseline = cfg_.arch == Arch::kPsLite;
    ps::ServerSpec spec;
    spec.node_id = server_node(m);
    spec.server_rank = m;
    spec.num_workers = cfg_.num_workers;
    spec.layout = sharding_.shards[m];
    spec.initial_shard.resize(spec.layout.total);
    spec.layout.gather(w0_, spec.initial_shard);
    spec.engine.num_workers = cfg_.num_workers;
    spec.engine.mode = cfg_.dpr_mode;
    const ps::SyncModelSpec& sync_spec =
        cfg_.per_server_sync.empty() ? cfg_.sync : cfg_.per_server_sync[m];
    spec.engine.model = ps::make_sync_model(sync_spec, cfg_.num_workers);
    spec.engine.seed = derive_seed(cfg_.seed, 0x5E57E8 + m);
    spec.ack_pushes = baseline;
    spec.respond_unconditionally = baseline;
    spec.reliable = reliable_;
    spec.batch_pushes = cfg_.batch_pushes;
    spec.apply_stripes = cfg_.apply_stripes;
    spec.lockfree_handoff = cfg_.lockfree_handoff;
    spec.ring_depth = cfg_.ring_depth;
    spec.apply_threads = cfg_.apply_threads;
    spec.pin_threads = cfg_.pin_threads;
    spec.replica_successor = chain_.replicated() ? chain_.successor_of(m, 0) : 0;
    spec.read_serve_seconds = cfg_.read.serve_seconds;
    spec.telemetry = telemetry_;
    if (reliable_) {
      for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
        spec.worker_nodes.push_back(worker_node(cfg_.num_servers, n));
      }
    }
    return spec;
  }

  /// Sparse core spec for shard m — shared between heads, replicas and the
  /// hosts promoted at failover (identical cores keep digests bit-identical).
  [[nodiscard]] embed::SparseCoreSpec make_sparse_core_spec(std::uint32_t m) const {
    embed::SparseCoreSpec core;
    core.server_rank = m;
    core.num_workers = cfg_.sparse.num_workers;
    core.tables = cfg_.sparse.tables;
    core.seed = cfg_.seed;
    core.reduce = cfg_.sparse.reduce;
    core.stripes = cfg_.apply_stripes;
    return core;
  }

  [[nodiscard]] embed::SparseHostSpec make_sparse_host_spec(std::uint32_t m,
                                                            std::uint32_t chain_pos) {
    embed::SparseHostSpec spec;
    spec.node_id = chain_.node_of(m, chain_pos);
    spec.core = make_sparse_core_spec(m);
    spec.replica_successor = chain_.replicated() ? chain_.successor_of(m, chain_pos) : 0;
    spec.metrics = &metrics_;
    return spec;
  }

  void build_servers() {
    if (!cfg_.per_server_sync.empty()) {
      FPS_CHECK(cfg_.per_server_sync.size() == cfg_.num_servers)
          << "per_server_sync needs one entry per server";
      FPS_CHECK(cfg_.arch == Arch::kFluentPS)
          << "per-server sync models require the FluentPS architecture";
    }
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      auto server = std::make_unique<ps::Server>(make_server_spec(m), *bus_);
      ps::Server* raw = server.get();
      if (cfg_.sparse.enabled()) {
        auto host = std::make_unique<embed::SparseHost>(make_sparse_host_spec(m, 0), *bus_);
        embed::SparseHost* hraw = host.get();
        bus_->register_node(raw->node_id(), [raw, hraw](net::Message&& msg) {
          if (is_sparse_type(msg.type)) {
            hraw->handle(std::move(msg));
          } else {
            raw->handle(std::move(msg));
          }
        });
        head_sparse_.push_back(hraw);
        sparse_hosts_.push_back(std::move(host));
      } else {
        bus_->register_node(raw->node_id(),
                            [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      }
      head_server_.push_back(raw);
      servers_.push_back(std::move(server));
    }
  }

  /// Chain slot: one non-head replica node and — after a promotion — the
  /// server that took its place on the same node id. The mutex serializes the
  /// slot's dispatch thread against the chaos thread's promotion handoff
  /// (InprocTransport queues sends, so no lock chains form across slots).
  struct ReplicaSlot {
    std::uint32_t m = 0;
    std::uint32_t pos = 0;
    net::NodeId node = 0;
    std::mutex mu;
    std::unique_ptr<replica::ReplicaNode> replica;
    std::unique_ptr<ps::Server> promoted;
    // Sparse twins on the same chain node (set iff cfg.sparse.enabled()).
    std::unique_ptr<embed::SparseReplica> sparse_replica;
    std::unique_ptr<embed::SparseHost> sparse_promoted;
  };

  void build_replicas() {
    if (!chain_.replicated()) return;
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      for (std::uint32_t pos = 1; pos < chain_.factor; ++pos) {
        ReplicaSlot& slot = replicas_.emplace_back();  // deque: stable address
        slot.m = m;
        slot.pos = pos;
        slot.node = chain_.node_of(m, pos);
        replica::ReplicaSpec spec;
        spec.node_id = slot.node;
        spec.server_rank = m;
        spec.chain_pos = pos;
        spec.num_workers = cfg_.num_workers;
        spec.initial_shard.resize(sharding_.shards[m].total);
        sharding_.shards[m].gather(w0_, spec.initial_shard);
        spec.successor = chain_.successor_of(m, pos);
        spec.apply_scale = 1.0f / static_cast<float>(cfg_.num_workers);
        spec.read_serve_seconds = cfg_.read.serve_seconds;
        spec.telemetry = telemetry_;
        slot.replica = std::make_unique<replica::ReplicaNode>(std::move(spec), *bus_);
        if (cfg_.sparse.enabled()) {
          embed::SparseReplicaSpec sspec;
          sspec.node_id = slot.node;
          sspec.chain_pos = pos;
          sspec.core = make_sparse_core_spec(m);
          sspec.successor = chain_.successor_of(m, pos);
          slot.sparse_replica = std::make_unique<embed::SparseReplica>(std::move(sspec), *bus_);
        }
        bus_->register_node(slot.node, [&slot](net::Message&& msg) {
          std::scoped_lock lock(slot.mu);
          if (is_sparse_type(msg.type)) {
            if (slot.sparse_promoted) {
              slot.sparse_promoted->handle(std::move(msg));
            } else if (slot.sparse_replica) {
              slot.sparse_replica->handle(std::move(msg));
            }
          } else if (slot.promoted) {
            slot.promoted->handle(std::move(msg));
          } else {
            slot.replica->handle(std::move(msg));
          }
        });
      }
    }
  }

  void build_scheduler() {
    if (cfg_.arch != Arch::kPsLite) return;
    ps::SchedulerSpec spec;
    spec.node_id = kSchedulerNode;
    spec.num_workers = cfg_.num_workers;
    for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
      spec.worker_nodes.push_back(worker_node(cfg_.num_servers, n));
    }
    spec.engine.num_workers = cfg_.num_workers;
    spec.engine.mode = ps::DprMode::kSoftBarrier;
    spec.engine.model = ps::make_sync_model(cfg_.sync, cfg_.num_workers);
    spec.engine.seed = derive_seed(cfg_.seed, 0x5C7ED);
    scheduler_ = std::make_unique<ps::Scheduler>(std::move(spec), *bus_);
    bus_->register_node(kSchedulerNode,
                        [this](net::Message&& msg) { scheduler_->handle(std::move(msg)); });
  }

  /// Non-head chain members per shard, in chain order — the bounded-read
  /// serving set handed to every client (empty without replication).
  [[nodiscard]] std::vector<std::vector<net::NodeId>> make_read_replicas() const {
    std::vector<std::vector<net::NodeId>> replicas(cfg_.num_servers);
    if (!chain_.replicated()) return replicas;
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      for (std::uint32_t pos = 1; pos < chain_.factor; ++pos) {
        replicas[m].push_back(chain_.node_of(m, pos));
      }
    }
    return replicas;
  }

  void build_clients() {
    workers_.reserve(cfg_.num_workers);
    for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
      ps::WorkerSpec spec;
      spec.node_id = worker_node(cfg_.num_servers, n);
      spec.worker_rank = n;
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        spec.server_nodes.push_back(server_node(m));
      }
      spec.sharding = &sharding_;
      spec.scheduler_node = kSchedulerNode;
      spec.reliable = reliable_;
      spec.retry = cfg_.retry;
      spec.seed = cfg_.seed;
      spec.telemetry = telemetry_;
      spec.read_replicas = make_read_replicas();
      auto pw = std::make_unique<PerWorker>();
      pw->client = std::make_unique<ps::WorkerClient>(std::move(spec), *bus_);
      ps::WorkerClient* raw = pw->client.get();
      bus_->register_node(raw->node_id(),
                          [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      workers_.push_back(std::move(pw));
    }
  }

  void build_sparse_clients() {
    if (!cfg_.sparse.enabled()) return;
    sparse_clients_.reserve(cfg_.sparse.num_workers);
    for (std::uint32_t s = 0; s < cfg_.sparse.num_workers; ++s) {
      embed::SparseWorkerSpec spec;
      // Sparse workers live past the dense layout (scheduler, servers,
      // replicas, dense workers) — their rank space is their own.
      spec.node_id = chain_.total_nodes() + s;
      spec.worker_rank = s;
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        spec.server_nodes.push_back(server_node(m));
      }
      spec.tables = cfg_.sparse.tables;
      spec.retry = cfg_.retry;
      spec.seed = cfg_.seed;
      if (cfg_.read.sparse) {
        // Bound-0 bounded reads: the BSP round clock makes replica answers
        // bit-identical to the head's, so the digest oracle still holds.
        spec.read.consistency = ps::Consistency::kBounded;
        spec.read.max_staleness_clocks = 0;
        spec.read_replicas = make_read_replicas();
      }
      auto client = std::make_unique<embed::SparseWorkerClient>(std::move(spec), *bus_);
      embed::SparseWorkerClient* raw = client.get();
      bus_->register_node(raw->node_id(),
                          [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      sparse_clients_.push_back(std::move(client));
    }
  }

  /// Pull-only inference client (DESIGN.md §13): a plain ps::WorkerClient
  /// that never pushes — every pull is bounded, so the client rides the
  /// replica read path with its own timeout ladder and redirect handling.
  struct FleetClient {
    std::unique_ptr<ps::WorkerClient> client;
    double start = 0.0;
    double finish = 0.0;
  };

  void build_fleet() {
    if (!cfg_.read.fleet_enabled()) return;
    const std::uint32_t sparse_n = cfg_.sparse.enabled() ? cfg_.sparse.num_workers : 0;
    fleet_.reserve(cfg_.read.fleet);
    for (std::uint32_t i = 0; i < cfg_.read.fleet; ++i) {
      ps::WorkerSpec spec;
      // Fleet nodes live past every other rank space (dense layout, then
      // sparse workers); ranks continue past the training workers so tickets
      // and replica read windows stay cluster-unique.
      spec.node_id = chain_.total_nodes() + sparse_n + i;
      spec.worker_rank = cfg_.num_workers + i;
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        spec.server_nodes.push_back(server_node(m));
      }
      spec.sharding = &sharding_;
      spec.scheduler_node = kSchedulerNode;
      spec.reliable = false;  // pull-only: the bounded-read ladder retransmits
      spec.retry = cfg_.retry;
      spec.seed = cfg_.seed;
      spec.telemetry = telemetry_;
      spec.read_replicas = make_read_replicas();
      auto f = std::make_unique<FleetClient>();
      f->client = std::make_unique<ps::WorkerClient>(std::move(spec), *bus_);
      ps::WorkerClient* raw = f->client.get();
      bus_->register_node(raw->node_id(),
                          [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      fleet_.push_back(std::move(f));
    }
  }

  void fleet_loop(std::uint32_t idx) {
    FleetClient& f = *fleet_[idx];
    ps::WorkerClient& client = *f.client;
    std::vector<float> pulled(model_->num_params());
    f.start = since_start_.seconds();
    std::int64_t clock = 0;
    for (std::int64_t p = 0; p < cfg_.read.pulls; ++p) {
      if (membership_) park_fleet();
      ps::ReadOptions opts;
      opts.clock = clock;
      opts.max_staleness_clocks = cfg_.read.max_staleness_clocks;
      opts.consistency = ps::Consistency::kBounded;
      opts.prefer_replica = cfg_.read.prefer_replica;
      const std::uint64_t ticket = client.pull(ps::KeyRange::all(), opts);
      client.wait_pull(ticket, pulled);
      // The highest horizon any response echoed is this client's clock for
      // the next bounded read.
      clock = std::max(clock, client.observed_horizon());
      if (cfg_.read.think_seconds > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(cfg_.read.think_seconds));
      }
    }
    f.finish = since_start_.seconds();
    if (membership_) {
      std::scoped_lock lock(gate_mu_);
      ++fleet_done_;
      gate_cv_.notify_all();
    }
  }

  void sparse_worker_loop(std::uint32_t rank) {
    embed::SparseWorkerClient& client = *sparse_clients_[rank];
    std::vector<embed::SparseBatch> batches;
    std::size_t next_op = 0;  // next elastic schedule entry to park at
    for (std::int64_t round = 0; round < cfg_.sparse.rounds; ++round) {
      if (membership_) park_sparse(round, next_op);
      if (cfg_.sparse.compute_seconds > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(cfg_.sparse.compute_seconds));
      }
      batches.clear();
      for (const embed::TableSpec& t : cfg_.sparse.tables) {
        batches.push_back(embed::sample_batch(cfg_.sparse, t, cfg_.seed, rank, round));
      }
      client.run_round(round, batches);
    }
    if (membership_) {
      std::scoped_lock lock(gate_mu_);
      ++sparse_done_;
      gate_cv_.notify_all();
    }
  }

  void worker_loop(std::uint32_t rank) {
    PerWorker& pw = *workers_[rank];
    ps::WorkerClient& client = *pw.client;
    const baselines::SspTableCachePolicy cache(cfg_.num_workers, cfg_.ssptable_divisor);

    std::vector<float> params = w0_;
    std::vector<float> pulled(model_->num_params());
    std::vector<float> grad(model_->num_params());
    std::vector<float> update(model_->num_params());
    std::vector<float> pending;  // significance filter accumulator
    auto opt = ml::make_optimizer(cfg_.opt, *model_);
    ml::BatchSampler sampler(data_, rank, cfg_.num_workers, cfg_.batch_size, cfg_.seed);
    ml::Workspace ws;
    std::size_t next_switch = 0;
    std::size_t next_op = 0;  // next elastic schedule entry to park at

    // Live per-iteration instruments (wait-free; registered once up front so
    // the loop never touches the registry map).
    obs::Histogram* compute_hist = nullptr;
    obs::Histogram* sync_hist = nullptr;
    obs::Gauge* progress_gauge = nullptr;
    if (telemetry_ != nullptr && telemetry_->registry != nullptr) {
      compute_hist = &telemetry_->registry->histogram("worker.compute_ns");
      sync_hist = &telemetry_->registry->histogram("worker.sync_ns");
      progress_gauge = &telemetry_->registry->gauge("worker.progress");
    }

    for (std::int64_t iter = 0; iter < cfg_.max_iters; ++iter) {
      if (membership_) park_dense(client, iter, next_op);
      Stopwatch compute;
      const ml::Batch batch = sampler.next();
      pw.last_loss = model_->grad(params, batch, grad, ws);
      opt->compute_update(params, grad, iter, update);
      const double compute_s = compute.seconds();
      pw.compute_seconds += compute_s;
      if (compute_hist != nullptr) {
        compute_hist->record(static_cast<std::uint64_t>(compute_s * 1e9));
      }

      Stopwatch comm;
      if (cfg_.push_significance_threshold > 0.0) {
        if (pending.empty()) pending.assign(model_->num_params(), 0.0f);
        ml::axpy(1.0f, update, pending);
        const double wn = ml::l2_norm(params);
        const double sf = wn > 0.0 ? ml::l2_norm(pending) / wn : 1.0;
        if (sf >= cfg_.push_significance_threshold || iter + 1 >= cfg_.max_iters) {
          client.push(pending, iter);
          std::fill(pending.begin(), pending.end(), 0.0f);
        } else {
          ++pw.pushes_filtered;
          client.push_metadata(iter);
        }
      } else {
        client.push(update, iter);
      }
      if (cfg_.arch == Arch::kPsLite) {
        client.wait_push_acks();
        client.report_and_wait_grant(iter);
      }
      ps::ReadOptions read_opts;
      read_opts.clock = iter;  // strong: the legacy engine-gated pull
      const std::uint64_t ticket = client.pull(ps::KeyRange::all(), read_opts);
      client.wait_pull(ticket, pulled);
      if (cfg_.arch != Arch::kSspTable || cache.apply_fresh(iter)) {
        params = pulled;
      }
      // else: SSPtable baseline keeps the frozen stale cache (see
      // baselines/ssptable_cache.h).
      if (cfg_.push_significance_threshold > 0.0 && !pending.empty()) {
        ml::axpy(1.0f, pending, params);  // keep local contribution visible
      }
      const double comm_s = comm.seconds();
      pw.comm_seconds += comm_s;
      if (sync_hist != nullptr) {
        sync_hist->record(static_cast<std::uint64_t>(comm_s * 1e9));
      }
      if (progress_gauge != nullptr) {
        progress_gauge->set_max(static_cast<double>(iter + 1));
      }

      if (rank == 0) {
        if (membership_) {
          // The elastic controller keys its live pre-copy lead window on
          // worker 0's progress, the same clock the sync-mode schedule uses.
          w0_progress_.store(iter + 1, std::memory_order_relaxed);
        }
        while (next_switch < cfg_.sync_schedule.size() &&
               iter + 1 >= cfg_.sync_schedule[next_switch].first) {
          const auto& spec = cfg_.sync_schedule[next_switch].second;
          std::scoped_lock lock(head_mu_);
          for (ps::Server* server : head_server_) {
            auto new_model = ps::make_sync_model(spec, cfg_.num_workers);
            server->set_pull_condition(std::move(new_model.pull));
            server->set_push_condition(std::move(new_model.push));
          }
          ++next_switch;
        }
        if (cfg_.eval_every > 0 && (iter + 1) % cfg_.eval_every == 0) {
          record_eval(iter + 1);
        }
      }
    }
    if (reliable_) client.wait_push_acks();  // the final round is owed to the servers
    if (membership_) {
      std::scoped_lock lock(gate_mu_);
      ++dense_done_;
      gate_cv_.notify_all();
    }
  }

  // --- elastic membership controller (src/elastic, DESIGN.md §14) -------

  void validate_elastic() const {
    elastic::validate_spec(cfg_.elastic, cfg_.arch == Arch::kFluentPS,
                           cfg_.faults.crashes.empty() && cfg_.checkpoint_dir.empty(),
                           cfg_.sparse.enabled(), cfg_.replication_factor, cfg_.max_iters,
                           cfg_.sparse.rounds);
  }

  /// Dense elastic park point: before starting iteration `iter`, park at every
  /// scheduled op with at_iter == iter. The boundary is pre-declared so all
  /// dense workers park at the *same* iteration — a worker pausing at an
  /// arbitrary boundary while a straggler still waited on its progress would
  /// deadlock the DPR conditions. wait_push_acks() first: with rounds
  /// 0..iter-1 fully pushed, acked and pulled by everyone, no engine work can
  /// be pending anywhere when the controller commits.
  void park_dense(ps::WorkerClient& client, std::int64_t iter, std::size_t& next_op) {
    const auto& ops = cfg_.elastic.schedule;
    while (next_op < ops.size() && ops[next_op].at_iter == iter) {
      client.wait_push_acks();
      std::unique_lock lock(gate_mu_);
      ++dense_parked_at_[next_op];
      gate_cv_.notify_all();
      const std::size_t need = next_op + 1;
      gate_cv_.wait(lock, [&] { return completed_ops_ >= need; });
      --dense_parked_at_[next_op];
      ++next_op;
    }
  }

  /// Sparse twin: park before starting the op's pre-declared round (see
  /// elastic::park_round_of — all sparse workers must agree a priori, or the
  /// BSP round clock deadlocks). Between rounds the client is quiescent: the
  /// previous round's pushes are acked and its pulls answered.
  void park_sparse(std::int64_t round, std::size_t& next_op) {
    const auto& ops = cfg_.elastic.schedule;
    while (next_op < ops.size() &&
           elastic::park_round_of(ops[next_op], cfg_.max_iters, cfg_.sparse.rounds) ==
               round) {
      std::unique_lock lock(gate_mu_);
      ++sparse_parked_at_[next_op];
      gate_cv_.notify_all();
      const std::size_t need = next_op + 1;
      gate_cv_.wait(lock, [&] { return completed_ops_ >= need; });
      --sparse_parked_at_[next_op];
      ++next_op;
    }
  }

  /// Fleet park point: bounded reads scan the shared `sharding_` without a
  /// lock, so fleet clients pause between pulls while the controller rewrites
  /// it at the fence (re-checked on wake — the hold may be re-raised by a
  /// back-to-back op before this client observed the release).
  void park_fleet() {
    std::unique_lock lock(gate_mu_);
    while (fleet_hold_) {
      ++fleet_parked_;
      gate_cv_.notify_all();
      gate_cv_.wait(lock, [this] { return !fleet_hold_; });
      --fleet_parked_;
    }
  }

  void elastic_loop(const std::stop_token& st) {
    for (std::size_t i = 0; i < cfg_.elastic.schedule.size(); ++i) {
      const elastic::ElasticOp& op = cfg_.elastic.schedule[i];
      // Live pre-copy lead: start migrating while training still runs, so
      // only the catch-up tail remains when the fence goes up.
      const std::int64_t start_at =
          std::max<std::int64_t>(op.at_iter - cfg_.elastic.lead_iters, 0);
      while (!st.stop_requested() &&
             w0_progress_.load(std::memory_order_relaxed) < start_at) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (st.stop_requested()) return;
      execute_elastic_op(i, op);
    }
  }

  void execute_elastic_op(std::size_t index, const elastic::ElasticOp& op) {
    const std::uint64_t t_start = obs::now_ns();
    Stopwatch live_window;
    elastic::Plan plan = elastic::replan(sharding_, membership_->active_after(op));

    // Phase 1 — live pre-copy: snapshot every moving slice at its source and
    // tap subsequently accepted pushes as catch-up deltas (kMigrateSnapshot /
    // kMigrateDelta; control-plane frames, never faulted). Training continues.
    {
      std::scoped_lock lock(head_mu_);
      for (const auto& mv : plan.moves) {
        const ps::ShardLayout& lay = sharding_.shards[mv.from_server];
        std::size_t idx = lay.slices.size();
        for (std::size_t j = 0; j < lay.slices.size(); ++j) {
          if (lay.slices[j].offset == mv.slice.offset) {
            idx = j;
            break;
          }
        }
        FPS_CHECK(idx < lay.slices.size())
            << "migration source slice not found (offset " << mv.slice.offset << ")";
        head_server_[mv.from_server]->migrate_out_begin(
            next_migration_id_++, idx, head_server_[mv.to_server]->node_id(), mv.to_server);
      }
    }
    record_event("elastic_precopy", server_node(op.rank));

    // Phase 2 — fence: every client parks at its pre-declared boundary (the
    // fleet parks wherever it is, between two pulls).
    const std::uint32_t sparse_total =
        cfg_.sparse.enabled() ? cfg_.sparse.num_workers : 0;
    {
      std::unique_lock lock(gate_mu_);
      fleet_hold_ = true;
      gate_cv_.wait(lock, [&] {
        return dense_parked_at_[index] + dense_done_ >= cfg_.num_workers &&
               sparse_parked_at_[index] + sparse_done_ >= sparse_total &&
               fleet_parked_ + fleet_done_ >= fleet_.size();
      });
    }
    elastic_stats_.migrate_seconds += live_window.seconds();
    const std::uint64_t t_fence = obs::now_ns();
    Stopwatch stall;

    // Phase 3 — quiesce: every tapped delta staged and acked by its target,
    // every chain entry acked downstream. All pushes are acked (the parked
    // workers waited on that), so both horizons only need to settle.
    const auto quiesced = [&] {
      std::scoped_lock lock(head_mu_);
      for (const auto& mv : plan.moves) {
        if (!head_server_[mv.from_server]->migrations_drained()) return false;
      }
      for (ps::Server* s : head_server_) {
        if (s->replication_pending() != 0) return false;
      }
      return true;
    };
    while (!quiesced()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Phase 4 — epoch-fenced commit: atomically (w.r.t. the parked clients)
    // install the post-epoch layouts, seed the joining slot's engine and
    // round clock, reseed changed chains, move sparse rows, and publish the
    // new sharding to every client through the shared pointer.
    {
      std::scoped_lock lock(head_mu_);
      std::vector<char> changed(cfg_.num_servers, 0);
      for (const auto& mv : plan.moves) {
        changed[mv.from_server] = 1;
        changed[mv.to_server] = 1;
      }
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        const bool was_empty = sharding_.shards[m].slices.empty();
        if (changed[m]) head_server_[m]->commit_layout(plan.sharding.shards[m]);
        if (changed[m] && was_empty && !plan.sharding.shards[m].slices.empty()) {
          // The slot never saw a push while its shard was empty (joining
          // slots, but also small models where LPT left an active slot bare):
          // seed its engine with the progress every parked worker actually
          // reached, or BSP/SSP pull conditions would wait forever on pushes
          // that predate the epoch.
          head_server_[m]->seed_engine_progress(
              std::vector<std::int64_t>(cfg_.num_workers, op.at_iter - 1));
        }
      }
      if (chain_.replicated()) {
        for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
          if (!changed[m]) continue;
          const replica::ReplicaState seed = head_server_[m]->export_replica_seed();
          for (std::uint32_t pos = 1; pos < chain_.factor; ++pos) {
            ReplicaSlot& slot = slot_of(m, pos);
            std::scoped_lock slock(slot.mu);
            slot.replica->adopt_seed(seed);
          }
        }
      }
      if (cfg_.sparse.enabled()) move_sparse_rows(op);
      sharding_ = plan.sharding;  // clients read via their spec.sharding pointer
      membership_->commit(op, std::move(plan.sharding));
    }
    elastic_stats_.migrations += static_cast<std::int64_t>(plan.moves.size());
    elastic_stats_.epoch = membership_->epoch();
    metrics_.incr("elastic.migrations", static_cast<std::int64_t>(plan.moves.size()));
    metrics_.set_gauge_max("elastic.epoch", static_cast<double>(membership_->epoch()));

    // Release: wake every parked client into the new epoch.
    {
      std::scoped_lock lock(gate_mu_);
      ++completed_ops_;
      fleet_hold_ = false;
      gate_cv_.notify_all();
    }
    elastic_stats_.rebind_stall_seconds += stall.seconds();
    record_event(op.add ? "elastic_add" : "elastic_drain", server_node(op.rank));
    if (telemetry_ != nullptr && telemetry_->spans != nullptr) {
      const std::uint64_t trace = (0xE1A57ull << 32) | (index + 1);
      telemetry_->spans->emit(trace, 1, 0, "elastic.precopy", kSchedulerNode, t_start,
                              t_fence);
      telemetry_->spans->emit(trace, 2, 1, "elastic.fence", kSchedulerNode, t_fence,
                              obs::now_ns());
    }
    FPS_LOG(Info) << "elastic epoch " << membership_->epoch() << ": "
                  << (op.add ? "added" : "drained") << " server " << op.rank << " ("
                  << plan.moves.size() << " slices moved) at t=" << since_start_.seconds();
  }

  /// Fence-time sparse rebalance: rows move verbatim (values + optimizer
  /// state) to their post-epoch route_active() owner, so the state digest is
  /// placement-invariant and the serial oracle holds across epochs. Called
  /// with head_mu_ held and every sparse worker parked (no host dispatch can
  /// be touching the cores).
  void move_sparse_rows(const elastic::ElasticOp& op) {
    const std::vector<char> next = membership_->active_after(op);
    std::vector<std::vector<embed::SparseCore::MovedRow>> inbound(cfg_.num_servers);
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      if (!membership_->is_active(m)) continue;  // inactive slots hold no rows
      auto rows = head_sparse_[m]->core_for_fence().extract_moved_rows(next, m);
      for (auto& r : rows) {
        elastic_stats_.bytes_moved +=
            static_cast<std::int64_t>(r.data.size() * sizeof(float));
        const std::uint32_t owner = embed::route_active(r.table_id, r.row_id, next);
        inbound[owner].push_back(std::move(r));
        ++elastic_rows_;
      }
    }
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      if (!inbound[m].empty()) {
        head_sparse_[m]->core_for_fence().install_rows(std::move(inbound[m]));
      }
    }
    if (op.add) {
      // The joining host first sees pushes for the fence round: seed its
      // round clock so drainable() doesn't wait for rounds that predate it.
      const std::int64_t park =
          elastic::park_round_of(op, cfg_.max_iters, cfg_.sparse.rounds);
      head_sparse_[op.rank]->core_for_fence().seed_round_clock(park - 1);
    }
    for (const auto& sc : sparse_clients_) sc->set_active(next);
  }

  // --- crash-restart lifecycle (wall clock) -----------------------------

  void record_event(const char* kind, net::NodeId node) {
    std::scoped_lock lock(fault_mu_);
    fault_events_.push_back(FaultEvent{since_start_.seconds(), kind, node});
  }

  void take_checkpoints() {
    if (!cfg_.checkpoint_dir.empty() && !ckpt_dir_ready_) {
      std::error_code ec;
      std::filesystem::create_directories(cfg_.checkpoint_dir, ec);
      ckpt_dir_ready_ = true;
    }
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      if (chaos_ && chaos_->is_down(server_node(m))) continue;  // crashed: nothing to save
      auto blob = servers_[m]->save_state();
      if (!cfg_.checkpoint_dir.empty()) {
        const std::string path =
            cfg_.checkpoint_dir + "/server_" + std::to_string(m) + ".ckpt";
        if (!save_blob(path, blob)) {
          FPS_LOG(Warn) << "failed to write checkpoint blob " << path;
        }
      }
      {
        std::scoped_lock lock(ckpt_mu_);
        ckpt_store_[m] = std::move(blob);
      }
      metrics_.incr("server.checkpoints");
      record_event("checkpoint", server_node(m));
    }
  }

  /// Crash shard m's *current* head (the chain's surviving prefix shrinks on
  /// repeated crashes, so a second crash of the same rank kills the node
  /// promoted by the first).
  void do_crash(std::uint32_t m) {
    const net::NodeId victim = group_ ? group_->head_node(m) : server_node(m);
    chaos_->set_down(victim, true);
    ++server_crashes_;
    crash_time_[m] = since_start_.seconds();
    metrics_.incr("server.crashes");
    record_event("crash", victim);
    FPS_LOG(Info) << "server " << m << " (node " << victim
                  << ") crashed at t=" << since_start_.seconds();
  }

  [[nodiscard]] ReplicaSlot& slot_of(std::uint32_t m, std::uint32_t pos) {
    for (ReplicaSlot& s : replicas_) {
      if (s.m == m && s.pos == pos) return s;
    }
    FPS_CHECK(false) << "no replica slot for shard " << m << " pos " << pos;
    return replicas_.front();
  }

  /// Promote shard m's next chain position: build a Server on the replica's
  /// node id, install the replicated state, replay its pending log downstream,
  /// and rebind every worker via kPromote. Runs on the chaos thread; the slot
  /// mutex fences the handoff against the slot's dispatch thread.
  void do_promote(std::uint32_t m) {
    const std::uint32_t new_pos = group_->promote(m);
    ReplicaSlot& slot = slot_of(m, new_pos);
    ps::Server* raw = nullptr;
    embed::SparseHost* sparse_raw = nullptr;
    {
      std::scoped_lock lock(slot.mu);
      ps::ServerSpec spec = make_server_spec(m);
      spec.node_id = slot.node;
      spec.replica_successor = chain_.successor_of(m, new_pos);
      auto srv = std::make_unique<ps::Server>(std::move(spec), *bus_);
      srv->adopt_replica_state(slot.replica->release_state());
      raw = srv.get();
      slot.promoted = std::move(srv);  // the slot's dispatcher now routes here
      if (slot.sparse_replica) {
        // Promote the sparse twin in the same handoff: both shards of the
        // node change heads atomically w.r.t. the slot's dispatch thread.
        auto host =
            std::make_unique<embed::SparseHost>(make_sparse_host_spec(m, new_pos), *bus_);
        host->adopt(slot.sparse_replica->release_state());
        sparse_raw = host.get();
        slot.sparse_promoted = std::move(host);
      }
    }
    {
      std::scoped_lock lock(head_mu_);
      head_server_[m] = raw;
      if (sparse_raw != nullptr) head_sparse_[m] = sparse_raw;
    }
    ++failovers_;
    const double fo = since_start_.seconds() - crash_time_[m];
    failover_seconds_ = std::max(failover_seconds_, fo);
    metrics_.incr("replica.failovers");
    metrics_.set_gauge_max("replica.failover_seconds", fo);
    record_event("promoted", slot.node);
    FPS_LOG(Info) << "shard " << m << ": promoted chain pos " << new_pos << " (node "
                  << slot.node << ") at t=" << since_start_.seconds();
    // Restart the ack flow for entries stranded mid-chain by the crash.
    raw->replay_replication_log();
    if (sparse_raw != nullptr) sparse_raw->replay_replication_log();
    // View change: rebind the workers. Control-plane traffic — FaultyTransport
    // never faults kPromote (membership comes from a consensus service, not
    // the lossy data path).
    for (const auto& w : workers_) {
      net::Message p;
      p.type = net::MsgType::kPromote;
      p.src = slot.node;
      p.dst = w->client->node_id();
      p.server_rank = m;
      bus_->send(std::move(p));
    }
    for (const auto& sc : sparse_clients_) {
      net::Message p;
      p.type = net::MsgType::kPromote;
      p.src = slot.node;
      p.dst = sc->node_id();
      p.server_rank = m;
      bus_->send(std::move(p));
    }
    for (const auto& f : fleet_) {
      net::Message p;
      p.type = net::MsgType::kPromote;
      p.src = slot.node;
      p.dst = f->client->node_id();
      p.server_rank = m;
      bus_->send(std::move(p));
    }
    record_event("kPromote", slot.node);
    record_event("failover_end", slot.node);
    metrics_.incr("fault.failover_events");
  }

  void do_restart(std::uint32_t m) {
    std::vector<std::uint8_t> blob;
    {
      std::scoped_lock lock(ckpt_mu_);
      blob = ckpt_store_[m];
    }
    FPS_CHECK(!blob.empty()) << "server " << m << " restarting without a checkpoint";
    FPS_CHECK(servers_[m]->restore_state(blob))
        << "server " << m << " checkpoint blob failed to restore";
    chaos_->set_down(server_node(m), false);
    metrics_.incr("server.recoveries");
    record_event("restart", server_node(m));
    FPS_LOG(Info) << "server " << m << " restarted from checkpoint at t="
                  << since_start_.seconds();
    servers_[m]->begin_recovery();
  }

  /// Background chaos driver: fires scheduled crash/restart events and takes
  /// periodic checkpoints against the wall clock since run start.
  void chaos_loop(const std::stop_token& st) {
    struct CrashState {
      fault::CrashSpec spec;
      int phase = 0;  // 0 = armed, 1 = down (awaiting restart), 2 = done,
                      // 3 = down (awaiting chain promotion)
      double promote_at = 0.0;  // wall time to promote (phase 3)
    };
    std::vector<CrashState> crashes;
    crashes.reserve(cfg_.faults.crashes.size());
    for (const auto& c : cfg_.faults.crashes) {
      FPS_CHECK(c.server_rank < cfg_.num_servers)
          << "crash schedule names server " << c.server_rank << " of " << cfg_.num_servers;
      FPS_CHECK(chaos_ != nullptr) << "crash schedule without a fault plan";
      crashes.push_back(CrashState{c, 0});
    }
    std::vector<char> await_recovered(cfg_.num_servers, 0);
    const double every = cfg_.faults.checkpoint_every;
    double next_ckpt = every > 0.0 ? since_start_.seconds() + every
                                   : std::numeric_limits<double>::infinity();
    while (!st.stop_requested()) {
      const double now = since_start_.seconds();
      for (auto& c : crashes) {
        if (c.phase == 0 && now >= c.spec.crash_time) {
          do_crash(c.spec.server_rank);
          if (chain_.replicated()) {
            // Chain failover absorbs the crash: promote the successor after
            // the failure-detection delay instead of restarting the process.
            if (!group_->exhausted(c.spec.server_rank)) {
              c.promote_at = since_start_.seconds() + cfg_.failover_detect_seconds;
              c.phase = 3;
              // Failover lifecycle bracket: starts at crash detection, ends
              // when do_promote() finishes the handoff (trace_export renders
              // both as instant events on the victim/successor tracks).
              record_event("failover_start", group_ ? group_->head_node(c.spec.server_rank)
                                                    : server_node(c.spec.server_rank));
            } else {
              c.phase = 2;  // chain exhausted: shard stays down
              FPS_LOG(Warn) << "shard " << c.spec.server_rank
                            << ": replication chain exhausted, no successor left to "
                            << "promote — shard stays down";
            }
          } else {
            c.phase = 1;
          }
        } else if (c.phase == 1 && now >= c.spec.restart_time) {
          do_restart(c.spec.server_rank);
          await_recovered[c.spec.server_rank] = 1;
          c.phase = 2;
        } else if (c.phase == 3 && now >= c.promote_at) {
          do_promote(c.spec.server_rank);
          c.phase = 2;
        }
      }
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        if (await_recovered[m] && !servers_[m]->recovering()) {
          await_recovered[m] = 0;
          record_event("recovered", server_node(m));
        }
      }
      if (checkpointing_ && now >= next_ckpt) {
        take_checkpoints();
        next_ckpt = since_start_.seconds() + every;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  void record_eval(std::int64_t iter) {
    const auto params = global_params();
    ml::Workspace ws;
    AccuracyPoint pt;
    pt.time = since_start_.seconds();
    pt.iter = iter;
    pt.accuracy = ml::test_accuracy(*model_, params, data_, ws);
    pt.loss = ml::test_loss(*model_, params, data_, ws);
    std::scoped_lock lock(curve_mu_);
    curve_.push_back(pt);
  }

  [[nodiscard]] std::vector<float> global_params() const {
    std::vector<float> flat(model_->num_params(), 0.0f);
    std::scoped_lock lock(head_mu_);
    for (const ps::Server* s : head_server_) s->snapshot_into(flat);
    return flat;
  }

  /// Every ps::Server alive in this run: the initial heads plus any servers
  /// promoted from replicas (their counters all contribute to totals). Only
  /// called from collect(), after every thread has been joined.
  template <typename F>
  void for_each_server(F&& f) const {
    for (const auto& s : servers_) f(*s);
    for (const ReplicaSlot& slot : replicas_) {
      if (slot.promoted) f(*slot.promoted);
    }
  }

  /// Same sweep over sparse hosts (initial + promoted).
  template <typename F>
  void for_each_sparse_host(F&& f) const {
    for (const auto& h : sparse_hosts_) f(*h);
    for (const ReplicaSlot& slot : replicas_) {
      if (slot.sparse_promoted) f(*slot.sparse_promoted);
    }
  }

  ExperimentResult collect(double makespan) {
    ExperimentResult r;
    r.total_time = makespan;
    double compute_sum = 0.0;
    double comm_sum = 0.0;
    for (const auto& w : workers_) {
      compute_sum += w->compute_seconds;
      comm_sum += w->comm_seconds;
    }
    const auto nw = static_cast<double>(cfg_.num_workers);
    r.compute_time = compute_sum / nw;
    r.comm_time = comm_sum / nw;
    // Engine-derived sync stats come from the shard's *current* head (a
    // promoted server's fresh engine replayed the replicated progress; the
    // crashed head's engine is stale history). kPsLite bypasses engines.
    if (cfg_.arch != Arch::kPsLite) {
      for (const ps::Server* s : head_server_) {
        r.dpr_total += s->engine().dpr_total();
        r.staleness.merge(s->engine().staleness_served());
        r.release_delay.merge(s->engine().release_delay());
      }
    }
    r.dprs_per_100_iters =
        static_cast<double>(r.dpr_total) * 100.0 / static_cast<double>(cfg_.max_iters);
    r.messages = transport_.delivered();
    r.iterations = cfg_.max_iters;
    r.shard_imbalance = sharding_.imbalance();
    if (scheduler_) {
      r.extra["scheduler_dprs"] = static_cast<double>(scheduler_->engine().dpr_total());
      r.extra["scheduler_grants"] = static_cast<double>(scheduler_->grants_issued());
      r.extra["scheduler_dedup_hits"] = static_cast<double>(scheduler_->dedup_hits());
    }

    for (const auto& w : workers_) r.pushes_filtered += w->pushes_filtered;

    // --- fault & reliability outcomes -----------------------------------
    if (chaos_) {
      r.dropped = static_cast<std::int64_t>(chaos_->dropped() + chaos_->dropped_down());
      r.duplicated = static_cast<std::int64_t>(chaos_->duplicated());
      r.delayed = static_cast<std::int64_t>(chaos_->delayed());
    }
    for (const auto& w : workers_) r.worker_retries += w->client->retries();
    for_each_server([&r](const ps::Server& s) {
      r.server_dedup_hits += s.dedup_hits();
      r.server_recoveries += s.recoveries();
      r.replicated_updates += s.replica_forwards();
      r.rolled_back_updates += s.synth_replayed();
    });
    r.server_crashes = server_crashes_;
    // --- replication outcomes -------------------------------------------
    r.failovers = failovers_;
    r.failover_seconds = failover_seconds_;
    if (chain_.replicated()) {
      std::size_t log_hw = 0;
      for_each_server([&log_hw](const ps::Server& s) {
        log_hw = std::max(log_hw, s.replication_high_water());
      });
      std::int64_t applied = 0;
      std::int64_t repairs = 0;
      for (const ReplicaSlot& slot : replicas_) {
        applied += slot.replica->applied();
        repairs += slot.replica->reforwards();
      }
      for_each_server([&repairs](const ps::Server& s) { repairs += s.repl_repairs(); });
      if (r.replicated_updates > 0) metrics_.incr("replica.forwards", r.replicated_updates);
      metrics_.set_gauge_max("replica.log_high_water", static_cast<double>(log_hw));
      r.extra["replication_log_high_water"] = static_cast<double>(log_hw);
      r.extra["replica_applied"] = static_cast<double>(applied);
      r.extra["repl_repairs"] = static_cast<double>(repairs);
    }
    if (r.worker_retries > 0) metrics_.incr("worker.retries", r.worker_retries);
    if (r.server_dedup_hits > 0) metrics_.incr("server.dedup_hits", r.server_dedup_hits);
    // --- ingest-path stats (DESIGN.md §11) --------------------------------
    {
      std::int64_t ring_stalls = 0;
      std::size_t ring_depth_hw = 0;
      std::int64_t sweeps = 0;
      std::size_t max_batch = 0;
      std::uint32_t pinned = 0;
      for_each_server([&](const ps::Server& s) {
        ring_stalls += s.ring_stalls();
        ring_depth_hw = std::max(ring_depth_hw, s.ring_depth_high_water());
        sweeps += s.apply_sweeps();
        max_batch = std::max(max_batch, s.max_batch());
        pinned += s.pinned_threads();
      });
      for_each_sparse_host([&](const embed::SparseHost& h) {
        ring_stalls += static_cast<std::int64_t>(h.reducer_ring_stalls());
        ring_depth_hw = std::max(ring_depth_hw, h.reducer_ring_depth_high_water());
      });
      if (ring_stalls > 0) metrics_.incr("server.ring_stalls", ring_stalls);
      metrics_.set_gauge_max("server.ring_depth", static_cast<double>(ring_depth_hw));
      const std::uint64_t zc = transport_.recv_zero_copy_frames();
      if (zc > 0) metrics_.incr("net.recv_zero_copy_frames", static_cast<std::int64_t>(zc));
      r.extra["apply_sweeps"] = static_cast<double>(sweeps);
      r.extra["max_apply_batch"] = static_cast<double>(max_batch);
      r.extra["ring_stalls"] = static_cast<double>(ring_stalls);
      r.extra["ring_depth_high_water"] = static_cast<double>(ring_depth_hw);
      r.extra["recv_zero_copy_frames"] = static_cast<double>(zc);
      r.extra["pinned_threads"] = static_cast<double>(pinned);
    }
    // --- sparse embedding outcomes ---------------------------------------
    if (cfg_.sparse.enabled()) {
      std::uint64_t state_digest = 0;
      std::size_t parked = 0;
      for (const embed::SparseHost* h : head_sparse_) {
        state_digest += h->state_digest();
        parked += h->parked_pulls();
      }
      std::uint64_t pull_digest = 0;
      std::int64_t sparse_retries = 0;
      for (const auto& sc : sparse_clients_) {
        pull_digest += sc->pull_digest();
        sparse_retries += sc->retries();
      }
      put_u64_extra(r, "sparse_state_digest", state_digest);
      put_u64_extra(r, "sparse_pull_digest", pull_digest);
      double dedup = 0, pushes = 0, rows = 0, pulls = 0, fwds = 0, repairs = 0;
      for_each_sparse_host([&](const embed::SparseHost& h) {
        dedup += static_cast<double>(h.dedup_hits());
        pushes += static_cast<double>(h.pushes_ingested());
        rows += static_cast<double>(h.rows_applied());
        pulls += static_cast<double>(h.pulls_answered());
        fwds += static_cast<double>(h.replica_forwards());
        repairs += static_cast<double>(h.repl_repairs());
      });
      r.extra["sparse_dedup_hits"] = dedup;
      r.extra["sparse_pushes"] = pushes;
      r.extra["sparse_rows_applied"] = rows;
      r.extra["sparse_pulls_answered"] = pulls;
      r.extra["sparse_replica_forwards"] = fwds;
      r.extra["sparse_repl_repairs"] = repairs;
      r.extra["sparse_retries"] = static_cast<double>(sparse_retries);
      r.extra["sparse_parked_pulls"] = static_cast<double>(parked);
    }
    // --- elastic membership outcomes (DESIGN.md §14) ----------------------
    if (membership_) {
      std::int64_t bytes = elastic_stats_.bytes_moved;  // sparse row moves
      std::int64_t deltas = 0;
      for_each_server([&](const ps::Server& s) {
        bytes += s.migrate_bytes();
        deltas += s.migrate_deltas();
      });
      r.elastic_migrations = elastic_stats_.migrations;
      r.elastic_bytes_moved = bytes;
      r.elastic_epoch = static_cast<std::int64_t>(membership_->epoch());
      r.elastic_stall_seconds = elastic_stats_.rebind_stall_seconds;
      r.elastic_migrate_seconds = elastic_stats_.migrate_seconds;
      if (bytes > 0) metrics_.incr("elastic.bytes_moved", bytes);
      metrics_.set_gauge_max("elastic.rebind_stall_seconds",
                             elastic_stats_.rebind_stall_seconds);
      r.extra["elastic_deltas"] = static_cast<double>(deltas);
      r.extra["elastic_rows_moved"] = static_cast<double>(elastic_rows_);
      r.extra["elastic_active_servers"] =
          static_cast<double>(membership_->view().num_active());
    }
    // --- read-path outcomes (DESIGN.md §13) -------------------------------
    for (const ReplicaSlot& slot : replicas_) {
      r.replica_reads_served += slot.replica->reads_served();
      r.replica_read_fallbacks += slot.replica->read_fallbacks();
      if (slot.sparse_replica) {
        r.replica_reads_served += slot.sparse_replica->reads_served();
        r.replica_read_fallbacks += slot.sparse_replica->read_fallbacks();
      }
    }
    for_each_server([&r](const ps::Server& s) { r.head_reads_served += s.bounded_reads(); });
    for (const auto& w : workers_) r.read_violations += w->client->read_violations();
    if (!fleet_.empty()) {
      double first = std::numeric_limits<double>::max();
      double last = 0.0;
      std::int64_t redirects = 0;
      for (const auto& f : fleet_) {
        r.fleet_pulls += cfg_.read.pulls;
        r.read_violations += f->client->read_violations();
        redirects += f->client->read_redirects();
        r.worker_retries += f->client->retries();
        first = std::min(first, f->start);
        last = std::max(last, f->finish);
      }
      r.fleet_pull_seconds = last - first;
      r.fleet_throughput = r.fleet_pull_seconds > 0.0
                               ? static_cast<double>(r.fleet_pulls) / r.fleet_pull_seconds
                               : 0.0;
      r.extra["fleet_redirects"] = static_cast<double>(redirects);
    }
    if (r.replica_reads_served > 0) metrics_.incr("replica.reads_served", r.replica_reads_served);
    if (r.replica_read_fallbacks > 0) {
      metrics_.incr("replica.read_fallbacks", r.replica_read_fallbacks);
    }
    if (cfg_.read.sparse) {
      std::int64_t sparse_replica_reads = 0;
      std::int64_t sparse_redirects = 0;
      for (const auto& sc : sparse_clients_) {
        sparse_replica_reads += sc->replica_reads();
        sparse_redirects += sc->read_redirects();
      }
      r.extra["sparse_replica_reads"] = static_cast<double>(sparse_replica_reads);
      r.extra["sparse_read_redirects"] = static_cast<double>(sparse_redirects);
    }
    // --- telemetry (src/obs, DESIGN.md §12) -------------------------------
    if (telemetry_ != nullptr) {
      if (snapshotter_) {
        snapshotter_->stop();  // final partial interval flushes here
        r.telemetry_intervals =
            static_cast<std::int64_t>(snapshotter_->intervals_written());
      }
      if (telemetry_->spans != nullptr) {
        r.spans = telemetry_->spans->drain();
        const std::uint64_t dropped = telemetry_->spans->dropped();
        if (dropped > 0) {
          metrics_.incr("obs.spans_dropped", static_cast<std::int64_t>(dropped));
        }
        r.extra["telemetry_spans"] = static_cast<double>(r.spans.size());
        r.extra["telemetry_span_allocs"] =
            static_cast<double>(telemetry_->spans->allocations());
      }
      r.extra["telemetry_instrument_allocs"] =
          static_cast<double>(metrics_.registry().instrument_allocations());
      r.prometheus = obs::render_prometheus(
          metrics_.registry(), {{"arch", to_string(cfg_.arch)},
                                {"backend", to_string(cfg_.backend)},
                                {"sync", cfg_.sync.kind},
                                {"seed", std::to_string(cfg_.seed)}});
    }
    r.counters = metrics_.counters();
    {
      std::scoped_lock lock(fault_mu_);
      r.fault_events = std::move(fault_events_);
    }

    auto params = global_params();
    ml::Workspace ws;
    r.final_accuracy = ml::test_accuracy(*model_, params, data_, ws);
    r.final_loss = ml::test_loss(*model_, params, data_, ws);
    r.final_params = std::move(params);
    {
      std::scoped_lock lock(curve_mu_);
      r.curve = curve_;
    }
    r.curve.push_back(AccuracyPoint{makespan, cfg_.max_iters, r.final_accuracy, r.final_loss});
    return r;
  }

  const ExperimentConfig& cfg_;
  ml::Dataset data_;
  std::unique_ptr<ml::Model> model_;
  std::vector<float> w0_;
  ps::Sharding sharding_;
  // Destruction order matters: chaos_ (wraps transport_, defers via timers_)
  // dies first, then timers_ (joins its thread, dropping deferred sends),
  // then the inner transport.
  net::InprocTransport transport_;
  fault::TimerQueue timers_;
  std::unique_ptr<fault::FaultyTransport> chaos_;  ///< set iff cfg.faults.any()
  net::Transport* bus_ = nullptr;  ///< the transport everyone actually talks to
  Metrics metrics_;
  // --- telemetry (src/obs) ----------------------------------------------
  // Declared before the components so every cached instrument/recorder
  // pointer they hold outlives them. telemetry_ is null when disabled —
  // recording sites then cost one predicted branch.
  obs::SpanRecorder span_recorder_;
  obs::Telemetry telemetry_handle_;
  obs::Telemetry* telemetry_ = nullptr;
  std::unique_ptr<obs::Snapshotter> snapshotter_;
  bool reliable_ = false;
  bool checkpointing_ = false;
  bool ckpt_dir_ready_ = false;
  std::vector<std::unique_ptr<ps::Server>> servers_;
  std::unique_ptr<ps::Scheduler> scheduler_;
  std::vector<std::unique_ptr<PerWorker>> workers_;
  // --- chain replication (src/replica) ---------------------------------
  replica::ChainLayout chain_;
  std::unique_ptr<replica::ReplicaGroup> group_;  ///< set iff replication_factor > 1
  std::deque<ReplicaSlot> replicas_;  // deque: stable addresses for handlers
  mutable std::mutex head_mu_;  ///< guards head_server_ rebinds at promotion
  std::vector<ps::Server*> head_server_;  ///< current head of each shard's chain
  // --- sparse embedding job (src/embed) ---------------------------------
  std::vector<std::unique_ptr<embed::SparseHost>> sparse_hosts_;
  std::vector<embed::SparseHost*> head_sparse_;  ///< rebinds guarded by head_mu_
  std::vector<std::unique_ptr<embed::SparseWorkerClient>> sparse_clients_;
  // --- inference fleet (DESIGN.md §13) -----------------------------------
  std::vector<std::unique_ptr<FleetClient>> fleet_;
  // --- elastic membership (src/elastic, DESIGN.md §14) -------------------
  std::unique_ptr<elastic::Membership> membership_;  ///< set iff cfg.elastic.enabled()
  std::mutex gate_mu_;  ///< guards every park counter and completed_ops_
  std::condition_variable gate_cv_;
  std::size_t completed_ops_ = 0;                 ///< committed elastic ops
  std::vector<std::uint32_t> dense_parked_at_;    ///< per schedule index
  std::vector<std::uint32_t> sparse_parked_at_;   ///< per schedule index
  std::uint32_t dense_done_ = 0;   ///< dense workers past their final iteration
  std::uint32_t sparse_done_ = 0;  ///< sparse workers past their final round
  std::uint32_t fleet_done_ = 0;   ///< fleet clients past their final pull
  std::uint32_t fleet_parked_ = 0;
  bool fleet_hold_ = false;  ///< parks fleet clients between pulls at the fence
  std::atomic<std::int64_t> w0_progress_{0};  ///< iterations completed by worker 0
  std::uint64_t next_migration_id_ = 1;       ///< controller thread only
  elastic::ElasticStats elastic_stats_;       ///< controller thread, then collect()
  std::int64_t elastic_rows_ = 0;             ///< sparse rows moved at fences
  std::vector<double> crash_time_;  ///< last crash wall time per shard
  std::int64_t failovers_ = 0;
  double failover_seconds_ = 0.0;
  Stopwatch since_start_;
  std::mutex curve_mu_;
  std::vector<AccuracyPoint> curve_;
  std::mutex ckpt_mu_;
  std::vector<std::vector<std::uint8_t>> ckpt_store_;  // latest blob per server
  std::mutex fault_mu_;
  std::vector<FaultEvent> fault_events_;
  std::int64_t server_crashes_ = 0;
};

}  // namespace

ExperimentResult run_threads(const ExperimentConfig& config) {
  ThreadRun run(config);
  return run.run();
}

}  // namespace fluentps::core
