#include "core/thread_runtime.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <thread>

#include "baselines/ssptable_cache.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "ml/eval.h"
#include "ml/ops.h"
#include "net/inproc_transport.h"
#include "ps/scheduler.h"
#include "ps/server.h"
#include "ps/slicing.h"
#include "ps/worker.h"

namespace fluentps::core {
namespace {

constexpr net::NodeId kSchedulerNode = 0;
net::NodeId server_node(std::uint32_t m) { return 1 + m; }
net::NodeId worker_node(std::uint32_t m_servers, std::uint32_t n) { return 1 + m_servers + n; }

class ThreadRun {
 public:
  explicit ThreadRun(const ExperimentConfig& cfg)
      : cfg_(cfg),
        data_(ml::Dataset::synthesize(cfg.data)),
        model_(ml::make_model(cfg.model, data_.dim(), data_.num_classes())) {
    FPS_CHECK(cfg.num_workers > 0 && cfg.num_servers > 0) << "empty cluster";
    if (!cfg.initial_params.empty()) {
      FPS_CHECK(cfg.initial_params.size() == model_->num_params())
          << "initial_params size mismatch";
      w0_ = cfg.initial_params;
    } else {
      w0_.resize(model_->num_params());
      Rng init_rng(cfg.seed, /*stream=*/0x1717);
      model_->init_params(w0_, init_rng);
    }
    const auto slicer = ps::make_slicer(cfg.slicer, cfg.eps_chunk);
    sharding_ = slicer->shard(model_->layer_sizes(), cfg.num_servers);
    build_servers();
    build_scheduler();
    build_clients();
  }

  ExperimentResult run() {
    Stopwatch total;
    {
      std::vector<std::jthread> threads;
      threads.reserve(cfg_.num_workers);
      for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
        threads.emplace_back([this, n] { worker_loop(n); });
      }
    }  // join all workers
    const double makespan = total.seconds();
    transport_.shutdown();
    return collect(makespan);
  }

 private:
  struct PerWorker {
    std::unique_ptr<ps::WorkerClient> client;
    double compute_seconds = 0.0;
    double comm_seconds = 0.0;
    double last_loss = 0.0;
    std::int64_t pushes_filtered = 0;
  };

  void build_servers() {
    const bool baseline = cfg_.arch == Arch::kPsLite;
    if (!cfg_.per_server_sync.empty()) {
      FPS_CHECK(cfg_.per_server_sync.size() == cfg_.num_servers)
          << "per_server_sync needs one entry per server";
      FPS_CHECK(cfg_.arch == Arch::kFluentPS)
          << "per-server sync models require the FluentPS architecture";
    }
    for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
      ps::ServerSpec spec;
      spec.node_id = server_node(m);
      spec.server_rank = m;
      spec.num_workers = cfg_.num_workers;
      spec.layout = sharding_.shards[m];
      spec.initial_shard.resize(spec.layout.total);
      spec.layout.gather(w0_, spec.initial_shard);
      spec.engine.num_workers = cfg_.num_workers;
      spec.engine.mode = cfg_.dpr_mode;
      const ps::SyncModelSpec& sync_spec =
          cfg_.per_server_sync.empty() ? cfg_.sync : cfg_.per_server_sync[m];
      spec.engine.model = ps::make_sync_model(sync_spec, cfg_.num_workers);
      spec.engine.seed = derive_seed(cfg_.seed, 0x5E57E8 + m);
      spec.ack_pushes = baseline;
      spec.respond_unconditionally = baseline;
      auto server = std::make_unique<ps::Server>(std::move(spec), transport_);
      ps::Server* raw = server.get();
      transport_.register_node(raw->node_id(),
                               [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      servers_.push_back(std::move(server));
    }
  }

  void build_scheduler() {
    if (cfg_.arch != Arch::kPsLite) return;
    ps::SchedulerSpec spec;
    spec.node_id = kSchedulerNode;
    spec.num_workers = cfg_.num_workers;
    for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
      spec.worker_nodes.push_back(worker_node(cfg_.num_servers, n));
    }
    spec.engine.num_workers = cfg_.num_workers;
    spec.engine.mode = ps::DprMode::kSoftBarrier;
    spec.engine.model = ps::make_sync_model(cfg_.sync, cfg_.num_workers);
    spec.engine.seed = derive_seed(cfg_.seed, 0x5C7ED);
    scheduler_ = std::make_unique<ps::Scheduler>(std::move(spec), transport_);
    transport_.register_node(kSchedulerNode,
                             [this](net::Message&& msg) { scheduler_->handle(std::move(msg)); });
  }

  void build_clients() {
    workers_.reserve(cfg_.num_workers);
    for (std::uint32_t n = 0; n < cfg_.num_workers; ++n) {
      ps::WorkerSpec spec;
      spec.node_id = worker_node(cfg_.num_servers, n);
      spec.worker_rank = n;
      for (std::uint32_t m = 0; m < cfg_.num_servers; ++m) {
        spec.server_nodes.push_back(server_node(m));
      }
      spec.sharding = &sharding_;
      spec.scheduler_node = kSchedulerNode;
      auto pw = std::make_unique<PerWorker>();
      pw->client = std::make_unique<ps::WorkerClient>(std::move(spec), transport_);
      ps::WorkerClient* raw = pw->client.get();
      transport_.register_node(raw->node_id(),
                               [raw](net::Message&& msg) { raw->handle(std::move(msg)); });
      workers_.push_back(std::move(pw));
    }
  }

  void worker_loop(std::uint32_t rank) {
    PerWorker& pw = *workers_[rank];
    ps::WorkerClient& client = *pw.client;
    const baselines::SspTableCachePolicy cache(cfg_.num_workers, cfg_.ssptable_divisor);

    std::vector<float> params = w0_;
    std::vector<float> pulled(model_->num_params());
    std::vector<float> grad(model_->num_params());
    std::vector<float> update(model_->num_params());
    std::vector<float> pending;  // significance filter accumulator
    auto opt = ml::make_optimizer(cfg_.opt, *model_);
    ml::BatchSampler sampler(data_, rank, cfg_.num_workers, cfg_.batch_size, cfg_.seed);
    ml::Workspace ws;
    std::size_t next_switch = 0;

    for (std::int64_t iter = 0; iter < cfg_.max_iters; ++iter) {
      Stopwatch compute;
      const ml::Batch batch = sampler.next();
      pw.last_loss = model_->grad(params, batch, grad, ws);
      opt->compute_update(params, grad, iter, update);
      pw.compute_seconds += compute.seconds();

      Stopwatch comm;
      if (cfg_.push_significance_threshold > 0.0) {
        if (pending.empty()) pending.assign(model_->num_params(), 0.0f);
        ml::axpy(1.0f, update, pending);
        const double wn = ml::l2_norm(params);
        const double sf = wn > 0.0 ? ml::l2_norm(pending) / wn : 1.0;
        if (sf >= cfg_.push_significance_threshold || iter + 1 >= cfg_.max_iters) {
          client.push(pending, iter);
          std::fill(pending.begin(), pending.end(), 0.0f);
        } else {
          ++pw.pushes_filtered;
          client.push_metadata(iter);
        }
      } else {
        client.push(update, iter);
      }
      if (cfg_.arch == Arch::kPsLite) {
        client.wait_push_acks();
        client.report_and_wait_grant(iter);
      }
      const std::uint64_t ticket = client.pull(iter);
      client.wait_pull(ticket, pulled);
      if (cfg_.arch != Arch::kSspTable || cache.apply_fresh(iter)) {
        params = pulled;
      }
      // else: SSPtable baseline keeps the frozen stale cache (see
      // baselines/ssptable_cache.h).
      if (cfg_.push_significance_threshold > 0.0 && !pending.empty()) {
        ml::axpy(1.0f, pending, params);  // keep local contribution visible
      }
      pw.comm_seconds += comm.seconds();

      if (rank == 0) {
        while (next_switch < cfg_.sync_schedule.size() &&
               iter + 1 >= cfg_.sync_schedule[next_switch].first) {
          const auto& spec = cfg_.sync_schedule[next_switch].second;
          for (auto& server : servers_) {
            auto new_model = ps::make_sync_model(spec, cfg_.num_workers);
            server->set_pull_condition(std::move(new_model.pull));
            server->set_push_condition(std::move(new_model.push));
          }
          ++next_switch;
        }
        if (cfg_.eval_every > 0 && (iter + 1) % cfg_.eval_every == 0) {
          record_eval(iter + 1);
        }
      }
    }
  }

  void record_eval(std::int64_t iter) {
    const auto params = global_params();
    ml::Workspace ws;
    AccuracyPoint pt;
    pt.time = since_start_.seconds();
    pt.iter = iter;
    pt.accuracy = ml::test_accuracy(*model_, params, data_, ws);
    pt.loss = ml::test_loss(*model_, params, data_, ws);
    std::scoped_lock lock(curve_mu_);
    curve_.push_back(pt);
  }

  [[nodiscard]] std::vector<float> global_params() const {
    std::vector<float> flat(model_->num_params(), 0.0f);
    for (const auto& s : servers_) s->snapshot_into(flat);
    return flat;
  }

  ExperimentResult collect(double makespan) {
    ExperimentResult r;
    r.total_time = makespan;
    double compute_sum = 0.0;
    double comm_sum = 0.0;
    for (const auto& w : workers_) {
      compute_sum += w->compute_seconds;
      comm_sum += w->comm_seconds;
    }
    const auto nw = static_cast<double>(cfg_.num_workers);
    r.compute_time = compute_sum / nw;
    r.comm_time = comm_sum / nw;
    for (const auto& s : servers_) {
      if (cfg_.arch == Arch::kPsLite) break;  // baseline servers bypass engines
      r.dpr_total += s->engine().dpr_total();
      r.staleness.merge(s->engine().staleness_served());
      r.release_delay.merge(s->engine().release_delay());
    }
    r.dprs_per_100_iters =
        static_cast<double>(r.dpr_total) * 100.0 / static_cast<double>(cfg_.max_iters);
    r.messages = transport_.delivered();
    r.iterations = cfg_.max_iters;
    r.shard_imbalance = sharding_.imbalance();
    if (scheduler_) {
      r.extra["scheduler_dprs"] = static_cast<double>(scheduler_->engine().dpr_total());
      r.extra["scheduler_grants"] = static_cast<double>(scheduler_->grants_issued());
    }

    for (const auto& w : workers_) r.pushes_filtered += w->pushes_filtered;

    auto params = global_params();
    ml::Workspace ws;
    r.final_accuracy = ml::test_accuracy(*model_, params, data_, ws);
    r.final_loss = ml::test_loss(*model_, params, data_, ws);
    r.final_params = std::move(params);
    {
      std::scoped_lock lock(curve_mu_);
      r.curve = curve_;
    }
    r.curve.push_back(AccuracyPoint{makespan, cfg_.max_iters, r.final_accuracy, r.final_loss});
    return r;
  }

  const ExperimentConfig& cfg_;
  ml::Dataset data_;
  std::unique_ptr<ml::Model> model_;
  std::vector<float> w0_;
  ps::Sharding sharding_;
  net::InprocTransport transport_;
  std::vector<std::unique_ptr<ps::Server>> servers_;
  std::unique_ptr<ps::Scheduler> scheduler_;
  std::vector<std::unique_ptr<PerWorker>> workers_;
  Stopwatch since_start_;
  std::mutex curve_mu_;
  std::vector<AccuracyPoint> curve_;
};

}  // namespace

ExperimentResult run_threads(const ExperimentConfig& config) {
  ThreadRun run(config);
  return run.run();
}

}  // namespace fluentps::core
