// Thread backend: real std::jthread workers and Server nodes over the
// in-process transport. Wall-clock timing; used by tests, examples and any
// experiment that needs genuine concurrency rather than simulated scale.
#pragma once

#include "core/experiment.h"

namespace fluentps::core {

/// Run `config` with real threads. Worker compute is the actual gradient
/// computation (no sleep injection); config.compute is ignored.
ExperimentResult run_threads(const ExperimentConfig& config);

}  // namespace fluentps::core
