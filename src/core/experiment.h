// Experiment configuration and results — the single entry point benches,
// examples and tests share: fill an ExperimentConfig, call run_experiment(),
// read the ExperimentResult.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "elastic/membership.h"
#include "embed/workload.h"
#include "fault/fault_plan.h"
#include "fault/retry_policy.h"
#include "ml/dataset.h"
#include "ml/model.h"
#include "ml/optimizer.h"
#include "obs/span.h"
#include "obs/telemetry.h"
#include "ps/conditions.h"
#include "ps/sync_engine.h"
#include "sim/compute_model.h"
#include "sim/network_model.h"

namespace fluentps::core {

/// Which system architecture to run (DESIGN.md §2 items 9 & 11).
enum class Arch : std::uint8_t {
  kFluentPS = 0,   ///< per-server conditions, overlap synchronization
  kPsLite = 1,     ///< scheduler-gated non-overlap baseline (PS-Lite style)
  kSspTable = 2,   ///< FluentPS transport + SSPtable worker-cache baseline
};

enum class Backend : std::uint8_t {
  kSim = 0,      ///< discrete-event simulation (deterministic, virtual time)
  kThreads = 1,  ///< real jthreads over the in-process transport (wall time)
};

Arch parse_arch(const std::string& s);
Backend parse_backend(const std::string& s);
const char* to_string(Arch a) noexcept;
const char* to_string(Backend b) noexcept;

/// Read-path configuration (DESIGN.md §13): staleness-bounded replica read
/// offloading plus an optional read-only "inference fleet" sharing the
/// cluster with the training job.
struct ReadSpec {
  /// Pull-only clients to run alongside training (0 = no fleet). Each fleet
  /// client issues `pulls` whole-model bounded pulls, using the highest
  /// horizon it has observed as its clock.
  std::uint32_t fleet = 0;
  std::int64_t pulls = 0;

  /// ReadOptions for fleet pulls (and for sparse training pulls when
  /// `sparse` is set): how many clocks a serving node's horizon may trail
  /// the reader's clock, and whether reads round-robin across chain
  /// replicas at all (false = head-only; the A/B baseline for the
  /// read-offload ablation).
  std::int64_t max_staleness_clocks = 3;
  bool prefer_replica = true;

  /// Sim backend: per-pull client think time (seconds) between a response
  /// and the next request. 0 = closed loop at full speed.
  double think_seconds = 0.0;

  /// Threads backend: modeled per-read service cost at every serving node
  /// (head and replicas) — the dispatch thread sleeps this long per bounded
  /// read, making per-node read service the measured bottleneck the way
  /// `server_proc_seconds` does on the sim backend. 0 = memcpy speed.
  double serve_seconds = 0.0;

  /// Route the sparse job's training pulls through the bounded-read path
  /// with bound 0 (bit-identical responses; offloads pull service to the
  /// chain). Requires replication_factor > 1 to change anything.
  bool sparse = false;

  [[nodiscard]] bool fleet_enabled() const noexcept { return fleet > 0 && pulls > 0; }
};

struct ExperimentConfig {
  // Cluster shape.
  std::uint32_t num_workers = 8;
  std::uint32_t num_servers = 1;
  std::int64_t max_iters = 500;  ///< iterations per worker

  // Synchronization.
  ps::SyncModelSpec sync;
  ps::DprMode dpr_mode = ps::DprMode::kLazy;

  /// Per-server synchronization models (Figure 2: "server node 1 uses SSP,
  /// server node 2 uses PSSP, server node M uses drop stragglers"). When
  /// non-empty it must have num_servers entries; entry m configures server
  /// rank m and `sync` is ignored. FluentPS arch only.
  std::vector<ps::SyncModelSpec> per_server_sync;

  // Placement.
  std::string slicer = "eps";  ///< "eps" | "default"
  std::size_t eps_chunk = 1024;

  // Architecture / backend.
  Arch arch = Arch::kFluentPS;
  Backend backend = Backend::kSim;

  // Learning task.
  ml::ModelSpec model;
  ml::DataSpec data;
  ml::OptimizerSpec opt;
  std::size_t batch_size = 16;  ///< per-worker minibatch

  // Timing models (sim backend).
  sim::ComputeModelSpec compute;
  sim::NetworkSpec net;

  // Bookkeeping.
  std::uint64_t seed = 1;
  std::int64_t eval_every = 0;  ///< evaluate test accuracy every k iterations of
                                ///< worker 0 (0 = final evaluation only)
  double ssptable_divisor = 1.0;  ///< SSPtable cache model: period = N/divisor

  /// PS-Lite baseline: per-message serial processing time at the centralized
  /// scheduler. The paper identifies the single scheduler as the bottleneck
  /// ("the scheduler of PS-Lite ... can only achieve sub-optimization";
  /// "the centralized scheduler was a bottleneck because it received the
  /// notifications from all workers", §II-B/§V-B): every progress report and
  /// grant is handled serially, so per-iteration overhead grows as O(N).
  /// The default covers one full report-and-grant transaction (receive,
  /// deserialize, progress-table update, grant serialize + send) on the
  /// scheduler's single dispatch thread.
  double pslite_scheduler_proc_seconds = 8e-3;

  /// Server-side request processing model (sim backend). Each server handles
  /// messages serially: `server_proc_seconds` per message (deserialize +
  /// apply/read), plus `dpr_overhead_seconds` for every delayed pull request
  /// it buffers or releases (buffer management, condition re-evaluation,
  /// callback execution, response burst). This is exactly the
  /// synchronization-frequency cost the paper's lazy execution and PSSP
  /// reduce — with it set to zero, cutting DPRs could never save time.
  double server_proc_seconds = 5e-5;
  double dpr_overhead_seconds = 1e-3;

  /// Start from these parameters instead of the model's initializer (must be
  /// num_params long when non-empty). Used by StageRunner to chain stages.
  std::vector<float> initial_params;

  /// Runtime synchronization-model switches: when worker 0 completes
  /// iteration `first`, every server's conditions are replaced with `second`
  /// (the paper: "FluentPS can adjust parameter synchronization model at
  /// runtime via controlling the push/pull conditions"). Must be sorted by
  /// iteration.
  std::vector<std::pair<std::int64_t, ps::SyncModelSpec>> sync_schedule;

  /// Gaia-style significance filter (cited in §V-B): a worker pushes its
  /// accumulated update only when SF = |update| / |w| reaches this threshold;
  /// below it, a metadata-only push reports progress while the update keeps
  /// aggregating locally. 0 disables the filter.
  double push_significance_threshold = 0.0;

  /// Record a per-worker timeline (compute/sync intervals) for the first
  /// `trace_iters` iterations of each worker (sim backend only; 0 = off).
  std::int64_t trace_iters = 0;

  // --- server apply hot path (DESIGN.md §8) ---------------------------

  /// Coalesce concurrent gradient pushes into one striped axpy sweep per
  /// server (flat combining). Off = per-message applies; results are
  /// bit-identical either way (property-tested), so this is purely a
  /// throughput knob / A-B switch.
  bool batch_pushes = true;

  /// Lock stripes per server shard (boundaries aligned to slice boundaries).
  std::uint32_t apply_stripes = 8;

  /// Hand pushes to the combiner through the bounded lock-free MPSC ring
  /// (DESIGN.md §11) instead of the legacy mutex flat-combining queue. Both
  /// paths are bit-identical per arrival order (A/B-tested); this is the
  /// contended-ingest throughput knob.
  bool lockfree_handoff = true;

  /// Capacity of the combiner handoff ring (rounded up to a power of two).
  /// A full ring is backpressure: the producer records a stall and retries.
  std::uint32_t ring_depth = 1024;

  /// Dedicated apply threads per server: 0 = pushes are applied on the
  /// handler thread that wins the combiner role; 1 = one drain thread owns
  /// every sweep; >= 2 additionally fans each sweep across stripe
  /// partitions. Each apply thread first-touches its own stripe partition at
  /// startup (NUMA placement).
  std::uint32_t apply_threads = 0;

  /// Pin apply/drain threads to CPUs (common/affinity.h; no-op where
  /// unsupported). Server m's threads take affinity slots starting at
  /// m * max(apply_threads, 1).
  bool pin_threads = false;

  // --- fault injection & recovery (src/fault) -------------------------

  /// Declarative fault schedule (drop/dup/delay/reorder, partitions, server
  /// crash+restart). Empty = pristine fabric. Sim runs stay bit-identical
  /// for a fixed seed even with faults enabled.
  fault::FaultSpec faults;

  /// Timeout/backoff knobs for the worker retransmit loops (and the sim
  /// worker state machine) when reliability is on.
  fault::RetryPolicy retry;

  /// Run the at-least-once protocol (sequence numbers, acks, dedup windows)
  /// even without any configured faults — for overhead measurements.
  bool force_reliability = false;

  /// When non-empty, server checkpoints are also written to this directory
  /// as FLPS02 blobs (crash recovery itself uses the in-memory store).
  std::string checkpoint_dir;

  // --- chain replication (src/replica, DESIGN.md §9) ------------------

  /// r: how many server nodes hold each shard (1 = no replication). With
  /// r > 1 every shard m gets a chain of r nodes — the head applies pushes,
  /// forwards them as kReplicate, and defers worker acks until the tail's
  /// cumulative ack covers them. A crash of the current head promotes its
  /// successor instead of restarting from a checkpoint (CrashSpec restarts
  /// are skipped; checkpointing is off unless checkpoint_dir is set).
  /// FluentPS arch only; implies the reliability layer.
  std::uint32_t replication_factor = 1;

  /// Failure-detection delay: seconds between a head crash and the runtime
  /// promoting its successor (models detector timeout + election).
  double failover_detect_seconds = 0.05;

  // --- read path (DESIGN.md §13) ---------------------------------------

  /// Staleness-bounded replica reads + optional pull-only inference fleet.
  ReadSpec read;

  // --- sparse embedding tables (src/embed, DESIGN.md §10) ---------------

  /// Optional sparse embedding job sharing the same server set as the dense
  /// job: extra sparse-worker nodes run a BSP push/pull loop over the
  /// configured tables, routed per-row to server shards. Disabled unless
  /// tables, num_workers and rounds are all set. Sparse state is not
  /// checkpointed, so crash schedules require replication_factor > 1.
  embed::SparseJobSpec sparse;

  // --- elastic membership (src/elastic, DESIGN.md §14) ------------------

  /// Live scale-out/in: `num_servers` becomes the fixed slot count, the
  /// schedule activates/drains slots mid-run with live shard migration and an
  /// epoch-fenced rebind. Requires the FluentPS architecture and the
  /// reliability layer; incompatible with crash schedules and checkpointing
  /// (the elastic controller owns the membership authority), and with
  /// sparse jobs under replication_factor > 1.
  elastic::ElasticSpec elastic;

  // --- telemetry (src/obs, DESIGN.md §12) -------------------------------

  /// End-to-end telemetry: when enabled the runtime attaches the wait-free
  /// obs::Registry to every hot-path component, stamps (trace_id, span_id)
  /// into push frames for cross-hop span tracing (thread backend), runs the
  /// interval snapshotter (JSONL time series at `out_prefix`.jsonl), and the
  /// CLI writes a Prometheus text dump at run end. Off by default: every
  /// recording site then sees a null pointer and costs one predicted branch.
  obs::TelemetrySpec telemetry;

  /// Reliability layer active? (explicitly forced, implied by any fault,
  /// required by chain replication's deferred-ack protocol, or by elastic
  /// membership — migration delta taps ride the SeqWindow accept path.)
  [[nodiscard]] bool reliability_enabled() const noexcept {
    return force_reliability || faults.any() || replication_factor > 1 ||
           elastic.enabled();
  }

  /// Short human-readable tag for tables.
  [[nodiscard]] std::string label() const;
};

/// One traced iteration of one worker: [compute_start, compute_end) is the
/// gradient computation, [compute_end, sync_end) the push+synchronize+pull
/// window (the paper's Fig 5 timeline bands).
struct IterationTrace {
  std::uint32_t worker = 0;
  std::int64_t iter = 0;
  double compute_start = 0.0;
  double compute_end = 0.0;
  double sync_end = 0.0;
};

struct AccuracyPoint {
  double time = 0.0;     ///< seconds (virtual or wall) when evaluated
  std::int64_t iter = 0; ///< worker-0 iteration at evaluation
  double accuracy = 0.0;
  double loss = 0.0;
};

/// A fault-lifecycle event observed during the run (crash, restart,
/// checkpoint, recovery completion) — exported as instant events on the
/// Chrome trace timeline.
struct FaultEvent {
  double time = 0.0;
  std::string kind;         ///< "crash" | "restart" | "checkpoint" | "recovered"
  std::uint32_t node = 0;   ///< node id the event concerns
};

struct ExperimentResult {
  // Timing (seconds; virtual for the sim backend, wall for threads).
  double total_time = 0.0;    ///< makespan: last worker finishing its iterations
  double compute_time = 0.0;  ///< mean per-worker total gradient-computation time
  double comm_time = 0.0;     ///< mean per-worker (total - compute): network + waiting

  // Learning quality.
  double final_accuracy = 0.0;
  double final_loss = 0.0;
  std::vector<AccuracyPoint> curve;

  // Synchronization behaviour.
  std::int64_t dpr_total = 0;      ///< delayed pull requests, summed over servers
  double dprs_per_100_iters = 0.0; ///< dpr_total * 100 / max_iters (paper's metric)
  IntHistogram staleness{128};     ///< staleness gap of served pulls, all servers
  IntHistogram release_delay{128}; ///< V_train advances DPRs waited

  // Traffic.
  double bytes_total = 0.0;
  std::uint64_t messages = 0;

  std::int64_t iterations = 0;  ///< per worker
  double shard_imbalance = 1.0; ///< max/mean shard size of the placement used

  /// Final global parameters (concatenated server shards) — feed these into
  /// the next stage's initial_params to continue training elastically.
  std::vector<float> final_params;

  /// Pushes suppressed by the significance filter (0 when disabled).
  std::int64_t pushes_filtered = 0;

  /// Per-iteration timelines when config.trace_iters > 0.
  std::vector<IterationTrace> trace;

  // --- fault injection & recovery outcomes ----------------------------
  std::int64_t dropped = 0;           ///< messages lost to the fault plan
  std::int64_t duplicated = 0;        ///< messages duplicated by the fault plan
  std::int64_t delayed = 0;           ///< messages delayed/reordered
  std::int64_t worker_retries = 0;    ///< retransmission rounds, all workers
  std::int64_t server_recoveries = 0; ///< checkpoint restores performed
  std::int64_t server_dedup_hits = 0; ///< retransmits suppressed server-side
  std::int64_t server_crashes = 0;    ///< crash events executed
  // --- chain replication outcomes --------------------------------------
  std::int64_t failovers = 0;           ///< chain promotions performed
  std::int64_t replicated_updates = 0;  ///< kReplicate forwards sent by heads
  double failover_seconds = 0.0;        ///< slowest crash -> promoted interval
  /// Updates whose counts had to be re-synthesized because a checkpoint
  /// restore rolled them out of the shard — the checkpoint path's lost-update
  /// tally. Chain failover keeps this 0 (nothing acked is ever lost).
  std::int64_t rolled_back_updates = 0;
  // --- read-path outcomes (DESIGN.md §13) ------------------------------
  std::int64_t replica_reads_served = 0;   ///< bounded pulls answered by replicas
  std::int64_t replica_read_fallbacks = 0; ///< kPullRedirect head fallbacks
  std::int64_t head_reads_served = 0;      ///< bounded pulls answered by heads
  /// Replica-served responses whose echoed horizon violated the requested
  /// bound — the staleness oracle. Must be 0 in every mode and backend.
  std::int64_t read_violations = 0;
  std::int64_t fleet_pulls = 0;        ///< completed fleet pulls (all clients)
  double fleet_pull_seconds = 0.0;     ///< first fleet request -> last response
  double fleet_throughput = 0.0;       ///< fleet_pulls / fleet_pull_seconds
  /// Snapshot of the run's Metrics counters (fault.*, worker.*, server.*).
  std::vector<std::pair<std::string, std::int64_t>> counters;
  /// Crash/restart/checkpoint timeline (trace_export renders these).
  std::vector<FaultEvent> fault_events;
  /// Cross-hop spans drained from the SpanRecorder (thread backend with
  /// config.telemetry.enabled && trace_spans; rendered by trace_export as
  /// nested per-node tracks). Times are ns relative to the run's epoch.
  std::vector<obs::SpanRecord> spans;
  // --- elastic membership outcomes (DESIGN.md §14) ----------------------
  std::int64_t elastic_migrations = 0;   ///< dense slices + sparse rows moved
  std::int64_t elastic_bytes_moved = 0;  ///< snapshot + delta + row bytes shipped
  std::int64_t elastic_epoch = 0;        ///< final committed membership epoch
  double elastic_stall_seconds = 0.0;    ///< summed fence (all-parked) windows
  double elastic_migrate_seconds = 0.0;  ///< summed live pre-copy phases
  /// Interval lines the telemetry snapshotter wrote (0 when disabled).
  std::int64_t telemetry_intervals = 0;
  /// Prometheus text-exposition dump of the run's cumulative metrics with
  /// run-level labels (arch/backend/sync/seed); empty unless
  /// config.telemetry.enabled. The registry itself dies with the runtime, so
  /// the rendered text rides out on the result.
  std::string prometheus;

  /// Free-form extras (per-bench diagnostics).
  std::map<std::string, double> extra;
};

/// Run an experiment on the configured backend. Deterministic for kSim.
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace fluentps::core
