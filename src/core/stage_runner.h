// Multi-stage elastic training (FlexPS-style stages + EPS elasticity).
//
// A stage is an ExperimentConfig; between stages the cluster shape (worker
// and server counts), synchronization model, DPR mode, optimizer and compute
// model may all change, while the global model parameters carry over
// (Section III-A: "when the number of servers changes, EPS can also
// rebalance the workloads among the alive servers" — here the next stage's
// slicer re-places the carried parameters onto the new server set).
//
// All stages must train the same model on the same dataset spec (checked).
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"

namespace fluentps::core {

struct StagedResult {
  /// Per-stage results, in order.
  std::vector<ExperimentResult> stages;

  /// Accuracy curve across all stages, times offset so stage k starts where
  /// stage k-1 ended.
  std::vector<AccuracyPoint> curve;

  double total_time = 0.0;        ///< sum of stage makespans
  double final_accuracy = 0.0;    ///< last stage's final accuracy
  std::int64_t total_iterations = 0;  ///< sum of per-worker iterations
};

/// Run the stages sequentially, threading final_params -> initial_params.
/// Aborts if stages disagree on the model or dataset specification.
StagedResult run_stages(std::vector<ExperimentConfig> stages);

}  // namespace fluentps::core
