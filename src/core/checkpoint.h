// Parameter checkpointing: binary save/load of a flat parameter vector with
// a magic header and integrity checksum, so long simulated campaigns (or
// multi-stage runs) can stop and resume across processes.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace fluentps::core {

/// Write `params` to `path`. Returns false on I/O failure.
bool save_params(const std::string& path, std::span<const float> params);

/// Read a checkpoint into `out`. Returns false if the file is missing,
/// truncated, of the wrong format, or fails the checksum.
bool load_params(const std::string& path, std::vector<float>* out);

/// Checksum used by the checkpoint format (FNV-1a over the raw bytes);
/// exposed for tests.
std::uint64_t params_checksum(std::span<const float> params) noexcept;

}  // namespace fluentps::core
