// Parameter checkpointing: binary save/load of a flat parameter vector with
// a magic header and integrity checksum, so long simulated campaigns (or
// multi-stage runs) can stop and resume across processes.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace fluentps::core {

/// Write `params` to `path`. Returns false on I/O failure.
bool save_params(const std::string& path, std::span<const float> params);

/// Read a checkpoint into `out`. Returns false if the file is missing,
/// truncated, of the wrong format, or fails the checksum.
bool load_params(const std::string& path, std::vector<float>* out);

/// Checksum used by the checkpoint format (FNV-1a over the raw bytes);
/// exposed for tests.
std::uint64_t params_checksum(std::span<const float> params) noexcept;

/// Write an opaque byte blob (server shard + sync-engine state under
/// crash-restart recovery) with the same magic/size/checksum header
/// discipline as save_params. Returns false on I/O failure.
bool save_blob(const std::string& path, std::span<const std::uint8_t> blob);

/// Read a save_blob file. Returns false on missing/truncated/corrupt input
/// (torn writes and bit flips fail the checksum, zero-length files fail the
/// header read) without touching *out.
bool load_blob(const std::string& path, std::vector<std::uint8_t>* out);

}  // namespace fluentps::core
