#include "embed/qos.h"

#include <algorithm>

#include "common/logging.h"

namespace fluentps::embed {

namespace {
constexpr double kMinWeight = 1e-3;
}

void QosArbiter::add_tenant(std::uint32_t id, double weight) {
  FPS_CHECK(find(id) == nullptr) << "tenant " << id << " registered twice";
  Tenant t;
  t.id = id;
  t.weight = std::max(weight, kMinWeight);
  const auto pos = std::lower_bound(tenants_.begin(), tenants_.end(), id,
                                    [](const Tenant& a, std::uint32_t v) { return a.id < v; });
  tenants_.insert(pos, t);
}

QosArbiter::Tenant* QosArbiter::find(std::uint32_t id) {
  for (Tenant& t : tenants_) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

std::uint32_t QosArbiter::pick(const std::vector<std::uint32_t>& ready) {
  FPS_CHECK(!ready.empty()) << "QosArbiter::pick with no ready tenants";
  const auto is_ready = [&ready](std::uint32_t id) {
    return std::find(ready.begin(), ready.end(), id) != ready.end();
  };
  // DRR: sweep from the cursor; serve the first ready tenant with credit.
  // If none has credit, refill every *ready* tenant by its weight and sweep
  // again — idle tenants accrue nothing, so credit cannot pile up unbounded.
  for (;;) {
    for (std::size_t step = 0; step < tenants_.size(); ++step) {
      const std::size_t i = (cursor_ + step) % tenants_.size();
      Tenant& t = tenants_[i];
      if (!is_ready(t.id) || t.deficit < 1.0) continue;
      t.deficit -= 1.0;
      ++t.served;
      cursor_ = (i + 1) % tenants_.size();
      return t.id;
    }
    bool any = false;
    for (Tenant& t : tenants_) {
      if (is_ready(t.id)) {
        t.deficit += t.weight;
        any = true;
      }
    }
    FPS_CHECK(any) << "QosArbiter::pick: no ready tenant is registered";
  }
}

std::int64_t QosArbiter::served(std::uint32_t id) const {
  for (const Tenant& t : tenants_) {
    if (t.id == id) return t.served;
  }
  return 0;
}

}  // namespace fluentps::embed
