// Synthetic sparse workload + serial reference oracle.
//
// Both backends (sim, threads) and the reference oracle sample batches from
// the same pure functions of (job seed, table, worker, round), so the stream
// of contributions entering the servers is identical no matter which backend
// runs it — and the oracle can replay it serially, ignoring sharding
// entirely, because the state digest is a sharding-invariant wrapping sum
// (embedding_table.h). A run whose servers' summed digest equals
// reference_state_digest() lost zero updates.
//
// Row sampling is a truncated power law (zipfian-style skew): row ids near 0
// are hot, with heat controlled by `zipf_s` — the knob the reducer ablation
// sweeps (bench/ablation_embedding).
#pragma once

#include <cstdint>
#include <vector>

#include "embed/sparse_codec.h"
#include "embed/table_spec.h"

namespace fluentps::embed {

struct SparseJobSpec {
  std::vector<TableSpec> tables;   ///< table_id == index (TableRegistry rules)
  std::uint32_t num_workers = 0;   ///< sparse workers (own rank space, own nodes)
  std::int64_t rounds = 0;         ///< BSP rounds each sparse worker runs
  std::uint32_t batch_rows = 8;    ///< rows sampled per (worker, round, table)
  double zipf_s = 1.1;             ///< skew exponent; <= 0 = uniform
  bool reduce = true;              ///< coalesce per-row gradients server-side
  double compute_seconds = 0.002;  ///< per-round compute: sim delay / thread sleep

  [[nodiscard]] bool enabled() const noexcept {
    return !tables.empty() && num_workers > 0 && rounds > 0;
  }
};

/// Worker `worker`'s round-`round` contribution to `table`: sorted unique
/// rows (power-law skewed) with per-row gradients. Pure function of its
/// arguments — grads are derived per (table, worker, round, row), so they are
/// independent of sampling order and of what the worker pulled.
[[nodiscard]] SparseBatch sample_batch(const SparseJobSpec& job, const TableSpec& table,
                                       std::uint64_t job_seed, std::uint32_t worker,
                                       std::int64_t round);

/// The rows of `full` that hash-route to `server` of `num_servers`, values
/// kept aligned. Empty result still carries table_id/dim (round marker).
[[nodiscard]] SparseBatch shard_of(const SparseBatch& full, std::uint32_t server,
                                   std::uint32_t num_servers);

/// Elastic variant: rows that route_active() maps to `server` under the
/// membership's active slot vector. With all slots active this equals
/// shard_of() exactly (routing.h).
[[nodiscard]] SparseBatch shard_of_active(const SparseBatch& full, std::uint32_t server,
                                          const std::vector<char>& active);

/// Serial replay of the whole job on one unsharded core: the digest every
/// run's servers must sum to (zero-loss check).
[[nodiscard]] std::uint64_t reference_state_digest(const SparseJobSpec& job,
                                                   std::uint64_t job_seed);

/// Fold one pull response into a worker's running pull digest (FNV over
/// table id, row ids and value bits, in frame order). Workers fold responses
/// in ticket-issue order, so the digest is deterministic per seed.
[[nodiscard]] std::uint64_t fold_pull_digest(std::uint64_t d, const SparseBatch& resp);

}  // namespace fluentps::embed
