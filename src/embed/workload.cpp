#include "embed/workload.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "embed/embedding_table.h"
#include "embed/routing.h"
#include "embed/sparse_core.h"

namespace fluentps::embed {

namespace {

/// Per-(table, worker, round) sampling seed. Worker and round pack into one
/// label; rounds are bounded far below 2^32 in practice and workers below
/// 2^31, so the pack cannot collide across (worker, round) pairs.
std::uint64_t batch_seed(std::uint64_t job_seed, std::uint32_t table_id,
                         std::uint32_t worker, std::int64_t round) {
  const std::uint64_t per_table = derive_seed(job_seed, 0x5A3B17ull + table_id);
  const std::uint64_t label =
      (static_cast<std::uint64_t>(worker) << 32) | static_cast<std::uint64_t>(round);
  return derive_seed(per_table, label);
}

/// Truncated power law over [0, rows): u^s biases toward 0 for s > 1 (hot
/// head), degrades to uniform at s <= 0.
std::uint64_t sample_row(Rng& rng, std::uint64_t rows, double s) {
  if (s <= 0.0) return rng.uniform_u64(rows);
  const double u = rng.uniform();
  const double x = std::pow(u, s) * static_cast<double>(rows);
  const auto id = static_cast<std::uint64_t>(x);
  return std::min(id, rows - 1);
}

}  // namespace

SparseBatch sample_batch(const SparseJobSpec& job, const TableSpec& table,
                         std::uint64_t job_seed, std::uint32_t worker,
                         std::int64_t round) {
  FPS_CHECK(round >= 0) << "negative round";
  const std::uint64_t seed = batch_seed(job_seed, table.table_id, worker, round);
  Rng rng(seed, /*stream=*/0x21F);
  std::vector<std::uint64_t> rows;
  rows.reserve(job.batch_rows);
  for (std::uint32_t i = 0; i < job.batch_rows; ++i) {
    rows.push_back(sample_row(rng, table.rows, job.zipf_s));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

  SparseBatch b;
  b.table_id = table.table_id;
  b.dim = table.dim;
  b.rows = std::move(rows);
  b.values.reserve(b.rows.size() * table.dim);
  for (const std::uint64_t row : b.rows) {
    // Per-row gradient stream keyed by the row itself: independent of how
    // many duplicates the sampler collapsed, and of anything pulled.
    Rng grad_rng(derive_seed(seed, mix_key(table.table_id, row)), /*stream=*/0x96AD);
    for (std::uint32_t k = 0; k < table.dim; ++k) {
      b.values.push_back(static_cast<float>(grad_rng.normal(0.0, 0.05)));
    }
  }
  return b;
}

SparseBatch shard_of(const SparseBatch& full, std::uint32_t server,
                     std::uint32_t num_servers) {
  SparseBatch out;
  out.table_id = full.table_id;
  out.dim = full.dim;
  for (std::size_t i = 0; i < full.rows.size(); ++i) {
    if (route(full.table_id, full.rows[i], num_servers) != server) continue;
    out.rows.push_back(full.rows[i]);
    if (full.has_values()) {
      const float* g = full.values.data() + i * full.dim;
      out.values.insert(out.values.end(), g, g + full.dim);
    }
  }
  return out;
}

SparseBatch shard_of_active(const SparseBatch& full, std::uint32_t server,
                            const std::vector<char>& active) {
  SparseBatch out;
  out.table_id = full.table_id;
  out.dim = full.dim;
  for (std::size_t i = 0; i < full.rows.size(); ++i) {
    if (route_active(full.table_id, full.rows[i], active) != server) continue;
    out.rows.push_back(full.rows[i]);
    if (full.has_values()) {
      const float* g = full.values.data() + i * full.dim;
      out.values.insert(out.values.end(), g, g + full.dim);
    }
  }
  return out;
}

std::uint64_t reference_state_digest(const SparseJobSpec& job, std::uint64_t job_seed) {
  FPS_CHECK(job.enabled()) << "reference digest of a disabled sparse job";
  SparseCoreSpec spec;
  spec.server_rank = 0;
  spec.num_workers = job.num_workers;
  spec.tables = job.tables;
  spec.seed = job_seed;
  spec.reduce = job.reduce;
  spec.stripes = 1;
  SparseCore core(spec);
  for (std::int64_t round = 0; round < job.rounds; ++round) {
    for (std::uint32_t w = 0; w < job.num_workers; ++w) {
      for (const TableSpec& t : job.tables) {
        core.ingest(round, sample_batch(job, t, job_seed, w, round), w);
      }
    }
  }
  for (;;) {
    const std::vector<std::uint32_t> ready = core.drainable();
    if (ready.empty()) break;
    for (const std::uint32_t t : ready) core.drain_one(t);
  }
  return core.digest();
}

std::uint64_t fold_pull_digest(std::uint64_t d, const SparseBatch& resp) {
  d = fnv_step(d, resp.table_id);
  for (std::size_t i = 0; i < resp.rows.size(); ++i) {
    d = fnv_step(d, resp.rows[i]);
    for (std::uint32_t k = 0; k < resp.dim; ++k) {
      d = fnv_step(d, std::bit_cast<std::uint32_t>(resp.values[i * resp.dim + k]));
    }
  }
  return d;
}

}  // namespace fluentps::embed
