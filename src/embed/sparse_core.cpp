#include "embed/sparse_core.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "embed/routing.h"

namespace fluentps::embed {

std::uint64_t table_seed(std::uint64_t job_seed, std::uint32_t table_id) noexcept {
  return derive_seed(job_seed, 0x7AB1Eull + table_id);
}

SparseCore::SparseCore(SparseCoreSpec spec)
    : registry_(spec.tables),
      server_rank_(spec.server_rank),
      num_workers_(spec.num_workers),
      reduce_(spec.reduce),
      windows_(spec.num_workers) {
  FPS_CHECK(num_workers_ > 0) << "sparse core needs at least one worker";
  FPS_CHECK(!registry_.empty()) << "sparse core needs at least one table";
  tables_.reserve(registry_.size());
  for (const TableSpec& t : registry_.specs()) {
    TableState st;
    st.table = std::make_unique<EmbeddingTable>(t, table_seed(spec.seed, t.table_id),
                                                spec.stripes);
    st.last_round.assign(num_workers_, -1);
    tables_.push_back(std::move(st));
  }
}

bool SparseCore::accept_push(std::uint32_t w, std::uint64_t seq) {
  FPS_CHECK(w < windows_.size()) << "sparse push from out-of-range worker " << w;
  return windows_[w].accept(seq);
}

SparseCore::TableState& SparseCore::state_of(std::uint32_t table_id) {
  FPS_CHECK(table_id < tables_.size()) << "unknown table id " << table_id;
  return tables_[table_id];
}

void SparseCore::ingest(std::int64_t round, const SparseBatch& batch, std::uint32_t w) {
  TableState& st = state_of(batch.table_id);
  FPS_CHECK(w < num_workers_) << "sparse ingest from out-of-range worker " << w;
  // Fresh pushes per (worker, table) arrive in round order: the worker does
  // not start round t+1 until round t is fully acked, and dedup already
  // swallowed retransmits.
  FPS_CHECK(round == st.last_round[w] + 1)
      << "table " << batch.table_id << ": worker " << w << " jumped from round "
      << st.last_round[w] << " to " << round;
  st.last_round[w] = round;
  if (!batch.rows.empty()) {
    const std::uint32_t dim = registry_.at(batch.table_id).dim;
    FPS_CHECK(batch.dim == dim) << "push dim " << batch.dim << " != table dim " << dim;
    Contribution c;
    c.worker = w;
    c.rows = batch.rows;
    c.grads = batch.values;
    FPS_CHECK(c.grads.size() == c.rows.size() * dim) << "push value width mismatch";
    st.reducer.add(round, std::move(c));
  }
}

std::vector<std::uint32_t> SparseCore::drainable() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t id = 0; id < tables_.size(); ++id) {
    const TableState& st = tables_[id];
    const std::int64_t min_round =
        *std::min_element(st.last_round.begin(), st.last_round.end());
    if (min_round > st.completed) out.push_back(id);
  }
  return out;
}

std::int64_t SparseCore::drain_one(std::uint32_t table_id) {
  TableState& st = state_of(table_id);
  const std::int64_t round = st.completed + 1;
  FPS_CHECK(*std::min_element(st.last_round.begin(), st.last_round.end()) >= round)
      << "table " << table_id << ": round " << round << " not fully contributed";
  const std::uint32_t dim = registry_.at(table_id).dim;
  const std::vector<Contribution> contribs = st.reducer.take_round(round);
  std::int64_t applied = 0;
  if (reduce_) {
    const ReducedRound reduced = reduce_contributions(contribs, dim);
    for (std::size_t i = 0; i < reduced.rows.size(); ++i) {
      st.table->apply(reduced.rows[i],
                      std::span<const float>(reduced.sums).subspan(i * dim, dim));
      ++applied;
    }
  } else {
    for (const Contribution& c : contribs) {  // worker-rank order (take_round sorts)
      for (std::size_t i = 0; i < c.rows.size(); ++i) {
        st.table->apply(c.rows[i], std::span<const float>(c.grads).subspan(i * dim, dim));
        ++applied;
      }
    }
  }
  st.completed = round;
  return applied;
}

std::int64_t SparseCore::completed_round(std::uint32_t table_id) const {
  FPS_CHECK(table_id < tables_.size()) << "unknown table id " << table_id;
  return tables_[table_id].completed;
}

EmbeddingTable& SparseCore::table(std::uint32_t table_id) {
  return *state_of(table_id).table;
}

std::uint64_t SparseCore::digest() const {
  std::uint64_t sum = 0;
  for (const TableState& st : tables_) sum += st.table->digest();
  return sum;
}

std::vector<SparseCore::MovedRow> SparseCore::extract_moved_rows(
    const std::vector<char>& active, std::uint32_t my_rank) {
  std::vector<MovedRow> out;
  for (std::uint32_t id = 0; id < tables_.size(); ++id) {
    auto extracted = tables_[id].table->extract_rows([&](std::uint64_t row_id) {
      return route_active(id, row_id, active) != my_rank;
    });
    for (auto& [row_id, data] : extracted) {
      out.push_back(MovedRow{id, row_id, std::move(data)});
    }
  }
  return out;
}

void SparseCore::install_rows(std::vector<MovedRow> rows) {
  for (MovedRow& r : rows) {
    state_of(r.table_id).table->install_row(r.row_id, std::move(r.data));
  }
}

void SparseCore::seed_round_clock(std::int64_t round) {
  for (TableState& st : tables_) {
    st.completed = round;
    st.last_round.assign(num_workers_, round);
  }
}

std::uint64_t SparseCore::reducer_ring_stalls() const {
  std::uint64_t sum = 0;
  for (const TableState& st : tables_) sum += st.reducer.ring_stalls();
  return sum;
}

std::size_t SparseCore::reducer_ring_depth_high_water() const {
  std::size_t hw = 0;
  for (const TableState& st : tables_) {
    hw = std::max(hw, st.reducer.ring_depth_high_water());
  }
  return hw;
}

}  // namespace fluentps::embed
