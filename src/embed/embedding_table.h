// One shard's slice of one embedding table: lazily materialized rows with
// co-located per-row optimizer state.
//
// Rows materialize on first touch (push or pull) from a deterministic
// initializer keyed by (table seed, row_id) — NOT by materialization order —
// so every replica, every backend and the serial reference oracle produce
// bit-identical initial values no matter when a row is first seen. Values and
// optimizer state live in one contiguous allocation per row (values first,
// state after), keeping the row_apply inner loop on one cache line for small
// dims.
//
// Striping mirrors ps::StripedShard: rows hash onto `stripes` mutexes so the
// ablation bench can drive concurrent per-row applies; inside the server the
// host serializes access anyway (single dispatch context) and the locks are
// uncontended.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "embed/table_spec.h"

namespace fluentps::embed {

class EmbeddingTable {
 public:
  /// `seed` is the table seed (derive it from the job seed + table_id so
  /// distinct tables draw decorrelated initializers).
  EmbeddingTable(TableSpec spec, std::uint64_t seed, std::uint32_t stripes = 8);

  EmbeddingTable(const EmbeddingTable&) = delete;
  EmbeddingTable& operator=(const EmbeddingTable&) = delete;

  [[nodiscard]] const TableSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint32_t dim() const noexcept { return spec_.dim; }

  /// Apply one gradient to one row through the spec's row optimizer,
  /// materializing the row first if needed. Takes the row's stripe lock.
  void apply(std::uint64_t row_id, std::span<const float> grad);

  /// Copy the row's current values into `out` (dim floats), materializing it
  /// if needed. Takes the row's stripe lock.
  void copy_row(std::uint64_t row_id, std::span<float> out);

  /// Rows materialized so far (lazy footprint, not the logical key space).
  [[nodiscard]] std::size_t materialized_rows() const;

  /// Elastic fence (DESIGN.md §14): remove and return every materialized row
  /// for which `pred(row_id)` is true, as (row_id, raw data — values plus
  /// optimizer state). Rows MOVE: install_row() on the new owner restores the
  /// exact bytes, so the summed cross-server digest is unchanged. Lazily
  /// materialized rows need no move at all — the deterministic initializer is
  /// keyed by (table seed, row_id), identical on every host. Caller
  /// guarantees quiescence (all sparse workers parked).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::vector<float>>> extract_rows(
      const std::function<bool(std::uint64_t)>& pred);

  /// Install a row extracted from another shard, verbatim.
  void install_row(std::uint64_t row_id, std::vector<float> data);

  /// Order-independent digest of the table contents: a wrapping sum over all
  /// materialized rows of hash(table_id, row_id, value bits). Summation makes
  /// it invariant to sharding — per-server digests from any partitioning add
  /// up to the serial reference oracle's digest.
  [[nodiscard]] std::uint64_t digest() const;

  /// Total row_apply invocations (the ablation's work counter).
  [[nodiscard]] std::int64_t applies() const noexcept { return applies_; }

 private:
  struct Row {
    std::vector<float> data;  ///< [0, dim) values, [dim, dim+state) optimizer state
  };

  Row& materialize(std::uint64_t row_id);
  [[nodiscard]] std::mutex& stripe(std::uint64_t row_id) const;

  TableSpec spec_;
  std::uint64_t seed_;
  std::size_t state_size_;
  mutable std::vector<std::mutex> stripes_;
  std::unordered_map<std::uint64_t, Row> rows_;
  mutable std::mutex rows_mu_;  ///< guards the map itself (insertion)
  std::int64_t applies_ = 0;
};

/// FNV-1a over a little-endian byte view of 64-bit words — the digest
/// primitive shared with the reference oracle.
[[nodiscard]] std::uint64_t fnv_step(std::uint64_t h, std::uint64_t word) noexcept;
inline constexpr std::uint64_t kFnvBasis = 0xCBF29CE484222325ull;

}  // namespace fluentps::embed
