// Wire codec for sparse embedding traffic.
//
// Sparse messages ride the existing zero-copy float payload (net::Payload /
// FrameBuffer): the batch header and 64-bit row ids are packed into the float
// stream as raw 32-bit words via std::bit_cast, followed by the row values.
// Nothing downstream interprets those words as numbers — every hop moves them
// with memcpy — so the bit patterns survive the wire exactly, and the frame
// is charged by the network model like any other payload.
//
// Frame layout (32-bit words inside the float payload):
//   [0] table_id   [1] dim   [2] n_rows   [3] flags (bit0 = has row values)
//   [4 ..]         n_rows x { row_id_lo, row_id_hi }
//   then, iff flags bit0:  n_rows x dim row-major floats
//
// The same frame encodes a kSparsePush (gradients), a kSparsePull (rows only,
// no values), a kSparsePullResp (row values) and a kSparseReplicate (the
// head forwards the push frame verbatim). Message.progress carries the sparse
// round, Message.seq the reliability sequence — the codec never touches them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/payload.h"

namespace fluentps::embed {

struct SparseBatch {
  std::uint32_t table_id = 0;
  std::uint32_t dim = 0;
  std::vector<std::uint64_t> rows;  ///< sorted unique row ids
  std::vector<float> values;        ///< rows.size()*dim row-major, or empty

  [[nodiscard]] bool has_values() const noexcept { return !values.empty(); }
};

/// Exact frame length in floats for `b`.
[[nodiscard]] std::size_t encoded_size(const SparseBatch& b) noexcept;

/// Encode into an owning float vector (the canonical form the replication
/// log stores and retransmits).
[[nodiscard]] std::vector<float> encode_sparse(const SparseBatch& b);

/// Encode straight into a payload's owned storage (one resize, no temp).
void encode_sparse(const SparseBatch& b, net::Payload& out);

/// Parse a frame. Returns false on malformed input: short header, value
/// length disagreeing with n_rows*dim, or a zero dim with values present.
[[nodiscard]] bool decode_sparse(std::span<const float> frame, SparseBatch* out);

}  // namespace fluentps::embed
