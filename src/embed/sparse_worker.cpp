#include "embed/sparse_worker.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "embed/embedding_table.h"
#include "embed/workload.h"

namespace fluentps::embed {
namespace {

std::chrono::duration<double> secs(double s) { return std::chrono::duration<double>(s); }

}  // namespace

SparseWorkerClient::SparseWorkerClient(SparseWorkerSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      worker_rank_(spec.worker_rank),
      server_nodes_(std::move(spec.server_nodes)),
      tables_(std::move(spec.tables)),
      retry_(spec.retry),
      read_(spec.read),
      read_replicas_(std::move(spec.read_replicas)),
      transport_(transport),
      retry_rng_(derive_seed(spec.seed, 0x5B9E81 + spec.worker_rank), /*stream=*/0x4E7),
      active_(server_nodes_.size(), 1),
      next_seq_(server_nodes_.size(), 1),
      next_ticket_((static_cast<std::uint64_t>(spec.worker_rank) << 40) + 1),
      pull_digest_(kFnvBasis) {
  FPS_CHECK(!server_nodes_.empty()) << "sparse worker needs at least one server";
  FPS_CHECK(!tables_.empty()) << "sparse worker needs at least one table";
  read_replicas_.resize(server_nodes_.size());  // absent/short list: no offloading
  // Stagger the read round-robin by rank so concurrent clients don't rotate
  // in phase onto the same chain node (see WorkerClient).
  read_rr_ = worker_rank_;
}

void SparseWorkerClient::handle(net::Message&& msg) {
  std::unique_lock lock(mu_);
  switch (msg.type) {
    case net::MsgType::kPushAck: {
      const std::uint32_t m = msg.server_rank;
      for (PendingPush& p : pushes_) {
        if (p.server == m && p.seq == msg.seq && !p.acked) {
          p.acked = true;
          --unacked_;
          cv_.notify_all();
          return;
        }
      }
      return;  // duplicate ack (retransmit raced the original)
    }
    case net::MsgType::kSparsePullResp: {
      for (PendingPull& p : pulls_) {
        if (p.ticket == msg.request_id && !p.received) {
          FPS_CHECK(decode_sparse(msg.values.span(), &p.resp))
              << "sparse worker " << worker_rank_ << ": malformed pull response";
          if (msg.seq == ps::kReplicaServedSeq) ++replica_reads_;
          p.received = true;
          --unanswered_;
          cv_.notify_all();
          return;
        }
      }
      return;  // stale or duplicate response
    }
    case net::MsgType::kPullRedirect: {
      // A replica's completed-round clock could not cover the bound: retry
      // the same ticket at the shard's head, which always serves.
      for (PendingPull& p : pulls_) {
        if (p.ticket == msg.request_id && !p.received) {
          ++read_redirects_;
          p.dst = server_nodes_[p.server];
          send_pull_locked(p);
          return;
        }
      }
      return;  // stale redirect
    }
    case net::MsgType::kPromote: {
      // Shard server_rank failed over; rebind and re-offer what the dead
      // head may have swallowed rather than waiting out the retry timeout.
      const std::uint32_t m = msg.server_rank;
      FPS_CHECK(m < server_nodes_.size()) << "bad server rank in promote: " << m;
      if (server_nodes_[m] == msg.src) return;
      server_nodes_[m] = msg.src;
      // The promoted node left the read set; outstanding pulls re-aim at the
      // new head (whichever chain node they originally targeted).
      auto& replicas = read_replicas_[m];
      replicas.erase(std::remove(replicas.begin(), replicas.end(), msg.src), replicas.end());
      for (const PendingPush& p : pushes_) {
        if (p.server == m && !p.acked) send_push_locked(p);
      }
      for (PendingPull& p : pulls_) {
        if (p.server == m && !p.received) {
          p.dst = msg.src;
          send_pull_locked(p);
        }
      }
      return;
    }
    case net::MsgType::kShutdown:
      return;
    default:
      FPS_LOG(Warn) << "sparse worker " << worker_rank_ << " ignoring "
                    << net::to_string(msg.type);
      return;
  }
}

void SparseWorkerClient::send_push_locked(const PendingPush& p) {
  net::Message msg;
  msg.type = net::MsgType::kSparsePush;
  msg.src = node_id_;
  msg.dst = server_nodes_[p.server];
  msg.request_id = p.seq;
  msg.seq = p.seq;
  msg.progress = p.round;
  msg.worker_rank = worker_rank_;
  msg.server_rank = p.server;
  if (transport_.inline_delivery()) {
    msg.values = net::Payload::borrow(p.frame);  // consumed inside send()
  } else {
    msg.values.assign(p.frame.begin(), p.frame.end());
  }
  transport_.send(std::move(msg));
}

void SparseWorkerClient::send_pull_locked(const PendingPull& p) {
  net::Message msg;
  msg.type = net::MsgType::kSparsePull;
  msg.src = node_id_;
  msg.dst = p.dst;
  msg.request_id = p.ticket;
  msg.seq = p.seq;  // 0 = strong (ticket-deduped); s + 1 = bounded read
  msg.progress = p.round;
  msg.worker_rank = worker_rank_;
  msg.server_rank = p.server;
  if (transport_.inline_delivery()) {
    msg.values = net::Payload::borrow(p.frame);
  } else {
    msg.values.assign(p.frame.begin(), p.frame.end());
  }
  transport_.send(std::move(msg));
}

template <typename Pred, typename Resend>
void SparseWorkerClient::await_locked(std::unique_lock<std::mutex>& lock, Pred done,
                                      Resend resend, const char* what) {
  std::uint32_t attempt = 0;
  while (!done()) {
    const double timeout = retry_.timeout_for(attempt, retry_rng_);
    if (cv_.wait_for(lock, secs(timeout), done)) break;
    ++retries_;
    if (retry_.exhausted(attempt) && !budget_warned_) {
      budget_warned_ = true;
      FPS_LOG(Warn) << "sparse worker " << worker_rank_ << " retry budget ("
                    << retry_.budget << ") exhausted waiting for " << what
                    << "; retransmitting at max timeout";
    } else {
      ++attempt;
    }
    resend();
  }
}

void SparseWorkerClient::run_round(std::int64_t round,
                                   const std::vector<SparseBatch>& full_batches) {
  run_round(round, full_batches, read_);
}

void SparseWorkerClient::run_round(std::int64_t round,
                                   const std::vector<SparseBatch>& full_batches,
                                   const ps::ReadOptions& opts) {
  FPS_CHECK(full_batches.size() == tables_.size()) << "one batch per table required";
  const auto num_servers = static_cast<std::uint32_t>(server_nodes_.size());
  std::vector<char> active;
  {
    std::scoped_lock lock(mu_);
    active = active_;
  }

  // Shard every table's batch once; pushes reuse the shards, pulls reuse the
  // row lists. route_active == route when every slot is active, so the
  // non-elastic path is unchanged bit for bit.
  std::vector<std::vector<SparseBatch>> shards(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    FPS_CHECK(full_batches[t].table_id == tables_[t].table_id) << "batch order mismatch";
    shards[t].reserve(num_servers);
    for (std::uint32_t m = 0; m < num_servers; ++m) {
      shards[t].push_back(shard_of_active(full_batches[t], m, active));
    }
  }

  // Phase 1: push every shard — empty ones included, they are the round
  // markers — and wait for every ack. Inactive slots get no marker: their
  // round clock is reseeded at the epoch fence when they rejoin.
  {
    std::unique_lock lock(mu_);
    pushes_.clear();
    pushes_.reserve(tables_.size() * num_servers);
    for (std::uint32_t m = 0; m < num_servers; ++m) {
      if (active[m] == 0) continue;
      for (std::size_t t = 0; t < tables_.size(); ++t) {
        PendingPush p;
        p.server = m;
        p.seq = next_seq_[m]++;
        p.round = round;
        p.frame = encode_sparse(shards[t][m]);
        pushes_.push_back(std::move(p));
      }
    }
    unacked_ = static_cast<std::uint32_t>(pushes_.size());
    for (const PendingPush& p : pushes_) send_push_locked(p);
    await_locked(
        lock, [this] { return unacked_ == 0; },
        [this] {
          for (const PendingPush& p : pushes_) {
            if (!p.acked) send_push_locked(p);
          }
        },
        "push acks");
  }

  // Phase 2: pull back the rows we touched (non-empty shards only) and fold
  // the responses in ticket-issue order.
  {
    std::unique_lock lock(mu_);
    pulls_.clear();
    for (std::uint32_t m = 0; m < num_servers; ++m) {
      for (std::size_t t = 0; t < tables_.size(); ++t) {
        if (shards[t][m].rows.empty()) continue;
        PendingPull p;
        p.ticket = next_ticket_++;
        p.server = m;
        p.round = round;
        p.dst = server_nodes_[m];
        // The round number IS the sparse clock; opts.clock is ignored.
        ps::ReadOptions effective = opts;
        effective.clock = round;
        p.seq = ps::encode_read_bound(effective);
        if (effective.bounded() && effective.prefer_replica && !read_replicas_[m].empty()) {
          const std::size_t n = read_replicas_[m].size() + 1;
          const std::size_t pick = read_rr_++ % n;
          if (pick > 0) p.dst = read_replicas_[m][pick - 1];
        }
        SparseBatch req;
        req.table_id = shards[t][m].table_id;
        req.dim = shards[t][m].dim;
        req.rows = shards[t][m].rows;
        p.frame = encode_sparse(req);
        pulls_.push_back(std::move(p));
      }
    }
    unanswered_ = static_cast<std::uint32_t>(pulls_.size());
    for (const PendingPull& p : pulls_) send_pull_locked(p);
    await_locked(
        lock, [this] { return unanswered_ == 0; },
        [this] {
          // Timed-out bounded pulls re-aim at the head: the chosen replica
          // may be dead, and the head always serves.
          for (PendingPull& p : pulls_) {
            if (!p.received) {
              p.dst = server_nodes_[p.server];
              send_pull_locked(p);
            }
          }
        },
        "pull responses");
    for (const PendingPull& p : pulls_) {
      pull_digest_ = fold_pull_digest(pull_digest_, p.resp);
    }
    pulls_.clear();
  }
}

void SparseWorkerClient::set_active(std::vector<char> active) {
  std::scoped_lock lock(mu_);
  FPS_CHECK(active.size() == server_nodes_.size())
      << "active vector size " << active.size() << " != slots " << server_nodes_.size();
  active_ = std::move(active);
}

std::uint64_t SparseWorkerClient::pull_digest() const {
  std::scoped_lock lock(mu_);
  return pull_digest_;
}

std::int64_t SparseWorkerClient::retries() const {
  std::scoped_lock lock(mu_);
  return retries_;
}

std::int64_t SparseWorkerClient::replica_reads() const {
  std::scoped_lock lock(mu_);
  return replica_reads_;
}

std::int64_t SparseWorkerClient::read_redirects() const {
  std::scoped_lock lock(mu_);
  return read_redirects_;
}

}  // namespace fluentps::embed
