#include "embed/table_spec.h"

#include <set>

#include "common/logging.h"

namespace fluentps::embed {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

std::vector<TableSpec> parse_tables(const std::string& text) {
  std::vector<TableSpec> specs;
  if (text.empty()) return specs;
  std::set<std::string> names;
  for (const std::string& entry : split(text, ';')) {
    FPS_CHECK(!entry.empty()) << "empty table entry in tables= spec '" << text << "'";
    TableSpec spec;
    spec.table_id = static_cast<std::uint32_t>(specs.size());
    const std::size_t colon = entry.find(':');
    spec.name = entry.substr(0, colon);
    FPS_CHECK(!spec.name.empty()) << "table entry '" << entry << "' has no name";
    FPS_CHECK(names.insert(spec.name).second) << "duplicate table name '" << spec.name << "'";
    if (colon != std::string::npos) {
      for (const std::string& kv : split(entry.substr(colon + 1), ',')) {
        const std::size_t eq = kv.find('=');
        FPS_CHECK(eq != std::string::npos) << "table option '" << kv << "' is not k=v";
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "dim") {
          spec.dim = static_cast<std::uint32_t>(std::stoul(val));
        } else if (key == "rows") {
          spec.rows = std::stoull(val);
        } else if (key == "opt") {
          spec.opt.kind = ml::parse_row_opt(val);
        } else if (key == "lr") {
          spec.opt.lr = std::stof(val);
        } else if (key == "init") {
          spec.init_scale = std::stof(val);
        } else if (key == "qos" || key == "qos_weight") {
          spec.qos_weight = std::stod(val);
        } else {
          FPS_CHECK(false) << "unknown table option '" << key << "' in '" << entry << "'";
        }
      }
    }
    FPS_CHECK(spec.dim > 0) << "table '" << spec.name << "': dim must be positive";
    FPS_CHECK(spec.rows > 0) << "table '" << spec.name << "': rows must be positive";
    FPS_CHECK(spec.qos_weight > 0.0) << "table '" << spec.name << "': qos weight must be positive";
    specs.push_back(std::move(spec));
  }
  return specs;
}

TableRegistry::TableRegistry(std::vector<TableSpec> specs) : specs_(std::move(specs)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    FPS_CHECK(specs_[i].table_id == i)
        << "table '" << specs_[i].name << "' id " << specs_[i].table_id
        << " != registry position " << i;
  }
}

const TableSpec* TableRegistry::find(std::uint32_t table_id) const noexcept {
  return table_id < specs_.size() ? &specs_[table_id] : nullptr;
}

const TableSpec& TableRegistry::at(std::uint32_t table_id) const {
  const TableSpec* spec = find(table_id);
  FPS_CHECK(spec != nullptr) << "unknown table id " << table_id;
  return *spec;
}

}  // namespace fluentps::embed
