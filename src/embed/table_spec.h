// Table specs and the multi-tenant TableRegistry.
//
// One server set serves many embedding tables at once — different jobs,
// dimensions, optimizers and QoS weights. A TableSpec is the per-tenant
// contract: its table_id keys the wire frames, its name keys the tenant's
// metrics namespace (tenant.<name>.*), and its qos_weight feeds the server's
// deficit-round-robin arbiter so a hot tenant cannot starve the others.
//
// Specs parse from the CLI `tables=` knob:
//   tables=emb:dim=8,rows=512,opt=adagrad,lr=0.05,qos=2;ads:dim=4
// — ';' separates tables, each is `name[:k=v,...]`. table_id is the position
// in the list (stable and identical on every node for a given config).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/row_optimizer.h"

namespace fluentps::embed {

struct TableSpec {
  std::string name = "t0";
  std::uint32_t table_id = 0;   ///< assigned by declaration order
  std::uint32_t dim = 8;        ///< row width (floats)
  std::uint64_t rows = 1024;    ///< logical key space: row ids in [0, rows)
  ml::RowOptimizerSpec opt;     ///< server-side per-row optimizer
  float init_scale = 0.1f;      ///< lazy init: N(0, init_scale) per element
  double qos_weight = 1.0;      ///< relative service share under contention
};

/// Parse the `tables=` syntax above. Empty text -> empty vector. FPS_CHECK
/// on malformed entries, duplicate names, or non-positive dim/rows.
[[nodiscard]] std::vector<TableSpec> parse_tables(const std::string& text);

/// Immutable lookup from table_id to spec, shared by workers and servers.
class TableRegistry {
 public:
  TableRegistry() = default;
  explicit TableRegistry(std::vector<TableSpec> specs);

  /// Spec for table_id, or nullptr for an unknown id (malformed frame).
  [[nodiscard]] const TableSpec* find(std::uint32_t table_id) const noexcept;
  [[nodiscard]] const TableSpec& at(std::uint32_t table_id) const;

  [[nodiscard]] const std::vector<TableSpec>& specs() const noexcept { return specs_; }
  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return specs_.empty(); }

 private:
  std::vector<TableSpec> specs_;  // index == table_id (checked at construction)
};

}  // namespace fluentps::embed
