// Weighted deficit-round-robin arbiter for multi-tenant serving.
//
// When several tables have work queued on one server (round drains to run,
// parked pulls to answer), the host serves them one unit at a time in the
// order this arbiter picks. Each tenant accrues credit proportional to its
// qos_weight; serving a unit costs one credit. Over any busy interval the
// service counts converge to the weight ratio, so a hot tenant (zipfian
// traffic, big rounds) cannot starve a light one — the classic DRR
// guarantee, picked deterministically (fixed tenant order, no randomness) so
// sim runs stay bit-identical.
#pragma once

#include <cstdint>
#include <vector>

namespace fluentps::embed {

class QosArbiter {
 public:
  /// Register a tenant. Weights are clamped to a small positive floor so a
  /// misconfigured 0 cannot starve its own tenant forever.
  void add_tenant(std::uint32_t id, double weight);

  /// Pick the next tenant to serve among `ready` (ids previously registered;
  /// must be non-empty). Charges one unit of service to the winner.
  [[nodiscard]] std::uint32_t pick(const std::vector<std::uint32_t>& ready);

  /// Units served to `id` so far.
  [[nodiscard]] std::int64_t served(std::uint32_t id) const;

 private:
  struct Tenant {
    std::uint32_t id = 0;
    double weight = 1.0;
    double deficit = 0.0;
    std::int64_t served = 0;
  };

  [[nodiscard]] Tenant* find(std::uint32_t id);

  std::vector<Tenant> tenants_;  // sorted by id (insertion keeps order)
  std::size_t cursor_ = 0;       // round-robin position
};

}  // namespace fluentps::embed
