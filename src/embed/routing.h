// Hash-shard routing for the sparse key space (table_id, row_id).
//
// Dense slices are range-sharded (ps/slicing.h); embedding rows are accessed
// by data-dependent ids with no useful locality, so they hash-shard instead:
// every (table_id, row_id) key maps to exactly one server rank, identically
// on every worker and for the whole run. The mix is a SplitMix64 finalizer —
// the same bijective avalanche the Rng uses — so adjacent row ids spread
// across servers and two tables sharing a row id land independently (the
// table id perturbs the key before the avalanche, which is what the
// cross-table collision tests pin down).
#pragma once

#include <cstdint>
#include <vector>

namespace fluentps::embed {

/// Avalanche a sparse key into a 64-bit hash. Pure and stable: the value is
/// part of the wire contract (workers route by it, servers own rows by it).
[[nodiscard]] inline std::uint64_t mix_key(std::uint64_t table_id, std::uint64_t row_id) noexcept {
  std::uint64_t x = row_id + 0x9E3779B97F4A7C15ull * (table_id + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Server rank owning (table_id, row_id) among num_servers shards.
[[nodiscard]] inline std::uint32_t route(std::uint32_t table_id, std::uint64_t row_id,
                                         std::uint32_t num_servers) noexcept {
  return static_cast<std::uint32_t>(mix_key(table_id, row_id) % num_servers);
}

/// Owner among the *active* subset of a fixed slot space (elastic membership,
/// DESIGN.md §14). Keys whose base slot (mix % slots) is active stay put, so
/// activating or draining a slot only re-routes the displaced keys — the
/// sparse analogue of the dense planner moving whole slices. Displaced keys
/// pick an active survivor via a second avalanche (not a linear probe), so
/// they spread evenly instead of piling onto the next rank. With every slot
/// active this degenerates to route(), bit for bit.
[[nodiscard]] inline std::uint32_t route_active(std::uint32_t table_id, std::uint64_t row_id,
                                                const std::vector<char>& active) noexcept {
  const std::uint64_t h = mix_key(table_id, row_id);
  const auto base = static_cast<std::uint32_t>(h % active.size());
  if (active[base] != 0) return base;
  std::uint32_t n_active = 0;
  for (const char a : active) n_active += static_cast<std::uint32_t>(a != 0);
  std::uint64_t x = h + 0x9E3779B97F4A7C15ull;  // re-avalanche the displaced key
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  auto pick = static_cast<std::uint32_t>(x % n_active);
  for (std::uint32_t m = 0; m < active.size(); ++m) {
    if (active[m] == 0) continue;
    if (pick == 0) return m;
    --pick;
  }
  return base;  // unreachable: n_active > 0 guarantees a hit above
}

}  // namespace fluentps::embed
