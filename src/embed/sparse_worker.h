// Sparse worker client for the thread backend — the sparse twin of
// ps::WorkerClient, speaking the kSparsePush/kSparsePull protocol.
//
// Each BSP round the training thread calls run_round() with one full batch
// per table; the client shards every batch by route(), sends one kSparsePush
// per (table, server) — including empty shards, which are the round markers
// that advance the server's round clock — waits for every ack, then pulls
// the pushed rows back and folds the responses into a running digest in
// ticket-issue order (deterministic per seed).
//
// Reliability mirrors the dense client: per-(worker, server) sequence
// numbers on pushes (pulls ride seq 0 — tickets dedup them server-side),
// retry-ladder retransmits of whatever is outstanding, and kPromote rebinds
// a shard to its new head and immediately re-offers outstanding traffic.
//
// Reads share the dense client's ps::ReadOptions surface (DESIGN.md §13):
// with kBounded the round's pulls carry the staleness bound in `seq`
// (clock = the round number) and round-robin across {head} ∪ read_replicas;
// a replica whose completed-round clock cannot cover the bound answers
// kPullRedirect and the pull retries at the head under the same ticket. At
// bound 0 the BSP round clock makes replica answers bit-identical to the
// head's, so offloaded training keeps the same pull digest.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "embed/sparse_codec.h"
#include "embed/table_spec.h"
#include "fault/retry_policy.h"
#include "net/message.h"
#include "net/transport.h"
#include "ps/read_options.h"

namespace fluentps::embed {

struct SparseWorkerSpec {
  net::NodeId node_id = 0;
  std::uint32_t worker_rank = 0;          ///< sparse rank space, [0, sparse workers)
  std::vector<net::NodeId> server_nodes;  ///< head node of shard m at [m]
  std::vector<TableSpec> tables;
  fault::RetryPolicy retry;
  std::uint64_t seed = 1;  ///< jitter stream seed
  /// Read routing (DESIGN.md §13): default ReadOptions for every round's
  /// pulls (clock is overridden with the round number) and, per server rank,
  /// the non-head chain members eligible to serve bounded pulls.
  ps::ReadOptions read;
  std::vector<std::vector<net::NodeId>> read_replicas;
};

class SparseWorkerClient {
 public:
  SparseWorkerClient(SparseWorkerSpec spec, net::Transport& transport);

  SparseWorkerClient(const SparseWorkerClient&) = delete;
  SparseWorkerClient& operator=(const SparseWorkerClient&) = delete;

  /// Transport handler; register with transport.register_node(node_id, ...).
  void handle(net::Message&& msg);

  /// One BSP round: push `full_batches[t]` (one per table, sharded here),
  /// wait for all acks, pull the pushed rows, wait for all responses, fold
  /// them into the pull digest. Blocks until the round completes. The pulls
  /// use the spec's ReadOptions (clock = `round`).
  void run_round(std::int64_t round, const std::vector<SparseBatch>& full_batches);

  /// Same, with explicit per-round ReadOptions (opts.clock is ignored — the
  /// round number is the sparse clock).
  void run_round(std::int64_t round, const std::vector<SparseBatch>& full_batches,
                 const ps::ReadOptions& opts);

  /// Elastic membership (DESIGN.md §14): set the active slot vector used to
  /// shard subsequent rounds (size == server slot count; all-active initially,
  /// which routes identically to the static route()). Called at the epoch
  /// fence while this worker's training thread is parked between rounds.
  void set_active(std::vector<char> active);

  [[nodiscard]] std::uint64_t pull_digest() const;
  [[nodiscard]] std::int64_t retries() const;
  /// Bounded-pull shards answered by a replica / redirected to the head.
  [[nodiscard]] std::int64_t replica_reads() const;
  [[nodiscard]] std::int64_t read_redirects() const;
  [[nodiscard]] std::uint32_t rank() const noexcept { return worker_rank_; }
  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }

 private:
  struct PendingPush {
    std::uint32_t server = 0;
    std::uint64_t seq = 0;
    std::int64_t round = 0;
    std::vector<float> frame;  ///< encoded kSparsePush payload, kept for resends
    bool acked = false;
  };
  struct PendingPull {
    std::uint64_t ticket = 0;
    std::uint32_t server = 0;
    std::int64_t round = 0;
    net::NodeId dst = 0;       ///< current target: RR pick, re-aimed at the head
    std::uint64_t seq = 0;     ///< encoded staleness bound (0 = strong)
    std::vector<float> frame;  ///< encoded rows-only request
    SparseBatch resp;
    bool received = false;
  };

  void send_push_locked(const PendingPush& p);
  void send_pull_locked(const PendingPull& p);
  template <typename Pred, typename Resend>
  void await_locked(std::unique_lock<std::mutex>& lock, Pred done, Resend resend,
                    const char* what);

  net::NodeId node_id_;
  std::uint32_t worker_rank_;
  std::vector<net::NodeId> server_nodes_;
  std::vector<TableSpec> tables_;
  fault::RetryPolicy retry_;
  ps::ReadOptions read_;  ///< default ReadOptions for run_round
  std::vector<std::vector<net::NodeId>> read_replicas_;  ///< per server rank
  net::Transport& transport_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Rng retry_rng_;

  std::vector<char> active_;             ///< per server slot; 0 = drained (elastic)
  std::vector<std::uint64_t> next_seq_;  ///< per server, starts at 1; pushes only
  std::uint64_t next_ticket_;            ///< worker rank in the high bits
  std::vector<PendingPush> pushes_;      ///< current round, one per (server, table)
  std::vector<PendingPull> pulls_;       ///< current round, non-empty shards only
  std::uint32_t unacked_ = 0;
  std::uint32_t unanswered_ = 0;
  std::uint64_t pull_digest_;
  std::int64_t retries_ = 0;
  bool budget_warned_ = false;
  std::size_t read_rr_ = 0;  ///< round-robin cursor over {head} ∪ replicas
  std::int64_t replica_reads_ = 0;
  std::int64_t read_redirects_ = 0;
};

}  // namespace fluentps::embed
