#include "embed/sparse_replica.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "embed/sparse_codec.h"
#include "ps/read_options.h"

namespace fluentps::embed {

SparseReplica::SparseReplica(SparseReplicaSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      server_rank_(spec.core.server_rank),
      chain_pos_(spec.chain_pos),
      successor_(spec.successor),
      transport_(transport),
      core_(std::make_unique<SparseCore>(spec.core)) {
  FPS_CHECK(chain_pos_ >= 1) << "chain position 0 is the head, not a replica";
}

void SparseReplica::handle(net::Message&& msg) {
  if (released_) return;  // promoted away; the slot now routes to a SparseHost
  switch (msg.type) {
    case net::MsgType::kSparseReplicate: {
      const std::uint64_t lsn = msg.request_id;
      if (lsn < next_lsn_) {
        // Duplicate: re-forward if still pending below (the loss may have
        // been downstream), re-ack upstream if trimmed (the lost frame may
        // have been the ack). Apply is skipped either way (exactly-once).
        ++dup_drops_;
        if (replica::LogEntry* e = log_.find_lsn(lsn)) {
          ++reforwards_;
          forward(*e);
        } else {
          ack_upstream(msg.src, lsn);
        }
        return;
      }
      if (lsn > next_lsn_) {
        // Out of order: park until the gap fills. The frame may borrow
        // transport-owned bytes — take ownership first.
        msg.values.ensure_owned();
        stash_.insert_or_assign(lsn, std::move(msg));
        return;
      }
      deliver(std::move(msg));
      for (auto it = stash_.begin(); it != stash_.end() && it->first == next_lsn_;) {
        net::Message parked = std::move(it->second);
        it = stash_.erase(it);
        deliver(std::move(parked));
      }
      return;
    }
    case net::MsgType::kSparseReplicateAck: {
      // Cumulative horizon from our successor: trim and propagate upstream.
      std::map<net::NodeId, std::uint64_t> horizons;
      log_.trim_to(msg.request_id, [&](const replica::LogEntry& e) {
        std::uint64_t& h = horizons[e.upstream];
        h = std::max(h, e.lsn);
      });
      for (const auto& [dst, h] : horizons) ack_upstream(dst, h);
      return;
    }
    case net::MsgType::kSparsePull:
      on_read(std::move(msg));
      return;
    case net::MsgType::kShutdown:
      return;
    default:
      FPS_LOG(Warn) << "sparse replica " << node_id_ << " ignoring "
                    << net::to_string(msg.type);
      return;
  }
}

void SparseReplica::on_read(net::Message&& msg) {
  SparseBatch req;
  if (!decode_sparse(msg.values.span(), &req) ||
      core_->registry().find(req.table_id) == nullptr) {
    FPS_LOG(Warn) << "sparse replica " << node_id_ << ": dropping malformed pull from "
                  << msg.src;
    return;
  }
  // The completed-round clock is the sparse staleness horizon: everything up
  // to and including that round is folded into the replicated table. Strong
  // pulls (seq == 0) never route here; redirect them defensively — only the
  // head's service sweep may gate them.
  const std::int64_t h = core_->completed_round(req.table_id);
  const bool satisfiable =
      ps::is_bounded_read(msg.seq) && h + ps::decode_read_bound(msg.seq) >= msg.progress;
  if (!satisfiable) {
    ++read_fallbacks_;
    net::Message rd;
    rd.type = net::MsgType::kPullRedirect;
    rd.src = node_id_;
    rd.dst = msg.src;
    rd.request_id = msg.request_id;
    rd.progress = h;
    rd.worker_rank = msg.worker_rank;
    rd.server_rank = server_rank_;
    transport_.send(std::move(rd));
    return;
  }
  if (!read_windows_[msg.worker_rank].accept(msg.request_id)) ++reads_deduped_;

  // Same response shape as SparseHost::answer_pull_locked, from the
  // replicated tables. The BSP round clock guarantees the table cannot have
  // advanced past the requested round while its pulls are outstanding, so at
  // bound 0 these bytes equal the head's answer bit for bit.
  const std::uint32_t dim = core_->registry().at(req.table_id).dim;
  SparseBatch resp;
  resp.table_id = req.table_id;
  resp.dim = dim;
  resp.rows = std::move(req.rows);
  resp.values.resize(resp.rows.size() * dim);
  EmbeddingTable& table = core_->table(req.table_id);
  for (std::size_t i = 0; i < resp.rows.size(); ++i) {
    table.copy_row(resp.rows[i], std::span<float>(resp.values).subspan(i * dim, dim));
  }
  net::Message m;
  m.type = net::MsgType::kSparsePullResp;
  m.src = node_id_;
  m.dst = msg.src;
  m.request_id = msg.request_id;
  m.seq = ps::kReplicaServedSeq;  // replica-served marker for the client oracle
  m.progress = msg.progress;
  m.worker_rank = msg.worker_rank;
  m.server_rank = server_rank_;
  encode_sparse(resp, m.values);
  transport_.send(std::move(m));
  ++reads_served_;
}

void SparseReplica::deliver(net::Message&& msg) {
  const std::uint64_t lsn = msg.request_id;
  const std::uint32_t w = msg.worker_rank;

  // Mirror the head's dedup decision: the head only replicates pushes its own
  // window accepted, so `fresh` is false here only across a promote replay —
  // where skipping the re-apply is exactly right.
  const bool fresh = core_->accept_push(w, msg.seq);
  if (fresh) {
    SparseBatch batch;
    FPS_CHECK(decode_sparse(msg.values.span(), &batch))
        << "sparse replica " << node_id_ << ": head forwarded a malformed frame";
    core_->ingest(msg.progress, batch, w);
    // Drain eagerly: a round's content is frozen once complete, so draining
    // here vs in the head's service sweep yields bit-identical tables.
    for (std::uint32_t t : core_->drainable()) core_->drain_one(t);
    ++applied_;
  }
  next_lsn_ = lsn + 1;

  if (successor_ != 0) {
    replica::LogEntry e;
    e.lsn = lsn;
    e.worker_rank = w;
    e.seq = msg.seq;
    e.progress = msg.progress;
    e.values.assign(msg.values.begin(), msg.values.end());
    e.upstream = msg.src;
    forward(log_.insert(std::move(e)));
    ++forwarded_;
  } else {
    ack_upstream(msg.src, lsn);  // tail: contiguous stream, cumulative ack
  }
}

void SparseReplica::forward(const replica::LogEntry& e) {
  net::Message fwd;
  fwd.type = net::MsgType::kSparseReplicate;
  fwd.src = node_id_;
  fwd.dst = successor_;
  fwd.request_id = e.lsn;
  fwd.seq = e.seq;
  fwd.progress = e.progress;
  fwd.worker_rank = e.worker_rank;
  fwd.server_rank = server_rank_;
  if (transport_.inline_delivery()) {
    fwd.values = net::Payload::borrow(e.values);
  } else {
    fwd.values.assign(e.values.begin(), e.values.end());
  }
  transport_.send(std::move(fwd));
}

void SparseReplica::ack_upstream(net::NodeId dst, std::uint64_t lsn) {
  net::Message ack;
  ack.type = net::MsgType::kSparseReplicateAck;
  ack.src = node_id_;
  ack.dst = dst;
  ack.request_id = lsn;
  ack.server_rank = server_rank_;
  transport_.send(std::move(ack));
}

SparseReleasedState SparseReplica::release_state() {
  FPS_CHECK(!released_) << "sparse replica " << node_id_ << " released twice";
  released_ = true;
  SparseReleasedState s;
  s.core = std::move(core_);
  if (successor_ == 0) log_.set_next_lsn(next_lsn_);
  s.log = std::move(log_);
  stash_.clear();
  return s;
}

}  // namespace fluentps::embed
