// Server-side host for sparse embedding traffic — the sparse twin of
// ps::Server, co-resident on the same server nodes (one node serves the
// dense shard AND every sparse table shard; the runtime routes by message
// type).
//
// Responsibilities:
//  * kSparsePush: SeqWindow dedup (PR-1 reliability extends to sparse
//    traffic), ingest into the round reducer, ack — immediately when
//    unreplicated, deferred to the chain ack horizon when a successor is
//    configured (PR-5 zero-loss semantics, same ReplicationLog machinery;
//    the log stores the raw codec frame and forwards it verbatim as
//    kSparseReplicate).
//  * kSparsePull: park until the requested round has fully drained, then
//    answer with the rows' current values. Duplicate pulls are re-answered
//    by re-reading: the round clock guarantees the table cannot advance past
//    a round whose pulls are still outstanding (see sparse_core.h), so the
//    re-read is bit-identical to the lost original.
//  * Multi-tenant service: when several tables have work (drains, parked
//    pulls), one QosArbiter unit at a time in deficit-round-robin order,
//    with per-tenant metrics under tenant.<name>.*.
//
// Threading matches ps::Server: handle() runs on the node's single dispatch
// context; the internal mutex only fences the promotion handoff (adopt()
// runs on the chaos thread in the thread backend).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "embed/qos.h"
#include "embed/sparse_core.h"
#include "net/message.h"
#include "net/transport.h"
#include "replica/replication_log.h"

namespace fluentps::embed {

/// Promotion handoff bundle (what SparseReplica::release_state returns and
/// SparseHost::adopt consumes).
struct SparseReleasedState {
  std::unique_ptr<SparseCore> core;
  replica::ReplicationLog log;
};

struct SparseHostSpec {
  net::NodeId node_id = 0;
  SparseCoreSpec core;
  net::NodeId replica_successor = 0;  ///< 0 = unreplicated (ack immediately)
  Metrics* metrics = nullptr;         ///< optional tenant.* counters
};

class SparseHost {
 public:
  SparseHost(SparseHostSpec spec, net::Transport& transport);

  SparseHost(const SparseHost&) = delete;
  SparseHost& operator=(const SparseHost&) = delete;

  /// Transport handler for kSparsePush / kSparsePull / kSparseReplicateAck.
  void handle(net::Message&& msg);

  /// Promotion: install a replica's released core + log in place of the
  /// fresh ones (parked-pull state died with the old head; workers re-pull
  /// through their retry ladder after kPromote).
  void adopt(SparseReleasedState&& state);

  /// Re-forward pending log entries downstream after a promotion (no-op for
  /// a tail/unreplicated host).
  void replay_replication_log();

  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }
  [[nodiscard]] std::uint32_t rank() const noexcept { return server_rank_; }

  /// Order-independent digest of every table shard (sums across servers).
  [[nodiscard]] std::uint64_t state_digest() const;

  /// Elastic fence access (DESIGN.md §14): the controller mutates the core
  /// directly (extract_moved_rows / install_rows / seed_round_clock) while
  /// every sparse worker is parked at the epoch fence — no concurrent
  /// handle() can run, so no locking is needed or taken.
  [[nodiscard]] SparseCore& core_for_fence() noexcept { return *core_; }

  [[nodiscard]] std::int64_t dedup_hits() const;
  [[nodiscard]] std::int64_t pushes_ingested() const;
  [[nodiscard]] std::int64_t rows_applied() const;
  [[nodiscard]] std::int64_t pulls_answered() const;
  [[nodiscard]] std::int64_t replica_forwards() const;
  [[nodiscard]] std::int64_t repl_repairs() const;
  [[nodiscard]] std::int64_t stale_replicates() const;
  [[nodiscard]] std::size_t replication_high_water() const;
  [[nodiscard]] std::size_t parked_pulls() const;
  /// Reducer ingest-ring backpressure events / depth high-water (all tables).
  [[nodiscard]] std::uint64_t reducer_ring_stalls() const;
  [[nodiscard]] std::size_t reducer_ring_depth_high_water() const;

 private:
  struct ParkedPull {
    net::NodeId src = 0;
    std::uint32_t worker = 0;
    std::uint32_t table_id = 0;
    std::int64_t round = 0;
    std::vector<std::uint64_t> rows;
  };

  void on_push(net::Message&& msg, std::vector<net::Message>& out);
  void on_pull(net::Message&& msg, std::vector<net::Message>& out);
  void on_replicate_ack(net::Message&& msg, std::vector<net::Message>& out);

  /// Drain/answer everything currently serviceable, one arbiter unit at a
  /// time (called with mu_ held; responses are queued on `out`).
  void service_locked(std::vector<net::Message>& out);
  void answer_pull_locked(std::uint64_t ticket, const ParkedPull& p,
                          std::vector<net::Message>& out);
  [[nodiscard]] net::Message make_push_ack(net::NodeId dst, std::uint64_t request_id,
                                           std::uint64_t seq, std::int64_t progress,
                                           std::uint32_t worker_rank) const;
  [[nodiscard]] net::Message make_replicate(std::uint64_t lsn, std::uint32_t worker_rank,
                                            std::uint64_t seq, std::int64_t progress) const;
  void bump_tenant(std::uint32_t table_id, const char* counter, std::int64_t delta = 1);

  net::NodeId node_id_;
  std::uint32_t server_rank_;
  net::NodeId replica_successor_;
  Metrics* metrics_;
  net::Transport& transport_;

  mutable std::mutex mu_;  ///< fences handle() against the promotion handoff
  std::unique_ptr<SparseCore> core_;
  replica::ReplicationLog log_;
  QosArbiter arbiter_;
  std::map<std::uint64_t, ParkedPull> parked_;  ///< ticket-ordered (deterministic)

  /// Cached tenant.<name>.<counter> handles: the "tenant." + name + "." +
  /// counter concatenation (two heap allocations per bump) runs once per
  /// (table, counter); after that a bump is one wait-free Counter::add.
  /// Only touched on the host's serialized dispatch context.
  std::map<std::pair<std::uint32_t, std::string_view>, obs::Counter*> tenant_cache_;

  std::int64_t dedup_hits_ = 0;
  std::int64_t pushes_ingested_ = 0;
  std::int64_t rows_applied_ = 0;
  std::int64_t pulls_answered_ = 0;
  std::int64_t replica_forwards_ = 0;
  std::int64_t repl_repairs_ = 0;
  std::int64_t stale_replicates_ = 0;
};

}  // namespace fluentps::embed
