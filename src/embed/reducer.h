// Per-round MPSC gradient reducer (the OpenEmbedding "gradient collection"
// stage, adapted to FluentPS's round clock).
//
// Many producers (one per sparse worker, arriving through the server's
// dispatch context) append round-stamped contributions; one consumer — the
// host's service sweep — drains a round once every worker has contributed.
// Draining with reduction ON coalesces all of a hot row's gradients into one
// summed vector and ONE row_apply; OFF applies each contribution separately.
// For SGD the two agree up to floating-point reassociation — lr*(g1+g2)
// versus lr*g1 then lr*g2 — so values match numerically but not bitwise on
// hot rows; for AdaGrad they are deliberately different algorithms
// (accumulator sees one summed step vs per-worker steps). Either way each
// mode is itself deterministic: the zero-loss digest oracle (workload.h)
// honors the flag, so runs are compared against the matching reference.
// bench/ablation_embedding measures the throughput side of this trade.
//
// Determinism: contributions are stored per worker and consumed in worker-
// rank order regardless of arrival order, so the drain is a pure function of
// the round's content.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/logging.h"

namespace fluentps::embed {

/// One worker's gradients for one (table, round): sorted unique rows and
/// their row-major gradients. Empty rows = round marker only (the worker
/// owned no rows of this table on this shard that round).
struct Contribution {
  std::uint32_t worker = 0;
  std::vector<std::uint64_t> rows;
  std::vector<float> grads;  ///< rows.size() * dim
};

class RoundReducer {
 public:
  /// Record a fresh (deduped upstream) contribution for `round`.
  void add(std::int64_t round, Contribution c) {
    rounds_[round].push_back(std::move(c));
  }

  /// Remove and return the round's contributions sorted by worker rank.
  /// Missing round -> empty vector (all contributions were bare markers).
  [[nodiscard]] std::vector<Contribution> take_round(std::int64_t round) {
    const auto it = rounds_.find(round);
    if (it == rounds_.end()) return {};
    std::vector<Contribution> out = std::move(it->second);
    rounds_.erase(it);
    std::sort(out.begin(), out.end(),
              [](const Contribution& a, const Contribution& b) { return a.worker < b.worker; });
    return out;
  }

  [[nodiscard]] std::size_t pending_rounds() const noexcept { return rounds_.size(); }

 private:
  std::map<std::int64_t, std::vector<Contribution>> rounds_;
};

/// Reduce a drained round: per-row gradient sums, accumulated in worker-rank
/// order (the contributions must already be sorted by worker, as take_round
/// returns them). Rows come out sorted ascending.
struct ReducedRound {
  std::vector<std::uint64_t> rows;
  std::vector<float> sums;  ///< rows.size() * dim
};

[[nodiscard]] inline ReducedRound reduce_contributions(
    const std::vector<Contribution>& contribs, std::uint32_t dim) {
  std::map<std::uint64_t, std::vector<float>> acc;  // ordered: rows sorted on output
  for (const Contribution& c : contribs) {
    FPS_CHECK(c.grads.size() == c.rows.size() * dim) << "contribution width mismatch";
    for (std::size_t i = 0; i < c.rows.size(); ++i) {
      auto [it, inserted] = acc.try_emplace(c.rows[i]);
      if (inserted) it->second.assign(dim, 0.0f);
      const float* g = c.grads.data() + i * dim;
      for (std::uint32_t k = 0; k < dim; ++k) it->second[k] += g[k];
    }
  }
  ReducedRound out;
  out.rows.reserve(acc.size());
  out.sums.reserve(acc.size() * dim);
  for (auto& [row, sum] : acc) {
    out.rows.push_back(row);
    out.sums.insert(out.sums.end(), sum.begin(), sum.end());
  }
  return out;
}

}  // namespace fluentps::embed
