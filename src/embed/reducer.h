// Per-round MPSC gradient reducer (the OpenEmbedding "gradient collection"
// stage, adapted to FluentPS's round clock).
//
// Many producers (one per sparse worker, arriving through the server's
// dispatch context) append round-stamped contributions; one consumer — the
// host's service sweep — drains a round once every worker has contributed.
// Draining with reduction ON coalesces all of a hot row's gradients into one
// summed vector and ONE row_apply; OFF applies each contribution separately.
// For SGD the two agree up to floating-point reassociation — lr*(g1+g2)
// versus lr*g1 then lr*g2 — so values match numerically but not bitwise on
// hot rows; for AdaGrad they are deliberately different algorithms
// (accumulator sees one summed step vs per-worker steps). Either way each
// mode is itself deterministic: the zero-loss digest oracle (workload.h)
// honors the flag, so runs are compared against the matching reference.
// bench/ablation_embedding measures the throughput side of this trade.
//
// Determinism: contributions are stored per worker and consumed in worker-
// rank order regardless of arrival order, so the drain is a pure function of
// the round's content.
//
// Ingest staging (DESIGN.md §11): add() lands contributions in the same
// bounded MPSC ring the dense combiner handoff uses (common/mpsc_ring.h)
// instead of mutating the round map per arrival; the map only pays its
// node-allocation and rebalancing cost when a drain (or a full ring) flushes
// the staged batch. Determinism is untouched — take_round() flushes first
// and still sorts by worker rank, so the drained round is the same pure
// function of its content regardless of staging.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mpsc_ring.h"

namespace fluentps::embed {

/// One worker's gradients for one (table, round): sorted unique rows and
/// their row-major gradients. Empty rows = round marker only (the worker
/// owned no rows of this table on this shard that round).
struct Contribution {
  std::uint32_t worker = 0;
  std::vector<std::uint64_t> rows;
  std::vector<float> grads;  ///< rows.size() * dim
};

class RoundReducer {
 public:
  // The ring lives behind a unique_ptr (atomics are immovable) so the
  // reducer itself stays movable — TableState vectors and promotion handoffs
  // move it around.
  explicit RoundReducer(std::uint32_t ring_depth = 64)
      : ring_(std::make_unique<MpscRing<Staged>>(ring_depth)) {}

  /// Record a fresh (deduped upstream) contribution for `round`: staged onto
  /// the ingest ring; a full ring flushes the staged batch into the round
  /// map first (backpressure accounting, never data loss).
  void add(std::int64_t round, Contribution c) {
    Staged s{round, std::move(c)};
    if (!ring_->try_push(std::move(s))) {
      ++ring_stalls_;
      flush();
      FPS_CHECK(ring_->try_push(std::move(s))) << "reducer ring still full after flush";
    }
    const std::size_t depth = ring_->size_approx();
    if (depth > ring_depth_hw_) ring_depth_hw_ = depth;
  }

  /// Remove and return the round's contributions sorted by worker rank.
  /// Missing round -> empty vector (all contributions were bare markers).
  [[nodiscard]] std::vector<Contribution> take_round(std::int64_t round) {
    flush();
    const auto it = rounds_.find(round);
    if (it == rounds_.end()) return {};
    std::vector<Contribution> out = std::move(it->second);
    rounds_.erase(it);
    std::sort(out.begin(), out.end(),
              [](const Contribution& a, const Contribution& b) { return a.worker < b.worker; });
    return out;
  }

  /// Rounds with at least one staged or mapped contribution.
  [[nodiscard]] std::size_t pending_rounds() {
    flush();
    return rounds_.size();
  }

  /// add() calls that found the ingest ring full (flush-on-full events).
  [[nodiscard]] std::uint64_t ring_stalls() const noexcept { return ring_stalls_; }
  /// Deepest staging-ring occupancy observed at add() time.
  [[nodiscard]] std::size_t ring_depth_high_water() const noexcept { return ring_depth_hw_; }

 private:
  struct Staged {
    std::int64_t round = 0;
    Contribution c;
  };

  /// Drain the staging ring into the round map (consumer side; callers are
  /// externally synchronized — the host's single dispatch context / mu_).
  void flush() {
    Staged s;
    while (ring_->try_pop(s)) rounds_[s.round].push_back(std::move(s.c));
  }

  std::unique_ptr<MpscRing<Staged>> ring_;
  std::map<std::int64_t, std::vector<Contribution>> rounds_;
  std::uint64_t ring_stalls_ = 0;
  std::size_t ring_depth_hw_ = 0;
};

/// Reduce a drained round: per-row gradient sums, accumulated in worker-rank
/// order (the contributions must already be sorted by worker, as take_round
/// returns them). Rows come out sorted ascending.
struct ReducedRound {
  std::vector<std::uint64_t> rows;
  std::vector<float> sums;  ///< rows.size() * dim
};

[[nodiscard]] inline ReducedRound reduce_contributions(
    const std::vector<Contribution>& contribs, std::uint32_t dim) {
  std::map<std::uint64_t, std::vector<float>> acc;  // ordered: rows sorted on output
  for (const Contribution& c : contribs) {
    FPS_CHECK(c.grads.size() == c.rows.size() * dim) << "contribution width mismatch";
    for (std::size_t i = 0; i < c.rows.size(); ++i) {
      auto [it, inserted] = acc.try_emplace(c.rows[i]);
      if (inserted) it->second.assign(dim, 0.0f);
      const float* g = c.grads.data() + i * dim;
      for (std::uint32_t k = 0; k < dim; ++k) it->second[k] += g[k];
    }
  }
  ReducedRound out;
  out.rows.reserve(acc.size());
  out.sums.reserve(acc.size() * dim);
  for (auto& [row, sum] : acc) {
    out.rows.push_back(row);
    out.sums.insert(out.sums.end(), sum.begin(), sum.end());
  }
  return out;
}

}  // namespace fluentps::embed
