#include "embed/sparse_host.h"

#include <algorithm>
#include <span>
#include <utility>

#include "common/logging.h"

namespace fluentps::embed {

SparseHost::SparseHost(SparseHostSpec spec, net::Transport& transport)
    : node_id_(spec.node_id),
      server_rank_(spec.core.server_rank),
      replica_successor_(spec.replica_successor),
      metrics_(spec.metrics),
      transport_(transport),
      core_(std::make_unique<SparseCore>(spec.core)) {
  for (const TableSpec& t : core_->registry().specs()) {
    arbiter_.add_tenant(t.table_id, t.qos_weight);
  }
}

void SparseHost::handle(net::Message&& msg) {
  std::vector<net::Message> out;
  {
    std::scoped_lock lock(mu_);
    switch (msg.type) {
      case net::MsgType::kSparsePush:
        on_push(std::move(msg), out);
        break;
      case net::MsgType::kSparsePull:
        on_pull(std::move(msg), out);
        break;
      case net::MsgType::kSparseReplicateAck:
        on_replicate_ack(std::move(msg), out);
        break;
      case net::MsgType::kSparseReplicate:
        // Only replicas receive these; a promoted head can still see one if a
        // delayed frame from the dead head outlives the failover. Drop it —
        // its lsn is already in our adopted log or applied state.
        ++stale_replicates_;
        break;
      case net::MsgType::kShutdown:
        break;
      default:
        FPS_LOG(Warn) << "sparse host " << node_id_ << ": unexpected "
                     << net::to_string(msg.type) << " from " << msg.src;
        break;
    }
  }
  // Messages queued under the lock may borrow msg.values (still alive here).
  for (net::Message& m : out) transport_.send(std::move(m));
}

void SparseHost::on_push(net::Message&& msg, std::vector<net::Message>& out) {
  SparseBatch batch;
  if (!decode_sparse(msg.values.span(), &batch) ||
      core_->registry().find(batch.table_id) == nullptr) {
    FPS_LOG(Warn) << "sparse host " << node_id_ << ": dropping malformed push from "
                 << msg.src;
    return;
  }
  const std::uint32_t w = msg.worker_rank;
  const bool fresh = core_->accept_push(w, msg.seq);
  if (!fresh) {
    ++dedup_hits_;
    if (replica_successor_ != 0) {
      // Retransmit of an applied-but-unreplicated push: the ack is still owed
      // to the chain horizon. Re-forward (chain repair for dropped replicate
      // frames) and record the ack if the first copy's got lost too.
      if (replica::LogEntry* e = log_.find(w, msg.seq)) {
        bool recorded = false;
        for (const replica::DeferredAck& a : e->acks) {
          if (a.dst == msg.src && a.seq == msg.seq) recorded = true;
        }
        if (!recorded) {
          e->acks.push_back({msg.src, msg.request_id, msg.seq, msg.progress, w});
        }
        net::Message fwd = make_replicate(e->lsn, e->worker_rank, e->seq, e->progress);
        fwd.values = e->values;  // owned copy; the borrowed original is gone
        out.push_back(std::move(fwd));
        ++repl_repairs_;
        return;
      }
      // Trimmed: already chain-replicated; ack immediately below.
    }
    out.push_back(make_push_ack(msg.src, msg.request_id, msg.seq, msg.progress, w));
    return;
  }
  core_->ingest(msg.progress, batch, w);
  ++pushes_ingested_;
  bump_tenant(batch.table_id, "pushes");
  bump_tenant(batch.table_id, "rows_pushed", static_cast<std::int64_t>(batch.rows.size()));
  if (replica_successor_ != 0) {
    replica::LogEntry& e = log_.append(w, msg.seq, msg.progress, msg.values.span());
    e.acks.push_back({msg.src, msg.request_id, msg.seq, msg.progress, w});
    net::Message fwd = make_replicate(e.lsn, w, msg.seq, msg.progress);
    if (transport_.inline_delivery()) {
      fwd.values = net::Payload::borrow(msg.values.span());
    } else {
      fwd.values = e.values;
    }
    out.push_back(std::move(fwd));
    ++replica_forwards_;
  } else {
    out.push_back(make_push_ack(msg.src, msg.request_id, msg.seq, msg.progress, w));
  }
  service_locked(out);
}

void SparseHost::on_pull(net::Message&& msg, std::vector<net::Message>& out) {
  SparseBatch batch;
  if (!decode_sparse(msg.values.span(), &batch) ||
      core_->registry().find(batch.table_id) == nullptr) {
    FPS_LOG(Warn) << "sparse host " << node_id_ << ": dropping malformed pull from "
                 << msg.src;
    return;
  }
  const std::uint64_t ticket = msg.request_id;
  if (parked_.contains(ticket)) return;  // duplicate while the original waits
  ParkedPull p;
  p.src = msg.src;
  p.worker = msg.worker_rank;
  p.table_id = batch.table_id;
  p.round = msg.progress;
  p.rows = std::move(batch.rows);
  parked_.emplace(ticket, std::move(p));
  service_locked(out);
}

void SparseHost::on_replicate_ack(net::Message&& msg, std::vector<net::Message>& out) {
  // Cumulative horizon: every lsn <= request_id reached the tail; release the
  // worker acks deferred onto the trimmed entries.
  log_.trim_to(msg.request_id, [&](replica::LogEntry& e) {
    for (const replica::DeferredAck& a : e.acks) {
      out.push_back(make_push_ack(a.dst, a.request_id, a.seq, a.progress, a.worker_rank));
    }
  });
}

void SparseHost::service_locked(std::vector<net::Message>& out) {
  for (;;) {
    const std::vector<std::uint32_t> can_drain = core_->drainable();
    std::vector<std::uint32_t> ready = can_drain;
    for (const auto& [ticket, p] : parked_) {
      if (p.round <= core_->completed_round(p.table_id) &&
          std::find(ready.begin(), ready.end(), p.table_id) == ready.end()) {
        ready.push_back(p.table_id);
      }
    }
    if (ready.empty()) return;
    std::sort(ready.begin(), ready.end());
    const std::uint32_t t = arbiter_.pick(ready);
    bump_tenant(t, "service_units");
    // One unit: answer an eligible parked pull first (its round's values must
    // not move under it), else drain the table's next complete round.
    bool answered = false;
    for (auto it = parked_.begin(); it != parked_.end(); ++it) {
      if (it->second.table_id == t && it->second.round <= core_->completed_round(t)) {
        answer_pull_locked(it->first, it->second, out);
        parked_.erase(it);
        answered = true;
        break;
      }
    }
    if (!answered) {
      const std::int64_t applied = core_->drain_one(t);
      rows_applied_ += applied;
      bump_tenant(t, "rows_applied", applied);
    }
  }
}

void SparseHost::answer_pull_locked(std::uint64_t ticket, const ParkedPull& p,
                                    std::vector<net::Message>& out) {
  const std::uint32_t dim = core_->registry().at(p.table_id).dim;
  SparseBatch resp;
  resp.table_id = p.table_id;
  resp.dim = dim;
  resp.rows = p.rows;
  resp.values.resize(resp.rows.size() * dim);
  EmbeddingTable& table = core_->table(p.table_id);
  for (std::size_t i = 0; i < resp.rows.size(); ++i) {
    table.copy_row(resp.rows[i], std::span<float>(resp.values).subspan(i * dim, dim));
  }
  net::Message m;
  m.type = net::MsgType::kSparsePullResp;
  m.src = node_id_;
  m.dst = p.src;
  m.request_id = ticket;
  m.progress = p.round;
  m.worker_rank = p.worker;
  m.server_rank = server_rank_;
  encode_sparse(resp, m.values);
  out.push_back(std::move(m));
  ++pulls_answered_;
  bump_tenant(p.table_id, "pulls_answered");
}

net::Message SparseHost::make_push_ack(net::NodeId dst, std::uint64_t request_id,
                                       std::uint64_t seq, std::int64_t progress,
                                       std::uint32_t worker_rank) const {
  net::Message ack;
  ack.type = net::MsgType::kPushAck;
  ack.src = node_id_;
  ack.dst = dst;
  ack.request_id = request_id;
  ack.seq = seq;
  ack.progress = progress;
  ack.worker_rank = worker_rank;
  ack.server_rank = server_rank_;
  return ack;
}

net::Message SparseHost::make_replicate(std::uint64_t lsn, std::uint32_t worker_rank,
                                        std::uint64_t seq, std::int64_t progress) const {
  net::Message fwd;
  fwd.type = net::MsgType::kSparseReplicate;
  fwd.src = node_id_;
  fwd.dst = replica_successor_;
  fwd.request_id = lsn;
  fwd.seq = seq;
  fwd.progress = progress;
  fwd.worker_rank = worker_rank;
  fwd.server_rank = server_rank_;
  return fwd;
}

void SparseHost::bump_tenant(std::uint32_t table_id, const char* counter,
                             std::int64_t delta) {
  if (metrics_ == nullptr) return;
  // Callers pass string literals, so the string_view key stays valid; the
  // name concatenation and registry lookup happen once per (table, counter).
  const std::pair<std::uint32_t, std::string_view> key{table_id, counter};
  auto it = tenant_cache_.find(key);
  if (it == tenant_cache_.end()) {
    obs::Counter& c = metrics_->registry().counter(
        "tenant." + core_->registry().at(table_id).name + "." + counter);
    it = tenant_cache_.emplace(key, &c).first;
  }
  it->second->add(delta);
}

void SparseHost::adopt(SparseReleasedState&& state) {
  std::scoped_lock lock(mu_);
  core_ = std::move(state.core);
  log_ = std::move(state.log);
  if (replica_successor_ == 0) {
    // We are the new tail: everything in the adopted log is already applied
    // here, so it is trivially "replicated to the tail". Trim it (replica
    // entries carry no deferred worker acks) so retransmits ack immediately.
    log_.trim_to(log_.next_lsn() == 0 ? 0 : log_.next_lsn() - 1,
                 [](replica::LogEntry&) {});
  }
}

void SparseHost::replay_replication_log() {
  std::vector<net::Message> out;
  {
    std::scoped_lock lock(mu_);
    if (replica_successor_ == 0) return;
    for (replica::LogEntry& e : log_.pending()) {
      net::Message fwd = make_replicate(e.lsn, e.worker_rank, e.seq, e.progress);
      fwd.values = e.values;
      out.push_back(std::move(fwd));
      ++replica_forwards_;
    }
  }
  for (net::Message& m : out) transport_.send(std::move(m));
}

std::uint64_t SparseHost::state_digest() const {
  std::scoped_lock lock(mu_);
  return core_->digest();
}

std::int64_t SparseHost::dedup_hits() const {
  std::scoped_lock lock(mu_);
  return dedup_hits_;
}
std::int64_t SparseHost::pushes_ingested() const {
  std::scoped_lock lock(mu_);
  return pushes_ingested_;
}
std::int64_t SparseHost::rows_applied() const {
  std::scoped_lock lock(mu_);
  return rows_applied_;
}
std::int64_t SparseHost::pulls_answered() const {
  std::scoped_lock lock(mu_);
  return pulls_answered_;
}
std::int64_t SparseHost::replica_forwards() const {
  std::scoped_lock lock(mu_);
  return replica_forwards_;
}
std::int64_t SparseHost::repl_repairs() const {
  std::scoped_lock lock(mu_);
  return repl_repairs_;
}
std::int64_t SparseHost::stale_replicates() const {
  std::scoped_lock lock(mu_);
  return stale_replicates_;
}
std::size_t SparseHost::replication_high_water() const {
  std::scoped_lock lock(mu_);
  return log_.high_water();
}
std::size_t SparseHost::parked_pulls() const {
  std::scoped_lock lock(mu_);
  return parked_.size();
}
std::uint64_t SparseHost::reducer_ring_stalls() const {
  std::scoped_lock lock(mu_);
  return core_->reducer_ring_stalls();
}
std::size_t SparseHost::reducer_ring_depth_high_water() const {
  std::scoped_lock lock(mu_);
  return core_->reducer_ring_depth_high_water();
}

}  // namespace fluentps::embed
