#include "embed/sparse_codec.h"

#include <bit>

namespace fluentps::embed {
namespace {

constexpr std::size_t kHeaderWords = 4;
constexpr std::uint32_t kHasValues = 1u << 0;

inline float w2f(std::uint32_t w) noexcept { return std::bit_cast<float>(w); }
inline std::uint32_t f2w(float f) noexcept { return std::bit_cast<std::uint32_t>(f); }

inline std::size_t body_size(const SparseBatch& b) noexcept {
  return 2 * b.rows.size() + b.values.size();
}

void encode_into(const SparseBatch& b, std::span<float> out) noexcept {
  out[0] = w2f(b.table_id);
  out[1] = w2f(b.dim);
  out[2] = w2f(static_cast<std::uint32_t>(b.rows.size()));
  out[3] = w2f(b.has_values() ? kHasValues : 0);
  std::size_t i = kHeaderWords;
  for (const std::uint64_t id : b.rows) {
    out[i++] = w2f(static_cast<std::uint32_t>(id));
    out[i++] = w2f(static_cast<std::uint32_t>(id >> 32));
  }
  for (const float v : b.values) out[i++] = v;
}

}  // namespace

std::size_t encoded_size(const SparseBatch& b) noexcept {
  return kHeaderWords + body_size(b);
}

std::vector<float> encode_sparse(const SparseBatch& b) {
  std::vector<float> out(encoded_size(b));
  encode_into(b, out);
  return out;
}

void encode_sparse(const SparseBatch& b, net::Payload& out) {
  encode_into(b, out.mutable_span_resized(encoded_size(b)));
}

bool decode_sparse(std::span<const float> frame, SparseBatch* out) {
  if (frame.size() < kHeaderWords) return false;
  const std::uint32_t table_id = f2w(frame[0]);
  const std::uint32_t dim = f2w(frame[1]);
  const std::uint32_t n_rows = f2w(frame[2]);
  const std::uint32_t flags = f2w(frame[3]);
  if ((flags & ~kHasValues) != 0) return false;
  const bool has_values = (flags & kHasValues) != 0;
  if (has_values && dim == 0) return false;
  const std::size_t value_words =
      has_values ? static_cast<std::size_t>(n_rows) * dim : 0;
  if (frame.size() != kHeaderWords + 2 * static_cast<std::size_t>(n_rows) + value_words) {
    return false;
  }
  out->table_id = table_id;
  out->dim = dim;
  out->rows.resize(n_rows);
  std::size_t i = kHeaderWords;
  for (std::uint32_t r = 0; r < n_rows; ++r) {
    const std::uint64_t lo = f2w(frame[i]);
    const std::uint64_t hi = f2w(frame[i + 1]);
    out->rows[r] = lo | (hi << 32);
    i += 2;
  }
  out->values.assign(frame.begin() + static_cast<std::ptrdiff_t>(i), frame.end());
  return true;
}

}  // namespace fluentps::embed
