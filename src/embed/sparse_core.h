// The replicable kernel of a sparse shard: dedup windows, tables, round
// clocks and reducers — everything whose state must be bit-identical between
// a chain head and its replicas.
//
// SparseHost (the head) and SparseReplica both own one SparseCore and feed it
// the same accept/ingest/drain sequence: the head from worker pushes, the
// replica from lsn-ordered kSparseReplicate frames. Because every mutation
// is a pure function of the accepted contribution stream, the replica's core
// converges to the head's exactly, and promotion is a move of this object.
//
// Round clock (BSP per table): worker w's fresh pushes for a table arrive in
// strictly increasing rounds (the worker starts round t+1 only after round
// t is fully acked); a round drains once min over workers of last_round
// passes it. Pulls for round t are answerable exactly when completed_round
// == t, and no later round can drain before every worker received its round-
// t pull response — which is what makes pulled values deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "embed/embedding_table.h"
#include "embed/reducer.h"
#include "embed/sparse_codec.h"
#include "embed/table_spec.h"
#include "ps/seq_window.h"

namespace fluentps::embed {

struct SparseCoreSpec {
  std::uint32_t server_rank = 0;
  std::uint32_t num_workers = 0;  ///< sparse workers contributing to each round
  std::vector<TableSpec> tables;
  std::uint64_t seed = 1;         ///< job seed; per-table seeds derived inside
  bool reduce = true;             ///< coalesce per-row gradients before applying
  std::uint32_t stripes = 8;
};

class SparseCore {
 public:
  explicit SparseCore(SparseCoreSpec spec);

  SparseCore(const SparseCore&) = delete;
  SparseCore& operator=(const SparseCore&) = delete;

  /// SeqWindow dedup for worker `w`'s push stream. True = fresh.
  [[nodiscard]] bool accept_push(std::uint32_t w, std::uint64_t seq);

  /// Record a fresh round-stamped contribution (marker included — an empty
  /// rows list still advances the worker's round clock).
  void ingest(std::int64_t round, const SparseBatch& batch, std::uint32_t w);

  /// Table ids whose next round is fully contributed and can drain now.
  [[nodiscard]] std::vector<std::uint32_t> drainable() const;

  /// Apply table `table_id`'s next round; returns row_apply count.
  std::int64_t drain_one(std::uint32_t table_id);

  [[nodiscard]] std::int64_t completed_round(std::uint32_t table_id) const;
  [[nodiscard]] EmbeddingTable& table(std::uint32_t table_id);
  [[nodiscard]] const TableRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] std::uint32_t num_workers() const noexcept { return num_workers_; }

  /// Order-independent digest over every table (sums across servers).
  [[nodiscard]] std::uint64_t digest() const;

  /// One migrated embedding row (elastic fence, DESIGN.md §14): raw data is
  /// values plus optimizer state, moved verbatim between shards.
  struct MovedRow {
    std::uint32_t table_id = 0;
    std::uint64_t row_id = 0;
    std::vector<float> data;
  };

  /// Elastic fence export: remove and return every materialized row whose
  /// route_active() owner under `active` is not `my_rank`. Caller guarantees
  /// quiescence (workers parked, reducers drained).
  [[nodiscard]] std::vector<MovedRow> extract_moved_rows(const std::vector<char>& active,
                                                         std::uint32_t my_rank);

  /// Install rows extracted from other shards, verbatim.
  void install_rows(std::vector<MovedRow> rows);

  /// Seed every table's round clock to `round` completed by every worker — a
  /// joining host must start from the fleet's current round or drains would
  /// wait forever on rounds it never saw.
  void seed_round_clock(std::int64_t round);

  /// Reducer ingest-ring backpressure events, summed over tables.
  [[nodiscard]] std::uint64_t reducer_ring_stalls() const;
  /// Deepest reducer ingest-ring occupancy seen on any table.
  [[nodiscard]] std::size_t reducer_ring_depth_high_water() const;

 private:
  struct TableState {
    std::unique_ptr<EmbeddingTable> table;
    std::vector<std::int64_t> last_round;  ///< per worker, -1 = none yet
    std::int64_t completed = -1;
    RoundReducer reducer;
  };

  [[nodiscard]] TableState& state_of(std::uint32_t table_id);

  TableRegistry registry_;
  std::uint32_t server_rank_;
  std::uint32_t num_workers_;
  bool reduce_;
  std::vector<ps::SeqWindow> windows_;  ///< per sparse worker
  std::vector<TableState> tables_;      ///< index == table_id
};

/// Seed for table `table_id` of the job seeded `job_seed` — shared with the
/// reference oracle (workload.h) so both materialize identical rows.
[[nodiscard]] std::uint64_t table_seed(std::uint64_t job_seed, std::uint32_t table_id) noexcept;

}  // namespace fluentps::embed
