#include "embed/embedding_table.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "common/rng.h"

namespace fluentps::embed {

std::uint64_t fnv_step(std::uint64_t h, std::uint64_t word) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

EmbeddingTable::EmbeddingTable(TableSpec spec, std::uint64_t seed, std::uint32_t stripes)
    : spec_(std::move(spec)),
      seed_(seed),
      state_size_(ml::row_state_size(spec_.opt.kind, spec_.dim)),
      stripes_(stripes == 0 ? 1 : stripes) {}

std::mutex& EmbeddingTable::stripe(std::uint64_t row_id) const {
  // Low bits of the avalanched id; independent of the routing hash so stripe
  // contention does not correlate with shard placement.
  return stripes_[(row_id * 0x9E3779B97F4A7C15ull >> 32) % stripes_.size()];
}

EmbeddingTable::Row& EmbeddingTable::materialize(std::uint64_t row_id) {
  std::scoped_lock map_lock(rows_mu_);
  auto [it, inserted] = rows_.try_emplace(row_id);
  if (inserted) {
    Row& row = it->second;
    row.data.resize(spec_.dim + state_size_, 0.0f);
    // Deterministic per-row stream: identical values whether the row first
    // materializes on the head, a replica, or the reference oracle, and in
    // whatever order rows happen to be touched.
    Rng rng(derive_seed(seed_, row_id), /*stream=*/0xE0B);
    for (std::uint32_t k = 0; k < spec_.dim; ++k) {
      row.data[k] = static_cast<float>(rng.normal(0.0, spec_.init_scale));
    }
  }
  return it->second;
}

void EmbeddingTable::apply(std::uint64_t row_id, std::span<const float> grad) {
  FPS_CHECK(grad.size() == spec_.dim)
      << "grad width " << grad.size() << " != table dim " << spec_.dim;
  Row& row = materialize(row_id);
  std::scoped_lock lock(stripe(row_id));
  const std::span<float> data(row.data);
  ml::row_apply(spec_.opt, data.first(spec_.dim), data.subspan(spec_.dim), grad);
  ++applies_;
}

void EmbeddingTable::copy_row(std::uint64_t row_id, std::span<float> out) {
  FPS_CHECK(out.size() == spec_.dim)
      << "out width " << out.size() << " != table dim " << spec_.dim;
  Row& row = materialize(row_id);
  std::scoped_lock lock(stripe(row_id));
  std::copy_n(row.data.begin(), spec_.dim, out.begin());
}

std::size_t EmbeddingTable::materialized_rows() const {
  std::scoped_lock lock(rows_mu_);
  return rows_.size();
}

std::vector<std::pair<std::uint64_t, std::vector<float>>> EmbeddingTable::extract_rows(
    const std::function<bool(std::uint64_t)>& pred) {
  std::scoped_lock lock(rows_mu_);
  std::vector<std::pair<std::uint64_t, std::vector<float>>> out;
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (pred(it->first)) {
      out.emplace_back(it->first, std::move(it->second.data));
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void EmbeddingTable::install_row(std::uint64_t row_id, std::vector<float> data) {
  FPS_CHECK(data.size() == spec_.dim + state_size_)
      << "installed row width " << data.size() << " != " << spec_.dim + state_size_;
  std::scoped_lock lock(rows_mu_);
  auto [it, inserted] = rows_.try_emplace(row_id);
  FPS_CHECK(inserted) << "install_row over an existing row " << row_id;
  it->second.data = std::move(data);
}

std::uint64_t EmbeddingTable::digest() const {
  std::scoped_lock lock(rows_mu_);
  std::uint64_t sum = 0;
  for (const auto& [row_id, row] : rows_) {
    std::uint64_t h = kFnvBasis;
    h = fnv_step(h, spec_.table_id);
    h = fnv_step(h, row_id);
    for (std::uint32_t k = 0; k < spec_.dim; ++k) {
      h = fnv_step(h, std::bit_cast<std::uint32_t>(row.data[k]));
    }
    sum += h;  // wrapping: order-independent across rows and servers
  }
  return sum;
}

}  // namespace fluentps::embed
