// Chain replica for sparse embedding shards — the sparse twin of
// replica::ReplicaNode (DESIGN.md §9/§10).
//
// Receives kSparseReplicate frames from its predecessor, applies them in lsn
// order through its own SparseCore (same accept/ingest/drain sequence as the
// head, so tables, round clocks and dedup windows stay bit-identical), and
// either forwards downstream (middle) or acks upstream (tail, cumulative).
// Loss healing mirrors the dense chain: a duplicate lsn re-forwards if still
// pending below, re-acks if already trimmed.
//
// Bounded reads (DESIGN.md §13): the replica also answers kSparsePull
// requests whose staleness bound (ps/read_options.h, carried in `seq`) is
// covered by its table's completed-round clock — the sparse analogue of the
// dense applied horizon. The BSP round clock means a table can never drain
// past a round with pulls still outstanding, so at bound 0 a replica-served
// response is bit-identical to the head's. Unsatisfiable bounds get a
// kPullRedirect so the client retries the same ticket at the head.
//
// Threading matches ReplicaNode: handle()/release_state() are serialized by
// the runtime (per-slot mutex in the thread backend, single context in sim).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "embed/sparse_core.h"
#include "embed/sparse_host.h"
#include "net/message.h"
#include "net/transport.h"
#include "ps/seq_window.h"
#include "replica/replication_log.h"

namespace fluentps::embed {

struct SparseReplicaSpec {
  net::NodeId node_id = 0;
  std::uint32_t chain_pos = 1;   ///< position in the chain (1..r-1)
  SparseCoreSpec core;           ///< must equal the head's core spec
  net::NodeId successor = 0;     ///< next chain node; 0 = tail
};

class SparseReplica {
 public:
  SparseReplica(SparseReplicaSpec spec, net::Transport& transport);

  SparseReplica(const SparseReplica&) = delete;
  SparseReplica& operator=(const SparseReplica&) = delete;

  /// Transport handler for kSparseReplicate / kSparseReplicateAck.
  void handle(net::Message&& msg);

  /// Promotion handoff: moves the core (tables + round clocks + dedup
  /// windows) and pending log out for SparseHost::adopt.
  [[nodiscard]] SparseReleasedState release_state();

  [[nodiscard]] net::NodeId node_id() const noexcept { return node_id_; }
  [[nodiscard]] std::uint32_t rank() const noexcept { return server_rank_; }
  [[nodiscard]] std::uint32_t chain_pos() const noexcept { return chain_pos_; }
  [[nodiscard]] std::int64_t applied() const noexcept { return applied_; }
  [[nodiscard]] std::int64_t forwarded() const noexcept { return forwarded_; }
  [[nodiscard]] std::int64_t dup_drops() const noexcept { return dup_drops_; }
  [[nodiscard]] std::int64_t reforwards() const noexcept { return reforwards_; }
  [[nodiscard]] std::uint64_t next_lsn() const noexcept { return next_lsn_; }
  [[nodiscard]] std::size_t stashed() const noexcept { return stash_.size(); }
  [[nodiscard]] std::uint64_t state_digest() const { return core_->digest(); }
  /// Bounded kSparsePull requests answered here / redirected to the head.
  [[nodiscard]] std::int64_t reads_served() const noexcept { return reads_served_; }
  [[nodiscard]] std::int64_t read_fallbacks() const noexcept { return read_fallbacks_; }
  [[nodiscard]] std::int64_t reads_deduped() const noexcept { return reads_deduped_; }

 private:
  void deliver(net::Message&& msg);
  void forward(const replica::LogEntry& e);
  void ack_upstream(net::NodeId dst, std::uint64_t lsn);
  /// Bounded-read path: serve from the replicated tables or redirect to head.
  void on_read(net::Message&& msg);

  net::NodeId node_id_;
  std::uint32_t server_rank_;
  std::uint32_t chain_pos_;
  net::NodeId successor_;
  net::Transport& transport_;

  std::unique_ptr<SparseCore> core_;
  replica::ReplicationLog log_;  ///< middle nodes: pending downstream
  std::uint64_t next_lsn_ = 1;
  std::map<std::uint64_t, net::Message> stash_;  ///< out-of-order arrivals
  bool released_ = false;

  std::int64_t applied_ = 0;
  std::int64_t forwarded_ = 0;
  std::int64_t dup_drops_ = 0;
  std::int64_t reforwards_ = 0;

  // Bounded-read state (accounting only; duplicate reads are re-answered).
  std::map<std::uint32_t, ps::SeqWindow> read_windows_;  ///< per requester rank
  std::int64_t reads_served_ = 0;
  std::int64_t read_fallbacks_ = 0;
  std::int64_t reads_deduped_ = 0;
};

}  // namespace fluentps::embed
