#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"

namespace fluentps::fault {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream is(s);
  while (std::getline(is, cur, sep)) {
    // trim spaces
    const auto b = cur.find_first_not_of(" \t");
    const auto e = cur.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    out.push_back(cur.substr(b, e - b + 1));
  }
  return out;
}

double parse_time(const std::string& s) {
  if (s == "inf" || s == "+inf") return std::numeric_limits<double>::infinity();
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  FPS_CHECK(end != s.c_str()) << "bad time token '" << s << "' in fault schedule";
  return v;
}

/// Parse "members@start:end" -> (members, start, end). A missing "@window"
/// means the whole run.
void parse_window(const std::string& group, std::string* members, double* start, double* end) {
  const auto at = group.find('@');
  *start = 0.0;
  *end = std::numeric_limits<double>::infinity();
  if (at == std::string::npos) {
    *members = group;
    return;
  }
  *members = group.substr(0, at);
  const std::string window = group.substr(at + 1);
  const auto colon = window.find(':');
  FPS_CHECK(colon != std::string::npos)
      << "fault schedule window '" << window << "' must be start:end";
  *start = parse_time(window.substr(0, colon));
  *end = parse_time(window.substr(colon + 1));
  FPS_CHECK(*end > *start) << "fault schedule window [" << *start << ", " << *end
                           << ") is empty";
}

}  // namespace

FaultSpec FaultSpec::from_config(const Config& cfg, const std::string& prefix) {
  FaultSpec s;
  s.link.drop_prob = cfg.get_double(prefix + "drop", 0.0);
  s.link.dup_prob = cfg.get_double(prefix + "dup", 0.0);
  s.link.delay_prob = cfg.get_double(prefix + "delay_prob", 0.0);
  s.link.delay_seconds = cfg.get_double(prefix + "delay_seconds", 0.0);
  s.link.reorder_prob = cfg.get_double(prefix + "reorder", 0.0);
  s.link.reorder_max_seconds = cfg.get_double(prefix + "reorder_max", 0.0);
  s.seed = static_cast<std::uint64_t>(cfg.get_int(prefix + "seed", 0xFA17));
  s.checkpoint_every = cfg.get_double(prefix + "checkpoint_every", 0.25);

  for (const auto& group : split(cfg.get_string(prefix + "partition", ""), ';')) {
    PartitionSpec p;
    std::string members;
    parse_window(group, &members, &p.start, &p.end);
    p.members = split(members, ',');
    FPS_CHECK(!p.members.empty()) << "fault partition group '" << group << "' has no members";
    s.partitions.push_back(std::move(p));
  }

  for (const auto& group : split(cfg.get_string(prefix + "crash", ""), ';')) {
    CrashSpec c;
    std::string member;
    parse_window(group, &member, &c.crash_time, &c.restart_time);
    FPS_CHECK(member.size() >= 2 && member[0] == 's')
        << "fault crash target '" << member << "' must be a server token sN";
    c.server_rank = static_cast<std::uint32_t>(std::strtoul(member.c_str() + 1, nullptr, 10));
    s.crashes.push_back(c);
  }
  return s;
}

net::NodeId FaultPlan::resolve(const std::string& token, std::uint32_t num_servers,
                               std::uint32_t num_workers) {
  if (token == "sched" || token == "scheduler") return 0;
  FPS_CHECK(token.size() >= 2 && (token[0] == 's' || token[0] == 'w'))
      << "bad node token '" << token << "' (want sched, sN or wN)";
  const auto rank = static_cast<std::uint32_t>(std::strtoul(token.c_str() + 1, nullptr, 10));
  if (token[0] == 's') {
    FPS_CHECK(rank < num_servers) << "server token '" << token << "' out of range (M="
                                  << num_servers << ")";
    return 1 + rank;
  }
  FPS_CHECK(rank < num_workers) << "worker token '" << token << "' out of range (N="
                                << num_workers << ")";
  return 1 + num_servers + rank;
}

bool FaultPlan::CompiledPartition::contains(net::NodeId n) const {
  return std::binary_search(members.begin(), members.end(), n);
}

FaultPlan::FaultPlan(FaultSpec spec, std::uint32_t num_servers, std::uint32_t num_workers)
    : spec_(std::move(spec)) {
  partitions_.reserve(spec_.partitions.size());
  for (const auto& p : spec_.partitions) {
    CompiledPartition cp;
    cp.start = p.start;
    cp.end = p.end;
    for (const auto& tok : p.members) cp.members.push_back(resolve(tok, num_servers, num_workers));
    std::sort(cp.members.begin(), cp.members.end());
    partitions_.push_back(std::move(cp));
  }
  for (const auto& c : spec_.crashes) {
    FPS_CHECK(c.server_rank < num_servers)
        << "crash spec server rank " << c.server_rank << " out of range (M=" << num_servers << ")";
    FPS_CHECK(c.restart_time > c.crash_time)
        << "crash spec for s" << c.server_rank << " must restart after crashing";
  }
}

bool FaultPlan::partitioned(net::NodeId a, net::NodeId b, double now) const {
  for (const auto& p : partitions_) {
    if (now < p.start || now >= p.end) continue;
    if (p.contains(a) != p.contains(b)) return true;
  }
  return false;
}

FaultPlan::Verdict FaultPlan::decide(net::NodeId src, net::NodeId dst, double now,
                                     Rng& rng) const {
  Verdict v;
  if (partitioned(src, dst, now)) {
    v.drop = true;
    return v;  // partition drops are rng-free: no stream consumption
  }
  const LinkFaults& lf = spec_.link;
  if (!lf.any()) return v;
  // Fixed draw pattern: one uniform per enabled fault class, consumed in a
  // stable order so the stream stays aligned whatever the outcome.
  if (lf.drop_prob > 0.0 && rng.uniform() < lf.drop_prob) v.drop = true;
  if (lf.dup_prob > 0.0 && rng.uniform() < lf.dup_prob) v.duplicate = true;
  if (lf.delay_prob > 0.0 && lf.delay_seconds > 0.0 && rng.uniform() < lf.delay_prob) {
    v.extra_delay += lf.delay_seconds;
  }
  if (lf.reorder_prob > 0.0 && lf.reorder_max_seconds > 0.0 && rng.uniform() < lf.reorder_prob) {
    v.extra_delay += rng.uniform(0.0, lf.reorder_max_seconds);
  }
  if (v.drop) {
    v.duplicate = false;
    v.extra_delay = 0.0;
  }
  return v;
}

}  // namespace fluentps::fault
