// Retry/timeout/backoff policy shared by the worker reliability layer and the
// TCP transport's connect path.
//
// Header-only on purpose: `net` (TcpTransport) and `ps` (WorkerClient) both
// consume it, while `fault`'s compiled objects link against `net`
// (FaultyTransport wraps a Transport). Keeping the policy free of link-time
// symbols avoids a fluentps_fault <-> fluentps_net cycle.
//
// Semantics: attempt k (0-based) times out after
//   min(initial_timeout * backoff^k, max_timeout) * (1 + U(-jitter, +jitter))
// with the jitter drawn from the caller's deterministic Rng stream, so the
// sim backend stays bit-identical across runs. `budget` caps how many
// attempts are *escalating*; callers that must stay live (the worker pull
// path under a partition that later heals) keep retransmitting at
// max_timeout after the budget is spent rather than aborting the run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/config.h"
#include "common/rng.h"

namespace fluentps::fault {

struct RetryPolicy {
  double initial_timeout = 0.05;  ///< seconds before the first retransmit
  double max_timeout = 1.6;       ///< backoff ceiling, seconds
  double backoff = 2.0;           ///< multiplier per attempt
  double jitter = 0.1;            ///< +/- fraction applied to each timeout
  std::uint32_t budget = 24;      ///< escalating attempts before we warn

  /// Timeout for 0-based `attempt`, jittered from `rng`. Deterministic for a
  /// deterministic rng stream.
  [[nodiscard]] double timeout_for(std::uint32_t attempt, Rng& rng) const {
    const double capped_attempt = std::min<double>(attempt, 63);  // avoid pow overflow
    double t = initial_timeout * std::pow(backoff, capped_attempt);
    t = std::min(t, max_timeout);
    if (jitter > 0.0) t *= 1.0 + rng.uniform(-jitter, jitter);
    return std::max(t, 1e-6);
  }

  /// True once `attempt` has exceeded the escalation budget.
  [[nodiscard]] bool exhausted(std::uint32_t attempt) const noexcept { return attempt >= budget; }

  /// Parse `prefix`{initial_timeout,max_timeout,backoff,jitter,budget} keys,
  /// e.g. retry.initial_timeout=0.02.
  static RetryPolicy from_config(const Config& cfg, const std::string& prefix = "retry.") {
    RetryPolicy p;
    p.initial_timeout = cfg.get_double(prefix + "initial_timeout", p.initial_timeout);
    p.max_timeout = cfg.get_double(prefix + "max_timeout", p.max_timeout);
    p.backoff = cfg.get_double(prefix + "backoff", p.backoff);
    p.jitter = cfg.get_double(prefix + "jitter", p.jitter);
    p.budget = static_cast<std::uint32_t>(cfg.get_int(prefix + "budget", p.budget));
    return p;
  }
};

}  // namespace fluentps::fault
