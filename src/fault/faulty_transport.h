// Transport decorator that applies a FaultPlan to every message.
//
// Wraps any net::Transport backend:
//  * sim      — defer = SimEnv::schedule, clock = SimEnv::now; faults become
//               DES events, so virtual-clock timing stays exact and runs are
//               bit-identical under a fixed seed.
//  * inproc   — defer = TimerQueue::after, clock = wall stopwatch.
//  * tcp      — same as inproc (chaos-testing a real deployment).
//
// Crash windows: set_down(node) makes the node unreachable in both
// directions — sends from/to it are dropped at send time, and messages
// already in flight are dropped at delivery time by the wrapped handler, so
// a crashing server's queued responses die with it.
//
// MsgType::kShutdown is never faulted: it is runtime plumbing, not protocol.
// MsgType::kPromote and the kMigrate* frames are never faulted either: view
// changes and the elastic controller's migration traffic are control-plane,
// driven by the membership authority (a real deployment drives both through
// a consensus service and a TCP side channel, not the lossy data path).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "common/metrics.h"
#include "common/rng.h"
#include "fault/fault_plan.h"
#include "net/transport.h"

namespace fluentps::fault {

class FaultyTransport final : public net::Transport {
 public:
  /// Defer `fn` by `delay_seconds` on the backend's notion of time.
  using Defer = std::function<void(double, std::function<void()>)>;
  /// Current time on the backend's clock (virtual for sim, wall otherwise).
  using ClockFn = std::function<double()>;

  /// `inner` must outlive this transport. `seed` feeds the fault rng stream
  /// (combine the experiment seed with FaultSpec::seed via derive_seed).
  /// `metrics` is optional; when set, fault.* counters are emitted.
  FaultyTransport(net::Transport& inner, FaultPlan plan, std::uint64_t seed, ClockFn clock,
                  Defer defer, Metrics* metrics = nullptr);

  void register_node(net::NodeId node, Handler handler) override;
  void send(net::Message msg) override;

  /// Mark a node crashed (true) or recovered (false).
  void set_down(net::NodeId node, bool down);
  [[nodiscard]] bool is_down(net::NodeId node) const;

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_.load(); }
  [[nodiscard]] std::uint64_t duplicated() const noexcept { return duplicated_.load(); }
  [[nodiscard]] std::uint64_t delayed() const noexcept { return delayed_.load(); }
  /// Drops caused by a down endpoint (subset of overall message loss,
  /// counted separately from plan-induced drops).
  [[nodiscard]] std::uint64_t dropped_down() const noexcept { return dropped_down_.load(); }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void count_drop();
  void count_down_drop();

  net::Transport& inner_;
  FaultPlan plan_;
  ClockFn clock_;
  Defer defer_;
  Metrics* metrics_;

  mutable std::mutex mu_;  // guards rng_ + down_ (thread backend)
  Rng rng_;
  std::unordered_set<net::NodeId> down_;

  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> dropped_down_{0};
};

}  // namespace fluentps::fault
