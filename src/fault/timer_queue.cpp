#include "fault/timer_queue.h"

namespace fluentps::fault {

TimerQueue::TimerQueue() : thread_([this](std::stop_token st) { loop(st); }) {}

TimerQueue::~TimerQueue() { shutdown(); }

void TimerQueue::after(double delay_seconds, std::function<void()> fn) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(std::max(delay_seconds, 0.0)));
  {
    std::scoped_lock lock(mu_);
    if (stopped_) return;
    heap_.push(Entry{deadline, next_seq_++, std::move(fn)});
  }
  cv_.notify_all();
}

void TimerQueue::shutdown() {
  {
    std::scoped_lock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    // Drop pending work: deferred messages that never fire are just drops.
    while (!heap_.empty()) heap_.pop();
  }
  cv_.notify_all();
  thread_.request_stop();
  if (thread_.joinable()) thread_.join();
}

void TimerQueue::loop(const std::stop_token& st) {
  std::unique_lock lock(mu_);
  while (!st.stop_requested() && !stopped_) {
    if (heap_.empty()) {
      cv_.wait(lock, st, [this] { return stopped_ || !heap_.empty(); });
      continue;
    }
    const auto deadline = heap_.top().deadline;
    if (Clock::now() < deadline) {
      cv_.wait_until(lock, st, deadline, [this, deadline] {
        return stopped_ || (!heap_.empty() && heap_.top().deadline < deadline);
      });
      continue;
    }
    auto fn = std::move(const_cast<Entry&>(heap_.top()).fn);
    heap_.pop();
    lock.unlock();
    fn();
    fired_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace fluentps::fault
