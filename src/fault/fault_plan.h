// Declarative, seeded fault schedules.
//
// A FaultSpec is the user-facing description (parsed from Config keys under
// "fault."): per-link drop/dup/delay/reorder probabilities, network
// partitions over time windows, and server crash+restart events. A FaultPlan
// compiles the spec against a concrete cluster layout (scheduler=0, servers
// 1..M, workers M+1..M+N) and answers per-message verdicts.
//
// Determinism: all stochastic choices are drawn from an Rng stream owned by
// the caller (FaultyTransport), seeded from the experiment seed, so two runs
// of the same faulty config are bit-identical in the sim backend.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "net/message.h"

namespace fluentps::fault {

/// Stochastic per-message faults applied uniformly to every link.
struct LinkFaults {
  double drop_prob = 0.0;     ///< P(message silently lost)
  double dup_prob = 0.0;      ///< P(message delivered twice)
  double delay_prob = 0.0;    ///< P(message delayed by delay_seconds)
  double delay_seconds = 0.0; ///< fixed extra delay for delayed messages
  double reorder_prob = 0.0;  ///< P(message gets a random extra delay)
  double reorder_max_seconds = 0.0;  ///< max random extra delay (uniform)

  [[nodiscard]] bool any() const noexcept {
    return drop_prob > 0.0 || dup_prob > 0.0 || (delay_prob > 0.0 && delay_seconds > 0.0) ||
           (reorder_prob > 0.0 && reorder_max_seconds > 0.0);
  }
};

/// A partition isolates `members` from all non-members during [start, end):
/// traffic crossing the cut is dropped; traffic inside either side flows.
/// Members are node tokens: "sched", "sN" (server rank N), "wN" (worker rank N).
struct PartitionSpec {
  std::vector<std::string> members;
  double start = 0.0;
  double end = std::numeric_limits<double>::infinity();
};

/// Server crash at `crash_time`, restart (from latest checkpoint) at
/// `restart_time`. restart_time > crash_time required; an infinite
/// restart_time means the server never comes back.
///
/// With chain replication (ExperimentConfig::replication_factor > 1) the
/// crash targets shard `server_rank`'s *current* chain head — a second crash
/// of the same rank kills the node promoted by the first — and
/// `restart_time` is ignored: the runtime promotes the successor after
/// `failover_detect_seconds` instead of restarting from a checkpoint.
struct CrashSpec {
  std::uint32_t server_rank = 0;
  double crash_time = 0.0;
  double restart_time = std::numeric_limits<double>::infinity();
};

struct FaultSpec {
  LinkFaults link;
  std::vector<PartitionSpec> partitions;
  std::vector<CrashSpec> crashes;
  /// Fault stream label, combined with the experiment seed.
  std::uint64_t seed = 0xFA17;
  /// Seconds (virtual in sim, wall in threads) between server snapshots when
  /// crash-restart is in play.
  double checkpoint_every = 0.25;

  /// True if this spec perturbs anything at all.
  [[nodiscard]] bool any() const noexcept {
    return link.any() || !partitions.empty() || !crashes.empty();
  }

  /// Parse `prefix`{drop,dup,delay_prob,delay_seconds,reorder,reorder_max,
  /// partition,crash,seed,checkpoint_every}. Schedules use compact strings:
  ///   fault.partition = "w0,w1@0.5:1.5;s0@2:3"
  ///   fault.crash     = "s0@1.0:2.0;s1@4.0:inf"
  static FaultSpec from_config(const Config& cfg, const std::string& prefix = "fault.");
};

/// Spec compiled against a concrete cluster layout.
class FaultPlan {
 public:
  FaultPlan() = default;  ///< empty plan: no faults
  FaultPlan(FaultSpec spec, std::uint32_t num_servers, std::uint32_t num_workers);

  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    double extra_delay = 0.0;
  };

  /// Per-message verdict. Partition checks are rng-free; stochastic link
  /// faults draw from `rng` (a fixed number of draws per call, so the stream
  /// stays aligned across identical runs).
  [[nodiscard]] Verdict decide(net::NodeId src, net::NodeId dst, double now, Rng& rng) const;

  /// True if a partition window currently separates `a` from `b`.
  [[nodiscard]] bool partitioned(net::NodeId a, net::NodeId b, double now) const;

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bool active() const noexcept { return spec_.any(); }

  /// Resolve a node token ("sched", "s2", "w7") to a NodeId under the
  /// standard layout. FPS_CHECK-fails on malformed tokens or out-of-range
  /// ranks.
  static net::NodeId resolve(const std::string& token, std::uint32_t num_servers,
                             std::uint32_t num_workers);

 private:
  struct CompiledPartition {
    std::vector<net::NodeId> members;  // sorted
    double start = 0.0;
    double end = 0.0;
    [[nodiscard]] bool contains(net::NodeId n) const;
  };

  FaultSpec spec_;
  std::vector<CompiledPartition> partitions_;
};

}  // namespace fluentps::fault
