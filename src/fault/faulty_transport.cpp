#include "fault/faulty_transport.h"

#include <utility>

namespace fluentps::fault {

FaultyTransport::FaultyTransport(net::Transport& inner, FaultPlan plan, std::uint64_t seed,
                                 ClockFn clock, Defer defer, Metrics* metrics)
    : inner_(inner),
      plan_(std::move(plan)),
      clock_(std::move(clock)),
      defer_(std::move(defer)),
      metrics_(metrics),
      rng_(seed, /*stream=*/0xFA011) {}

void FaultyTransport::register_node(net::NodeId node, Handler handler) {
  inner_.register_node(node, [this, node, h = std::move(handler)](net::Message&& m) mutable {
    // Receive-side guard: messages in flight when the node went down die here.
    if (m.type != net::MsgType::kShutdown && is_down(node)) {
      count_down_drop();
      return;
    }
    h(std::move(m));
  });
}

void FaultyTransport::send(net::Message msg) {
  // kShutdown is runtime plumbing; kPromote is the failover view change; the
  // three kMigrate* frames are the elastic controller's data plane, driven by
  // the same membership authority — all control-plane traffic assumed
  // reliable (a real deployment drives membership through a consensus
  // service, not the lossy data path). Migration frames carrying no retry
  // ladder of their own is exactly why they ride this exemption.
  if (msg.type == net::MsgType::kShutdown || msg.type == net::MsgType::kPromote ||
      msg.type == net::MsgType::kMigrateSnapshot || msg.type == net::MsgType::kMigrateDelta ||
      msg.type == net::MsgType::kMigrateAck) {
    inner_.send(std::move(msg));
    return;
  }
  if (is_down(msg.src) || is_down(msg.dst)) {
    count_down_drop();
    return;
  }
  FaultPlan::Verdict v;
  {
    std::scoped_lock lock(mu_);
    v = plan_.decide(msg.src, msg.dst, clock_(), rng_);
  }
  if (v.drop) {
    count_drop();
    return;
  }
  if (v.duplicate) {
    duplicated_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->incr("fault.duplicated");
    inner_.send(msg);  // copy goes out first; original follows below
  }
  if (v.extra_delay > 0.0) {
    delayed_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->incr("fault.delayed");
    // The deferred closure outlives send(): a borrowed payload must be
    // materialized before capture. (This decorator reports
    // inline_delivery() == false, so callers shouldn't hand it borrowed
    // payloads in the first place — this is the defensive copy.)
    msg.values.ensure_owned();
    defer_(v.extra_delay, [this, m = std::move(msg)]() mutable { inner_.send(std::move(m)); });
    return;
  }
  inner_.send(std::move(msg));
}

void FaultyTransport::set_down(net::NodeId node, bool down) {
  std::scoped_lock lock(mu_);
  if (down) {
    down_.insert(node);
  } else {
    down_.erase(node);
  }
}

bool FaultyTransport::is_down(net::NodeId node) const {
  std::scoped_lock lock(mu_);
  return down_.contains(node);
}

void FaultyTransport::count_drop() {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->incr("fault.dropped");
}

void FaultyTransport::count_down_drop() {
  dropped_down_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->incr("fault.dropped_down");
}

}  // namespace fluentps::fault
