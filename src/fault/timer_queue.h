// Wall-clock deferred execution for the thread backend.
//
// The sim backend defers faulty deliveries by scheduling DES events; the
// thread backend needs a real timer. One background thread sleeps on a
// condition variable until the earliest deadline and runs callbacks in
// deadline order. shutdown() (or destruction) drops pending callbacks —
// a deferred message that never arrives is indistinguishable from a drop,
// which the reliability layer already tolerates.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fluentps::fault {

class TimerQueue {
 public:
  TimerQueue();
  ~TimerQueue();

  TimerQueue(const TimerQueue&) = delete;
  TimerQueue& operator=(const TimerQueue&) = delete;

  /// Run `fn` on the timer thread after `delay_seconds`. Thread-safe.
  void after(double delay_seconds, std::function<void()> fn);

  /// Stop the timer thread; pending callbacks are discarded. Idempotent.
  void shutdown();

  /// Callbacks executed so far.
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_.load(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    Clock::time_point deadline;
    std::uint64_t seq;  // FIFO tiebreak for equal deadlines
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  void loop(const std::stop_token& st);

  std::mutex mu_;
  std::condition_variable_any cv_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  bool stopped_ = false;
  std::atomic<std::uint64_t> fired_{0};
  std::jthread thread_;  // constructed last, joined first
};

}  // namespace fluentps::fault
