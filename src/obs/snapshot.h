#pragma once
// Time-series export (DESIGN.md §12).
//
// The Snapshotter is a background thread that wakes every interval_ms,
// snapshots the Registry, and appends the *delta* since the previous
// interval as one JSONL line — so a run produces a small time series
// (counter rates, gauge values, histogram bucket increments) that can
// be plotted or diffed without any in-process aggregation windows. At
// stop() it flushes a final partial interval. A separate one-shot
// Prometheus text-exposition dump (render_prometheus) serializes the
// cumulative end-of-run state with run-level labels (sync mode,
// backend, seed) and per-tenant labels split out of the
// "tenant.<name>.*" metric namespace.
//
// The render functions are free-standing so tests can check the exact
// schemas without spinning up the thread.

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/telemetry.h"

namespace fluentps::obs {

// One JSONL interval line. Counter/histogram entries are deltas over
// the interval (zero deltas omitted); gauges are sampled values.
std::string render_jsonl_interval(
    std::uint64_t interval_index, double t_s, double dt_s,
    const std::vector<std::pair<std::string, std::int64_t>>& counter_deltas,
    const std::vector<std::pair<std::string, double>>& gauges,
    const std::vector<std::pair<std::string, HistogramSnapshot>>& hist_deltas);

// Cumulative dump in Prometheus text exposition format. Metric names
// are sanitized to [a-zA-Z0-9_:] and prefixed "fluentps_";
// "tenant.<name>.<rest>" counters become fluentps_tenant_<rest> with a
// tenant="<name>" label; histograms emit the classic cumulative
// _bucket{le=...}/_sum/_count triple using the log2 bucket upper edges
// (values in nanoseconds).
std::string render_prometheus(
    const Registry& reg,
    const std::vector<std::pair<std::string, std::string>>& run_labels);

class Snapshotter {
 public:
  Snapshotter(Registry& reg, std::uint32_t interval_ms,
              std::string jsonl_path);
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  void start();
  void stop();  // idempotent; joins the thread and flushes the tail

  std::uint64_t intervals_written() const noexcept {
    return intervals_.load(std::memory_order_relaxed);
  }

  // Interval math: full intervals in run_ms plus the final stop()
  // flush. Pure so tests can pin it down exactly.
  static std::uint64_t expected_intervals(std::uint64_t run_ms,
                                          std::uint32_t interval_ms) noexcept {
    if (interval_ms == 0) interval_ms = 1;
    return run_ms / interval_ms + 1;
  }

 private:
  void run_loop();
  void tick(std::uint64_t now_abs_ns);

  Registry& reg_;
  const std::uint32_t interval_ms_;
  const std::string path_;
  std::ofstream out_;
  std::map<std::string, std::int64_t> prev_counters_;
  std::map<std::string, HistogramSnapshot> prev_hists_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t last_ns_ = 0;
  std::atomic<std::uint64_t> intervals_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace fluentps::obs
