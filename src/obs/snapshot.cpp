#include "obs/snapshot.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace fluentps::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

std::string sanitize_prom(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_labels(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_prom(k);
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

// "tenant.<name>.<rest>" -> {tenant_<rest>, <name>}; otherwise
// {sanitized original, ""}.
std::pair<std::string, std::string> split_tenant(std::string_view name) {
  constexpr std::string_view kPrefix = "tenant.";
  if (name.size() > kPrefix.size() &&
      name.substr(0, kPrefix.size()) == kPrefix) {
    std::string_view rest = name.substr(kPrefix.size());
    std::size_t dot = rest.find('.');
    if (dot != std::string_view::npos && dot > 0 && dot + 1 < rest.size()) {
      return {"tenant_" + sanitize_prom(rest.substr(dot + 1)),
              std::string(rest.substr(0, dot))};
    }
  }
  return {sanitize_prom(name), ""};
}

}  // namespace

std::string render_jsonl_interval(
    std::uint64_t interval_index, double t_s, double dt_s,
    const std::vector<std::pair<std::string, std::int64_t>>& counter_deltas,
    const std::vector<std::pair<std::string, double>>& gauges,
    const std::vector<std::pair<std::string, HistogramSnapshot>>&
        hist_deltas) {
  std::string out;
  out.reserve(256);
  out += "{\"interval\":";
  out += std::to_string(interval_index);
  out += ",\"t_s\":";
  append_double(out, t_s);
  out += ",\"dt_s\":";
  append_double(out, dt_s);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, delta] : counter_deltas) {
    if (delta == 0) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(delta);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_double(out, v);
  }
  out += "},\"hist\":{";
  first = true;
  for (const auto& [name, h] : hist_deltas) {
    if (h.total() == 0) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"n\":";
    out += std::to_string(h.total());
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"buckets\":{";
    bool bfirst = true;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (h.counts[b] == 0) continue;
      if (!bfirst) out += ',';
      bfirst = false;
      out += '"';
      out += std::to_string(b);
      out += "\":";
      out += std::to_string(h.counts[b]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

std::string render_prometheus(
    const Registry& reg,
    const std::vector<std::pair<std::string, std::string>>& run_labels) {
  std::string out;
  out += "# fluentps telemetry dump (Prometheus text exposition format)\n";
  out += "# latency histogram values are nanoseconds\n";

  auto labels_for = [&](const std::string& tenant) {
    std::vector<std::pair<std::string, std::string>> ls;
    if (!tenant.empty()) ls.emplace_back("tenant", tenant);
    for (const auto& l : run_labels) ls.push_back(l);
    return render_labels(ls);
  };

  for (const auto& [name, value] : reg.counters()) {
    auto [metric, tenant] = split_tenant(name);
    std::string full = "fluentps_" + metric;
    out += "# TYPE " + full + " counter\n";
    out += full + labels_for(tenant) + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : reg.gauges()) {
    auto [metric, tenant] = split_tenant(name);
    std::string full = "fluentps_" + metric;
    out += "# TYPE " + full + " gauge\n";
    out += full + labels_for(tenant) + " ";
    append_double(out, value);
    out += "\n";
  }
  for (const auto& [name, snap] : reg.histograms()) {
    auto [metric, tenant] = split_tenant(name);
    std::string full = "fluentps_" + metric;
    out += "# TYPE " + full + " histogram\n";
    std::vector<std::pair<std::string, std::string>> base;
    if (!tenant.empty()) base.emplace_back("tenant", tenant);
    for (const auto& l : run_labels) base.push_back(l);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (snap.counts[b] == 0) continue;
      cum += snap.counts[b];
      auto ls = base;
      ls.emplace_back("le", b + 1 < kHistBuckets
                                ? std::to_string(Histogram::bucket_hi(
                                      static_cast<std::uint32_t>(b)))
                                : "+Inf");
      out += full + "_bucket" + render_labels(ls) + " " +
             std::to_string(cum) + "\n";
    }
    {
      auto ls = base;
      ls.emplace_back("le", "+Inf");
      out += full + "_bucket" + render_labels(ls) + " " +
             std::to_string(snap.total()) + "\n";
    }
    out += full + "_sum" + labels_for(tenant) + " " +
           std::to_string(snap.sum) + "\n";
    out += full + "_count" + labels_for(tenant) + " " +
           std::to_string(snap.total()) + "\n";
  }
  return out;
}

Snapshotter::Snapshotter(Registry& reg, std::uint32_t interval_ms,
                         std::string jsonl_path)
    : reg_(reg),
      interval_ms_(interval_ms == 0 ? 1 : interval_ms),
      path_(std::move(jsonl_path)) {}

Snapshotter::~Snapshotter() { stop(); }

void Snapshotter::start() {
  std::lock_guard lk(mu_);
  if (started_) return;
  started_ = true;
  stop_requested_ = false;
  out_.open(path_, std::ios::out | std::ios::trunc);
  start_ns_ = now_ns();
  last_ns_ = start_ns_;
  thread_ = std::thread([this] { run_loop(); });
}

void Snapshotter::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final partial interval so the tail of the run is not lost.
  tick(now_ns());
  out_.flush();
  out_.close();
  std::lock_guard lk(mu_);
  started_ = false;
}

void Snapshotter::run_loop() {
  std::unique_lock lk(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lk.unlock();
    tick(now_ns());
    lk.lock();
  }
}

void Snapshotter::tick(std::uint64_t now_abs_ns) {
  auto counters = reg_.counters();
  auto gauges = reg_.gauges();
  auto hists = reg_.histograms();

  std::vector<std::pair<std::string, std::int64_t>> counter_deltas;
  counter_deltas.reserve(counters.size());
  for (auto& [name, v] : counters) {
    std::int64_t& prev = prev_counters_[name];
    counter_deltas.emplace_back(name, v - prev);
    prev = v;
  }
  std::vector<std::pair<std::string, HistogramSnapshot>> hist_deltas;
  hist_deltas.reserve(hists.size());
  for (auto& [name, snap] : hists) {
    HistogramSnapshot& prev = prev_hists_[name];
    HistogramSnapshot d;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      d.counts[b] = snap.counts[b] - prev.counts[b];
    }
    d.sum = snap.sum - prev.sum;
    hist_deltas.emplace_back(name, d);
    prev = snap;
  }

  const double t_s = static_cast<double>(now_abs_ns - start_ns_) * 1e-9;
  const double dt_s = static_cast<double>(now_abs_ns - last_ns_) * 1e-9;
  last_ns_ = now_abs_ns;
  const std::uint64_t idx =
      intervals_.fetch_add(1, std::memory_order_relaxed);
  if (out_.is_open()) {
    out_ << render_jsonl_interval(idx, t_s, dt_s, counter_deltas, gauges,
                                  hist_deltas)
         << "\n";
    out_.flush();
  }
}

}  // namespace fluentps::obs
