#pragma once
// Wait-free telemetry substrate (DESIGN.md §12).
//
// The PR-7 ingest path (MPSC ring -> PushCombiner -> StripedShard ->
// RecvBuffer) is lock-free end to end, so it cannot afford the old
// mutex-guarded std::map metrics registry on its hot paths. This layer
// splits telemetry into two phases with very different cost budgets:
//
//   * record  — wait-free. Each instrument owns a small fixed array of
//     cache-line-padded atomic cells; a thread picks its cell once (a
//     thread-local slot id) and records with a single relaxed RMW. No
//     locks, no allocation, no shared cache line between concurrent
//     writers in the common case.
//   * snapshot — slow-path. Aggregating across cells, name lookup for
//     *registration*, and export all take a shared_mutex and may
//     allocate; they run on snapshotter/collect threads, never on the
//     ingest path.
//
// Instruments are registered once (find-or-create under the registry
// lock) and the returned reference is stable for the registry's
// lifetime, so components cache `Counter&`/`Histogram&` handles at
// construction and the per-record cost is independent of the metric
// name. `Registry::instrument_allocations()` counts registrations so
// tests can prove steady-state recording allocates nothing (the same
// proof pattern as PR-7's `recv_allocations`).
//
// This header is self-contained (standard library only): common/ links
// against it, so it must not include anything from common/.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fluentps::obs {

// Monotonic wall time in nanoseconds (steady_clock). All span/histogram
// timestamps in this subsystem use this clock.
std::uint64_t now_ns();

// Stable per-thread slot id, assigned round-robin from a process-global
// counter on first use. Instruments fold it into their cell count.
std::uint32_t this_thread_slot() noexcept;

inline constexpr std::size_t kCounterCells = 16;

// Sharded monotonic counter. `add` is wait-free: one relaxed fetch_add
// on this thread's cell. The `touched` flag preserves the old registry
// semantics where a counter only shows up in snapshots once someone has
// actually recorded to it (even with delta 0), and disappears again
// after reset().
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    Cell& c = cells_[this_thread_slot() & (kCounterCells - 1)];
    c.v.fetch_add(delta, std::memory_order_relaxed);
    if (!c.touched.load(std::memory_order_relaxed)) {
      c.touched.store(true, std::memory_order_relaxed);
    }
  }

  std::int64_t value() const noexcept {
    std::int64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  bool touched() const noexcept {
    for (const Cell& c : cells_) {
      if (c.touched.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

  void reset() noexcept {
    for (Cell& c : cells_) {
      c.v.store(0, std::memory_order_relaxed);
      c.touched.store(false, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
    std::atomic<bool> touched{false};
  };
  Cell cells_[kCounterCells];
};

// Last-writer-wins gauge (double stored as bit-cast u64 so a single
// atomic word carries it). `set_max` keeps the running maximum via CAS;
// the initial value is -inf so the first set_max simply installs v,
// matching the old try_emplace-then-max semantics.
class Gauge {
 public:
  void set(double v) noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
    seen_.store(true, std::memory_order_relaxed);
  }

  void set_max(double v) noexcept {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (std::bit_cast<double>(cur) < v) {
      if (bits_.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    seen_.store(true, std::memory_order_relaxed);
  }

  double value() const noexcept {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  bool seen() const noexcept { return seen_.load(std::memory_order_relaxed); }

  void reset() noexcept {
    bits_.store(std::bit_cast<std::uint64_t>(
                    -std::numeric_limits<double>::infinity()),
                std::memory_order_relaxed);
    seen_.store(false, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(
      -std::numeric_limits<double>::infinity())};
  std::atomic<bool> seen_{false};
};

// Fixed log2 bucket layout: bucket 0 holds exactly {0}; bucket b in
// [1, 47] covers [2^(b-1), 2^b - 1]; the last bucket absorbs everything
// >= 2^47 (~39 hours in ns — nothing we time gets there). 49 buckets
// cover the full latency range with no configuration and no per-record
// branching beyond a bit_width.
inline constexpr std::size_t kHistBuckets = 49;
inline constexpr std::size_t kHistShards = 8;

struct HistogramSnapshot {
  std::uint64_t counts[kHistBuckets] = {};
  std::uint64_t sum = 0;

  std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (std::uint64_t c : counts) n += c;
    return n;
  }

  void merge(const HistogramSnapshot& o) noexcept {
    for (std::size_t b = 0; b < kHistBuckets; ++b) counts[b] += o.counts[b];
    sum += o.sum;
  }
};

class Histogram {
 public:
  static std::uint32_t bucket_of(std::uint64_t v) noexcept {
    if (v == 0) return 0;
    std::uint32_t b = static_cast<std::uint32_t>(std::bit_width(v));
    return b >= kHistBuckets ? static_cast<std::uint32_t>(kHistBuckets - 1) : b;
  }

  // Inclusive value range of bucket b.
  static std::uint64_t bucket_lo(std::uint32_t b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
  }
  static std::uint64_t bucket_hi(std::uint64_t b) noexcept {
    if (b == 0) return 0;
    if (b >= kHistBuckets - 1) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    Shard& s = shards_[this_thread_slot() & (kHistShards - 1)];
    s.counts[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot out;
    for (const Shard& s : shards_) {
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        out.counts[b] += s.counts[b].load(std::memory_order_relaxed);
      }
      out.sum += s.sum.load(std::memory_order_relaxed);
    }
    return out;
  }

  void reset() noexcept {
    for (Shard& s : shards_) {
      for (std::size_t b = 0; b < kHistBuckets; ++b) {
        s.counts[b].store(0, std::memory_order_relaxed);
      }
      s.sum.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> counts[kHistBuckets] = {};
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[kHistShards];
};

// Name -> instrument registry. Lookup takes the lock in shared mode and
// compares via the transparent comparator (no temporary std::string);
// only first-time registration takes it exclusively and allocates.
// Returned references are stable until the registry is destroyed.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // nullptr when the instrument was never registered.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // Sorted snapshots; only touched/seen/non-empty instruments appear,
  // so registration alone does not pollute reports.
  std::vector<std::pair<std::string, std::int64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;

  // Sum of all counters whose name starts with `prefix` — lower_bound
  // into the ordered map plus early-exit when keys stop matching, not a
  // full-map scan.
  std::int64_t counter_sum_prefix(std::string_view prefix) const;

  // Zero values and clear touched/seen flags; registrations (and the
  // handles components cached) stay valid.
  void reset_values();

  // Number of instrument registrations — each one is the single
  // allocation an instrument ever performs. Steady-state recording must
  // leave this unchanged (asserted in tests).
  std::uint64_t instrument_allocations() const noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }

 private:
  template <class T>
  using NameMap = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  template <class T>
  T& find_or_create(NameMap<T>& map, std::string_view name);
  template <class T>
  const T* find_in(const NameMap<T>& map, std::string_view name) const;

  mutable std::shared_mutex mu_;
  NameMap<Counter> counters_;
  NameMap<Gauge> gauges_;
  NameMap<Histogram> histograms_;
  std::atomic<std::uint64_t> allocations_{0};
};

// Run-level telemetry configuration (parsed by the CLI, threaded down
// through ExperimentConfig).
struct TelemetrySpec {
  bool enabled = false;          // master switch for snapshotter + spans
  std::uint32_t interval_ms = 250;  // JSONL snapshot cadence
  std::string out_prefix = "telemetry";  // <prefix>.jsonl / <prefix>.prom
  bool trace_spans = true;       // cross-hop span capture (threads backend)
};

class SpanRecorder;

// What components receive: one pointer, nullable. A null Telemetry (or
// null member) means "record nothing" — every site guards on it, so
// telemetry=off costs a predicted-not-taken branch.
struct Telemetry {
  Registry* registry = nullptr;
  SpanRecorder* spans = nullptr;
};

}  // namespace fluentps::obs
