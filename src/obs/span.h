#pragma once
// Cross-hop span capture (DESIGN.md §12).
//
// A (trace_id, span_id) pair rides in the reserved bytes of the 64-byte
// wire header (net/message.h: span_id at offset 44, trace_id at 56), so
// one worker push can be followed server-side through ring enqueue,
// combiner drain, stripe apply, kReplicate, the tail's ack, and finally
// the worker's ack — each hop emits a SpanRecord whose parent_id is the
// span it continues. trace_id groups the whole round trip; span ids are
// unique within a run (a single global allocator).
//
// Recording is designed for the same budget as the counters: a thread
// registers a fixed-capacity buffer once (the only allocation, counted
// by allocations()), then emit() is push_back into reserved storage —
// no locks, no allocation, drops counted on overflow. drain() runs
// after the worker/server threads have joined.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace fluentps::obs {

struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;  // 0 = root
  const char* name = "";        // static string literal only
  std::uint32_t node = 0;       // runtime node id of the emitting hop
  std::uint64_t start_ns = 0;   // relative to the recorder's epoch
  std::uint64_t end_ns = 0;     // == start_ns for instant events
};

class SpanRecorder {
 public:
  explicit SpanRecorder(std::size_t capacity_per_thread = 32768);

  // Id allocators; both start at 1 so 0 stays "no trace"/"no parent".
  std::uint32_t next_span_id() noexcept {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t next_trace_id() noexcept {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }

  // Record a span whose start/end are absolute now_ns() stamps; the
  // epoch is subtracted here. Wait-free after this thread's first call.
  void emit(std::uint64_t trace_id, std::uint32_t span_id,
            std::uint32_t parent_id, const char* name, std::uint32_t node,
            std::uint64_t start_abs_ns, std::uint64_t end_abs_ns) noexcept;

  // Convenience for zero-duration marks (promotion, acks, faults).
  void emit_instant(std::uint64_t trace_id, std::uint32_t span_id,
                    std::uint32_t parent_id, const char* name,
                    std::uint32_t node, std::uint64_t at_abs_ns) noexcept {
    emit(trace_id, span_id, parent_id, name, node, at_abs_ns, at_abs_ns);
  }

  // Concatenate every thread's buffer, sorted by start time. Callers
  // must have joined all emitting threads first.
  std::vector<SpanRecord> drain();

  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  // Number of per-thread buffer registrations — the only allocations
  // this recorder ever performs (the steady-state proof counter).
  std::uint64_t allocations() const noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }

 private:
  struct Buf {
    std::vector<SpanRecord> records;  // reserved to capacity up front
  };

  Buf* this_thread_buf() noexcept;

  const std::size_t capacity_;
  const std::uint64_t epoch_ns_;
  const std::uint64_t recorder_id_;  // global monotonic, never reused
  std::atomic<std::uint32_t> next_span_{1};
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> allocations_{0};
  std::mutex mu_;  // guards bufs_ (registration + drain only)
  std::vector<std::unique_ptr<Buf>> bufs_;
};

}  // namespace fluentps::obs
