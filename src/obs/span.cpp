#include "obs/span.h"

#include <algorithm>

#include "obs/telemetry.h"

namespace fluentps::obs {

namespace {
std::atomic<std::uint64_t> g_next_recorder_id{1};
}  // namespace

SpanRecorder::SpanRecorder(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      epoch_ns_(now_ns()),
      recorder_id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {
}

SpanRecorder::Buf* SpanRecorder::this_thread_buf() noexcept {
  // Cache keyed by a monotonically increasing recorder id rather than
  // `this` — a later recorder could be allocated at the same address,
  // and a pointer-equality cache would then hand its buffer to the
  // wrong recorder (classic ABA).
  struct Slot {
    std::uint64_t recorder_id = 0;
    Buf* buf = nullptr;
  };
  thread_local Slot slot;
  if (slot.recorder_id == recorder_id_) return slot.buf;

  auto buf = std::make_unique<Buf>();
  buf->records.reserve(capacity_);
  Buf* raw = buf.get();
  {
    std::lock_guard lk(mu_);
    bufs_.push_back(std::move(buf));
  }
  allocations_.fetch_add(1, std::memory_order_relaxed);
  slot.recorder_id = recorder_id_;
  slot.buf = raw;
  return raw;
}

void SpanRecorder::emit(std::uint64_t trace_id, std::uint32_t span_id,
                        std::uint32_t parent_id, const char* name,
                        std::uint32_t node, std::uint64_t start_abs_ns,
                        std::uint64_t end_abs_ns) noexcept {
  Buf* buf = this_thread_buf();
  if (buf->records.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord r;
  r.trace_id = trace_id;
  r.span_id = span_id;
  r.parent_id = parent_id;
  r.name = name;
  r.node = node;
  r.start_ns = start_abs_ns > epoch_ns_ ? start_abs_ns - epoch_ns_ : 0;
  r.end_ns = end_abs_ns > epoch_ns_ ? end_abs_ns - epoch_ns_ : 0;
  if (r.end_ns < r.start_ns) r.end_ns = r.start_ns;
  buf->records.push_back(r);
}

std::vector<SpanRecord> SpanRecorder::drain() {
  std::lock_guard lk(mu_);
  std::vector<SpanRecord> out;
  std::size_t total = 0;
  for (const auto& b : bufs_) total += b->records.size();
  out.reserve(total);
  for (auto& b : bufs_) {
    out.insert(out.end(), b->records.begin(), b->records.end());
    b->records.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.span_id < b.span_id;
            });
  return out;
}

}  // namespace fluentps::obs
