#include "obs/telemetry.h"

#include <chrono>
#include <mutex>

namespace fluentps::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {
std::atomic<std::uint32_t> g_next_slot{0};
}  // namespace

std::uint32_t this_thread_slot() noexcept {
  thread_local std::uint32_t slot =
      g_next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

template <class T>
T& Registry::find_or_create(NameMap<T>& map, std::string_view name) {
  {
    std::shared_lock lk(mu_);
    auto it = map.find(name);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock lk(mu_);
  auto it = map.find(name);
  if (it != map.end()) return *it->second;
  auto [pos, inserted] =
      map.emplace(std::string(name), std::make_unique<T>());
  if (inserted) allocations_.fetch_add(1, std::memory_order_relaxed);
  return *pos->second;
}

template <class T>
const T* Registry::find_in(const NameMap<T>& map,
                           std::string_view name) const {
  std::shared_lock lk(mu_);
  auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

Counter& Registry::counter(std::string_view name) {
  return find_or_create(counters_, name);
}
Gauge& Registry::gauge(std::string_view name) {
  return find_or_create(gauges_, name);
}
Histogram& Registry::histogram(std::string_view name) {
  return find_or_create(histograms_, name);
}

const Counter* Registry::find_counter(std::string_view name) const {
  return find_in(counters_, name);
}
const Gauge* Registry::find_gauge(std::string_view name) const {
  return find_in(gauges_, name);
}
const Histogram* Registry::find_histogram(std::string_view name) const {
  return find_in(histograms_, name);
}

std::vector<std::pair<std::string, std::int64_t>> Registry::counters() const {
  std::shared_lock lk(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    if (c->touched()) out.emplace_back(name, c->value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::shared_lock lk(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    if (g->seen()) out.emplace_back(name, g->value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms()
    const {
  std::shared_lock lk(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s = h->snapshot();
    if (s.total() > 0) out.emplace_back(name, s);
  }
  return out;
}

std::int64_t Registry::counter_sum_prefix(std::string_view prefix) const {
  std::shared_lock lk(mu_);
  std::int64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    const std::string& key = it->first;
    if (key.compare(0, prefix.size(), prefix) != 0) break;
    if (it->second->touched()) sum += it->second->value();
  }
  return sum;
}

void Registry::reset_values() {
  std::unique_lock lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace fluentps::obs
